(* Chaos smoke gate (`dune build @chaos-smoke`, part of @ci).

   A quick seeded fault matrix over the genuine message-passing kernel
   that hard-asserts the three invariants the fault-injection subsystem
   promises (docs/fault-model.md):

     1. golden differential — running under the compiled *empty* plan is
        identical (colors and charged rounds) to running with no chaos
        context at all;
     2. deterministic replay — the same (plan, seed) pair produces the
        same outcome classification and the same fault-timeline digest
        on consecutive runs;
     3. classification sanity — every epoch of a 3-seed fault matrix
        lands in exactly one of valid / detected / corrupt.

   Exits nonzero (with a one-line diagnosis) on any violation. Instances
   are small; the whole gate completes in well under 5 seconds. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module H = Nw_core.H_partition
module Rounds = Nw_localsim.Rounds
module Plan = Nw_chaos.Plan
module Harness = Nw_chaos.Harness

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("chaos-smoke: FAIL: " ^ msg);
      exit 1)
    fmt

let parse s =
  match Plan.of_string s with
  | Ok p -> p
  | Error m -> fail "plan %S does not parse: %s" s m

(* every vertex assigned a layer, each with <= threshold same-or-higher
   incident edges — the H-partition invariant of Theorem 2.1 *)
let verify_h g (hp : H.t) =
  let n = G.n g in
  let bad = ref None in
  for v = 0 to n - 1 do
    if hp.H.layer.(v) < 0 && !bad = None then
      bad := Some (Printf.sprintf "vertex %d unassigned" v)
    else begin
      let up =
        Array.fold_left
          (fun acc (w, _) ->
            if hp.H.layer.(w) >= hp.H.layer.(v) then acc + 1 else acc)
          0 (G.incident g v)
      in
      if up > hp.H.threshold && !bad = None then
        bad := Some (Printf.sprintf "vertex %d: %d > t=%d" v up hp.H.threshold)
    end
  done;
  match !bad with None -> Ok () | Some msg -> Error msg

let () =
  let g = Gen.forest_union (Random.State.make [| 0x5707e |]) 40 3 in
  let compute () =
    let rounds = Rounds.create () in
    let hp = H.compute g ~epsilon:0.5 ~alpha_star:3 ~rounds in
    (hp, Rounds.total rounds)
  in
  let run_h () =
    let hp, total = compute () in
    (Array.to_list hp.H.layer, total)
  in
  (* 1. golden differential *)
  let (l1, r1), (l2, r2) = Harness.differential ~seed:1 ~run:run_h in
  if not (List.equal Int.equal l1 l2) then
    fail "golden differential: layers diverged under the empty plan";
  if r1 <> r2 then
    fail "golden differential: charged rounds diverged (%d vs %d)" r1 r2;
  (* 2 + 3. fault matrix with replay check *)
  let plans = [ "drop=0.2"; "delay=0.25:2,reorder"; "restart=0@1+1" ] in
  let fingerprint plan seed =
    let r =
      Harness.run_epochs ~plan ~seed ~epochs:1 ~policy:Harness.no_retry
        ~verify:(verify_h g)
        ~run:(fun () -> fst (compute ()))
        ()
    in
    ( r.Harness.valid + r.Harness.detected + r.Harness.corrupt,
      List.concat_map
        (fun (ep : Harness.epoch) ->
          List.map
            (fun (a : Harness.attempt) ->
              ( Harness.outcome_label a.Harness.outcome,
                a.Harness.counts.Harness.digest ))
            ep.Harness.attempts)
        r.Harness.epochs )
  in
  List.iter
    (fun plan_str ->
      let plan = parse plan_str in
      List.iter
        (fun seed ->
          let total1, f1 = fingerprint plan seed in
          let total2, f2 = fingerprint plan seed in
          if total1 <> 1 then
            fail "plan %S seed %d: epoch classified %d times" plan_str seed
              total1;
          let same =
            total1 = total2
            && List.equal
                 (fun (o1, d1) (o2, d2) ->
                   String.equal o1 o2 && Int64.equal d1 d2)
                 f1 f2
          in
          if not same then
            fail "plan %S seed %d: replay diverged" plan_str seed)
        [ 1; 2; 3 ])
    plans;
  print_endline
    "chaos-smoke: ok (golden differential, deterministic replay, 3x3 fault \
     matrix)"
