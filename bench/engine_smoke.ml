(* Engine smoke gate (`dune build @engine-smoke`, wired into @ci):
   registry sanity, static kind-flow validation of every pipeline, a
   seeded run of every registry entry with its output verified, a
   determinism replay, and a checkpoint/resume round trip asserting the
   resumed run recharges strictly fewer rounds than a from-scratch run
   while producing the identical coloring. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Coloring = Nw_decomp.Coloring
module Verify = Nw_decomp.Verify
module Rounds = Nw_localsim.Rounds
module Engine = Nw_engine.Engine
module Store = Nw_engine.Store
module Artifact = Nw_engine.Artifact
module Registry = Nw_engine.Registry

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "engine_smoke: FAIL %s\n%!" name
  end

let check_report name = function
  | Ok () -> ()
  | Error reason ->
      incr failures;
      Printf.eprintf "engine_smoke: FAIL %s: %s\n%!" name reason

(* run one registry entry end to end; returns the final store *)
let run_entry entry spec ~seed =
  let rng = Random.State.make [| seed |] in
  let rounds = Rounds.create () in
  let ctx = Engine.ctx ~rng ~rounds in
  let pipeline = entry.Registry.build spec in
  let init =
    Store.put Store.empty "graph" (Artifact.Graph spec.Registry.graph)
  in
  Engine.run ctx pipeline ~init

let coloring_of store = Coloring.to_array (Store.coloring store "coloring")

let smoke_entry g ~alpha entry =
  let spec = { Registry.graph = g; epsilon = 0.5; alpha } in
  let name tag = Printf.sprintf "%s/%s" entry.Registry.name tag in
  (* static kind-flow check before anything runs *)
  (match
     Engine.validate
       ~initial:[ ("graph", Artifact.kind_of (Artifact.Graph g)) ]
       (entry.Registry.build spec)
   with
  | Ok () -> ()
  | Error e -> check_report (name "validate") (Error e));
  (* pipeline shape must be deterministic across builds *)
  check (name "digest-stable")
    (String.equal
       (Engine.digest (entry.Registry.build spec))
       (Engine.digest (entry.Registry.build spec)));
  let store = run_entry entry spec ~seed:42 in
  (match entry.Registry.yields with
  | Registry.Coloring_out ->
      let c = Store.coloring store "coloring" in
      check_report (name "verify")
        (if entry.Registry.star then Verify.star_forest_decomposition c
         else Verify.forest_decomposition c);
      (* same seed, same pipeline => byte-identical coloring *)
      let store' = run_entry entry spec ~seed:42 in
      check (name "replay") (coloring_of store = coloring_of store')
  | Registry.Orientation_out ->
      check (name "orientation-bound")
        (Nw_graphs.Orientation.max_out_degree
           (Store.orientation store "orientation")
         <= int_of_float (ceil ((1. +. 0.5) *. float_of_int alpha)))
  | Registry.Pseudo_out ->
      let assignment, k = Store.assignment store "assignment" in
      check_report (name "verify")
        (Verify.pseudo_forest_assignment g assignment ~k))

(* checkpoint/resume: a crash after pass [i] must resume to the same
   coloring while recharging only the rounds of the remaining passes *)
let smoke_resume g ~alpha =
  let entry =
    match Registry.find "augment" with Some e -> e | None -> assert false
  in
  let spec = { Registry.graph = g; epsilon = 0.5; alpha } in
  let pipeline = entry.Registry.build spec in
  let init = Store.put Store.empty "graph" (Artifact.Graph g) in
  let checkpoints = ref [] in
  let rounds_full = Rounds.create () in
  let ctx =
    Engine.ctx ~rng:(Random.State.make [| 7 |]) ~rounds:rounds_full
  in
  let store_full =
    Engine.run ~checkpoint:(fun ck -> checkpoints := ck :: !checkpoints) ctx
      pipeline ~init
  in
  check "resume/checkpoint-count"
    (List.length !checkpoints = List.length pipeline.Engine.passes);
  (* pick a checkpoint strictly inside the pipeline: some rounds already
     charged, some still to come *)
  let mid =
    List.find
      (fun ck -> ck.Engine.ck_completed = 2)
      !checkpoints
  in
  let rounds_resumed = Rounds.create () in
  let ctx' =
    Engine.ctx ~rng:(Random.State.make [| 999 |]) ~rounds:rounds_resumed
  in
  let store_resumed =
    Engine.run ~resume:mid ctx' pipeline ~init:Store.empty
  in
  check "resume/coloring-identical"
    (coloring_of store_full = coloring_of store_resumed);
  check "resume/fewer-rounds"
    (Rounds.total rounds_resumed < Rounds.total rounds_full);
  check "resume/rounds-charged" (Rounds.total rounds_resumed > 0)

let () =
  (* registry sanity *)
  let names = Registry.names () in
  check "registry/unique-names"
    (List.length (List.sort_uniq String.compare names) = List.length names);
  check "registry/find-all"
    (List.for_all (fun n -> Registry.find n <> None) names);
  check "registry/find-unknown" (Registry.find "no-such-algorithm" = None);
  let (reg1, hash1) = Registry.stamp () in
  let (reg2, hash2) = Registry.stamp () in
  check "registry/stamp-stable"
    (String.equal reg1 reg2 && String.equal hash1 hash2);
  check "registry/hash-shape"
    (String.length hash1 = 16
    && String.for_all
         (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
         hash1);
  (* every entry runs and verifies on a small simple graph *)
  let g = Gen.grid 6 6 in
  let alpha, _ = Nw_baseline.Gabow_westermann.arboricity g in
  List.iter (smoke_entry g ~alpha) Registry.all;
  (* multigraph coverage for the non-star pipelines *)
  let gm = Gen.forest_union (Random.State.make [| 11 |]) 80 3 in
  let alpha_m, _ = Nw_baseline.Gabow_westermann.arboricity gm in
  List.iter
    (fun entry ->
      if not entry.Registry.star then smoke_entry gm ~alpha:alpha_m entry)
    Registry.all;
  smoke_resume gm ~alpha:alpha_m;
  if !failures > 0 then begin
    Printf.eprintf "engine_smoke: %d failure(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf "engine_smoke: registry %s %s, %d entries ok\n%!"
    (fst (Registry.stamp ()))
    (snd (Registry.stamp ()))
    (List.length Registry.all)
