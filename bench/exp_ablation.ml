(* E13 — ablations of the design choices DESIGN.md calls out.

   (a) Short-circuiting (Prop 3.4): how much do almost-augmenting sequences
       shrink, and what would applying them un-short-circuited cost? We
       measure raw vs short-circuited lengths over a whole decomposition.
   (b) Search radius (Theorem 3.2): Algorithm 2 restricts augmenting
       searches to N^{R'}(e). We shrink R' below the theory value and watch
       the stall/leftover rate climb — the radius really is load-bearing.
   (c) CUT (Theorem 4.2): disabling CUT entirely still yields correct
       output in the sequential simulation, but the monochromatic
       components crossing cluster boundaries (the "bad cut" events)
       explode — exactly what would break parallel cluster processing. *)

open Exp_common
module Aug = Nw_core.Augmenting
module FA = Nw_core.Forest_algo
module Cut = Nw_core.Cut

(* (a) short-circuit ablation: complete adversarial partial exact 2-FDs of
   the squared path (where sequences get long) and compare raw
   almost-augmenting sequences with their Prop 3.4 subsequences *)
let short_circuit_ablation () =
  let alpha = 2 in
  let g = G.power (Gen.path 60) 2 in
  let palette = Palette.full g alpha in
  let st = rng 10900 in
  let raw_lengths = ref [] and sc_lengths = ref [] and changed = ref 0 in
  let total = ref 0 in
  for _ = 1 to 25 do
    let coloring = Coloring.create g ~colors:alpha in
    let edges = Array.init (G.m g) (fun e -> e) in
    for i = Array.length edges - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let tmp = edges.(i) in
      edges.(i) <- edges.(j);
      edges.(j) <- tmp
    done;
    Array.iter
      (fun e ->
        let c = Random.State.int st alpha in
        if not (Coloring.would_close_cycle coloring e c) then
          Coloring.set coloring e c)
      edges;
    let scratch = Aug.scratch coloring in
    Array.iter
      (fun e ->
        match Aug.search coloring palette ~start:e ~scratch () with
        | Aug.Stalled _ -> failwith "unrestricted exact search cannot stall"
        | Aug.Found (seq, _) ->
            let seq' = Aug.short_circuit coloring seq in
            incr total;
            if List.length seq' < List.length seq then incr changed;
            raw_lengths := List.length seq :: !raw_lengths;
            sc_lengths := List.length seq' :: !sc_lengths;
            Aug.apply coloring seq')
      (Coloring.uncolored coloring);
    verified (Verify.forest_decomposition coloring) |> ignore
  done;
  let raw = Exp_stats.of_ints !raw_lengths in
  let sc = Exp_stats.of_ints !sc_lengths in
  table
    ~title:
      "(a) Prop 3.4 short-circuiting over adversarial exact 2-FD \
       completions of P60^2"
    ~header:[ "sequence"; "mean (max)" ]
    ~rows:
      [
        [ "almost augmenting (raw)"; Exp_stats.pp_mean_max raw ];
        [ "after short-circuit"; Exp_stats.pp_mean_max sc ];
        [ "sequences shortened";
          Printf.sprintf "%d of %d" !changed !total ];
      ];
  note
    "the BFS first-reach trace is already near-minimal in practice (zero \
     (A3) violations here), but Lemma 3.1's proof needs (A3), so the \
     extraction is a safety net the implementation keeps: it costs nothing \
     when sequences are already clean."

(* (b) radius ablation. The squared path P_n^2 is density-tight for two
   forests (m = 2n-3 vs capacity 2n-2) with linear diameter. We greedily
   pre-color a random subset (an adversarial partial state), then complete
   it by augmentation restricted to balls of radius R' around each edge and
   count the completions that stall. Unrestricted search provably never
   stalls at k = alpha (the Prop 3.3 stall certificate would contradict
   alpha = 2), so every stall is attributable to the radius. *)
let radius_ablation () =
  let alpha = 2 in
  let g = G.power (Gen.path 60) 2 in
  let palette = Palette.full g alpha in
  let trials = 25 in
  let complete_with_radius st radius =
    let coloring = Coloring.create g ~colors:alpha in
    (* adversarial prefill: random order, random color if it fits *)
    let edges = Array.init (G.m g) (fun e -> e) in
    for i = Array.length edges - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let tmp = edges.(i) in
      edges.(i) <- edges.(j);
      edges.(j) <- tmp
    done;
    Array.iter
      (fun e ->
        let c = Random.State.int st alpha in
        if not (Coloring.would_close_cycle coloring e c) then
          Coloring.set coloring e c)
      edges;
    let stalls = ref 0 and max_len = ref 0 in
    let scratch = Aug.scratch coloring in
    Array.iter
      (fun e ->
        let u, v = G.endpoints g e in
        let within =
          match radius with
          | None -> None
          | Some r -> Some (G.ball_of_set g [ u; v ] r)
        in
        match Aug.augment_edge coloring palette ~edge:e ?within ~scratch () with
        | Some stats ->
            max_len := max !max_len (stats.Aug.iterations + 1)
        | None -> incr stalls)
      (Coloring.uncolored coloring);
    verified (Verify.partial_forest_decomposition coloring) |> ignore;
    (!stalls, !max_len)
  in
  let rows =
    List.map
      (fun radius ->
        let st = rng (11100 + Option.value ~default:99 radius) in
        let total_stalls = ref 0 and worst_len = ref 0 and failed = ref 0 in
        for _ = 1 to trials do
          let stalls, len = complete_with_radius st radius in
          total_stalls := !total_stalls + stalls;
          if stalls > 0 then incr failed;
          worst_len := max !worst_len len
        done;
        [
          (match radius with None -> "unrestricted" | Some r -> d r);
          d !total_stalls;
          Printf.sprintf "%d/%d" !failed trials;
          d !worst_len;
        ])
      [ Some 1; Some 2; Some 4; Some 8; None ]
  in
  table
    ~title:
      "(b) search radius vs stalls: completing adversarial partial exact \
       2-FDs of P60^2 (25 trials each)"
    ~header:[ "radius R'"; "stalls"; "failed trials"; "worst seq len" ]
    ~rows;
  note
    "unrestricted search never stalls at k = alpha (the stall certificate \
     of Prop 3.3 would contradict alpha = 2); every stall in the small-R' \
     rows is the radius biting — Theorem 3.2's O(log n/eps) radius is what \
     makes restricted search safe once palettes have slack."

(* (c) CUT ablation: fixed modest radii on a long line; with CUT disabled
   the monochromatic components cross the cluster regions ("bad cuts") *)
let cut_ablation () =
  let alpha = 4 and epsilon = 1.0 in
  let g = Gen.line_multigraph 120 alpha in
  let k = int_of_float (ceil ((1. +. epsilon) *. float_of_int alpha)) in
  let palette = Palette.full g k in
  let run cut seed =
    let st = rng seed in
    let rounds = Rounds.create () in
    let coloring, _, stats =
      Nw_engine.Run.decompose_with_leftover g palette ~epsilon ~alpha ~cut
        ~radii:(10, 5) ~rng:st ~rounds
    in
    verified (Verify.partial_forest_decomposition coloring) |> ignore;
    (stats.FA.good_cuts, stats.FA.bad_cuts, stats.FA.leftover_edges,
     stats.FA.stalls)
  in
  let good_c, bad_c, leftover_c, stalls_c = run Cut.Depth_mod 11300 in
  let good_n, bad_n, leftover_n, stalls_n = run Cut.Disabled 11301 in
  table
    ~title:"(c) CUT ablation on line-multigraph 120x4, radii (R,R') = (10,5)"
    ~header:[ "configuration"; "good cuts"; "bad cuts"; "leftover"; "stalls" ]
    ~rows:
      [
        [ "with CUT (Depth_mod)"; d good_c; d bad_c; d leftover_c; d stalls_c ];
        [ "CUT disabled"; d good_n; d bad_n; d leftover_n; d stalls_n ];
      ];
  note
    "without CUT, clusters stay monochromatically connected to far-away \
     vertices ('bad cuts'): parallel same-class processing would clash, \
     which is exactly what Theorem 4.2 exists to prevent."

let run () =
  section "E13: ablations (short-circuit, search radius, CUT)";
  short_circuit_ablation ();
  radius_ablation ();
  cut_ablation ()
