(* E5 — Theorem 3.2 / Algorithm 1 / Proposition 3.3: augmenting sequences.

   Paper claims: with palettes of size (1+eps)*alpha, from any uncolored
   edge there is an augmenting sequence of length O(log n / eps) found
   within radius O(log n / eps), because the explored set grows by (1+eps)
   per iteration. We decompose graphs edge by edge via augmentation and
   record the worst sequence length, explored-set size, growth iterations,
   and the minimum observed growth ratio.

   Two regimes bracket the claim: with excess colors (eps > 0) sequences
   are short, while at the exact Nash-Williams bound (zero excess, the
   Gabow-Westermann regime, where Theorem 3.2 gives no guarantee) the
   sequences and explored sets grow — showing the slack is what buys
   locality. *)

open Exp_common
module Aug = Nw_core.Augmenting

type agg = {
  mutable max_len : int;
  mutable max_explored : int;
  mutable max_iters : int;
  mutable min_growth : float;
}

let run_instance st g palette =
  let coloring = Coloring.create g ~colors:(Palette.color_space palette) in
  let agg =
    { max_len = 0; max_explored = 0; max_iters = 0; min_growth = infinity }
  in
  (* random insertion order, as in an adversarial arrival *)
  let edges = Coloring.uncolored coloring in
  for i = Array.length edges - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = edges.(i) in
    edges.(i) <- edges.(j);
    edges.(j) <- tmp
  done;
  let scratch = Aug.scratch coloring in
  Array.iter
    (fun e ->
      match Aug.search coloring palette ~start:e ~scratch () with
      | Aug.Stalled _ -> failwith "stall above the arboricity"
      | Aug.Found (seq, stats) ->
          let seq' = Aug.short_circuit coloring seq in
          Aug.apply coloring seq';
          agg.max_len <- max agg.max_len (List.length seq');
          agg.max_explored <- max agg.max_explored stats.Aug.explored;
          agg.max_iters <- max agg.max_iters stats.Aug.iterations;
          let rec ratios = function
            | (_, a) :: ((_, b) :: _ as rest) ->
                agg.min_growth <-
                  min agg.min_growth (float_of_int b /. float_of_int a);
                ratios rest
            | _ -> ()
          in
          ratios stats.Aug.growth)
    edges;
  verified (Verify.forest_decomposition coloring) |> ignore;
  agg

let growth_cell agg =
  if agg.min_growth = infinity then "-" else f2 agg.min_growth

(* K_{2a} has arboricity exactly a and every vertex matters: the tightest
   small instances for exact augmentation *)
let clique_for alpha = Gen.complete (2 * alpha)

let run () =
  section "E5: Theorem 3.2 (augmenting sequence locality)";
  (* sweep excess colors on cliques: excess 0 is the exact GW regime *)
  let alpha = 8 in
  let g = clique_for alpha in
  let rows_excess =
    List.map
      (fun excess ->
        let st = rng (4000 + excess) in
        let agg = run_instance st g (Palette.full g (alpha + excess)) in
        [
          d excess;
          (if excess = 0 then "exact" else f2 (float_of_int excess /. float_of_int alpha));
          d agg.max_len;
          d agg.max_iters;
          d agg.max_explored;
          growth_cell agg;
        ])
      [ 0; 1; 2; 4 ]
  in
  table
    ~title:
      (Printf.sprintf
         "sequence length vs excess colors on K%d (alpha = %d, m = %d)"
         (2 * alpha) alpha
         (G.m g))
    ~header:
      [ "excess"; "eps"; "max seq len"; "max iters"; "max |E_i|"; "min growth" ]
    ~rows:rows_excess;
  (* sweep n at zero excess (the hard regime) and one excess color *)
  let rows_n =
    List.concat_map
      (fun alpha ->
        let g = clique_for alpha in
        let st0 = rng (4200 + alpha) in
        let exact = run_instance st0 g (Palette.full g alpha) in
        let st1 = rng (4300 + alpha) in
        let slack = run_instance st1 g (Palette.full g (alpha + 1)) in
        [
          [
            Printf.sprintf "K%d" (2 * alpha);
            d alpha;
            d exact.max_len;
            d exact.max_explored;
            d slack.max_len;
            d slack.max_explored;
            f1 (log (float_of_int (G.n g)) *. float_of_int alpha);
          ];
        ])
      [ 4; 6; 8; 10; 12 ]
  in
  table
    ~title:"exact (excess 0) vs one excess color, growing cliques"
    ~header:
      [
        "graph"; "alpha"; "len@0"; "|E_i|@0"; "len@1"; "|E_i|@1";
        "a log n";
      ]
    ~rows:rows_n;
  (* growth-ratio check (Prop 3.3) on multigraph forest unions under
     pressure: excess 1 of a large alpha so multi-iteration searches occur *)
  let rows_mg =
    List.map
      (fun n ->
        let st = rng (4400 + n) in
        let g = Gen.forest_union st n 6 in
        let agg = run_instance st g (Palette.full g 7) in
        [ d n; d agg.max_len; d agg.max_iters; d agg.max_explored;
          growth_cell agg ])
      [ 100; 200; 400 ]
  in
  table ~title:"forest-union multigraphs, alpha = 6, one excess color"
    ~header:[ "n"; "max seq len"; "max iters"; "max |E_i|"; "min growth" ]
    ~rows:rows_mg;
  note
    "with any slack the searches stay short and local (Theorem 3.2); at \
     the exact bound the explored sets blow up with alpha — the locality \
     really is bought by the (1+eps) palette slack (Prop 3.3's growth \
     ratio stays >= 1+eps whenever multiple iterations happen).";
  note
    "Figures 1 and 2 of the paper correspond to examples/augment_trace.exe, \
     which prints a live sequence and the |E_i| growth."
