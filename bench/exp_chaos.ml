(* CHAOS — fault injection & recovery (lib/chaos; docs/fault-model.md).

   The paper's model is fail-free and synchronous; this experiment
   deliberately breaks each assumption in turn — message loss,
   duplication, delay, link flap, adversarial delivery order, node
   crash, crash-restart-with-state-loss — on the two algorithms that run
   on the genuine message-passing kernel (H-partition peeling and the
   Cole–Vishkin star-forest pipeline), classifies every run by
   re-verification (valid / detectably-invalid / silently-corrupt), and
   measures how often the bounded retry-with-backoff recovery policy
   rescues a failing epoch. Everything is seed-driven: the whole table
   is a deterministic function of the plan/seed matrix. *)

open Exp_common
module H = Nw_core.H_partition
module Net = Nw_localsim.Msg_net
module Plan = Nw_chaos.Plan
module Harness = Nw_chaos.Harness

(* H-partition validity: every vertex assigned a layer, and with at most
   [threshold] incident edges toward its own or a higher layer *)
let verify_h g (hp : H.t) =
  let n = G.n g in
  let rec unassigned v =
    if v >= n then None
    else if hp.H.layer.(v) < 0 then Some v
    else unassigned (v + 1)
  in
  match unassigned 0 with
  | Some v -> Error (Printf.sprintf "vertex %d has no layer" v)
  | None ->
      let bad = ref None in
      for v = 0 to n - 1 do
        let up =
          Array.fold_left
            (fun acc (w, _) ->
              if hp.H.layer.(w) >= hp.H.layer.(v) then acc + 1 else acc)
            0 (G.incident g v)
        in
        if up > hp.H.threshold && !bad = None then bad := Some (v, up)
      done;
      (match !bad with
      | Some (v, up) ->
          Error
            (Printf.sprintf "vertex %d: %d same-or-higher neighbors > t=%d" v
               up hp.H.threshold)
      | None -> Ok ())

let plans =
  [
    "drop=0.15";
    "delay=0.3:2";
    "dup=0.3x2,reorder";
    "flap=0:2/2";
    "crash=0@2";
    "restart=1@1+2";
    "drop=0.6";
  ]

let parse_plan s =
  match Plan.of_string s with
  | Ok p -> p
  | Error msg -> failwith msg

let run () =
  section "CHAOS: fault injection & recovery on the message kernel";
  let st = rng 0xc4a05 in
  let g = Gen.forest_union st 48 3 in
  let gs = Gen.forest_union_simple st 48 3 in
  let ids = Array.init (G.n gs) (fun v -> v) in
  let run_h () =
    let rounds = Rounds.create () in
    H.compute g ~epsilon:0.5 ~alpha_star:3 ~rounds
  in
  let run_star () =
    let rounds = Rounds.create () in
    let hp = H.compute gs ~epsilon:0.5 ~alpha_star:3 ~rounds in
    let o = H.orientation gs hp ~ids in
    H.star_forest_decomposition gs o ~ids ~rounds
  in
  (* golden differential: empty plan == no chaos context, byte for byte *)
  let plain, under_empty =
    Harness.differential ~seed:1 ~run:(fun () ->
        let hp = run_h () in
        Array.to_list hp.H.layer)
  in
  out "golden differential (empty plan): %s\n"
    (if List.equal Int.equal plain under_empty then "identical" else "DIVERGED");
  let matrix (label, runv, verify) =
    List.concat_map
      (fun plan_str ->
        let plan = parse_plan plan_str in
        List.map
          (fun seed ->
            let r =
              Harness.run_epochs ~plan ~seed ~epochs:2
                ~policy:Harness.default_policy ~verify ~run:runv ()
            in
            let sum f =
              List.fold_left
                (fun acc (ep : Harness.epoch) ->
                  List.fold_left
                    (fun acc (a : Harness.attempt) -> acc + f a.Harness.counts)
                    acc ep.Harness.attempts)
                0 r.Harness.epochs
            in
            [
              plan_str;
              label;
              d seed;
              d r.Harness.valid;
              d r.Harness.detected;
              d r.Harness.corrupt;
              d r.Harness.recoveries;
              d (sum (fun c -> c.Harness.drops));
              d (sum (fun c -> c.Harness.dups));
              d (sum (fun c -> c.Harness.delays));
              d (sum (fun c -> c.Harness.restarts));
            ])
          [ 1; 2; 3 ])
      plans
  in
  table
    ~title:
      "fault matrix: 2 epochs per (plan, seed), default recovery policy \
       (2 retries, decay 0.5)"
    ~header:
      [
        "plan"; "algo"; "seed"; "valid"; "det"; "corr"; "rec"; "drops";
        "dups"; "delays"; "restarts";
      ]
    ~rows:
      (matrix ("h-part", (fun () -> run_h ()), verify_h g)
      @ matrix
          ( "star",
            (fun () -> run_star ()),
            fun c -> Nw_decomp.Verify.star_forest_decomposition c ));
  (* deterministic replay: the same (plan, seed) pair twice must agree on
     every outcome and on the fault-timeline digests *)
  let plan = parse_plan "drop=0.25,delay=0.2:2,reorder" in
  let fingerprint () =
    let r =
      Harness.run_epochs ~plan ~seed:7 ~epochs:3 ~policy:Harness.no_retry
        ~verify:(verify_h g) ~run:run_h ()
    in
    List.map
      (fun (ep : Harness.epoch) ->
        List.map
          (fun (a : Harness.attempt) ->
            ( Harness.outcome_label a.Harness.outcome,
              a.Harness.counts.Harness.digest ))
          ep.Harness.attempts)
      r.Harness.epochs
  in
  let f1 = fingerprint () and f2 = fingerprint () in
  let same =
    List.equal
      (List.equal (fun (o1, d1) (o2, d2) ->
           String.equal o1 o2 && Int64.equal d1 d2))
      f1 f2
  in
  out "deterministic replay (plan drop=0.25,delay=0.2:2,reorder seed 7): %s\n"
    (if same then "identical timelines" else "DIVERGED");
  if not same then failwith "chaos: replay diverged";
  if not (List.equal Int.equal plain under_empty) then
    failwith "chaos: golden differential diverged";
  flush_out ()
