(* Shared toolkit for the experiment harness: fixed-seed RNGs, table
   rendering, and verified-measurement helpers. Every number printed by an
   experiment is produced after the corresponding output passed the
   Nw_decomp.Verify checkers, so the tables cannot report invalid
   decompositions. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Rounds = Nw_localsim.Rounds
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Verify = Nw_decomp.Verify

let rng seed = Random.State.make [| seed; 0xbead |]

(* ------------------------------------------------------------------ *)
(* round attribution                                                   *)
(* ------------------------------------------------------------------ *)

(* Experiments are attributed rounds per *domain*, not via the process-wide
   grand total: under `--domains K` every experiment runs wholly on one
   domain, so the delta of [Rounds.domain_total] around it counts exactly
   the charges of that experiment, while grand-total deltas would also
   absorb whatever the other workers charged meanwhile. *)
let domain_rounds_baseline () = Rounds.domain_total ()
let domain_rounds_since r0 = Rounds.domain_total () - r0

(* ------------------------------------------------------------------ *)
(* output sink                                                         *)
(* ------------------------------------------------------------------ *)

(* Every printing helper below writes through a domain-local sink. In the
   default (sequential) mode the sink is stdout; when `--domains K` fans
   experiments across Domain.spawn workers, each worker redirects its sink
   to a per-experiment buffer so tables never interleave — the harness
   prints the buffers in experiment order after joining. *)
let sink : Buffer.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_sink buf f =
  Domain.DLS.set sink (Some buf);
  Fun.protect ~finally:(fun () -> Domain.DLS.set sink None) f

let emit s =
  match Domain.DLS.get sink with
  | Some b -> Buffer.add_string b s
  | None -> print_string s

let out fmt = Printf.ksprintf emit fmt

let flush_out () =
  match Domain.DLS.get sink with None -> flush stdout | Some _ -> ()

(* ------------------------------------------------------------------ *)
(* table rendering                                                     *)
(* ------------------------------------------------------------------ *)

(* when set (--csv DIR), every table is also written as DIR/<slug>.csv *)
let csv_dir : string option ref = ref None

(* set by the harness under --json: experiments that persist their own
   record (exp_scaling's BENCH_scaling.json) key off this *)
let json_enabled = ref false

let csv_slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '_')
    title

let write_csv ~title ~header ~rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      (* tolerate the mkdir race between parallel bench domains *)
      (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
       with Sys_error _ -> ());
      let path = Filename.concat dir (csv_slug title ^ ".csv") in
      let oc = open_out path in
      let quote cell =
        if String.exists (fun c -> c = ',' || c = '"') cell then
          "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
        else cell
      in
      List.iter
        (fun row ->
          output_string oc (String.concat "," (List.map quote row));
          output_char oc '\n')
        (header :: rows);
      close_out oc

let hrule widths =
  String.concat "-+-" (List.map (fun w -> String.make w '-') widths)

let render_row widths cells =
  String.concat " | "
    (List.map2
       (fun w c ->
         if String.length c >= w then c
         else c ^ String.make (w - String.length c) ' ')
       widths cells)

let table ~title ~header ~rows =
  let all = header :: rows in
  let columns = List.length header in
  let widths =
    List.init columns (fun i ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          0 all)
  in
  out "\n== %s ==\n" title;
  out "%s\n" (render_row widths header);
  out "%s\n" (hrule widths);
  List.iter (fun row -> out "%s\n" (render_row widths row)) rows;
  write_csv ~title ~header ~rows;
  flush_out ()

let note fmt = Printf.ksprintf (fun s -> emit ("   " ^ s ^ "\n")) fmt

let section title =
  out "\n######## %s ########\n" title;
  flush_out ()

(* ------------------------------------------------------------------ *)
(* formatting                                                          *)
(* ------------------------------------------------------------------ *)

let d = string_of_int
let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let yes_no b = if b then "yes" else "no"

(* asserts validity and returns a printable tag; the harness aborts loudly
   if an algorithm ever produces a bad output *)
let verified report =
  match report with
  | Ok () -> "ok"
  | Error msg -> failwith ("benchmark produced an invalid output: " ^ msg)

(* ------------------------------------------------------------------ *)
(* measured decompositions                                             *)
(* ------------------------------------------------------------------ *)

type fd_measurement = {
  colors : int;
  diameter : int;
  rounds : int;
  valid : string;
}

let measure_fd ?(star = false) coloring rounds =
  let report =
    if star then Verify.star_forest_decomposition coloring
    else Verify.forest_decomposition coloring
  in
  {
    colors = Verify.colors_used coloring;
    diameter = Verify.max_forest_diameter coloring;
    rounds = Rounds.total rounds;
    valid = verified report;
  }
