(* Shared toolkit for the experiment harness: fixed-seed RNGs, table
   rendering, and verified-measurement helpers. Every number printed by an
   experiment is produced after the corresponding output passed the
   Nw_decomp.Verify checkers, so the tables cannot report invalid
   decompositions. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Rounds = Nw_localsim.Rounds
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Verify = Nw_decomp.Verify

let rng seed = Random.State.make [| seed; 0xbead |]

(* ------------------------------------------------------------------ *)
(* table rendering                                                     *)
(* ------------------------------------------------------------------ *)

(* when set (--csv DIR), every table is also written as DIR/<slug>.csv *)
let csv_dir : string option ref = ref None

let csv_slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '_')
    title

let write_csv ~title ~header ~rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (csv_slug title ^ ".csv") in
      let oc = open_out path in
      let quote cell =
        if String.exists (fun c -> c = ',' || c = '"') cell then
          "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
        else cell
      in
      List.iter
        (fun row ->
          output_string oc (String.concat "," (List.map quote row));
          output_char oc '\n')
        (header :: rows);
      close_out oc

let hrule widths =
  String.concat "-+-" (List.map (fun w -> String.make w '-') widths)

let render_row widths cells =
  String.concat " | "
    (List.map2
       (fun w c ->
         if String.length c >= w then c
         else c ^ String.make (w - String.length c) ' ')
       widths cells)

let table ~title ~header ~rows =
  let all = header :: rows in
  let columns = List.length header in
  let widths =
    List.init columns (fun i ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          0 all)
  in
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n" (render_row widths header);
  Printf.printf "%s\n" (hrule widths);
  List.iter (fun row -> Printf.printf "%s\n" (render_row widths row)) rows;
  write_csv ~title ~header ~rows;
  flush stdout

let note fmt = Printf.printf ("   " ^^ fmt ^^ "\n")

let section title =
  Printf.printf "\n######## %s ########\n" title;
  flush stdout

(* ------------------------------------------------------------------ *)
(* formatting                                                          *)
(* ------------------------------------------------------------------ *)

let d = string_of_int
let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let yes_no b = if b then "yes" else "no"

(* asserts validity and returns a printable tag; the harness aborts loudly
   if an algorithm ever produces a bad output *)
let verified report =
  match report with
  | Ok () -> "ok"
  | Error msg -> failwith ("benchmark produced an invalid output: " ^ msg)

(* ------------------------------------------------------------------ *)
(* measured decompositions                                             *)
(* ------------------------------------------------------------------ *)

type fd_measurement = {
  colors : int;
  diameter : int;
  rounds : int;
  valid : string;
}

let measure_fd ?(star = false) coloring rounds =
  let report =
    if star then Verify.star_forest_decomposition coloring
    else Verify.forest_decomposition coloring
  in
  {
    colors = Verify.colors_used coloring;
    diameter = Verify.max_forest_diameter coloring;
    rounds = Rounds.total rounds;
    valid = verified report;
  }
