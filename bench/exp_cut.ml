(* E6 — Theorem 4.2: the CUT load-balancing rules (Figure 3's machinery).

   Paper claims: CUT can be implemented so that w.h.p. the execution of
   Algorithm 2 is good (every cluster gets monochromatically disconnected
   from distance R) while the removed edges keep pseudo-arboricity at most
   ceil(eps*alpha). We run Algorithm 2 once per rule on a fitting instance
   and report: good-cut fraction, leftover size, exact leftover
   pseudo-arboricity vs the ceil(eps*alpha) budget, and stalls. *)

open Exp_common
module FA = Nw_core.Forest_algo
module Cut = Nw_core.Cut

let run_rule name cut g alpha epsilon =
  let st = rng (5000 + Hashtbl.hash name) in
  let palette =
    Palette.full g (int_of_float (ceil ((1. +. epsilon) *. float_of_int alpha)))
  in
  let radii =
    FA.default_radii ~n:(G.n g) ~epsilon ~alpha ~max_degree:(G.max_degree g)
      ~cut
  in
  let rounds = Rounds.create () in
  let coloring, removed, stats =
    Nw_engine.Run.decompose_with_leftover g palette ~epsilon ~alpha ~cut ~radii ~rng:st
      ~rounds
  in
  verified (Verify.partial_forest_decomposition coloring) |> ignore;
  let leftover_graph, _ = G.subgraph_of_edges g removed in
  let pa, _ = Nw_graphs.Arboricity.pseudo_arboricity leftover_graph in
  let budget = int_of_float (ceil (epsilon *. float_of_int alpha)) in
  let total_cuts = stats.FA.good_cuts + stats.FA.bad_cuts in
  [
    name;
    Printf.sprintf "(%d,%d)" (fst radii) (snd radii);
    Printf.sprintf "%d/%d" stats.FA.good_cuts (max 1 total_cuts);
    d stats.FA.leftover_edges;
    Printf.sprintf "%d<=%d" pa budget;
    d stats.FA.stalls;
    d (Rounds.total rounds);
  ]

let run () =
  section "E6: Theorem 4.2 (CUT rules: goodness and leftover sparsity)";
  let alpha = 6 and epsilon = 1.0 in
  let g = Gen.forest_union (rng 5001) 300 alpha in
  let rows =
    [
      run_rule "Depth_mod (4.2(2))" Cut.Depth_mod g alpha epsilon;
      run_rule "Diam_reduce (4.2(1))" Cut.Diam_reduce g alpha epsilon;
      run_rule "Sampled eta=0.5 (4.2(4))" (Cut.Sampled 0.5) g alpha epsilon;
      run_rule "Sampled eta=0.25 (4.2(3))" (Cut.Sampled 0.25) g alpha epsilon;
    ]
  in
  table
    ~title:
      (Printf.sprintf
         "CUT rules on a forest-union multigraph (n=300, alpha=%d, eps=%g)"
         alpha epsilon)
    ~header:
      [ "rule"; "radii (R,R')"; "good cuts"; "leftover"; "pa <= budget";
        "stalls"; "rounds" ]
    ~rows;
  note
    "Depth_mod cuts with probability one (paper: 'the execution is always \
     good'); the sampled rules trade a larger radius R for small alpha \
     support. Leftover pseudo-arboricity stays within ceil(eps*alpha)."
