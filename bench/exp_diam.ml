(* E4 — Proposition 2.4 / Corollary 2.5: diameter reduction.

   Paper claims: any k-FD can be relaxed to a (k + ceil(eps*alpha))-FD of
   diameter O(log n / eps), and O(1/eps) when alpha is large enough. We
   start from an exact alpha-FD (whose trees are long), sweep eps, and
   report the diameter before/after, the bound, and the extra colors
   against the ceil(eps*alpha) budget. *)

open Exp_common

let run () =
  section "E4: Prop 2.4 / Cor 2.5 (diameter reduction)";
  let alpha = 6 in
  let n = 400 in
  let g = Gen.forest_union (rng 3000) n alpha in
  let exact =
    match Nw_baseline.Gabow_westermann.forest_partition g alpha with
    | Ok c -> c
    | Error _ -> failwith "exact decomposition failed"
  in
  let before = Verify.max_forest_diameter exact in
  let ids = Array.init n (fun v -> v) in
  let run_target name target =
    let rows =
      List.map
        (fun epsilon ->
          let st = rng (3100 + int_of_float (100. *. epsilon)) in
          let rounds = Rounds.create () in
          let reduced, extra =
            Nw_core.Diameter_reduction.reduce exact ~target ~epsilon ~alpha
              ~ids ~rng:st ~rounds
          in
          let m = measure_fd reduced rounds in
          let budget =
            int_of_float (ceil (epsilon *. float_of_int alpha))
          in
          let bound =
            match target with
            | `Log_over_eps ->
                2
                + 2
                  * int_of_float
                      (ceil (20. *. (log (float_of_int n) +. 1.) /. epsilon))
            | `Inv_eps -> 2 * int_of_float (ceil (40. /. epsilon))
          in
          [
            f2 epsilon;
            d before;
            d m.diameter;
            d bound;
            Printf.sprintf "%d vs %d" extra budget;
            m.valid;
            d m.rounds;
          ])
        [ 2.0; 1.0; 0.5 ]
    in
    table ~title:name
      ~header:
        [
          "eps"; "diam before"; "diam after"; "bound"; "extra colors vs \
                                                        ceil(eps*a)";
          "valid"; "rounds";
        ]
      ~rows
  in
  run_target
    (Printf.sprintf "diameter target O(log n/eps) (n=%d, alpha=%d)" n alpha)
    `Log_over_eps;
  run_target
    (Printf.sprintf "diameter target O(1/eps) (n=%d, alpha=%d)" n alpha)
    `Inv_eps;
  note
    "after reduction every monochromatic tree is short; extra colors may \
     exceed ceil(eps*alpha) at small alpha because the star recoloring \
     rounds 2.1x the leftover pseudo-arboricity up (the paper's w.h.p. \
     bound kicks in for larger alpha)."
