(* E7 — Theorem 4.6 end-to-end: (1+eps)*alpha forest decomposition, against
   the Barenboim-Elkin (2+eps)*alpha* baseline and the exact centralized
   decomposition.

   The paper's headline: below-2*alpha forest decomposition is possible in
   polylog rounds (answering [BE13, Open Problem 11.10]). The "who wins"
   shape to reproduce: exact <= ours < BE, with ours within (1+eps)*alpha.
   Randomized algorithms are run over several seeds; color counts are
   reported as mean (max). *)

open Exp_common
module FA = Nw_core.Forest_algo

let trials = 5

let run () =
  section "E7: Theorem 4.6 vs Barenboim-Elkin vs exact";
  let epsilon = 0.5 in
  let cases =
    [
      ("forest-union a=4", Gen.forest_union (rng 6001) 200 4, 4);
      ("forest-union a=8", Gen.forest_union (rng 6002) 200 8, 8);
      ("forest-union a=16", Gen.forest_union (rng 6003) 160 16, 16);
      ("grid 14x14", Gen.grid 14 14, 2);
      ("K12", Gen.complete 12, 6);
      ("line-multi 60x5", Gen.line_multigraph 60 5, 5);
      ("planted a=5", Gen.planted_alpha (rng 6004) 220 5 150, 6);
      ("k-tree k=4", Gen.random_k_tree (rng 6005) 150 4, 4);
      ("pref-attach k=5", Gen.preferential_attachment (rng 6006) 200 5, 5);
    ]
  in
  let rows =
    List.map
      (fun (name, g, alpha) ->
        let alpha_exact, _ = Nw_baseline.Gabow_westermann.arboricity g in
        let alpha_star, _ = Nw_graphs.Arboricity.pseudo_arboricity g in
        let ours = ref [] and be = ref [] and wins = ref 0 in
        let our_rounds = ref 0 in
        for t = 0 to trials - 1 do
          let st = rng (6100 + (100 * t) + Hashtbl.hash name) in
          let be_rounds = Rounds.create () in
          let be_c =
            Nw_baseline.Barenboim_elkin.decompose g ~epsilon ~alpha_star
              ~rng:st ~rounds:be_rounds
          in
          let be_m = measure_fd be_c be_rounds in
          let rounds = Rounds.create () in
          let ours_c, _ =
            Nw_engine.Run.forest_decomposition g ~epsilon ~alpha:alpha_exact ~rng:st
              ~rounds ()
          in
          let m = measure_fd ours_c rounds in
          ours := m.colors :: !ours;
          be := be_m.colors :: !be;
          our_rounds := max !our_rounds m.rounds;
          if m.colors < be_m.colors then incr wins
        done;
        let target =
          int_of_float (ceil ((1. +. epsilon) *. float_of_int alpha_exact))
        in
        ignore alpha;
        [
          name;
          d alpha_exact;
          Exp_stats.pp_mean_max (Exp_stats.of_ints !ours);
          d target;
          Exp_stats.pp_mean_max (Exp_stats.of_ints !be);
          Printf.sprintf "%d/%d" !wins trials;
          d !our_rounds;
        ])
      cases
  in
  table
    ~title:
      (Printf.sprintf
         "forest decomposition colors over %d seeds (eps = 0.5; target = \
          ceil(1.5 a))"
         trials)
    ~header:
      [
        "instance"; "alpha"; "ours mean (max)"; "target"; "BE mean (max)";
        "ours<BE"; "max rounds";
      ]
    ~rows;
  note
    "ours lands within (1+eps)*alpha and beats the (2+eps)*alpha* baseline \
     on every instance and every seed — the paper's answer to [BE13, Open \
     Problem 11.10].";
  note
    "BE finishes in O(log n/eps) rounds while ours pays the polylog \
     Algorithm-2 machinery; E15 sweeps that trade."
