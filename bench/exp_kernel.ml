(* E16 — kernel fidelity: the two primitives that run on the genuine
   message-passing kernel (H-partition peeling and Cole–Vishkin coloring)
   report *executed* rounds, not charged formulas. This experiment sweeps n
   and compares those real round counts against the paper shapes
   (O(log n / eps) peeling; log* n + O(1) coloring), and reports message
   counts — the only experiment whose LOCAL costs are measured rather than
   charged. *)

open Exp_common
module CV = Nw_core.Cole_vishkin
module H = Nw_core.H_partition

let log_star n =
  let rec go x acc = if x <= 1.0 then acc else go (log x /. log 2.0) (acc + 1) in
  go (float_of_int n) 0

let run () =
  section "E16: message-passing kernel fidelity (executed rounds)";
  (* peeling on binary trees: rounds = depth, the O(log n) worst case *)
  let peel_rows =
    List.map
      (fun depth ->
        let g = Gen.binary_tree depth in
        let rounds = Rounds.create () in
        let hp = H.compute g ~epsilon:0.5 ~alpha_star:1 ~rounds in
        [
          d (G.n g);
          d (Rounds.total rounds);
          d hp.H.num_layers;
          d (1 + depth);
        ])
      [ 4; 6; 8; 10; 12 ]
  in
  table ~title:"H-partition peeling, executed rounds (binary trees)"
    ~header:[ "n"; "executed rounds"; "layers"; "depth+1" ]
    ~rows:peel_rows;
  (* Cole-Vishkin on paths: rounds ~ log* n + shift-down constant *)
  let cv_rows =
    List.map
      (fun n ->
        let g = Gen.path n in
        let parent_edge =
          Array.init n (fun v -> if v = 0 then -1 else v - 1)
        in
        let rounds = Rounds.create () in
        let colors =
          CV.three_color g ~parent_edge
            ~ids:(Array.init n (fun v -> v))
            ~rounds
        in
        let proper =
          G.fold_edges (fun _ u v ok -> ok && colors.(u) <> colors.(v)) g true
        in
        [
          d n;
          d (Rounds.total rounds);
          d (log_star n);
          yes_no proper;
        ])
      [ 10; 100; 1000; 10000; 100000 ]
  in
  table ~title:"Cole-Vishkin 3-coloring, executed rounds (paths)"
    ~header:[ "n"; "executed rounds"; "log* n"; "proper" ]
    ~rows:cv_rows;
  note
    "peeling tracks the tree depth exactly; Cole-Vishkin's executed rounds \
     barely move across four orders of magnitude of n — the log* shape. \
     These two numbers are real synchronous rounds on the message kernel, \
     anchoring the charge model used everywhere else."
