(* E8 — Theorems 4.9 / 4.10: vertex-color splitting and list-forest
   decomposition.

   Paper claims: with palettes of size (1+eps)*alpha, a vertex-color
   splitting yields induced palettes of sizes k0 >= (1+eps/2)*alpha and
   k1 >= Ω(eps*alpha); running Algorithm 2 on side 0 and recoloring the
   leftover on side 1 gives a complete LFD. The w.h.p. statements need
   eps*alpha >> log n, so alpha is large here. *)

open Exp_common
module CS = Nw_core.Color_split
module FA = Nw_core.Forest_algo

let run () =
  section "E8: Theorems 4.9/4.10 (vertex-color splitting, LFD)";
  (* split sizes *)
  let split_rows =
    List.map
      (fun alpha ->
        let st = rng (7000 + alpha) in
        let n = 100 in
        let g = Gen.forest_union st n alpha in
        let epsilon = 1.0 in
        let colors = 3 * alpha in
        let palette = Palette.full g colors in
        let rounds = Rounds.create () in
        let split = CS.mpx_split g ~colors ~epsilon ~rng:st ~rounds in
        let k0, k1 = CS.sizes g split palette in
        let need0 =
          int_of_float (ceil ((1. +. (epsilon /. 2.)) *. float_of_int alpha))
        in
        [
          d alpha;
          d colors;
          d k0;
          d need0;
          yes_no (k0 >= need0);
          d k1;
          d (Rounds.total rounds);
        ])
      [ 10; 20; 40; 80 ]
  in
  table
    ~title:
      "Theorem 4.9(1): MPX splitting of full palettes (n = 100, eps = 1)"
    ~header:
      [ "alpha"; "|C|"; "k0"; "need k0"; "k0 ok"; "k1"; "rounds" ]
    ~rows:split_rows;
  (* end-to-end LFD *)
  let lfd_rows =
    List.map
      (fun (alpha, n) ->
        let st = rng (7100 + alpha) in
        let g = Gen.forest_union st n alpha in
        let colors = 3 * alpha in
        let palette = Palette.full g colors in
        let rounds = Rounds.create () in
        let coloring, stats =
          Nw_engine.Run.list_forest_decomposition g palette ~epsilon:1.0 ~alpha ~rng:st
            ~rounds ()
        in
        let m = measure_fd coloring rounds in
        let lists = Verify.respects_palette coloring palette in
        [
          d alpha;
          d n;
          d (G.m g);
          d m.colors;
          d stats.FA.leftover_edges;
          m.valid;
          verified lists;
          d m.rounds;
        ])
      [ (30, 100); (50, 110) ]
  in
  table ~title:"Theorem 4.10: complete LFD from (3 alpha)-color palettes"
    ~header:
      [
        "alpha"; "n"; "m"; "colors used"; "leftover"; "forest ok"; "lists ok";
        "rounds";
      ]
    ~rows:lfd_rows;
  note
    "side-0 palettes stay big enough for the main pass and the reserved \
     side-1 palettes absorb the leftover (Prop 4.8 combination verified by \
     construction)."
