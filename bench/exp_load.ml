(* E14 — the load-balancing internals of the sampled CUT (Prop 4.3 /
   Lemma 4.4, the machinery extended from [SV19b]).

   The sampled rule maintains per-vertex deletion counters L(v) capped at
   ceil(eps*alpha); Lemma 4.4 needs the overloaded vertices (L(v) at the
   cap) to stay rare so that live branches keep enough underloaded edges to
   be cut. We invoke CUT(Sampled) many times on a long path-of-cliques
   style graph and track the counter distribution, the overloaded fraction,
   and whether executions stay good. *)

open Exp_common
module Cut = Nw_core.Cut

(* long band: a path of K5s chained by single edges — diameter Θ(n),
   arboricity that of K5 (= 3), so regions are real *)
let band cliques =
  let size = 5 in
  let n = cliques * size in
  let b = G.create_builder n in
  for c = 0 to cliques - 1 do
    let base = c * size in
    for u = 0 to size - 1 do
      for v = u + 1 to size - 1 do
        ignore (G.add_edge b (base + u) (base + v))
      done
    done;
    if c > 0 then ignore (G.add_edge b (base - 1) base)
  done;
  G.build b

let run () =
  section "E14: sampled-CUT load balancing (Prop 4.3 / Lemma 4.4)";
  let g = band 40 in
  let alpha = 3 in
  let exact =
    match Nw_baseline.Gabow_westermann.forest_partition g alpha with
    | Ok c -> c
    | Error _ -> failwith "band must decompose into 3 forests"
  in
  let rows =
    List.map
      (fun epsilon ->
        let st = rng (12000 + int_of_float (10. *. epsilon)) in
        let rounds = Rounds.create () in
        let radius = 20 in
        let cut =
          Cut.create g (Cut.Sampled 0.5) ~epsilon ~alpha ~radius
            ~num_classes:10 ~rng:st ~rounds
        in
        let coloring = Coloring.copy exact in
        let removed = Array.make (G.m g) false in
        let invocations = 10 in
        let good = ref 0 in
        for i = 0 to invocations - 1 do
          (* slide the cluster along the band *)
          let center = (i * G.n g) / invocations in
          let core = G.ball_of_set g [ center ] 3 in
          let region = G.ball_of_set g [ center ] (3 + radius) in
          Cut.execute cut coloring ~core ~region ~removed;
          if Cut.is_good coloring ~core ~region then incr good
        done;
        let counters = Option.get (Cut.load_counters cut) in
        let cap = Option.get (Cut.overload_cap cut) in
        let stats = Exp_stats.of_ints (Array.to_list counters) in
        let overloaded =
          Array.fold_left
            (fun acc c -> if c >= cap then acc + 1 else acc)
            0 counters
        in
        let sub, _ = G.subgraph_of_edges g removed in
        let pa, _ = Nw_graphs.Arboricity.pseudo_arboricity sub in
        [
          f2 epsilon;
          d cap;
          Exp_stats.pp_mean_sd stats;
          Printf.sprintf "%d/%d" overloaded (G.n g);
          Printf.sprintf "%d/%d" !good invocations;
          Printf.sprintf "%d<=%d" pa cap;
          (match Cut.sampling_probability cut with
          | Some p -> f2 p
          | None -> "-");
        ])
      [ 2.0; 1.0; 0.5 ]
  in
  table
    ~title:
      "10 sliding CUT(Sampled 0.5) invocations on a 40-clique band (alpha=3)"
    ~header:
      [
        "eps"; "cap"; "L(v) mean+-sd"; "overloaded"; "good"; "leftover pa";
        "p";
      ]
    ~rows;
  note
    "at simulation scale the Lemma 4.4 probability p saturates at 1 (its R \
     prescription is astronomically larger), so the counter cap — not the \
     sampling — is what protects the leftover: pseudo-arboricity stays \
     within ceil(eps*alpha) in every row, and all sliding executions stay \
     good. At paper scale p ~ alpha log n / (eta R) << 1 and the counters \
     would concentrate well below the cap (the mean column already sits \
     below it)."
