(* E11 — Proposition C.1: the diameter lower bound (the paper's only
   plot-like artifact).

   Paper claims: on the line multigraph (l vertices, alpha parallel edges
   between neighbors), ANY alpha(1+eps)-FD has a tree of diameter
   Ω(1/eps). We sweep eps, produce alpha(1+eps)-FDs with the O(1/eps)
   diameter-reduction pipeline, and print the achieved diameter next to
   the Prop C.1 lower bound — both scale as 1/eps, bracketing the truth. *)

open Exp_common

(* Lower bound from the Prop C.1 counting argument: any (1+eps)alpha-FD of
   the length-l line multigraph with trees of diameter <= d satisfies
   alpha(1+eps) * d * (1 + l/(d+1)) >= (l-1) * alpha. We report the
   smallest d passing it. *)
let prop_c1_bound l epsilon =
  let lf = float_of_int l in
  let feasible d =
    let df = float_of_int d in
    (1. +. epsilon) *. df *. (1. +. (lf /. (df +. 1.))) >= lf -. 1.
  in
  let rec search d = if feasible d then d else search (d + 1) in
  search 1

let run () =
  section "E11: Proposition C.1 (diameter lower bound on line multigraphs)";
  let alpha = 4 in
  let rows =
    List.map
      (fun epsilon ->
        let l = max 30 (int_of_float (ceil (24. /. epsilon))) in
        let g = Gen.line_multigraph l alpha in
        let st = rng (9500 + int_of_float (100. *. epsilon)) in
        let rounds = Rounds.create () in
        let coloring, _ =
          Nw_engine.Run.forest_decomposition g ~epsilon ~alpha
            ~diameter:`Inv_eps ~rng:st ~rounds ()
        in
        let m = measure_fd coloring rounds in
        let lower = prop_c1_bound l epsilon in
        let upper = 2 * int_of_float (ceil (40. /. epsilon)) in
        [
          f2 epsilon;
          d l;
          d m.colors;
          d lower;
          d m.diameter;
          d upper;
          f1 (1. /. epsilon);
          m.valid;
        ])
      [ 2.0; 1.0; 0.5; 0.25 ]
  in
  table
    ~title:
      (Printf.sprintf
         "line multigraph, alpha = %d: achieved diameter vs the Prop C.1 \
          lower bound"
         alpha)
    ~header:
      [
        "eps"; "l"; "colors"; "LB on diam"; "achieved diam"; "UB (Cor 2.5)";
        "1/eps"; "valid";
      ]
    ~rows;
  note
    "every achieved diameter sits between the Prop C.1 counting lower bound \
     and the Cor 2.5 O(1/eps) guarantee, and both bounds scale as 1/eps — \
     the matching-bounds sandwich of the paper."
