(* E10 — Corollary 1.1: (1+eps)*alpha-orientations with linear 1/eps
   dependence.

   Paper claims: a (1+eps)*alpha-FD of diameter D converts to a
   (1+eps)*alpha-orientation in O(D) extra rounds; the resulting algorithms
   are the first with linear dependence on 1/eps. We sweep eps and compare
   against the H-partition (2+eps)*alpha* orientation. *)

open Exp_common
module O = Nw_graphs.Orientation

let run () =
  section "E10: Corollary 1.1 (low out-degree orientation)";
  let alpha = 8 in
  let n = 200 in
  let g = Gen.forest_union (rng 9000) n alpha in
  let alpha_star, flow_o = Nw_graphs.Arboricity.pseudo_arboricity g in
  let rows =
    List.map
      (fun epsilon ->
        let st = rng (9100 + int_of_float (epsilon *. 100.)) in
        let rounds = Rounds.create () in
        let o, _ =
          Nw_engine.Run.orientation g ~epsilon ~alpha ~rng:st ~rounds ()
        in
        let be_rounds = Rounds.create () in
        let hp =
          Nw_core.H_partition.compute g ~epsilon ~alpha_star
            ~rounds:be_rounds
        in
        let o_be =
          Nw_core.H_partition.orientation g hp
            ~ids:(Array.init n (fun v -> v))
        in
        let target =
          int_of_float (ceil ((1. +. epsilon) *. float_of_int alpha))
        in
        [
          f2 epsilon;
          d (O.max_out_degree o);
          d target;
          d (O.max_out_degree o_be);
          d (O.max_out_degree flow_o);
          d (Rounds.total rounds);
          d (Rounds.total be_rounds);
        ])
      [ 1.0; 0.5; 0.25 ]
  in
  table
    ~title:
      (Printf.sprintf
         "orientations of a forest-union multigraph (alpha = %d, alpha* = %d)"
         alpha alpha_star)
    ~header:
      [
        "eps"; "ours"; "(1+eps)a"; "H-partition"; "exact a*"; "our rounds";
        "BE rounds";
      ]
    ~rows;
  note
    "ours tracks (1+eps)*alpha while the H-partition baseline pays \
     (2+eps)*alpha*; the exact flow orientation is the offline optimum."
