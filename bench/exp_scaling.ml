(* E15 — round-complexity scaling: the runtime column of Table 1 as a
   sweep over n.

   Theorem 4.6 charges O(log^3 n / eps) rounds when alpha >= Ω(log n) and
   O(log^4 n / eps) when alpha >= Ω(log Δ). We run the depth-mod pipeline
   at fixed alpha and eps over growing n and print total charged rounds
   next to log^3 n and log^4 n normalizations: a shape is reproduced when
   one of the ratio columns stays roughly flat. For contrast the
   Barenboim-Elkin baseline (O(log n / eps)) is swept too. *)

open Exp_common
module FA = Nw_core.Forest_algo
module Backend = Nw_graphs.Backend
module Dpool = Nw_localsim.Dpool

(* ------------------------------------------------------------------ *)
(* data-plane throughput sweep                                         *)
(* ------------------------------------------------------------------ *)

(* The same H-partition peel, on large forest-union instances (the top
   size is 10^7 edges), under each (backend, domains) configuration. The
   peel is the message-dense inner loop of the whole pipeline: every
   round is an all-incident counting broadcast, so edges/sec here is the
   data plane's streaming rate. Every configuration must produce the
   byte-identical layer array — the sweep aborts otherwise — making the
   table a differential test that happens to be timed. *)

let throughput_configs =
  [ (Backend.Boxed, 1); (Backend.Csr, 1); (Backend.Csr, 4) ]

type leg = {
  instance : string; (* which timed pipeline: "peel" or "hp-star" *)
  n : int;
  edges : int;
  backend : Backend.kind;
  domains : int;
  wall : float;
  eps : float; (* edges per second *)
}

let time_leg g ~alpha (backend, domains) =
  Backend.with_kind backend @@ fun () ->
  Dpool.with_domains domains @@ fun () ->
  let rounds = Rounds.create () in
  let t0 = Unix.gettimeofday () in
  let hp =
    Nw_core.H_partition.compute g ~epsilon:1.0 ~alpha_star:alpha ~rounds
  in
  let wall = Unix.gettimeofday () -. t0 in
  (hp, wall)

let throughput_sweep () =
  section "E15b: data-plane throughput (H-partition peel, edges/sec)";
  let alpha = 8 in
  let legs =
    List.concat_map
      (fun n ->
        let st = rng (15000 + n) in
        let g = Gen.forest_union st n alpha in
        let m = G.m g in
        let reference = ref None in
        List.map
          (fun (backend, domains) ->
            let hp, wall = time_leg g ~alpha (backend, domains) in
            let layer = hp.Nw_core.H_partition.layer in
            (match !reference with
            | None -> reference := Some layer
            | Some ref_layer ->
                Array.iteri
                  (fun v l ->
                    if l <> ref_layer.(v) then
                      failwith
                        (Printf.sprintf
                           "throughput sweep: %s/%d diverges from the boxed \
                            reference at vertex %d"
                           (Backend.to_string backend) domains v))
                  layer);
            {
              instance = "peel";
              n;
              edges = m;
              backend;
              domains;
              wall;
              eps = float_of_int m /. wall;
            })
          throughput_configs)
      [ 125_001; 1_250_001 (* m = alpha * (n - 1): 10^6 and 10^7 edges *) ]
  in
  let baseline_of leg =
    List.find
      (fun l -> l.n = leg.n && l.backend = Backend.Boxed && l.domains = 1)
      legs
  in
  table ~title:"H-partition peel throughput by data plane"
    ~header:[ "n"; "edges"; "backend"; "domains"; "wall s"; "edges/sec"; "vs boxed" ]
    ~rows:
      (List.map
         (fun leg ->
           [
             d leg.n;
             d leg.edges;
             Backend.to_string leg.backend;
             d leg.domains;
             Printf.sprintf "%.3f" leg.wall;
             Printf.sprintf "%.3e" leg.eps;
             Printf.sprintf "%.2fx" (leg.eps /. (baseline_of leg).eps);
           ])
         legs);
  note
    "identical layer arrays were asserted across every configuration; the \
     boxed leg runs the generic per-message list path (the seed baseline), \
     csr streams the packed adjacency plane.";
  legs

(* ------------------------------------------------------------------ *)
(* full-pipeline throughput sweep                                      *)
(* ------------------------------------------------------------------ *)

(* The peel sweep above times one message kernel; this one times a whole
   engine-run decomposition end to end — pass boundaries, artifact store,
   orientation build, Cole–Vishkin star-forest realization and the final
   verification all included — so edges/sec here is what a `forestd
   decompose` caller actually sees per data plane. The pipeline is the
   Theorem 2.1 chain (peel -> acyclic orientation -> 3t-star-forest),
   whose cost is adjacency streaming rather than augmenting-path search:
   the plane-bound regime the functorized core moves to CSR. Every
   configuration must produce the byte-identical coloring. *)

let hp_star_pipeline ~alpha =
  let open Nw_engine in
  {
    Engine.pl_name = "hp-star";
    passes =
      [
        {
          Engine.name = "hp.peel";
          reads = [ ("graph", `Graph) ];
          writes = [ ("hp", `Partition) ];
          run =
            (fun ctx store ->
              let g = Store.graph store "graph" in
              let hp =
                Nw_core.H_partition.compute g ~epsilon:1.0 ~alpha_star:alpha
                  ~rounds:ctx.Engine.rounds
              in
              Store.put store "hp" (Nw_engine.Artifact.Partition hp));
        };
        {
          Engine.name = "hp.orient";
          reads = [ ("graph", `Graph); ("hp", `Partition) ];
          writes = [ ("orientation", `Orientation) ];
          run =
            (fun _ctx store ->
              let g = Store.graph store "graph" in
              let hp = Store.partition store "hp" in
              let ids = Array.init (G.n g) (fun v -> v) in
              Store.put store "orientation"
                (Nw_engine.Artifact.Orientation
                   (Nw_core.H_partition.orientation g hp ~ids)));
        };
        {
          Engine.name = "hp.star";
          reads = [ ("graph", `Graph); ("orientation", `Orientation) ];
          writes = [ ("coloring", `Coloring) ];
          run =
            (fun ctx store ->
              let g = Store.graph store "graph" in
              let o = Store.orientation store "orientation" in
              let ids = Array.init (G.n g) (fun v -> v) in
              let c =
                Nw_core.H_partition.star_forest_decomposition g o ~ids
                  ~rounds:ctx.Engine.rounds
              in
              Store.put store "coloring" (Nw_engine.Artifact.Coloring c));
        };
      ];
  }

let time_pipeline_leg g ~alpha (backend, domains) =
  Backend.with_kind backend @@ fun () ->
  Dpool.with_domains domains @@ fun () ->
  let open Nw_engine in
  let rounds = Rounds.create () in
  let rng = Random.State.make [| 0x5ca1e |] in
  let t0 = Unix.gettimeofday () in
  let store =
    Engine.run
      (Engine.ctx ~rng ~rounds)
      (hp_star_pipeline ~alpha)
      ~init:(Store.put Store.empty "graph" (Nw_engine.Artifact.Graph g))
  in
  let coloring = Store.coloring store "coloring" in
  let wall = Unix.gettimeofday () -. t0 in
  (* verification is asserted but sits outside the timed window: it is
     plane-independent post-hoc checking, not pipeline work *)
  verified (Verify.star_forest_decomposition coloring) |> ignore;
  (coloring, wall)

let pipeline_sweep () =
  section "E15c: full-pipeline throughput (engine-run hp-star, edges/sec)";
  let alpha = 8 in
  let legs =
    List.concat_map
      (fun n ->
        let st = rng (15000 + n) in
        let g = Gen.forest_union st n alpha in
        let m = G.m g in
        let reference = ref None in
        List.map
          (fun (backend, domains) ->
            let coloring, wall = time_pipeline_leg g ~alpha (backend, domains) in
            let colors = Nw_decomp.Coloring.to_array coloring in
            (match !reference with
            | None -> reference := Some colors
            | Some ref_colors ->
                if colors <> ref_colors then
                  failwith
                    (Printf.sprintf
                       "pipeline sweep: %s/%d coloring diverges from the \
                        boxed reference"
                       (Backend.to_string backend) domains));
            {
              instance = "hp-star";
              n;
              edges = m;
              backend;
              domains;
              wall;
              eps = float_of_int m /. wall;
            })
          throughput_configs)
      [ 125_001; 1_250_001 ]
  in
  let baseline_of leg =
    List.find
      (fun l -> l.n = leg.n && l.backend = Backend.Boxed && l.domains = 1)
      legs
  in
  table ~title:"engine-run hp-star pipeline throughput by data plane"
    ~header:
      [ "n"; "edges"; "backend"; "domains"; "wall s"; "edges/sec"; "vs boxed" ]
    ~rows:
      (List.map
         (fun leg ->
           [
             d leg.n;
             d leg.edges;
             Backend.to_string leg.backend;
             d leg.domains;
             Printf.sprintf "%.3f" leg.wall;
             Printf.sprintf "%.3e" leg.eps;
             Printf.sprintf "%.2fx" (leg.eps /. (baseline_of leg).eps);
           ])
         legs);
  note
    "end-to-end engine walls (passes and artifact store; verification \
     asserted outside the timed window), byte-identical colorings \
     asserted across every configuration; contrast with the kernel-only \
     peel rows above.";
  legs

(* BENCH_scaling.json: a valid nw-bench/2 record whose additive
   [throughput] field persists the sweep (schema: docs/benchmarking.md;
   checked by validate_bench_json.exe). *)
let write_json legs wall_s =
  let oc = open_out "BENCH_scaling.json" in
  let leg_json l =
    Printf.sprintf
      "    { \"instance\": \"%s\", \"backend\": \"%s\", \"domains\": %d, \
       \"n\": %d, \"edges\": %d, \"wall_s\": %.6f, \"edges_per_sec\": %.1f }"
      l.instance
      (Backend.to_string l.backend)
      l.domains l.n l.edges l.wall l.eps
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"nw-bench/2\",\n\
    \  \"exp\": \"scaling\",\n\
    \  \"desc\": \"data-plane throughput sweep (H-partition peel)\",\n\
    \  \"quick\": false,\n\
    \  \"domains\": %d,\n\
    \  \"env\": {\n\
    \    \"backend\": \"%s\",\n\
    \    \"hostname\": \"%s\",\n\
    \    \"ocaml_version\": \"%s\",\n\
    \    \"stamped_at\": %.0f\n\
    \  },\n\
    \  \"rounds_attribution\": \"per-domain\",\n\
    \  \"counter_attribution\": \"exact\",\n\
    \  \"wall_s\": %.6f,\n\
    \  \"charged_rounds\": 0,\n\
    \  \"connectivity\": { \"uf_queries\": 0, \"bfs_runs\": 0, \"uf_rebuilds\": 0 },\n\
    \  \"throughput\": [\n%s\n  ],\n\
    \  \"phases\": null,\n\
    \  \"failed\": null\n\
     }\n"
    (List.fold_left (fun acc l -> max acc l.domains) 1 legs)
    (Backend.to_string (Backend.default ()))
    (try Unix.gethostname () with _ -> "unknown")
    Sys.ocaml_version (Unix.time ()) wall_s
    (String.concat ",\n" (List.map leg_json legs));
  close_out oc;
  out "wrote BENCH_scaling.json\n"

let run () =
  section "E15: round scaling vs n (Theorem 4.6 runtime column)";
  let alpha = 8 and epsilon = 0.5 in
  let rows =
    List.map
      (fun n ->
        let st = rng (13000 + n) in
        let g = Gen.forest_union st n alpha in
        let rounds = Rounds.create () in
        let coloring, _ =
          Nw_engine.Run.forest_decomposition g ~epsilon ~alpha ~cut:Nw_core.Cut.Depth_mod
            ~rng:st ~rounds ()
        in
        verified (Verify.forest_decomposition coloring) |> ignore;
        let total = float_of_int (Rounds.total rounds) in
        let be_rounds = Rounds.create () in
        let alpha_star, _ = Nw_graphs.Arboricity.pseudo_arboricity g in
        let _ =
          Nw_baseline.Barenboim_elkin.decompose g ~epsilon ~alpha_star
            ~rng:st ~rounds:be_rounds
        in
        let l = log (float_of_int n) in
        [
          d n;
          d (int_of_float total);
          f1 (total /. (l ** 3.0));
          f1 (total /. (l ** 4.0));
          d (Rounds.total be_rounds);
          f2 (float_of_int (Rounds.total be_rounds) /. l);
        ])
      [ 50; 100; 200; 400; 800; 1600; 3200 ]
  in
  table
    ~title:
      (Printf.sprintf
         "total charged rounds vs n (alpha = %d, eps = %g, depth-mod cut)"
         alpha epsilon)
    ~header:
      [
        "n"; "our rounds"; "/log^3 n"; "/log^4 n"; "BE rounds"; "BE/log n";
      ]
    ~rows;
  note
    "our charges grow polylogarithmically — both normalized columns decay, \
     i.e. observed growth is even below log^3 n because the network \
     decomposition collapses to O(1) clusters on these low-diameter inputs \
     (the paper's log^3/log^4 are worst-case) — while the absolute values \
     dwarf BE's O(log n/eps): the trade Theorem 4.6 makes to reach \
     (1+eps)*alpha colors.";
  let t0 = Unix.gettimeofday () in
  let legs = throughput_sweep () in
  let legs = legs @ pipeline_sweep () in
  if !Exp_common.json_enabled then
    write_json legs (Unix.gettimeofday () -. t0)
