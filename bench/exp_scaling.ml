(* E15 — round-complexity scaling: the runtime column of Table 1 as a
   sweep over n.

   Theorem 4.6 charges O(log^3 n / eps) rounds when alpha >= Ω(log n) and
   O(log^4 n / eps) when alpha >= Ω(log Δ). We run the depth-mod pipeline
   at fixed alpha and eps over growing n and print total charged rounds
   next to log^3 n and log^4 n normalizations: a shape is reproduced when
   one of the ratio columns stays roughly flat. For contrast the
   Barenboim-Elkin baseline (O(log n / eps)) is swept too. *)

open Exp_common
module FA = Nw_core.Forest_algo

let run () =
  section "E15: round scaling vs n (Theorem 4.6 runtime column)";
  let alpha = 8 and epsilon = 0.5 in
  let rows =
    List.map
      (fun n ->
        let st = rng (13000 + n) in
        let g = Gen.forest_union st n alpha in
        let rounds = Rounds.create () in
        let coloring, _ =
          Nw_engine.Run.forest_decomposition g ~epsilon ~alpha ~cut:Nw_core.Cut.Depth_mod
            ~rng:st ~rounds ()
        in
        verified (Verify.forest_decomposition coloring) |> ignore;
        let total = float_of_int (Rounds.total rounds) in
        let be_rounds = Rounds.create () in
        let alpha_star, _ = Nw_graphs.Arboricity.pseudo_arboricity g in
        let _ =
          Nw_baseline.Barenboim_elkin.decompose g ~epsilon ~alpha_star
            ~rng:st ~rounds:be_rounds
        in
        let l = log (float_of_int n) in
        [
          d n;
          d (int_of_float total);
          f1 (total /. (l ** 3.0));
          f1 (total /. (l ** 4.0));
          d (Rounds.total be_rounds);
          f2 (float_of_int (Rounds.total be_rounds) /. l);
        ])
      [ 50; 100; 200; 400; 800; 1600; 3200 ]
  in
  table
    ~title:
      (Printf.sprintf
         "total charged rounds vs n (alpha = %d, eps = %g, depth-mod cut)"
         alpha epsilon)
    ~header:
      [
        "n"; "our rounds"; "/log^3 n"; "/log^4 n"; "BE rounds"; "BE/log n";
      ]
    ~rows;
  note
    "our charges grow polylogarithmically — both normalized columns decay, \
     i.e. observed growth is even below log^3 n because the network \
     decomposition collapses to O(1) clusters on these low-diameter inputs \
     (the paper's log^3/log^4 are worst-case) — while the absolute values \
     dwarf BE's O(log n/eps): the trade Theorem 4.6 makes to reach \
     (1+eps)*alpha colors."
