(* E9 — Theorem 5.4 / Lemmas 5.2, 5.3: star-forest decomposition for simple
   graphs.

   Paper claims: (1+eps)*alpha-SFD when alpha >= Ω(sqrt(log Δ) + log alpha)
   — i.e. excess colors O(sqrt(log Δ) + log alpha) — and a list variant with
   perfect matchings when alpha >= Ω(log Δ). We sweep alpha, reporting the
   total colors against both alpha and the classical 2*alpha baseline, the
   worst matching deficiency (Lemma 5.2's 2*eps*alpha bound), and the
   LSFD's perfect-matching behaviour vs palette size (Lemma 5.3). *)

open Exp_common
module SF = Nw_core.Star_forest

let orientation_of g =
  let _, fd = Nw_baseline.Gabow_westermann.arboricity g in
  let rounds = Rounds.create () in
  Nw_core.Orient.of_forest_decomposition fd ~rounds

let run () =
  section "E9: Theorem 5.4 (star forests, simple graphs)";
  let epsilon = 0.25 in
  let trials = 5 in
  let rows =
    List.map
      (fun alpha ->
        let st0 = rng (8000 + alpha) in
        let n = max 80 (5 * alpha) in
        let g = Gen.forest_union_simple st0 n alpha in
        let orientation = orientation_of g in
        let amr, _ = Nw_baseline.Amr_star.decompose g in
        let amr_colors = Verify.colors_used amr in
        verified (Verify.star_forest_decomposition amr) |> ignore;
        let deficiency_bound =
          int_of_float (ceil (2. *. epsilon *. float_of_int alpha))
          + max 0 (Nw_graphs.Orientation.max_out_degree orientation - alpha)
        in
        let colors = ref [] and wins = ref 0 and worst_def = ref 0 in
        let converged = ref 0 in
        for t = 0 to trials - 1 do
          let st = rng (8010 + alpha + (1000 * t)) in
          let rounds = Rounds.create () in
          let ids = Array.init n (fun v -> v) in
          let sfd, stats =
            Nw_engine.Run.sfd g ~epsilon ~alpha ~orientation ~ids ~rng:st ~rounds
          in
          let m = measure_fd ~star:true sfd rounds in
          colors := m.colors :: !colors;
          worst_def := max !worst_def stats.SF.max_deficiency;
          if stats.SF.lll_converged then incr converged;
          if m.colors < amr_colors then incr wins
        done;
        let stats = Exp_stats.of_ints !colors in
        [
          d alpha;
          d n;
          Exp_stats.pp_mean_max stats;
          f2 (stats.Exp_stats.mean /. float_of_int alpha);
          d amr_colors;
          Printf.sprintf "%d/%d" !wins trials;
          Printf.sprintf "%d<=%d" !worst_def deficiency_bound;
          Printf.sprintf "%d/%d" !converged trials;
        ])
      [ 6; 12; 24; 48 ]
  in
  table
    ~title:
      (Printf.sprintf
         "SFD colors vs alpha and vs the 2*alpha baseline (eps = 0.25, %d \
          seeds)"
         trials)
    ~header:
      [
        "alpha"; "n"; "SFD mean (max)"; "ratio"; "2a baseline"; "beats 2a";
        "worst deficiency"; "LLL conv";
      ]
    ~rows;
  note
    "the color ratio falls toward 1 as alpha grows (excess O(sqrt(log D) + \
     log a)); the 2*alpha baseline is overtaken once alpha outweighs the \
     matching slack.";
  (* Lemma 5.3: perfect matching rate vs palette size *)
  let alpha = 16 in
  let st = rng 8100 in
  let g = Gen.forest_union_simple st 100 alpha in
  let orientation = orientation_of g in
  let lsfd_rows =
    List.map
      (fun size ->
        let colors = size + 8 in
        let lists = Gen.list_palettes st g ~colors ~size in
        let palette = Palette.of_lists ~colors lists in
        let rounds = Rounds.create () in
        let outcome =
          try
            let coloring, stats =
              Nw_engine.Run.star_lsfd g palette ~epsilon:0.5 ~orientation ~rng:st ~rounds
            in
            verified (Verify.star_forest_decomposition coloring) |> ignore;
            verified (Verify.respects_palette coloring palette) |> ignore;
            Printf.sprintf "perfect (deficiency %d)" stats.SF.max_deficiency
          with Failure _ -> "no perfect matchings"
        in
        [ d size; d colors; outcome ])
      [ 20; 24; 28; 32 ]
  in
  table
    ~title:
      (Printf.sprintf
         "Lemma 5.3: LSFD vs palette size (alpha = %d, eps = 0.5)" alpha)
    ~header:[ "palette size"; "|C|"; "outcome" ]
    ~rows:lsfd_rows;
  note
    "larger palettes make every H_v matching perfect, as Lemma 5.3 \
     predicts; below the threshold the LLL cannot converge."
