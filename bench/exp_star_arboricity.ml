(* E12 — Corollary 1.2: star arboricity bounds.

   Paper claims: alpha_star <= 2*alpha always; for simple graphs
   alpha_star <= alpha + O(sqrt(log Δ) + log alpha) and
   alpha_liststar <= alpha + O(log Δ). We measure the number of star
   forests each construction actually uses across graph families and
   report the excess over alpha next to the predicted excess shape. *)

open Exp_common

let run () =
  section "E12: Corollary 1.2 (star arboricity)";
  let cases =
    [
      ("trees a=1", Gen.random_tree (rng 9600) 150, 1);
      ("grid a=2", Gen.grid 12 12, 2);
      ("simple a=8", Gen.forest_union_simple (rng 9601) 100 8, 8);
      ("simple a=16", Gen.forest_union_simple (rng 9602) 100 16, 16);
      ("simple a=25", Gen.forest_union_simple (rng 9603) 100 25, 25);
      ("K16 a=8", Gen.complete 16, 8);
    ]
  in
  let rows =
    List.map
      (fun (name, g, alpha) ->
        let amr, _ = Nw_baseline.Amr_star.decompose g in
        verified (Verify.star_forest_decomposition amr) |> ignore;
        let amr_colors = Verify.colors_used amr in
        let st = rng (9700 + Hashtbl.hash name) in
        let rounds = Rounds.create () in
        let _, fd = Nw_baseline.Gabow_westermann.arboricity g in
        let orientation = Nw_core.Orient.of_forest_decomposition fd ~rounds in
        let ids = Array.init (G.n g) (fun v -> v) in
        let sfd, _ =
          Nw_engine.Run.sfd g ~epsilon:0.2 ~alpha ~orientation ~ids
            ~rng:st ~rounds
        in
        verified (Verify.star_forest_decomposition sfd) |> ignore;
        let new_colors = Verify.colors_used sfd in
        let delta = G.max_degree g in
        let predicted_excess =
          sqrt (log (float_of_int (max 2 delta)))
          +. log (float_of_int (max 2 alpha))
        in
        [
          name;
          d alpha;
          d amr_colors;
          d new_colors;
          d (new_colors - alpha);
          f1 predicted_excess;
          d delta;
        ])
      cases
  in
  table
    ~title:"star forests used: 2*alpha parity split vs Section 5 (eps = 0.2)"
    ~header:
      [
        "instance"; "alpha"; "2a split"; "Section 5"; "excess";
        "sqrt(ln D)+ln a"; "max deg";
      ]
    ~rows;
  note
    "the folklore bound alpha_star <= 2*alpha holds exactly; Section 5's \
     excess stays well below alpha for large alpha, matching the \
     alpha + O(sqrt(log Δ) + log alpha) claim."
