(* Small descriptive-statistics helper for multi-trial experiments. *)

type t = { count : int; mean : float; min : float; max : float; stddev : float }

let of_list values =
  match values with
  | [] -> invalid_arg "Exp_stats.of_list: empty"
  | _ ->
      let count = List.length values in
      let sum = List.fold_left ( +. ) 0.0 values in
      let mean = sum /. float_of_int count in
      let sq =
        List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values
      in
      {
        count;
        mean;
        min = List.fold_left min infinity values;
        max = List.fold_left max neg_infinity values;
        stddev = sqrt (sq /. float_of_int count);
      }

let of_ints values = of_list (List.map float_of_int values)

let pp_mean_max t = Printf.sprintf "%.1f (max %.0f)" t.mean t.max
let pp_mean_sd t = Printf.sprintf "%.1f +- %.1f" t.mean t.stddev
