(* T1 — Table 1 of the paper: the matrix of achievable trade-offs between
   excess colors, list support, runtime, and forest diameter for
   (1+eps)*alpha-(L)FD.

   Each row below instantiates one Table-1 row on a graph inside its regime
   and reports the measured colors (vs the (1+eps)*alpha target), LOCAL
   rounds, and forest diameter, next to the paper's promised asymptotic
   forms. Absolute round counts are simulation charges; the *shape*
   (which rows pay more, how diameter responds to eps) is the
   reproduction target. *)

open Exp_common
module FA = Nw_core.Forest_algo
module Cut = Nw_core.Cut

type row = {
  label : string;
  lists : bool;
  runtime_claim : string;
  diameter_claim : string;
  alpha : int;
  epsilon : float;
  graph : Nw_graphs.Multigraph.t;
  cut : Cut.rule option; (* None -> list pipeline *)
  diameter : [ `Unbounded | `Log_over_eps | `Inv_eps ];
}

let mk seed n alpha = Gen.forest_union (rng seed) n alpha

let rows_spec =
  [
    {
      label = "excess 3";
      lists = false;
      runtime_claim = "O(D^2a log^4 n logD)";
      diameter_claim = "<= n";
      alpha = 6;
      epsilon = 0.5;
      graph = mk 10001 150 6;
      cut = Some (Cut.Sampled 0.5);
      diameter = `Unbounded;
    };
    {
      label = "excess >= 4";
      lists = false;
      runtime_claim = "O(D^2 log^4 n logD/e)";
      diameter_claim = "O(log n/e)";
      alpha = 8;
      epsilon = 0.5;
      graph = mk 10002 150 8;
      cut = Some (Cut.Sampled 0.5);
      diameter = `Log_over_eps;
    };
    {
      label = "excess O_r(1)";
      lists = false;
      runtime_claim = "O(D^r log^4 n/e)";
      diameter_claim = "O(log n/e)";
      alpha = 12;
      epsilon = 0.5;
      graph = mk 10003 150 12;
      cut = Some (Cut.Sampled 0.25);
      diameter = `Log_over_eps;
    };
    {
      label = "excess logD/loglogD";
      lists = false;
      runtime_claim = "O_r(log^4 n log^r D/e)";
      diameter_claim = "O(log n/e)";
      alpha = 10;
      epsilon = 0.5;
      graph = mk 10004 150 10;
      cut = Some (Cut.Sampled 0.25);
      diameter = `Log_over_eps;
    };
    {
      label = "excess 4 + r logD";
      lists = false;
      runtime_claim = "O_r(log^4 n/e)";
      diameter_claim = "O(log n/e)";
      alpha = 16;
      epsilon = 0.5;
      graph = mk 10005 120 16;
      cut = Some (Cut.Sampled 0.5);
      diameter = `Log_over_eps;
    };
    {
      label = "excess sqrt(a logD)";
      lists = false;
      runtime_claim = "O(log^4 n/e)";
      diameter_claim = "O(1/e)";
      alpha = 25;
      epsilon = 0.4;
      graph = mk 10006 110 25;
      cut = Some Cut.Depth_mod;
      diameter = `Inv_eps;
    };
    {
      label = "excess O(log n)";
      lists = false;
      runtime_claim = "O(log^3 n/e)";
      diameter_claim = "O(1/e)";
      alpha = 10;
      epsilon = 0.5;
      graph = mk 10007 150 10;
      cut = Some Cut.Depth_mod;
      diameter = `Inv_eps;
    };
    {
      label = "lists, sqrt(a logD)";
      lists = true;
      runtime_claim = "O(log^4 n/e^2)";
      diameter_claim = "O(log n/e^2)";
      alpha = 40;
      epsilon = 1.0;
      graph = mk 10008 100 40;
      cut = None;
      diameter = `Unbounded;
    };
    {
      label = "lists, O(log n)";
      lists = true;
      runtime_claim = "O(log^4 n/e)";
      diameter_claim = "O(log n/e)";
      alpha = 50;
      epsilon = 1.0;
      graph = mk 10009 110 50;
      cut = None;
      diameter = `Unbounded;
    };
  ]

let run_row spec =
  let st = rng (Hashtbl.hash spec.label) in
  let g = spec.graph in
  let rounds = Rounds.create () in
  let coloring, palette_opt =
    if spec.lists then begin
      let colors = 3 * spec.alpha in
      let palette = Palette.full g colors in
      let c, _ =
        Nw_engine.Run.list_forest_decomposition g palette ~epsilon:spec.epsilon
          ~alpha:spec.alpha ~rng:st ~rounds ()
      in
      (c, Some palette)
    end
    else begin
      let c, _ =
        Nw_engine.Run.forest_decomposition g ~epsilon:spec.epsilon ~alpha:spec.alpha
          ?cut:spec.cut ~diameter:spec.diameter ~rng:st ~rounds ()
      in
      (c, None)
    end
  in
  let m = measure_fd coloring rounds in
  (match palette_opt with
  | Some palette ->
      verified (Verify.respects_palette coloring palette) |> ignore
  | None -> ());
  let target =
    int_of_float (ceil ((1. +. spec.epsilon) *. float_of_int spec.alpha))
  in
  [
    spec.label;
    yes_no spec.lists;
    d spec.alpha;
    f2 spec.epsilon;
    Printf.sprintf "%d<=%d" m.colors target;
    d m.diameter;
    spec.diameter_claim;
    d m.rounds;
    spec.runtime_claim;
    m.valid;
  ]

let run () =
  section "T1: Table 1 (the trade-off matrix, measured)";
  let rows = List.map run_row rows_spec in
  table ~title:"Table 1 rows, instantiated and measured"
    ~header:
      [
        "regime"; "lists"; "a"; "eps"; "colors<=target"; "diam";
        "diam claim"; "rounds"; "runtime claim"; "valid";
      ]
    ~rows;
  note
    "every row lands within its (1+eps)*alpha color budget (each regime \
     needs alpha above its threshold, e.g. alpha >= Omega_rho(1) for the \
     Delta^rho rows);";
  note
    "the round contrast is the paper's story: sampled-cut rows inherit \
     Delta^rho factors, while the alpha >= log Delta / log n rows run in \
     pure polylog charges."
