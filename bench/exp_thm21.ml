(* E2 — Theorem 2.1: H-partition products.

   Paper claims, for t = floor((2+eps) alpha_star):
     (1) O(log n / eps) layers, each vertex with <= t same-or-higher
         neighbors;
     (2) an acyclic t-orientation;
     (3) a 3t-star-forest decomposition;
     (4) a t-list-forest decomposition;
   all in O(log n / eps) rounds. We sweep n at fixed alpha and check the
   bounds, the logarithmic growth of layers/rounds, and validity. *)

open Exp_common
module H = Nw_core.H_partition
module O = Nw_graphs.Orientation

let run () =
  section "E2: Theorem 2.1 (H-partition, orientation, 3t-SFD, t-LFD)";
  (* layer growth: on a complete binary tree only the current leaves peel
     (internal degree 3 > t = 2), so the layer count tracks the depth,
     i.e. Θ(log n) — the worst-case shape of the O(log n / eps) bound *)
  let tree_rows =
    List.map
      (fun depth ->
        let g = Gen.binary_tree depth in
        let rounds = Rounds.create () in
        let hp = H.compute g ~epsilon:0.5 ~alpha_star:1 ~rounds in
        [
          d (G.n g); d depth; d hp.H.num_layers; d (Rounds.total rounds);
        ])
      [ 3; 5; 7; 9; 11 ]
  in
  table ~title:"layer growth on binary trees (alpha* = 1, eps = 0.5)"
    ~header:[ "n"; "depth"; "layers"; "peel rounds" ]
    ~rows:tree_rows;
  let alpha = 4 and epsilon = 0.5 in
  let rows =
    List.map
      (fun n ->
        let st = rng (1000 + n) in
        let g = Gen.forest_union st n alpha in
        let alpha_star, _ = Nw_graphs.Arboricity.pseudo_arboricity g in
        let t =
          int_of_float (floor ((2. +. epsilon) *. float_of_int alpha_star))
        in
        let rounds = Rounds.create () in
        let hp = H.compute g ~epsilon ~alpha_star ~rounds in
        let peel_rounds = Rounds.total rounds in
        let ids = Array.init n (fun v -> v) in
        let o = H.orientation g hp ~ids in
        let acyclic = Nw_decomp.Verify.acyclic_orientation o in
        let sfd = H.star_forest_decomposition g o ~ids ~rounds in
        let sfd_m = measure_fd ~star:true sfd rounds in
        let palette = Palette.full g t in
        let lfd = H.list_forest_decomposition g o palette ~rounds in
        let lfd_valid = Verify.forest_decomposition lfd in
        [
          d n;
          d hp.H.num_layers;
          d peel_rounds;
          Printf.sprintf "%d<=%d" (O.max_out_degree o) t;
          verified acyclic;
          Printf.sprintf "%d<=%d" sfd_m.colors (3 * t);
          sfd_m.valid;
          verified lfd_valid;
        ])
      [ 50; 100; 200; 400; 800; 1600 ]
  in
  table ~title:"Theorem 2.1 products (alpha = 4, eps = 0.5)"
    ~header:
      [
        "n"; "layers"; "peel rounds"; "out-deg<=t"; "acyclic"; "SFD<=3t";
        "SFD valid"; "LFD valid";
      ]
    ~rows;
  note
    "layers and peel rounds grow with log n (paper: O(log n / eps)); all \
     products verified."
