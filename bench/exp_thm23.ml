(* E3 — Theorem 2.3: ((4+eps) alpha* - 1)-list-star-forest decomposition.

   Paper claims an LSFD whenever every palette has size
   floor((4+eps) alpha_star) - 1, in O~(log n log* m / eps) rounds (we use the
   network-decomposition variant with complexity independent of m). We
   sweep alpha and check color budget, validity, and list respect. *)

open Exp_common

let run () =
  section "E3: Theorem 2.3 ((4+eps)a*-1 LSFD)";
  let epsilon = 0.5 in
  let rows =
    List.map
      (fun alpha ->
        let st = rng (2000 + alpha) in
        let n = max 60 (6 * alpha) in
        let g = Gen.forest_union st n alpha in
        let alpha_star, _ = Nw_graphs.Arboricity.pseudo_arboricity g in
        let k =
          int_of_float (floor ((4. +. epsilon) *. float_of_int alpha_star))
          - 1
        in
        let colors = (2 * k) + 4 in
        let lists = Gen.list_palettes st g ~colors ~size:k in
        let palette = Palette.of_lists ~colors lists in
        let rounds = Rounds.create () in
        let coloring =
          Nw_engine.Run.lsfd_distributed g palette ~epsilon ~alpha_star ~rng:st
            ~rounds
        in
        let m = measure_fd ~star:true coloring rounds in
        let respects = Verify.respects_palette coloring palette in
        [
          d alpha;
          d alpha_star;
          d k;
          d m.colors;
          m.valid;
          verified respects;
          d m.rounds;
        ])
      [ 3; 5; 8; 12; 20 ]
  in
  table
    ~title:"Theorem 2.3: LSFD from palettes of size (4.5 a*) - 1 (eps = 0.5)"
    ~header:
      [
        "alpha"; "alpha*"; "palette k"; "colors used"; "stars valid";
        "lists ok"; "rounds";
      ]
    ~rows;
  note
    "every class is a star forest chosen from per-edge lists; the paper's \
     open question (below 4a* - O(1) lists) remains visible: k tracks 4.5x \
     alpha*."
