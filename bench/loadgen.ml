(* loadgen: deterministic seed-driven client for `forestd serve`.

   Spawns a daemon on a private Unix socket, loads one session, then
   replays a seeded mix of batch (decompose), point (stats), and churn
   (insert/delete-edge) requests while validating every response:
   id echo, epoch monotonicity, server-side verification flags, color
   bounds on incremental answers, and a final client-side forest check
   of the served coloring against an independently rebuilt live graph.
   Client-observed latencies are summarised as nearest-rank p50/p95/p99
   per request class and written — together with throughput and the
   daemon's incremental/fallback tallies — into the additive `service`
   object of an nw-bench/2 record (BENCH_service.json, `@load-smoke`).
   Exit is non-zero if any response was invalid. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Coloring = Nw_decomp.Coloring
module Verify = Nw_decomp.Verify
module Wire = Nw_service.Wire
module J = Nw_obs.Json_lite

let usage =
  "loadgen --forestd PATH [options]\n\
   \  --forestd PATH     forestd executable to spawn (required)\n\
   \  --socket PATH      Unix socket path (default: private temp path)\n\
   \  --backend NAME     data plane for daemon and client mirror\n\
   \                     (boxed | csr, default boxed)\n\
   \  --domains K        worker domains for the daemon (default 1)\n\
   \  --seed N           workload RNG seed (default 11)\n\
   \  --requests N       total mixed requests to replay (default 120)\n\
   \  --mix B:P:C        batch:point:churn request weights (default 1:3:6)\n\
   \  --n N              session graph vertices (default 160)\n\
   \  --alpha A          forest-union arboricity of the graph (default 3)\n\
   \  --algorithm NAME   registry entry for batch requests (default augment)\n\
   \  --epsilon E        epsilon for batch requests (default 0.5)\n\
   \  --json FILE        nw-bench/2 output path (default BENCH_service.json)\n\
   \  --dump-colors FILE write the final served coloring to FILE\n\
   \  --check-colors FILE require the final served coloring to equal FILE\n\
   \  --quick            mark the record as a quick run\n"

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("loadgen: " ^ s);
      exit 2)
    fmt

(* ------------------------------------------------------------------ *)
(* configuration                                                       *)
(* ------------------------------------------------------------------ *)

type cfg = {
  mutable forestd : string;
  mutable socket : string;
  mutable backend : Nw_graphs.Backend.kind;
  mutable domains : int;
  mutable seed : int;
  mutable requests : int;
  mutable mix : int * int * int;
  mutable n : int;
  mutable alpha : int;
  mutable algorithm : string;
  mutable epsilon : float;
  mutable json : string;
  mutable dump_colors : string;
  mutable check_colors : string;
  mutable quick : bool;
}

let parse_mix s =
  match String.split_on_char ':' s with
  | [ b; p; c ] -> (
      match
        (int_of_string_opt b, int_of_string_opt p, int_of_string_opt c)
      with
      | Some b, Some p, Some c when b >= 0 && p >= 0 && c >= 0 && b + p + c > 0
        ->
          (b, p, c)
      | _ -> die "--mix wants non-negative B:P:C with a positive sum")
  | _ -> die "--mix wants B:P:C (e.g. 1:3:6)"

let parse_args () =
  let cfg =
    {
      forestd = "";
      socket = "";
      backend = Nw_graphs.Backend.Boxed;
      domains = 1;
      seed = 11;
      requests = 120;
      mix = (1, 3, 6);
      n = 160;
      alpha = 3;
      algorithm = "augment";
      epsilon = 0.5;
      json = "BENCH_service.json";
      dump_colors = "";
      check_colors = "";
      quick = false;
    }
  in
  let rec go = function
    | [] -> ()
    | "--forestd" :: v :: rest ->
        cfg.forestd <- v;
        go rest
    | "--socket" :: v :: rest ->
        cfg.socket <- v;
        go rest
    | "--backend" :: v :: rest ->
        (match Nw_graphs.Backend.of_string v with
        | Ok k -> cfg.backend <- k
        | Error msg -> die "--backend: %s" msg);
        go rest
    | "--domains" :: v :: rest ->
        cfg.domains <- int_of_string v;
        go rest
    | "--seed" :: v :: rest ->
        cfg.seed <- int_of_string v;
        go rest
    | "--requests" :: v :: rest ->
        cfg.requests <- int_of_string v;
        go rest
    | "--mix" :: v :: rest ->
        cfg.mix <- parse_mix v;
        go rest
    | "--n" :: v :: rest ->
        cfg.n <- int_of_string v;
        go rest
    | "--alpha" :: v :: rest ->
        cfg.alpha <- int_of_string v;
        go rest
    | "--algorithm" :: v :: rest ->
        cfg.algorithm <- v;
        go rest
    | "--epsilon" :: v :: rest ->
        cfg.epsilon <- float_of_string v;
        go rest
    | "--json" :: v :: rest ->
        cfg.json <- v;
        go rest
    | "--dump-colors" :: v :: rest ->
        cfg.dump_colors <- v;
        go rest
    | "--check-colors" :: v :: rest ->
        cfg.check_colors <- v;
        go rest
    | "--quick" :: rest ->
        cfg.quick <- true;
        go rest
    | ("--help" | "-h") :: _ ->
        print_string usage;
        exit 0
    | other :: _ -> die "unknown argument %S (see --help)" other
  in
  (match Array.to_list Sys.argv with _ :: args -> go args | [] -> ());
  if cfg.forestd = "" then die "--forestd is required";
  if cfg.domains < 1 then die "--domains must be >= 1";
  if cfg.requests < 1 then die "--requests must be >= 1";
  if cfg.n < 4 then die "--n must be >= 4";
  if cfg.alpha < 1 then die "--alpha must be >= 1";
  if cfg.socket = "" then
    (* Unix socket paths are capped around 107 bytes; dune sandboxes sit
       deep in _build, so anchor the default under the system temp dir. *)
    cfg.socket <-
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "nw-loadgen-%d.sock" (Unix.getpid ()));
  cfg

(* ------------------------------------------------------------------ *)
(* daemon lifecycle and framed RPC                                     *)
(* ------------------------------------------------------------------ *)

let spawn_daemon cfg =
  (if Sys.file_exists cfg.socket then
     try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let argv =
    [|
      cfg.forestd;
      "serve";
      "--socket";
      cfg.socket;
      "--backend";
      Nw_graphs.Backend.to_string cfg.backend;
      "--domains";
      string_of_int cfg.domains;
    |]
  in
  Unix.create_process cfg.forestd argv Unix.stdin Unix.stderr Unix.stderr

let connect cfg =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX cfg.socket) with
    | () -> fd
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
        Unix.close fd;
        Unix.sleepf 0.05;
        go ()
    | exception e ->
        Unix.close fd;
        raise e
  in
  go ()

type conn = { ic : in_channel; oc : out_channel; mutable next_id : int }

let open_conn fd =
  { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd;
    next_id = 1 }

(* one blocking round trip; returns (parsed response, latency in ms) *)
let rpc conn fields =
  let id = conn.next_id in
  conn.next_id <- id + 1;
  let payload = Wire.obj_fields (Wire.int "id" id :: fields) in
  let t0 = Unix.gettimeofday () in
  Wire.write_frame conn.oc payload;
  let reply =
    match Wire.read_frame conn.ic with
    | Some r -> r
    | None -> die "daemon closed the connection mid-request"
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let json =
    match J.parse reply with
    | v -> v
    | exception J.Parse_error msg -> die "unparsable response: %s" msg
  in
  (id, json, ms)

let member_int json f = Option.bind (J.member f json) J.to_int
let member_bool json f =
  match J.member f json with Some (J.Bool b) -> Some b | _ -> None
let member_str json f = Option.bind (J.member f json) J.to_string

(* ------------------------------------------------------------------ *)
(* response validation                                                 *)
(* ------------------------------------------------------------------ *)

let invalid = ref 0

let flag fmt =
  Printf.ksprintf
    (fun s ->
      incr invalid;
      prerr_endline ("loadgen: INVALID RESPONSE: " ^ s))
    fmt

(* every response must echo the request id and carry ok:true *)
let expect_ok ~what id json =
  let ok =
    match (member_int json "id", member_bool json "ok") with
    | Some rid, Some true when rid = id -> true
    | Some rid, _ when rid <> id ->
        flag "%s: id %d echoed as %d" what id rid;
        false
    | _ ->
        flag "%s: ok:false or missing id (%s)"
          what
          (Option.value ~default:"?" (member_str json "error"));
        false
  in
  ok

(* ------------------------------------------------------------------ *)
(* client-side session mirror                                          *)
(* ------------------------------------------------------------------ *)

(* The mirror tracks exactly what the daemon's session should contain:
   the append-only slot table and which slots are live. Every churn
   response is cross-checked against it and the final served coloring
   is re-verified on a graph rebuilt from the mirror alone. *)
type mirror = {
  mutable slots : (int * int) array;
  mutable live : bool array;
  mutable used : int;
  mutable live_list : int array; (* live slot ids, for O(1) random picks *)
  mutable live_count : int;
  mutable epoch : int;
  mutable colors_used : int; (* from the last decompose; 0 = none yet *)
  (* a fallback re-decomposition may widen the palette without telling
     the churn response, so the bound check pauses until the next
     decompose refreshes colors_used *)
  mutable palette_exact : bool;
}

let mirror_of_edges n edges =
  ignore n;
  let m = Array.length edges in
  let cap = max 8 (2 * m) in
  let slots = Array.make cap (0, 0) in
  Array.blit edges 0 slots 0 m;
  {
    slots;
    live = Array.init cap (fun i -> i < m);
    used = m;
    live_list = Array.init cap (fun i -> if i < m then i else 0);
    live_count = m;
    epoch = 0;
    colors_used = 0;
    palette_exact = false;
  }

let mirror_grow mi =
  if mi.used = Array.length mi.slots then begin
    let cap = 2 * Array.length mi.slots in
    let slots = Array.make cap (0, 0) in
    Array.blit mi.slots 0 slots 0 mi.used;
    let live = Array.make cap false in
    Array.blit mi.live 0 live 0 mi.used;
    let live_list = Array.make cap 0 in
    Array.blit mi.live_list 0 live_list 0 mi.live_count;
    mi.slots <- slots;
    mi.live <- live;
    mi.live_list <- live_list
  end

let mirror_insert mi u v =
  mirror_grow mi;
  let slot = mi.used in
  mi.slots.(slot) <- (u, v);
  mi.live.(slot) <- true;
  mi.used <- slot + 1;
  mi.live_list.(mi.live_count) <- slot;
  mi.live_count <- mi.live_count + 1;
  slot

let mirror_delete mi idx =
  let slot = mi.live_list.(idx) in
  mi.live.(slot) <- false;
  mi.live_list.(idx) <- mi.live_list.(mi.live_count - 1);
  mi.live_count <- mi.live_count - 1;
  slot

(* epoch must be strictly increasing across mutating responses *)
let check_epoch ~what mi json =
  match member_int json "epoch" with
  | Some e when e > mi.epoch -> mi.epoch <- e
  | Some e -> flag "%s: epoch went %d -> %d (not monotone)" what mi.epoch e
  | None -> flag "%s: response without an epoch" what

(* ------------------------------------------------------------------ *)
(* percentiles                                                         *)
(* ------------------------------------------------------------------ *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let summarise cls samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  Printf.sprintf
    "{\"class\":%s,\"count\":%d,\"p50\":%.4f,\"p95\":%.4f,\"p99\":%.4f}"
    (Nw_obs.Json_lite.Emit.string_value cls)
    (Array.length a) (percentile a 0.50) (percentile a 0.95)
    (percentile a 0.99)

(* ------------------------------------------------------------------ *)
(* nw-bench/2 record                                                   *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let git_commit () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> None
  | ic -> (
      let line = try Some (input_line ic) with End_of_file -> None in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> line
      | _ -> None)

let write_record cfg ~wall_s ~service_obj =
  let oc = open_out cfg.json in
  let b, p, c = cfg.mix in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"nw-bench/2\",\n\
    \  \"exp\": \"service\",\n\
    \  \"desc\": \"forestd serve under a seeded %d:%d:%d \
     batch:point:churn mix\",\n\
    \  \"quick\": %b,\n\
    \  \"domains\": %d,\n\
    \  \"env\": {\n\
    \    \"backend\": \"%s\",\n\
    \    \"git_commit\": %s,\n\
    \    \"hostname\": \"%s\",\n\
    \    \"ocaml_version\": \"%s\",\n\
    \    \"stamped_at\": %.0f\n\
    \  },\n\
    \  \"rounds_attribution\": \"per-domain\",\n\
    \  \"counter_attribution\": \"%s\",\n\
    \  \"wall_s\": %.6f,\n\
    \  \"charged_rounds\": 0,\n\
    \  \"connectivity\": {\n\
    \    \"uf_queries\": 0,\n\
    \    \"bfs_runs\": 0,\n\
    \    \"uf_rebuilds\": 0\n\
    \  },\n\
    \  \"service\": %s,\n\
    \  \"phases\": null,\n\
    \  \"failed\": null\n\
     }\n"
    b p c cfg.quick cfg.domains
    (Nw_graphs.Backend.to_string cfg.backend)
    (match git_commit () with
    | Some c -> Printf.sprintf "\"%s\"" (json_escape c)
    | None -> "null")
    (json_escape (try Unix.gethostname () with _ -> "unknown"))
    (json_escape Sys.ocaml_version)
    (Unix.time ())
    (if cfg.domains > 1 then "process-wide" else "exact")
    wall_s service_obj;
  close_out oc

(* ------------------------------------------------------------------ *)
(* workload                                                            *)
(* ------------------------------------------------------------------ *)

let () =
  let cfg = parse_args () in
  (* the daemon gets --backend on its argv; mirror the choice locally so
     the client-side re-verification exercises the same plane *)
  Nw_graphs.Backend.set_default cfg.backend;
  let rng = Random.State.make [| cfg.seed |] in
  let g = Gen.forest_union rng cfg.n cfg.alpha in
  let edges = G.edges g in
  let mi = mirror_of_edges cfg.n edges in
  let pid = spawn_daemon cfg in
  let cleanup () =
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
    if Sys.file_exists cfg.socket then
      try Unix.unlink cfg.socket with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let conn = open_conn (connect cfg) in

  (* handshake *)
  let id, json, _ = rpc conn [ Wire.str "op" "hello"; Wire.str "proto" Wire.proto ] in
  if expect_ok ~what:"hello" id json then begin
    match member_str json "proto" with
    | Some p when p = Wire.proto -> ()
    | p ->
        flag "hello: daemon speaks %s, client wants %s"
          (Option.value ~default:"?" p) Wire.proto
  end;

  (* load the session *)
  let edges_json =
    let buf = Buffer.create (8 * Array.length edges) in
    Buffer.add_char buf '[';
    Array.iteri
      (fun i (u, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "[%d,%d]" u v))
      edges;
    Buffer.add_char buf ']';
    Buffer.contents buf
  in
  let id, json, _ =
    rpc conn
      [
        Wire.str "op" "load-graph";
        Wire.str "session" "load";
        Wire.int "n" cfg.n;
        Wire.raw "edges" edges_json;
      ]
  in
  if expect_ok ~what:"load-graph" id json then check_epoch ~what:"load-graph" mi json;

  let decompose_fields () =
    [
      Wire.str "op" "decompose";
      Wire.str "session" "load";
      Wire.str "algorithm" cfg.algorithm;
      Wire.float "epsilon" cfg.epsilon;
      Wire.int "seed" cfg.seed;
    ]
  in
  let last_colors = ref [||] in
  let check_decompose ~what json =
    check_epoch ~what mi json;
    (match member_bool json "verified" with
    | Some true -> ()
    | _ -> flag "%s: served output not verified" what);
    (match member_int json "colors_used" with
    | Some k when k >= 1 ->
        mi.colors_used <- k;
        mi.palette_exact <- true
    | _ -> flag "%s: missing colors_used" what);
    match J.member "colors" json with
    | Some (J.List cols) ->
        if List.length cols <> mi.used then
          flag "%s: %d colors for %d slots" what (List.length cols) mi.used
        else
          last_colors :=
            Array.of_list
              (List.map (fun c -> Option.value ~default:(-1) (J.to_int c)) cols)
    | _ -> flag "%s: missing colors array" what
  in

  (* warm-up decompose so churn has a coloring to extend *)
  let id, json, _ = rpc conn (decompose_fields ()) in
  if expect_ok ~what:"decompose(warmup)" id json then
    check_decompose ~what:"decompose(warmup)" json;

  (* seeded mixed workload *)
  let b, p, c = cfg.mix in
  let batch_ms = ref [] and point_ms = ref [] and churn_ms = ref [] in
  let wrng = Random.State.make [| cfg.seed; 0x10ad |] in
  let t_start = Unix.gettimeofday () in
  for _ = 1 to cfg.requests do
    let pick = Random.State.int wrng (b + p + c) in
    if pick < b then begin
      let id, json, ms = rpc conn (decompose_fields ()) in
      batch_ms := ms :: !batch_ms;
      if expect_ok ~what:"decompose" id json then
        check_decompose ~what:"decompose" json
    end
    else if pick < b + p then begin
      let id, json, ms =
        rpc conn [ Wire.str "op" "stats"; Wire.str "session" "load" ]
      in
      point_ms := ms :: !point_ms;
      if expect_ok ~what:"stats" id json then begin
        let st = J.member "session_stats" json in
        match Option.bind st (fun s -> member_int s "live_edges") with
        | Some le when le = mi.live_count -> ()
        | Some le -> flag "stats: %d live edges, mirror has %d" le mi.live_count
        | None -> flag "stats: missing session_stats.live_edges"
      end
    end
    else if mi.live_count <= cfg.n / 4 || Random.State.bool wrng then begin
      (* churn: insert a random non-loop edge *)
      let u = Random.State.int wrng cfg.n in
      let v = (u + 1 + Random.State.int wrng (cfg.n - 1)) mod cfg.n in
      let id, json, ms =
        rpc conn
          [
            Wire.str "op" "insert-edge";
            Wire.str "session" "load";
            Wire.int "u" u;
            Wire.int "v" v;
          ]
      in
      churn_ms := ms :: !churn_ms;
      if expect_ok ~what:"insert-edge" id json then begin
        check_epoch ~what:"insert-edge" mi json;
        let slot = mirror_insert mi u v in
        (match member_int json "edge" with
        | Some e when e = slot -> ()
        | Some e -> flag "insert-edge: slot %d, mirror expected %d" e slot
        | None -> flag "insert-edge: missing edge id");
        match (member_str json "mode", member_int json "color") with
        | Some "incremental", Some c
          when c >= 0 && (c < mi.colors_used || not mi.palette_exact) ->
            ()
        | Some "incremental", Some c ->
            flag "insert-edge: incremental color %d outside palette of %d" c
              mi.colors_used
        | Some "fallback", _ -> mi.palette_exact <- false
        | m, _ ->
            flag "insert-edge: unexpected mode %s"
              (Option.value ~default:"?" m)
      end
    end
    else begin
      (* churn: delete a random live edge *)
      let idx = Random.State.int wrng mi.live_count in
      let slot = mi.live_list.(idx) in
      let id, json, ms =
        rpc conn
          [
            Wire.str "op" "delete-edge";
            Wire.str "session" "load";
            Wire.int "edge" slot;
          ]
      in
      churn_ms := ms :: !churn_ms;
      if expect_ok ~what:"delete-edge" id json then begin
        check_epoch ~what:"delete-edge" mi json;
        ignore (mirror_delete mi idx);
        match member_str json "mode" with
        | Some ("incremental" | "fallback") -> ()
        | m ->
            flag "delete-edge: unexpected mode %s"
              (Option.value ~default:"?" m)
      end
    end
  done;
  let wall_s = Unix.gettimeofday () -. t_start in

  (* final decompose: re-verify the served coloring client-side on a
     graph rebuilt purely from the mirror (catches silent corruption
     that a daemon-side verified:true could mask) *)
  let id, json, _ = rpc conn (decompose_fields ()) in
  if expect_ok ~what:"decompose(final)" id json then begin
    check_decompose ~what:"decompose(final)" json;
    let colors = !last_colors in
    if Array.length colors = mi.used && mi.live_count > 0 then begin
      let bld = G.create_builder cfg.n in
      let live_colors = ref [] in
      for slot = 0 to mi.used - 1 do
        if mi.live.(slot) then begin
          let u, v = mi.slots.(slot) in
          let e = G.add_edge bld u v in
          live_colors := (e, colors.(slot)) :: !live_colors
        end
      done;
      let g' = G.build bld in
      let col = Coloring.create g' ~colors:(max 1 mi.colors_used) in
      List.iter
        (fun (e, c) ->
          if c < 0 || c >= mi.colors_used then
            flag "final coloring: live slot has color %d of %d" c
              mi.colors_used
          else Coloring.set col e c)
        !live_colors;
      match Verify.forest_decomposition col with
      | Ok () -> ()
      | Error msg -> flag "final coloring fails client-side check: %s" msg
    end
  end;

  (* cross-backend output equality: the final served coloring is the
     deterministic product of the seeded workload, so a boxed run can
     dump it and a csr run (same seed/mix) must reproduce it exactly *)
  (if cfg.dump_colors <> "" then begin
     let oc = open_out cfg.dump_colors in
     Array.iter (fun c -> Printf.fprintf oc "%d\n" c) !last_colors;
     close_out oc
   end);
  (if cfg.check_colors <> "" then begin
     let expected =
       let ic = open_in cfg.check_colors in
       let acc = ref [] in
       (try
          while true do
            acc := int_of_string (String.trim (input_line ic)) :: !acc
          done
        with End_of_file -> ());
       close_in ic;
       Array.of_list (List.rev !acc)
     in
     if expected <> !last_colors then
       flag "check-colors: final coloring differs from %s (%d vs %d slots)"
         cfg.check_colors
         (Array.length expected)
         (Array.length !last_colors)
   end);

  (* daemon-side tallies for the record *)
  let incr_updates = ref 0 and fallbacks = ref 0 and srv_errors = ref 0 in
  let id, json, _ = rpc conn [ Wire.str "op" "stats"; Wire.str "session" "load" ] in
  if expect_ok ~what:"stats(final)" id json then begin
    let st = J.member "session_stats" json in
    let field f = Option.value ~default:0 (Option.bind st (fun s -> member_int s f)) in
    incr_updates := field "incremental_updates";
    fallbacks := field "fallbacks"
  end;
  let id, json, _ = rpc conn [ Wire.str "op" "stats" ] in
  if expect_ok ~what:"stats(global)" id json then
    srv_errors := Option.value ~default:0 (member_int json "errors");
  let id, json, _ = rpc conn [ Wire.str "op" "shutdown" ] in
  ignore (expect_ok ~what:"shutdown" id json);

  let total =
    List.length !batch_ms + List.length !point_ms + List.length !churn_ms
  in
  let mean = function
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  let speedup =
    let mb = mean !batch_ms and mc = mean !churn_ms in
    if mb > 0.0 && mc > 0.0 then Printf.sprintf "%.4f" (mb /. mc) else "null"
  in
  let service_obj =
    Printf.sprintf
      "{\n\
      \    \"proto\": \"%s\",\n\
      \    \"requests\": %d,\n\
      \    \"invalid\": %d,\n\
      \    \"errors\": %d,\n\
      \    \"requests_per_sec\": %.2f,\n\
      \    \"incremental_updates\": %d,\n\
      \    \"fallbacks\": %d,\n\
      \    \"incremental_speedup\": %s,\n\
      \    \"mix\": {\"batch\": %d, \"point\": %d, \"churn\": %d},\n\
      \    \"latency_ms\": [\n\
      \      %s,\n\
      \      %s,\n\
      \      %s\n\
      \    ]\n\
      \  }"
      Wire.proto total !invalid !srv_errors
      (if wall_s > 0.0 then float_of_int total /. wall_s else 0.0)
      !incr_updates !fallbacks speedup b p c
      (summarise "batch" !batch_ms)
      (summarise "point" !point_ms)
      (summarise "churn" !churn_ms)
  in
  write_record cfg ~wall_s ~service_obj;
  Printf.printf
    "loadgen: %d requests (%d invalid) in %.2fs over %d domain(s); %d \
     incremental, %d fallbacks -> %s\n"
    total !invalid wall_s cfg.domains !incr_updates !fallbacks cfg.json;
  if !invalid > 0 then exit 1
