(* Benchmark harness: regenerates every table/figure-like artifact of the
   paper (experiments T1, E2-E12 as indexed in DESIGN.md) and then runs one
   Bechamel micro-benchmark per experiment's core kernel.

   Run everything:        dune exec bench/main.exe
   Run a subset:          dune exec bench/main.exe -- e5 e7 t1
                          (or: --exp e5, repeatable)
   Skip micro-benchmarks: dune exec bench/main.exe -- --no-micro
   Also write CSV tables: dune exec bench/main.exe -- --csv results/
   Perf trajectory:       dune exec bench/main.exe -- --json
                          (one BENCH_<exp>.json per experiment: wall clock,
                           charged rounds, per-phase breakdown,
                           connectivity-query counts)
   Chrome trace:          dune exec bench/main.exe -- --exp e5 --trace e5.json
                          (phase spans of every selected experiment, one
                           trace_event lane per experiment; open in
                           chrome://tracing or ui.perfetto.dev; a .jsonl
                           suffix selects the JSONL event stream instead)
   Phase summaries:       dune exec bench/main.exe -- --metrics
                          (per-experiment span tree + counters on stdout)
   Parallel sweep:        dune exec bench/main.exe -- --domains 4
                          (independent experiments fan out across domains;
                           per-experiment output is buffered and printed in
                           order; spans and round attribution stay exact
                           because both are domain-local)
   Regression gate:       dune exec bench/main.exe -- --json --quick
                          (skips the slowest experiments and the micro
                           pass; completes in well under a minute)
   Data-plane selection:  dune exec bench/main.exe -- --backend csr
                          (boxed | csr; the process-wide default plane for
                           every message-passing kernel, stamped into
                           env.backend of the BENCH records; outputs are
                           byte-identical across backends)
   Fault injection:       dune exec bench/main.exe -- --chaos drop=0.1 \
                            --chaos-seed 7 --exp e2
                          (runs the selected experiments under the seeded
                           fault plan — docs/fault-model.md — and stamps
                           env.fault_plan into the BENCH records; an empty
                           plan is byte-identical to no chaos flags at all)

   Schema of the JSON records: docs/benchmarking.md. *)

module Obs = Nw_obs.Obs
module Plan = Nw_chaos.Plan

(* ambient fault context for --chaos PLAN: every experiment run is
   wrapped in Msg_net.with_faults, so the message-passing kernels inside
   pick the faults up; None (no flag, or an empty plan) leaves every
   code path byte-identical to a chaos-free invocation *)
let chaos_ctx : (Plan.t * Nw_localsim.Msg_net.faults) option ref = ref None

let experiments =
  [
    ("t1", "Table 1 trade-off matrix", Exp_table1.run);
    ("e2", "Theorem 2.1 H-partition", Exp_thm21.run);
    ("e3", "Theorem 2.3 LSFD", Exp_thm23.run);
    ("e4", "Prop 2.4 diameter reduction", Exp_diam.run);
    ("e5", "Theorem 3.2 augmenting sequences", Exp_augmenting.run);
    ("e6", "Theorem 4.2 CUT rules", Exp_cut.run);
    ("e7", "Theorem 4.6 FD vs baselines", Exp_fd_main.run);
    ("e8", "Theorems 4.9/4.10 LFD", Exp_lfd.run);
    ("e9", "Theorem 5.4 star forests", Exp_sfd.run);
    ("e10", "Corollary 1.1 orientations", Exp_orientation.run);
    ("e11", "Proposition C.1 lower bound", Exp_lower_bound.run);
    ("e12", "Corollary 1.2 star arboricity", Exp_star_arboricity.run);
    ("e13", "ablations", Exp_ablation.run);
    ("e14", "Lemma 4.4 load balancing", Exp_load.run);
    ("e15", "round scaling vs n", Exp_scaling.run);
    ("e16", "message-kernel fidelity", Exp_kernel.run);
    ("chaos", "fault injection & recovery (lib/chaos)", Exp_chaos.run);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per experiment table                  *)
(* ------------------------------------------------------------------ *)

module Micro = struct
  open Bechamel
  open Toolkit
  module Gen = Nw_graphs.Generators
  module G = Nw_graphs.Multigraph
  module Palette = Nw_decomp.Palette
  module Coloring = Nw_decomp.Coloring

  let rng () = Random.State.make [| 0xfeed |]
  let fresh_rounds () = Nw_localsim.Rounds.create ()

  (* small fixed instances so each kernel runs in well under a second *)
  let g_small = Gen.forest_union (rng ()) 60 4
  let g_simple = Gen.forest_union_simple (rng ()) 60 4
  let ids = Array.init 60 (fun v -> v)

  let t1_full_fd () =
    let st = rng () in
    ignore
      (Nw_engine.Run.forest_decomposition g_small ~epsilon:1.0 ~alpha:4
         ~rng:st ~rounds:(fresh_rounds ()) ())

  let e2_h_partition () =
    ignore
      (Nw_core.H_partition.compute g_small ~epsilon:0.5 ~alpha_star:4
         ~rounds:(fresh_rounds ()))

  let e3_lsfd () =
    let palette = Palette.full g_small 17 in
    ignore
      (Nw_engine.Run.lsfd_distributed g_small palette ~epsilon:0.5
         ~alpha_star:4 ~rng:(rng ()) ~rounds:(fresh_rounds ()))

  let exact_fd =
    match Nw_baseline.Gabow_westermann.forest_partition g_small 4 with
    | Ok c -> c
    | Error _ -> assert false

  let e4_diam_reduce () =
    ignore
      (Nw_core.Diameter_reduction.reduce exact_fd ~target:`Inv_eps
         ~epsilon:1.0 ~alpha:4 ~ids ~rng:(rng ()) ~rounds:(fresh_rounds ()))

  let e5_augment () =
    let palette = Palette.full g_small 5 in
    let coloring = Coloring.create g_small ~colors:5 in
    Array.iter
      (fun e ->
        ignore (Nw_core.Augmenting.augment_edge coloring palette ~edge:e ()))
      (Coloring.uncolored coloring)

  let e6_cut () =
    let coloring = Coloring.copy exact_fd in
    let cut =
      Nw_core.Cut.create g_small Nw_core.Cut.Depth_mod ~epsilon:1.0 ~alpha:4
        ~radius:8 ~num_classes:4 ~rng:(rng ()) ~rounds:(fresh_rounds ())
    in
    let core = G.ball_of_set g_small [ 0 ] 2 in
    let region = G.ball_of_set g_small [ 0 ] 10 in
    let removed = Array.make (G.m g_small) false in
    Nw_core.Cut.execute cut coloring ~core ~region ~removed

  let e7_gw_exact () =
    ignore (Nw_baseline.Gabow_westermann.forest_partition g_small 4)

  let e8_split () =
    ignore
      (Nw_core.Color_split.mpx_split g_small ~colors:12 ~epsilon:1.0
         ~rng:(rng ()) ~rounds:(fresh_rounds ()))

  let simple_orientation =
    let _, fd = Nw_baseline.Gabow_westermann.arboricity g_simple in
    Nw_core.Orient.of_forest_decomposition fd ~rounds:(fresh_rounds ())

  let e9_sfd () =
    ignore
      (Nw_engine.Run.sfd g_simple ~epsilon:0.5 ~alpha:4
         ~orientation:simple_orientation ~ids ~rng:(rng ())
         ~rounds:(fresh_rounds ()))

  let e10_orient () =
    ignore
      (Nw_core.Orient.of_forest_decomposition exact_fd
         ~rounds:(fresh_rounds ()))

  let g_line = Gen.line_multigraph 40 4
  let e11_line_fd () =
    ignore (Nw_baseline.Gabow_westermann.forest_partition g_line 5)

  let e12_amr () =
    ignore (Nw_baseline.Amr_star.of_forest_decomposition exact_fd)

  let e13_short_circuit () =
    let palette = Palette.full g_small 4 in
    let coloring = Coloring.copy exact_fd in
    (* un-color one edge and re-augment it, with the short-circuit pass *)
    Coloring.unset coloring 0;
    ignore (Nw_core.Augmenting.augment_edge coloring palette ~edge:0 ())

  let e14_sampled_cut () =
    let coloring = Coloring.copy exact_fd in
    let cut =
      Nw_core.Cut.create g_small (Nw_core.Cut.Sampled 0.5) ~epsilon:1.0
        ~alpha:4 ~radius:16 ~num_classes:4 ~rng:(rng ())
        ~rounds:(fresh_rounds ())
    in
    let core = G.ball_of_set g_small [ 0 ] 2 in
    let region = G.ball_of_set g_small [ 0 ] 18 in
    let removed = Array.make (G.m g_small) false in
    Nw_core.Cut.execute cut coloring ~core ~region ~removed

  let e15_h_peel_big =
    let g_big = Gen.forest_union (rng ()) 400 4 in
    fun () ->
      ignore
        (Nw_core.H_partition.compute g_big ~epsilon:0.5 ~alpha_star:4
           ~rounds:(fresh_rounds ()))

  let tests =
    [
      Test.make ~name:"t1:forest_decomposition" (Staged.stage t1_full_fd);
      Test.make ~name:"e2:h_partition" (Staged.stage e2_h_partition);
      Test.make ~name:"e3:lsfd_distributed" (Staged.stage e3_lsfd);
      Test.make ~name:"e4:diameter_reduce" (Staged.stage e4_diam_reduce);
      Test.make ~name:"e5:augment_all" (Staged.stage e5_augment);
      Test.make ~name:"e6:cut_depth_mod" (Staged.stage e6_cut);
      Test.make ~name:"e7:gw_exact" (Staged.stage e7_gw_exact);
      Test.make ~name:"e8:mpx_split" (Staged.stage e8_split);
      Test.make ~name:"e9:sfd_matchings" (Staged.stage e9_sfd);
      Test.make ~name:"e10:orient_fd" (Staged.stage e10_orient);
      Test.make ~name:"e11:line_multigraph_fd" (Staged.stage e11_line_fd);
      Test.make ~name:"e12:amr_parity_split" (Staged.stage e12_amr);
      Test.make ~name:"e13:augment_short_circuit" (Staged.stage e13_short_circuit);
      Test.make ~name:"e14:sampled_cut" (Staged.stage e14_sampled_cut);
      Test.make ~name:"e15:h_partition_n400" (Staged.stage e15_h_peel_big);
    ]

  let run () =
    Exp_common.section "Bechamel micro-benchmarks (one kernel per table)";
    let test = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" tests in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let rows = ref [] in
    Hashtbl.iter
      (fun name ols_result ->
        let nanos =
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> Printf.sprintf "%.0f" t
          | _ -> "-"
        in
        rows := [ name; nanos ] :: !rows)
      results;
    let rows = List.sort compare !rows in
    Exp_common.table ~title:"kernel cost (monotonic clock)"
      ~header:[ "kernel"; "ns/run" ] ~rows
end

(* ------------------------------------------------------------------ *)
(* perf-trajectory records and parallel driver                          *)
(* ------------------------------------------------------------------ *)

(* experiments skipped under --quick: the two that dominate a full run *)
let slow_experiments = [ "e9"; "e15" ]

(* per-experiment resource attribution: Gc.quick_stat deltas on the
   running domain plus the Dpool accumulators for whatever helper
   domains allocated during parallel rounds (invisible to this domain's
   quick_stat). top_heap is the process high-water mark at the end of
   the experiment, not a delta. *)
type resources = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  top_heap_words : int;
  worker_minor_words : int;
  worker_major_words : int;
}

type record = {
  name : string;
  desc : string;
  output : string; (* buffered tables ("" when streamed live) *)
  wall_s : float;
  charged_rounds : int;
  uf_queries : int;
  bfs_runs : int;
  uf_rebuilds : int;
  resources : resources;
  failed : string option;
  trace : Obs.trace; (* empty unless --trace/--metrics enabled recording *)
}

(* Run one experiment inside its own Obs collection and a root span, with
   the round delta taken from the per-domain ledger accumulator: each
   experiment runs wholly on one domain, so both the span tree and the
   charged-round count are exact even when `--domains K` runs other
   experiments concurrently (the old grand-total snapshots counted their
   charges too). Exceptions are captured so one broken experiment cannot
   take down a parallel sweep. *)
let run_one (name, desc, run) =
  let module C = Nw_decomp.Coloring.Counters in
  let c0 = C.snapshot () in
  let r0 = Exp_common.domain_rounds_baseline () in
  let s0 = Gc.quick_stat () in
  let w0_minor = Nw_localsim.Dpool.worker_minor_words () in
  let w0_major = Nw_localsim.Dpool.worker_major_words () in
  let t0 = Unix.gettimeofday () in
  let run_guarded () =
    try
      run ();
      None
    with exn -> Some (Printexc.to_string exn)
  in
  let failed, trace =
    Obs.collect (fun () ->
        Obs.span ("exp:" ^ name) (fun () ->
            match !chaos_ctx with
            | None -> run_guarded ()
            | Some (_, faults) ->
                let failed, stats =
                  Nw_localsim.Msg_net.with_faults faults run_guarded
                in
                Exp_common.out
                  "chaos[%s]: drops=%d dups=%d delays=%d crashes=%d \
                   restarts=%d reorders=%d digest=%Lx\n"
                  name stats.Nw_localsim.Msg_net.drops
                  stats.Nw_localsim.Msg_net.dups
                  stats.Nw_localsim.Msg_net.delays
                  stats.Nw_localsim.Msg_net.crashes
                  stats.Nw_localsim.Msg_net.restarts
                  stats.Nw_localsim.Msg_net.reorders
                  stats.Nw_localsim.Msg_net.digest;
                failed))
  in
  let t1 = Unix.gettimeofday () in
  let c1 = C.snapshot () in
  let s1 = Gc.quick_stat () in
  {
    name;
    desc;
    output = "";
    wall_s = t1 -. t0;
    charged_rounds = Exp_common.domain_rounds_since r0;
    uf_queries = c1.C.uf_queries - c0.C.uf_queries;
    bfs_runs = c1.C.bfs_runs - c0.C.bfs_runs;
    uf_rebuilds = c1.C.uf_rebuilds - c0.C.uf_rebuilds;
    resources =
      {
        minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
        major_words = s1.Gc.major_words -. s0.Gc.major_words;
        promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
        minor_collections = s1.Gc.minor_collections - s0.Gc.minor_collections;
        major_collections = s1.Gc.major_collections - s0.Gc.major_collections;
        top_heap_words = s1.Gc.top_heap_words;
        worker_minor_words = Nw_localsim.Dpool.worker_minor_words () - w0_minor;
        worker_major_words = Nw_localsim.Dpool.worker_major_words () - w0_major;
      };
    failed;
    trace;
  }

(* fan the job list across [k] domains (the calling domain works too).
   Each worker claims jobs off a shared atomic index and buffers its
   experiment output through the Exp_common domain-local sink; results
   land in distinct array slots, published by Domain.join. *)
let run_parallel k jobs =
  let jobs = Array.of_list jobs in
  let results = Array.make (Array.length jobs) None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length jobs then begin
        let buf = Buffer.create 4096 in
        let r = Exp_common.with_sink buf (fun () -> run_one jobs.(i)) in
        results.(i) <- Some { r with output = Buffer.contents buf };
        loop ()
      end
    in
    loop ()
  in
  let helpers =
    List.init (max 0 (min k (Array.length jobs) - 1)) (fun _ ->
        Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join helpers;
  Array.to_list
    (Array.map
       (function Some r -> r | None -> assert false)
       results)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* self-description stamped into every record by the harness *)
type env_stamp = {
  git_commit : string option;
  hostname : string;
  ocaml_version : string;
  backend : string; (* the process-default data plane (--backend) *)
  stamped_at : float; (* unix epoch seconds *)
  fault_plan : (string * string) option;
      (* (digest, summary) of the active --chaos plan; absent otherwise,
         so chaos-free records stay byte-identical *)
  pipeline : string * string;
      (* (registry name, pass-list hash) of the engine's algorithm
         registry, so trajectory diffs can detect pipeline drift *)
}

let capture_env () =
  let git_commit =
    try
      let ic =
        Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
      in
      let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> (match line with Some "" -> None | l -> l)
      | _ -> None
    with _ -> None
  in
  {
    git_commit;
    hostname = (try Unix.gethostname () with _ -> "unknown");
    ocaml_version = Sys.ocaml_version;
    backend = Nw_graphs.Backend.(to_string (default ()));
    stamped_at = Unix.time ();
    fault_plan =
      (match !chaos_ctx with
      | None -> None
      | Some (plan, _) -> Some (Plan.digest plan, Plan.summary plan));
    pipeline = Nw_engine.Registry.stamp ();
  }

let ns_to_s ns = Int64.to_float ns /. 1e9

(* per-phase breakdown: self-times and self-rounds sum to the trace totals
   (no double counting along nesting chains); rounds charged outside any
   span land in the trailing "(unattributed)" entry *)
let phases_json trace =
  if Obs.is_empty trace then "null"
  else begin
    let b = Buffer.create 512 in
    Buffer.add_string b "[";
    let first = ref true in
    let entry name calls wall_s self_s rounds =
      Buffer.add_string b (if !first then "\n" else ",\n");
      first := false;
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": \"%s\", \"calls\": %d, \"wall_s\": %.6f, \
            \"self_s\": %.6f, \"rounds\": %d }"
           (json_escape name) calls wall_s self_s rounds)
    in
    List.iter
      (fun (p : Obs.phase) ->
        entry p.Obs.name p.Obs.calls (ns_to_s p.Obs.total_ns)
          (ns_to_s p.Obs.self_ns) p.Obs.rounds)
      (Obs.phases trace);
    let orphan = Obs.unattributed_rounds trace in
    if orphan > 0 then entry "(unattributed)" 0 0.0 0.0 orphan;
    Buffer.add_string b "\n  ]";
    Buffer.contents b
  end

(* one BENCH_<exp>.json per experiment — the persistent perf trajectory;
   schema documented in docs/benchmarking.md *)
let write_json ~quick ~domains ~env r =
  let oc = open_out (Printf.sprintf "BENCH_%s.json" r.name) in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"nw-bench/2\",\n\
    \  \"exp\": \"%s\",\n\
    \  \"desc\": \"%s\",\n\
    \  \"quick\": %b,\n\
    \  \"domains\": %d,\n\
    \  \"env\": {\n\
     %s\
    \    \"git_commit\": %s,\n\
    \    \"hostname\": \"%s\",\n\
    \    \"ocaml_version\": \"%s\",\n\
    \    \"backend\": \"%s\",\n\
    \    \"stamped_at\": %.0f\n\
    \  },\n\
    \  \"rounds_attribution\": \"per-domain\",\n\
    \  \"counter_attribution\": \"%s\",\n\
    \  \"wall_s\": %.6f,\n\
    \  \"charged_rounds\": %d,\n\
    \  \"connectivity\": {\n\
    \    \"uf_queries\": %d,\n\
    \    \"bfs_runs\": %d,\n\
    \    \"uf_rebuilds\": %d\n\
    \  },\n\
    \  \"resources\": {\n\
    \    \"minor_words\": %.0f,\n\
    \    \"major_words\": %.0f,\n\
    \    \"promoted_words\": %.0f,\n\
    \    \"minor_collections\": %d,\n\
    \    \"major_collections\": %d,\n\
    \    \"top_heap_words\": %d,\n\
    \    \"worker_minor_words\": %d,\n\
    \    \"worker_major_words\": %d\n\
    \  },\n\
    \  \"phases\": %s,\n\
    \  \"failed\": %s\n\
     }\n"
    (json_escape r.name) (json_escape r.desc) quick domains
    ((match env.fault_plan with
     | None -> ""
     | Some (hash, summary) ->
         Printf.sprintf
           "    \"fault_plan\": { \"hash\": \"%s\", \"summary\": \"%s\" },\n"
           (json_escape hash) (json_escape summary))
    ^
    let registry, hash = env.pipeline in
    Printf.sprintf
      "    \"pipeline\": { \"registry\": \"%s\", \"hash\": \"%s\" },\n"
      (json_escape registry) (json_escape hash))
    (match env.git_commit with
    | None -> "null"
    | Some c -> Printf.sprintf "\"%s\"" (json_escape c))
    (json_escape env.hostname)
    (json_escape env.ocaml_version)
    (json_escape env.backend)
    env.stamped_at
    (if domains > 1 then "process-wide" else "exact")
    r.wall_s r.charged_rounds r.uf_queries r.bfs_runs r.uf_rebuilds
    r.resources.minor_words r.resources.major_words
    r.resources.promoted_words r.resources.minor_collections
    r.resources.major_collections r.resources.top_heap_words
    r.resources.worker_minor_words r.resources.worker_major_words
    (phases_json r.trace)
    (match r.failed with
    | None -> "null"
    | Some msg -> Printf.sprintf "\"%s\"" (json_escape msg));
  close_out oc

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let no_micro = List.mem "--no-micro" args in
  let json = List.mem "--json" args in
  let quick = List.mem "--quick" args in
  let metrics = List.mem "--metrics" args in
  (* --csv DIR / --domains K / --trace FILE / --exp NAME consume their
     argument *)
  let domains = ref 1 in
  let trace_file = ref None in
  let chaos_plan = ref None in
  let chaos_seed = ref 1 in
  let rec strip acc = function
    | "--csv" :: dir :: rest ->
        Exp_common.csv_dir := Some dir;
        strip acc rest
    | "--domains" :: k :: rest ->
        (match int_of_string_opt k with
        | Some k when k >= 1 -> domains := k
        | _ -> failwith "bench: --domains expects a positive integer");
        strip acc rest
    | "--trace" :: file :: rest ->
        trace_file := Some file;
        strip acc rest
    | "--chaos" :: plan :: rest ->
        (match Plan.of_string plan with
        | Ok p -> chaos_plan := Some p
        | Error msg ->
            Printf.eprintf "bench: --chaos: %s\n" msg;
            exit 2);
        strip acc rest
    | "--chaos-seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n -> chaos_seed := n
        | None -> failwith "bench: --chaos-seed expects an integer");
        strip acc rest
    | "--backend" :: name :: rest ->
        (match Nw_graphs.Backend.of_string name with
        | Ok k -> Nw_graphs.Backend.set_default k
        | Error msg ->
            Printf.eprintf "bench: --backend: %s\n" msg;
            exit 2);
        strip acc rest
    | [ (("--csv" | "--domains" | "--trace" | "--exp" | "--chaos"
        | "--chaos-seed" | "--backend") as flag) ] ->
        Printf.eprintf "bench: %s expects an argument\n" flag;
        exit 2
    | "--exp" :: name :: rest -> strip (name :: acc) rest
    | x :: rest -> strip (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip [] args in
  (match !chaos_plan with
  | None -> ()
  | Some plan -> (
      match Nw_chaos.Inject.compile plan ~seed:!chaos_seed () with
      | None -> () (* empty plan: byte-identical to no --chaos at all *)
      | Some faults -> chaos_ctx := Some (plan, faults)));
  if !trace_file <> None || metrics then Obs.set_enabled true;
  Exp_common.json_enabled := json;
  let flags = [ "--no-micro"; "--json"; "--quick"; "--metrics" ] in
  let selected = List.filter (fun a -> not (List.mem a flags)) args in
  (match
     List.filter
       (fun s -> not (List.exists (fun (name, _, _) -> name = s) experiments))
       selected
   with
  | [] -> ()
  | bad ->
      Printf.eprintf "bench: unknown experiment%s %s (known: %s)\n"
        (if List.length bad = 1 then "" else "s")
        (String.concat ", " bad)
        (String.concat ", " (List.map (fun (name, _, _) -> name) experiments));
      exit 2);
  let wanted name =
    if selected <> [] then List.mem name selected
    else not (quick && List.mem name slow_experiments)
  in
  Printf.printf
    "Nash-Williams forest decomposition: experiment harness\n(paper artifact index in DESIGN.md; paper-vs-measured in EXPERIMENTS.md)\n";
  if quick && selected = [] then
    Printf.printf "(--quick: skipping %s)\n"
      (String.concat ", " slow_experiments);
  let rec_domains = Domain.recommended_domain_count () in
  if !domains > rec_domains then
    Printf.printf
      "(warning: --domains %d exceeds the %d hardware thread%s; domains \
       will contend and the sweep may run slower than sequential)\n"
      !domains rec_domains
      (if rec_domains = 1 then "" else "s");
  let jobs =
    List.filter (fun (name, _, _) -> wanted name) experiments
  in
  let results =
    if !domains > 1 then run_parallel !domains jobs
    else List.map run_one jobs
  in
  List.iter
    (fun r ->
      print_string r.output;
      match r.failed with
      | None -> ()
      | Some msg -> Printf.printf "\n!! %s FAILED: %s\n" r.name msg)
    results;
  if metrics then
    List.iter
      (fun r ->
        if not (Obs.is_empty r.trace) then begin
          Printf.printf "\n-- metrics: %s (%s) --\n" r.name r.desc;
          Format.printf "%a@?" Obs.pp_summary r.trace
        end)
      results;
  (match !trace_file with
  | None -> ()
  | Some file ->
      let traces =
        List.filter_map
          (fun r -> if Obs.is_empty r.trace then None else Some r.trace)
          results
      in
      let oc = open_out file in
      if Filename.check_suffix file ".jsonl" then
        Obs.Export.jsonl_to_channel oc traces
      else Obs.Export.chrome_to_channel oc traces;
      close_out oc;
      Printf.printf "\nwrote trace (%d experiment%s) to %s\n"
        (List.length traces)
        (if List.length traces = 1 then "" else "s")
        file);
  if json then begin
    let env = capture_env () in
    List.iter (fun r -> write_json ~quick ~domains:!domains ~env r) results;
    Printf.printf "\nwrote %s\n"
      (String.concat ", "
         (List.map (fun r -> Printf.sprintf "BENCH_%s.json" r.name) results))
  end;
  if (not no_micro) && (not quick) && selected = [] then Micro.run ();
  (match List.find_opt (fun r -> r.failed <> None) results with
  | Some r ->
      Printf.printf "\nexperiment %s failed; exiting nonzero.\n" r.name;
      exit 1
  | None -> ());
  Printf.printf "\nall selected experiments completed.\n"
