(* Benchmark harness: regenerates every table/figure-like artifact of the
   paper (experiments T1, E2-E12 as indexed in DESIGN.md) and then runs one
   Bechamel micro-benchmark per experiment's core kernel.

   Run everything:        dune exec bench/main.exe
   Run a subset:          dune exec bench/main.exe -- e5 e7 t1
   Skip micro-benchmarks: dune exec bench/main.exe -- --no-micro
   Also write CSV tables: dune exec bench/main.exe -- --csv results/ *)

let experiments =
  [
    ("t1", "Table 1 trade-off matrix", Exp_table1.run);
    ("e2", "Theorem 2.1 H-partition", Exp_thm21.run);
    ("e3", "Theorem 2.3 LSFD", Exp_thm23.run);
    ("e4", "Prop 2.4 diameter reduction", Exp_diam.run);
    ("e5", "Theorem 3.2 augmenting sequences", Exp_augmenting.run);
    ("e6", "Theorem 4.2 CUT rules", Exp_cut.run);
    ("e7", "Theorem 4.6 FD vs baselines", Exp_fd_main.run);
    ("e8", "Theorems 4.9/4.10 LFD", Exp_lfd.run);
    ("e9", "Theorem 5.4 star forests", Exp_sfd.run);
    ("e10", "Corollary 1.1 orientations", Exp_orientation.run);
    ("e11", "Proposition C.1 lower bound", Exp_lower_bound.run);
    ("e12", "Corollary 1.2 star arboricity", Exp_star_arboricity.run);
    ("e13", "ablations", Exp_ablation.run);
    ("e14", "Lemma 4.4 load balancing", Exp_load.run);
    ("e15", "round scaling vs n", Exp_scaling.run);
    ("e16", "message-kernel fidelity", Exp_kernel.run);
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per experiment table                  *)
(* ------------------------------------------------------------------ *)

module Micro = struct
  open Bechamel
  open Toolkit
  module Gen = Nw_graphs.Generators
  module G = Nw_graphs.Multigraph
  module Palette = Nw_decomp.Palette
  module Coloring = Nw_decomp.Coloring

  let rng () = Random.State.make [| 0xfeed |]
  let fresh_rounds () = Nw_localsim.Rounds.create ()

  (* small fixed instances so each kernel runs in well under a second *)
  let g_small = Gen.forest_union (rng ()) 60 4
  let g_simple = Gen.forest_union_simple (rng ()) 60 4
  let ids = Array.init 60 (fun v -> v)

  let t1_full_fd () =
    let st = rng () in
    ignore
      (Nw_core.Forest_algo.forest_decomposition g_small ~epsilon:1.0 ~alpha:4
         ~rng:st ~rounds:(fresh_rounds ()) ())

  let e2_h_partition () =
    ignore
      (Nw_core.H_partition.compute g_small ~epsilon:0.5 ~alpha_star:4
         ~rounds:(fresh_rounds ()))

  let e3_lsfd () =
    let palette = Palette.full g_small 17 in
    ignore
      (Nw_core.Lsfd.distributed g_small palette ~epsilon:0.5 ~alpha_star:4
         ~rng:(rng ()) ~rounds:(fresh_rounds ()))

  let exact_fd =
    match Nw_baseline.Gabow_westermann.forest_partition g_small 4 with
    | Ok c -> c
    | Error _ -> assert false

  let e4_diam_reduce () =
    ignore
      (Nw_core.Diameter_reduction.reduce exact_fd ~target:`Inv_eps
         ~epsilon:1.0 ~alpha:4 ~ids ~rng:(rng ()) ~rounds:(fresh_rounds ()))

  let e5_augment () =
    let palette = Palette.full g_small 5 in
    let coloring = Coloring.create g_small ~colors:5 in
    List.iter
      (fun e ->
        ignore (Nw_core.Augmenting.augment_edge coloring palette ~edge:e ()))
      (Coloring.uncolored coloring)

  let e6_cut () =
    let coloring = Coloring.copy exact_fd in
    let cut =
      Nw_core.Cut.create g_small Nw_core.Cut.Depth_mod ~epsilon:1.0 ~alpha:4
        ~radius:8 ~num_classes:4 ~rng:(rng ()) ~rounds:(fresh_rounds ())
    in
    let core = G.ball_of_set g_small [ 0 ] 2 in
    let region = G.ball_of_set g_small [ 0 ] 10 in
    let removed = Array.make (G.m g_small) false in
    Nw_core.Cut.execute cut coloring ~core ~region ~removed

  let e7_gw_exact () =
    ignore (Nw_baseline.Gabow_westermann.forest_partition g_small 4)

  let e8_split () =
    ignore
      (Nw_core.Color_split.mpx_split g_small ~colors:12 ~epsilon:1.0
         ~rng:(rng ()) ~rounds:(fresh_rounds ()))

  let simple_orientation =
    let _, fd = Nw_baseline.Gabow_westermann.arboricity g_simple in
    Nw_core.Orient.of_forest_decomposition fd ~rounds:(fresh_rounds ())

  let e9_sfd () =
    ignore
      (Nw_core.Star_forest.sfd g_simple ~epsilon:0.5 ~alpha:4
         ~orientation:simple_orientation ~ids ~rng:(rng ())
         ~rounds:(fresh_rounds ()))

  let e10_orient () =
    ignore
      (Nw_core.Orient.of_forest_decomposition exact_fd
         ~rounds:(fresh_rounds ()))

  let g_line = Gen.line_multigraph 40 4
  let e11_line_fd () =
    ignore (Nw_baseline.Gabow_westermann.forest_partition g_line 5)

  let e12_amr () =
    ignore (Nw_baseline.Amr_star.of_forest_decomposition exact_fd)

  let e13_short_circuit () =
    let palette = Palette.full g_small 4 in
    let coloring = Coloring.copy exact_fd in
    (* un-color one edge and re-augment it, with the short-circuit pass *)
    Coloring.unset coloring 0;
    ignore (Nw_core.Augmenting.augment_edge coloring palette ~edge:0 ())

  let e14_sampled_cut () =
    let coloring = Coloring.copy exact_fd in
    let cut =
      Nw_core.Cut.create g_small (Nw_core.Cut.Sampled 0.5) ~epsilon:1.0
        ~alpha:4 ~radius:16 ~num_classes:4 ~rng:(rng ())
        ~rounds:(fresh_rounds ())
    in
    let core = G.ball_of_set g_small [ 0 ] 2 in
    let region = G.ball_of_set g_small [ 0 ] 18 in
    let removed = Array.make (G.m g_small) false in
    Nw_core.Cut.execute cut coloring ~core ~region ~removed

  let e15_h_peel_big =
    let g_big = Gen.forest_union (rng ()) 400 4 in
    fun () ->
      ignore
        (Nw_core.H_partition.compute g_big ~epsilon:0.5 ~alpha_star:4
           ~rounds:(fresh_rounds ()))

  let tests =
    [
      Test.make ~name:"t1:forest_decomposition" (Staged.stage t1_full_fd);
      Test.make ~name:"e2:h_partition" (Staged.stage e2_h_partition);
      Test.make ~name:"e3:lsfd_distributed" (Staged.stage e3_lsfd);
      Test.make ~name:"e4:diameter_reduce" (Staged.stage e4_diam_reduce);
      Test.make ~name:"e5:augment_all" (Staged.stage e5_augment);
      Test.make ~name:"e6:cut_depth_mod" (Staged.stage e6_cut);
      Test.make ~name:"e7:gw_exact" (Staged.stage e7_gw_exact);
      Test.make ~name:"e8:mpx_split" (Staged.stage e8_split);
      Test.make ~name:"e9:sfd_matchings" (Staged.stage e9_sfd);
      Test.make ~name:"e10:orient_fd" (Staged.stage e10_orient);
      Test.make ~name:"e11:line_multigraph_fd" (Staged.stage e11_line_fd);
      Test.make ~name:"e12:amr_parity_split" (Staged.stage e12_amr);
      Test.make ~name:"e13:augment_short_circuit" (Staged.stage e13_short_circuit);
      Test.make ~name:"e14:sampled_cut" (Staged.stage e14_sampled_cut);
      Test.make ~name:"e15:h_partition_n400" (Staged.stage e15_h_peel_big);
    ]

  let run () =
    Exp_common.section "Bechamel micro-benchmarks (one kernel per table)";
    let test = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" tests in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
    in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    let rows = ref [] in
    Hashtbl.iter
      (fun name ols_result ->
        let nanos =
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> Printf.sprintf "%.0f" t
          | _ -> "-"
        in
        rows := [ name; nanos ] :: !rows)
      results;
    let rows = List.sort compare !rows in
    Exp_common.table ~title:"kernel cost (monotonic clock)"
      ~header:[ "kernel"; "ns/run" ] ~rows
end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let no_micro = List.mem "--no-micro" args in
  (* --csv DIR: additionally dump every table as CSV under DIR *)
  let rec strip_csv acc = function
    | "--csv" :: dir :: rest ->
        Exp_common.csv_dir := Some dir;
        strip_csv acc rest
    | x :: rest -> strip_csv (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip_csv [] args in
  let selected = List.filter (fun a -> a <> "--no-micro") args in
  let wanted name = selected = [] || List.mem name selected in
  Printf.printf
    "Nash-Williams forest decomposition: experiment harness\n(paper artifact index in DESIGN.md; paper-vs-measured in EXPERIMENTS.md)\n";
  List.iter (fun (name, _desc, run) -> if wanted name then run ()) experiments;
  if (not no_micro) && selected = [] then Micro.run ();
  Printf.printf "\nall selected experiments completed.\n"
