(* Perf smoke test: the incremental per-color union-find connectivity
   cache vs the bidirectional-BFS oracle it replaced, on the two families
   the paper leans on (forest-union multigraphs, Prop C.1 line
   multigraphs).

   Two workloads per family and size:
   - static:  connectivity queries against a fixed greedy forest
     decomposition — the Augmenting.search / would_close_cycle hot path;
   - churn:   unset + query + recolor per step — exercises the generation
     counter and the lazy per-color rebuild that deletions trigger.

   Run:        dune exec bench/perf_smoke.exe
   Fast gate:  dune exec bench/perf_smoke.exe -- --fast
               (also wired into `dune build @perf-smoke`)
   Data plane: dune exec bench/perf_smoke.exe -- --backend csr
               (sets the process-default plane for every message kernel;
                the smoke also always runs boxed-vs-csr differentials —
                the H-partition peel with a throughput sanity floor, and
                an edge-by-edge Augmenting.search run whose final
                colorings must match byte-for-byte)

   Prints a wall-clock ns/query table with the cached/BFS speedup, then a
   Bechamel pass over the same kernels for statistically robust per-run
   estimates. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Coloring = Nw_decomp.Coloring
module Greedy = Nw_baseline.Greedy_forest

let rng seed = Random.State.make [| seed; 0x5eed |]

type case = {
  label : string;
  coloring : Coloring.t;
  (* presampled (edge, color) query mix, identical for both predicates *)
  qs : (int * int) array;
}

let make_case label g =
  let coloring = Greedy.greedy g in
  let st = rng (Hashtbl.hash label) in
  let m = G.m g and k = Coloring.colors coloring in
  let qs =
    Array.init 1024 (fun _ ->
        (Random.State.int st m, Random.State.int st k))
  in
  { label; coloring; qs }

let cases ~fast =
  let forest n = Gen.forest_union (rng n) n 4 in
  let line n = Gen.line_multigraph n 5 in
  let sizes_f = if fast then [ 200; 800 ] else [ 200; 800; 3200 ] in
  let sizes_l = if fast then [ 60; 240 ] else [ 60; 240; 960 ] in
  List.map
    (fun n -> make_case (Printf.sprintf "forest-union n=%d a=4" n) (forest n))
    sizes_f
  @ List.map
      (fun n -> make_case (Printf.sprintf "line-multi n=%dx5" n) (line n))
      sizes_l

(* the two static predicates over the presampled query mix *)
let static_cached c () =
  Array.iter
    (fun (e, col) -> ignore (Coloring.would_close_cycle c.coloring e col))
    c.qs

let static_bfs c () =
  Array.iter
    (fun (e, col) ->
      ignore (Coloring.oracle_would_close_cycle c.coloring e col))
    c.qs

(* deletion churn: drop a colored edge, query it, put it back *)
let churn predicate c () =
  Array.iter
    (fun (e, col) ->
      match Coloring.color c.coloring e with
      | None -> ignore (predicate c.coloring e col)
      | Some own ->
          Coloring.unset c.coloring e;
          ignore (predicate c.coloring e col);
          Coloring.set c.coloring e own)
    c.qs

let churn_cached c = churn Coloring.would_close_cycle c
let churn_bfs c = churn Coloring.oracle_would_close_cycle c

(* ------------------------------------------------------------------ *)
(* wall-clock table                                                    *)
(* ------------------------------------------------------------------ *)

let time_ns reps f =
  f () (* warm up: faults in pages, triggers lazy rebuilds *);
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    f ()
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int reps

let wall_table ~fast cs =
  let reps = if fast then 3 else 10 in
  Printf.printf
    "\n== connectivity: cached union-find vs BFS oracle (ns per query, %d \
     reps of 1024 queries) ==\n"
    reps;
  Printf.printf "%-24s %12s %12s %9s %12s %12s %9s\n" "instance" "static-uf"
    "static-bfs" "speedup" "churn-uf" "churn-bfs" "speedup";
  List.iter
    (fun c ->
      let q = float_of_int (Array.length c.qs) in
      let su = time_ns reps (static_cached c) /. q in
      let sb = time_ns reps (static_bfs c) /. q in
      let cu = time_ns reps (churn_cached c) /. q in
      let cb = time_ns reps (churn_bfs c) /. q in
      Printf.printf "%-24s %12.0f %12.0f %8.1fx %12.0f %12.0f %8.1fx\n"
        c.label su sb (sb /. su) cu cb (cb /. cu))
    cs;
  flush stdout

(* ------------------------------------------------------------------ *)
(* bechamel pass                                                       *)
(* ------------------------------------------------------------------ *)

let bechamel_pass ~fast cs =
  let open Bechamel in
  let tests =
    List.concat_map
      (fun c ->
        [
          Test.make ~name:("static-uf:" ^ c.label)
            (Staged.stage (static_cached c));
          Test.make ~name:("static-bfs:" ^ c.label)
            (Staged.stage (static_bfs c));
        ])
      cs
  in
  let test = Test.make_grouped ~name:"connectivity" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let quota = if fast then Time.second 0.05 else Time.second 0.25 in
  let cfg = Benchmark.cfg ~limit:200 ~quota ~stabilize:false () in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let nanos =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> Printf.sprintf "%.0f" t
        | _ -> "-"
      in
      rows := (name, nanos) :: !rows)
    results;
  Printf.printf "\n== bechamel (ns per 1024-query batch) ==\n";
  List.iter
    (fun (name, nanos) -> Printf.printf "%-56s %s\n" name nanos)
    (List.sort compare !rows);
  flush stdout

(* ------------------------------------------------------------------ *)
(* data-plane leg: boxed vs csr on the H-partition peel                *)
(* ------------------------------------------------------------------ *)

module Backend = Nw_graphs.Backend

(* Augmenting-path differential: run Algorithm 1 edge-by-edge over the
   whole graph on each plane and require the final colorings to match
   byte-for-byte. This pins the functorized Augmenting.search (and the
   Coloring cache under it) to cross-plane determinism, not just the
   streaming peel below. *)
let augmenting_differential ~fast =
  let alpha = 4 in
  let n = if fast then 2_001 else 8_001 in
  let g = Gen.forest_union (rng 77) n alpha in
  let colors = 2 * alpha in
  let run backend =
    Backend.with_kind backend @@ fun () ->
    let coloring = Coloring.create g ~colors in
    let palette = Nw_decomp.Palette.full g colors in
    let scratch = Nw_core.Augmenting.scratch coloring in
    let t0 = Unix.gettimeofday () in
    for e = 0 to G.m g - 1 do
      match Nw_core.Augmenting.augment_edge coloring palette ~edge:e ~scratch () with
      | Some _ -> ()
      | None ->
          Printf.eprintf
            "perf smoke: augment stalled on edge %d (backend %s)\n" e
            (Backend.to_string backend);
          exit 1
    done;
    (Coloring.to_array coloring, Unix.gettimeofday () -. t0)
  in
  let boxed_colors, boxed_wall = run Backend.Boxed in
  let csr_colors, csr_wall = run Backend.Csr in
  Array.iteri
    (fun e c ->
      if c <> boxed_colors.(e) then begin
        Printf.eprintf
          "perf smoke: csr augmenting run diverges from boxed at edge %d\n" e;
        exit 1
      end)
    csr_colors;
  Printf.printf
    "\n== data plane: augmenting path, n=%d m=%d ==\n\
     boxed  %8.1f ms\n\
     csr    %8.1f ms  (colorings identical)\n"
    n (G.m g) (boxed_wall *. 1e3) (csr_wall *. 1e3);
  flush stdout

(* Differential first (identical layer arrays or exit 1), then a loose
   throughput floor: csr may not stream slower than a fifth of the boxed
   rate. The floor is deliberately far below the expected >= 2x win so a
   noisy CI box cannot flake it, while a plane that silently fell off the
   zero-allocation path (or a merge bug that degrades to quadratic) still
   trips it. *)
let data_plane_check ~fast =
  let alpha = 4 in
  let n = if fast then 20_001 else 200_001 in
  let g = Gen.forest_union (rng 42) n alpha in
  let m = G.m g in
  let peel backend =
    Backend.with_kind backend @@ fun () ->
    let rounds = Nw_localsim.Rounds.create () in
    let t0 = Unix.gettimeofday () in
    let hp =
      Nw_core.H_partition.compute g ~epsilon:1.0 ~alpha_star:alpha ~rounds
    in
    (hp.Nw_core.H_partition.layer, Unix.gettimeofday () -. t0)
  in
  let boxed_layer, boxed_wall = peel Backend.Boxed in
  let csr_layer, csr_wall = peel Backend.Csr in
  Array.iteri
    (fun v l ->
      if l <> boxed_layer.(v) then begin
        Printf.eprintf
          "perf smoke: csr H-partition diverges from boxed at vertex %d \
           (%d vs %d)\n"
          v l boxed_layer.(v);
        exit 1
      end)
    csr_layer;
  let rate wall = float_of_int m /. wall in
  let ratio = rate csr_wall /. rate boxed_wall in
  Printf.printf
    "\n== data plane: H-partition peel, n=%d m=%d ==\n\
     boxed  %8.1f ms  %.3e edges/sec\n\
     csr    %8.1f ms  %.3e edges/sec  (%.2fx, layers identical)\n"
    n m (boxed_wall *. 1e3) (rate boxed_wall) (csr_wall *. 1e3)
    (rate csr_wall) ratio;
  if ratio < 0.2 then begin
    Printf.eprintf
      "perf smoke: csr throughput sanity floor violated (%.2fx < 0.2x \
       boxed)\n"
      ratio;
    exit 1
  end;
  flush stdout

let () =
  let fast = Array.exists (( = ) "--fast") Sys.argv in
  let no_bechamel = Array.exists (( = ) "--no-bechamel") Sys.argv in
  (let rec backend_arg i =
     if i >= Array.length Sys.argv - 1 then ()
     else if Sys.argv.(i) = "--backend" then
       match Backend.of_string Sys.argv.(i + 1) with
       | Ok k -> Backend.set_default k
       | Error msg ->
           Printf.eprintf "perf_smoke: --backend: %s\n" msg;
           exit 2
     else backend_arg (i + 1)
   in
   backend_arg 1);
  Printf.printf "perf smoke: connectivity cache vs BFS oracle%s (backend %s)\n"
    (if fast then " (fast mode)" else "")
    (Backend.to_string (Backend.default ()));
  let cs = cases ~fast in
  wall_table ~fast cs;
  data_plane_check ~fast;
  augmenting_differential ~fast;
  if not no_bechamel then bechamel_pass ~fast cs;
  Printf.printf "\nperf smoke completed.\n"
