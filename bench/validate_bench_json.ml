(* Schema checker for the observability artifacts:

     validate_bench_json.exe BENCH_e5.json BENCH_e7.json ...
     validate_bench_json.exe --trace e5.trace.json BENCH_e5.json

   BENCH records must parse as JSON, carry a known schema tag
   (nw-bench/1 or nw-bench/2), and have every required field of their
   version; for nw-bench/2 records with a per-phase breakdown the
   self-rounds summed over the phases must equal the flat
   charged_rounds total (the invariant behind docs/benchmarking.md's
   "phases" table). `--trace FILE` additionally validates a Chrome
   trace_event export: a traceEvents array of named complete events
   with numeric ts/dur. `--flight FILE` validates an nw-flight/1
   post-mortem dump from the flight recorder. Exits nonzero on the
   first violation. *)

module J = Nw_obs.Json_lite

let failures = ref 0

let fail file fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "%s: %s\n" file msg)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let require file json field =
  match J.member field json with
  | Some v when v <> J.Null -> Some v
  | Some J.Null | None ->
      fail file "missing field %S" field;
      None
  | Some _ -> assert false

(* fields every schema version must carry, with a shape predicate *)
let shape_string = function J.String _ -> true | _ -> false
let shape_number = function J.Number _ -> true | _ -> false
let shape_bool = function J.Bool _ -> true | _ -> false
let shape_obj = function J.Obj _ -> true | _ -> false

let check_field file json (field, shape) =
  match require file json field with
  | None -> ()
  | Some v -> if not (shape v) then fail file "field %S has the wrong type" field

let common_fields =
  [
    ("exp", shape_string);
    ("desc", shape_string);
    ("quick", shape_bool);
    ("domains", shape_number);
    ("wall_s", shape_number);
    ("charged_rounds", shape_number);
    ("connectivity", shape_obj);
  ]

let v2_fields =
  [
    ("env", shape_obj);
    ("rounds_attribution", shape_string);
    ("counter_attribution", shape_string);
  ]

let check_connectivity file json =
  match J.member "connectivity" json with
  | Some (J.Obj _ as conn) ->
      List.iter
        (fun f -> check_field file conn (f, shape_number))
        [ "uf_queries"; "bfs_runs"; "uf_rebuilds" ]
  | _ -> ()

let check_env file json =
  match J.member "env" json with
  | Some (J.Obj _ as env) ->
      List.iter
        (check_field file env)
        [
          ("hostname", shape_string);
          ("ocaml_version", shape_string);
          ("stamped_at", shape_number);
        ];
      (* git_commit may be null (not a git checkout); fault_plan is
         optional — only stamped by runs under --chaos — but when present
         it must be an object carrying the plan digest and its canonical
         summary (docs/fault-model.md) *)
      (match J.member "fault_plan" env with
      | None -> ()
      | Some (J.Obj _ as fp) ->
          List.iter
            (check_field file fp)
            [ ("hash", shape_string); ("summary", shape_string) ]
      | Some _ ->
          fail file "env field \"fault_plan\" must be an object when present");
      (* pipeline is optional — records written before the engine refactor
         omit it — but when present it must name the algorithm registry and
         the pass-list digest it was built from (docs/architecture.md) *)
      (match J.member "pipeline" env with
      | None -> ()
      | Some (J.Obj _ as pl) ->
          List.iter
            (check_field file pl)
            [ ("registry", shape_string); ("hash", shape_string) ]
      | Some _ ->
          fail file "env field \"pipeline\" must be an object when present");
      (* backend is optional — records predating the CSR data plane omit
         it — but when present it names the process-default plane
         (docs/data-plane.md) *)
      (match J.member "backend" env with
      | None -> ()
      | Some (J.String _) -> ()
      | Some _ ->
          fail file "env field \"backend\" must be a string when present")
  | _ -> ()

(* additive nw-bench/2 field: a throughput sweep (BENCH_scaling.json) is a
   list of (backend, domains, instance, rate) legs, each fully numeric so
   trajectory tooling can diff edges_per_sec across commits *)
let check_throughput file json =
  match J.member "throughput" json with
  | None -> ()
  | Some (J.List legs) ->
      if legs = [] then fail file "field \"throughput\" must not be empty";
      List.iteri
        (fun i leg ->
          if not (shape_obj leg) then
            fail file "throughput leg %d is not an object" i
          else begin
            check_field file leg ("backend", shape_string);
            (* instance is optional — legs predating the full-pipeline
               sweep omit it — but when present it names the timed
               pipeline and joins the benchdiff alignment key *)
            (match J.member "instance" leg with
            | None | Some (J.String _) -> ()
            | Some _ ->
                fail file
                  "throughput leg field \"instance\" must be a string when \
                   present");
            List.iter
              (fun f -> check_field file leg (f, shape_number))
              [ "domains"; "edges"; "wall_s"; "edges_per_sec" ]
          end)
        legs
  | Some _ -> fail file "field \"throughput\" must be an array when present"

(* additive nw-bench/2 field: per-experiment GC/allocator attribution
   captured as quick_stat deltas around the measured run (plus the
   Dpool worker accumulators for helper-domain allocation). Old
   records without it stay valid; when present every field must be a
   number — top_heap_words is the high-water mark at experiment end,
   not a delta, but it is numeric all the same. *)
let resources_fields =
  [
    "minor_words";
    "major_words";
    "promoted_words";
    "minor_collections";
    "major_collections";
    "top_heap_words";
    "worker_minor_words";
    "worker_major_words";
  ]

let check_resources file json =
  match J.member "resources" json with
  | None -> ()
  | Some (J.Obj _ as res) ->
      List.iter
        (fun f -> check_field file res (f, shape_number))
        resources_fields
  | Some _ -> fail file "field \"resources\" must be an object when present"

(* additive nw-bench/2 field: the served-traffic record written by
   bench/loadgen (BENCH_service.json) — request mix, client-observed
   latency percentiles per request class, throughput, and the
   incremental-vs-fallback tallies from the daemon's stats response.
   Absent is fine (every non-service record); when present the shape
   must be complete so benchdiff can gate on validity counts and p99. *)
let check_service file json =
  match J.member "service" json with
  | None -> ()
  | Some (J.Obj _ as svc) ->
      check_field file svc ("proto", shape_string);
      List.iter
        (fun f -> check_field file svc (f, shape_number))
        [
          "requests";
          "invalid";
          "errors";
          "requests_per_sec";
          "incremental_updates";
          "fallbacks";
        ];
      (match J.member "incremental_speedup" svc with
      | None | Some J.Null | Some (J.Number _) -> ()
      | Some _ ->
          fail file
            "service field \"incremental_speedup\" must be a number or null")
      ;
      (match J.member "mix" svc with
      | Some (J.Obj _ as mix) ->
          List.iter
            (fun f -> check_field file mix (f, shape_number))
            [ "batch"; "point"; "churn" ]
      | _ -> fail file "service field \"mix\" must be an object");
      (match J.member "latency_ms" svc with
      | Some (J.List legs) ->
          if legs = [] then
            fail file "service field \"latency_ms\" must not be empty";
          List.iteri
            (fun i leg ->
              if not (shape_obj leg) then
                fail file "latency_ms leg %d is not an object" i
              else begin
                check_field file leg ("class", shape_string);
                List.iter
                  (fun f -> check_field file leg (f, shape_number))
                  [ "count"; "p50"; "p95"; "p99" ]
              end)
            legs
      | _ -> fail file "service field \"latency_ms\" must be an array")
  | Some _ -> fail file "field \"service\" must be an object when present"

(* nw-bench/2 invariant: phase self-rounds (including the trailing
   "(unattributed)" bucket) sum to the flat charged_rounds total *)
let check_phases file json =
  match J.member "phases" json with
  | None -> fail file "missing field \"phases\" (null when tracing is off)"
  | Some J.Null -> ()
  | Some (J.List phases) ->
      let sum = ref 0 in
      List.iter
        (fun p ->
          (match J.member "name" p with
          | Some (J.String _) -> ()
          | _ -> fail file "phase entry without a string \"name\"");
          match Option.bind (J.member "rounds" p) J.to_int with
          | Some r -> sum := !sum + r
          | None -> fail file "phase entry without an integer \"rounds\"")
        phases;
      let total =
        Option.bind (J.member "charged_rounds" json) J.to_int
      in
      (match total with
      | Some total when total <> !sum ->
          fail file
            "phase rounds sum to %d but charged_rounds is %d (attribution \
             leak)"
            !sum total
      | _ -> ())
  | Some _ -> fail file "field \"phases\" must be an array or null"

let check_bench file =
  match J.parse (read_file file) with
  | exception J.Parse_error msg -> fail file "invalid JSON: %s" msg
  | exception Sys_error msg -> fail file "unreadable: %s" msg
  | json -> (
      match Option.bind (J.member "schema" json) J.to_string with
      | Some "nw-bench/1" ->
          List.iter (check_field file json) common_fields;
          check_connectivity file json
      | Some "nw-bench/2" ->
          List.iter (check_field file json) (common_fields @ v2_fields);
          check_connectivity file json;
          check_env file json;
          check_phases file json;
          check_throughput file json;
          check_resources file json;
          check_service file json
      | Some other -> fail file "unknown schema %S" other
      | None -> fail file "missing schema tag")

let check_trace file =
  match J.parse (read_file file) with
  | exception J.Parse_error msg -> fail file "invalid JSON: %s" msg
  | exception Sys_error msg -> fail file "unreadable: %s" msg
  | json -> (
      match J.member "traceEvents" json with
      | Some (J.List events) ->
          if events = [] then fail file "empty traceEvents array";
          List.iteri
            (fun i ev ->
              let str f = Option.bind (J.member f ev) J.to_string in
              let num f = Option.bind (J.member f ev) J.to_float in
              (match str "name" with
              | Some "" | None -> fail file "event %d: unnamed" i
              | Some _ -> ());
              (match str "ph" with
              | Some "X" -> ()
              | _ -> fail file "event %d: phase is not a complete event" i);
              match (num "ts", num "dur") with
              | Some ts, Some dur when ts >= 0.0 && dur >= 0.0 -> ()
              | _ -> fail file "event %d: ts/dur missing or negative" i)
            events
      | _ -> fail file "missing traceEvents array")

(* nw-flight/1 post-mortem dumps (docs/observability.md): a dump must
   name why it was written, stamp its environment, lift the latest mark
   per name into "last", and carry per-domain ring snapshots whose
   events are tagged open/close/count/charge/mark with the per-kind
   payload. This is the round-trip half of the flight-recorder smoke
   leg: Flight.render emits it, this parser re-reads it. *)
let check_flight_event file i j ev =
  let where = Printf.sprintf "domain %d event %d" i j in
  if not (shape_obj ev) then fail file "%s is not an object" where
  else begin
    (match Option.bind (J.member "t_us" ev) J.to_float with
    | Some t when t >= 0.0 -> ()
    | _ -> fail file "%s: t_us missing or negative" where);
    let str f = Option.bind (J.member f ev) J.to_string in
    let num f = Option.bind (J.member f ev) J.to_float in
    let need_name () =
      match str "name" with
      | Some "" | None -> fail file "%s: unnamed" where
      | Some _ -> ()
    in
    match str "ev" with
    | Some "open" -> need_name ()
    | Some "close" ->
        need_name ();
        (match num "dur_us" with
        | Some d when d >= 0.0 -> ()
        | _ -> fail file "%s: close without nonneg dur_us" where);
        if num "rounds" = None then fail file "%s: close without rounds" where
    | Some "count" ->
        need_name ();
        if num "delta" = None then fail file "%s: count without delta" where
    | Some "charge" ->
        (match str "label" with
        | Some "" | None -> fail file "%s: charge without label" where
        | Some _ -> ());
        if num "rounds" = None then fail file "%s: charge without rounds" where
    | Some "mark" ->
        need_name ();
        (match J.member "fields" ev with
        | Some (J.Obj _) -> ()
        | _ -> fail file "%s: mark without a fields object" where)
    | Some other -> fail file "%s: unknown event tag %S" where other
    | None -> fail file "%s: missing event tag \"ev\"" where
  end

let check_flight file =
  match J.parse (read_file file) with
  | exception J.Parse_error msg -> fail file "invalid JSON: %s" msg
  | exception Sys_error msg -> fail file "unreadable: %s" msg
  | json -> (
      match Option.bind (J.member "schema" json) J.to_string with
      | Some "nw-flight/1" ->
          List.iter (check_field file json)
            [
              ("reason", shape_string);
              ("seq", shape_number);
              ("clock", shape_string);
              ("env", shape_obj);
              ("rings_dropped", shape_number);
            ];
          (match J.member "last" json with
          | Some (J.Obj marks) ->
              List.iter
                (fun (name, m) ->
                  if not (shape_obj m) then
                    fail file "last mark %S is not an object" name
                  else begin
                    check_field file m ("t_us", shape_number);
                    match J.member "fields" m with
                    | Some (J.Obj fields) ->
                        List.iter
                          (fun (k, v) ->
                            if not (shape_string v) then
                              fail file "last mark %S field %S is not a string"
                                name k)
                          fields
                    | _ ->
                        fail file "last mark %S without a fields object" name
                  end)
                marks
          | _ -> fail file "missing \"last\" object");
          (match J.member "domains" json with
          | Some (J.List doms) ->
              List.iteri
                (fun i d ->
                  if not (shape_obj d) then
                    fail file "domain %d is not an object" i
                  else begin
                    check_field file d ("tid", shape_number);
                    check_field file d ("dropped", shape_number);
                    match J.member "events" d with
                    | Some (J.List evs) ->
                        List.iteri (check_flight_event file i) evs
                    | _ -> fail file "domain %d without an events array" i
                  end)
                doms
          | _ -> fail file "missing \"domains\" array")
      | Some other -> fail file "unknown flight schema %S" other
      | None -> fail file "missing schema tag")

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse traces flights benches = function
    | "--trace" :: file :: rest -> parse (file :: traces) flights benches rest
    | "--flight" :: file :: rest -> parse traces (file :: flights) benches rest
    | [ ("--trace" | "--flight") as flag ] ->
        Printf.eprintf "validate_bench_json: %s expects a file\n" flag;
        exit 2
    | file :: rest -> parse traces flights (file :: benches) rest
    | [] -> (List.rev traces, List.rev flights, List.rev benches)
  in
  let traces, flights, benches = parse [] [] [] args in
  if traces = [] && flights = [] && benches = [] then begin
    prerr_endline
      "usage: validate_bench_json [--trace TRACE.json] [--flight FLIGHT.json] \
       BENCH_*.json ...";
    exit 2
  end;
  List.iter check_trace traces;
  List.iter check_flight flights;
  List.iter check_bench benches;
  let total = List.length traces + List.length flights + List.length benches in
  if !failures > 0 then begin
    Printf.eprintf "validate_bench_json: %d violation%s\n" !failures
      (if !failures = 1 then "" else "s");
    exit 1
  end;
  Printf.printf "validate_bench_json: %d file%s ok\n" total
    (if total = 1 then "" else "s")
