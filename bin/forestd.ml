(* forestd: command-line front end for the Nash-Williams LOCAL
   decomposition library.

     forestd generate --family forest-union --n 200 --alpha 5 -o g.txt
     forestd info g.txt
     forestd decompose g.txt --algorithm augment --epsilon 0.5
     forestd decompose g.txt --algorithm star --epsilon 0.25 --dot out.dot
*)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Io = Nw_graphs.Graph_io
module Arb = Nw_graphs.Arboricity
module Rounds = Nw_localsim.Rounds
module Coloring = Nw_decomp.Coloring
module Verify = Nw_decomp.Verify
module Obs = Nw_obs.Obs
module Flight = Nw_obs.Flight
module Prometheus = Nw_obs.Prometheus
module Metrics_server = Nw_obs.Metrics_server
module Jmit = Nw_obs.Json_lite.Emit
module Plan = Nw_chaos.Plan
module Registry = Nw_engine.Registry
module Engine = Nw_engine.Engine
module EStore = Nw_engine.Store
module Artifact = Nw_engine.Artifact

open Cmdliner

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 2021 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let epsilon_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc:"Slack parameter eps > 0.")

let graph_pos =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"GRAPH" ~doc:"Edge-list file (see graph_io format).")

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let family_conv =
  Arg.enum
    [
      ("forest-union", `Forest_union);
      ("forest-union-simple", `Forest_union_simple);
      ("erdos-renyi", `Erdos_renyi);
      ("complete", `Complete);
      ("grid", `Grid);
      ("line-multigraph", `Line_multigraph);
      ("random-regular", `Random_regular);
      ("planted", `Planted);
      ("k-tree", `K_tree);
      ("preferential", `Preferential);
      ("hypercube", `Hypercube);
      ("caterpillar", `Caterpillar);
    ]

let generate seed family n alpha p degree extra output =
  let rng = Random.State.make [| seed |] in
  let g =
    match family with
    | `Forest_union -> Gen.forest_union rng n alpha
    | `Forest_union_simple -> Gen.forest_union_simple rng n alpha
    | `Erdos_renyi -> Gen.erdos_renyi rng n p
    | `Complete -> Gen.complete n
    | `Grid ->
        let side = int_of_float (sqrt (float_of_int n)) in
        Gen.grid side side
    | `Line_multigraph -> Gen.line_multigraph n alpha
    | `Random_regular -> Gen.random_regular rng n degree
    | `Planted -> Gen.planted_alpha rng n alpha extra
    | `K_tree -> Gen.random_k_tree rng n alpha
    | `Preferential -> Gen.preferential_attachment rng n alpha
    | `Hypercube ->
        let d = max 1 (int_of_float (log (float_of_int (max 2 n)) /. log 2.)) in
        Gen.hypercube d
    | `Caterpillar -> Gen.caterpillar (max 1 (n / (1 + degree))) degree
  in
  (match output with
  | None -> print_string (Io.to_edge_list g)
  | Some path -> Io.write_edge_list path g);
  Format.eprintf "generated %a@." G.pp g

let generate_cmd =
  let family =
    Arg.(
      value
      & opt family_conv `Forest_union
      & info [ "family" ] ~docv:"FAMILY" ~doc:"Graph family.")
  in
  let n =
    Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc:"Vertex count.")
  in
  let alpha =
    Arg.(
      value & opt int 4
      & info [ "alpha" ] ~docv:"A" ~doc:"Target arboricity (where used).")
  in
  let p =
    Arg.(
      value & opt float 0.1
      & info [ "p" ] ~docv:"P" ~doc:"Edge probability (erdos-renyi).")
  in
  let degree =
    Arg.(
      value & opt int 4
      & info [ "degree" ] ~docv:"D" ~doc:"Degree (random-regular).")
  in
  let extra =
    Arg.(
      value & opt int 0
      & info [ "extra" ] ~docv:"X" ~doc:"Extra noise edges (planted).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout if absent).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a benchmark graph.")
    Term.(
      const generate $ seed_arg $ family $ n $ alpha $ p $ degree $ extra
      $ output)

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_run path exact =
  let g = Io.read_edge_list path in
  Format.printf "%a@." G.pp g;
  Format.printf "simple: %b@." (G.is_simple g);
  Format.printf "degeneracy: %d@." (Nw_graphs.Degeneracy.degeneracy g);
  Format.printf "density lower bound: %d@." (Arb.density_lower_bound g);
  let alpha_star, _ = Arb.pseudo_arboricity g in
  Format.printf "pseudo-arboricity: %d@." alpha_star;
  if exact then begin
    let alpha, _ = Nw_baseline.Gabow_westermann.arboricity g in
    Format.printf "arboricity (exact): %d@." alpha
  end

let info_cmd =
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:"Also compute the exact arboricity (matroid partition).")
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print graph statistics.")
    Term.(const info_run $ graph_pos $ exact)

(* ------------------------------------------------------------------ *)
(* decompose                                                           *)
(* ------------------------------------------------------------------ *)

(* every algorithm the CLI knows comes from the engine registry — adding
   an entry there is all it takes to appear here and in `forestd list` *)
let algorithm_conv =
  Arg.enum (List.map (fun e -> (e.Registry.name, e)) Registry.all)

(* set when report_coloring sees an invalid decomposition; under --chaos
   this becomes a machine-readable diagnostic and a distinct exit code *)
let verify_failure : string option ref = ref None

let report_coloring ?(star = false) g coloring rounds =
  (match
     if star then Verify.star_forest_decomposition coloring
     else Verify.forest_decomposition coloring
   with
  | Ok () -> Format.printf "verified: valid decomposition@."
  | Error msg ->
      verify_failure := Some msg;
      Format.printf "INVALID: %s@." msg);
  Format.printf "colors used: %d@." (Verify.colors_used coloring);
  Format.printf "max forest diameter: %d@."
    (Verify.max_forest_diameter coloring);
  ignore g;
  match rounds with
  | None -> ()
  | Some r -> Format.printf "%a@." Rounds.pp r

let decompose path algorithm epsilon seed alpha_opt dot save trace metrics
    chaos chaos_seed backend domains flight serve_metrics =
  Nw_graphs.Backend.set_default backend;
  Nw_localsim.Dpool.with_domains domains @@ fun () ->
  let g = Io.read_edge_list path in
  let rng = Random.State.make [| seed |] in
  let alpha =
    match alpha_opt with
    | Some a -> a
    | None -> fst (Nw_baseline.Gabow_westermann.arboricity g)
  in
  Format.printf "graph: %a, alpha = %d, eps = %g, backend = %s@." G.pp g alpha
    epsilon
    (Nw_graphs.Backend.to_string backend);
  (* the flight recorder and metrics server piggyback on the Obs stream;
     neither changes what goes to stdout, so fault-free output stays
     byte-identical to a plain invocation *)
  if trace <> None || metrics || flight <> None || serve_metrics <> None then
    Obs.set_enabled true;
  (* an empty --chaos plan compiles to None: no hooks, output identical
     to a chaos-free invocation *)
  let faults =
    match chaos with
    | None -> None
    | Some plan ->
        Option.map
          (fun f -> (plan, f))
          (Nw_chaos.Inject.compile plan ~seed:chaos_seed ())
  in
  let algo_name = algorithm.Registry.name in
  let pipeline =
    algorithm.Registry.build { Registry.graph = g; epsilon; alpha }
  in
  (match flight with
  | None -> ()
  | Some file ->
      Flight.set_enabled true;
      let registry, registry_hash = Registry.stamp () in
      let env =
        [
          ("graph", path);
          ("algorithm", algo_name);
          ("epsilon", string_of_float epsilon);
          ("seed", string_of_int seed);
          ("backend", Nw_graphs.Backend.to_string backend);
          ("domains", string_of_int domains);
          ("registry", registry);
          ("registry_hash", registry_hash);
          ("pipeline", pipeline.Engine.pl_name);
          ("pipeline_hash", Engine.digest pipeline);
        ]
        @
        match faults with
        | Some (plan, _) ->
            [
              ("fault_plan", Plan.digest plan);
              ("fault_summary", Plan.summary plan);
              ("chaos_seed", string_of_int chaos_seed);
            ]
        | None -> []
      in
      Flight.set_sink ~env file);
  (* --serve-metrics: a Unix-socket endpoint on its own domain serving
     whatever snapshot was last published; snapshots are published at
     every pass boundary and once more when the run completes *)
  let published = Atomic.make "" in
  (match serve_metrics with
  | None -> ()
  | Some sock ->
      (* start refuses to reclaim a non-socket path (it would unlink
         someone else's file); surface that as a CLI error, not a crash *)
      let srv =
        try Metrics_server.start ~path:sock (fun () -> Atomic.get published)
        with Invalid_argument msg ->
          prerr_endline ("forestd: " ^ msg);
          exit 2
      in
      at_exit (fun () -> Metrics_server.stop srv));
  let publish_live () =
    if serve_metrics <> None then
      Atomic.set published (Prometheus.to_string [ Obs.live_snapshot () ])
  in
  (* under fault injection a failing run is an expected, machine-consumable
     outcome: one JSON line on stderr, exit code 3 (distinct from
     cmdliner's 1/2/124/125 and from the fault-free paths). NB %S is
     OCaml escaping, not JSON — strings go through Json_lite.Emit. *)
  let chaos_diagnostic ~error ~detail plan =
    Printf.eprintf
      "{\"error\":%s,\"algorithm\":%s,\"chaos\":%s,\"chaos_seed\":%d,\"detail\":%s}\n"
      (Jmit.string_value error) (Jmit.string_value algo_name)
      (Jmit.string_value (Plan.to_string plan))
      chaos_seed (Jmit.string_value detail);
    Flight.mark "forestd.exit"
      [ ("error", error); ("detail", detail); ("code", "3") ];
    Flight.trigger ~reason:error ();
    exit 3
  in
  (* the registry entry's pipeline does the algorithmic work; what remains
     here is reporting, keyed on what the pipeline left in the store *)
  let run_collected () =
    Obs.collect @@ fun () ->
    Obs.span "decompose" @@ fun () ->
    let rounds = Rounds.create () in
    let ctx = Engine.ctx ~rng ~rounds in
    let init = EStore.put EStore.empty "graph" (Artifact.Graph g) in
    (* pass-boundary checkpoints feed the flight recorder's
       "last checkpoint" mark and the metrics publisher; without either
       consumer the engine takes no snapshots at all *)
    let checkpoint =
      if flight <> None || serve_metrics <> None then
        Some (fun (_ : Engine.checkpoint) -> publish_live ())
      else None
    in
    let store = Engine.run ?checkpoint ctx pipeline ~init in
    let rounds_opt =
      if algorithm.Registry.reports_rounds then Some rounds else None
    in
    match algorithm.Registry.yields with
    | Registry.Coloring_out ->
        let c = EStore.coloring store "coloring" in
        if EStore.mem store "fd_stats" then begin
          let stats = EStore.fd_stats store "fd_stats" in
          Format.printf "leftover: %d, stalls: %d, longest sequence: %d@."
            stats.Nw_core.Forest_algo.leftover_edges
            stats.Nw_core.Forest_algo.stalls
            stats.Nw_core.Forest_algo.max_sequence_length
        end;
        if EStore.mem store "sfd_stats" then begin
          let stats = EStore.sfd_stats store "sfd_stats" in
          Format.printf "deficiency: %d, leftover: %d@."
            stats.Nw_core.Star_forest.max_deficiency
            stats.Nw_core.Star_forest.leftover_edges
        end;
        report_coloring ~star:algorithm.Registry.star g c rounds_opt;
        Some c
    | Registry.Orientation_out ->
        let o = EStore.orientation store "orientation" in
        Format.printf "max out-degree: %d (alpha = %d)@."
          (Nw_graphs.Orientation.max_out_degree o)
          alpha;
        Format.printf "%a@." Rounds.pp rounds;
        None
    | Registry.Pseudo_out ->
        let _assignment, k = EStore.assignment store "assignment" in
        Format.printf "pseudo-forests: %d (alpha = %d)@." k alpha;
        Format.printf "%a@." Rounds.pp rounds;
        None
  in
  let coloring, obs_trace =
    match faults with
    | None -> run_collected ()
    | Some (plan, f) ->
        let r, stats =
          (* a fault-killed run becomes the documented JSON diagnostic *)
          try Nw_localsim.Msg_net.with_faults f run_collected
          with exn ->
            chaos_diagnostic ~error:"algorithm-raised"
              ~detail:(Printexc.to_string exn) plan
        in
        Format.printf
          "chaos: drops=%d dups=%d delays=%d crashes=%d restarts=%d \
           reorders=%d digest=%Lx@."
          stats.Nw_localsim.Msg_net.drops stats.Nw_localsim.Msg_net.dups
          stats.Nw_localsim.Msg_net.delays stats.Nw_localsim.Msg_net.crashes
          stats.Nw_localsim.Msg_net.restarts
          stats.Nw_localsim.Msg_net.reorders stats.Nw_localsim.Msg_net.digest;
        r
  in
  if serve_metrics <> None then
    Atomic.set published (Prometheus.to_string [ obs_trace ]);
  if metrics && not (Obs.is_empty obs_trace) then
    Format.printf "%a@?" Obs.pp_summary obs_trace;
  (match trace with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      if Filename.check_suffix file ".jsonl" then
        Obs.Export.jsonl_to_channel oc [ obs_trace ]
      else Obs.Export.chrome_to_channel oc [ obs_trace ];
      close_out oc;
      Format.printf "wrote trace to %s@." file);
  (match (dot, coloring) with
  | Some dot_path, Some c ->
      let oc = open_out dot_path in
      output_string oc (Io.to_dot g ~edge_color:(fun e -> Coloring.color c e));
      close_out oc;
      Format.printf "wrote %s@." dot_path
  | _ -> ());
  (match (save, coloring) with
  | Some save_path, Some c ->
      Nw_decomp.Coloring_io.write save_path c;
      Format.printf "saved decomposition to %s@." save_path
  | Some _, None ->
      Format.printf "note: this algorithm produces no coloring to save@."
  | None, _ -> ());
  match (faults, !verify_failure) with
  | Some (plan, _), Some detail ->
      chaos_diagnostic ~error:"invalid-decomposition" ~detail plan
  | _ -> ()

let decompose_cmd =
  let algorithm =
    let default =
      match Registry.find "augment" with Some e -> e | None -> assert false
    in
    Arg.(
      value
      & opt algorithm_conv default
      & info [ "algorithm"; "a" ] ~docv:"ALG" ~doc:"Algorithm to run.")
  in
  let alpha =
    Arg.(
      value
      & opt (some int) None
      & info [ "alpha" ] ~docv:"A"
          ~doc:"Arboricity bound (computed exactly when omitted).")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write a colored DOT rendering.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:"Save the decomposition (coloring_io format).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON of the phase spans (open in \
             chrome://tracing or ui.perfetto.dev); a .jsonl suffix selects \
             the JSONL event stream.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Print the phase-span tree, counters, and histograms.")
  in
  let plan_conv =
    let parse s =
      match Plan.of_string s with Ok p -> Ok p | Error m -> Error (`Msg m)
    in
    let print ppf p = Format.pp_print_string ppf (Plan.to_string p) in
    Arg.conv (parse, print)
  in
  let chaos =
    Arg.(
      value
      & opt (some plan_conv) None
      & info [ "chaos" ] ~docv:"PLAN"
          ~doc:
            "Run under a deterministic fault-injection plan (see \
             docs/fault-model.md), e.g. drop=0.1,delay=0.2:2,reorder. An \
             empty plan is byte-identical to omitting the flag. If the \
             faults make the result fail verification, forestd prints a \
             one-line JSON diagnostic on stderr and exits 3.")
  in
  let chaos_seed =
    Arg.(
      value & opt int 1
      & info [ "chaos-seed" ] ~docv:"N"
          ~doc:
            "Seed for the fault plan; the same (plan, seed) pair replays \
             the identical fault timeline.")
  in
  let backend =
    let backend_conv =
      Arg.enum
        (List.map
           (fun k -> (Nw_graphs.Backend.to_string k, k))
           Nw_graphs.Backend.all)
    in
    Arg.(
      value
      & opt backend_conv Nw_graphs.Backend.Boxed
      & info [ "backend" ] ~docv:"PLANE"
          ~doc:
            "Data plane for the message-passing kernels (boxed | csr). \
             Outputs are byte-identical; csr streams flat Bigarray \
             adjacency (docs/data-plane.md).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"K"
          ~doc:
            "Shard each LOCAL round across K domains. Results, round \
             ledgers, and chaos digests are byte-identical to K=1.")
  in
  let flight =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-recorder" ] ~docv:"FILE"
          ~doc:
            "Arm the bounded flight recorder: on a pass failure, a \
             chaos-invalid outcome, or any exit-3 diagnostic, dump a \
             self-contained nw-flight/1 JSON post-mortem (recent span/\
             counter/charge events per domain, env stamp, pipeline hash, \
             fault-plan digest, last checkpoint) to FILE. Fault-free \
             stdout is byte-identical to running without the flag.")
  in
  let serve_metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "serve-metrics" ] ~docv:"SOCK"
          ~doc:
            "Serve the live Obs counter/histogram registry in Prometheus \
             text format over a Unix socket at SOCK for the duration of \
             the run (scrape with curl --unix-socket SOCK \
             http://localhost/). Snapshots refresh at every pass \
             boundary.")
  in
  Cmd.v
    (Cmd.info "decompose" ~doc:"Run a decomposition algorithm on a graph.")
    Term.(
      const decompose $ graph_pos $ algorithm $ epsilon_arg $ seed_arg $ alpha
      $ dot $ save $ trace $ metrics $ chaos $ chaos_seed $ backend $ domains
      $ flight $ serve_metrics)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

(* run a decomposition with Obs on and print the Prometheus text
   exposition of the finished trace — the one-shot, pipeable face of the
   same rendering --serve-metrics serves over a socket *)
let stats_run path algorithm epsilon seed alpha_opt backend domains =
  Nw_graphs.Backend.set_default backend;
  Nw_localsim.Dpool.with_domains domains @@ fun () ->
  let g = Io.read_edge_list path in
  let rng = Random.State.make [| seed |] in
  let alpha =
    match alpha_opt with
    | Some a -> a
    | None -> fst (Nw_baseline.Gabow_westermann.arboricity g)
  in
  Obs.set_enabled true;
  let (), t =
    Obs.collect @@ fun () ->
    Obs.span "decompose" @@ fun () ->
    let rounds = Rounds.create () in
    let pipeline =
      algorithm.Registry.build { Registry.graph = g; epsilon; alpha }
    in
    let ctx = Engine.ctx ~rng ~rounds in
    let init = EStore.put EStore.empty "graph" (Artifact.Graph g) in
    ignore (Engine.run ctx pipeline ~init)
  in
  print_string (Prometheus.to_string [ t ])

let stats_cmd =
  let algorithm =
    let default =
      match Registry.find "augment" with Some e -> e | None -> assert false
    in
    Arg.(
      value
      & opt algorithm_conv default
      & info [ "algorithm"; "a" ] ~docv:"ALG" ~doc:"Algorithm to run.")
  in
  let alpha =
    Arg.(
      value
      & opt (some int) None
      & info [ "alpha" ] ~docv:"A"
          ~doc:"Arboricity bound (computed exactly when omitted).")
  in
  let backend =
    let backend_conv =
      Arg.enum
        (List.map
           (fun k -> (Nw_graphs.Backend.to_string k, k))
           Nw_graphs.Backend.all)
    in
    Arg.(
      value
      & opt backend_conv Nw_graphs.Backend.Boxed
      & info [ "backend" ] ~docv:"PLANE"
          ~doc:"Data plane for the message-passing kernels (boxed | csr).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"K"
          ~doc:"Shard each LOCAL round across K domains.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a decomposition and print its Obs registry (counters, \
          histograms, per-pass aggregates) in Prometheus text format.")
    Term.(
      const stats_run $ graph_pos $ algorithm $ epsilon_arg $ seed_arg $ alpha
      $ backend $ domains)

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_run verbose =
  List.iter
    (fun e ->
      Format.printf "%-12s %s@." e.Registry.name e.Registry.description;
      if verbose then begin
        let pipeline =
          e.Registry.build
            {
              Registry.graph = Nw_graphs.Generators.complete 2;
              epsilon = 0.5;
              alpha = 1;
            }
        in
        List.iter
          (fun p -> Format.printf "             - %s@." p.Engine.name)
          pipeline.Engine.passes
      end)
    Registry.all;
  let registry, hash = Registry.stamp () in
  Format.printf "registry: %s %s@." registry hash

let list_cmd =
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Also print each algorithm's pipeline passes.")
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the registered decomposition algorithms.")
    Term.(const list_run $ verbose)

(* ------------------------------------------------------------------ *)
(* verify                                                              *)
(* ------------------------------------------------------------------ *)

let verify_run graph_path coloring_path star lists =
  let g = Io.read_edge_list graph_path in
  let coloring = Nw_decomp.Coloring_io.read coloring_path g in
  let checks =
    [
      ( "forest decomposition",
        if star then Verify.star_forest_decomposition coloring
        else Verify.forest_decomposition coloring );
    ]
    @
    match lists with
    | None -> []
    | Some k ->
        [ ("palette (full 0..k-1)",
           Verify.respects_palette coloring (Nw_decomp.Palette.full g k)) ]
  in
  let failed =
    List.fold_left
      (fun acc (name, r) ->
        match r with
        | Ok () ->
            Format.printf "%-24s ok@." name;
            acc
        | Error msg ->
            Format.printf "%-24s FAILED: %s@." name msg;
            acc + 1)
      0 checks
  in
  Format.printf "colors used: %d, max diameter: %d@."
    (Verify.colors_used coloring)
    (Verify.max_forest_diameter coloring);
  if failed > 0 then exit 1

let verify_cmd =
  let coloring_pos =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"COLORING" ~doc:"Saved decomposition file.")
  in
  let star =
    Arg.(
      value & flag
      & info [ "star" ] ~doc:"Require every class to be a star forest.")
  in
  let lists =
    Arg.(
      value
      & opt (some int) None
      & info [ "palette" ] ~docv:"K"
          ~doc:"Also check colors lie in 0..K-1.")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Re-verify a saved decomposition against a graph.")
    Term.(const verify_run $ graph_pos $ coloring_pos $ star $ lists)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_run socket backend domains serve_metrics =
  Nw_graphs.Backend.set_default backend;
  (* daemon-side failures use the same one-line JSON stderr diagnostic
     shape as the chaos path: machine-consumable, Json_lite-escaped,
     paired with a distinctive exit code (2 = CLI misuse, 3 = runtime
     failure, matching decompose) *)
  let diagnostic ~error ~detail code =
    Printf.eprintf "{\"error\":%s,\"socket\":%s,\"detail\":%s}\n"
      (Jmit.string_value error) (Jmit.string_value socket)
      (Jmit.string_value detail);
    exit code
  in
  match
    Nw_service.Server.serve
      {
        Nw_service.Server.socket_path = socket;
        domains;
        metrics_socket = serve_metrics;
      }
  with
  | () -> ()
  | exception Invalid_argument detail ->
      (* --socket (or --serve-metrics) refused: the path exists and is
         not a socket, so it is not ours to unlink *)
      diagnostic ~error:"bad-socket-path" ~detail 2
  | exception Nw_service.Server.Server_error detail ->
      diagnostic ~error:"server-failed" ~detail 3
  | exception Unix.Unix_error (e, fn, _) ->
      diagnostic ~error:"server-failed"
        ~detail:(fn ^ ": " ^ Unix.error_message e)
        3

let serve_cmd =
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Unix socket to listen on (nw-wire/1 frames; see \
             docs/service.md). A stale socket file left by a dead daemon \
             is reclaimed; any other existing file is refused with a \
             JSON diagnostic and exit 2.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"K"
          ~doc:
            "Persistent worker-pool size for batch requests. Served \
             outputs are byte-identical across K.")
  in
  let serve_metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "serve-metrics" ] ~docv:"SOCK"
          ~doc:
            "Also serve the live request-latency histograms and counters \
             in Prometheus text format over a second Unix socket at SOCK \
             (scrape with curl --unix-socket SOCK http://localhost/).")
  in
  let backend =
    let backend_conv =
      Arg.enum
        (List.map
           (fun k -> (Nw_graphs.Backend.to_string k, k))
           Nw_graphs.Backend.all)
    in
    Arg.(
      value
      & opt backend_conv Nw_graphs.Backend.Boxed
      & info [ "backend" ] ~docv:"PLANE"
          ~doc:
            "Data plane for batch pipelines and the incremental \
             connectivity cache (boxed | csr). Served responses are \
             byte-identical; csr answers decompose and edge churn from \
             the flat planes (docs/data-plane.md).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the decomposition daemon: named dynamic-graph sessions, \
          incremental edge churn, batch decompose/orient via the \
          registry, over a Unix socket.")
    Term.(const serve_run $ socket $ backend $ domains $ serve_metrics)

let () =
  let doc = "Nash-Williams forest decomposition in the LOCAL model" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "forestd" ~doc)
          [
            generate_cmd;
            info_cmd;
            decompose_cmd;
            stats_cmd;
            verify_cmd;
            list_cmd;
            serve_cmd;
          ]))
