(* A runnable counterpart of Figures 1 and 2 of the paper: build a partial
   forest decomposition, search for an augmenting sequence from an uncolored
   edge (Algorithm 1), print the growth of the explored edge set |E_i|, the
   sequence before and after short-circuiting (Prop 3.4), and the coloring
   before and after augmentation (Lemma 3.1).

   The example doubles as living documentation for the lib/obs tracing
   layer: every phase runs inside an [Obs.span], the augmentation loop
   attaches attributes ([edge], [explored], [seq_len]) and feeds
   histograms, and the program ends with the text summary tree that
   `--metrics` prints in the bench harness. Pass a file name to also
   write a Chrome trace you can open in chrome://tracing or Perfetto.

   Run with: dune exec examples/augment_trace.exe [-- trace.json] *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Verify = Nw_decomp.Verify
module Aug = Nw_core.Augmenting
module Obs = Nw_obs.Obs

let pp_coloring g coloring =
  G.fold_edges
    (fun e u v () ->
      let c =
        match Coloring.color coloring e with
        | None -> "-"
        | Some c -> string_of_int c
      in
      Format.printf "  edge %2d = (%2d,%2d)  color %s@." e u v c)
    g ()

let pp_sequence label seq =
  Format.printf "%s:@." label;
  List.iteri
    (fun i (e, c) ->
      Format.printf "  step %d: edge %d takes color %d@." (i + 1) e c)
    seq

(* the greedy phase from Section 2: first color that closes no cycle *)
let greedy_phase g coloring colors =
  Obs.span "example.greedy_phase" @@ fun () ->
  G.fold_edges
    (fun e _ _ () ->
      let rec try_color c =
        if c < colors then
          if Coloring.would_close_cycle coloring e c then try_color (c + 1)
          else Coloring.set coloring e c
      in
      try_color 0)
    g ();
  (* attributes attach to the innermost open span — here, this one *)
  Obs.set_attr "colored" (Obs.Int (Coloring.colored_count coloring))

let augment_one coloring palette e =
  (* a span per augmentation; [Aug.search] opens its own child span, so
     the trace shows the search nested under this wrapper *)
  Obs.span "example.augment" ~attrs:[ ("edge", Obs.Int e) ] @@ fun () ->
  Format.printf "@.--- augmenting uncolored edge %d ---@." e;
  match Aug.search coloring palette ~start:e () with
  | Aug.Stalled _ -> Format.printf "stalled (cannot happen for K6)@."
  | Aug.Found (seq, stats) ->
      Format.printf "explored %d edges in %d growth iterations@."
        stats.Aug.explored stats.Aug.iterations;
      List.iter
        (fun (i, size) -> Format.printf "  |E_%d| = %d@." i size)
        stats.Aug.growth;
      pp_sequence "almost augmenting sequence (Fig 1a)" seq;
      let seq' = Aug.short_circuit coloring seq in
      pp_sequence "augmenting sequence after short-circuit (Prop 3.4)" seq';
      (* attributes recorded late still land on this span *)
      Obs.set_attr "explored" (Obs.Int stats.Aug.explored);
      Obs.set_attr "seq_len" (Obs.Int (List.length seq));
      Obs.set_attr "seq_len_short_circuited" (Obs.Int (List.length seq'));
      (* histograms summarize across all augmentations of the run *)
      Obs.observe "example.shortcut_savings"
        (float_of_int (List.length seq - List.length seq'));
      Aug.apply coloring seq';
      Verify.exn (Verify.partial_forest_decomposition coloring);
      Format.printf "augmentation applied; invariant verified (Fig 1b)@."

let () =
  let trace_file = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  (* one switch turns the whole instrumented pipeline on; without it
     every span below is a plain function call *)
  Obs.set_enabled true;

  let (), trace =
    Obs.collect @@ fun () ->
    Obs.span "example.augment_trace" @@ fun () ->
    (* K6 has arboricity 3; fill it greedily with 3 colors until stuck,
       then augment the remaining edges *)
    let g = Gen.complete 6 in
    let colors = 3 in
    let coloring = Coloring.create g ~colors in
    let palette = Palette.full g colors in
    greedy_phase g coloring colors;
    Format.printf "after the greedy phase (%d of %d edges colored):@."
      (Coloring.colored_count coloring)
      (G.m g);
    pp_coloring g coloring;

    List.iter (augment_one coloring palette)
      (Array.to_list (Coloring.uncolored coloring));

    Format.printf "@.final decomposition:@.";
    pp_coloring g coloring;
    Verify.exn (Verify.forest_decomposition coloring);
    Format.printf "valid 3-forest decomposition of K6 (alpha = 3)@."
  in

  (* the same summary tree `--metrics` prints in bench/main.exe *)
  Format.printf "@.=== trace summary (Obs.pp_summary) ===@.";
  Format.printf "%a@?" Obs.pp_summary trace;
  match trace_file with
  | None ->
      Format.printf
        "@.(pass a file name to write a Chrome trace: dune exec \
         examples/augment_trace.exe -- trace.json)@."
  | Some file ->
      let oc = open_out file in
      Obs.Export.chrome_to_channel oc [ trace ];
      close_out oc;
      Format.printf "@.Chrome trace written to %s (open in \
                     chrome://tracing or https://ui.perfetto.dev)@."
        file
