(* A runnable counterpart of Figures 1 and 2 of the paper: build a partial
   forest decomposition, search for an augmenting sequence from an uncolored
   edge (Algorithm 1), print the growth of the explored edge set |E_i|, the
   sequence before and after short-circuiting (Prop 3.4), and the coloring
   before and after augmentation (Lemma 3.1).

   Run with: dune exec examples/augment_trace.exe *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Verify = Nw_decomp.Verify
module Aug = Nw_core.Augmenting

let pp_coloring g coloring =
  G.fold_edges
    (fun e u v () ->
      let c =
        match Coloring.color coloring e with
        | None -> "-"
        | Some c -> string_of_int c
      in
      Format.printf "  edge %2d = (%2d,%2d)  color %s@." e u v c)
    g ()

let pp_sequence label seq =
  Format.printf "%s:@." label;
  List.iteri
    (fun i (e, c) ->
      Format.printf "  step %d: edge %d takes color %d@." (i + 1) e c)
    seq

let () =
  (* K6 has arboricity 3; fill it greedily with 3 colors until stuck, then
     augment the remaining edges *)
  let g = Gen.complete 6 in
  let colors = 3 in
  let coloring = Coloring.create g ~colors in
  let palette = Palette.full g colors in
  (* greedy phase: first color that closes no cycle *)
  G.fold_edges
    (fun e _ _ () ->
      let rec try_color c =
        if c < colors then
          if Coloring.would_close_cycle coloring e c then try_color (c + 1)
          else Coloring.set coloring e c
      in
      try_color 0)
    g ();
  Format.printf "after the greedy phase (%d of %d edges colored):@."
    (Coloring.colored_count coloring)
    (G.m g);
  pp_coloring g coloring;

  List.iter
    (fun e ->
      Format.printf "@.--- augmenting uncolored edge %d ---@." e;
      match Aug.search coloring palette ~start:e () with
      | Aug.Stalled _ -> Format.printf "stalled (cannot happen for K6)@."
      | Aug.Found (seq, stats) ->
          Format.printf "explored %d edges in %d growth iterations@."
            stats.Aug.explored stats.Aug.iterations;
          List.iter
            (fun (i, size) -> Format.printf "  |E_%d| = %d@." i size)
            stats.Aug.growth;
          pp_sequence "almost augmenting sequence (Fig 1a)" seq;
          let seq' = Aug.short_circuit coloring seq in
          pp_sequence "augmenting sequence after short-circuit (Prop 3.4)"
            seq';
          Aug.apply coloring seq';
          Verify.exn (Verify.partial_forest_decomposition coloring);
          Format.printf "augmentation applied; invariant verified (Fig 1b)@.")
    (Array.to_list (Coloring.uncolored coloring));

  Format.printf "@.final decomposition:@.";
  pp_coloring g coloring;
  Verify.exn (Verify.forest_decomposition coloring);
  Format.printf "valid 3-forest decomposition of K6 (alpha = 3)@."
