(* List-forest decomposition as frequency assignment (Theorem 4.10 /
   Seymour's theorem).

   Links of a mesh network must each pick a channel from a per-link allowed
   list (hardware and regulatory constraints); the links of one channel must
   stay acyclic so each channel's links form a forest (loop-free per-channel
   topologies, e.g. for spanning-tree routing). Seymour's theorem says lists
   of size alpha always suffice; the paper gives the LOCAL algorithm when
   lists have size (1+eps)*alpha.

   Run with: dune exec examples/channel_lists.exe *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Palette = Nw_decomp.Palette
module Coloring = Nw_decomp.Coloring
module Verify = Nw_decomp.Verify
module Rounds = Nw_localsim.Rounds

let () =
  let rng = Random.State.make [| 5 |] in
  (* dense mesh: alpha = 40, so the w.h.p. regime of Thm 4.9 is reachable *)
  let alpha = 40 in
  let g = Gen.forest_union rng 100 alpha in
  let channels = 120 in
  Format.printf "mesh: %a, alpha = %d, %d channels in the band@." G.pp g alpha
    channels;

  (* every link may use every channel except a random forbidden third *)
  let lists =
    Array.init (G.m g) (fun _ ->
        List.filter
          (fun _ -> Random.State.float rng 1.0 < 0.7)
          (List.init channels (fun c -> c)))
  in
  let palette = Palette.of_lists ~colors:channels lists in
  Format.printf "smallest allowed list: %d channels@."
    (Palette.min_size palette);

  let rounds = Rounds.create () in
  let coloring, stats =
    Nw_engine.Run.list_forest_decomposition g palette ~epsilon:1.0 ~alpha ~rng
      ~rounds ()
  in
  Verify.exn (Verify.forest_decomposition coloring);
  Verify.exn (Verify.respects_palette coloring palette);
  Format.printf
    "assigned all %d links from their own lists; %d leftover links were \
     rerouted through reserved channels@."
    (G.m g) stats.Nw_core.Forest_algo.leftover_edges;
  Format.printf "every channel's links form a forest (verified)@.";
  Format.printf "LOCAL rounds charged: %d@." (Rounds.total rounds)
