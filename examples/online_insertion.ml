(* Online maintenance of a (1+eps)*alpha forest decomposition under edge
   insertions, via the Section 3 augmentation engine.

   Edges arrive one at a time (a growing overlay network, a streaming
   graph); each arrival is colored by a single augmenting sequence, which
   the paper shows stays short and local whenever the palette has (1+eps)
   slack — so insertions touch only an O(log n / eps) neighborhood, and the
   decomposition is valid at every instant. This is the online view of the
   same machinery Algorithm 2 runs in parallel.

   Run with: dune exec examples/online_insertion.exe *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Verify = Nw_decomp.Verify
module Aug = Nw_core.Augmenting

let () =
  let rng = Random.State.make [| 31 |] in
  let alpha = 6 in
  let n = 150 in
  (* the final graph, revealed edge by edge in random order *)
  let g = Gen.forest_union rng n alpha in
  let colors = alpha + 2 in
  let palette = Palette.full g colors in
  let coloring = Coloring.create g ~colors in
  let order = Array.init (G.m g) (fun e -> e) in
  for i = Array.length order - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  Format.printf "inserting %d edges (alpha = %d, %d colors available)@."
    (G.m g) alpha colors;
  let worst_len = ref 0 and worst_explored = ref 0 and checkpoints = ref 0 in
  Array.iteri
    (fun i e ->
      (match Aug.augment_edge coloring palette ~edge:e () with
      | Some stats ->
          worst_len := max !worst_len (stats.Aug.iterations + 1);
          worst_explored := max !worst_explored stats.Aug.explored
      | None -> failwith "augmentation cannot stall above the arboricity");
      (* validity holds at *every* prefix; spot-check a few *)
      if (i + 1) mod 200 = 0 || i + 1 = G.m g then begin
        Verify.exn (Verify.partial_forest_decomposition coloring);
        incr checkpoints
      end)
    order;
  Format.printf
    "all %d insertions colored online; %d validity checkpoints passed@."
    (G.m g) !checkpoints;
  Format.printf
    "worst augmenting sequence: %d steps, worst region explored: %d edges@."
    !worst_len !worst_explored;
  Format.printf
    "every insertion stayed local — the (1+eps) slack at work (Thm 3.2)@."
