(* Quickstart: decompose a graph into (1+eps)*alpha forests with the
   LOCAL-model algorithm of Theorem 4.6, verify the result, and inspect the
   round ledger.

   Run with: dune exec examples/quickstart.exe *)

module Gen = Nw_graphs.Generators
module G = Nw_graphs.Multigraph
module Rounds = Nw_localsim.Rounds
module Verify = Nw_decomp.Verify
module Coloring = Nw_decomp.Coloring

let () =
  let rng = Random.State.make [| 2021 |] in
  (* a graph with arboricity exactly 5: the union of 5 random spanning
     trees on 200 vertices *)
  let alpha = 5 in
  let g = Gen.forest_union rng 200 alpha in
  Format.printf "input: %a, arboricity = %d@." G.pp g alpha;

  (* (1 + eps) * alpha forests, here eps = 1/2 *)
  let epsilon = 0.5 in
  let rounds = Rounds.create () in
  let coloring, stats =
    Nw_engine.Run.forest_decomposition g ~epsilon ~alpha ~rng ~rounds ()
  in

  (* every reported number is verified first *)
  Verify.exn (Verify.forest_decomposition coloring);
  let used = Verify.colors_used coloring in
  let bound = int_of_float (ceil ((1. +. epsilon) *. float_of_int alpha)) in
  Format.printf "forests used: %d (Nash-Williams bound %d, target %d)@." used
    alpha bound;
  Format.printf "leftover recolored: %d edges, stalls: %d@."
    stats.Nw_core.Forest_algo.leftover_edges stats.Nw_core.Forest_algo.stalls;
  Format.printf "longest augmenting sequence: %d@."
    stats.Nw_core.Forest_algo.max_sequence_length;
  Format.printf "@[<v>%a@]@." Rounds.pp rounds;

  (* the decomposition converts to a low out-degree orientation in O(D)
     rounds (Corollary 1.1) *)
  let orientation = Nw_core.Orient.of_forest_decomposition coloring ~rounds in
  Format.printf "orientation out-degree: %d (<= colors used = %d)@."
    (Nw_graphs.Orientation.max_out_degree orientation)
    used;
  if used <= bound then Format.printf "OK: within the (1+eps) alpha target@."
  else Format.printf "note: exceeded target on this run@."
