(* Low out-degree orientation of a sparse "social" graph (Corollary 1.1).

   Sparse real-world graphs have small arboricity; orienting each friendship
   edge so that every account stores only its out-neighbors gives adjacency
   lists of size (1+eps)*alpha, supports O(alpha)-time mutual-friend queries
   (check both directions), and is exactly the structure used by
   Chiba-Nishizeki style triangle counting. This example compares:
   - the trivial orientation (store both directions): out-degree = max degree,
   - the H-partition orientation [BE10]: (2+eps)*alpha*,
   - this paper's orientation (Cor 1.1): (1+eps)*alpha.

   Run with: dune exec examples/social_orientation.exe *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module O = Nw_graphs.Orientation
module Rounds = Nw_localsim.Rounds
module H = Nw_core.H_partition

let triangle_count g o =
  (* Chiba-Nishizeki style counting on a (possibly cyclic) low out-degree
     orientation: a triangle either has a vertex with two out-edges into it
     (counted by out-neighbor pairs, exactly once) or is a directed 3-cycle
     (counted three times by following out-edges, then divided by 3). *)
  let adjacent = Hashtbl.create (G.m g) in
  G.fold_edges
    (fun _ u v () -> Hashtbl.replace adjacent (min u v, max u v) ())
    g ();
  let out_neighbors v = List.map (O.head o) (O.out_edges o v) in
  let wedge = ref 0 and cyclic3 = ref 0 in
  for v = 0 to G.n g - 1 do
    let outs = out_neighbors v in
    let rec pairs = function
      | [] -> ()
      | x :: rest ->
          List.iter
            (fun y ->
              if x <> y && Hashtbl.mem adjacent (min x y, max x y) then
                incr wedge)
            rest;
          pairs rest
    in
    pairs outs;
    List.iter
      (fun x ->
        List.iter
          (fun y ->
            if y <> v && List.mem v (out_neighbors y) then
              (* v -> x -> y -> v, and no vertex on it has 2 out-edges in
                 the triangle *)
              if not (List.mem y outs) && not (List.mem x (out_neighbors y))
              then incr cyclic3)
          (out_neighbors x))
      outs
  done;
  !wedge + (!cyclic3 / 3)

let () =
  let rng = Random.State.make [| 7 |] in
  (* a 3000-edge graph of arboricity 4 with noisy structure *)
  let alpha = 4 in
  let g = Gen.planted_alpha rng 400 alpha 180 in
  let density = Nw_graphs.Arboricity.density_lower_bound g in
  Format.printf "graph: %a, density lower bound = %d@." G.pp g density;

  (* trivial: worst vertex stores its whole neighborhood *)
  Format.printf "max degree (trivial storage bound): %d@." (G.max_degree g);

  (* Barenboim-Elkin *)
  let alpha_star, _ = Nw_graphs.Arboricity.pseudo_arboricity g in
  let rounds_be = Rounds.create () in
  let hp = H.compute g ~epsilon:0.5 ~alpha_star ~rounds:rounds_be in
  let ids = Array.init (G.n g) (fun v -> v) in
  let o_be = H.orientation g hp ~ids in
  Format.printf "H-partition [BE10]: out-degree %d in %d rounds@."
    (O.max_out_degree o_be) (Rounds.total rounds_be);

  (* this paper *)
  let rounds = Rounds.create () in
  let o_new, _ =
    Nw_engine.Run.orientation g ~epsilon:0.5 ~alpha:(density + 1) ~rng ~rounds
      ()
  in
  Format.printf "Cor 1.1 (this paper): out-degree %d in %d rounds@."
    (O.max_out_degree o_new) (Rounds.total rounds);

  (* both orientations support the same downstream algorithms *)
  Format.printf "triangles via BE orientation:  %d@." (triangle_count g o_be);
  Format.printf "triangles via new orientation: %d@." (triangle_count g o_new)
