(* Scheduling data transfers as star forests (Section 5).

   Edges are unit transfers between machines. A round may run any set of
   transfers forming a star forest: each group shares one hub (a broadcast
   or aggregation), and no machine is in two groups. The number of rounds
   needed is the star arboricity. This example schedules a transfer graph
   with (a) the classical 2*alpha split [folklore / AMR92] and (b) the
   paper's Section 5 construction, which approaches alpha + o(alpha).

   Run with: dune exec examples/star_scheduling.exe *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Rounds = Nw_localsim.Rounds
module Verify = Nw_decomp.Verify
module Coloring = Nw_decomp.Coloring

let schedule_summary name coloring =
  Verify.exn (Verify.star_forest_decomposition coloring);
  let used = Verify.colors_used coloring in
  Format.printf "%-28s %d rounds (verified star forests)@." name used;
  used

let () =
  let rng = Random.State.make [| 99 |] in
  (* transfer workload: arboricity 8, simple *)
  let alpha = 8 in
  let g = Gen.forest_union_simple rng 120 alpha in
  Format.printf "workload: %a, alpha = %d@." G.pp g alpha;
  Format.printf "lower bound: any schedule needs >= %d rounds@." alpha;

  (* classical 2-alpha schedule *)
  let amr, _ = Nw_baseline.Amr_star.decompose g in
  let amr_rounds = schedule_summary "2-alpha parity split:" amr in

  (* Section 5 schedule *)
  let rounds = Rounds.create () in
  let _, fd = Nw_baseline.Gabow_westermann.arboricity g in
  let orientation = Nw_core.Orient.of_forest_decomposition fd ~rounds in
  let ids = Array.init (G.n g) (fun v -> v) in
  let sfd, stats =
    Nw_engine.Run.sfd g ~epsilon:0.25 ~alpha ~orientation ~ids ~rng ~rounds
  in
  let new_rounds = schedule_summary "Section 5 matching-based:" sfd in
  Format.printf
    "matching deficiency: max %d per machine; %d transfers rescheduled with \
     %d extra rounds@."
    stats.Nw_core.Star_forest.max_deficiency
    stats.Nw_core.Star_forest.leftover_edges
    stats.Nw_core.Star_forest.fresh_colors;
  if new_rounds < amr_rounds then
    Format.printf "saved %d of %d rounds vs the classical schedule@."
      (amr_rounds - new_rounds) amr_rounds
  else
    Format.printf
      "at this toy scale the classical schedule is still competitive (%d vs \
       %d); the matching construction's excess is O(sqrt(log max-degree) + \
       log alpha) and overtakes 2*alpha as alpha grows — experiment E9 of \
       the benchmark harness sweeps this crossover@."
      new_rounds amr_rounds
