(* nwlint:disable PERF001 -- the AMR baseline is kept deliberately close to its paper pseudocode; it is the comparison target, not a hot path *)

module G = Nw_graphs.Multigraph
module Coloring = Nw_decomp.Coloring

let of_forest_decomposition coloring =
  Nw_obs.Obs.span "baseline.amr_star" @@ fun () ->
  let g = Coloring.graph coloring in
  let n = G.n g in
  let k = Coloring.colors coloring in
  let out = Coloring.create g ~colors:(2 * k) in
  let depth = Array.make n (-1) in
  for c = 0 to k - 1 do
    let forest, femap = Coloring.subgraph coloring c in
    Array.fill depth 0 n (-1);
    for v0 = 0 to n - 1 do
      if depth.(v0) < 0 && G.degree forest v0 > 0 then begin
        let q = Queue.create () in
        depth.(v0) <- 0;
        Queue.add v0 q;
        while not (Queue.is_empty q) do
          let u = Queue.take q in
          Array.iter
            (fun (w, fe) ->
              if depth.(w) < 0 then begin
                depth.(w) <- depth.(u) + 1;
                (* the edge's upper endpoint is u; its parity picks the
                   star class *)
                Coloring.set out femap.(fe) ((2 * c) + (depth.(u) mod 2));
                Queue.add w q
              end)
            (G.incident forest u)
        done
      end
    done
  done;
  out

let decompose g =
  let alpha, coloring = Gabow_westermann.arboricity g in
  (of_forest_decomposition coloring, alpha)

(* A class is a star forest iff no edge of the class has both endpoints
   with class-degree >= 2 (this kills P4s, triangles and parallel pairs,
   and nothing else can go wrong in a diameter-<=2 forest). *)
let star_arboricity_brute g =
  let n = G.n g and m = G.m g in
  if m = 0 then 0
  else if m > 24 then invalid_arg "Amr_star.star_arboricity_brute: too large"
  else begin
    let feasible k =
      let deg = Array.make_matrix k n 0 in
      let assign = Array.make m (-1) in
      let ok_with e c =
        let u, v = G.endpoints g e in
        (* adding e to class c keeps the criterion iff afterwards no
           class-c edge has both endpoints of degree >= 2; only e and the
           edges at u, v can be affected *)
        let du = deg.(c).(u) + 1 and dv = deg.(c).(v) + 1 in
        if du >= 2 && dv >= 2 then false
        else begin
          (* e is fine; existing class-c edges at u (resp. v) now see u's
             degree rise: such an edge (u, w) breaks iff deg w >= 2 *)
          let breaks_at x dx =
            dx >= 2
            && Array.exists
                 (fun (w, e') ->
                   e' <> e && assign.(e') = c && deg.(c).(w) >= 2)
                 (G.incident g x)
          in
          (not (breaks_at u du)) && not (breaks_at v dv)
        end
      in
      let rec go e max_used =
        if e = m then true
        else begin
          let limit = min (k - 1) (max_used + 1) in
          let rec try_color c =
            if c > limit then false
            else if ok_with e c then begin
              let u, v = G.endpoints g e in
              assign.(e) <- c;
              deg.(c).(u) <- deg.(c).(u) + 1;
              deg.(c).(v) <- deg.(c).(v) + 1;
              if go (e + 1) (max max_used c) then true
              else begin
                assign.(e) <- -1;
                deg.(c).(u) <- deg.(c).(u) - 1;
                deg.(c).(v) <- deg.(c).(v) - 1;
                try_color (c + 1)
              end
            end
            else try_color (c + 1)
          in
          try_color 0
        end
      in
      go 0 (-1)
    in
    let rec search k = if feasible k then k else search (k + 1) in
    search 1
  end
