(** The folklore [2α] star-forest bound (Corollary 1.2, first part).

    Every tree splits into two star forests by the depth parity of each
    edge's upper endpoint, so an exact [α]-forest decomposition yields a
    [2α]-star-forest decomposition. This is the classical baseline the
    Section 5 construction beats ([α + O(√(log Δ) + log α)] colors). *)

(** [of_forest_decomposition coloring]: a star-forest decomposition on
    [2k] colors from a [k]-forest decomposition ([2*c + parity]). *)
val of_forest_decomposition : Nw_decomp.Coloring.t -> Nw_decomp.Coloring.t

(** [decompose g]: exact arboricity (Gabow–Westermann) followed by the
    parity split; returns the [2α]-SFD and [α]. *)
val decompose : Nw_graphs.Multigraph.t -> Nw_decomp.Coloring.t * int

(** [star_arboricity_brute g]: the exact star arboricity by backtracking
    search — exponential; a test oracle for graphs with at most ~12 edges
    per color class and small m. Verifies Corollary 1.2's
    [α <= α_star <= 2α] exactly on small instances.
    @raise Invalid_argument when [m > 24]. *)
val star_arboricity_brute : Nw_graphs.Multigraph.t -> int
