module G = Nw_graphs.Multigraph
module H = Nw_core.H_partition

let decompose g ~epsilon ~alpha_star ~rng ~rounds =
  Nw_obs.Obs.span "baseline.barenboim_elkin" @@ fun () ->
  let n = G.n g in
  let ids = Array.init n (fun v -> v) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = ids.(i) in
    ids.(i) <- ids.(j);
    ids.(j) <- tmp
  done;
  let hp = H.compute g ~epsilon ~alpha_star ~rounds in
  let orientation = H.orientation g hp ~ids in
  fst (H.forests_of_orientation g orientation)
