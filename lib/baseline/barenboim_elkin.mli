(** The Barenboim–Elkin [BE10] baseline: a [(2+eps)·α*]-forest decomposition
    in [O(log n / eps)] rounds via the H-partition.

    This is the prior state of the art that the paper's Theorem 4.6 halves;
    experiment E7 compares the two color counts head to head. *)

(** [decompose g ~epsilon ~alpha_star ~rng ~rounds] returns the forest
    decomposition (at most [floor((2+eps)·alpha_star)] colors, one per
    out-edge label of the acyclic orientation). *)
val decompose :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha_star:int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t
