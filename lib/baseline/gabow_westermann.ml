module G = Nw_graphs.Multigraph
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Augmenting = Nw_core.Augmenting

(* The stalled edge set of Algorithm 1 is the closure of {start} under
   "add edges of C(e, c) adjacent to the current set"; its spanned vertex
   set is the density witness (final inequality of Prop 3.3). *)
let witness_of_stall g coloring palette start =
  let spanned = Hashtbl.create 64 in
  let u0, v0 = G.endpoints g start in
  Hashtbl.replace spanned u0 ();
  Hashtbl.replace spanned v0 ();
  let in_set = Hashtbl.create 64 in
  Hashtbl.replace in_set start ();
  (* the coloring is frozen during the closure computation, so each
     C(e, c) is extracted once even though the fixpoint loop rescans every
     member on every pass *)
  let path_memo = Hashtbl.create 64 in
  let path e c =
    match Hashtbl.find_opt path_memo (e, c) with
    | Some p -> p
    | None ->
        let p = Coloring.path coloring e c in
        Hashtbl.add path_memo (e, c) p;
        p
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let members = Hashtbl.fold (fun e () acc -> e :: acc) in_set [] in
    List.iter
      (fun e ->
        let own = Coloring.color coloring e in
        List.iter
          (fun c ->
            if own <> Some c then
              match path e c with
              | None -> ()
              | Some path_edges ->
                  List.iter
                    (fun e' ->
                      if not (Hashtbl.mem in_set e') then begin
                        let u, v = G.endpoints g e' in
                        if Hashtbl.mem spanned u || Hashtbl.mem spanned v
                        then begin
                          Hashtbl.replace in_set e' ();
                          Hashtbl.replace spanned u ();
                          Hashtbl.replace spanned v ();
                          changed := true
                        end
                      end)
                    path_edges)
          (Palette.get palette e))
      members
  done;
  Hashtbl.fold (fun v () acc -> v :: acc) spanned []

let decompose g palette =
  Nw_obs.Obs.span "baseline.gabow_westermann" @@ fun () ->
  let coloring = Coloring.create g ~colors:(Palette.color_space palette) in
  let scratch = Augmenting.scratch coloring in
  let edges = Coloring.uncolored coloring in
  let rec color_all i =
    if i >= Array.length edges then Ok coloring
    else
      let e = edges.(i) in
      match Augmenting.augment_edge coloring palette ~edge:e ~scratch () with
      | Some _ -> color_all (i + 1)
      | None -> Error (witness_of_stall g coloring palette e)
  in
  color_all 0

let list_forest_partition g palette = decompose g palette

let forest_partition g k = decompose g (Palette.full g k)

let arboricity g =
  if G.m g = 0 then (0, Coloring.create g ~colors:0)
  else begin
    let lo = Nw_graphs.Arboricity.density_lower_bound g in
    let hi = max lo (Nw_graphs.Degeneracy.degeneracy g) in
    let rec search lo hi best =
      if lo >= hi then (hi, best)
      else begin
        let mid = (lo + hi) / 2 in
        match forest_partition g mid with
        | Ok coloring -> search lo mid coloring
        | Error _ -> search (mid + 1) hi best
      end
    in
    match forest_partition g hi with
    | Error _ ->
        (* the degeneracy always upper-bounds the arboricity, so the top of
           the search range must succeed *)
        assert false
    | Ok coloring -> search lo hi coloring
  end

let check_witness g k vertices =
  let members = Array.make (G.n g) false in
  List.iter (fun v -> members.(v) <- true) vertices;
  let nv = List.length vertices in
  let ne =
    G.fold_edges
      (fun _ u v acc -> if members.(u) && members.(v) then acc + 1 else acc)
      g 0
  in
  nv >= 2 && ne > k * (nv - 1)
