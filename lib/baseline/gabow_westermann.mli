(** Centralized exact forest decomposition via matroid-partition
    augmentation, in the spirit of Gabow–Westermann [GW92].

    This is the paper's centralized reference point: an exact
    [α]-forest-decomposition in polynomial time. The augmentation engine is
    the same as Section 3's (Algorithm 1 run with unlimited radius): growing
    the reachable edge set either finds an augmenting sequence or stalls.
    A stall with palettes of size [k] certifies a subgraph of density above
    [k] (the final inequality of Proposition 3.3), i.e. [α > k] — so binary
    search on [k] computes the exact arboricity with certificates in both
    directions. The list variant realizes Seymour's theorem ([α]-LFD exists
    for every palette assignment of size [α]). *)

(** [forest_partition g k]: try to decompose all edges into [k] forests.
    [Ok coloring] on success; [Error witness] when it stalls, where
    [witness] is a vertex set inducing a subgraph of density > [k]
    (so [α(g) > k]). *)
val forest_partition :
  Nw_graphs.Multigraph.t -> int -> (Nw_decomp.Coloring.t, int list) result

(** List version: palettes instead of a uniform [k]; [Error witness] means
    no list-forest-decomposition with these palettes was found by
    augmentation (if [min |Q(e)| >= α(g)] this cannot happen). *)
val list_forest_partition :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  (Nw_decomp.Coloring.t, int list) result

(** Exact arboricity with a witness decomposition, by binary search over
    {!forest_partition}. Polynomial time; exact on any multigraph. *)
val arboricity : Nw_graphs.Multigraph.t -> int * Nw_decomp.Coloring.t

(** [density_witness g k]: when [forest_partition g k] stalls, the witness
    vertex set [S] satisfies [|E(G[S])| > k * (|S| - 1)]; this checks that
    inequality (used by tests). *)
val check_witness : Nw_graphs.Multigraph.t -> int -> int list -> bool
