module G = Nw_graphs.Multigraph
module UF = Nw_graphs.Union_find
module Coloring = Nw_decomp.Coloring

(* grows per-color union-find structures on demand *)
let color_greedily g max_colors =
  Nw_obs.Obs.span "baseline.greedy_forest" @@ fun () ->
  let n = G.n g in
  let ufs = ref [||] in
  let ensure c =
    if c >= Array.length !ufs then begin
      let fresh =
        Array.init (c + 1) (fun i ->
            if i < Array.length !ufs then !ufs.(i) else UF.create n)
      in
      ufs := fresh
    end;
    !ufs.(c)
  in
  let assign = Array.make (G.m g) (-1) in
  let uncolored = ref 0 in
  G.fold_edges
    (fun e u v () ->
      let rec try_color c =
        if c >= max_colors then incr uncolored
        else begin
          let uf = ensure c in
          if UF.union uf u v then assign.(e) <- c else try_color (c + 1)
        end
      in
      try_color 0)
    g ();
  let colors = Array.length !ufs in
  let coloring = Coloring.create g ~colors:(max colors 1) in
  Array.iteri (fun e c -> if c >= 0 then Coloring.set coloring e c) assign;
  (coloring, !uncolored)

let greedy g =
  let coloring, uncolored = color_greedily g max_int in
  assert (uncolored = 0);
  coloring

let eager g k = color_greedily g k
