(** Centralized greedy baselines for forest decomposition.

    [greedy g] colors edges in id order with the smallest color that does
    not close a monochromatic cycle — the naive baseline whose color count
    the augmentation-based algorithms improve on.

    [eager g k] is the same restricted to [k] colors, leaving blocked edges
    uncolored; used to show how far plain greediness lands from the exact
    Nash-Williams bound. *)

val greedy : Nw_graphs.Multigraph.t -> Nw_decomp.Coloring.t

(** [(coloring, uncolored_count)] *)
val eager : Nw_graphs.Multigraph.t -> int -> Nw_decomp.Coloring.t * int
