(* Self-stabilization / recovery harness.

   One *epoch* = one full run of an algorithm under a compiled fault
   plan, classified by re-running the Decomp.Verify checkers on its
   output:

     Valid               completed, verifier accepts
     Detectably_invalid  the run raised (stall guard, assertion, ...) —
                         the system *noticed* the faults
     Silently_corrupt    completed without complaint but the verifier
                         rejects the output — the dangerous class

   A bounded retry-with-backoff policy re-runs a failing epoch at
   geometrically attenuated fault strength (Inject.compile
   ~attenuation:decay^attempt), modelling restarted nodes that stay up
   while the fault burst subsides; a retry that lands Valid counts as a
   recovery (Obs counter "chaos.recoveries"). *)

module Msg_net = Nw_localsim.Msg_net
module Obs = Nw_obs.Obs
module Flight = Nw_obs.Flight

type outcome =
  | Valid
  | Detectably_invalid of string
  | Silently_corrupt of string

let outcome_label = function
  | Valid -> "valid"
  | Detectably_invalid _ -> "detected"
  | Silently_corrupt _ -> "corrupt"

let outcome_to_string = function
  | Valid -> "valid"
  | Detectably_invalid msg -> Printf.sprintf "detected (%s)" msg
  | Silently_corrupt msg -> Printf.sprintf "corrupt (%s)" msg

(* immutable snapshot of the kernel's shared fault accounting *)
type fault_counts = {
  drops : int;
  dups : int;
  delays : int;
  crashes : int;
  restarts : int;
  reorders : int;
  digest : int64;
}

let zero_counts =
  {
    drops = 0;
    dups = 0;
    delays = 0;
    crashes = 0;
    restarts = 0;
    reorders = 0;
    digest = 0L;
  }

let snapshot (s : Msg_net.fault_stats) =
  {
    drops = s.Msg_net.drops;
    dups = s.Msg_net.dups;
    delays = s.Msg_net.delays;
    crashes = s.Msg_net.crashes;
    restarts = s.Msg_net.restarts;
    reorders = s.Msg_net.reorders;
    digest = s.Msg_net.digest;
  }

type attempt = { attempt : int; outcome : outcome; counts : fault_counts }

type epoch = { epoch : int; attempts : attempt list; recovered : bool }

type report = {
  epochs : epoch list;
  valid : int;  (** epochs whose final attempt is Valid *)
  detected : int;
  corrupt : int;
  recoveries : int;  (** epochs that turned Valid only on a retry *)
}

type policy = { max_retries : int; decay : float }

let default_policy = { max_retries = 2; decay = 0.5 }
let no_retry = { max_retries = 0; decay = 1.0 }

let classify ~verify ~run =
  match run () with
  | x -> (
      match verify x with
      | Ok () -> (Valid, Some x)
      | Error msg -> (Silently_corrupt msg, Some x))
  | exception exn -> (Detectably_invalid (Printexc.to_string exn), None)

let pow x k =
  let rec go acc k = if k <= 0 then acc else go (acc *. x) (k - 1) in
  go 1.0 k

(* post-mortem beacon for every non-Valid attempt: the dump's "last"
   object then names the epoch, the verdict, and the fault-plan digest
   alongside whatever the engine marked (failing pass, checkpoint) *)
let flight_note ~plan ~epoch ~attempt outcome counts =
  match outcome with
  | Valid -> ()
  | Detectably_invalid msg | Silently_corrupt msg ->
      let label = outcome_label outcome in
      Flight.mark "chaos.epoch"
        [
          ("epoch", string_of_int epoch);
          ("attempt", string_of_int attempt);
          ("outcome", label);
          ("error", msg);
          ("fault_plan", Plan.digest plan);
          ("fault_digest", Int64.to_string counts.digest);
        ];
      Flight.trigger ~reason:("epoch-" ^ label) ()

let run_epochs ~plan ~seed ~epochs ?(policy = default_policy) ~verify ~run ()
    =
  let root = Rng.create ~seed in
  let run_attempt ~epoch_seed ~attempt =
    Obs.span "chaos.epoch"
      ~attrs:[ ("attempt", Obs.Int attempt) ]
    @@ fun () ->
    let attenuation = pow policy.decay attempt in
    match Inject.compile plan ~seed:epoch_seed ~attenuation () with
    | None ->
        let outcome, _ = classify ~verify ~run in
        { attempt; outcome; counts = zero_counts }
    | Some faults ->
        let (outcome, _), stats =
          Msg_net.with_faults faults (fun () -> classify ~verify ~run)
        in
        { attempt; outcome; counts = snapshot stats }
  in
  let run_epoch e =
    let epoch_seed = Rng.to_seed (Rng.split root e) in
    let rec go attempt acc =
      let a = run_attempt ~epoch_seed ~attempt in
      flight_note ~plan ~epoch:e ~attempt a.outcome a.counts;
      let acc = a :: acc in
      match a.outcome with
      | Valid -> (List.rev acc, attempt > 0)
      | Detectably_invalid _ | Silently_corrupt _ ->
          if attempt >= policy.max_retries then (List.rev acc, false)
          else go (attempt + 1) acc
    in
    let attempts, recovered = go 0 [] in
    if recovered then Obs.count "chaos.recoveries";
    { epoch = e; attempts; recovered }
  in
  let epochs_l = List.init epochs run_epoch in
  let final ep =
    match List.rev ep.attempts with [] -> Valid | a :: _ -> a.outcome
  in
  let count pred = List.length (List.filter pred epochs_l) in
  {
    epochs = epochs_l;
    valid = count (fun ep -> match final ep with Valid -> true | _ -> false);
    detected =
      count (fun ep ->
          match final ep with Detectably_invalid _ -> true | _ -> false);
    corrupt =
      count (fun ep ->
          match final ep with Silently_corrupt _ -> true | _ -> false);
    recoveries = count (fun ep -> ep.recovered);
  }

(* Checkpoint-aware variant: each epoch owns a mutable slot holding the
   last checkpoint the algorithm saved (e.g. an Engine.checkpoint at a
   pass boundary). The slot survives retries within the epoch — a
   crashed attempt leaves its checkpoints behind and the restart resumes
   from the newest one instead of recomputing the finished passes — and
   is cleared between epochs, which stay independent. The checkpoint
   type is abstract ('ck) so this layer needs no dependency on the
   engine; callers thread [resume]/[save] into Engine.run. *)
let run_epochs_resumable ~plan ~seed ~epochs ?(policy = default_policy)
    ~verify ~run () =
  let root = Rng.create ~seed in
  let run_attempt ~epoch_seed ~attempt ~ck =
    Obs.span "chaos.epoch"
      ~attrs:
        [
          ("attempt", Obs.Int attempt); ("resumed", Obs.Bool (!ck <> None));
        ]
    @@ fun () ->
    let resume = !ck in
    let save c = ck := Some c in
    let thunk () = run ~resume ~save in
    let attenuation = pow policy.decay attempt in
    match Inject.compile plan ~seed:epoch_seed ~attenuation () with
    | None ->
        let outcome, _ = classify ~verify ~run:thunk in
        { attempt; outcome; counts = zero_counts }
    | Some faults ->
        let (outcome, _), stats =
          Msg_net.with_faults faults (fun () -> classify ~verify ~run:thunk)
        in
        { attempt; outcome; counts = snapshot stats }
  in
  let run_epoch e =
    let epoch_seed = Rng.to_seed (Rng.split root e) in
    let ck = ref None in
    let rec go attempt acc =
      let a = run_attempt ~epoch_seed ~attempt ~ck in
      flight_note ~plan ~epoch:e ~attempt a.outcome a.counts;
      let acc = a :: acc in
      match a.outcome with
      | Valid -> (List.rev acc, attempt > 0)
      | Detectably_invalid _ | Silently_corrupt _ ->
          if attempt >= policy.max_retries then (List.rev acc, false)
          else go (attempt + 1) acc
    in
    let attempts, recovered = go 0 [] in
    if recovered then Obs.count "chaos.recoveries";
    { epoch = e; attempts; recovered }
  in
  let epochs_l = List.init epochs run_epoch in
  let final ep =
    match List.rev ep.attempts with [] -> Valid | a :: _ -> a.outcome
  in
  let count pred = List.length (List.filter pred epochs_l) in
  {
    epochs = epochs_l;
    valid = count (fun ep -> match final ep with Valid -> true | _ -> false);
    detected =
      count (fun ep ->
          match final ep with Detectably_invalid _ -> true | _ -> false);
    corrupt =
      count (fun ep ->
          match final ep with Silently_corrupt _ -> true | _ -> false);
    recoveries = count (fun ep -> ep.recovered);
  }

(* golden differential: the same computation with no chaos context at
   all, and under an *empty* compiled plan with [seed] threaded the same
   way the real harness threads it. Inject.compile returns None on the
   empty plan, so no hooks install — the caller asserts the two results
   (colors, rounds, counters) are identical, proving chaos flags are
   zero-impact when the plan is empty. *)
let differential ~seed ~run =
  let plain = run () in
  let under_empty =
    match Inject.compile Plan.empty ~seed () with
    | None -> run ()
    | Some faults -> fst (Msg_net.with_faults faults run)
  in
  (plain, under_empty)
