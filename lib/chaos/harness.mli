(** Self-stabilization / recovery harness.

    Runs an algorithm repeatedly under a compiled fault plan (one run per
    {e epoch}), classifies each outcome by re-running the
    [Nw_decomp.Verify] checkers on the output, and applies a bounded
    retry-with-backoff recovery policy to failing epochs. See
    [docs/fault-model.md] for the taxonomy. *)

type outcome =
  | Valid  (** completed; verifier accepts *)
  | Detectably_invalid of string
      (** the run raised (stall guard, assertion...) — the faults were
          noticed *)
  | Silently_corrupt of string
      (** completed without complaint but the verifier rejects the
          output *)

(** "valid" / "detected" / "corrupt" (table keys). *)
val outcome_label : outcome -> string

val outcome_to_string : outcome -> string

(** Immutable snapshot of [Nw_localsim.Msg_net.fault_stats]; [digest] is
    the order-sensitive fault-timeline fingerprint. *)
type fault_counts = {
  drops : int;
  dups : int;
  delays : int;
  crashes : int;
  restarts : int;
  reorders : int;
  digest : int64;
}

val zero_counts : fault_counts

type attempt = { attempt : int; outcome : outcome; counts : fault_counts }
type epoch = { epoch : int; attempts : attempt list; recovered : bool }

type report = {
  epochs : epoch list;
  valid : int;  (** epochs whose final attempt is Valid *)
  detected : int;  (** final attempt Detectably_invalid *)
  corrupt : int;  (** final attempt Silently_corrupt *)
  recoveries : int;  (** epochs that turned Valid only on a retry *)
}

(** Retry attempt [k] (k >= 1) runs at fault strength [decay^k]; scheduled
    crash/restart/flap clauses are disabled on retries (see
    {!Inject.compile}). *)
type policy = { max_retries : int; decay : float }

(** 2 retries at half strength each. *)
val default_policy : policy

(** Single attempt, no recovery. *)
val no_retry : policy

(** [classify ~verify ~run] executes [run] once (under whatever fault
    context is ambient) and classifies: an escaping exception is
    [Detectably_invalid], a verifier rejection [Silently_corrupt]. *)
val classify :
  verify:('a -> (unit, string) result) ->
  run:(unit -> 'a) ->
  outcome * 'a option

(** [run_epochs ~plan ~seed ~epochs ?policy ~verify ~run ()] runs
    [epochs] independent epochs (epoch [e] uses a seed split from
    [seed], so the full report is a deterministic function of
    [(plan, seed, epochs, policy)]); each epoch retries per [policy].
    Every attempt runs inside an [Obs] span ["chaos.epoch"]; recoveries
    bump the ["chaos.recoveries"] counter. *)
val run_epochs :
  plan:Plan.t ->
  seed:int ->
  epochs:int ->
  ?policy:policy ->
  verify:('a -> (unit, string) result) ->
  run:(unit -> 'a) ->
  unit ->
  report

(** [run_epochs_resumable] is {!run_epochs} for checkpointing algorithms
    (the engine's pass pipelines): each attempt receives [~resume] — the
    newest checkpoint a previous attempt of the {e same epoch} saved via
    [~save], or [None] on the first attempt — so a crash-restart resumes
    from the last pass boundary instead of recomputing finished passes.
    The checkpoint slot is cleared between epochs; the ["chaos.epoch"]
    span carries a [resumed] attribute. The checkpoint type is abstract
    — pass [Nw_engine.Engine.run]'s [?resume]/[?checkpoint] straight
    through. *)
val run_epochs_resumable :
  plan:Plan.t ->
  seed:int ->
  epochs:int ->
  ?policy:policy ->
  verify:('a -> (unit, string) result) ->
  run:(resume:'ck option -> save:('ck -> unit) -> 'a) ->
  unit ->
  report

(** [differential ~seed ~run] returns [run]'s result computed twice: with
    no chaos context, and under the compiled {e empty} plan (which
    installs nothing). Callers assert the two are identical — the golden
    differential behind "chaos flags with an empty plan are
    byte-for-byte zero-impact". *)
val differential : seed:int -> run:(unit -> 'a) -> 'a * 'a
