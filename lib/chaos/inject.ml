(* Compile a declarative Plan into the pure decision callbacks of the
   Msg_net hook surface. Every probabilistic verdict is a pure hash of
   (seed, clause index, round, edge, src) through the splittable Rng, so
   the fault timeline for a given (plan, seed) pair is a function of the
   algorithm's message pattern alone — replaying the pair replays the
   timeline exactly.

   [attenuation] scales every clause probability (retry-with-backoff
   recovery: attempt k runs at decay^k strength) and, when < 1.0,
   disables the *scheduled* crash/restart/flap clauses — modelling a
   system whose crashed nodes have come back and whose fault burst is
   subsiding, so a bounded number of retries reaches a quiet network. *)

module Msg_net = Nw_localsim.Msg_net

let compile plan ~seed ?(attenuation = 1.0) () =
  if Plan.is_empty plan then None
  else begin
    let root = Rng.create ~seed in
    let clauses = Array.of_list (Plan.clauses plan) in
    let scheduled_on = Float.compare attenuation 1.0 >= 0 in
    let att p = p *. attenuation in
    let node_up ~round v =
      (not scheduled_on)
      || Array.for_all
           (fun c ->
             match c with
             | Plan.Crash { node; at_round } ->
                 not (node = v && round >= at_round)
             | Plan.Restart { node; at_round; down_for } ->
                 not (node = v && round >= at_round && round < at_round + down_for)
             | _ -> true)
           clauses
    in
    let state_reset ~round v =
      scheduled_on
      && Array.exists
           (fun c ->
             match c with
             | Plan.Restart { node; at_round; down_for } ->
                 node = v && round = at_round + down_for
             | _ -> false)
           clauses
    in
    let deliver ~round ~edge ~src ~dst =
      ignore dst;
      let link_down =
        scheduled_on
        && Array.exists
             (fun c ->
               match c with
               | Plan.Flap { edge = e; up_for; down_for } ->
                   e = edge && round mod (up_for + down_for) >= up_for
               | _ -> false)
             clauses
      in
      if link_down then Msg_net.Drop
      else begin
        let verdict = ref Msg_net.Deliver in
        let decided = ref false in
        Array.iteri
          (fun i c ->
            if not !decided then
              let stream = Rng.split root i in
              let fires p w =
                Plan.in_window round w
                && Rng.bool stream [ round; edge; src ] ~p:(att p)
              in
              match c with
              | Plan.Drop { p; w } ->
                  if fires p w then begin
                    decided := true;
                    verdict := Msg_net.Drop
                  end
              | Plan.Duplicate { p; copies; w } ->
                  if fires p w then begin
                    decided := true;
                    verdict := Msg_net.Duplicate copies
                  end
              | Plan.Delay { p; max_delay; w } ->
                  if fires p w then begin
                    decided := true;
                    verdict :=
                      Msg_net.Delay
                        (1
                        + Rng.int stream
                            [ round; edge; src; 1 ]
                            ~bound:max_delay)
                  end
              | Plan.Crash _ | Plan.Restart _ | Plan.Flap _ | Plan.Reorder _
                ->
                  ())
          clauses;
        !verdict
      end
    in
    let reorder_stream = Rng.split_key root "reorder" in
    let reorder ~round ~dst k =
      if k <= 1 then None
      else if
        Array.exists
          (fun c ->
            match c with
            | Plan.Reorder { w } -> Plan.in_window round w
            | _ -> false)
          clauses
      then Some (Rng.perm reorder_stream [ round; dst ] k)
      else None
    in
    Some { Msg_net.node_up; state_reset; deliver; reorder }
  end
