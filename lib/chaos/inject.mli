(** Compile a {!Plan.t} + seed into [Nw_localsim.Msg_net.faults].

    The resulting callbacks are pure: every verdict is a hash of
    [(seed, clause, round, edge, src)] through {!Rng}, so a [(plan, seed)]
    pair determines the full fault timeline regardless of evaluation
    order. An empty plan compiles to [None] — no hooks are installed and
    the kernel runs its fault-free path, which is what makes the golden
    differential ("chaos flags with an empty plan change nothing,
    byte-for-byte") hold by construction. *)

(** [compile plan ~seed ?attenuation ()] is [None] iff [plan] is empty.

    [attenuation] (default [1.0]) scales every clause probability —
    retry-with-backoff recovery runs attempt [k] at [decay^k] strength —
    and any value [< 1.0] also disables the scheduled [crash]/[restart]/
    [flap] clauses, modelling restarted nodes that stay up while the
    fault burst subsides. *)
val compile :
  Plan.t ->
  seed:int ->
  ?attenuation:float ->
  unit ->
  Nw_localsim.Msg_net.faults option
