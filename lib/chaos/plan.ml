(* Declarative, seed-free fault plans. A plan says *what* can go wrong
   and *when* (round windows, scheduled crash/restart times, link flap
   duty cycles); all randomness is deferred to Inject.compile, which
   marries the plan to a seed. Plans round-trip through a small textual
   DSL (the `--chaos PLAN` flag of bench/main.exe and forestd):

     drop=0.1            drop each message with probability 0.1
     drop=0.1@2-9        ... only in rounds 2..9 (inclusive; `@2-` = from 2 on)
     dup=0.05x2          with probability 0.05 deliver 2 extra copies
     delay=0.1:3         with probability 0.1 delay by 1..3 rounds
     crash=4@6           node 4 crashes at round 6 and stays down
     restart=4@6+2       node 4 is down rounds 6..7, restarts (state loss) at 8
     flap=2:3/2          edge 2 cycles 3 rounds up / 2 rounds down
     reorder             adversarial (seeded) permutation of every inbox

   Clauses are comma-separated and compose: "drop=0.1,reorder,crash=0@5". *)

type window = { from_ : int; upto : int option }

let forever = { from_ = 0; upto = None }

type clause =
  | Drop of { p : float; w : window }
  | Duplicate of { p : float; copies : int; w : window }
  | Delay of { p : float; max_delay : int; w : window }
  | Crash of { node : int; at_round : int }
  | Restart of { node : int; at_round : int; down_for : int }
  | Flap of { edge : int; up_for : int; down_for : int }
  | Reorder of { w : window }

type t = { clauses : clause list }

let empty = { clauses = [] }
let is_empty t = t.clauses = []
let clauses t = t.clauses
let of_clauses clauses = { clauses }

let in_window r { from_; upto } =
  r >= from_ && (match upto with None -> true | Some u -> r <= u)

(* ------------------------------------------------------------------ *)
(* printing (canonical; parses back to an equal plan)                  *)
(* ------------------------------------------------------------------ *)

let window_to_string w =
  if w.from_ = 0 && w.upto = None then ""
  else
    match w.upto with
    | None -> Printf.sprintf "@%d-" w.from_
    | Some u -> Printf.sprintf "@%d-%d" w.from_ u

let clause_to_string = function
  | Drop { p; w } -> Printf.sprintf "drop=%g%s" p (window_to_string w)
  | Duplicate { p; copies; w } ->
      Printf.sprintf "dup=%gx%d%s" p copies (window_to_string w)
  | Delay { p; max_delay; w } ->
      Printf.sprintf "delay=%g:%d%s" p max_delay (window_to_string w)
  | Crash { node; at_round } -> Printf.sprintf "crash=%d@%d" node at_round
  | Restart { node; at_round; down_for } ->
      Printf.sprintf "restart=%d@%d+%d" node at_round down_for
  | Flap { edge; up_for; down_for } ->
      Printf.sprintf "flap=%d:%d/%d" edge up_for down_for
  | Reorder { w } -> "reorder" ^ window_to_string w

let to_string t = String.concat "," (List.map clause_to_string t.clauses)
let summary = to_string

let equal a b = String.equal (to_string a) (to_string b)

(* stable FNV-1a fingerprint of the canonical form; stamped into the
   BENCH env.fault_plan field so trajectories name the plan they ran *)
let digest t =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    (to_string t);
  Printf.sprintf "%016Lx" !h

(* ------------------------------------------------------------------ *)
(* parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let int_of s ~what =
  match int_of_string_opt (String.trim s) with
  | Some i when i >= 0 -> i
  | _ -> bad "%s expects a non-negative integer, got %S" what s

let prob_of s ~what =
  match float_of_string_opt (String.trim s) with
  | Some p when Float.compare p 0.0 >= 0 && Float.compare p 1.0 <= 0 -> p
  | _ -> bad "%s expects a probability in [0,1], got %S" what s

(* "0.1@2-9" -> ("0.1", {from_=2; upto=Some 9}) *)
let split_window s ~what =
  match String.index_opt s '@' with
  | None -> (s, forever)
  | Some i ->
      let body = String.sub s 0 i in
      let wspec = String.sub s (i + 1) (String.length s - i - 1) in
      let w =
        match String.index_opt wspec '-' with
        | None -> bad "%s window %S: expected A- or A-B" what wspec
        | Some j ->
            let a = int_of (String.sub wspec 0 j) ~what in
            let rest = String.sub wspec (j + 1) (String.length wspec - j - 1) in
            if String.trim rest = "" then { from_ = a; upto = None }
            else
              let b = int_of rest ~what in
              if b < a then bad "%s window %S: end before start" what wspec;
              { from_ = a; upto = Some b }
      in
      (body, w)

(* split "A<sep>B" into (A, Some B), or (s, None) when sep is absent *)
let split_once s sep =
  match String.index_opt s sep with
  | None -> (s, None)
  | Some i ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))

let parse_clause s =
  let key, value = split_once s '=' in
  let key = String.trim key in
  match (key, value) with
  | "reorder", None -> Reorder { w = forever }
  | "reorder", Some _ -> bad "reorder takes no value (window: reorder@A-B)"
  | _, None when String.length key >= 7
                 && String.equal (String.sub key 0 7) "reorder" ->
      let _, w = split_window key ~what:"reorder" in
      Reorder { w }
  | "drop", Some v ->
      let body, w = split_window v ~what:"drop" in
      Drop { p = prob_of body ~what:"drop"; w }
  | "dup", Some v ->
      let body, w = split_window v ~what:"dup" in
      let pstr, copies =
        match split_once body 'x' with
        | p, None -> (p, 1)
        | p, Some k ->
            let k = int_of k ~what:"dup copies" in
            if k < 1 then bad "dup copies must be >= 1";
            (p, k)
      in
      Duplicate { p = prob_of pstr ~what:"dup"; copies; w }
  | "delay", Some v ->
      let body, w = split_window v ~what:"delay" in
      let pstr, max_delay =
        match split_once body ':' with
        | p, None -> (p, 1)
        | p, Some d ->
            let d = int_of d ~what:"delay bound" in
            if d < 1 then bad "delay bound must be >= 1";
            (p, d)
      in
      Delay { p = prob_of pstr ~what:"delay"; max_delay; w }
  | "crash", Some v -> (
      match split_once v '@' with
      | node, Some r ->
          Crash
            {
              node = int_of node ~what:"crash node";
              at_round = int_of r ~what:"crash round";
            }
      | _, None -> bad "crash expects crash=NODE@ROUND, got %S" s)
  | "restart", Some v -> (
      match split_once v '@' with
      | node, Some spec -> (
          match split_once spec '+' with
          | r, Some d ->
              let down_for = int_of d ~what:"restart downtime" in
              if down_for < 1 then bad "restart downtime must be >= 1";
              Restart
                {
                  node = int_of node ~what:"restart node";
                  at_round = int_of r ~what:"restart round";
                  down_for;
                }
          | _, None -> bad "restart expects restart=NODE@ROUND+DOWN, got %S" s)
      | _, None -> bad "restart expects restart=NODE@ROUND+DOWN, got %S" s)
  | "flap", Some v -> (
      match split_once v ':' with
      | edge, Some duty -> (
          match split_once duty '/' with
          | u, Some d ->
              let up_for = int_of u ~what:"flap up-rounds" in
              let down_for = int_of d ~what:"flap down-rounds" in
              if up_for < 1 || down_for < 1 then
                bad "flap duty cycle rounds must be >= 1";
              Flap { edge = int_of edge ~what:"flap edge"; up_for; down_for }
          | _, None -> bad "flap expects flap=EDGE:UP/DOWN, got %S" s)
      | _, None -> bad "flap expects flap=EDGE:UP/DOWN, got %S" s)
  | _ -> bad "unknown fault clause %S" s

let of_string s =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> not (String.equal p ""))
  in
  match List.map parse_clause parts with
  | clauses -> Ok { clauses }
  | exception Bad msg -> Error (Printf.sprintf "chaos plan: %s" msg)
