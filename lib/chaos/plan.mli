(** Declarative, seed-free fault plans.

    A plan is an ordered list of fault clauses — message drop / duplicate /
    delay with probabilities and round windows, scheduled node crash and
    crash-restart-with-state-loss, deterministic link flaps, and the
    adversarial (seeded) delivery-order scheduler. Plans carry {e no}
    randomness themselves: {!Inject.compile} marries a plan to a seed and
    produces the pure decision callbacks [Nw_localsim.Msg_net.faults]
    consumes. The textual DSL (see [docs/fault-model.md]) is what the
    [--chaos PLAN] flags of [bench/main.exe] and [forestd] parse:

    {v
    drop=0.1         dup=0.05x2       delay=0.1:3      reorder
    drop=0.1@2-9     crash=4@6        restart=4@6+2    flap=2:3/2
    v}

    Clauses are comma-separated and compose. *)

(** Inclusive round window; [upto = None] means "forever". *)
type window = { from_ : int; upto : int option }

(** Rounds 0 onward. *)
val forever : window

type clause =
  | Drop of { p : float; w : window }
  | Duplicate of { p : float; copies : int; w : window }
  | Delay of { p : float; max_delay : int; w : window }
  | Crash of { node : int; at_round : int }
  | Restart of { node : int; at_round : int; down_for : int }
  | Flap of { edge : int; up_for : int; down_for : int }
  | Reorder of { w : window }

type t

val empty : t
val is_empty : t -> bool
val clauses : t -> clause list
val of_clauses : clause list -> t

(** [in_window r w]: does round [r] fall inside [w]? *)
val in_window : int -> window -> bool

(** Parse the DSL. [Error] carries a human-readable reason. *)
val of_string : string -> (t, string) result

(** Canonical form; [of_string (to_string t)] yields an {!equal} plan. *)
val to_string : t -> string

(** Alias of {!to_string}; the human-readable half of the BENCH
    [env.fault_plan] stamp. *)
val summary : t -> string

(** Stable 16-hex-digit fingerprint of the canonical form (FNV-1a); the
    [hash] half of the BENCH [env.fault_plan] stamp. *)
val digest : t -> string

val equal : t -> t -> bool
