(* Splittable, seed-threaded, *stateless* randomness: a stream is just a
   64-bit key, and every draw is a pure function of (key, coordinates).
   Fault decisions keyed on (round, edge, src) therefore do not depend on
   how many other decisions were made before them — the property behind
   deterministic fault-timeline replay. The mixer is SplitMix64. *)

type t = int64

let golden = 0x9e3779b97f4a7c15L

let mix z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = mix (Int64.add (Int64.of_int seed) golden)

let split t i = mix (Int64.logxor t (mix (Int64.add (Int64.of_int i) golden)))

let split_key t key =
  (* FNV-1a over the key bytes, folded into the stream *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    key;
  mix (Int64.logxor t !h)

let bits t coords =
  mix (List.fold_left (fun acc c -> mix (Int64.logxor acc (Int64.add (Int64.of_int c) golden))) t coords)

let float t coords =
  (* top 53 bits -> [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (bits t coords) 11)
  *. (1.0 /. 9007199254740992.0)

let int t coords ~bound =
  if bound <= 0 then invalid_arg "Chaos.Rng.int: bound <= 0";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits t coords) 1) (Int64.of_int bound))

let bool t coords ~p = Float.compare (float t coords) p < 0

let perm t coords k =
  let a = Array.init k (fun i -> i) in
  for i = k - 1 downto 1 do
    let j = int t (i :: coords) ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let to_seed t = Int64.to_int (Int64.shift_right_logical t 1)
