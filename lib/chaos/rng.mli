(** Splittable, seed-threaded, stateless randomness for fault plans.

    A stream is an immutable 64-bit key; every draw is a pure function of
    the stream and the caller-supplied integer coordinates (round, edge,
    vertex, clause index, ...). Because no draw consumes hidden state,
    decisions are independent of evaluation order and count — the same
    [(plan, seed)] pair always produces the same fault timeline, no matter
    what the algorithm under test does. This is the {e only} sanctioned
    randomness source inside [lib/] besides explicitly seeded
    [Random.State] values threaded from experiment configs (nwlint rule
    DET001 enforces this). SplitMix64 mixing. *)

type t

val create : seed:int -> t

(** [split t i] derives an independent child stream (per clause, per
    epoch, per attempt...). *)
val split : t -> int -> t

(** [split_key t key] derives a child stream from a string key. *)
val split_key : t -> string -> t

(** [float t coords] is a uniform draw in [\[0, 1)] determined purely by
    [(t, coords)]. *)
val float : t -> int list -> float

(** [int t coords ~bound] is a uniform draw in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int list -> bound:int -> int

(** [bool t coords ~p] is a Bernoulli draw: [true] with probability [p]. *)
val bool : t -> int list -> p:float -> bool

(** [perm t coords k] is a seeded permutation of [0..k-1] (Fisher–Yates
    driven by pure draws). *)
val perm : t -> int list -> int -> int array

(** Collapse a stream to an integer seed (for deriving per-epoch seeds). *)
val to_seed : t -> int
