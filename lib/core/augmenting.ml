module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Obs = Nw_obs.Obs

type sequence = (int * int) list

type search_stats = {
  iterations : int;
  explored : int;
  growth : (int * int) list;
}

type outcome = Found of sequence * search_stats | Stalled of search_stats

(* Algorithm 1 is plane-generic: it reads the graph only through
   n/m/src/dst and drives everything else through the coloring's path and
   color queries. [Make] instantiates the search per plane so the hot
   per-edge loop of Forest_algo runs with zero per-operation dispatch;
   the top-level API below dispatches once on the coloring's arm,
   mirroring the Coloring/Msg_net shape. *)

module type CORE = sig
  type coloring
  type scratch

  val scratch : coloring -> scratch

  val search :
    coloring ->
    Palette.t ->
    start:int ->
    ?within:bool array ->
    ?scratch:scratch ->
    unit ->
    outcome

  val short_circuit : coloring -> sequence -> sequence
  val apply : coloring -> sequence -> unit

  val augment_edge :
    coloring ->
    Palette.t ->
    edge:int ->
    ?within:bool array ->
    ?scratch:scratch ->
    unit ->
    search_stats option
end

module Make
    (G : Nw_graphs.Graph_sig.GRAPH)
    (C : Coloring.S with type graph = G.t) : CORE with type coloring = C.t =
struct
  type coloring = C.t

  (* Timestamped scratch for Algorithm 1, reusable across searches on the
     same coloring (the hot loops of Forest_algo and Gabow–Westermann run
     one search per edge): membership of the growing edge set E_i, the
     BFS parent pointers pi : edge -> parent edge (line 9), and the
     "touched" vertex set, all as int arrays stamped per search — no
     hashing, no per-search allocation. *)
  type scratch = {
    in_set : int array; (* edge -> stamp when it joined E_i *)
    parent : int array; (* edge -> parent edge (valid when current) *)
    touched : int array; (* vertex -> stamp when first covered by E_i *)
    mutable stamp : int;
  }

  let scratch coloring =
    let g = C.graph coloring in
    {
      in_set = Array.make (max 1 (G.m g)) 0;
      parent = Array.make (max 1 (G.m g)) (-1);
      touched = Array.make (max 1 (G.n g)) 0;
      stamp = 0;
    }

  let edge_allowed g within e =
    match within with
    | None -> true
    | Some members -> members.(G.src g e) && members.(G.dst g e)

  let search coloring palette ~start ?within ?scratch:sc () =
    let g = C.graph coloring in
    (match C.color coloring start with
    | None -> ()
    | Some _ -> invalid_arg "Augmenting.search: start edge already colored");
    if not (edge_allowed g within start) then
      invalid_arg "Augmenting.search: start edge outside the search region";
    let sc =
      match sc with
      | Some sc ->
          if
            Array.length sc.in_set < G.m g
            || Array.length sc.touched < G.n g
          then invalid_arg "Augmenting.search: scratch from a smaller graph";
          sc
      | None -> scratch coloring
    in
    Obs.span "augment.search" @@ fun () ->
    sc.stamp <- sc.stamp + 1;
    let now = sc.stamp in
    let explored = ref 0 in
    let in_set e = sc.in_set.(e) = now in
    let touched v = sc.touched.(v) = now in
    let touch v = sc.touched.(v) <- now in
    let add_edge e p =
      sc.in_set.(e) <- now;
      sc.parent.(e) <- p;
      incr explored
    in
    add_edge start (-1);
    touch (G.src g start);
    touch (G.dst g start);
    (* the coloring is immutable for the duration of the search, so
       C(e, c) is a fixed path; memoize it per (edge, color) — members
       are rescanned on every iteration and would otherwise re-extract
       the same path *)
    let path_memo = Hashtbl.create 64 in
    let path e c =
      match Hashtbl.find_opt path_memo (e, c) with
      | Some p -> p
      | None ->
          let p = C.path coloring e c in
          Hashtbl.add path_memo (e, c) p;
          p
    in
    let trace_back e c =
      (* walk pi pointers to the start edge; colors along the way are the
         current colors of the child edges (see Prop 3.3) *)
      let rec walk e c acc =
        let acc = (e, c) :: acc in
        let p = sc.parent.(e) in
        if p < 0 then acc
        else
          let c_prev =
            match C.color coloring e with
            | Some c' -> c'
            | None -> assert false
          in
          walk p c_prev acc
      in
      walk e c []
    in
    let growth = ref [ (0, 1) ] in
    let rec iterate i members =
      (* members: current E_i as a list; process every (edge, color) *)
      let found = ref None in
      let fresh = ref [] in
      let consider e =
        let own_color = C.color coloring e in
        let rec colors = function
          | [] -> ()
          | c :: rest ->
              if !found <> None then ()
              else if own_color = Some c then colors rest
              else begin
                (match path e c with
                | None ->
                    (* C(e, c) = ∅: almost augmenting sequence found *)
                    found := Some (trace_back e c)
                | Some path_edges ->
                    (* add path edges adjacent to E_i (and allowed) *)
                    List.iter
                      (fun e' ->
                        if (not (in_set e')) && edge_allowed g within e'
                        then begin
                          if touched (G.src g e') || touched (G.dst g e')
                          then begin
                            add_edge e' e;
                            fresh := e' :: !fresh
                          end
                        end)
                      path_edges);
                colors rest
              end
        in
        colors (Palette.get palette e)
      in
      let rec scan = function
        | [] -> ()
        | e :: rest ->
            if !found = None then begin
              consider e;
              scan rest
            end
      in
      scan members;
      let stats () =
        { iterations = i; explored = !explored; growth = List.rev !growth }
      in
      match !found with
      | Some seq -> Found (seq, stats ())
      | None ->
          (* register the vertices of fresh edges as touched only now:
             the paper's E_{e,c} is defined by adjacency to E_i, not
             E_{i+1} *)
          List.iter
            (fun e ->
              touch (G.src g e);
              touch (G.dst g e))
            !fresh;
          if !fresh = [] then Stalled (stats ())
          else begin
            growth := (i + 1, !explored) :: !growth;
            iterate (i + 1) (!fresh @ members)
          end
    in
    iterate 0 [ start ]

  let short_circuit coloring seq =
    (* Proposition 3.4: while some e_i lies on C(e_j, c_j) with j < i-1,
       splice out the middle. Paths refer to the unmodified coloring, so
       each is memoized per (edge, color) — as a hashed edge set, making
       every membership probe O(1) instead of a List.mem scan. *)
    let memo = Hashtbl.create 64 in
    let path_set e c =
      match Hashtbl.find_opt memo (e, c) with
      | Some s -> s
      | None ->
          let s =
            match C.path coloring e c with
            | None -> None
            | Some edges ->
                let h = Hashtbl.create (2 * List.length edges) in
                List.iter (fun x -> Hashtbl.replace h x ()) edges;
                Some h
          in
          Hashtbl.add memo (e, c) s;
          s
    in
    let on_path e (ej, cj) =
      match path_set ej cj with None -> false | Some h -> Hashtbl.mem h e
    in
    let rec compress seq =
      let arr = Array.of_list seq in
      let l = Array.length arr in
      let cut = ref None in
      (* find the pair with the smallest j then largest i for a maximal
         cut *)
      (try
         for j = 0 to l - 3 do
           for i = l - 1 downto j + 2 do
             if !cut = None && on_path (fst arr.(i)) arr.(j) then begin
               cut := Some (j, i);
               raise Exit
             end
           done
         done
       with Exit -> ());
      match !cut with
      | None -> seq
      | Some (j, i) ->
          let prefix = Array.to_list (Array.sub arr 0 (j + 1)) in
          let suffix = Array.to_list (Array.sub arr i (l - i)) in
          compress (prefix @ suffix)
    in
    compress seq

  let apply coloring seq =
    (match seq with
    | [] -> invalid_arg "Augmenting.apply: empty sequence"
    | (e1, _) :: _ -> (
        match C.color coloring e1 with
        | None -> ()
        | Some _ -> invalid_arg "Augmenting.apply: head edge is colored"));
    (* color from the tail forward (Lemma 3.1's induction); each step is
       validated by Coloring.set's cycle check *)
    List.iter (fun (e, c) -> C.set coloring e c) (List.rev seq)

  let augment_edge coloring palette ~edge ?within ?scratch () =
    Obs.count "augment.calls";
    match search coloring palette ~start:edge ?within ?scratch () with
    | Stalled stats ->
        Obs.count "augment.stalls";
        Obs.observe "augment.explored" (float_of_int stats.explored);
        None
    | Found (seq, stats) ->
        Obs.observe "augment.explored" (float_of_int stats.explored);
        Obs.observe "augment.iterations" (float_of_int stats.iterations);
        let seq = short_circuit coloring seq in
        Obs.observe "augment.path_len" (float_of_int (List.length seq));
        apply coloring seq;
        Some stats
end

(* ------------------------------------------------------------------ *)
(* backend dispatch                                                    *)
(* ------------------------------------------------------------------ *)

module Boxed_core = Make (Nw_graphs.Multigraph) (Coloring.Boxed)
module Csr_core = Make (Nw_graphs.Csr) (Coloring.Csr_backed)

(* A scratch is plane-specific (it is sized from the plane's graph), so
   the dispatched scratch remembers its arm; mixing arms is a programming
   error reported as Invalid_argument. *)
type scratch = Sb of Boxed_core.scratch | Sk of Csr_core.scratch

let scratch (col : Coloring.t) =
  match col with
  | Coloring.Boxed b -> Sb (Boxed_core.scratch b)
  | Coloring.Csr (_, k) -> Sk (Csr_core.scratch k)

let plane_mismatch fn =
  invalid_arg (Printf.sprintf "Augmenting.%s: scratch from the other backend" fn)

let search (col : Coloring.t) palette ~start ?within ?scratch () =
  match (col, scratch) with
  | Coloring.Boxed b, None -> Boxed_core.search b palette ~start ?within ()
  | Coloring.Boxed b, Some (Sb sc) ->
      Boxed_core.search b palette ~start ?within ~scratch:sc ()
  | Coloring.Csr (_, k), None -> Csr_core.search k palette ~start ?within ()
  | Coloring.Csr (_, k), Some (Sk sc) ->
      Csr_core.search k palette ~start ?within ~scratch:sc ()
  | _ -> plane_mismatch "search"

let short_circuit (col : Coloring.t) seq =
  match col with
  | Coloring.Boxed b -> Boxed_core.short_circuit b seq
  | Coloring.Csr (_, k) -> Csr_core.short_circuit k seq

let apply (col : Coloring.t) seq =
  match col with
  | Coloring.Boxed b -> Boxed_core.apply b seq
  | Coloring.Csr (_, k) -> Csr_core.apply k seq

let augment_edge (col : Coloring.t) palette ~edge ?within ?scratch () =
  match (col, scratch) with
  | Coloring.Boxed b, None -> Boxed_core.augment_edge b palette ~edge ?within ()
  | Coloring.Boxed b, Some (Sb sc) ->
      Boxed_core.augment_edge b palette ~edge ?within ~scratch:sc ()
  | Coloring.Csr (_, k), None -> Csr_core.augment_edge k palette ~edge ?within ()
  | Coloring.Csr (_, k), Some (Sk sc) ->
      Csr_core.augment_edge k palette ~edge ?within ~scratch:sc ()
  | _ -> plane_mismatch "augment_edge"
