(** Augmenting sequences for list-forest decomposition — Section 3.

    An augmenting sequence from an uncolored edge [e1] is
    [(e1, c1, e2, c2, .., el, cl)] with (paper conditions):
    - (A1) [e1] uncolored;
    - (A2) [e_i ∈ C(e_{i-1}, c_{i-1})] — each next edge lies on the cycle the
      previous recoloring would close;
    - (A3) [e_i ∉ C(e_j, c_j)] for [j < i-1];
    - (A4) [C(e_l, c_l) = ∅] — the last recoloring closes no cycle;
    - (A5) [c_i ∈ Q(e_i)].

    Applying it (set [ψ(e_i) = c_i], processed from the tail) keeps every
    color class a forest (Lemma 3.1) and colors one more edge.

    {!search} is Algorithm 1: grow an edge set [E_i] from [e1]; either some
    reachable recoloring closes no cycle (an {e almost} augmenting sequence,
    missing only (A3)), or [E_i] grows by a factor [(1+eps)] per iteration
    (Proposition 3.3) — so with palettes of size [(1+eps)α] a sequence of
    length [O(log n / eps)] exists within radius [O(log n / eps)] of [e1]
    (Theorem 3.2). {!short_circuit} is Proposition 3.4. *)

type sequence = (int * int) list
(** [(edge, color)] pairs, head = the uncolored edge [e1]. *)

type search_stats = {
  iterations : int; (** growth iterations used by Algorithm 1 *)
  explored : int; (** |E_i| when the search ended *)
  growth : (int * int) list; (** (iteration, |E_i|) trace, ascending *)
}

type outcome =
  | Found of sequence * search_stats
  | Stalled of search_stats
      (** the reachable edge set stopped growing: with palettes of size at
          least [(1+eps)·α] this certifies a local density violation and
          cannot happen (Prop 3.3); callers treat it as failure. *)

(** The plane-generic search core. Algorithm 1 reads the graph only
    through [n]/[m]/[src]/[dst], so it functorizes over any [GRAPH] and
    the matching {!Nw_decomp.Coloring.S} instance; [Forest_algo]
    instantiates it per plane so the per-edge hot loop runs without
    dispatch. The top-level functions below are the dispatched
    counterparts for callers holding a [Nw_decomp.Coloring.t]. *)
module type CORE = sig
  type coloring
  type scratch

  val scratch : coloring -> scratch

  val search :
    coloring ->
    Nw_decomp.Palette.t ->
    start:int ->
    ?within:bool array ->
    ?scratch:scratch ->
    unit ->
    outcome

  val short_circuit : coloring -> sequence -> sequence
  val apply : coloring -> sequence -> unit

  val augment_edge :
    coloring ->
    Nw_decomp.Palette.t ->
    edge:int ->
    ?within:bool array ->
    ?scratch:scratch ->
    unit ->
    search_stats option
end

module Make
    (G : Nw_graphs.Graph_sig.GRAPH)
    (C : Nw_decomp.Coloring.S with type graph = G.t) :
  CORE with type coloring = C.t

(** The two plane instances, matching [Nw_decomp.Coloring.Boxed] and
    [Nw_decomp.Coloring.Csr_backed]. *)
module Boxed_core : CORE with type coloring = Nw_decomp.Coloring.Boxed.t

module Csr_core : CORE with type coloring = Nw_decomp.Coloring.Csr_backed.t

type scratch
(** Reusable timestamped working arrays for {!search} (the edge set [E_i],
    the parent pointers, the touched-vertex set). Hot loops that run one
    search per edge allocate this once via {!scratch} and pass it to every
    call; a search without one allocates a fresh scratch internally. A
    scratch is bound to the plane of the coloring it was created from;
    passing it with a coloring on the other plane raises
    [Invalid_argument]. *)

(** [scratch coloring] allocates search scratch sized for [coloring]'s
    graph, on [coloring]'s plane. A scratch may be reused across colorings
    of graphs no larger than the one it was created for. *)
val scratch : Nw_decomp.Coloring.t -> scratch

(** [search coloring palette ~start ?within ?scratch ()] runs Algorithm 1
    from the uncolored edge [start]. When [within] is given, only edges
    with both endpoints in that vertex set are explored (the cluster-local
    search of Algorithm 2). The result sequence is almost augmenting:
    (A1), (A2), (A4), (A5). *)
val search :
  Nw_decomp.Coloring.t ->
  Nw_decomp.Palette.t ->
  start:int ->
  ?within:bool array ->
  ?scratch:scratch ->
  unit ->
  outcome

(** [short_circuit coloring seq] extracts an augmenting subsequence
    satisfying (A3) as well (Proposition 3.4). Paths are evaluated on the
    current (pre-augmentation) coloring. *)
val short_circuit : Nw_decomp.Coloring.t -> sequence -> sequence

(** [apply coloring seq] performs the augmentation: assigns [ψ(e_i) = c_i]
    from the tail of the sequence forward (the induction order of
    Lemma 3.1). The forest invariant is re-checked at every step by
    {!Nw_decomp.Coloring.set}.
    @raise Invalid_argument if the sequence is not augmenting. *)
val apply : Nw_decomp.Coloring.t -> sequence -> unit

(** [augment_edge coloring palette ~edge ?within ?scratch ()] searches,
    short-circuits and applies; [Some stats] on success, [None] on a
    stall. *)
val augment_edge :
  Nw_decomp.Coloring.t ->
  Nw_decomp.Palette.t ->
  edge:int ->
  ?within:bool array ->
  ?scratch:scratch ->
  unit ->
  search_stats option
