module G = Nw_graphs.Multigraph
module Net = Nw_localsim.Msg_net
module Obs = Nw_obs.Obs

type state = { color : int; parent_color : int; child_colors : int list }

let bits_needed x =
  let rec loop b v = if v = 0 then b else loop (b + 1) (v lsr 1) in
  max 1 (loop 0 x)

(* One step of deterministic bit reduction: the new color encodes the lowest
   bit position where [color] and [pcolor] differ, together with own bit. *)
let reduce_color color pcolor =
  let diff = color lxor pcolor in
  assert (diff <> 0);
  let rec lowest i d = if d land 1 = 1 then i else lowest (i + 1) (d lsr 1) in
  let i = lowest 0 diff in
  (2 * i) + ((color lsr i) land 1)

let three_color g ~parent_edge ~ids ~rounds =
  let n = G.n g in
  if Array.length parent_edge <> n || Array.length ids <> n then
    invalid_arg "Cole_vishkin.three_color: array size mismatch";
  Array.iteri
    (fun v e ->
      if e >= 0 then ignore (G.other_endpoint g e v : int))
    parent_edge;
  Obs.span "cole_vishkin.three_color" @@ fun () ->
  let net =
    Net.create g ~rounds ~init:(fun v ->
        { color = ids.(v); parent_color = -1; child_colors = [] })
  in
  (* every round: each vertex broadcasts its color on every incident edge;
     receivers split messages into the parent one and child ones. *)
  let send v st =
    Array.to_list
      (Array.map (fun (_, e) -> (e, st.color)) (G.incident g v))
  in
  let recv v st msgs =
    let pcolor = ref (-1) and children = ref [] in
    List.iter
      (fun (e, c) ->
        if e = parent_edge.(v) then pcolor := c else children := c :: !children)
      msgs;
    { st with parent_color = !pcolor; child_colors = !children }
  in
  let exchange label = Net.round net ~label ~send ~recv in
  let update f =
    for v = 0 to n - 1 do
      let st = Net.state net v in
      Net.set_state net v { st with color = f v st }
    done
  in
  (* Phase 1: bit reduction to 6 colors. The root has no parent color and
     pretends its parent's color is its own with the lowest bit flipped. *)
  let max_id = Array.fold_left max 0 ids in
  let iterations =
    (* bits shrink as L -> ceil(log2 L) + 1; iterate to the fixed point 3,
       plus one extra application for safety. *)
    let rec count l acc =
      if l <= 3 then acc
      else count (bits_needed (l - 1) + 1) (acc + 1)
    in
    count (bits_needed max_id) 0 + 1
  in
  for _ = 1 to iterations do
    exchange "cole-vishkin/bit-reduction";
    update (fun v st ->
        let pcolor =
          if parent_edge.(v) >= 0 then st.parent_color else st.color lxor 1
        in
        reduce_color st.color pcolor)
  done;
  (* Phase 2: colors are now in {0..5}; eliminate 5, 4, 3 by shift-down and
     recolor. After a shift-down all children of any vertex share one color,
     so a recoloring vertex is constrained by at most two colors. *)
  for c = 5 downto 3 do
    (* shift-down; the root picks a low color different from its own so
       that no already-eliminated class reappears *)
    exchange "cole-vishkin/shift-down";
    update (fun v st ->
        if parent_edge.(v) >= 0 then st.parent_color
        else if st.color = 0 then 1
        else 0);
    (* recolor class c *)
    exchange "cole-vishkin/recolor";
    update (fun v st ->
        if st.color <> c then st.color
        else begin
          let forbidden =
            (if parent_edge.(v) >= 0 then [ st.parent_color ] else [])
            @ st.child_colors
          in
          let rec pick x = if List.mem x forbidden then pick (x + 1) else x in
          pick 0
        end)
  done;
  Array.map (fun st -> st.color) (Net.states net)
