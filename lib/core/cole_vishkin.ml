(* nwlint:disable PERF001 -- the multi-forest recv fills are t-sized (one
   slot per forest, t = max out-degree of the orientation), a few dozen
   words per vertex inside a Theta(m) round; they are not O(n) scratch
   resets *)
module G = Nw_graphs.Multigraph
module Net = Nw_localsim.Msg_net
module Obs = Nw_obs.Obs

type state = { color : int; parent_color : int; child_colors : int list }

let bits_needed x =
  let rec loop b v = if v = 0 then b else loop (b + 1) (v lsr 1) in
  max 1 (loop 0 x)

(* One step of deterministic bit reduction: the new color encodes the lowest
   bit position where [color] and [pcolor] differ, together with own bit. *)
let reduce_color color pcolor =
  let diff = color lxor pcolor in
  assert (diff <> 0);
  let rec lowest i d = if d land 1 = 1 then i else lowest (i + 1) (d lsr 1) in
  let i = lowest 0 diff in
  (2 * i) + ((color lsr i) land 1)

let three_color g ~parent_edge ~ids ~rounds =
  let n = G.n g in
  if Array.length parent_edge <> n || Array.length ids <> n then
    invalid_arg "Cole_vishkin.three_color: array size mismatch";
  Array.iteri
    (fun v e ->
      if e >= 0 then ignore (G.other_endpoint g e v : int))
    parent_edge;
  Obs.span "cole_vishkin.three_color" @@ fun () ->
  let net =
    Net.create g ~rounds ~init:(fun v ->
        { color = ids.(v); parent_color = -1; child_colors = [] })
  in
  (* every round: each vertex broadcasts its color on every incident
     edge; receivers split messages into the parent one and child ones.
     The all-broadcast shape is exactly [round_exchange]: the kernel
     gathers each inbox by streaming the receiver's adjacency, no
     per-message allocation. The recv is order-insensitive (one parent
     pick, set-membership over children), as the primitive requires. *)
  let value _ st = st.color in
  let recv v st iter =
    let pcolor = ref (-1) and children = ref [] in
    iter (fun e c ->
        if e = parent_edge.(v) then pcolor := c else children := c :: !children);
    { st with parent_color = !pcolor; child_colors = !children }
  in
  let exchange label = Net.round_exchange net ~label ~value ~recv in
  let update f =
    for v = 0 to n - 1 do
      let st = Net.state net v in
      Net.set_state net v { st with color = f v st }
    done
  in
  (* Phase 1: bit reduction to 6 colors. The root has no parent color and
     pretends its parent's color is its own with the lowest bit flipped. *)
  let max_id = Array.fold_left max 0 ids in
  let iterations =
    (* bits shrink as L -> ceil(log2 L) + 1; iterate to the fixed point 3,
       plus one extra application for safety. *)
    let rec count l acc =
      if l <= 3 then acc
      else count (bits_needed (l - 1) + 1) (acc + 1)
    in
    count (bits_needed max_id) 0 + 1
  in
  for _ = 1 to iterations do
    exchange "cole-vishkin/bit-reduction";
    update (fun v st ->
        let pcolor =
          if parent_edge.(v) >= 0 then st.parent_color else st.color lxor 1
        in
        reduce_color st.color pcolor)
  done;
  (* Phase 2: colors are now in {0..5}; eliminate 5, 4, 3 by shift-down and
     recolor. After a shift-down all children of any vertex share one color,
     so a recoloring vertex is constrained by at most two colors. *)
  for c = 5 downto 3 do
    (* shift-down; the root picks a low color different from its own so
       that no already-eliminated class reappears *)
    exchange "cole-vishkin/shift-down";
    update (fun v st ->
        if parent_edge.(v) >= 0 then st.parent_color
        else if st.color = 0 then 1
        else 0);
    (* recolor class c *)
    exchange "cole-vishkin/recolor";
    update (fun v st ->
        if st.color <> c then st.color
        else begin
          let forbidden =
            (if parent_edge.(v) >= 0 then [ st.parent_color ] else [])
            @ st.child_colors
          in
          let rec pick x = if List.mem x forbidden then pick (x + 1) else x in
          pick 0
        end)
  done;
  Array.map (fun st -> st.color) (Net.states net)

(* ------------------------------------------------------------------ *)
(* concurrent multi-forest variant                                     *)
(* ------------------------------------------------------------------ *)

(* The [t] concurrent runs keep their per-(vertex, forest) state in flat
   planes indexed [v * t + j] rather than per-vertex records: the update
   sweeps become sequential scans and every message costs one indirection
   instead of two dependent ones — at 10^7 edges the layout is the
   difference between cache misses dominating and not. The net's own
   per-vertex state is just the vertex id; a fault-injected restart
   resets the vertex's color slice through [init], which is exactly the
   state loss [three_color] suffers. The phase-2 child colors are a
   bitmask, not a list: the recolor pick never inspects colors anywhere
   near the word size, and a forbidden color the pick loop cannot reach
   never changes its result. *)
let three_color_forests g ~edge_forest ~parent_edge ~t ~ids ~rounds =
  let n = G.n g and m = G.m g in
  if t <= 0 then invalid_arg "Cole_vishkin.three_color_forests: t <= 0";
  if
    Array.length edge_forest <> m
    || Array.length parent_edge <> n * t
    || Array.length ids <> n
  then invalid_arg "Cole_vishkin.three_color_forests: array size mismatch";
  Obs.span "cole_vishkin.three_color_forests" @@ fun () ->
  (* In LOCAL the [t] forests are colored concurrently on the same
     network: one net over the whole graph, a vertex's message on edge
     [e] is its color in [e]'s forest, and each round advances every
     forest at once. Per-forest outputs, inboxes, and the charged
     ledger are identical to [t] separate [three_color] runs (the
     per-forest computations never interact); the simulation just stops
     paying [t] full-vertex sweeps and subgraph builds per round. *)
  let colors = Array.make (n * t) 0 in
  let pcolors = Array.make (n * t) (-1) in
  let cmask = Array.make (n * t) 0 in
  let net =
    Net.create g ~rounds ~init:(fun v ->
        (* creation and fault-injected restarts: color reverts to the id *)
        Array.fill colors (v * t) t ids.(v);
        v)
  in
  let value u _ e = colors.((u * t) + edge_forest.(e)) in
  let recv_parents v _ iter =
    Array.fill pcolors (v * t) t (-1);
    iter (fun e c ->
        let j = edge_forest.(e) in
        if e = parent_edge.((v * t) + j) then pcolors.((v * t) + j) <- c);
    v
  in
  let recv_full v _ iter =
    Array.fill pcolors (v * t) t (-1);
    Array.fill cmask (v * t) t 0;
    iter (fun e c ->
        let j = edge_forest.(e) in
        let i = (v * t) + j in
        if e = parent_edge.(i) then pcolors.(i) <- c
        else if c >= 0 && c < 62 then cmask.(i) <- cmask.(i) lor (1 lsl c));
    v
  in
  let exchange label recv = Net.round_exchange_edges net ~label ~value ~recv in
  let max_id = Array.fold_left max 0 ids in
  let iterations =
    let rec count l acc =
      if l <= 3 then acc
      else count (bits_needed (l - 1) + 1) (acc + 1)
    in
    count (bits_needed max_id) 0 + 1
  in
  for _ = 1 to iterations do
    exchange "cole-vishkin/bit-reduction" recv_parents;
    for i = 0 to (n * t) - 1 do
      let color = colors.(i) in
      let pcolor =
        if parent_edge.(i) >= 0 then pcolors.(i) else color lxor 1
      in
      colors.(i) <- reduce_color color pcolor
    done
  done;
  for c = 5 downto 3 do
    exchange "cole-vishkin/shift-down" recv_parents;
    for i = 0 to (n * t) - 1 do
      colors.(i) <-
        (if parent_edge.(i) >= 0 then pcolors.(i)
         else if colors.(i) = 0 then 1
         else 0)
    done;
    exchange "cole-vishkin/recolor" recv_full;
    for i = 0 to (n * t) - 1 do
      if colors.(i) = c then begin
        let forbid x =
          (parent_edge.(i) >= 0 && pcolors.(i) = x)
          || (x < 62 && cmask.(i) land (1 lsl x) <> 0)
        in
        let rec pick x = if forbid x then pick (x + 1) else x in
        colors.(i) <- pick 0
      end
    done
  done;
  colors
