(** Cole–Vishkin 3-coloring of rooted forests in O(log* n) rounds [CV86].

    Used by Theorem 2.1(3): each of the [t] rooted forests produced from an
    acyclic [t]-orientation is 3-colored, and assigning every edge the color
    of its parent endpoint splits each forest into 3 star-forests.

    This is a genuine message-passing implementation on {!Nw_localsim.Msg_net}:
    the deterministic bit-reduction runs until 6 colors remain, followed by
    three shift-down/recolor phases down to 3 colors. *)

(** [three_color g ~parent_edge ~ids ~rounds] properly 3-colors the vertices
    of the rooted forest [g]. [parent_edge.(v)] is the edge to [v]'s parent,
    or [-1] at roots; [ids] are distinct non-negative identifiers.
    Colors returned are in [{0, 1, 2}] and proper along every edge of [g].

    @raise Invalid_argument if [g] with [parent_edge] is not a rooted forest
    (some vertex's parent edge not incident to it). *)
val three_color :
  Nw_graphs.Multigraph.t ->
  parent_edge:int array ->
  ids:int array ->
  rounds:Nw_localsim.Rounds.t ->
  int array

(** [three_color_forests g ~edge_forest ~parent_edge ~t ~ids ~rounds] runs
    {!three_color} on [t] edge-disjoint rooted forests of [g]
    {e concurrently} on one network over [g], as a LOCAL execution
    genuinely would: each round every vertex broadcasts, on each incident
    edge [e], its color in forest [edge_forest.(e)], and every forest
    advances one step. The result is the flat color plane: slot
    [v * t + j] is [v]'s color in forest [j], byte-identical to the
    corresponding standalone [three_color] run on that forest's subgraph;
    the rounds charged to [rounds] equal one standalone run's (the
    per-forest ledgers coincide), not their sum.

    [edge_forest.(e)] is the forest index of edge [e] (every edge must
    belong to exactly one forest); [parent_edge.(v * t + j)] is [v]'s
    parent edge in forest [j], or [-1].

    @raise Invalid_argument if [t <= 0] or the array sizes disagree with
    [g]. *)
val three_color_forests :
  Nw_graphs.Multigraph.t ->
  edge_forest:int array ->
  parent_edge:int array ->
  t:int ->
  ids:int array ->
  rounds:Nw_localsim.Rounds.t ->
  int array
