module G = Nw_graphs.Multigraph
module Palette = Nw_decomp.Palette
module Rounds = Nw_localsim.Rounds
module Obs = Nw_obs.Obs

type t = { colors : int; side : bool array array }

let mpx_split g ~colors ~epsilon ~rng ~rounds =
  if epsilon <= 0.0 then invalid_arg "Color_split.mpx_split: epsilon";
  Obs.span "color_split.mpx" ~attrs:[ ("colors", Obs.Int colors) ]
  @@ fun () ->
  let n = G.n g in
  let side = Array.init n (fun _ -> Array.make colors false) in
  let beta = epsilon /. 10.0 in
  (* all colors proceed in parallel in LOCAL: charge the max ledger *)
  let sub_ledgers = ref [] in
  for c = 0 to colors - 1 do
    let sub = Rounds.create () in
    sub_ledgers := sub :: !sub_ledgers;
    let labels = Net_decomp.mpx g ~rng ~beta ~rounds:sub in
    let coin = Hashtbl.create 64 in
    for v = 0 to n - 1 do
      let cluster = labels.(v) in
      let x =
        match Hashtbl.find_opt coin cluster with
        | Some x -> x
        | None ->
            let x = Random.State.float rng 1.0 < beta in
            Hashtbl.add coin cluster x;
            x
      in
      (* x = true (probability eps/10) sends the color to side 1 *)
      side.(v).(c) <- x
    done
  done;
  Rounds.charge_max rounds !sub_ledgers;
  { colors; side }

let lll_split g ~colors ~epsilon ~alpha ~rng ~rounds =
  if epsilon <= 0.0 then invalid_arg "Color_split.lll_split: epsilon";
  Obs.span "color_split.lll" ~attrs:[ ("colors", Obs.Int colors) ]
  @@ fun () ->
  let n = G.n g in
  let q = epsilon /. 10.0 in
  let sample st _v = Array.init colors (fun _ -> Random.State.float st 1.0 < q) in
  (* bad event per edge: either induced palette too small *)
  let threshold0 =
    int_of_float (floor ((1.0 +. (epsilon /. 2.0)) *. float_of_int alpha))
  in
  let threshold1 =
    max 1
      (int_of_float
         (floor (epsilon *. epsilon *. float_of_int alpha /. 200.0)))
  in
  let events =
    Array.init (G.m g) (fun e ->
        let u, v = G.endpoints g e in
        {
          Lll.vars = [ u; v ];
          violated =
            (fun read ->
              let su = read u and sv = read v in
              let k0 = ref 0 and k1 = ref 0 in
              for c = 0 to colors - 1 do
                if (not su.(c)) && not sv.(c) then incr k0;
                if su.(c) && sv.(c) then incr k1
              done;
              !k0 < threshold0 || !k1 < threshold1);
        })
  in
  let side =
    Lll.solve ~num_vars:n ~sample ~events ~rng ~rounds
      ~max_iters:(64 + (4 * n)) ()
  in
  { colors; side }

let induced_palettes g split q =
  let colors = split.colors in
  let make keep_side1 =
    let lists =
      Array.init (G.m g) (fun e ->
          let u, v = G.endpoints g e in
          List.filter
            (fun c ->
              split.side.(u).(c) = keep_side1
              && split.side.(v).(c) = keep_side1)
            (Palette.get q e))
    in
    Palette.of_lists ~colors lists
  in
  (make false, make true)

let sizes g split q =
  let q0, q1 = induced_palettes g split q in
  (Palette.min_size q0, Palette.min_size q1)
