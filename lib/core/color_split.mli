(** Vertex-color-splitting — Definition 4.7 and Theorem 4.9.

    Every vertex [v] partitions the color space into [C_{v,0} ⊔ C_{v,1}];
    the induced palettes are [Q_i(uv) = Q(uv) ∩ C_{u,i} ∩ C_{v,i}]. A
    list-forest decomposition of some edges w.r.t. [Q_0] and of the rest
    w.r.t. [Q_1] always combine into one valid LFD (Proposition 4.8),
    because no color can serve a vertex on both sides.

    Two randomized constructions, both giving
    [k_0 >= (1+eps/2) alpha] and [k_1 >= Ω(eps alpha)] sized palettes:
    - {!mpx_split} (Thm 4.9(1), needs [eps*alpha >= Ω(log n)]): one MPX
      partial network decomposition per color; each cluster flips a
      [Bernoulli(1 - eps/10)] coin for side 0.
    - {!lll_split} (Thm 4.9(2), needs [eps^2 alpha >= Ω(log Δ)]):
      independent per-vertex coins, fixed up by the distributed LLL. *)

type t = {
  colors : int;
  side : bool array array; (** [side.(v).(c)] — [true] puts [c] in [C_{v,1}] *)
}

val mpx_split :
  Nw_graphs.Multigraph.t ->
  colors:int ->
  epsilon:float ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  t

val lll_split :
  Nw_graphs.Multigraph.t ->
  colors:int ->
  epsilon:float ->
  alpha:int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  t

(** [induced_palettes g split q] is [(Q_0, Q_1)]. *)
val induced_palettes :
  Nw_graphs.Multigraph.t ->
  t ->
  Nw_decomp.Palette.t ->
  Nw_decomp.Palette.t * Nw_decomp.Palette.t

(** [(k_0, k_1)]: minimum induced palette sizes. *)
val sizes :
  Nw_graphs.Multigraph.t -> t -> Nw_decomp.Palette.t -> int * int
