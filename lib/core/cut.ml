module G = Nw_graphs.Multigraph
module O = Nw_graphs.Orientation
module Scratch = Nw_graphs.Scratch
module Coloring = Nw_decomp.Coloring
module Rounds = Nw_localsim.Rounds
module Obs = Nw_obs.Obs

type rule = Depth_mod | Diam_reduce | Sampled of float | Disabled

type state =
  | S_disabled
  | S_depth_mod of { n_mod : int }
  | S_diam_reduce of { epsilon' : float; alpha : int }
  | S_sampled of {
      orientation : O.t;
      counters : int array;
      cap : int;
      p : float;
    }

type t = {
  state : state;
  rng : Random.State.t;
  rounds : Nw_localsim.Rounds.t;
}

let create g rule ~epsilon ~alpha ~radius ~num_classes ~rng ~rounds =
  let state =
    match rule with
    | Disabled -> S_disabled
    | Depth_mod -> S_depth_mod { n_mod = max 2 (radius / 2) }
    | Diam_reduce ->
        S_diam_reduce
          { epsilon' = epsilon /. (2.0 *. float_of_int (max 1 num_classes));
            alpha }
    | Sampled eta ->
        if eta <= 0.0 || eta > 0.5 then invalid_arg "Cut.create: eta";
        let ids = Array.init (G.n g) (fun v -> v) in
        let hp = H_partition.compute g ~epsilon:1.0 ~alpha_star:alpha ~rounds in
        let orientation = H_partition.orientation g hp ~ids in
        let cap = max 1 (int_of_float (ceil (epsilon *. float_of_int alpha))) in
        let logn = log (float_of_int (max 2 (G.n g))) in
        let p =
          min 1.0 (2.0 *. float_of_int alpha *. logn /. (eta *. float_of_int radius))
        in
        S_sampled { orientation; counters = Array.make (G.n g) 0; cap; p }
  in
  { state; rng; rounds }

(* The rule bodies are plane-generic: they read the graph only through
   n/m/src/dst/degree/iter_incident plus [subgraph_of_edges] (depth-mod's
   per-color trees), and take it from the coloring itself, so they run
   directly on whichever plane the coloring was created on. [execute]
   below dispatches once per call on the coloring's arm. *)
module Rules
    (Gr : Nw_graphs.Graph_sig.GRAPH_EXT)
    (C : Coloring.S with type graph = Gr.t) =
struct
  (* an edge is eligible for removal when it lies in the region but not
     inside the core *)
  let eligible g core region e =
    let u = Gr.src g e and v = Gr.dst g e in
    region.(u) && region.(v) && not (core.(u) && core.(v))

  let remove coloring removed e =
    C.unset coloring e;
    removed.(e) <- true

  (* rule bodies run under [execute]'s "cut" span *)
  let[@obs.in_span] execute_depth_mod ~rng ~rounds coloring ~core ~region
      ~removed ~n_mod =
    let g = C.graph coloring in
    let n = Gr.n g in
    (* per color: BFS-root every tree of the eligible c-colored subgraph,
       preferring roots inside the core, and delete edges whose deeper
       endpoint depth is J_c modulo N (one random J per tree). *)
    (* generation-stamped depths: absent = unvisited, so the per-color
       reset is O(1) instead of an O(n) refill *)
    let depth = Scratch.Ints.create n in
    let offset = Array.make n 0 in
    let max_depth = ref 0 in
    for c = 0 to C.colors coloring - 1 do
      Scratch.Ints.reset depth;
      let keep =
        Array.init (Gr.m g) (fun e ->
            C.color coloring e = Some c && eligible g core region e)
      in
      let sub, emap = Gr.subgraph_of_edges g keep in
      (* root preference: core vertices first, then everything *)
      let bfs_from v0 =
        if (not (Scratch.Ints.mem depth v0)) && Gr.degree sub v0 > 0
        then begin
          let j = Random.State.int rng n_mod in
          let q = Queue.create () in
          Scratch.Ints.set depth v0 0;
          offset.(v0) <- j;
          Queue.add v0 q;
          while not (Queue.is_empty q) do
            let u = Queue.take q in
            let du = Scratch.Ints.get depth u ~default:0 in
            if du > !max_depth then max_depth := du;
            Gr.iter_incident sub u (fun w _ ->
                if not (Scratch.Ints.mem depth w) then begin
                  Scratch.Ints.set depth w (du + 1);
                  offset.(w) <- j;
                  Queue.add w q
                end)
          done
        end
      in
      for v = 0 to n - 1 do
        if core.(v) then bfs_from v
      done;
      for v = 0 to n - 1 do
        bfs_from v
      done;
      Array.iteri
        (fun se e ->
          ignore se;
          let u = Gr.src g e and v = Gr.dst g e in
          let d =
            max
              (Scratch.Ints.get depth u ~default:(-1))
              (Scratch.Ints.get depth v ~default:(-1))
          in
          if d mod n_mod = offset.(u) then remove coloring removed e)
        emap
    done;
    Rounds.charge rounds ~label:"cut/depth-mod" (!max_depth + 2)

  let[@obs.in_span] execute_sampled ~rng ~rounds coloring ~core ~region
      ~removed ~orientation ~counters ~cap ~p =
    let g = C.graph coloring in
    for v = 0 to Gr.n g - 1 do
      if region.(v) && counters.(v) < cap && Random.State.float rng 1.0 < p
      then begin
        let candidates =
          List.filter
            (fun e -> (not removed.(e)) && eligible g core region e)
            (O.out_edges orientation v)
        in
        match candidates with
        | [] -> ()
        | _ ->
            let k = Random.State.int rng (List.length candidates) in
            remove coloring removed (List.nth candidates k);
            counters.(v) <- counters.(v) + 1
      end
    done;
    Rounds.charge rounds ~label:"cut/sampled" 1

  let is_good coloring ~core ~region =
    let g = C.graph coloring in
    let n = Gr.n g in
    let ok = ref true in
    let seen = Scratch.Marks.create n in
    for c = 0 to C.colors coloring - 1 do
      if !ok then begin
        Scratch.Marks.reset seen;
        let q = Queue.create () in
        for v = 0 to n - 1 do
          if core.(v) && not (Scratch.Marks.mem seen v) then begin
            Scratch.Marks.add seen v;
            Queue.add v q
          end
        done;
        while !ok && not (Queue.is_empty q) do
          let u = Queue.take q in
          if not region.(u) then ok := false
          else
            C.iter_colored_incident coloring u c (fun w _ ->
                if not (Scratch.Marks.mem seen w) then begin
                  Scratch.Marks.add seen w;
                  Queue.add w q
                end)
        done
      end
    done;
    !ok
end

module Boxed_rules = Rules (Nw_graphs.Multigraph) (Coloring.Boxed)
module Csr_rules = Rules (Nw_graphs.Csr) (Coloring.Csr_backed)

(* Diam-reduce delegates to Diameter_reduction, which operates on the
   dispatched coloring API (it is a cold, whole-region pass); the other
   rules dispatch here and stay on one plane throughout. *)
let execute_diam_reduce t coloring ~core ~region ~removed ~epsilon' ~alpha =
  let g = Coloring.graph coloring in
  let eligible e =
    let u = G.src g e and v = G.dst g e in
    region.(u) && region.(v) && not (core.(u) && core.(v))
  in
  let elig = Array.init (G.m g) eligible in
  let deleted =
    Diameter_reduction.delete_long_paths coloring ~eligible:elig
      ~epsilon:epsilon' ~alpha ~rng:t.rng ~rounds:t.rounds
  in
  List.iter (fun e -> removed.(e) <- true) deleted

let rule_name = function
  | S_disabled -> "disabled"
  | S_depth_mod _ -> "depth-mod"
  | S_diam_reduce _ -> "diam-reduce"
  | S_sampled _ -> "sampled"

let execute t coloring ~core ~region ~removed =
  Obs.span "cut" ~attrs:[ ("rule", Obs.Str (rule_name t.state)) ]
  @@ fun () ->
  match t.state with
  | S_disabled ->
      ignore coloring;
      ignore core;
      ignore region;
      ignore removed
  | S_depth_mod { n_mod } -> (
      match coloring with
      | Coloring.Boxed b ->
          Boxed_rules.execute_depth_mod ~rng:t.rng ~rounds:t.rounds b ~core
            ~region ~removed ~n_mod
      | Coloring.Csr (_, k) ->
          Csr_rules.execute_depth_mod ~rng:t.rng ~rounds:t.rounds k ~core
            ~region ~removed ~n_mod)
  | S_diam_reduce { epsilon'; alpha } ->
      execute_diam_reduce t coloring ~core ~region ~removed ~epsilon' ~alpha
  | S_sampled { orientation; counters; cap; p } -> (
      match coloring with
      | Coloring.Boxed b ->
          Boxed_rules.execute_sampled ~rng:t.rng ~rounds:t.rounds b ~core
            ~region ~removed ~orientation ~counters ~cap ~p
      | Coloring.Csr (_, k) ->
          Csr_rules.execute_sampled ~rng:t.rng ~rounds:t.rounds k ~core
            ~region ~removed ~orientation ~counters ~cap ~p)

let is_good coloring ~core ~region =
  match coloring with
  | Coloring.Boxed b -> Boxed_rules.is_good b ~core ~region
  | Coloring.Csr (_, k) -> Csr_rules.is_good k ~core ~region

let sampling_probability t =
  match t.state with S_sampled { p; _ } -> Some p | _ -> None

let load_counters t =
  match t.state with
  | S_sampled { counters; _ } -> Some (Array.copy counters)
  | _ -> None

let overload_cap t =
  match t.state with S_sampled { cap; _ } -> Some cap | _ -> None
