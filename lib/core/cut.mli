(** The CUT procedure of Section 4.1 — Theorem 4.2.

    Given a cluster core [C'] and its radius-[R] region [C''], CUT removes
    edges of [E(C'') \ E(C')] so that no monochromatic path joins [C'] to
    vertices outside [C''] (then augmenting sequences started inside [C']
    can be found and verified locally). The removed ("leftover") edges must
    stay sparse: pseudo-arboricity at most [ceil(eps*alpha)].

    Three rules:
    - [Depth_mod] (Thm 4.2(2), ordinary FD, alpha >= Ω(log n)): root every
      monochromatic tree of the region, pick one random level offset
      [J_c mod N], [N = floor(R/2)], per tree, and delete the tree edges at
      those depths. Always good (cuts with probability 1).
    - [Diam_reduce] (Thm 4.2(1), list coloring, alpha >= Ω(log n)): run the
      Proposition 2.4 deletion process on the region with
      [eps' = eps / (2T)]; good whenever [R] exceeds the resulting diameter
      bound.
    - [Sampled eta] (Thm 4.2(3,4), small alpha): conditioned sampling
      against a fixed global [3*alpha]-orientation [J]: every vertex whose
      deletion counter is below [ceil(eps*alpha)] deletes, with probability
      [p = K*alpha*ln n/(eta*R)], one uniformly random eligible out-edge.
      Good w.h.p. for the [R] of Lemma 4.4. *)

type rule =
  | Depth_mod
  | Diam_reduce
  | Sampled of float
  | Disabled
      (** no-op CUT, for ablation: Algorithm 2 then has no goodness
          guarantee and same-class clusters may stay monochromatically
          connected to distant vertices *)

type t

(** [create g rule ~epsilon ~alpha ~radius ~num_classes ~rng ~rounds] sets up
    persistent state (the fixed orientation [J] and the per-vertex counters
    for [Sampled]; nothing for the others). *)
val create :
  Nw_graphs.Multigraph.t ->
  rule ->
  epsilon:float ->
  alpha:int ->
  radius:int ->
  num_classes:int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  t

(** [execute t coloring ~core ~region ~removed] removes edges (uncolors them
    in [coloring] and marks them in [removed]). Only edges inside [region]
    but not inside [core] are eligible. Already-removed edges are skipped. *)
val execute :
  t ->
  Nw_decomp.Coloring.t ->
  core:bool array ->
  region:bool array ->
  removed:bool array ->
  unit

(** [is_good coloring ~core ~region]: no color class connects a core vertex
    to a vertex outside the region (the "good execution" condition of
    Algorithm 2). *)
val is_good : Nw_decomp.Coloring.t -> core:bool array -> region:bool array -> bool

(** Out-degree of the fixed orientation [J] (diagnostic; [Sampled] only). *)
val sampling_probability : t -> float option

(** Copy of the per-vertex deletion counters [L(v)] ([Sampled] only) —
    experiment E14 inspects their distribution against Lemma 4.4. *)
val load_counters : t -> int array option

(** The overload threshold [ceil(eps*alpha)] ([Sampled] only). *)
val overload_cap : t -> int option
