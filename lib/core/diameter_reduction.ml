module G = Nw_graphs.Multigraph
module O = Nw_graphs.Orientation
module Scratch = Nw_graphs.Scratch
module Coloring = Nw_decomp.Coloring
module Rounds = Nw_localsim.Rounds
module Obs = Nw_obs.Obs

(* Acyclic orientation of the colored, eligible subgraph via the H-partition
   (Theorem 2.1(2)); [alpha] is the globally known arboricity bound. *)
let acyclic_orientation_of_colored coloring eligible ~alpha ~rng ~rounds =
  let g = Coloring.graph coloring in
  let keep =
    Array.init (G.m g) (fun e ->
        eligible.(e) && Coloring.color coloring e <> None)
  in
  let sub, emap = G.subgraph_of_edges g keep in
  let ids = Array.init (G.n g) (fun v -> v) in
  (* shuffle for well-spread tie-breaking *)
  for i = Array.length ids - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = ids.(i) in
    ids.(i) <- ids.(j);
    ids.(j) <- tmp
  done;
  let hp = H_partition.compute sub ~epsilon:1.0 ~alpha_star:alpha ~rounds in
  (H_partition.orientation sub hp ~ids, sub, emap)

(* BFS from [src] inside one component of a forest, writing distances into
   the shared scratch [dist] (-1 = unvisited); returns the visited vertices.
   The caller resets [dist] via the returned list. *)
let component_bfs forest src dist =
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  let visited = ref [ src ] in
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    Array.iter
      (fun (w, _) ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(u) + 1;
          visited := w :: !visited;
          Queue.add w q
        end)
      (G.incident forest u)
  done;
  !visited

let reset dist vertices = List.iter (fun v -> dist.(v) <- -1) vertices

(* eccentricity of every vertex inside its tree, for a forest: ecc(v) =
   max(dist(v, a), dist(v, b)) where (a, b) are diameter endpoints of the
   component. O(n + m) overall via two-sweep BFS per component. *)
let forest_eccentricities forest =
  let n = G.n forest in
  let ecc = Array.make n 0 in
  let dist = Array.make n (-1) in
  let dist_a = Array.make n (-1) in
  let seen = Array.make n false in
  for v0 = 0 to n - 1 do
    if (not seen.(v0)) && G.degree forest v0 > 0 then begin
      let comp = component_bfs forest v0 dist in
      List.iter (fun u -> seen.(u) <- true) comp;
      let farthest from scratch =
        let _ = component_bfs forest from scratch in
        List.fold_left
          (fun best u -> if scratch.(u) > scratch.(best) then u else best)
          from comp
      in
      reset dist comp;
      let a = farthest v0 dist in
      reset dist comp;
      let _ = component_bfs forest a dist_a in
      let b =
        List.fold_left
          (fun best u -> if dist_a.(u) > dist_a.(best) then u else best)
          a comp
      in
      let _ = component_bfs forest b dist in
      List.iter (fun u -> ecc.(u) <- max dist_a.(u) dist.(u)) comp;
      reset dist comp;
      reset dist_a comp
    end
  done;
  ecc

let delete_long_paths coloring ~eligible ~epsilon ~alpha ~rng ~rounds =
  if epsilon <= 0.0 then invalid_arg "delete_long_paths: epsilon <= 0";
  Obs.span "diam_reduction.delete_long_paths" @@ fun () ->
  let g = Coloring.graph coloring in
  let n = G.n g in
  let deleted = ref [] in
  let delete e =
    Coloring.unset coloring e;
    deleted := e :: !deleted
  in
  (* Stage 1: coin-flip vertices delete ceil(eps*alpha/20) random out-edges
     of an acyclic 3*alpha-orientation of the colored subgraph. *)
  let orientation, sub, emap =
    acyclic_orientation_of_colored coloring eligible ~alpha ~rng ~rounds
  in
  let quota = int_of_float (ceil (epsilon *. float_of_int alpha /. 20.)) in
  for v = 0 to n - 1 do
    if Random.State.bool rng then begin
      let out = Array.of_list (O.out_edges orientation v) in
      (* partial Fisher-Yates: the first [quota] entries become a uniform
         sample of the out-edges *)
      let len = Array.length out in
      for i = 0 to min quota len - 1 do
        let j = i + Random.State.int rng (len - i) in
        let tmp = out.(i) in
        out.(i) <- out.(j);
        out.(j) <- tmp;
        delete emap.(out.(i))
      done
    end
  done;
  ignore sub;
  Rounds.charge rounds ~label:"diam-reduction/random-delete" 1;
  (* Stage 2 (correction): vertices still seeing a monochromatic eligible
     path of length >= L delete their incident edges of that color. *)
  let logn = log (float_of_int (max 2 n)) in
  let cap = int_of_float (ceil (20.0 *. (logn +. 1.0) /. epsilon)) in
  for c = 0 to Coloring.colors coloring - 1 do
    let keep =
      Array.init (G.m g) (fun e ->
          eligible.(e) && Coloring.color coloring e = Some c)
    in
    let forest, femap = G.subgraph_of_edges g keep in
    let ecc = forest_eccentricities forest in
    let marked = Array.init n (fun v -> ecc.(v) >= cap) in
    Array.iteri
      (fun fe e ->
        let u, v = G.endpoints g e in
        if
          (marked.(u) || marked.(v))
          && Coloring.color coloring e = Some c
        then begin
          ignore fe;
          delete e
        end)
      femap
  done;
  Rounds.charge rounds ~label:"diam-reduction/correction" (cap + 1);
  Obs.set_attr "deleted" (Obs.Int (List.length !deleted));
  !deleted

let chop_depths coloring ~epsilon ~rng ~rounds =
  if epsilon <= 0.0 then invalid_arg "chop_depths: epsilon <= 0";
  Obs.span "diam_reduction.chop_depths" @@ fun () ->
  let g = Coloring.graph coloring in
  let z = max 2 (int_of_float (ceil (40.0 /. epsilon))) in
  let deleted = ref [] in
  let max_depth_seen = ref 0 in
  let n = G.n g in
  (* generation-stamped depths: O(1) reset per color, offsets assigned at
     visit time (only read where a depth was stamped) *)
  let depth = Scratch.Ints.create n in
  let tree_offset = Array.make n 0 in
  for c = 0 to Coloring.colors coloring - 1 do
    let forest, femap = Coloring.subgraph coloring c in
    Scratch.Ints.reset depth;
    (* root every tree at its first vertex; record a random per-tree offset *)
    for v0 = 0 to n - 1 do
      if (not (Scratch.Ints.mem depth v0)) && G.degree forest v0 > 0 then begin
        let j = Random.State.int rng z in
        let q = Queue.create () in
        Scratch.Ints.set depth v0 0;
        tree_offset.(v0) <- j;
        Queue.add v0 q;
        while not (Queue.is_empty q) do
          let u = Queue.take q in
          let du = Scratch.Ints.get depth u ~default:0 in
          G.iter_incident forest u (fun w _ ->
              if not (Scratch.Ints.mem depth w) then begin
                Scratch.Ints.set depth w (du + 1);
                tree_offset.(w) <- j;
                Queue.add w q
              end)
        done
      end
    done;
    Array.iteri
      (fun fe e ->
        ignore fe;
        let u, v = G.endpoints g e in
        let d =
          max
            (Scratch.Ints.get depth u ~default:(-1))
            (Scratch.Ints.get depth v ~default:(-1))
        in
        if d > !max_depth_seen then max_depth_seen := d;
        if d mod z = tree_offset.(u) then begin
          Coloring.unset coloring e;
          deleted := e :: !deleted
        end)
      femap
  done;
  (* rooting the trees costs their depth in LOCAL rounds *)
  Rounds.charge rounds ~label:"diam-reduction/chop" (!max_depth_seen + z + 1);
  !deleted

let reduce coloring ~target ~epsilon ~alpha ~ids ~rng ~rounds =
  Obs.span "diameter_reduction" @@ fun () ->
  let g = Coloring.graph coloring in
  let eligible = Array.make (G.m g) true in
  let work = Coloring.copy coloring in
  let deleted =
    match target with
    | `Log_over_eps ->
        delete_long_paths work ~eligible ~epsilon ~alpha ~rng ~rounds
    | `Inv_eps ->
        let d1 =
          delete_long_paths work ~eligible ~epsilon:(epsilon /. 10.) ~alpha
            ~rng ~rounds
        in
        let d2 = chop_depths work ~epsilon ~rng ~rounds in
        d1 @ d2
  in
  let removed = Array.make (G.m g) false in
  List.iter (fun e -> removed.(e) <- true) deleted;
  Recolor.append_stars work removed ~ids ~rounds
