(** Diameter reduction for forest decompositions — Proposition 2.4,
    Corollary 2.5, and Appendix B of the paper.

    Given a (list-)forest decomposition, delete a sparse edge set so that
    every remaining monochromatic tree has small diameter, then recolor the
    deleted edges with [O(eps * alpha)] fresh colors. Two regimes:

    - {b [`Log_over_eps]}: diameter [O(log n / eps)], works for any [alpha]
      (first construction of Appendix B: random out-edge deletion on a
      [3*alpha]-orientation plus a correction step that removes the incident
      edges of any vertex still seeing a long monochromatic path).
    - {b [`Inv_eps]}: diameter [O(1/eps)], needs
      [alpha >= Ω(min(log n / eps, log Δ / eps^2))] (second construction:
      chop every rooted tree at a random depth offset every [Θ(1/eps)]
      levels; concentration by Chernoff or LLL).

    The deletion cores are exposed separately because the CUT procedure of
    Theorem 4.2(1) uses them without recoloring. *)

(** [delete_long_paths coloring ~eligible ~epsilon ~alpha ~rng ~rounds]
    performs the first Appendix-B deletion process on the colored subgraph:
    every vertex flips a fair coin and, on heads, deletes
    [ceil(eps*alpha/20)] random outgoing colored edges (w.r.t. an acyclic
    [3*alpha*]-orientation of the colored, eligible subgraph); afterwards any
    vertex whose monochromatic eccentricity still reaches
    [L = ceil(20 * (ln n + 1) / eps)] deletes its incident edges of that
    color. Only edges with [eligible.(e)] may be deleted (pass all-true
    for Prop 2.4; Algorithm 2's CUT passes the outside-cluster mask).
    Deleted edges are uncolored in place and returned.

    Postcondition: every monochromatic path that uses only eligible edges
    has length < [2 * L]. *)
val delete_long_paths :
  Nw_decomp.Coloring.t ->
  eligible:bool array ->
  epsilon:float ->
  alpha:int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  int list

(** [chop_depths coloring ~epsilon ~alpha ~rng ~rounds] is the second
    Appendix-B deletion process: root every monochromatic tree, draw one
    random offset [J in 0..z-1] per tree with [z = ceil(40/eps)], and delete
    every edge whose lower endpoint sits at depth [≡ J (mod z)]. Returns the
    deleted edges (uncolored in place). Every remaining monochromatic path
    has length at most [2z = O(1/eps)]. *)
val chop_depths :
  Nw_decomp.Coloring.t ->
  epsilon:float ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  int list

(** [reduce coloring ~target ~epsilon ~alpha ~ids ~rng ~rounds] implements
    Proposition 2.4 / Corollary 2.5 end to end: runs the deletion process
    for [target] (possibly both, for [`Inv_eps]), then recolors the deleted
    edges with fresh colors appended after the existing color space, using
    the Theorem 2.1(3) star-forest machinery. Returns the new coloring
    (old colors preserved on kept edges) together with the number of fresh
    colors appended. *)
val reduce :
  Nw_decomp.Coloring.t ->
  target:[ `Log_over_eps | `Inv_eps ] ->
  epsilon:float ->
  alpha:int ->
  ids:int array ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t * int
