module G = Nw_graphs.Multigraph
module Rounds = Nw_localsim.Rounds
module Obs = Nw_obs.Obs

let star_forest_decomposition g ~epsilon ~alpha_star ~rounds =
  Obs.span "distributed.star_forest_decomposition"
    ~attrs:[ ("alpha_star", Obs.Int alpha_star) ]
  @@ fun () ->
  (* stage 1: peeling, executed on the kernel *)
  let hp = H_partition.compute g ~epsilon ~alpha_star ~rounds in
  (* stage 2: every vertex learns its neighbors' layers in one round; the
     orientation and labeling are then local per-vertex rules, so a single
     executed round covers them *)
  let ids = Array.init (G.n g) (fun v -> v) in
  let orientation = H_partition.orientation g hp ~ids in
  Rounds.charge rounds ~label:"distributed/layer-exchange" 1;
  (* stage 3: Cole-Vishkin per forest, executed on the kernel (all forests
     in parallel; the shared charge is the per-forest maximum) *)
  H_partition.star_forest_decomposition g orientation ~ids ~rounds
