(** A fully distributed end-to-end decomposition (Theorem 2.1(3) with no
    centrally simulated phase).

    Every stage either runs on the message-passing kernel or is a purely
    local per-vertex rule:
    + H-partition peeling executes round by round on {!Nw_localsim.Msg_net}
      ({!H_partition.compute});
    + one exchange round tells every vertex its neighbors' layers; the
      acyclic orientation (edges point to higher layer, ties by id) and the
      out-edge labeling are then decided locally per vertex;
    + the per-forest Cole–Vishkin 3-coloring runs on the kernel
      ({!Cole_vishkin.three_color}), and each vertex colors its own child
      edges from its final vertex color.

    The round ledger therefore contains only {e executed} rounds,
    certifying that the charge model used by the centrally simulated
    algorithms (Algorithm 2 and friends) is realizable end to end for one
    complete theorem. The tests check the output against the same bounds as
    the centrally assembled {!H_partition} products. *)

(** [star_forest_decomposition g ~epsilon ~alpha_star ~rounds] returns a
    [3t]-star-forest decomposition, [t = floor((2+epsilon) alpha_star)];
    every charged round was executed by the kernel.
    @raise Failure if peeling stalls ([alpha_star] too small). *)
val star_forest_decomposition :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha_star:int ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t
