module G = Nw_graphs.Multigraph
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Rounds = Nw_localsim.Rounds
module Obs = Nw_obs.Obs

type stats = {
  classes : int;
  clusters : int;
  good_cuts : int;
  bad_cuts : int;
  stalls : int;
  leftover_edges : int;
  max_sequence_length : int;
  max_explored : int;
  max_iterations : int;
}

let log_ceil x = ceil (log (float_of_int (max 2 x)))

let auto_cut ~n ~alpha ~max_degree ~epsilon =
  let af = float_of_int alpha in
  let ln_n = log (float_of_int (max 2 n)) in
  let ln_d = log (float_of_int (max 2 max_degree)) in
  if af >= ln_n || af >= ln_d then Cut.Depth_mod
  else if epsilon *. af >= ln_d then Cut.Sampled 0.5
  else begin
    let t = max 1. (ceil (epsilon *. af)) in
    Cut.Sampled (max 0.01 (min 0.5 (t /. (2. *. ln_d))))
  end

let default_radii ~n ~epsilon ~alpha ~max_degree ~cut =
  let logn = log_ceil n in
  let r' = max 3 (int_of_float (ceil (2.0 *. logn /. epsilon))) in
  let r =
    match cut with
    | Cut.Depth_mod | Cut.Disabled ->
        max 4 (int_of_float (ceil (4.0 *. logn /. epsilon)))
    | Cut.Diam_reduce ->
        (* must exceed twice the correction cap of delete_long_paths run at
           eps' = eps / (2T), T ~ 2 log2 n classes *)
        let t_est = 2.0 *. logn /. log 2.0 in
        let eps' = epsilon /. (2.0 *. t_est) in
        (2 * int_of_float (ceil (20.0 *. (logn +. 1.0) /. eps'))) + 2
    | Cut.Sampled eta ->
        let t = float_of_int (max 1 (int_of_float (ceil (epsilon *. float_of_int alpha)))) in
        let delta = float_of_int (max 2 max_degree) in
        let power = (2.0 +. (4.0 *. eta)) /. t in
        max 4
          (int_of_float
             (ceil (exp (power *. log delta) *. logn *. logn /. (eta *. epsilon))))
  in
  (r, r')

let check_epsilon epsilon =
  if epsilon <= 0.0 then invalid_arg "Forest_algo: epsilon <= 0"

(* The CUT + augmentation phase is plane-generic: balls, edge scans and
   the per-edge augmenting searches all run on whichever plane [g] is,
   through the matching Coloring and Augmenting instances. Only two
   things stay on the dispatched (boxed-carrying) API, threaded in as
   closures so the span tree and the RNG draw order are byte-identical
   to the pre-functor code: [make_cut] (Cut.create needs the boxed graph
   for the Sampled rule's H-partition, and must run inside the
   "forest_algo" span so its own spans/round charges attach there) and
   [wrap] (Cut.execute/is_good take the dispatched coloring; wrapping
   shares the underlying plane instance, so rule-body mutations land in
   [coloring] directly). *)
module Core
    (Gr : Nw_graphs.Graph_sig.GRAPH_EXT)
    (C : Coloring.S with type graph = Gr.t)
    (A : Augmenting.CORE with type coloring = C.t) =
struct
  let partial_color g palette ~make_cut ~wrap ~radii ~nd ~rounds =
    Obs.span "forest_algo" @@ fun () ->
    let r, r' = radii in
    let d = r + r' in
    let n = Gr.n g and m = Gr.m g in
    let cut_state = make_cut () in
    let removed = Array.make m false in
    let coloring = C.create g ~colors:(Palette.color_space palette) in
    let pub = wrap coloring in
    let scratch = A.scratch coloring in
    let good_cuts = ref 0 and bad_cuts = ref 0 and stalls = ref 0 in
    let max_seq = ref 0 and max_explored = ref 0 and max_iters = ref 0 in
    let logn = int_of_float (log_ceil n) in
    for z = 0 to nd.Net_decomp.num_classes - 1 do
      Obs.span "forest_algo.class" ~attrs:[ ("class", Obs.Int z) ]
      @@ fun () ->
      Array.iteri
        (fun id members ->
          if nd.Net_decomp.cluster_class.(id) = z then begin
            let core = Gr.ball_of_set g members r' in
            let region = Gr.ball_of_set g members d in
            Obs.count "forest_algo.clusters";
            Cut.execute cut_state pub ~core ~region ~removed;
            if Cut.is_good pub ~core ~region then incr good_cuts
            else incr bad_cuts;
            let in_cluster = Array.make n false in
            List.iter (fun v -> in_cluster.(v) <- true) members;
            Gr.fold_edges
              (fun e u v () ->
                if
                  (not removed.(e))
                  && C.color coloring e = None
                  && (in_cluster.(u) || in_cluster.(v))
                then begin
                  match
                    A.augment_edge coloring palette ~edge:e ~within:region
                      ~scratch ()
                  with
                  | Some st ->
                      let len = st.Augmenting.iterations + 1 in
                      if len > !max_seq then max_seq := len;
                      if st.Augmenting.explored > !max_explored then
                        max_explored := st.Augmenting.explored;
                      if st.Augmenting.iterations > !max_iters then
                        max_iters := st.Augmenting.iterations;
                      ()
                  | None ->
                      removed.(e) <- true;
                      incr stalls
                end)
              g ()
          end)
        nd.Net_decomp.clusters;
      (* all clusters of one class run concurrently; simulating a
         cluster's CUT + augmentation takes O(D log n) rounds (Thm 4.1) *)
      Rounds.charge rounds ~label:"forest-algo/class" (2 * d * (logn + 2))
    done;
    let leftover =
      Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 removed
    in
    Obs.set_attr "classes" (Obs.Int nd.Net_decomp.num_classes);
    Obs.set_attr "clusters" (Obs.Int (Array.length nd.Net_decomp.clusters));
    Obs.set_attr "leftover_edges" (Obs.Int leftover);
    Obs.set_attr "max_path_len" (Obs.Int !max_seq);
    let stats =
      {
        classes = nd.Net_decomp.num_classes;
        clusters = Array.length nd.Net_decomp.clusters;
        good_cuts = !good_cuts;
        bad_cuts = !bad_cuts;
        stalls = !stalls;
        leftover_edges = leftover;
        max_sequence_length = !max_seq;
        max_explored = !max_explored;
        max_iterations = !max_iters;
      }
    in
    (coloring, removed, stats)
end

module Boxed_core =
  Core (Nw_graphs.Multigraph) (Coloring.Boxed) (Augmenting.Boxed_core)

module Csr_core = Core (Nw_graphs.Csr) (Coloring.Csr_backed) (Augmenting.Csr_core)

let partial_color g palette ~epsilon ~alpha ~cut ~radii ~nd ~rng ~rounds =
  check_epsilon epsilon;
  let r, _ = radii in
  let make_cut () =
    Cut.create g cut ~epsilon ~alpha ~radius:r
      ~num_classes:nd.Net_decomp.num_classes ~rng ~rounds
  in
  (* dispatch once per run — the whole phase then stays on one plane *)
  match Nw_graphs.Backend.default () with
  | Nw_graphs.Backend.Boxed ->
      let coloring, removed, stats =
        Boxed_core.partial_color g palette ~make_cut
          ~wrap:(fun b -> Coloring.Boxed b)
          ~radii ~nd ~rounds
      in
      (Coloring.Boxed coloring, removed, stats)
  | Nw_graphs.Backend.Csr ->
      let plane = Nw_graphs.Csr.of_multigraph g in
      let coloring, removed, stats =
        Csr_core.partial_color plane palette ~make_cut
          ~wrap:(fun k -> Coloring.Csr (g, k))
          ~radii ~nd ~rounds
      in
      (Coloring.Csr (g, coloring), removed, stats)

let decompose_with_leftover g palette ~epsilon ~alpha ~cut ~radii ~rng ~rounds
    =
  check_epsilon epsilon;
  let r, r' = radii in
  let d = r + r' in
  let nd = Net_decomp.compute g ~rng ~rounds ~distance:(2 * d) in
  partial_color g palette ~epsilon ~alpha ~cut ~radii ~nd ~rng ~rounds

(* Theorem 4.6 parameter choices, shared between the direct entry point
   and the engine's `augment` pipeline so both derive identical palettes
   and radii *)
let fd_plan g ~epsilon ~alpha ~cut ~radii =
  let eps' = epsilon /. 10.0 in
  let k0 =
    max 1 (int_of_float (ceil ((1.0 +. eps') *. float_of_int alpha)))
  in
  let palette = Palette.full g k0 in
  let radii =
    match radii with
    | Some r -> r
    | None ->
        default_radii ~n:(G.n g) ~epsilon:eps' ~alpha
          ~max_degree:(G.max_degree g) ~cut
  in
  (eps', palette, radii)

let forest_decomposition g ~epsilon ~alpha ?(cut = Cut.Depth_mod) ?radii
    ?(diameter = `Unbounded) ~rng ~rounds () =
  Obs.span "forest_decomposition" @@ fun () ->
  let eps', palette, radii = fd_plan g ~epsilon ~alpha ~cut ~radii in
  let coloring, removed, stats =
    decompose_with_leftover g palette ~epsilon:eps' ~alpha ~cut ~radii ~rng
      ~rounds
  in
  let combined, _fresh = Recolor.append_forests coloring removed ~rounds in
  let final =
    match diameter with
    | `Unbounded -> combined
    | (`Log_over_eps | `Inv_eps) as target ->
        let ids = Array.init (G.n g) (fun v -> v) in
        let reduced, _extra =
          Diameter_reduction.reduce combined ~target ~epsilon:eps' ~alpha ~ids
            ~rng ~rounds
        in
        reduced
  in
  (final, stats)

(* Theorem 4.10 parameter choices, shared with the engine's `lfd`
   pipeline *)
let lfd_plan g ~epsilon ~alpha ~radii =
  let eps' = epsilon /. 10.0 in
  let radii =
    match radii with
    | Some r -> r
    | None ->
        default_radii ~n:(G.n g) ~epsilon:eps' ~alpha
          ~max_degree:(G.max_degree g) ~cut:Cut.Diam_reduce
  in
  (eps', radii)

(* leftover pass on the side-1 palettes, via the Theorem 2.3 LSFD *)
let[@obs.in_span] lfd_leftover g ~colors ~phi0 ~q1 ~removed ~rng ~rounds =
  let any_left = Array.exists (fun b -> b) removed in
  if not any_left then phi0
  else begin
      let sub, emap = G.subgraph_of_edges g removed in
      let alpha_left, _ = Nw_graphs.Arboricity.pseudo_arboricity sub in
      let q1_sub =
        Palette.of_lists ~colors
          (Array.map (fun e -> Palette.get q1 e) emap)
      in
      (* LFD of the leftover on the reserved side-1 palettes. The paper uses
         the Theorem 2.3 LSFD, which needs palettes of size
         (4+eps)·alpha*(leftover); when the reserved palettes are below that
         (small-scale instances outside the w.h.p. regime of Thm 4.9), fall
         back to direct augmentation, which by the Section 3 stall
         certificate succeeds whenever |Q1| >= alpha(leftover). *)
      let lsfd_required =
        int_of_float (floor (4.5 *. float_of_int (max 1 alpha_left))) - 1
      in
      let phi1 =
        if Palette.min_size q1_sub >= lsfd_required then
          Lsfd.distributed sub q1_sub ~epsilon:0.5
            ~alpha_star:(max 1 alpha_left) ~rng ~rounds
        else begin
          let c1 = Coloring.create sub ~colors in
          let scratch = Augmenting.scratch c1 in
          Coloring.iter_uncolored
            (fun e ->
              match Augmenting.augment_edge c1 q1_sub ~edge:e ~scratch () with
              | Some _ -> ()
              | None ->
                  failwith
                    "Forest_algo.list_forest_decomposition: leftover \
                     palettes below the leftover arboricity")
            c1;
          Rounds.charge rounds ~label:"forest-algo/leftover-augment"
            (2 * int_of_float (log_ceil (G.n g)));
          c1
        end
      in
      (* combine (Proposition 4.8): sides use disjoint per-vertex colors, so
         the merged classes stay forests — revalidated by Coloring.set *)
      let out = Coloring.create g ~colors in
      G.fold_edges
        (fun e _ _ () ->
          match Coloring.color phi0 e with
          | Some c -> Coloring.set out e c
          | None -> ())
        g ();
      Array.iteri
        (fun se e ->
          match Coloring.color phi1 se with
          | Some c -> Coloring.set out e c
          | None -> ())
        emap;
      out
  end

let list_forest_decomposition g palette ~epsilon ~alpha ?(split = `Mpx)
    ?radii ~rng ~rounds () =
  Obs.span "list_forest_decomposition" @@ fun () ->
  let colors = Palette.color_space palette in
  let split_t =
    match split with
    | `Mpx -> Color_split.mpx_split g ~colors ~epsilon ~rng ~rounds
    | `Lll -> Color_split.lll_split g ~colors ~epsilon ~alpha ~rng ~rounds
  in
  let q0, q1 = Color_split.induced_palettes g split_t palette in
  let eps', radii = lfd_plan g ~epsilon ~alpha ~radii in
  (* main pass on the side-0 palettes *)
  let phi0, removed, stats =
    decompose_with_leftover g q0 ~epsilon:eps' ~alpha ~cut:Cut.Diam_reduce
      ~radii ~rng ~rounds
  in
  (* shrink phi0's diameter; the deleted edges join the leftover *)
  let eligible = Array.make (G.m g) true in
  let deleted =
    Diameter_reduction.delete_long_paths phi0 ~eligible ~epsilon:eps' ~alpha
      ~rng ~rounds
  in
  List.iter (fun e -> removed.(e) <- true) deleted;
  let final = lfd_leftover g ~colors ~phi0 ~q1 ~removed ~rng ~rounds in
  let leftover =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 removed
  in
  (final, { stats with leftover_edges = leftover })
