(** The main distributed forest-decomposition algorithm — Algorithm 2 and
    Theorems 4.1, 4.5, 4.6, 4.10 of the paper.

    Pipeline: network decomposition of the power graph [G^(2(R+R'))]; for
    each class, each cluster runs {!Cut} to disconnect itself
    monochromatically from distance [R], then colors every nearby uncolored
    edge by a local augmenting sequence (Section 3). Edges removed by CUT
    (plus any rare augmentation stalls) form the {e leftover}, recolored at
    the end with [O(eps*alpha)] extra colors:
    - ordinary coloring: an H-partition forest decomposition of the leftover
      (Theorem 4.6);
    - list coloring: a vertex-color-splitting reserves back-up palettes
      [Q_1] up front and the leftover gets a Theorem 2.3 LSFD on them
      (Theorem 4.10).

    Round charges follow the Theorem 4.1 accounting: the network
    decomposition pays its own way, and each class costs
    [O((R + R') log n)] rounds of [G]. *)

type stats = {
  classes : int;
  clusters : int;
  good_cuts : int; (** clusters whose CUT disconnected every color *)
  bad_cuts : int;
  stalls : int; (** augmentation failures, sent to the leftover *)
  leftover_edges : int;
  max_sequence_length : int; (** longest augmenting sequence applied *)
  max_explored : int; (** largest Algorithm-1 edge set |E_i| *)
  max_iterations : int; (** most Algorithm-1 growth iterations *)
}

(** [auto_cut ~n ~alpha ~max_degree ~epsilon] picks the CUT rule the way
    Theorem 4.5 cases its complexity bounds:
    - [alpha >= ln n] or [alpha >= ln max_degree] → [Depth_mod]
      ([O(log^3 n / eps)] resp. [O(log^4 n / eps)] rounds);
    - [eps*alpha >= ln max_degree] → [Sampled 0.5] (Thm 4.2(4));
    - otherwise → [Sampled (t / (2 ln max_degree))], the optimized eta of
      Thm 4.2(3), clamped to (0, 0.5]. *)
val auto_cut :
  n:int -> alpha:int -> max_degree:int -> epsilon:float -> Cut.rule

(** Paper-shaped default radii [(R, R')] for Algorithm 2 (with practical
    constants; the benchmark harness sweeps them). [R'] is the augmenting
    search radius [Θ(log n / eps)]; [R] is the CUT radius of Theorem 4.2. *)
val default_radii :
  n:int ->
  epsilon:float ->
  alpha:int ->
  max_degree:int ->
  cut:Cut.rule ->
  int * int

(** [check_epsilon eps] raises [Invalid_argument] unless [eps > 0] — the
    same guard every entry point applies, exposed so engine pipelines can
    fail at build time instead of mid-run. *)
val check_epsilon : float -> unit

(** [fd_plan g ~epsilon ~alpha ~cut ~radii] derives the Theorem 4.6
    parameters: returns [(eps', palette, radii)] with [eps' = epsilon/10],
    a full palette of [ceil((1+eps') alpha)] colors, and the default radii
    when [radii] is [None]. Pure; shared by {!forest_decomposition} and the
    engine's [augment] pipeline so both pick identical parameters. *)
val fd_plan :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  cut:Cut.rule ->
  radii:(int * int) option ->
  float * Nw_decomp.Palette.t * (int * int)

(** [lfd_plan g ~epsilon ~alpha ~radii] is the Theorem 4.10 analogue of
    {!fd_plan}: returns [(eps', radii)] for the list variant (which always
    cuts with [Diam_reduce]). *)
val lfd_plan :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  radii:(int * int) option ->
  float * (int * int)

(** [partial_color g palette ~epsilon ~alpha ~cut ~radii ~nd ~rng ~rounds]
    is the class-by-class CUT + augmentation phase of Theorem 4.5, taking a
    precomputed network decomposition [nd] of [G^(2(R+R'))] (the engine
    runs that as its own pass). Returns [(coloring, removed, stats)]. *)
val partial_color :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  alpha:int ->
  cut:Cut.rule ->
  radii:int * int ->
  nd:Net_decomp.t ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t * bool array * stats

(** [lfd_leftover g ~colors ~phi0 ~q1 ~removed ~rng ~rounds] colors the
    [removed] leftover on the reserved side-1 palettes [q1] (Theorem 2.3
    LSFD, falling back to direct augmentation below its palette regime) and
    merges the result into [phi0]'s classes (Proposition 4.8). Returns
    [phi0] unchanged when nothing is left over. *)
val lfd_leftover :
  Nw_graphs.Multigraph.t ->
  colors:int ->
  phi0:Nw_decomp.Coloring.t ->
  q1:Nw_decomp.Palette.t ->
  removed:bool array ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t

(** [decompose_with_leftover g palette ~epsilon ~alpha ~cut ~radii ~rng
    ~rounds] is Theorem 4.5: a partial LFD covering everything except a
    leftover edge set of low pseudo-arboricity ({!partial_color} on a fresh
    network decomposition). Returns [(coloring, removed, stats)]. *)
val decompose_with_leftover :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  alpha:int ->
  cut:Cut.rule ->
  radii:int * int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t * bool array * stats

(** [forest_decomposition g ~epsilon ~alpha ...] is Theorem 4.6: a complete
    [(1+eps)·alpha]-forest decomposition (color count reported via the
    returned coloring; the harness checks it against the bound).
    [diameter] selects the final Corollary 2.5 diameter-reduction pass. *)
val forest_decomposition :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  ?cut:Cut.rule ->
  ?radii:int * int ->
  ?diameter:[ `Unbounded | `Log_over_eps | `Inv_eps ] ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  unit ->
  Nw_decomp.Coloring.t * stats

(** [list_forest_decomposition g palette ~epsilon ~alpha ~split ...] is
    Theorem 4.10: a complete LFD from palettes of size [(1+eps)·alpha].
    [split] picks the Theorem 4.9 construction ([`Mpx] needs
    [eps*alpha >= Ω(log n)]; [`Lll] needs [eps^2*alpha >= Ω(log Δ)]). *)
val list_forest_decomposition :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  alpha:int ->
  ?split:[ `Mpx | `Lll ] ->
  ?radii:int * int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  unit ->
  Nw_decomp.Coloring.t * stats
