module G = Nw_graphs.Multigraph
module O = Nw_graphs.Orientation
module Net = Nw_localsim.Msg_net
module Rounds = Nw_localsim.Rounds
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Obs = Nw_obs.Obs

type t = { layer : int array; num_layers : int; threshold : int }

type peel_state = { layer : int; live_deg : int }

let compute g ~epsilon ~alpha_star ~rounds =
  if epsilon <= 0.0 then invalid_arg "H_partition.compute: epsilon <= 0";
  if alpha_star < 0 then invalid_arg "H_partition.compute: alpha_star < 0";
  Obs.span "h_partition" @@ fun () ->
  let n = G.n g in
  let threshold =
    int_of_float (floor ((2.0 +. epsilon) *. float_of_int alpha_star))
  in
  let net =
    Net.create g ~rounds ~init:(fun v ->
        { layer = -1; live_deg = G.degree g v })
  in
  (* Iteration [i]: every live vertex with live degree <= threshold joins
     layer [i] and announces its removal on all incident edges. A vertex
     joining at iteration [i] counts neighbors joining simultaneously, which
     matches "at most t neighbors in H_i ∪ ... ∪ H_k". *)
  (* a peeling announcement carries no payload, so the round is a
     counting broadcast: on the CSR plane it streams the adjacency
     vectors with zero per-message allocation (byte-identical to the
     generic per-message path the boxed plane still executes) *)
  let iteration i =
    let decide v (st : peel_state) =
      ignore v;
      st.layer = -1 && st.live_deg <= threshold
    in
    let recv v (st : peel_state) k =
      ignore v;
      let st =
        if st.layer = -1 && st.live_deg <= threshold then
          { st with layer = i }
        else st
      in
      { st with live_deg = st.live_deg - k }
    in
    Net.round_count net ~label:"h-partition/peel" ~decide ~recv
  in
  let all_assigned () =
    let rec check v =
      v >= n || ((Net.state net v).layer >= 0 && check (v + 1))
    in
    check 0
  in
  (* each iteration removes an eps/(2+eps) fraction when alpha_star is a
     valid bound; guard generously beyond the O(log n / eps) promise. *)
  let max_iter = 64 + (10 * (2 + int_of_float (1.0 /. epsilon)) * (1 + int_of_float (log (float_of_int (max 2 n))))) in
  let rec loop i =
    if all_assigned () then i
    else if i >= max_iter then
      failwith
        "H_partition.compute: peeling stalled; alpha_star below the true \
         pseudo-arboricity?"
    else begin
      iteration i;
      loop (i + 1)
    end
  in
  let num_layers = loop 0 in
  Obs.set_attr "layers" (Obs.Int num_layers);
  Obs.set_attr "threshold" (Obs.Int threshold);
  let layer = Array.map (fun (st : peel_state) -> st.layer) (Net.states net) in
  { layer; num_layers; threshold }

let normalize_ids ids =
  (* distinct ids of any magnitude -> their ranks in 0..n-1 *)
  let n = Array.length ids in
  let order = Array.init n (fun v -> v) in
  Array.sort (fun a b -> Int.compare ids.(a) ids.(b)) order;
  let rank = Array.make n 0 in
  Array.iteri
    (fun i v ->
      if i > 0 && ids.(order.(i - 1)) = ids.(v) then
        invalid_arg "H_partition: ids are not distinct";
      rank.(v) <- i)
    order;
  rank

let orientation g (t : t) ~ids =
  let n = G.n g in
  if Array.length ids <> n then invalid_arg "H_partition.orientation: ids size";
  let rank_of_id = normalize_ids ids in
  let rank = Array.init n (fun v -> (t.layer.(v) * n) + rank_of_id.(v)) in
  O.of_total_order g rank

let forests_of_orientation g o =
  let n = G.n g in
  let t = O.max_out_degree o in
  let coloring = Coloring.create g ~colors:(max t 1) in
  let parent_edges = Array.init (max t 1) (fun _ -> Array.make n (-1)) in
  for v = 0 to n - 1 do
    List.iteri
      (fun j e ->
        Coloring.set coloring e j;
        parent_edges.(j).(v) <- e)
      (O.out_edges o v)
  done;
  (coloring, parent_edges)

let star_forest_decomposition g o ~ids ~rounds =
  Obs.span "h_partition.star_forests" @@ fun () ->
  let n = G.n g and m = G.m g in
  let t = O.max_out_degree o in
  let t = max t 1 in
  (* forest index of each edge (its position in the tail's out-list) and
     the per-forest parent edges — the same partition
     [forests_of_orientation] builds, but as flat int planes: the
     partition is a forest by construction (one out-edge per vertex per
     index), so no incremental cycle checking is needed here *)
  let edge_forest = Array.make m (-1) in
  let parent_edge = Array.make (n * t) (-1) in
  for v = 0 to n - 1 do
    List.iteri
      (fun j e ->
        edge_forest.(e) <- j;
        parent_edge.((v * t) + j) <- e)
      (O.out_edges o v)
  done;
  (* Cole-Vishkin on all forests at once: in LOCAL the [t] runs execute
     concurrently on the same network, so the combined run's ledger is
     exactly one forest's (they coincide — same ids, same iteration
     count) and is charged as the max. *)
  let sub_rounds = Rounds.create () in
  let vcolors =
    Cole_vishkin.three_color_forests g ~edge_forest ~parent_edge ~t ~ids
      ~rounds:sub_rounds
  in
  Rounds.charge_max rounds [ sub_rounds ];
  (* edge color = color of the parent endpoint: the child endpoint of the
     edge is the vertex whose parent edge it is. Emit grouped by forest,
     ascending edge id within each. *)
  let out = Coloring.create g ~colors:(3 * t) in
  let offset = Array.make (t + 1) 0 in
  for e = 0 to m - 1 do
    offset.(edge_forest.(e) + 1) <- offset.(edge_forest.(e) + 1) + 1
  done;
  for j = 0 to t - 1 do
    offset.(j + 1) <- offset.(j + 1) + offset.(j)
  done;
  let by_forest = Array.make m (-1) in
  let cursor = Array.copy offset in
  for e = 0 to m - 1 do
    let j = edge_forest.(e) in
    by_forest.(cursor.(j)) <- e;
    cursor.(j) <- cursor.(j) + 1
  done;
  for j = 0 to t - 1 do
    for i = offset.(j) to offset.(j + 1) - 1 do
      let e = by_forest.(i) in
      let u, v = G.endpoints g e in
      let parent =
        if parent_edge.((u * t) + j) = e then v
        else begin
          assert (parent_edge.((v * t) + j) = e);
          u
        end
      in
      Coloring.set out e ((3 * j) + vcolors.((parent * t) + j))
    done
  done;
  out

(* charges land in the caller's phase span (lsfd/list-coloring drivers) *)
let[@obs.in_span] list_forest_decomposition g o palette ~rounds =
  let t = O.max_out_degree o in
  if Palette.min_size palette < t && G.m g > 0 then
    invalid_arg "H_partition.list_forest_decomposition: palettes too small";
  let coloring = Coloring.create g ~colors:(Palette.color_space palette) in
  for v = 0 to G.n g - 1 do
    let taken = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let rec pick = function
          | [] ->
              invalid_arg
                "H_partition.list_forest_decomposition: palette exhausted"
          | c :: rest -> if Hashtbl.mem taken c then pick rest else c
        in
        let c = pick (Palette.get palette e) in
        Hashtbl.add taken c ();
        Coloring.set coloring e c)
      (O.out_edges o v)
  done;
  (* vertices act only on their own out-edges: a single communication round
     suffices to tell the other endpoints. *)
  Rounds.charge rounds ~label:"h-partition/list-forest" 1;
  coloring
