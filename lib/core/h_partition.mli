(** H-partition and its products — Theorem 2.1 of the paper, extending
    Barenboim–Elkin [BE10].

    With [t = floor((2+eps) * alpha_star)], the peeling process yields, in
    [O(log n / eps)] rounds:
    + a partition of the vertices into layers [H_1, .., H_k],
      [k = O(log n / eps)], where each vertex of [H_i] has at most [t]
      neighbors in [H_i ∪ ... ∪ H_k];
    + an acyclic [t]-orientation;
    + a [3t]-star-forest decomposition;
    + a [t]-list-forest decomposition (when every palette has size >= [t]).

    The peeling itself runs on the genuine message-passing kernel. *)

type t = private {
  layer : int array; (** vertex -> layer index, [0 .. num_layers-1] *)
  num_layers : int;
  threshold : int; (** the degree bound [t] used while peeling *)
}

(** [compute g ~epsilon ~alpha_star ~rounds] peels [g] with threshold
    [t = floor((2 + epsilon) * alpha_star)].
    @raise Failure if peeling stalls, i.e. [alpha_star] is below the true
    pseudo-arboricity of [g]. *)
val compute :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha_star:int ->
  rounds:Nw_localsim.Rounds.t ->
  t

(** Acyclic orientation of Theorem 2.1(2): edges point from lower to higher
    layer, ties broken by [ids] (distinct non-negative integers). Every
    out-degree is at most [threshold]. *)
val orientation :
  Nw_graphs.Multigraph.t -> t -> ids:int array -> Nw_graphs.Orientation.t

(** [forests_of_orientation g o] labels the out-edges of every vertex with
    [0 .. t-1] where [t = max out-degree]: each label class is a rooted
    forest ([parent_edge] arrays returned alongside). This is the first step
    of Theorem 2.1(3). Returns [(coloring, parent_edges)] where
    [parent_edges.(j).(v)] is [v]'s parent edge in forest [j] or [-1]. *)
val forests_of_orientation :
  Nw_graphs.Multigraph.t ->
  Nw_graphs.Orientation.t ->
  Nw_decomp.Coloring.t * int array array

(** Theorem 2.1(3): [3t]-star-forest decomposition from an acyclic
    [t]-orientation, via Cole–Vishkin 3-coloring of each rooted forest.
    The [rounds] ledger is charged [O(log* n)] (forests run in parallel). *)
val star_forest_decomposition :
  Nw_graphs.Multigraph.t ->
  Nw_graphs.Orientation.t ->
  ids:int array ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t

(** Theorem 2.1(4): list-forest decomposition from an acyclic orientation;
    every palette must have at least [max out-degree] colors. O(1) rounds. *)
val list_forest_decomposition :
  Nw_graphs.Multigraph.t ->
  Nw_graphs.Orientation.t ->
  Nw_decomp.Palette.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t
