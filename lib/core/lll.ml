module Rounds = Nw_localsim.Rounds
module Obs = Nw_obs.Obs

type 'a event = { vars : int list; violated : (int -> 'a) -> bool }

let solve ?(strict = true) ~num_vars ~sample ~events ~rng ~rounds ~max_iters () =
  Obs.span "lll.solve" ~attrs:[ ("events", Obs.Int (Array.length events)) ]
  @@ fun () ->
  let vals = Array.init num_vars (fun v -> sample rng v) in
  Rounds.charge rounds ~label:"lll/sample" 1;
  (* events sharing a variable are neighbors in the dependency graph *)
  let events_of_var = Array.make num_vars [] in
  Array.iteri
    (fun i ev ->
      List.iter (fun v -> events_of_var.(v) <- i :: events_of_var.(v)) ev.vars)
    events;
  let read v = vals.(v) in
  let violated_now i = events.(i).violated read in
  let rec iterate iter =
    let violated =
      Array.to_list
        (Array.mapi (fun i _ -> if violated_now i then Some i else None) events)
      |> List.filter_map Fun.id
    in
    if violated = [] then ()
    else if iter >= max_iters then
      if strict then failwith "Lll.solve: resampling did not converge"
      else ()
    else begin
      let violated_set = Hashtbl.create 64 in
      List.iter (fun i -> Hashtbl.replace violated_set i ()) violated;
      (* local minima by index among violated dependency-neighbors resample *)
      let is_local_min i =
        List.for_all
          (fun v ->
            List.for_all
              (fun j -> j >= i || not (Hashtbl.mem violated_set j))
              events_of_var.(v))
          events.(i).vars
      in
      let winners = List.filter is_local_min violated in
      assert (winners <> []);
      List.iter
        (fun i ->
          List.iter (fun v -> vals.(v) <- sample rng v) events.(i).vars)
        winners;
      Rounds.charge rounds ~label:"lll/resample" 1;
      Obs.count "lll.resample_rounds";
      iterate (iter + 1)
    end
  in
  iterate 0;
  vals
