(** Distributed Lovász Local Lemma via Moser–Tardos resampling [CPS17].

    Variables live at vertices (one variable blob per vertex); each bad
    event depends on a bounded set of nearby vertices and is locally
    checkable. Each round, every violated event that is a local minimum
    (by event index) among its violated neighbors resamples its variables;
    under the polynomial criterion [e p d^2 <= 1 - Ω(1)] this terminates in
    [O(log n)] rounds w.h.p., which is what the paper's uses assume
    (Lemma 5.2/5.3 color-set selection, Prop 2.4 / Thm 4.9 bad events). *)

type 'a event = {
  vars : int list; (** vertices whose variables the event reads *)
  violated : (int -> 'a) -> bool; (** true when the bad event holds *)
}

(** [solve ~num_vars ~sample ~events ~rng ~rounds ~max_iters] draws
    [vals.(v) = sample rng v] for every vertex, then runs resampling rounds
    until no event is violated. Returns the final assignment.

    Charges one round per resampling iteration plus one for the initial
    sampling (event radius is assumed O(1); callers with wider events
    should scale the ledger themselves).

    When [strict] (default), raises [Failure] if [max_iters] rounds do not
    suffice (the LLL criterion was presumably violated); with
    [~strict:false] the current assignment is returned anyway — callers
    with a graceful degradation path (e.g. the star-forest construction,
    which can always dump unmatched edges into its leftover) use this. *)
val solve :
  ?strict:bool ->
  num_vars:int ->
  sample:(Random.State.t -> int -> 'a) ->
  events:'a event array ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  max_iters:int ->
  unit ->
  'a array
