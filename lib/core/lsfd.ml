module G = Nw_graphs.Multigraph
module O = Nw_graphs.Orientation
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Rounds = Nw_localsim.Rounds
module Obs = Nw_obs.Obs

let greedy_degeneracy g palette =
  Obs.span "lsfd.greedy_degeneracy" @@ fun () ->
  let d, order = Nw_graphs.Degeneracy.ordering g in
  if Palette.min_size palette < 2 * d && G.m g > 0 then
    invalid_arg "Lsfd.greedy_degeneracy: palettes smaller than 2*degeneracy";
  let rank = Array.make (G.n g) 0 in
  Array.iteri (fun i v -> rank.(v) <- i) order;
  let orientation = O.of_total_order g rank in
  (* process edges by decreasing tail rank: every out-edge of an edge's head
     is colored before the edge itself, so avoiding the colors of already
     colored out-edges at both endpoints yields the Theorem 2.2 invariant *)
  let edges = Array.init (G.m g) (fun e -> e) in
  Array.sort
    (fun e1 e2 ->
      Int.compare rank.(O.tail orientation e2) rank.(O.tail orientation e1))
    edges;
  let coloring = Coloring.create g ~colors:(Palette.color_space palette) in
  let color_of e =
    match Coloring.color coloring e with Some c -> [ c ] | None -> []
  in
  Array.iter
    (fun e ->
      let u, v = G.endpoints g e in
      let forbidden =
        List.concat_map color_of (O.out_edges orientation u)
        @ List.concat_map color_of (O.out_edges orientation v)
      in
      let rec pick = function
        | [] -> invalid_arg "Lsfd.greedy_degeneracy: palette exhausted"
        | c :: rest -> if List.mem c forbidden then pick rest else c
      in
      Coloring.set coloring e (pick (Palette.get palette e)))
    edges;
  coloring

let required_palette ~epsilon ~alpha_star =
  int_of_float (floor ((4.0 +. epsilon) *. float_of_int alpha_star)) - 1

let check_palettes g palette ~epsilon ~alpha_star =
  if
    Palette.min_size palette < required_palette ~epsilon ~alpha_star
    && G.m g > 0
  then invalid_arg "Lsfd.distributed: palettes too small"

let layered_color g palette ~hp ~orientation ~nd ~rounds =
  Obs.span "lsfd.layered_color" @@ fun () ->
  let layer v = hp.H_partition.layer.(v) in
  let min_layer e =
    let u, v = G.endpoints g e in
    min (layer u) (layer v)
  in
  let coloring = Coloring.create g ~colors:(Palette.color_space palette) in
  let member_cluster = nd.Net_decomp.cluster_of in
  (* color edge e from its residual palette: avoid colors of already-colored
     out-edges at both endpoints and of already-colored edges of the same
     layer sharing an endpoint *)
  let color_edge e =
    let u, v = G.endpoints g e in
    let forbidden = Hashtbl.create 16 in
    let forbid e' =
      if e' <> e then
        match Coloring.color coloring e' with
        | Some c -> Hashtbl.replace forbidden c ()
        | None -> ()
    in
    List.iter forbid (O.out_edges orientation u);
    List.iter forbid (O.out_edges orientation v);
    Array.iter (fun (_, e') -> if min_layer e' = min_layer e then forbid e') (G.incident g u);
    Array.iter (fun (_, e') -> if min_layer e' = min_layer e then forbid e') (G.incident g v);
    let rec pick = function
      | [] -> invalid_arg "Lsfd.distributed: residual palette exhausted"
      | c :: rest -> if Hashtbl.mem forbidden c then pick rest else c
    in
    Coloring.set coloring e (pick (Palette.get palette e))
  in
  (* process layers top-down; inside a layer, clusters of one ND class go in
     parallel (simulated sequentially; non-interference is guaranteed by the
     distance-3 separation) *)
  for j = hp.H_partition.num_layers - 1 downto 0 do
    for z = 0 to nd.Net_decomp.num_classes - 1 do
      let in_class v = nd.Net_decomp.class_of.(v) = z in
      G.fold_edges
        (fun e u v () ->
          if
            min_layer e = j
            && Coloring.color coloring e = None
            && (* the lower-layer endpoint's cluster owns the edge; ties by
                  smaller cluster id *)
            (let owner =
               if layer u < layer v then u
               else if layer v < layer u then v
               else if member_cluster.(u) <= member_cluster.(v) then u
               else v
             in
             in_class owner)
          then color_edge e)
        g ();
      Rounds.charge rounds ~label:"lsfd/layer-class" 3
    done
  done;
  coloring

let distributed g palette ~epsilon ~alpha_star ~rng ~rounds =
  check_palettes g palette ~epsilon ~alpha_star;
  Obs.span "lsfd.distributed" ~attrs:[ ("alpha_star", Obs.Int alpha_star) ]
  @@ fun () ->
  let hp =
    H_partition.compute g ~epsilon:(epsilon /. 10.) ~alpha_star ~rounds
  in
  let ids = Array.init (G.n g) (fun v -> v) in
  let orientation = H_partition.orientation g hp ~ids in
  (* network decomposition of G^3 shared by all layers *)
  let nd = Net_decomp.compute g ~rng ~rounds ~distance:3 in
  layered_color g palette ~hp ~orientation ~nd ~rounds
