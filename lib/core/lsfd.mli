(** List star-forest decomposition with O(α) colors — Theorems 2.2 / 2.3.

    [greedy_degeneracy] is the existential construction of Theorem 2.2: with
    an acyclic [d]-orientation, color edges backward along the elimination
    order, avoiding the colors of all out-edges at both endpoints; palettes
    of size [2d] always suffice and the result is a star forest per color.

    [distributed] is Theorem 2.3: a [(4+eps)α* - 1]-LSFD in the LOCAL model.
    It uses the H-partition (layers [H_1..H_k]), processes layers from the
    top down, and colors each layer's edge set with a proper list-edge
    coloring of the residual palettes; simultaneity inside a layer is
    resolved by coloring cluster-by-cluster inside a network decomposition
    of [G^3] (the third algorithm of Appendix A, [O(log^3 n / eps)]
    rounds). *)

(** [greedy_degeneracy g palette]: centralized Theorem 2.2. Requires
    palettes of size at least [2 * degeneracy g].
    @raise Invalid_argument if some palette is smaller than [2d]. *)
val greedy_degeneracy :
  Nw_graphs.Multigraph.t -> Nw_decomp.Palette.t -> Nw_decomp.Coloring.t

(** [distributed g palette ~epsilon ~alpha_star ~rng ~rounds]: Theorem 2.3.
    Requires palettes of size at least [floor((4+eps) alpha_star) - 1].
    Every color class of the result is a star forest and every edge is
    colored from its palette. *)
val distributed :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  alpha_star:int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t
