(** List star-forest decomposition with O(α) colors — Theorems 2.2 / 2.3.

    [greedy_degeneracy] is the existential construction of Theorem 2.2: with
    an acyclic [d]-orientation, color edges backward along the elimination
    order, avoiding the colors of all out-edges at both endpoints; palettes
    of size [2d] always suffice and the result is a star forest per color.

    [distributed] is Theorem 2.3: a [(4+eps)α* - 1]-LSFD in the LOCAL model.
    It uses the H-partition (layers [H_1..H_k]), processes layers from the
    top down, and colors each layer's edge set with a proper list-edge
    coloring of the residual palettes; simultaneity inside a layer is
    resolved by coloring cluster-by-cluster inside a network decomposition
    of [G^3] (the third algorithm of Appendix A, [O(log^3 n / eps)]
    rounds). *)

(** [greedy_degeneracy g palette]: centralized Theorem 2.2. Requires
    palettes of size at least [2 * degeneracy g].
    @raise Invalid_argument if some palette is smaller than [2d]. *)
val greedy_degeneracy :
  Nw_graphs.Multigraph.t -> Nw_decomp.Palette.t -> Nw_decomp.Coloring.t

(** [required_palette ~epsilon ~alpha_star] is the Theorem 2.3 minimum
    palette size [floor((4+eps) alpha_star) - 1]. *)
val required_palette : epsilon:float -> alpha_star:int -> int

(** [check_palettes g palette ~epsilon ~alpha_star] raises
    [Invalid_argument] when some palette is below {!required_palette} (and
    the graph has edges) — the guard {!distributed} applies, exposed so
    engine pipelines can fail at build time. *)
val check_palettes :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  alpha_star:int ->
  unit

(** [layered_color g palette ~hp ~orientation ~nd ~rounds] is the coloring
    phase of Theorem 2.3: process H-partition layers top-down, coloring each
    layer cluster-by-cluster inside the precomputed [G^3] network
    decomposition [nd]. The engine runs the H-partition, orientation, and
    network-decomposition phases as separate passes and feeds them in. *)
val layered_color :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  hp:H_partition.t ->
  orientation:Nw_graphs.Orientation.t ->
  nd:Net_decomp.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t

(** [distributed g palette ~epsilon ~alpha_star ~rng ~rounds]: Theorem 2.3.
    Requires palettes of size at least [floor((4+eps) alpha_star) - 1].
    Every color class of the result is a star forest and every edge is
    colored from its palette. *)
val distributed :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  alpha_star:int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t
