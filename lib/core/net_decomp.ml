module G = Nw_graphs.Multigraph
module Rounds = Nw_localsim.Rounds
module Obs = Nw_obs.Obs

type t = {
  num_classes : int;
  class_of : int array;
  cluster_of : int array;
  clusters : int list array;
  cluster_class : int array;
}

(* geometric(1/2) >= 1: number of fair coin flips up to and including the
   first head, capped at [cap]. *)
let geometric rng cap =
  let rec flip r =
    if r >= cap then cap else if Random.State.bool rng then r else flip (r + 1)
  in
  flip 1

(* One hop of BFS on G^k restricted to [alive] vertices: all alive vertices
   within G-distance <= k of the frontier (paths may pass through dead
   vertices, matching the G^k[alive] adjacency). *)
let hop g k alive frontier =
  let members = G.ball_of_set g frontier k in
  let acc = ref [] in
  Array.iteri (fun v inside -> if inside && alive.(v) then acc := v :: !acc) members;
  !acc

(* When G^distance is complete (every pair within [distance]), the whole
   vertex set is one cluster of weak diameter <= distance: a (1,1)-network
   decomposition, strictly better than the Linial-Saks bounds. This is the
   common case for Algorithm 2, whose power-graph distances dwarf the
   diameters of feasible inputs. Detection: twice the eccentricity of any
   vertex upper-bounds the diameter. *)
let complete_shortcut g ~distance =
  let n = G.n g in
  if n = 0 then None
  else begin
    let dist = Nw_graphs.Traversal.distances g 0 in
    let ecc = ref 0 and connected = ref true in
    Array.iter
      (fun d -> if d < 0 then connected := false else ecc := max !ecc d)
      dist;
    if !connected && 2 * !ecc <= distance then
      Some
        {
          num_classes = 1;
          class_of = Array.make n 0;
          cluster_of = Array.make n 0;
          clusters = [| List.init n (fun v -> v) |];
          cluster_class = [| 0 |];
        }
    else None
  end

let compute g ~rng ~rounds ~distance =
  if distance < 1 then invalid_arg "Net_decomp.compute: distance < 1";
  Obs.span "net_decomp" ~attrs:[ ("distance", Obs.Int distance) ]
  @@ fun () ->
  let n = G.n g in
  let logn =
    let rec bits b v = if v <= 1 then b else bits (b + 1) ((v + 1) / 2) in
    bits 0 (max 2 n)
  in
  let cap = logn + 2 in
  match complete_shortcut g ~distance with
  | Some nd ->
      (* leader election + confirmation on the complete power graph *)
      Rounds.charge rounds ~label:"net-decomp/phase" (4 * distance);
      Obs.set_attr "classes" (Obs.Int 1);
      Obs.set_attr "shortcut" (Obs.Bool true);
      nd
  | None ->
  let alive = Array.make n true in
  let class_of = Array.make n (-1) in
  let cluster_of = Array.make n (-1) in
  let clusters = ref [] and cluster_class = ref [] in
  let num_clusters = ref 0 in
  let max_classes = (4 * logn) + 16 in
  let remaining = ref n in
  let z = ref 0 in
  while !remaining > 0 do
    if !z >= max_classes then
      failwith "Net_decomp.compute: too many classes (improbable failure)";
    (* one Linial-Saks phase on G^distance[alive] *)
    let radius = Array.make n 0 in
    let priority = Array.make n (-1.0, -1) in
    for v = 0 to n - 1 do
      if alive.(v) then begin
        radius.(v) <- geometric rng cap;
        priority.(v) <- (Random.State.float rng 1.0, v)
      end
    done;
    (* best candidate per vertex: (priority, center, hop distance) *)
    let best = Array.make n None in
    for v = 0 to n - 1 do
      if alive.(v) then begin
        (* BFS of [radius v] hops from v through alive vertices *)
        let seen = Hashtbl.create 64 in
        Hashtbl.add seen v ();
        let frontier = ref [ v ] in
        let consider u h =
          let better =
            match best.(u) with
            | None -> true
            | Some (p, _, _) -> priority.(v) > p
          in
          if better then best.(u) <- Some (priority.(v), v, h)
        in
        consider v 0;
        let h = ref 0 in
        while !frontier <> [] && !h < radius.(v) do
          incr h;
          let next =
            List.filter
              (fun u ->
                if Hashtbl.mem seen u then false
                else begin
                  Hashtbl.add seen u ();
                  true
                end)
              (hop g distance alive !frontier)
          in
          List.iter (fun u -> consider u !h) next;
          frontier := next
        done
      end
    done;
    (* internal vertices (hop distance strictly below the center's radius)
       join the center's cluster in class z; border vertices survive. *)
    let members_of_center = Hashtbl.create 64 in
    for u = 0 to n - 1 do
      if alive.(u) then
        match best.(u) with
        | Some (_, v, h) when h < radius.(v) ->
            Hashtbl.replace members_of_center v
              (u :: Option.value ~default:[] (Hashtbl.find_opt members_of_center v))
        | _ -> ()
    done;
    Hashtbl.iter
      (fun _center members ->
        let id = !num_clusters in
        incr num_clusters;
        clusters := members :: !clusters;
        cluster_class := !z :: !cluster_class;
        List.iter
          (fun u ->
            class_of.(u) <- !z;
            cluster_of.(u) <- id;
            alive.(u) <- false;
            decr remaining)
          members)
      members_of_center;
    (* LOCAL cost of one phase: broadcasting (priority, radius) to [cap]
       hops of G^distance and electing winners: O(cap) power-graph rounds. *)
    Rounds.charge rounds ~label:"net-decomp/phase"
      (((2 * cap) + 2) * distance);
    incr z
  done;
  Obs.set_attr "classes" (Obs.Int !z);
  Obs.set_attr "clusters" (Obs.Int !num_clusters);
  {
    num_classes = !z;
    class_of;
    cluster_of;
    clusters = Array.of_list (List.rev !clusters);
    cluster_class = Array.of_list (List.rev !cluster_class);
  }

let max_cluster_weak_diameter g t =
  let best = ref 0 in
  Array.iter
    (fun members ->
      List.iter
        (fun v ->
          let dist = Nw_graphs.Traversal.distances g v in
          List.iter
            (fun u -> if dist.(u) > !best then best := dist.(u))
            members)
        members)
    t.clusters;
  !best

let check_valid g ~distance t =
  let n = G.n g in
  let ok = ref (Ok ()) in
  let fail msg = if !ok = Ok () then ok := Error msg in
  for v = 0 to n - 1 do
    if t.cluster_of.(v) < 0 || t.class_of.(v) < 0 then
      fail (Printf.sprintf "vertex %d unassigned" v);
    if
      t.cluster_of.(v) >= 0
      && t.cluster_class.(t.cluster_of.(v)) <> t.class_of.(v)
    then fail (Printf.sprintf "vertex %d class/cluster mismatch" v)
  done;
  Array.iteri
    (fun id members ->
      List.iter
        (fun v ->
          if t.cluster_of.(v) <> id then
            fail (Printf.sprintf "vertex %d not mapped to its cluster" v))
        members)
    t.clusters;
  (* same-class clusters must be at G-distance > distance: check that the
     [distance]-ball of each cluster meets no other same-class cluster *)
  Array.iteri
    (fun id members ->
      let ball = G.ball_of_set g members distance in
      Array.iteri
        (fun v inside ->
          if
            inside
            && t.cluster_of.(v) <> id
            && t.class_of.(v) = t.cluster_class.(id)
          then
            fail
              (Printf.sprintf
                 "clusters %d and %d of class %d are within distance %d" id
                 t.cluster_of.(v) t.cluster_class.(id) distance))
        ball)
    t.clusters;
  !ok

(* ------------------------------------------------------------------ *)
(* MPX partial decomposition                                            *)
(* ------------------------------------------------------------------ *)

module Heap = Nw_graphs.Heap

let mpx g ~rng ~beta ~rounds =
  if beta <= 0.0 || beta >= 1.0 then invalid_arg "Net_decomp.mpx: beta";
  Obs.span "net_decomp.mpx" @@ fun () ->
  let n = G.n g in
  let shift =
    Array.init n (fun _ ->
        (* Exp(beta) *)
        -.log (1.0 -. Random.State.float rng 1.0) /. beta)
  in
  let label = Array.make n (-1) in
  let heap = Heap.create (0, 0) in
  for v = 0 to n - 1 do
    Heap.push heap (-.shift.(v)) (v, v)
  done;
  let max_key = ref 0.0 in
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (key, (v, center)) ->
        if label.(v) < 0 then begin
          label.(v) <- center;
          if key > !max_key then max_key := key;
          Array.iter
            (fun (w, _) ->
              if label.(w) < 0 then Heap.push heap (key +. 1.0) (w, center))
            (G.incident g v);
          drain ()
        end
        else drain ()
  in
  drain ();
  (* LOCAL cost: the largest (shift + BFS depth) settled, i.e. the time the
     last vertex was claimed, plus the initial shift magnitude *)
  let max_shift = Array.fold_left max 0.0 shift in
  Rounds.charge rounds ~label:"net-decomp/mpx"
    (1 + int_of_float (ceil (max_shift +. !max_key)));
  label
