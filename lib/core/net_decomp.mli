(** Network decompositions.

    Two randomized constructions used by the paper:

    - A {e (O(log n), O(log n))-network decomposition} in the style of
      Linial–Saks [LS93] (the paper cites [LS93, ABCP96, EN16]): the vertex
      set is split into [O(log n)] classes; inside one class, distinct
      clusters are non-adjacent, and every cluster has weak diameter
      [O(log n)]. Algorithm 2 needs this on a power graph [G^k]; the
      [distance] parameter runs the construction on [G^k] {e implicitly}
      (adjacency = G-distance at most [k]) without materializing the power
      graph, and charges the [k]-fold simulation overhead to the ledger.

    - The {e (O(log n / beta), beta) partial network decomposition} of
      Miller–Peng–Xu [MPX13]: one partition of the vertices into clusters of
      strong diameter [O(log n / beta)] w.h.p., where each edge is cut
      (endpoints in different clusters) with probability at most [beta].
      Used by the vertex-color-splitting step (Theorem 4.9). *)

type t = {
  num_classes : int;
  class_of : int array; (** vertex -> class index *)
  cluster_of : int array; (** vertex -> cluster id (global numbering) *)
  clusters : int list array; (** cluster id -> member vertices *)
  cluster_class : int array; (** cluster id -> its class *)
}

(** [compute g ~rng ~rounds ~distance] builds the Linial–Saks style
    decomposition of [G^distance].

    Guarantees: same-class clusters are at [G]-distance greater than
    [distance] from each other; every cluster has weak radius at most
    [(2 + 2*ceil(log2 n)) * distance] in [G]; w.h.p. at most
    [O(log n)] classes (the construction fails rather than exceed
    [4*ceil(log2 n) + 16] classes). Charges [O(distance * log^2 n)]
    rounds. *)
val compute :
  Nw_graphs.Multigraph.t ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  distance:int ->
  t

(** Largest weak diameter (distances in [g]) over all clusters; diagnostic,
    O(n*m). *)
val max_cluster_weak_diameter : Nw_graphs.Multigraph.t -> t -> int

(** [check_valid g ~distance t] verifies the structural properties: clusters
    of one class are pairwise at [G]-distance > [distance]; every vertex is
    in exactly one cluster; cluster ids are consistent. *)
val check_valid :
  Nw_graphs.Multigraph.t -> distance:int -> t -> (unit, string) result

(** [mpx g ~rng ~beta ~rounds] is the MPX partition: returns the cluster
    label of every vertex. Charges [O(log n / beta)] rounds. *)
val mpx :
  Nw_graphs.Multigraph.t ->
  rng:Random.State.t ->
  beta:float ->
  rounds:Nw_localsim.Rounds.t ->
  int array
