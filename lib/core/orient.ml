module G = Nw_graphs.Multigraph
module O = Nw_graphs.Orientation
module Scratch = Nw_graphs.Scratch
module Coloring = Nw_decomp.Coloring
module Rounds = Nw_localsim.Rounds
module Obs = Nw_obs.Obs

let of_forest_decomposition coloring ~rounds =
  Obs.span "orient.of_forest_decomposition" @@ fun () ->
  let g = Coloring.graph coloring in
  let n = G.n g in
  let head = Array.init (G.m g) (fun e -> fst (G.endpoints g e)) in
  (* generation-stamped depths: O(1) reset per color *)
  let depth = Scratch.Ints.create n in
  let max_depth = ref 0 in
  for c = 0 to Coloring.colors coloring - 1 do
    let forest, femap = Coloring.subgraph coloring c in
    Scratch.Ints.reset depth;
    (* BFS-root each tree; point every tree edge at the shallower side *)
    for v0 = 0 to n - 1 do
      if (not (Scratch.Ints.mem depth v0)) && G.degree forest v0 > 0 then begin
        let q = Queue.create () in
        Scratch.Ints.set depth v0 0;
        Queue.add v0 q;
        while not (Queue.is_empty q) do
          let u = Queue.take q in
          let du = Scratch.Ints.get depth u ~default:0 in
          if du > !max_depth then max_depth := du;
          G.iter_incident forest u (fun w fe ->
              if not (Scratch.Ints.mem depth w) then begin
                Scratch.Ints.set depth w (du + 1);
                (* edge points from child w toward parent u *)
                head.(femap.(fe)) <- G.other_endpoint g femap.(fe) w;
                Queue.add w q
              end)
        done
      end
    done
  done;
  Rounds.charge rounds ~label:"orient/rooting" (!max_depth + 1);
  O.make g head

let orientation g ~epsilon ~alpha ?cut ?radii ~rng ~rounds () =
  Obs.span "orient.orientation" @@ fun () ->
  let coloring, stats =
    Forest_algo.forest_decomposition g ~epsilon ~alpha ?cut ?radii ~rng
      ~rounds ()
  in
  (of_forest_decomposition coloring ~rounds, stats)
