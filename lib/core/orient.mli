(** Low out-degree orientations from forest decompositions — Corollary 1.1.

    A forest decomposition of diameter [D] turns into an orientation in
    [O(D)] rounds: root every monochromatic tree and point each edge at its
    parent. Each vertex owns at most one parent edge per color, so the
    out-degree is at most the number of colors — a [(1+eps)·alpha]-FD gives
    a [(1+eps)·alpha]-orientation, the first with linear dependence on
    [1/eps]. *)

(** [of_forest_decomposition coloring ~rounds] orients every colored edge
    toward its tree root; uncolored edges (there should be none in a
    complete decomposition) are oriented arbitrarily. Charges the largest
    tree depth encountered. *)
val of_forest_decomposition :
  Nw_decomp.Coloring.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_graphs.Orientation.t

(** [orientation g ~epsilon ~alpha ...]: Corollary 1.1 end to end — run
    Theorem 4.6's forest decomposition, then orient. The result has max
    out-degree at most the number of colors the decomposition used. *)
val orientation :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  ?cut:Cut.rule ->
  ?radii:int * int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  unit ->
  Nw_graphs.Orientation.t * Forest_algo.stats
