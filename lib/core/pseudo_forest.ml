module G = Nw_graphs.Multigraph
module O = Nw_graphs.Orientation

let of_orientation o =
  let g = O.graph o in
  let k = max 1 (O.max_out_degree o) in
  let assignment = Array.make (G.m g) 0 in
  for v = 0 to G.n g - 1 do
    List.iteri (fun i e -> assignment.(e) <- i) (O.out_edges o v)
  done;
  (assignment, k)

let decompose g ~epsilon ~alpha ~rng ~rounds () =
  Nw_obs.Obs.span "pseudo_forest" @@ fun () ->
  let o, _stats = Orient.orientation g ~epsilon ~alpha ~rng ~rounds () in
  let assignment, k = of_orientation o in
  (match Nw_decomp.Verify.pseudo_forest_assignment g assignment ~k with
  | Ok () -> ()
  | Error msg -> failwith ("Pseudo_forest.decompose: " ^ msg));
  (assignment, k)
