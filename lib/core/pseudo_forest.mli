(** Pseudo-forest decompositions from orientations.

    A [k]-orientation is exactly a decomposition into [k] pseudo-forests
    (Section 1 of the paper): give each vertex's out-edges distinct labels
    [0..k-1]; each label class has per-vertex out-degree at most one, so
    every component carries at most one cycle. Combined with Corollary 1.1
    this yields [(1+eps)·alpha]-pseudo-forest decompositions. *)

(** [of_orientation o] labels out-edges per vertex; returns the per-edge
    class assignment and the class count [k = max out-degree]. *)
val of_orientation : Nw_graphs.Orientation.t -> int array * int

(** [decompose g ~epsilon ~alpha ...]: Corollary 1.1's orientation followed
    by out-edge labeling; the assignment is verified to be a pseudo-forest
    decomposition before returning. *)
val decompose :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  unit ->
  int array * int
