module G = Nw_graphs.Multigraph
module Coloring = Nw_decomp.Coloring
module Obs = Nw_obs.Obs

let merge base extra emap =
  let g = Coloring.graph base in
  let base_colors = Coloring.colors base in
  let fresh = Coloring.colors extra in
  let out = Coloring.create g ~colors:(base_colors + fresh) in
  G.fold_edges
    (fun e _ _ () ->
      match Coloring.color base e with
      | Some c -> Coloring.set out e c
      | None -> ())
    g ();
  Array.iteri
    (fun se e ->
      match Coloring.color extra se with
      | Some c -> Coloring.set out e (base_colors + c)
      | None -> ())
    emap;
  (out, fresh)

let leftover_orientation base removed ~rounds =
  let g = Coloring.graph base in
  let sub, emap = G.subgraph_of_edges g removed in
  let alpha_star, _ = Nw_graphs.Arboricity.pseudo_arboricity sub in
  let hp =
    H_partition.compute sub ~epsilon:0.1 ~alpha_star:(max 1 alpha_star)
      ~rounds
  in
  let ids = Array.init (G.n g) (fun v -> v) in
  (sub, emap, H_partition.orientation sub hp ~ids)

let append_forests base removed ~rounds =
  if not (Array.exists (fun b -> b) removed) then (base, 0)
  else begin
    Obs.span "recolor.append_forests" @@ fun () ->
    let sub, emap, orientation = leftover_orientation base removed ~rounds in
    let forests, _ = H_partition.forests_of_orientation sub orientation in
    let out, fresh = merge base forests emap in
    Obs.set_attr "fresh_colors" (Obs.Int fresh);
    (out, fresh)
  end

let append_stars base removed ~ids ~rounds =
  if not (Array.exists (fun b -> b) removed) then (base, 0)
  else begin
    Obs.span "recolor.append_stars" @@ fun () ->
    let sub, emap, orientation = leftover_orientation base removed ~rounds in
    let stars =
      H_partition.star_forest_decomposition sub orientation ~ids ~rounds
    in
    let out, fresh = merge base stars emap in
    Obs.set_attr "fresh_colors" (Obs.Int fresh);
    (out, fresh)
  end
