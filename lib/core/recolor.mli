(** Recoloring leftover edges with fresh colors.

    Every top-level algorithm ends by mopping up a sparse leftover edge set
    (CUT removals, diameter-reduction deletions, unmatched star edges) with
    [O(eps*alpha)] extra colors. Both helpers measure the leftover's exact
    pseudo-arboricity (max-flow), build a Theorem 2.1 H-partition
    orientation of it, and append fresh colors after the base coloring's
    space: {!append_forests} uses one forest per out-edge label (plain FD);
    {!append_stars} further splits each forest into 3 star-forests via
    Cole–Vishkin (Theorem 2.1(3)). *)

(** [append_forests base removed ~rounds]: new coloring extending [base]
    with the [removed] edges colored in fresh forest colors; returns it and
    the number of fresh colors. *)
val append_forests :
  Nw_decomp.Coloring.t ->
  bool array ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t * int

(** [append_stars base removed ~ids ~rounds]: same, but the fresh classes
    are star forests (diameter at most 2). *)
val append_stars :
  Nw_decomp.Coloring.t ->
  bool array ->
  ids:int array ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t * int
