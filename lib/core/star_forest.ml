module G = Nw_graphs.Multigraph
module O = Nw_graphs.Orientation
module Matching = Nw_graphs.Matching
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Rounds = Nw_localsim.Rounds
module Obs = Nw_obs.Obs

type stats = {
  max_deficiency : int;
  leftover_edges : int;
  fresh_colors : int;
  lll_converged : bool;
}

(* Maximum matching of H_v: left = colors 0..colors-1, right = out-edges of
   v; edge (i, r) present when i ∈ C(v) \ C(head r) and the list filter
   admits it. Returns [(edge, color) list, deficiency]. *)
let match_vertex orientation v ~colors ~in_set ~admits =
  let outs = Array.of_list (O.out_edges orientation v) in
  let nr = Array.length outs in
  if nr = 0 then ([], 0)
  else begin
    let h = Matching.create ~left:colors ~right:nr in
    for r = 0 to nr - 1 do
      let e = outs.(r) in
      let u = O.head orientation e in
      for i = 0 to colors - 1 do
        if in_set v i && (not (in_set u i)) && admits e i then
          Matching.add h i r
      done
    done;
    let size, _, mr = Matching.maximum_matching h in
    let assignments = ref [] in
    Array.iteri
      (fun r i -> if i >= 0 then assignments := (outs.(r), i) :: !assignments)
      mr;
    ignore size;
    (!assignments, nr - List.length !assignments)
  end

(* Color all matched out-edges; returns (coloring over [colors] space,
   leftover mask, max deficiency). *)
let realize g orientation ~colors ~in_set ~admits =
  let coloring = Coloring.create g ~colors in
  let leftover = Array.make (G.m g) true in
  let max_def = ref 0 in
  for v = 0 to G.n g - 1 do
    let assignments, deficiency =
      match_vertex orientation v ~colors ~in_set ~admits
    in
    if deficiency > !max_def then max_def := deficiency;
    List.iter
      (fun (e, i) ->
        Coloring.set coloring e i;
        leftover.(e) <- false)
      assignments
  done;
  (coloring, leftover, !max_def)

let require_simple g name =
  if not (G.is_simple g) then
    invalid_arg (name ^ ": star-forest decomposition requires a simple graph")

(* uniformly random size-[k] subset of 0..t-1 as a membership array *)
let random_subset rng t k =
  let arr = Array.init t (fun i -> i) in
  for i = t - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  let members = Array.make t false in
  for i = 0 to min k t - 1 do
    members.(arr.(i)) <- true
  done;
  members

(* Lemma 5.2 parameters (t colors, a-subsets, deficiency slack delta),
   recomputed identically by the select and realize phases *)
let sfd_params ~epsilon ~alpha ~orientation =
  let t =
    max (O.max_out_degree orientation)
      (int_of_float (ceil ((1.0 +. epsilon) *. float_of_int alpha)))
  in
  let a = min alpha t in
  let delta =
    max 1 (int_of_float (ceil (2.0 *. epsilon *. float_of_int alpha)))
  in
  (t, a, delta)

let sfd_select g ~epsilon ~alpha ~orientation ~rng ~rounds =
  require_simple g "Star_forest.sfd";
  let t, a, delta = sfd_params ~epsilon ~alpha ~orientation in
  (* the matching can never exceed |C(v)| = a, so the achievable deficiency
     target is (out-degree - a) + the Lemma 5.2 slack *)
  let deficiency_target v =
    let nr = List.length (O.out_edges orientation v) in
    max 0 (nr - a) + delta
  in
  let sample st _ = random_subset st t a in
  let events =
    Array.init (G.n g) (fun v ->
        let heads = List.map (O.head orientation) (O.out_edges orientation v) in
        {
          Lll.vars = v :: heads;
          violated =
            (fun read ->
              let in_set w i = (read w).(i) in
              let _, deficiency =
                match_vertex orientation v ~colors:t ~in_set
                  ~admits:(fun _ _ -> true)
              in
              deficiency > deficiency_target v);
        })
  in
  let max_iters = 40 + (4 * int_of_float (log (float_of_int (max 2 (G.n g))))) in
  let sides =
    Lll.solve ~strict:false ~num_vars:(G.n g) ~sample ~events ~rng ~rounds
      ~max_iters ()
  in
  let converged =
    Array.for_all (fun ev -> not (ev.Lll.violated (fun v -> sides.(v)))) events
  in
  (sides, converged)

let[@obs.in_span] sfd_realize g ~epsilon ~alpha ~orientation ~sides ~rounds =
  let t, _, _ = sfd_params ~epsilon ~alpha ~orientation in
  let in_set v i = sides.(v).(i) in
  let coloring, leftover, max_def =
    realize g orientation ~colors:t ~in_set ~admits:(fun _ _ -> true)
  in
  Rounds.charge rounds ~label:"star-forest/matching" 2;
  (coloring, leftover, max_def)

let sfd_finish coloring leftover ~max_def ~converged ~ids ~rounds =
  let combined, fresh = Recolor.append_stars coloring leftover ~ids ~rounds in
  let leftover_edges =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 leftover
  in
  Obs.set_attr "max_deficiency" (Obs.Int max_def);
  Obs.set_attr "leftover_edges" (Obs.Int leftover_edges);
  ( combined,
    {
      max_deficiency = max_def;
      leftover_edges;
      fresh_colors = fresh;
      lll_converged = converged;
    } )

let sfd g ~epsilon ~alpha ~orientation ~ids ~rng ~rounds =
  require_simple g "Star_forest.sfd";
  Obs.span "star_forest.sfd" ~attrs:[ ("alpha", Obs.Int alpha) ]
  @@ fun () ->
  let sides, converged =
    sfd_select g ~epsilon ~alpha ~orientation ~rng ~rounds
  in
  let coloring, leftover, max_def =
    sfd_realize g ~epsilon ~alpha ~orientation ~sides ~rounds
  in
  sfd_finish coloring leftover ~max_def ~converged ~ids ~rounds

let lsfd_select g palette ~epsilon ~orientation ~rng ~rounds =
  require_simple g "Star_forest.lsfd";
  let colors = Palette.color_space palette in
  let admits e i = Palette.mem palette e i in
  let sample st _ =
    Array.init colors (fun _ -> Random.State.float st 1.0 >= epsilon)
  in
  let events =
    Array.init (G.n g) (fun v ->
        let heads = List.map (O.head orientation) (O.out_edges orientation v) in
        {
          Lll.vars = v :: heads;
          violated =
            (fun read ->
              let in_set w i = (read w).(i) in
              let _, deficiency =
                match_vertex orientation v ~colors ~in_set ~admits
              in
              deficiency > 0);
        })
  in
  let max_iters = 40 + (4 * int_of_float (log (float_of_int (max 2 (G.n g))))) in
  let rec attempt k =
    let sides =
      Lll.solve ~strict:false ~num_vars:(G.n g) ~sample ~events ~rng ~rounds
        ~max_iters ()
    in
    let ok =
      Array.for_all
        (fun ev -> not (ev.Lll.violated (fun v -> sides.(v))))
        events
    in
    if ok then sides
    else if k > 1 then attempt (k - 1)
    else
      failwith
        "Star_forest.lsfd: no perfect matchings found; parameters are \
         outside Lemma 5.3's regime (need alpha >> log Δ and palettes of \
         size (1+200 eps) alpha)"
  in
  attempt 5

let[@obs.in_span] lsfd_realize g palette ~orientation ~sides ~rounds =
  let colors = Palette.color_space palette in
  let admits e i = Palette.mem palette e i in
  let in_set v i = sides.(v).(i) in
  let coloring, leftover, max_def =
    realize g orientation ~colors ~in_set ~admits
  in
  Rounds.charge rounds ~label:"star-forest/matching" 2;
  let leftover_edges =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 leftover
  in
  assert (leftover_edges = 0);
  Obs.set_attr "max_deficiency" (Obs.Int max_def);
  ( coloring,
    {
      max_deficiency = max_def;
      leftover_edges;
      fresh_colors = 0;
      lll_converged = true;
    } )

let lsfd g palette ~epsilon ~orientation ~rng ~rounds =
  require_simple g "Star_forest.lsfd";
  Obs.span "star_forest.lsfd" @@ fun () ->
  let sides = lsfd_select g palette ~epsilon ~orientation ~rng ~rounds in
  lsfd_realize g palette ~orientation ~sides ~rounds
