(** Star-forest decomposition for simple graphs — Section 5 of the paper
    (Lemmas 5.2, 5.3, Proposition 5.1, Theorem 5.4).

    Construction: with a [t]-orientation ([t = ceil((1+eps) alpha)]), every
    vertex [v] selects a color set [C(v)] and builds the bipartite graph
    [H_v] between colors and out-neighbors, with an edge [(i, u)] whenever
    [i ∈ C(v) \ C(u)] (and [i ∈ Q(vu)] for lists). Coloring the out-edges
    along a maximum matching of [H_v] makes every color class a star forest
    (Proposition 5.1): color-[i] centers are vertices with [i ∉ C(u)],
    leaves have [i ∈ C(v)].

    - Ordinary SFD (Lemma 5.2): [C(v)] is a uniformly random [alpha]-subset
      of [t] colors; w.h.p. (via the LLL) every [H_v] has a near-perfect
      matching and the [O(eps*alpha)] unmatched edges per vertex are
      recolored with fresh star colors.
    - List SFD (Lemma 5.3): each color joins [C(v)] independently with
      probability [1 - eps]; with palettes of size [(1+200eps)·alpha] every
      [H_v] has a perfect matching w.h.p., so nothing is left over. *)

type stats = {
  max_deficiency : int; (** worst [|A(v)| - matching size] over vertices *)
  leftover_edges : int;
  fresh_colors : int; (** colors appended to recolor the leftover *)
  lll_converged : bool;
}

(** [sfd_select g ~epsilon ~alpha ~orientation ~rng ~rounds] is the LLL
    color-set selection phase of Lemma 5.2: every vertex draws a random
    [alpha]-subset of the [t] colors and the LLL resamples until each
    bipartite graph [H_v] has a near-perfect matching. Returns the selected
    sides and whether the LLL converged within its iteration budget.
    @raise Invalid_argument on multigraphs. *)
val sfd_select :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  orientation:Nw_graphs.Orientation.t ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  bool array array * bool

(** [sfd_realize g ~epsilon ~alpha ~orientation ~sides ~rounds] colors each
    vertex's out-edges along a maximum matching of [H_v] (Proposition 5.1)
    for the selected [sides]. Returns [(coloring, leftover mask, max
    deficiency)]. *)
val sfd_realize :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  orientation:Nw_graphs.Orientation.t ->
  sides:bool array array ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t * bool array * int

(** [sfd_finish coloring leftover ~max_def ~converged ~ids ~rounds] recolors
    the unmatched [leftover] with fresh star colors ({!Recolor.append_stars})
    and assembles the stats record. *)
val sfd_finish :
  Nw_decomp.Coloring.t ->
  bool array ->
  max_def:int ->
  converged:bool ->
  ids:int array ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t * stats

(** [lsfd_select g palette ~epsilon ~orientation ~rng ~rounds] is the
    Lemma 5.3 selection: each color joins [C(v)] independently with
    probability [1 - eps]; retried a few times until every [H_v] has a
    perfect matching.
    @raise Invalid_argument on multigraphs.
    @raise Failure when no perfect matchings materialize. *)
val lsfd_select :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  orientation:Nw_graphs.Orientation.t ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  bool array array

(** [lsfd_realize g palette ~orientation ~sides ~rounds] realizes the
    perfect matchings of {!lsfd_select} as a complete list star-forest
    coloring (asserts nothing is left over). *)
val lsfd_realize :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  orientation:Nw_graphs.Orientation.t ->
  sides:bool array array ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t * stats

(** [sfd g ~epsilon ~alpha ~orientation ~ids ~rng ~rounds]: Theorem 5.4(1) —
    {!sfd_select}, {!sfd_realize}, {!sfd_finish} in sequence.
    [orientation] must have max out-degree at most [ceil((1+eps)·alpha)].
    @raise Invalid_argument on multigraphs. *)
val sfd :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  orientation:Nw_graphs.Orientation.t ->
  ids:int array ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t * stats

(** [lsfd g palette ~epsilon ~orientation ~rng ~rounds]: Theorem 5.4(2) via
    Lemma 5.3. Palettes should have size at least
    [(1 + 200*eps) * alpha]. Retries the whole selection a few times if the
    LLL leaves deficient vertices; raises [Failure] if perfect matchings
    never materialize (parameters outside the lemma's regime).
    @raise Invalid_argument on multigraphs. *)
val lsfd :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  orientation:Nw_graphs.Orientation.t ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t * stats
