module G = Nw_graphs.Multigraph

type t = {
  g : G.t;
  colors : int;
  assign : int array; (* edge -> color or -1 *)
  adj : (int * int) list array array; (* color -> vertex -> (nbr, edge) *)
  mutable colored : int;
  (* timestamped BFS scratch, shared across queries *)
  mark : int array;
  via : int array; (* vertex -> edge used to reach it in current BFS *)
  pred : int array; (* vertex -> predecessor vertex in current BFS *)
  mutable stamp : int;
}

let create g ~colors =
  if colors < 0 then invalid_arg "Coloring.create: negative color count";
  let n = G.n g in
  {
    g;
    colors;
    assign = Array.make (G.m g) (-1);
    adj = Array.init colors (fun _ -> Array.make n []);
    colored = 0;
    mark = Array.make n 0;
    via = Array.make n (-1);
    pred = Array.make n (-1);
    stamp = 0;
  }

let graph t = t.g
let colors t = t.colors

let color t e =
  let c = t.assign.(e) in
  if c < 0 then None else Some c

let colored_count t = t.colored

let uncolored t =
  let acc = ref [] in
  for e = Array.length t.assign - 1 downto 0 do
    if t.assign.(e) < 0 then acc := e :: !acc
  done;
  !acc

(* Bidirectional BFS inside color class [c] between [src] and [dst], never
   crossing edge [skip]. Expands the smaller frontier and stops as soon as
   either side's component is exhausted, so deciding "disconnected" costs
   only the smaller component — the common case during augmentation, where
   one endpoint is isolated in most colors.

   Returns [None] when disconnected; [Some (x, w, e)] when the two searches
   met via edge [e] between [x] (src side) and [w] (dst side). The
   [via]/[pred] scratch then encodes both half-paths. *)
let bfs_color t c src dst skip =
  (* two stamps: src side = stamp, dst side = stamp + 1 *)
  t.stamp <- t.stamp + 2;
  let s_src = t.stamp - 1 and s_dst = t.stamp in
  t.mark.(src) <- s_src;
  t.via.(src) <- -1;
  t.pred.(src) <- -1;
  t.mark.(dst) <- s_dst;
  t.via.(dst) <- -1;
  t.pred.(dst) <- -1;
  let frontier_src = ref [ src ] and frontier_dst = ref [ dst ] in
  let meeting = ref None in
  (* expand one side's whole frontier; my/other are the side stamps; a
     meeting is always recorded as (src-side vertex, dst-side vertex, e) *)
  let expand frontier my other ~from_src =
    let next = ref [] in
    List.iter
      (fun x ->
        if !meeting = None then
          List.iter
            (fun (w, e) ->
              if !meeting = None && e <> skip then
                if t.mark.(w) = other then
                  meeting :=
                    Some (if from_src then (x, w, e) else (w, x, e))
                else if t.mark.(w) <> my then begin
                  t.mark.(w) <- my;
                  t.via.(w) <- e;
                  t.pred.(w) <- x;
                  next := w :: !next
                end)
            t.adj.(c).(x))
      !frontier;
    frontier := !next
  in
  let rec loop () =
    if !meeting <> None then !meeting
    else if !frontier_src = [] || !frontier_dst = [] then None
    else begin
      if List.compare_lengths !frontier_src !frontier_dst <= 0 then
        expand frontier_src s_src s_dst ~from_src:true
      else expand frontier_dst s_dst s_src ~from_src:false;
      loop ()
    end
  in
  loop ()

let would_close_cycle t e c =
  if c < 0 || c >= t.colors then
    invalid_arg "Coloring.would_close_cycle: color out of range";
  let u, v = G.endpoints t.g e in
  bfs_color t c u v e <> None

let remove_from_adj t e =
  let c = t.assign.(e) in
  if c >= 0 then begin
    let u, v = G.endpoints t.g e in
    let strip x =
      t.adj.(c).(x) <- List.filter (fun (_, e') -> e' <> e) t.adj.(c).(x)
    in
    strip u;
    strip v
  end

let unset t e =
  if t.assign.(e) >= 0 then begin
    remove_from_adj t e;
    t.assign.(e) <- -1;
    t.colored <- t.colored - 1
  end

let set t e c =
  if c < 0 || c >= t.colors then
    invalid_arg "Coloring.set: color out of range";
  if t.assign.(e) <> c then begin
    if would_close_cycle t e c then
      invalid_arg "Coloring.set: would close a cycle";
    unset t e;
    let u, v = G.endpoints t.g e in
    t.adj.(c).(u) <- (v, e) :: t.adj.(c).(u);
    t.adj.(c).(v) <- (u, e) :: t.adj.(c).(v);
    t.assign.(e) <- c;
    t.colored <- t.colored + 1
  end

let path t e c =
  if c < 0 || c >= t.colors then invalid_arg "Coloring.path: color out of range";
  if t.assign.(e) = c then Some [ e ]
  else begin
    let u, v = G.endpoints t.g e in
    match bfs_color t c u v e with
    | None -> None
    | Some (x, w, mid) ->
        (* half-path from a meeting endpoint back to its root *)
        let rec walk stop_at y acc =
          if y = stop_at then acc else walk stop_at t.pred.(y) (t.via.(y) :: acc)
        in
        Some (walk u x [] @ (mid :: walk v w []))
  end

let component_edges t v c =
  if c < 0 || c >= t.colors then
    invalid_arg "Coloring.component_edges: color out of range";
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let q = Queue.create () in
  t.mark.(v) <- stamp;
  Queue.add v q;
  let acc = ref [] in
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    List.iter
      (fun (w, e) ->
        if t.mark.(w) <> stamp then begin
          t.mark.(w) <- stamp;
          acc := e :: !acc;
          Queue.add w q
        end)
      t.adj.(c).(u)
  done;
  !acc

let colored_incident t v c = t.adj.(c).(v)

let to_array t =
  Array.map (fun c -> if c < 0 then None else Some c) t.assign

let of_array g ~colors a =
  if Array.length a <> G.m g then
    invalid_arg "Coloring.of_array: length mismatch";
  let t = create g ~colors in
  Array.iteri (fun e c -> match c with None -> () | Some c -> set t e c) a;
  t

let copy t = of_array t.g ~colors:t.colors (to_array t)

let subgraph t c =
  let keep = Array.map (fun c' -> c' = c) t.assign in
  G.subgraph_of_edges t.g keep
