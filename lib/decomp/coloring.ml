(* nwlint:disable PERF001 -- the per-color union-find rebuild is already lazily gated by generation counters (uf_gen/uf_built); when it does run it is Theta(n + m_c) by design, so the fills are not the cost *)

module Obs = Nw_obs.Obs

(* Process-wide instrumentation of the connectivity layer. Atomic so that
   parallel bench domains can share them; the bench harness snapshots
   before/after each experiment and reports deltas in BENCH_*.json. Both
   functor instances below count into the same cells — the counters
   describe the algorithm, not the data plane. *)
module Counters = struct
  let uf_queries = Atomic.make 0
  let bfs_runs = Atomic.make 0
  let uf_rebuilds = Atomic.make 0

  type snapshot = { uf_queries : int; bfs_runs : int; uf_rebuilds : int }

  let snapshot () =
    {
      uf_queries = Atomic.get uf_queries;
      bfs_runs = Atomic.get bfs_runs;
      uf_rebuilds = Atomic.get uf_rebuilds;
    }
end

(* The cache itself is plane-generic: every structure below is keyed by
   vertex ids, edge ids and node ids [2e + slot], and the only graph
   operations it needs are [n]/[m]/[src]/[dst] (plus [subgraph_of_edges]
   for per-color extraction). [Make] builds it over any GRAPH_EXT; the
   public [t] at the bottom of this file dispatches once per coloring
   between the two instances, exactly like [Msg_net]. *)

module type S = sig
  type graph
  type t

  val create : graph -> colors:int -> t
  val graph : t -> graph
  val colors : t -> int
  val color : t -> int -> int option
  val colored_count : t -> int
  val uncolored : t -> int array
  val iter_uncolored : (int -> unit) -> t -> unit
  val would_close_cycle : t -> int -> int -> bool
  val oracle_would_close_cycle : t -> int -> int -> bool
  val set : t -> int -> int -> unit
  val unset : t -> int -> unit
  val path : t -> int -> int -> int list option
  val component_edges : t -> int -> int -> int list
  val component_size : t -> int -> int -> int
  val component_edge_count : t -> int -> int -> int
  val colored_incident : t -> int -> int -> (int * int) list
  val iter_colored_incident : t -> int -> int -> (int -> int -> unit) -> unit
  val to_array : t -> int option array
  val of_array : graph -> colors:int -> int option array -> t
  val copy : t -> t
  val extend : t -> graph -> t
  val connected : t -> int -> int -> int -> bool
  val subgraph : t -> int -> graph * int array
end

module Make (G : Nw_graphs.Graph_sig.GRAPH_EXT) :
  S with type graph = G.t = struct
  type graph = G.t

  (* Adjacency is a doubly-linked list per (color, vertex), threaded
     through two flat arrays indexed by "node id" [2e + slot] (slot 0 =
     the src endpoint of e, slot 1 = dst). An edge belongs to at most one
     color, so one nxt/prv pair per node suffices globally. Inserts
     prepend and unlinks are in place, which reproduces exactly the
     iteration order of the previous [(nbr, edge) list] representation
     (prepend + order-preserving filter) while making deletion O(1)
     instead of O(deg).

     Each color additionally threads its edges through [enxt]/[eprv]
     (head [ehead.(c)]) so the lazy union-find rebuild below touches only
     that color's edges, never all m. *)

  type t = {
    g : G.t;
    colors : int;
    assign : int array; (* edge -> color or -1 *)
    mutable colored : int;
    (* (color, vertex) adjacency DLLs over node ids 2e+slot; -1 = nil *)
    head : int array array; (* color -> vertex -> node id *)
    nxt : int array; (* 2m *)
    prv : int array; (* 2m *)
    (* per-color edge DLLs; -1 = nil *)
    ehead : int array;
    enxt : int array; (* m *)
    eprv : int array; (* m *)
    ecount : int array; (* edges currently in each color *)
    (* incremental per-color connectivity: union-find with path
       compression and union by size, carrying per-component vertex and
       edge counts. Lazily allocated ([||]) and lazily rebuilt: [uf_gen]
       is bumped on any deletion from the color, [uf_built] records the
       generation of the last rebuild; the class is clean iff they
       agree. *)
    uf_parent : int array array; (* color -> n *)
    uf_size : int array array; (* root -> component vertex count *)
    uf_edges : int array array; (* root -> component edge count *)
    uf_gen : int array;
    uf_built : int array;
    (* rooted spanning forest per color, maintained together with the
       union-find (same laziness): parent vertex / parent edge / depth,
       so path extraction is an O(path) LCA climb instead of a BFS over
       the component. Insertions re-root the smaller side
       (small-to-large); deletions fall back on the lazy rebuild. *)
    fp_vertex : int array array; (* color -> vertex -> parent, -1 root *)
    fp_edge : int array array; (* color -> vertex -> edge to parent *)
    fp_depth : int array array; (* color -> vertex -> depth from root *)
    (* timestamped BFS scratch, shared across queries *)
    mark : int array;
    via : int array; (* vertex -> edge used to reach it in current BFS *)
    pred : int array; (* vertex -> predecessor in current BFS *)
    qbuf : int array; (* BFS queue buffer for rebuild / reroot *)
    mutable stamp : int;
  }

  let create g ~colors =
    if colors < 0 then invalid_arg "Coloring.create: negative color count";
    let n = G.n g in
    let m = G.m g in
    {
      g;
      colors;
      assign = Array.make m (-1);
      colored = 0;
      head = Array.init colors (fun _ -> Array.make n (-1));
      nxt = Array.make (2 * m) (-1);
      prv = Array.make (2 * m) (-1);
      ehead = Array.make colors (-1);
      enxt = Array.make m (-1);
      eprv = Array.make m (-1);
      ecount = Array.make colors 0;
      uf_parent = Array.make colors [||];
      uf_size = Array.make colors [||];
      uf_edges = Array.make colors [||];
      uf_gen = Array.make colors 0;
      uf_built = Array.make colors (-1);
      fp_vertex = Array.make colors [||];
      fp_edge = Array.make colors [||];
      fp_depth = Array.make colors [||];
      mark = Array.make n 0;
      via = Array.make n (-1);
      pred = Array.make n (-1);
      qbuf = Array.make n 0;
      stamp = 0;
    }

  let graph t = t.g
  let colors t = t.colors

  let color t e =
    let c = t.assign.(e) in
    if c < 0 then None else Some c

  let colored_count t = t.colored

  let uncolored t =
    let k = Array.length t.assign - t.colored in
    let out = Array.make k 0 in
    let j = ref 0 in
    for e = 0 to Array.length t.assign - 1 do
      if t.assign.(e) < 0 then begin
        out.(!j) <- e;
        incr j
      end
    done;
    out

  let iter_uncolored f t =
    for e = 0 to Array.length t.assign - 1 do
      if t.assign.(e) < 0 then f e
    done

  (* ---------------------------------------------------------------- *)
  (* adjacency DLL primitives                                          *)
  (* ---------------------------------------------------------------- *)

  (* neighbor reached through node [nd] of vertex [x]'s list: the
     endpoint of edge [nd/2] on the other slot. src/dst instead of
     [endpoints]: this is the innermost load of every cache traversal
     and must not allocate a tuple per step. *)
  let node_neighbor t nd =
    let e = nd lsr 1 in
    if nd land 1 = 0 then G.dst t.g e else G.src t.g e

  let iter_adj t c x f =
    let nd = ref t.head.(c).(x) in
    while !nd >= 0 do
      let cur = !nd in
      nd := t.nxt.(cur);
      f (node_neighbor t cur) (cur lsr 1)
    done

  let link_node t c x nd =
    let h = t.head.(c).(x) in
    t.nxt.(nd) <- h;
    t.prv.(nd) <- -1;
    if h >= 0 then t.prv.(h) <- nd;
    t.head.(c).(x) <- nd

  let unlink_node t c x nd =
    let p = t.prv.(nd) and n = t.nxt.(nd) in
    if p >= 0 then t.nxt.(p) <- n else t.head.(c).(x) <- n;
    if n >= 0 then t.prv.(n) <- p;
    t.nxt.(nd) <- -1;
    t.prv.(nd) <- -1

  let link_edge t c e =
    let h = t.ehead.(c) in
    t.enxt.(e) <- h;
    t.eprv.(e) <- -1;
    if h >= 0 then t.eprv.(h) <- e;
    t.ehead.(c) <- e;
    t.ecount.(c) <- t.ecount.(c) + 1

  let unlink_edge t c e =
    let p = t.eprv.(e) and n = t.enxt.(e) in
    if p >= 0 then t.enxt.(p) <- n else t.ehead.(c) <- n;
    if n >= 0 then t.eprv.(n) <- p;
    t.enxt.(e) <- -1;
    t.eprv.(e) <- -1;
    t.ecount.(c) <- t.ecount.(c) - 1

  (* ---------------------------------------------------------------- *)
  (* per-color union-find                                              *)
  (* ---------------------------------------------------------------- *)

  let rec uf_find p x =
    let px = p.(x) in
    if px = x then x
    else begin
      let root = uf_find p px in
      p.(x) <- root;
      root
    end

  (* union endpoints of one more edge; caller guarantees acyclicity
     except during rebuild, where a same-root union would indicate a
     broken forest invariant and is counted on the root anyway *)
  let uf_union t c u v =
    let p = t.uf_parent.(c) in
    let ru = uf_find p u and rv = uf_find p v in
    let sz = t.uf_size.(c) and ed = t.uf_edges.(c) in
    if ru = rv then ed.(ru) <- ed.(ru) + 1
    else begin
      let big, small = if sz.(ru) >= sz.(rv) then (ru, rv) else (rv, ru) in
      p.(small) <- big;
      sz.(big) <- sz.(big) + sz.(small);
      ed.(big) <- ed.(big) + ed.(small) + 1
    end

  let uf_rebuild t c =
    let n = G.n t.g in
    if Array.length t.uf_parent.(c) = 0 then begin
      t.uf_parent.(c) <- Array.init n (fun i -> i);
      t.uf_size.(c) <- Array.make n 1;
      t.uf_edges.(c) <- Array.make n 0;
      t.fp_vertex.(c) <- Array.make n (-1);
      t.fp_edge.(c) <- Array.make n (-1);
      t.fp_depth.(c) <- Array.make n (-1)
    end
    else begin
      let p = t.uf_parent.(c) in
      for i = 0 to n - 1 do
        p.(i) <- i
      done;
      Array.fill t.uf_size.(c) 0 n 1;
      Array.fill t.uf_edges.(c) 0 n 0;
      Array.fill t.fp_vertex.(c) 0 n (-1);
      Array.fill t.fp_edge.(c) 0 n (-1);
      Array.fill t.fp_depth.(c) 0 n (-1)
    end;
    let e = ref t.ehead.(c) in
    while !e >= 0 do
      uf_union t c (G.src t.g !e) (G.dst t.g !e);
      e := t.enxt.(!e)
    done;
    (* rebuild the rooted spanning forest: BFS each component, parents
       pointing toward the component's lowest-id unvisited vertex *)
    let pv = t.fp_vertex.(c)
    and pe = t.fp_edge.(c)
    and dep = t.fp_depth.(c) in
    for r = 0 to n - 1 do
      if dep.(r) < 0 then begin
        dep.(r) <- 0;
        t.qbuf.(0) <- r;
        let tail = ref 1 in
        let h = ref 0 in
        while !h < !tail do
          let x = t.qbuf.(!h) in
          incr h;
          iter_adj t c x (fun w e ->
              if dep.(w) < 0 then begin
                dep.(w) <- dep.(x) + 1;
                pv.(w) <- x;
                pe.(w) <- e;
                t.qbuf.(!tail) <- w;
                incr tail
              end)
        done
      end
    done;
    t.uf_built.(c) <- t.uf_gen.(c);
    Atomic.incr Counters.uf_rebuilds;
    Obs.count "coloring.uf_rebuilds"

  let ensure_uf t c = if t.uf_built.(c) <> t.uf_gen.(c) then uf_rebuild t c

  (* Re-hang vertex [v]'s tree in color [c] below [u] through edge [e]:
     v becomes the subtree root attached to u, and every vertex of v's
     old tree is re-parented toward v by a BFS over the color's adjacency
     (e is not linked yet, so the BFS cannot escape into u's tree). The
     caller always re-roots the smaller side, so each vertex is re-rooted
     at most O(log n) times across a build (small-to-large). *)
  let reroot_under t c ~u ~v ~e =
    let pv = t.fp_vertex.(c)
    and pe = t.fp_edge.(c)
    and dep = t.fp_depth.(c) in
    t.stamp <- t.stamp + 1;
    let stamp = t.stamp in
    t.mark.(v) <- stamp;
    dep.(v) <- dep.(u) + 1;
    pv.(v) <- u;
    pe.(v) <- e;
    t.qbuf.(0) <- v;
    let tail = ref 1 in
    let h = ref 0 in
    while !h < !tail do
      let x = t.qbuf.(!h) in
      incr h;
      iter_adj t c x (fun w e' ->
          if t.mark.(w) <> stamp then begin
            t.mark.(w) <- stamp;
            dep.(w) <- dep.(x) + 1;
            pv.(w) <- x;
            pe.(w) <- e';
            t.qbuf.(!tail) <- w;
            incr tail
          end)
    done

  (* connectivity of u and v inside color c, O(alpha(n)) amortized *)
  let uf_connected t c u v =
    ensure_uf t c;
    Atomic.incr Counters.uf_queries;
    Obs.count "coloring.uf_queries";
    let p = t.uf_parent.(c) in
    uf_find p u = uf_find p v

  (* ---------------------------------------------------------------- *)
  (* BFS path extraction (for extraction and as a test oracle)         *)
  (* ---------------------------------------------------------------- *)

  (* Bidirectional BFS inside color class [c] between [src] and [dst],
     never crossing edge [skip]. Expands the smaller frontier and stops
     as soon as either side's component is exhausted, so deciding
     "disconnected" costs only the smaller component — the common case
     during augmentation, where one endpoint is isolated in most colors.

     Returns [None] when disconnected; [Some (x, w, e)] when the two
     searches met via edge [e] between [x] (src side) and [w] (dst
     side). The [via]/[pred] scratch then encodes both half-paths. *)
  let bfs_color t c src dst skip =
    Atomic.incr Counters.bfs_runs;
    Obs.count "coloring.bfs_runs";
    (* two stamps: src side = stamp, dst side = stamp + 1 *)
    t.stamp <- t.stamp + 2;
    let s_src = t.stamp - 1 and s_dst = t.stamp in
    t.mark.(src) <- s_src;
    t.via.(src) <- -1;
    t.pred.(src) <- -1;
    t.mark.(dst) <- s_dst;
    t.via.(dst) <- -1;
    t.pred.(dst) <- -1;
    let frontier_src = ref [ src ] and frontier_dst = ref [ dst ] in
    let meeting = ref None in
    (* expand one side's whole frontier; my/other are the side stamps; a
       meeting is always recorded as (src-side, dst-side, e) *)
    let expand frontier my other ~from_src =
      let next = ref [] in
      List.iter
        (fun x ->
          if !meeting = None then
            iter_adj t c x (fun w e ->
                if !meeting = None && e <> skip then
                  if t.mark.(w) = other then
                    meeting :=
                      Some (if from_src then (x, w, e) else (w, x, e))
                  else if t.mark.(w) <> my then begin
                    t.mark.(w) <- my;
                    t.via.(w) <- e;
                    t.pred.(w) <- x;
                    next := w :: !next
                  end))
        !frontier;
      frontier := !next
    in
    let rec loop () =
      if !meeting <> None then !meeting
      else if !frontier_src = [] || !frontier_dst = [] then None
      else begin
        if List.compare_lengths !frontier_src !frontier_dst <= 0 then
          expand frontier_src s_src s_dst ~from_src:true
        else expand frontier_dst s_dst s_src ~from_src:false;
        loop ()
      end
    in
    loop ()

  let would_close_cycle t e c =
    if c < 0 || c >= t.colors then
      invalid_arg "Coloring.would_close_cycle: color out of range";
    if t.assign.(e) = c then
      (* color classes are forests: u and v are joined only through e *)
      false
    else begin
      let u = G.src t.g e and v = G.dst t.g e in
      u = v || uf_connected t c u v
    end

  let oracle_would_close_cycle t e c =
    if c < 0 || c >= t.colors then
      invalid_arg "Coloring.oracle_would_close_cycle: color out of range";
    bfs_color t c (G.src t.g e) (G.dst t.g e) e <> None

  let connected t c u v =
    if c < 0 || c >= t.colors then
      invalid_arg "Coloring.connected: color out of range";
    let n = G.n t.g in
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Coloring.connected: vertex out of range";
    u = v || uf_connected t c u v

  let unset t e =
    let c = t.assign.(e) in
    if c >= 0 then begin
      let u = G.src t.g e and v = G.dst t.g e in
      unlink_node t c u (2 * e);
      unlink_node t c v ((2 * e) + 1);
      unlink_edge t c e;
      t.assign.(e) <- -1;
      t.colored <- t.colored - 1;
      (* deletions invalidate only this color; rebuilt lazily on query *)
      t.uf_gen.(c) <- t.uf_gen.(c) + 1
    end

  let set t e c =
    if c < 0 || c >= t.colors then
      invalid_arg "Coloring.set: color out of range";
    if t.assign.(e) <> c then begin
      if would_close_cycle t e c then
        invalid_arg "Coloring.set: would close a cycle";
      unset t e;
      let u = G.src t.g e and v = G.dst t.g e in
      (* the cycle check above just ensured color c's union-find is clean
         (and allocated), so insertion maintains it incrementally — no
         invalidation. The rooted forest re-hangs the smaller side before
         the edge enters the adjacency lists. *)
      let p = t.uf_parent.(c) in
      if t.uf_size.(c).(uf_find p u) >= t.uf_size.(c).(uf_find p v) then
        reroot_under t c ~u ~v ~e
      else reroot_under t c ~u:v ~v:u ~e;
      link_node t c u (2 * e);
      link_node t c v ((2 * e) + 1);
      link_edge t c e;
      t.assign.(e) <- c;
      t.colored <- t.colored + 1;
      uf_union t c u v
    end

  let path t e c =
    if c < 0 || c >= t.colors then
      invalid_arg "Coloring.path: color out of range";
    if t.assign.(e) = c then Some [ e ]
    else begin
      let u = G.src t.g e and v = G.dst t.g e in
      if u = v then begin
        (* self-loop: no tree path; legacy BFS answer for compatibility *)
        match bfs_color t c u v e with
        | None -> None
        | Some (x, w, mid) ->
            let rec walk stop_at y acc =
              if y = stop_at then acc
              else walk stop_at t.pred.(y) (t.via.(y) :: acc)
            in
            Some (walk u x [] @ (mid :: walk v w []))
      end
      else if not (uf_connected t c u v) then
        (* O(alpha) disconnection test: the common case in augmentation *)
        None
      else begin
        (* extract the unique tree path by climbing the rooted forest to
           the LCA: O(path length), no component traversal. Emitted as
           the u-side half in u->lca order followed by the v-side half in
           v->lca order, mirroring the bidirectional-BFS half-path format
           this replaces. *)
        let pv = t.fp_vertex.(c)
        and pe = t.fp_edge.(c)
        and dep = t.fp_depth.(c) in
        let uside = ref [] and vside = ref [] in
        let x = ref u and y = ref v in
        while dep.(!x) > dep.(!y) do
          uside := pe.(!x) :: !uside;
          x := pv.(!x)
        done;
        while dep.(!y) > dep.(!x) do
          vside := pe.(!y) :: !vside;
          y := pv.(!y)
        done;
        while !x <> !y do
          uside := pe.(!x) :: !uside;
          x := pv.(!x);
          vside := pe.(!y) :: !vside;
          y := pv.(!y)
        done;
        Some (List.rev_append !uside (List.rev !vside))
      end
    end

  let component_edges t v c =
    if c < 0 || c >= t.colors then
      invalid_arg "Coloring.component_edges: color out of range";
    t.stamp <- t.stamp + 1;
    let stamp = t.stamp in
    let q = Queue.create () in
    t.mark.(v) <- stamp;
    Queue.add v q;
    let acc = ref [] in
    while not (Queue.is_empty q) do
      let u = Queue.take q in
      iter_adj t c u (fun w e ->
          if t.mark.(w) <> stamp then begin
            t.mark.(w) <- stamp;
            acc := e :: !acc;
            Queue.add w q
          end)
    done;
    !acc

  let component_size t v c =
    if c < 0 || c >= t.colors then
      invalid_arg "Coloring.component_size: color out of range";
    ensure_uf t c;
    t.uf_size.(c).(uf_find t.uf_parent.(c) v)

  let component_edge_count t v c =
    if c < 0 || c >= t.colors then
      invalid_arg "Coloring.component_edge_count: color out of range";
    ensure_uf t c;
    t.uf_edges.(c).(uf_find t.uf_parent.(c) v)

  let colored_incident t v c =
    let acc = ref [] in
    iter_adj t c v (fun w e -> acc := (w, e) :: !acc);
    List.rev !acc

  let iter_colored_incident t v c f = iter_adj t c v f

  let to_array t =
    Array.map (fun c -> if c < 0 then None else Some c) t.assign

  let of_array g ~colors a =
    if Array.length a <> G.m g then
      invalid_arg "Coloring.of_array: length mismatch";
    let t = create g ~colors in
    Array.iteri (fun e c -> match c with None -> () | Some c -> set t e c) a;
    t

  let copy t = of_array t.g ~colors:t.colors (to_array t)

  (* Transplant a live coloring onto a supergraph without disturbing the
     per-color caches: every per-edge array is blitted into a larger one
     (new ids start unlinked/uncolored), every per-color per-vertex array
     is copied as-is, and only the BFS scratch is reset (mark semantics
     are "equal to the current stamp", so zeroed marks with stamp 0 are
     clean — the stamp is bumped before first use). Nothing here
     re-unions or runs a BFS, so union-find state, generation counters
     and rooted forests all survive; the cost is the copies,
     O(m' + colors * n). *)
  let extend t g' =
    let n = G.n t.g and m = G.m t.g in
    let m' = G.m g' in
    if G.n g' <> n then invalid_arg "Coloring.extend: vertex set changed";
    if m' < m then invalid_arg "Coloring.extend: edge set shrank";
    for e = 0 to m - 1 do
      if G.src t.g e <> G.src g' e || G.dst t.g e <> G.dst g' e then
        invalid_arg "Coloring.extend: existing edge ids not preserved"
    done;
    let grow a len pad =
      let b = Array.make len pad in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    {
      g = g';
      colors = t.colors;
      assign = grow t.assign m' (-1);
      colored = t.colored;
      head = Array.map Array.copy t.head;
      nxt = grow t.nxt (2 * m') (-1);
      prv = grow t.prv (2 * m') (-1);
      ehead = Array.copy t.ehead;
      enxt = grow t.enxt m' (-1);
      eprv = grow t.eprv m' (-1);
      ecount = Array.copy t.ecount;
      uf_parent = Array.map Array.copy t.uf_parent;
      uf_size = Array.map Array.copy t.uf_size;
      uf_edges = Array.map Array.copy t.uf_edges;
      uf_gen = Array.copy t.uf_gen;
      uf_built = Array.copy t.uf_built;
      fp_vertex = Array.map Array.copy t.fp_vertex;
      fp_edge = Array.map Array.copy t.fp_edge;
      fp_depth = Array.map Array.copy t.fp_depth;
      mark = Array.make n 0;
      via = Array.make n (-1);
      pred = Array.make n (-1);
      qbuf = Array.make n 0;
      stamp = 0;
    }

  let subgraph t c =
    let keep = Array.map (fun c' -> c' = c) t.assign in
    G.subgraph_of_edges t.g keep
end

(* ------------------------------------------------------------------ *)
(* backend dispatch                                                    *)
(* ------------------------------------------------------------------ *)

module MG = Nw_graphs.Multigraph
module Boxed = Make (Nw_graphs.Multigraph)
module Csr_backed = Make (Nw_graphs.Csr)

(* The public coloring is the PR 6 dispatch shape: pick the plane ONCE
   when the coloring is created (from [Backend.default ()]), and keep the
   boxed source graph alongside the CSR instance so artifacts,
   checkpoints and derived Multigraphs stay backend-agnostic. Both
   instances run the identical op sequence over identical iteration
   orders, so every observable — colors, paths, counters — is
   byte-identical across the two arms. *)
type t = Boxed of Boxed.t | Csr of MG.t * Csr_backed.t

let create g ~colors =
  match Nw_graphs.Backend.default () with
  | Nw_graphs.Backend.Boxed -> Boxed (Boxed.create g ~colors)
  | Nw_graphs.Backend.Csr ->
      Csr (g, Csr_backed.create (Nw_graphs.Csr.of_multigraph g) ~colors)

let graph = function Boxed b -> Boxed.graph b | Csr (g, _) -> g
let colors = function Boxed b -> Boxed.colors b | Csr (_, k) -> Csr_backed.colors k

let color t e =
  match t with Boxed b -> Boxed.color b e | Csr (_, k) -> Csr_backed.color k e

let colored_count = function
  | Boxed b -> Boxed.colored_count b
  | Csr (_, k) -> Csr_backed.colored_count k

let uncolored = function
  | Boxed b -> Boxed.uncolored b
  | Csr (_, k) -> Csr_backed.uncolored k

let iter_uncolored f = function
  | Boxed b -> Boxed.iter_uncolored f b
  | Csr (_, k) -> Csr_backed.iter_uncolored f k

let would_close_cycle t e c =
  match t with
  | Boxed b -> Boxed.would_close_cycle b e c
  | Csr (_, k) -> Csr_backed.would_close_cycle k e c

let oracle_would_close_cycle t e c =
  match t with
  | Boxed b -> Boxed.oracle_would_close_cycle b e c
  | Csr (_, k) -> Csr_backed.oracle_would_close_cycle k e c

let set t e c =
  match t with
  | Boxed b -> Boxed.set b e c
  | Csr (_, k) -> Csr_backed.set k e c

let unset t e =
  match t with Boxed b -> Boxed.unset b e | Csr (_, k) -> Csr_backed.unset k e

let path t e c =
  match t with
  | Boxed b -> Boxed.path b e c
  | Csr (_, k) -> Csr_backed.path k e c

let component_edges t v c =
  match t with
  | Boxed b -> Boxed.component_edges b v c
  | Csr (_, k) -> Csr_backed.component_edges k v c

let component_size t v c =
  match t with
  | Boxed b -> Boxed.component_size b v c
  | Csr (_, k) -> Csr_backed.component_size k v c

let component_edge_count t v c =
  match t with
  | Boxed b -> Boxed.component_edge_count b v c
  | Csr (_, k) -> Csr_backed.component_edge_count k v c

let colored_incident t v c =
  match t with
  | Boxed b -> Boxed.colored_incident b v c
  | Csr (_, k) -> Csr_backed.colored_incident k v c

let iter_colored_incident t v c f =
  match t with
  | Boxed b -> Boxed.iter_colored_incident b v c f
  | Csr (_, k) -> Csr_backed.iter_colored_incident k v c f

let to_array = function
  | Boxed b -> Boxed.to_array b
  | Csr (_, k) -> Csr_backed.to_array k

let of_array g ~colors a =
  match Nw_graphs.Backend.default () with
  | Nw_graphs.Backend.Boxed -> Boxed (Boxed.of_array g ~colors a)
  | Nw_graphs.Backend.Csr ->
      Csr (g, Csr_backed.of_array (Nw_graphs.Csr.of_multigraph g) ~colors a)

let copy = function
  | Boxed b -> Boxed (Boxed.copy b)
  | Csr (g, k) -> Csr (g, Csr_backed.copy k)

let extend t g' =
  match t with
  | Boxed b -> Boxed (Boxed.extend b g')
  | Csr (_, k) ->
      Csr (g', Csr_backed.extend k (Nw_graphs.Csr.of_multigraph g'))

let connected t c u v =
  match t with
  | Boxed b -> Boxed.connected b c u v
  | Csr (_, k) -> Csr_backed.connected k c u v

(* Derived Multigraphs stay boxed on both arms (they feed passes and
   artifacts that archive them); the CSR arm extracts through the boxed
   source it carries, with the identical keep mask and therefore the
   identical renumbering. *)
let subgraph t c =
  match t with
  | Boxed b -> Boxed.subgraph b c
  | Csr (g, k) ->
      let keep =
        Array.map
          (function Some c' -> c' = c | None -> false)
          (Csr_backed.to_array k)
      in
      MG.subgraph_of_edges g keep
