(** Partial edge colorings maintained as forests per color.

    This is the working state of every decomposition algorithm: a partial
    map from edges to colors such that each color class is kept an acyclic
    edge set. The per-color adjacency structure supports the path query
    [C(e, c)] — the unique path between the endpoints of [e] inside the
    color-[c] forest — which drives the augmenting-sequence machinery of
    Section 3 of the paper.

    Invariant (enforced on every {!set}): each color class is a forest. *)

type t

(** [create g ~colors] is the empty partial coloring of [g]'s edges with
    color space [0..colors-1]. *)
val create : Nw_graphs.Multigraph.t -> colors:int -> t

val graph : t -> Nw_graphs.Multigraph.t
val colors : t -> int

val color : t -> int -> int option

(** Number of currently colored edges. *)
val colored_count : t -> int

(** [uncolored t] lists the uncolored edge ids, ascending. *)
val uncolored : t -> int list

(** [would_close_cycle t e c] holds when the endpoints of [e] are already
    connected inside the color-[c] forest by edges other than [e]. *)
val would_close_cycle : t -> int -> int -> bool

(** [set t e c] colors edge [e] with [c], first removing any previous color.
    @raise Invalid_argument if this closes a cycle in color [c]. *)
val set : t -> int -> int -> unit

(** [unset t e] removes the color of [e] (no-op when uncolored). *)
val unset : t -> int -> unit

(** [path t e c] is [C(e, c)]: the edge-id path joining the endpoints of [e]
    inside the color-[c] forest, or [None] when they are disconnected.
    If [e] itself is colored [c] the result is [Some [e]]. *)
val path : t -> int -> int -> int list option

(** [component_edges t v c] lists the edges of the color-[c] tree containing
    vertex [v] (empty when [v] is isolated in that color). *)
val component_edges : t -> int -> int -> int list

(** Per-vertex incident edges of one color: [(neighbor, edge)] list. *)
val colored_incident : t -> int -> int -> (int * int) list

(** Snapshot of all edge colors ([None] = uncolored). Fresh array. *)
val to_array : t -> int option array

(** [of_array g ~colors a] rebuilds a coloring from a snapshot.
    @raise Invalid_argument if some class is not a forest. *)
val of_array : Nw_graphs.Multigraph.t -> colors:int -> int option array -> t

val copy : t -> t

(** [subgraph t c] is the color-[c] forest as a graph on all of [g]'s
    vertices, with the map from new edge ids to original ids. *)
val subgraph : t -> int -> Nw_graphs.Multigraph.t * int array
