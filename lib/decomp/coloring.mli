(** Partial edge colorings maintained as forests per color.

    This is the working state of every decomposition algorithm: a partial
    map from edges to colors such that each color class is kept an acyclic
    edge set. The per-color adjacency structure supports the path query
    [C(e, c)] — the unique path between the endpoints of [e] inside the
    color-[c] forest — which drives the augmenting-sequence machinery of
    Section 3 of the paper.

    Connectivity questions ("would coloring [e] with [c] close a cycle?",
    "is [C(e, c)] empty?") are answered by an incremental per-color
    union-find in O(α(n)) amortized: insertions ({!set}) update it in
    place, deletions ({!unset}, recoloring) invalidate only the affected
    color via a generation counter, and the next query on that color
    lazily rebuilds it from the color's own edge list. Breadth-first
    search survives solely for actual path extraction ({!path} on a
    connected pair) and as the differential-testing oracle
    ({!oracle_would_close_cycle}).

    The cache is plane-generic: {!Make} builds it over any
    {!Nw_graphs.Graph_sig.GRAPH_EXT}, and the top-level [t] dispatches
    once per coloring between the {!Boxed} and {!Csr_backed} instances
    according to [Nw_graphs.Backend.default ()] — the same shape as the
    message-passing kernel. Both instances are byte-identical in every
    observable; the choice is purely a memory-layout knob.

    Invariant (enforced on every {!set}): each color class is a forest. *)

(** The plane-generic connectivity cache: the full coloring API over an
    abstract graph type. [Augmenting], [Cut] and [Forest_algo] functorize
    over this (paired with the matching [GRAPH_EXT]) so their hot loops
    run directly on one plane with no per-operation dispatch. *)
module type S = sig
  type graph
  type t

  val create : graph -> colors:int -> t
  val graph : t -> graph
  val colors : t -> int
  val color : t -> int -> int option
  val colored_count : t -> int
  val uncolored : t -> int array
  val iter_uncolored : (int -> unit) -> t -> unit
  val would_close_cycle : t -> int -> int -> bool
  val oracle_would_close_cycle : t -> int -> int -> bool
  val set : t -> int -> int -> unit
  val unset : t -> int -> unit
  val path : t -> int -> int -> int list option
  val component_edges : t -> int -> int -> int list
  val component_size : t -> int -> int -> int
  val component_edge_count : t -> int -> int -> int
  val colored_incident : t -> int -> int -> (int * int) list
  val iter_colored_incident : t -> int -> int -> (int -> int -> unit) -> unit
  val to_array : t -> int option array
  val of_array : graph -> colors:int -> int option array -> t
  val copy : t -> t
  val extend : t -> graph -> t
  val connected : t -> int -> int -> int -> bool
  val subgraph : t -> int -> graph * int array
end

module Make (G : Nw_graphs.Graph_sig.GRAPH_EXT) : S with type graph = G.t

(** The two plane instances. [Boxed] is the reference; [Csr_backed] runs
    the identical op sequence over the flat planes. *)
module Boxed : S with type graph = Nw_graphs.Multigraph.t

module Csr_backed : S with type graph = Nw_graphs.Csr.t

(** The dispatched coloring. The CSR arm carries the boxed source graph
    so that {!graph}, {!subgraph} and everything downstream (artifacts,
    checkpoints, verifiers) stay [Multigraph]-typed regardless of plane.
    The constructors are exposed so the functorized cores ([Augmenting],
    [Cut], [Forest_algo]) can dispatch once and then stay inside one
    plane; ordinary consumers never need to match on them. *)
type t = Boxed of Boxed.t | Csr of Nw_graphs.Multigraph.t * Csr_backed.t

(** [create g ~colors] is the empty partial coloring of [g]'s edges with
    color space [0..colors-1], on the plane selected by
    [Nw_graphs.Backend.default ()] at this moment (dispatch happens once,
    here — never per operation). *)
val create : Nw_graphs.Multigraph.t -> colors:int -> t

val graph : t -> Nw_graphs.Multigraph.t
val colors : t -> int

val color : t -> int -> int option

(** Number of currently colored edges. *)
val colored_count : t -> int

(** [uncolored t] is the uncolored edge ids, ascending, in one freshly
    allocated array of exactly the right size. *)
val uncolored : t -> int array

(** [iter_uncolored f t] calls [f] on each uncolored edge id, ascending,
    without allocating. *)
val iter_uncolored : (int -> unit) -> t -> unit

(** [would_close_cycle t e c] holds when the endpoints of [e] are already
    connected inside the color-[c] forest by edges other than [e].
    O(α(n)) amortized via the per-color union-find; never runs a BFS. *)
val would_close_cycle : t -> int -> int -> bool

(** Same question answered by bidirectional BFS, bypassing the union-find
    cache entirely. Only for differential tests and benchmarks comparing
    the cached and uncached predicates. *)
val oracle_would_close_cycle : t -> int -> int -> bool

(** [set t e c] colors edge [e] with [c], first removing any previous color.
    @raise Invalid_argument if this closes a cycle in color [c]. *)
val set : t -> int -> int -> unit

(** [unset t e] removes the color of [e] (no-op when uncolored). *)
val unset : t -> int -> unit

(** [path t e c] is [C(e, c)]: the edge-id path joining the endpoints
    [u]–[v] of [e] inside the color-[c] forest, or [None] when they are
    disconnected. If [e] itself is colored [c] the result is [Some [e]].
    The disconnected case is decided in O(α(n)) without BFS; the
    connected case is extracted from the maintained rooted forest in
    O(path length), listed as the [u]-side half (from [u] towards the
    meeting point) followed by the [v]-side half (from [v] towards it) —
    consumers treat the result as an edge set. *)
val path : t -> int -> int -> int list option

(** [component_edges t v c] lists the edges of the color-[c] tree containing
    vertex [v] (empty when [v] is isolated in that color). *)
val component_edges : t -> int -> int -> int list

(** [component_size t v c] is the number of vertices of the color-[c] tree
    containing [v] (1 when isolated), from the union-find, in O(α(n)). *)
val component_size : t -> int -> int -> int

(** [component_edge_count t v c] is the number of edges of that tree
    (always [component_size - 1] while the forest invariant holds). *)
val component_edge_count : t -> int -> int -> int

(** Per-vertex incident edges of one color: [(neighbor, edge)] list. *)
val colored_incident : t -> int -> int -> (int * int) list

(** [iter_colored_incident t v c f] calls [f neighbor edge] for each
    color-[c] edge at [v], most recently colored first, without
    materializing a list. *)
val iter_colored_incident : t -> int -> int -> (int -> int -> unit) -> unit

(** Snapshot of all edge colors ([None] = uncolored). Fresh array. *)
val to_array : t -> int option array

(** [of_array g ~colors a] rebuilds a coloring from a snapshot, on the
    plane selected by [Nw_graphs.Backend.default ()].
    @raise Invalid_argument if some class is not a forest. *)
val of_array : Nw_graphs.Multigraph.t -> colors:int -> int option array -> t

(** Deep copy on the same plane as [t]. *)
val copy : t -> t

(** [extend t g'] transplants a live coloring onto [g'], a supergraph of
    [graph t] on the same vertex set whose first [m] edge ids carry the
    same endpoints; the new edge ids start uncolored. The per-color
    union-find and rooted spanning forests carry over untouched, so the
    cost is the array copies — O(m' + colors·n) — never a re-union or a
    BFS (the CSR arm additionally re-mirrors the plane, O(m')). This is
    the dynamic-graph entry point of the service layer: an edge insertion
    extends the coloring, then probes colors with {!connected} instead of
    re-running a decomposition. The result stays on [t]'s plane.
    @raise Invalid_argument when [g'] is not such a supergraph. *)
val extend : t -> Nw_graphs.Multigraph.t -> t

(** [connected t c u v]: are [u] and [v] connected inside the color-[c]
    forest? O(α(n)) amortized via the per-color union-find. Coloring a
    fresh [u]–[v] edge with [c] is safe iff [not (connected t c u v)].
    @raise Invalid_argument on an out-of-range color or vertex. *)
val connected : t -> int -> int -> int -> bool

(** [subgraph t c] is the color-[c] forest as a graph on all of [g]'s
    vertices, with the map from new edge ids to original ids. Always a
    [Multigraph], whatever the plane — the result feeds passes and
    artifacts that archive it. *)
val subgraph : t -> int -> Nw_graphs.Multigraph.t * int array

(** Process-wide query counters (atomic, shared across bench domains and
    both plane instances): union-find connectivity queries, BFS
    executions, lazy union-find rebuilds. The bench harness reports
    deltas per experiment. *)
module Counters : sig
  type snapshot = { uf_queries : int; bfs_runs : int; uf_rebuilds : int }

  val snapshot : unit -> snapshot
end
