module G = Nw_graphs.Multigraph

let to_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "colors %d\n" (Coloring.colors c));
  G.fold_edges
    (fun e _ _ () ->
      match Coloring.color c e with
      | Some col -> Buffer.add_string buf (Printf.sprintf "%d %d\n" e col)
      | None -> ())
    (Coloring.graph c) ();
  Buffer.contents buf

let of_string g s =
  let lines = String.split_on_char '\n' s in
  let colors = ref (-1) in
  let assignments = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if line <> "" then
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "colors"; k ] -> (
            match int_of_string_opt k with
            | Some k when k >= 0 && !colors < 0 -> colors := k
            | _ ->
                failwith
                  (Printf.sprintf "line %d: bad or duplicate colors header"
                     lineno))
        | [ e; c ] -> (
            match (int_of_string_opt e, int_of_string_opt c) with
            | Some e, Some c -> assignments := (e, c) :: !assignments
            | _ ->
                failwith (Printf.sprintf "line %d: malformed entry" lineno))
        | _ -> failwith (Printf.sprintf "line %d: malformed line" lineno))
    lines;
  if !colors < 0 then failwith "missing 'colors <k>' header";
  let coloring = Coloring.create g ~colors:!colors in
  List.iter
    (fun (e, c) ->
      if e < 0 || e >= G.m g then
        failwith (Printf.sprintf "edge id %d out of range" e);
      Coloring.set coloring e c)
    (List.rev !assignments);
  coloring

let write path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc

let read path g =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  try of_string g s
  with Failure msg -> failwith (Printf.sprintf "%s: %s" path msg)
