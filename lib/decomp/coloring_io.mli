(** Serialization of decompositions.

    Format: a header [colors <k>] then one [<edge_id> <color>] line per
    colored edge; [#] comments allowed. Together with the edge-list graph
    format this lets the CLI save a decomposition and re-verify it later
    (or verify one produced by another tool). *)

val to_string : Coloring.t -> string

(** [of_string g s] rebuilds the coloring over [g].
    @raise Failure with a line-numbered message on malformed input, and
    [Invalid_argument] if the assignment closes a monochromatic cycle. *)
val of_string : Nw_graphs.Multigraph.t -> string -> Coloring.t

val write : string -> Coloring.t -> unit
val read : string -> Nw_graphs.Multigraph.t -> Coloring.t
