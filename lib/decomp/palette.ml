module G = Nw_graphs.Multigraph

type t = { colors : int; q : int list array }

let full g k =
  if k < 0 then invalid_arg "Palette.full: negative color count";
  let all = List.init k (fun c -> c) in
  { colors = k; q = Array.make (G.m g) all }

let of_lists ~colors q =
  Array.iter
    (fun l ->
      let rec check = function
        | [] -> ()
        | [ c ] ->
            if c < 0 || c >= colors then
              invalid_arg "Palette.of_lists: color out of range"
        | c1 :: (c2 :: _ as rest) ->
            if c1 < 0 || c1 >= colors then
              invalid_arg "Palette.of_lists: color out of range";
            if c1 >= c2 then
              invalid_arg "Palette.of_lists: palette not sorted strict";
            check rest
      in
      check l)
    q;
  { colors; q = Array.copy q }

let color_space t = t.colors
let edges t = Array.length t.q
let get t e = t.q.(e)
let mem t e c = List.mem c t.q.(e)

let min_size t =
  if Array.length t.q = 0 then 0
  else Array.fold_left (fun acc l -> min acc (List.length l)) max_int t.q

let filter t f =
  { t with q = Array.mapi (fun e l -> List.filter (f e) l) t.q }
