(** Per-edge color palettes for list-forest decomposition.

    Colors are integers in [0 .. colors-1]. An edge may only ever receive a
    color from its palette [Q(e)] (condition (A5) of the paper's augmenting
    sequences). Ordinary k-coloring is the palette [Q(e) = 0..k-1]. *)

type t

(** [full g k]: every edge gets the palette [{0, .., k-1}]. *)
val full : Nw_graphs.Multigraph.t -> int -> t

(** [of_lists ~colors q]: explicit per-edge palettes; each list must be
    sorted, duplicate-free, and within range. *)
val of_lists : colors:int -> int list array -> t

(** Size of the color space [|C|]. *)
val color_space : t -> int

(** Number of edges covered. *)
val edges : t -> int

val get : t -> int -> int list
val mem : t -> int -> int -> bool

(** Smallest palette size over all edges; 0 when there are no edges. *)
val min_size : t -> int

(** [filter t f] keeps in each palette [Q(e)] only the colors [c] with
    [f e c = true]. *)
val filter : t -> (int -> int -> bool) -> t
