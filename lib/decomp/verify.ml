module G = Nw_graphs.Multigraph
module UF = Nw_graphs.Union_find

type report = (unit, string) result

let all reports =
  List.fold_left
    (fun acc r -> match acc with Error _ -> acc | Ok () -> r)
    (Ok ()) reports

let exn = function Ok () -> () | Error msg -> failwith msg

let classes_are_forests t ~allow_uncolored =
  let g = Coloring.graph t in
  let k = Coloring.colors t in
  let ufs = Array.init k (fun _ -> UF.create (G.n g)) in
  G.fold_edges
    (fun e u v acc ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match Coloring.color t e with
          | None ->
              if allow_uncolored then Ok ()
              else Error (Printf.sprintf "edge %d is uncolored" e)
          | Some c ->
              if c < 0 || c >= k then
                Error (Printf.sprintf "edge %d has out-of-range color %d" e c)
              else if UF.union ufs.(c) u v then Ok ()
              else
                Error
                  (Printf.sprintf "color %d contains a cycle through edge %d"
                     c e)))
    g (Ok ())

let forest_decomposition t = classes_are_forests t ~allow_uncolored:false
let partial_forest_decomposition t = classes_are_forests t ~allow_uncolored:true

let star_forest_decomposition t =
  match forest_decomposition t with
  | Error _ as e -> e
  | Ok () ->
      (* every colored component must be a star: for each vertex v and color
         c, if v has >= 2 incident c-edges then every c-neighbor of v must
         have exactly 1 incident c-edge; and no edge may join two vertices
         that both have degree >= 2 in color c. *)
      let g = Coloring.graph t in
      let k = Coloring.colors t in
      let deg = Array.make_matrix k (G.n g) 0 in
      G.fold_edges
        (fun e u v () ->
          ignore e;
          match Coloring.color t e with
          | None -> ()
          | Some c ->
              deg.(c).(u) <- deg.(c).(u) + 1;
              deg.(c).(v) <- deg.(c).(v) + 1)
        g ();
      G.fold_edges
        (fun e u v acc ->
          match acc with
          | Error _ -> acc
          | Ok () -> (
              match Coloring.color t e with
              | None -> Ok ()
              | Some c ->
                  if deg.(c).(u) >= 2 && deg.(c).(v) >= 2 then
                    Error
                      (Printf.sprintf
                         "color %d has a path of length 3 through edge %d" c e)
                  else Ok ()))
        g (Ok ())

let pseudo_forest_assignment g colors ~k =
  if Array.length colors <> G.m g then
    Error "assignment length does not match edge count"
  else begin
    let bad =
      G.fold_edges
        (fun e _ _ acc ->
          match acc with
          | Some _ -> acc
          | None ->
              if colors.(e) < 0 || colors.(e) >= k then Some e else None)
        g None
    in
    match bad with
    | Some e -> Error (Printf.sprintf "edge %d has out-of-range color" e)
    | None ->
        (* per class: components satisfy edges <= vertices; count with a
           union-find per class tracking component edge counts *)
        let result = ref (Ok ()) in
        for c = 0 to k - 1 do
          if !result = Ok () then begin
            let keep = Array.map (fun c' -> c' = c) colors in
            let sub, _ = G.subgraph_of_edges g keep in
            let label, comps = Nw_graphs.Traversal.components sub in
            let nv = Array.make comps 0 and ne = Array.make comps 0 in
            Array.iter (fun l -> nv.(l) <- nv.(l) + 1) label;
            G.fold_edges
              (fun _ u _ () -> ne.(label.(u)) <- ne.(label.(u)) + 1)
              sub ();
            for i = 0 to comps - 1 do
              if ne.(i) > nv.(i) then
                result :=
                  Error
                    (Printf.sprintf
                       "color %d has a component with %d edges on %d vertices"
                       c ne.(i) nv.(i))
            done
          end
        done;
        !result
  end

let respects_palette t palette =
  let g = Coloring.graph t in
  G.fold_edges
    (fun e _ _ acc ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match Coloring.color t e with
          | None -> Ok ()
          | Some c ->
              if Palette.mem palette e c then Ok ()
              else
                Error
                  (Printf.sprintf "edge %d colored %d outside its palette" e c)))
    g (Ok ())

let uses_at_most t k =
  let g = Coloring.graph t in
  G.fold_edges
    (fun e _ _ acc ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match Coloring.color t e with
          | Some c when c >= k ->
              Error (Printf.sprintf "edge %d uses color %d >= %d" e c k)
          | _ -> Ok ()))
    g (Ok ())

let max_forest_diameter t =
  let best = ref 0 in
  for c = 0 to Coloring.colors t - 1 do
    let forest, _ = Coloring.subgraph t c in
    let d = Nw_graphs.Traversal.tree_diameter forest in
    if d > !best then best := d
  done;
  !best

let colors_used t =
  let k = Coloring.colors t in
  let used = Array.make (max k 1) false in
  let g = Coloring.graph t in
  G.fold_edges
    (fun e _ _ () ->
      match Coloring.color t e with
      | None -> ()
      | Some c -> used.(c) <- true)
    g ();
  Array.fold_left (fun acc u -> if u then acc + 1 else acc) 0 used

let orientation_out_degree o k =
  let d = Nw_graphs.Orientation.max_out_degree o in
  if d <= k then Ok ()
  else Error (Printf.sprintf "max out-degree %d exceeds bound %d" d k)

let acyclic_orientation o =
  if Nw_graphs.Orientation.is_acyclic o then Ok ()
  else Error "orientation contains a directed cycle"
