(** Validity checkers for every decomposition produced by this library.

    All benchmark numbers are reported only after the corresponding output
    passed these checks, so the harness cannot silently report an invalid
    decomposition. Checkers return [Ok ()] or [Error reason]. *)

type report = (unit, string) result

(** Every edge colored, every color class a forest. *)
val forest_decomposition : Coloring.t -> report

(** Each color class a forest (uncolored edges allowed). *)
val partial_forest_decomposition : Coloring.t -> report

(** Every color class a star forest: each component of each color is a tree
    of diameter at most 2 with one center (edges all share a vertex). *)
val star_forest_decomposition : Coloring.t -> report

(** Pseudo-forest decompositions cannot live in {!Coloring} (it enforces
    acyclicity), so they are checked on a raw per-edge color assignment:
    every edge gets a color in [0..k-1] and each color class is a
    pseudo-forest — every connected component has at most one cycle,
    equivalently no more edges than vertices. *)
val pseudo_forest_assignment :
  Nw_graphs.Multigraph.t -> int array -> k:int -> report

(** Every colored edge uses a color from its palette. *)
val respects_palette : Coloring.t -> Palette.t -> report

(** [uses_at_most t k]: all colors in [0..k-1]. *)
val uses_at_most : Coloring.t -> int -> report

(** Largest strong diameter over all trees of all color classes. *)
val max_forest_diameter : Coloring.t -> int

(** Number of distinct colors actually used. *)
val colors_used : Coloring.t -> int

(** [orientation_out_degree o k]: max out-degree at most [k]. *)
val orientation_out_degree : Nw_graphs.Orientation.t -> int -> report

(** [acyclic_orientation o]: the orientation has no directed cycle. *)
val acyclic_orientation : Nw_graphs.Orientation.t -> report

(** Combine reports, keeping the first failure. *)
val all : report list -> report

(** [exn r] raises [Failure] on [Error]; for tests and examples. *)
val exn : report -> unit
