(* Typed artifacts flowing between pipeline passes. Each constructor is
   one kind of intermediate the paper's phases exchange: the input graph,
   H-partitions, network decompositions (clusterings), orientations,
   (partial) colorings, palettes, LLL side selections, leftover masks,
   per-algorithm stats, and the pseudo-forest assignment. *)

module G = Nw_graphs.Multigraph
module O = Nw_graphs.Orientation

type t =
  | Graph of G.t
  | Coloring of Nw_decomp.Coloring.t
  | Mask of bool array
  | Orientation of O.t
  | Partition of Nw_core.H_partition.t
  | Clustering of Nw_core.Net_decomp.t
  | Palette of Nw_decomp.Palette.t
  | Sides of bool array array
  | Fd_stats of Nw_core.Forest_algo.stats
  | Sfd_stats of Nw_core.Star_forest.stats
  | Assignment of int array * int
  | Flag of bool
  | Num of int

type kind =
  [ `Graph
  | `Coloring
  | `Mask
  | `Orientation
  | `Partition
  | `Clustering
  | `Palette
  | `Sides
  | `Fd_stats
  | `Sfd_stats
  | `Assignment
  | `Flag
  | `Num ]

let kind_of = function
  | Graph _ -> `Graph
  | Coloring _ -> `Coloring
  | Mask _ -> `Mask
  | Orientation _ -> `Orientation
  | Partition _ -> `Partition
  | Clustering _ -> `Clustering
  | Palette _ -> `Palette
  | Sides _ -> `Sides
  | Fd_stats _ -> `Fd_stats
  | Sfd_stats _ -> `Sfd_stats
  | Assignment _ -> `Assignment
  | Flag _ -> `Flag
  | Num _ -> `Num

let kind_name = function
  | `Graph -> "graph"
  | `Coloring -> "coloring"
  | `Mask -> "mask"
  | `Orientation -> "orientation"
  | `Partition -> "h-partition"
  | `Clustering -> "clustering"
  | `Palette -> "palette"
  | `Sides -> "sides"
  | `Fd_stats -> "fd-stats"
  | `Sfd_stats -> "sfd-stats"
  | `Assignment -> "assignment"
  | `Flag -> "flag"
  | `Num -> "num"

let kind_equal (a : kind) (b : kind) = String.equal (kind_name a) (kind_name b)

(* Deep-copy the artifacts that passes mutate in place (colorings, edge
   masks, LLL sides) so a checkpointed store stays frozen while the live
   run keeps mutating its own. Everything else is immutable after
   construction and can be shared. H-partitions in particular are private
   records that cannot be rebuilt outside their module — sharing is the
   only option, and it is safe because no pass mutates them. *)
let snapshot = function
  | Coloring c -> Coloring (Nw_decomp.Coloring.copy c)
  | Mask m -> Mask (Array.copy m)
  | Sides s -> Sides (Array.map Array.copy s)
  | ( Graph _ | Orientation _ | Partition _ | Clustering _ | Palette _
    | Fd_stats _ | Sfd_stats _ | Assignment _ | Flag _ | Num _ ) as a ->
      a
