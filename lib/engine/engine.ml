module Rounds = Nw_localsim.Rounds
module Dpool = Nw_localsim.Dpool
module Obs = Nw_obs.Obs
module Flight = Nw_obs.Flight

exception Engine_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Engine_error s)) fmt

type ctx = { mutable rng : Random.State.t; rounds : Rounds.t }

let ctx ~rng ~rounds = { rng; rounds }

type pass = {
  name : string;
  reads : (string * Artifact.kind) list;
  writes : (string * Artifact.kind) list;
  run : ctx -> Store.t -> Store.t;
}

type pipeline = { pl_name : string; passes : pass list }

type checkpoint = {
  ck_pipeline : string;
  ck_completed : int;
  ck_store : Store.t;
  ck_rng : Random.State.t;
}

let check_bindings ~pipeline ~pass ~what store bindings =
  List.iter
    (fun (key, kind) ->
      match Store.find store key with
      | None ->
          error "pipeline %s, pass %s: missing %s artifact \"%s\"" pipeline
            pass what key
      | Some a ->
          let got = Artifact.kind_of a in
          if not (Artifact.kind_equal got kind) then
            error
              "pipeline %s, pass %s: %s artifact \"%s\" has kind %s, \
               declared %s"
              pipeline pass what key (Artifact.kind_name got)
              (Artifact.kind_name kind))
    bindings

let run ?resume ?checkpoint ctx pipeline ~init =
  let num_passes = List.length pipeline.passes in
  let start, store0 =
    match resume with
    | None -> (0, init)
    | Some ck ->
        if not (String.equal ck.ck_pipeline pipeline.pl_name) then
          error "resume: checkpoint is for pipeline %s, not %s"
            ck.ck_pipeline pipeline.pl_name;
        if ck.ck_completed < 0 || ck.ck_completed > num_passes then
          error "resume: checkpoint pass index %d out of range (0..%d)"
            ck.ck_completed num_passes;
        ctx.rng <- Random.State.copy ck.ck_rng;
        (ck.ck_completed, Store.snapshot ck.ck_store)
  in
  let store = ref store0 in
  List.iteri
    (fun i p ->
      if i >= start then begin
        Obs.span
          ("pass:" ^ p.name)
          ~attrs:
            [ ("pipeline", Obs.Str pipeline.pl_name); ("index", Obs.Int i) ]
        @@ fun () ->
        (* resource attribution: quick_stat deltas on this domain plus
           the Dpool accumulators for helper-domain allocation. Guarded
           by the Obs switch so disabled runs stay zero-cost, and
           carried as span attrs so BENCH phase records are unchanged. *)
        let res0 =
          if Obs.enabled () then
            Some
              ( Gc.quick_stat (),
                Dpool.worker_minor_words (),
                Dpool.worker_major_words () )
          else None
        in
        let before = Rounds.total ctx.rounds in
        let out =
          try
            check_bindings ~pipeline:pipeline.pl_name ~pass:p.name
              ~what:"input" !store p.reads;
            let out = p.run ctx !store in
            check_bindings ~pipeline:pipeline.pl_name ~pass:p.name
              ~what:"output" out p.writes;
            out
          with e ->
            (* post-mortem before the span unwinds: name the failing
               pass, then flush the flight recorder if a sink is armed *)
            Flight.mark "engine.pass_failed"
              [
                ("pipeline", pipeline.pl_name);
                ("pass", p.name);
                ("index", string_of_int i);
                ("error", Printexc.to_string e);
              ];
            Flight.trigger ~reason:"pass-failed" ();
            raise e
        in
        Obs.set_attr "pass_rounds"
          (Obs.Int (Rounds.total ctx.rounds - before));
        (match res0 with
        | None -> ()
        | Some (s0, wmin0, wmaj0) ->
            let s1 = Gc.quick_stat () in
            Obs.set_attr "pass_minor_words"
              (Obs.Float (s1.Gc.minor_words -. s0.Gc.minor_words));
            Obs.set_attr "pass_major_words"
              (Obs.Float (s1.Gc.major_words -. s0.Gc.major_words));
            Obs.set_attr "pass_promoted_words"
              (Obs.Float (s1.Gc.promoted_words -. s0.Gc.promoted_words));
            Obs.set_attr "pass_minor_collections"
              (Obs.Int (s1.Gc.minor_collections - s0.Gc.minor_collections));
            Obs.set_attr "pass_major_collections"
              (Obs.Int (s1.Gc.major_collections - s0.Gc.major_collections));
            Obs.set_attr "top_heap_words" (Obs.Int s1.Gc.top_heap_words);
            Obs.set_attr "pass_worker_minor_words"
              (Obs.Int (Dpool.worker_minor_words () - wmin0));
            Obs.set_attr "pass_worker_major_words"
              (Obs.Int (Dpool.worker_major_words () - wmaj0)));
        store := out;
        match checkpoint with
        | None -> ()
        | Some save ->
            Flight.mark "engine.checkpoint"
              [
                ("pipeline", pipeline.pl_name);
                ("pass", p.name);
                ("id", Printf.sprintf "%s#%d" pipeline.pl_name (i + 1));
              ];
            save
              {
                ck_pipeline = pipeline.pl_name;
                ck_completed = i + 1;
                ck_store = Store.snapshot out;
                ck_rng = Random.State.copy ctx.rng;
              }
      end)
    pipeline.passes;
  !store

module Smap = Map.Make (String)

let validate ?(initial = []) pipeline =
  let add map (key, kind) = Smap.add key kind map in
  let check map pass_name bindings =
    List.fold_left
      (fun acc (key, kind) ->
        match acc with
        | Error _ -> acc
        | Ok () -> (
            match Smap.find_opt key map with
            | None ->
                Error
                  (Printf.sprintf
                     "pipeline %s, pass %s: no prior pass writes \"%s\""
                     pipeline.pl_name pass_name key)
            | Some k when not (Artifact.kind_equal k kind) ->
                Error
                  (Printf.sprintf
                     "pipeline %s, pass %s: \"%s\" flows as %s but is read \
                      as %s"
                     pipeline.pl_name pass_name key (Artifact.kind_name k)
                     (Artifact.kind_name kind))
            | Some _ -> acc))
      (Ok ()) bindings
  in
  let rec go map = function
    | [] -> Ok ()
    | p :: rest -> (
        match check map p.name p.reads with
        | Error _ as e -> e
        | Ok () -> go (List.fold_left add map p.writes) rest)
  in
  go (List.fold_left add Smap.empty initial) pipeline.passes

(* FNV-1a, 64-bit: stable across runs and platforms, cheap, and good
   enough to detect any registry or pass-list drift in bench records *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let digest_int64 pipeline =
  let h = ref (fnv_string fnv_offset pipeline.pl_name) in
  List.iter
    (fun p ->
      h := fnv_string !h ("|" ^ p.name);
      List.iter
        (fun (key, kind) ->
          h := fnv_string !h ("<" ^ key ^ ":" ^ Artifact.kind_name kind))
        p.reads;
      List.iter
        (fun (key, kind) ->
          h := fnv_string !h (">" ^ key ^ ":" ^ Artifact.kind_name kind))
        p.writes)
    pipeline.passes;
  !h

let digest pipeline = Printf.sprintf "%016Lx" (digest_int64 pipeline)
