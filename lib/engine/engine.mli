(** The phase-pipeline engine.

    A {!pipeline} is an ordered list of {!pass}es; each pass declares the
    artifact keys (and kinds) it reads and writes and transforms a
    {!Store.t}. {!run} executes the passes in order and owns the
    cross-cutting concerns the composite algorithms used to hand-roll:

    - an [Obs] span ["pass:<name>"] per pass, tagged with the pipeline
      name, the pass index, and the rounds charged by the pass
      ([pass_rounds]);
    - read/write contract checks against the declared artifact kinds;
    - optional checkpoints at every pass boundary (snapshot of the store
      plus the RNG state), from which a later {!run} can resume — the
      crash-recovery hook used by the chaos harness.

    Checkpointing is strictly opt-in: when no [~checkpoint] callback is
    given, {!run} never copies an artifact, so fault-free executions are
    byte-identical to the hand-written composites (including the
    [Coloring] allocation counters). *)

exception Engine_error of string

(** Mutable execution context: the RNG is a field (not a closure capture)
    so resuming from a checkpoint can restore the saved generator state. *)
type ctx = { mutable rng : Random.State.t; rounds : Nw_localsim.Rounds.t }

val ctx : rng:Random.State.t -> rounds:Nw_localsim.Rounds.t -> ctx

type pass = {
  name : string;
  reads : (string * Artifact.kind) list;
  writes : (string * Artifact.kind) list;
  run : ctx -> Store.t -> Store.t;
}

type pipeline = { pl_name : string; passes : pass list }

(** A pass-boundary snapshot: the pipeline it belongs to, how many passes
    had completed, the store at that point (mutable artifacts deep-copied)
    and the RNG state to restart from. *)
type checkpoint = {
  ck_pipeline : string;
  ck_completed : int;
  ck_store : Store.t;
  ck_rng : Random.State.t;
}

(** [run ?resume ?checkpoint ctx pipeline ~init] executes the pipeline over
    the initial store. With [~checkpoint:save], [save] is called after
    every completed pass with a fresh {!checkpoint}. With [~resume:ck],
    execution restarts after pass [ck.ck_completed] from the checkpointed
    store and RNG — [init] is ignored in that case.
    @raise Engine_error on contract violations (missing or wrongly-kinded
    artifacts, checkpoint/pipeline mismatch). *)
val run :
  ?resume:checkpoint ->
  ?checkpoint:(checkpoint -> unit) ->
  ctx ->
  pipeline ->
  init:Store.t ->
  Store.t

(** Static kind-flow check: every read must be written by an earlier pass
    (or listed in [initial], the contract of the initial store) with the
    matching kind. *)
val validate :
  ?initial:(string * Artifact.kind) list ->
  pipeline ->
  (unit, string) result

(** Stable FNV-1a hash of the pipeline shape (name, ordered pass names and
    their read/write contracts) as 16 lowercase hex digits. Stamped into
    bench records so trajectory comparisons can detect pipeline drift. *)
val digest : pipeline -> string
