(* Declarative pipelines for every composite algorithm in lib/core (and
   the baselines the CLI exposes). Each builder derives its parameters with
   the same plan functions as the hand-written composite and issues the
   same sequence of rng draws and round charges, so a fault-free engine run
   is byte-identical to the direct call — colorings, ledgers, and counters
   alike. Builders are deterministic: no randomness is consumed until
   [Engine.run], which is what makes resuming from a checkpoint sound. *)

module G = Nw_graphs.Multigraph
module Arb = Nw_graphs.Arboricity
module Palette = Nw_decomp.Palette
module Verify = Nw_decomp.Verify
module FA = Nw_core.Forest_algo
module SF = Nw_core.Star_forest
module Cut = Nw_core.Cut
module Lsfd = Nw_core.Lsfd
module H_partition = Nw_core.H_partition
module Net_decomp = Nw_core.Net_decomp
module Color_split = Nw_core.Color_split
module Diameter_reduction = Nw_core.Diameter_reduction
module Recolor = Nw_core.Recolor
module Orient = Nw_core.Orient
module Pseudo_forest = Nw_core.Pseudo_forest
module GW = Nw_baseline.Gabow_westermann

open Engine

let k_graph = ("graph", `Graph)
let k_palette = ("palette", `Palette)
let k_coloring = ("coloring", `Coloring)
let k_removed = ("removed", `Mask)
let k_clustering = ("clustering", `Clustering)
let k_orientation = ("orientation", `Orientation)
let k_fd_stats = ("fd_stats", `Fd_stats)
let k_sfd_stats = ("sfd_stats", `Sfd_stats)

(* a pass that just seeds the store with a build-time-derived artifact *)
let const_pass name key artifact =
  {
    name;
    reads = [];
    writes = [ (key, Artifact.kind_of artifact) ];
    run = (fun _ctx store -> Store.put store key artifact);
  }

(* The Theorem 4.5 core (Forest_algo.decompose_with_leftover) as two
   passes: network decomposition of G^(2(R+R')), then the class-by-class
   CUT + augmentation. [palette_key] names the palette to color from. *)
let partial_passes ~prefix ~palette_key ~epsilon ~alpha ~cut ~radii =
  let r, r' = radii in
  let d = r + r' in
  [
    {
      name = prefix ^ ".net_decomp";
      reads = [ k_graph ];
      writes = [ k_clustering ];
      run =
        (fun ctx store ->
          let g = Store.graph store "graph" in
          let nd =
            Net_decomp.compute g ~rng:ctx.rng ~rounds:ctx.rounds
              ~distance:(2 * d)
          in
          Store.put store "clustering" (Artifact.Clustering nd));
    };
    {
      name = prefix ^ ".partial_color";
      reads = [ k_graph; (palette_key, `Palette); k_clustering ];
      writes = [ k_coloring; k_removed; k_fd_stats ];
      run =
        (fun ctx store ->
          let g = Store.graph store "graph" in
          let palette = Store.palette store palette_key in
          let nd = Store.clustering store "clustering" in
          let coloring, removed, stats =
            FA.partial_color g palette ~epsilon ~alpha ~cut ~radii ~nd
              ~rng:ctx.rng ~rounds:ctx.rounds
          in
          let store = Store.put store "coloring" (Artifact.Coloring coloring) in
          let store = Store.put store "removed" (Artifact.Mask removed) in
          Store.put store "fd_stats" (Artifact.Fd_stats stats));
    };
  ]

let partial g palette ~epsilon ~alpha ~cut ~radii =
  FA.check_epsilon epsilon;
  ignore g;
  {
    pl_name = "partial";
    passes =
      const_pass "fd.plan" "palette" (Artifact.Palette palette)
      :: partial_passes ~prefix:"fd" ~palette_key:"palette" ~epsilon ~alpha
           ~cut ~radii;
  }

(* Theorem 4.6 (Forest_algo.forest_decomposition): plan, partial coloring,
   leftover recoloring, optional Corollary 2.5 diameter reduction. *)
let fd_passes g ~epsilon ~alpha ~cut ~radii ~diameter =
  let eps', palette, radii = FA.fd_plan g ~epsilon ~alpha ~cut ~radii in
  let recolor =
    {
      name = "fd.recolor";
      reads = [ k_coloring; k_removed ];
      writes = [ k_coloring ];
      run =
        (fun ctx store ->
          let coloring = Store.coloring store "coloring" in
          let removed = Store.mask store "removed" in
          let combined, _fresh =
            Recolor.append_forests coloring removed ~rounds:ctx.rounds
          in
          Store.put store "coloring" (Artifact.Coloring combined));
    }
  in
  let reduce =
    match diameter with
    | `Unbounded -> []
    | (`Log_over_eps | `Inv_eps) as target ->
        [
          {
            name = "fd.diameter_reduce";
            reads = [ k_graph; k_coloring ];
            writes = [ k_coloring ];
            run =
              (fun ctx store ->
                let g = Store.graph store "graph" in
                let combined = Store.coloring store "coloring" in
                let ids = Array.init (G.n g) (fun v -> v) in
                let reduced, _extra =
                  Diameter_reduction.reduce combined ~target ~epsilon:eps'
                    ~alpha ~ids ~rng:ctx.rng ~rounds:ctx.rounds
                in
                Store.put store "coloring" (Artifact.Coloring reduced));
          };
        ]
  in
  (const_pass "fd.plan" "palette" (Artifact.Palette palette)
   :: partial_passes ~prefix:"fd" ~palette_key:"palette" ~epsilon:eps' ~alpha
        ~cut ~radii)
  @ (recolor :: reduce)

let augment g ~epsilon ~alpha ?(cut = Cut.Depth_mod) ?radii
    ?(diameter = `Unbounded) () =
  FA.check_epsilon epsilon;
  { pl_name = "augment"; passes = fd_passes g ~epsilon ~alpha ~cut ~radii ~diameter }

(* Theorem 4.10 (Forest_algo.list_forest_decomposition): vertex-color
   splitting, partial LFD on the side-0 palettes, diameter shrinking, and
   the side-1 leftover pass. *)
let lfd g palette ~epsilon ~alpha ?(split = `Mpx) ?radii () =
  FA.check_epsilon epsilon;
  let colors = Palette.color_space palette in
  let eps', radii = FA.lfd_plan g ~epsilon ~alpha ~radii in
  let split_pass =
    {
      name = "lfd.split";
      reads = [ k_graph ];
      writes = [ ("split", `Sides) ];
      run =
        (fun ctx store ->
          let g = Store.graph store "graph" in
          let st =
            match split with
            | `Mpx ->
                Color_split.mpx_split g ~colors ~epsilon ~rng:ctx.rng
                  ~rounds:ctx.rounds
            | `Lll ->
                Color_split.lll_split g ~colors ~epsilon ~alpha ~rng:ctx.rng
                  ~rounds:ctx.rounds
          in
          Store.put store "split" (Artifact.Sides st.Color_split.side));
    }
  in
  let palettes_pass =
    {
      name = "lfd.palettes";
      reads = [ k_graph; ("split", `Sides) ];
      writes = [ k_palette; ("q1", `Palette) ];
      run =
        (fun _ctx store ->
          let g = Store.graph store "graph" in
          let side = Store.sides store "split" in
          let st = { Color_split.colors; side } in
          let q0, q1 = Color_split.induced_palettes g st palette in
          let store = Store.put store "palette" (Artifact.Palette q0) in
          Store.put store "q1" (Artifact.Palette q1));
    }
  in
  let shrink =
    {
      name = "lfd.shrink";
      reads = [ k_graph; k_coloring; k_removed ];
      writes = [ k_coloring; k_removed ];
      run =
        (fun ctx store ->
          let g = Store.graph store "graph" in
          let phi0 = Store.coloring store "coloring" in
          let removed = Store.mask store "removed" in
          let eligible = Array.make (G.m g) true in
          let deleted =
            Diameter_reduction.delete_long_paths phi0 ~eligible ~epsilon:eps'
              ~alpha ~rng:ctx.rng ~rounds:ctx.rounds
          in
          List.iter (fun e -> removed.(e) <- true) deleted;
          store);
    }
  in
  let leftover =
    {
      name = "lfd.leftover";
      reads = [ k_graph; k_coloring; ("q1", `Palette); k_removed; k_fd_stats ];
      writes = [ k_coloring; k_fd_stats ];
      run =
        (fun ctx store ->
          let g = Store.graph store "graph" in
          let phi0 = Store.coloring store "coloring" in
          let q1 = Store.palette store "q1" in
          let removed = Store.mask store "removed" in
          let stats = Store.fd_stats store "fd_stats" in
          let final =
            FA.lfd_leftover g ~colors ~phi0 ~q1 ~removed ~rng:ctx.rng
              ~rounds:ctx.rounds
          in
          let leftover_edges =
            Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 removed
          in
          let store = Store.put store "coloring" (Artifact.Coloring final) in
          Store.put store "fd_stats"
            (Artifact.Fd_stats { stats with FA.leftover_edges }));
    }
  in
  {
    pl_name = "lfd";
    passes =
      (split_pass :: palettes_pass
       :: partial_passes ~prefix:"lfd" ~palette_key:"palette" ~epsilon:eps'
            ~alpha ~cut:Cut.Diam_reduce ~radii)
      @ [ shrink; leftover ];
  }

(* Theorem 2.3 (Lsfd.distributed): H-partition, acyclic orientation,
   network decomposition of G^3, layered list coloring. *)
let lsfd g palette ~epsilon ~alpha_star =
  Lsfd.check_palettes g palette ~epsilon ~alpha_star;
  {
    pl_name = "lsfd";
    passes =
      [
        const_pass "lsfd.plan" "palette" (Artifact.Palette palette);
        {
          name = "lsfd.h_partition";
          reads = [ k_graph ];
          writes = [ ("partition", `Partition) ];
          run =
            (fun ctx store ->
              let g = Store.graph store "graph" in
              let hp =
                H_partition.compute g ~epsilon:(epsilon /. 10.) ~alpha_star
                  ~rounds:ctx.rounds
              in
              Store.put store "partition" (Artifact.Partition hp));
        };
        {
          name = "lsfd.orient";
          reads = [ k_graph; ("partition", `Partition) ];
          writes = [ k_orientation ];
          run =
            (fun _ctx store ->
              let g = Store.graph store "graph" in
              let hp = Store.partition store "partition" in
              let ids = Array.init (G.n g) (fun v -> v) in
              Store.put store "orientation"
                (Artifact.Orientation (H_partition.orientation g hp ~ids)));
        };
        {
          name = "lsfd.net_decomp";
          reads = [ k_graph ];
          writes = [ k_clustering ];
          run =
            (fun ctx store ->
              let g = Store.graph store "graph" in
              let nd =
                Net_decomp.compute g ~rng:ctx.rng ~rounds:ctx.rounds
                  ~distance:3
              in
              Store.put store "clustering" (Artifact.Clustering nd));
        };
        {
          name = "lsfd.color";
          reads =
            [
              k_graph;
              k_palette;
              ("partition", `Partition);
              k_orientation;
              k_clustering;
            ];
          writes = [ k_coloring ];
          run =
            (fun ctx store ->
              let g = Store.graph store "graph" in
              let palette = Store.palette store "palette" in
              let hp = Store.partition store "partition" in
              let orientation = Store.orientation store "orientation" in
              let nd = Store.clustering store "clustering" in
              let coloring =
                Lsfd.layered_color g palette ~hp ~orientation ~nd
                  ~rounds:ctx.rounds
              in
              Store.put store "coloring" (Artifact.Coloring coloring));
        };
      ];
  }

(* Theorem 5.4(1) (Star_forest.sfd) given an orientation in the store:
   LLL color-set selection, matching realization, leftover star mop-up. *)
let sfd_passes ~epsilon ~alpha ~ids =
  [
    {
      name = "sfd.select";
      reads = [ k_graph; k_orientation ];
      writes = [ ("sides", `Sides); ("converged", `Flag) ];
      run =
        (fun ctx store ->
          let g = Store.graph store "graph" in
          let orientation = Store.orientation store "orientation" in
          let sides, converged =
            SF.sfd_select g ~epsilon ~alpha ~orientation ~rng:ctx.rng
              ~rounds:ctx.rounds
          in
          let store = Store.put store "sides" (Artifact.Sides sides) in
          Store.put store "converged" (Artifact.Flag converged));
    };
    {
      name = "sfd.realize";
      reads = [ k_graph; k_orientation; ("sides", `Sides) ];
      writes = [ k_coloring; ("leftover", `Mask); ("max_def", `Num) ];
      run =
        (fun ctx store ->
          let g = Store.graph store "graph" in
          let orientation = Store.orientation store "orientation" in
          let sides = Store.sides store "sides" in
          let coloring, leftover, max_def =
            SF.sfd_realize g ~epsilon ~alpha ~orientation ~sides
              ~rounds:ctx.rounds
          in
          let store = Store.put store "coloring" (Artifact.Coloring coloring) in
          let store = Store.put store "leftover" (Artifact.Mask leftover) in
          Store.put store "max_def" (Artifact.Num max_def));
    };
    {
      name = "sfd.append";
      reads =
        [
          k_coloring;
          ("leftover", `Mask);
          ("converged", `Flag);
          ("max_def", `Num);
        ];
      writes = [ k_coloring; k_sfd_stats ];
      run =
        (fun ctx store ->
          let coloring = Store.coloring store "coloring" in
          let leftover = Store.mask store "leftover" in
          let converged = Store.flag store "converged" in
          let max_def = Store.num store "max_def" in
          let combined, stats =
            SF.sfd_finish coloring leftover ~max_def ~converged ~ids
              ~rounds:ctx.rounds
          in
          let store = Store.put store "coloring" (Artifact.Coloring combined) in
          Store.put store "sfd_stats" (Artifact.Sfd_stats stats));
    };
  ]

let sfd ~epsilon ~alpha ~ids =
  { pl_name = "sfd"; passes = sfd_passes ~epsilon ~alpha ~ids }

(* the CLI's `star` recipe: exact arboricity witness, orient along it,
   then the Theorem 5.4(1) star-forest decomposition *)
let star g ~epsilon ~alpha =
  let ids = Array.init (G.n g) (fun v -> v) in
  {
    pl_name = "star";
    passes =
      {
        name = "star.exact_fd";
        reads = [ k_graph ];
        writes = [ ("exact_fd", `Coloring) ];
        run =
          (fun _ctx store ->
            let g = Store.graph store "graph" in
            let _, fd = GW.arboricity g in
            Store.put store "exact_fd" (Artifact.Coloring fd));
      }
      :: {
           name = "star.orient";
           reads = [ ("exact_fd", `Coloring) ];
           writes = [ k_orientation ];
           run =
             (fun ctx store ->
               let fd = Store.coloring store "exact_fd" in
               Store.put store "orientation"
                 (Artifact.Orientation
                    (Orient.of_forest_decomposition fd ~rounds:ctx.rounds)));
         }
      :: sfd_passes ~epsilon ~alpha ~ids;
  }

(* Theorem 5.4(2) (Star_forest.lsfd) given an orientation in the store *)
let star_list palette ~epsilon =
  {
    pl_name = "star-list";
    passes =
      [
        const_pass "sfd.plan" "palette" (Artifact.Palette palette);
        {
          name = "sfd.select_lists";
          reads = [ k_graph; k_palette; k_orientation ];
          writes = [ ("sides", `Sides) ];
          run =
            (fun ctx store ->
              let g = Store.graph store "graph" in
              let palette = Store.palette store "palette" in
              let orientation = Store.orientation store "orientation" in
              let sides =
                SF.lsfd_select g palette ~epsilon ~orientation ~rng:ctx.rng
                  ~rounds:ctx.rounds
              in
              Store.put store "sides" (Artifact.Sides sides));
        };
        {
          name = "sfd.realize_lists";
          reads = [ k_graph; k_palette; k_orientation; ("sides", `Sides) ];
          writes = [ k_coloring; k_sfd_stats ];
          run =
            (fun ctx store ->
              let g = Store.graph store "graph" in
              let palette = Store.palette store "palette" in
              let orientation = Store.orientation store "orientation" in
              let sides = Store.sides store "sides" in
              let coloring, stats =
                SF.lsfd_realize g palette ~orientation ~sides
                  ~rounds:ctx.rounds
              in
              let store =
                Store.put store "coloring" (Artifact.Coloring coloring)
              in
              Store.put store "sfd_stats" (Artifact.Sfd_stats stats));
        };
      ];
  }

(* Corollary 1.1 (Orient.orientation): Theorem 4.6 plus tree rooting *)
let orientation g ~epsilon ~alpha ?(cut = Cut.Depth_mod) ?radii () =
  FA.check_epsilon epsilon;
  let root =
    {
      name = "orient.root";
      reads = [ k_coloring ];
      writes = [ k_orientation ];
      run =
        (fun ctx store ->
          let c = Store.coloring store "coloring" in
          Store.put store "orientation"
            (Artifact.Orientation
               (Orient.of_forest_decomposition c ~rounds:ctx.rounds)));
    }
  in
  {
    pl_name = "orientation";
    passes =
      fd_passes g ~epsilon ~alpha ~cut ~radii ~diameter:`Unbounded @ [ root ];
  }

(* Corollary 1.1 pseudo-forests (Pseudo_forest.decompose) *)
let pseudo g ~epsilon ~alpha =
  let o = orientation g ~epsilon ~alpha () in
  let assign =
    {
      name = "pseudo.assign";
      reads = [ k_graph; k_orientation ];
      writes = [ ("assignment", `Assignment) ];
      run =
        (fun _ctx store ->
          let g = Store.graph store "graph" in
          let o = Store.orientation store "orientation" in
          let assignment, k = Pseudo_forest.of_orientation o in
          (match Verify.pseudo_forest_assignment g assignment ~k with
          | Ok () -> ()
          | Error msg -> failwith ("Pseudo_forest.decompose: " ^ msg));
          Store.put store "assignment" (Artifact.Assignment (assignment, k)));
    }
  in
  { pl_name = "pseudo"; passes = o.passes @ [ assign ] }

(* centralized baselines, each a single pass *)

let single pl_name name ~writes run = { pl_name; passes = [ { name; reads = [ k_graph ]; writes; run } ] }

let exact () =
  single "exact" "exact.gw" ~writes:[ k_coloring ] (fun _ctx store ->
      let g = Store.graph store "graph" in
      let _, c = GW.arboricity g in
      Store.put store "coloring" (Artifact.Coloring c))

let greedy () =
  single "greedy" "greedy.color" ~writes:[ k_coloring ] (fun _ctx store ->
      let g = Store.graph store "graph" in
      Store.put store "coloring"
        (Artifact.Coloring (Nw_baseline.Greedy_forest.greedy g)))

let be ~epsilon =
  single "be" "be.decompose" ~writes:[ k_coloring ] (fun ctx store ->
      let g = Store.graph store "graph" in
      let alpha_star, _ = Arb.pseudo_arboricity g in
      let c =
        Nw_baseline.Barenboim_elkin.decompose g ~epsilon ~alpha_star
          ~rng:ctx.rng ~rounds:ctx.rounds
      in
      Store.put store "coloring" (Artifact.Coloring c))

let amr () =
  single "amr-star" "amr.split" ~writes:[ k_coloring ] (fun _ctx store ->
      let g = Store.graph store "graph" in
      let c, _ = Nw_baseline.Amr_star.decompose g in
      Store.put store "coloring" (Artifact.Coloring c))
