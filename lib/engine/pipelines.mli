(** Declarative pipelines for the composite algorithms of [lib/core] and
    the CLI-facing baselines.

    Every builder mirrors its hand-written composite exactly — the same
    plan functions, the same order of rng draws and round charges — so a
    fault-free {!Engine.run} is byte-identical to the direct call. Builders
    consume no randomness themselves; all nondeterminism happens inside
    passes, which is what makes checkpoint/resume sound.

    Store conventions: the initial store must bind ["graph"]; results land
    under ["coloring"] (plus ["removed"]/["fd_stats"] for the forest
    algorithms, ["sfd_stats"] for the star-forest ones, ["orientation"]
    and ["assignment"] for the orientation pipelines). *)

(** Theorem 4.5 ([Forest_algo.decompose_with_leftover]): partial LFD from
    an explicit palette; leaves ["coloring"], ["removed"], ["fd_stats"]. *)
val partial :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  alpha:int ->
  cut:Nw_core.Cut.rule ->
  radii:int * int ->
  Engine.pipeline

(** Theorem 4.6 ([Forest_algo.forest_decomposition]). *)
val augment :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  ?cut:Nw_core.Cut.rule ->
  ?radii:int * int ->
  ?diameter:[ `Unbounded | `Log_over_eps | `Inv_eps ] ->
  unit ->
  Engine.pipeline

(** Theorem 4.10 ([Forest_algo.list_forest_decomposition]). *)
val lfd :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  alpha:int ->
  ?split:[ `Mpx | `Lll ] ->
  ?radii:int * int ->
  unit ->
  Engine.pipeline

(** Theorem 2.3 ([Lsfd.distributed]).
    @raise Invalid_argument at build time when palettes are too small. *)
val lsfd :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  alpha_star:int ->
  Engine.pipeline

(** Theorem 5.4(1) ([Star_forest.sfd]); the initial store must also bind
    ["orientation"]. *)
val sfd : epsilon:float -> alpha:int -> ids:int array -> Engine.pipeline

(** The CLI's [star] recipe: exact Gabow–Westermann forest decomposition,
    orientation along it, then {!sfd}. *)
val star :
  Nw_graphs.Multigraph.t -> epsilon:float -> alpha:int -> Engine.pipeline

(** Theorem 5.4(2) ([Star_forest.lsfd]); the initial store must also bind
    ["orientation"]. *)
val star_list : Nw_decomp.Palette.t -> epsilon:float -> Engine.pipeline

(** Corollary 1.1 ([Orient.orientation]); leaves ["orientation"] (and the
    intermediate ["coloring"]/["fd_stats"]). *)
val orientation :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  ?cut:Nw_core.Cut.rule ->
  ?radii:int * int ->
  unit ->
  Engine.pipeline

(** Corollary 1.1 pseudo-forests ([Pseudo_forest.decompose]); leaves
    ["assignment"]. *)
val pseudo :
  Nw_graphs.Multigraph.t -> epsilon:float -> alpha:int -> Engine.pipeline

(** Centralized baselines, one pass each. *)

val exact : unit -> Engine.pipeline
val greedy : unit -> Engine.pipeline
val be : epsilon:float -> Engine.pipeline
val amr : unit -> Engine.pipeline
