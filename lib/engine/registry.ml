module G = Nw_graphs.Multigraph
module Arb = Nw_graphs.Arboricity
module Palette = Nw_decomp.Palette

type spec = { graph : G.t; epsilon : float; alpha : int }
type yields = Coloring_out | Orientation_out | Pseudo_out

type entry = {
  name : string;
  description : string;
  star : bool;
  reports_rounds : bool;
  yields : yields;
  build : spec -> Engine.pipeline;
}

(* the `lsfd` CLI recipe sizes its own palette from the graph's exact
   pseudo-arboricity, like the paper's Theorem 2.3 statement *)
let build_lsfd { graph = g; epsilon; alpha = _ } =
  let alpha_star, _ = Arb.pseudo_arboricity g in
  let k =
    int_of_float (floor ((4.0 +. epsilon) *. float_of_int alpha_star)) - 1
  in
  let palette = Palette.full g k in
  Pipelines.lsfd g palette ~epsilon ~alpha_star

let all =
  [
    {
      name = "exact";
      description = "exact arboricity witness (Gabow-Westermann)";
      star = false;
      reports_rounds = false;
      yields = Coloring_out;
      build = (fun s -> ignore s; Pipelines.exact ());
    };
    {
      name = "greedy";
      description = "centralized greedy forest coloring";
      star = false;
      reports_rounds = false;
      yields = Coloring_out;
      build = (fun s -> ignore s; Pipelines.greedy ());
    };
    {
      name = "be";
      description = "Barenboim-Elkin (2+eps)-approximate FD [BE10]";
      star = false;
      reports_rounds = true;
      yields = Coloring_out;
      build = (fun s -> Pipelines.be ~epsilon:s.epsilon);
    };
    {
      name = "augment";
      description = "Theorem 4.6 (1+eps)-approximate forest decomposition";
      star = false;
      reports_rounds = true;
      yields = Coloring_out;
      build =
        (fun s ->
          Pipelines.augment s.graph ~epsilon:s.epsilon ~alpha:s.alpha ());
    };
    {
      name = "star";
      description = "Theorem 5.4(1) star-forest decomposition";
      star = true;
      reports_rounds = true;
      yields = Coloring_out;
      build =
        (fun s -> Pipelines.star s.graph ~epsilon:s.epsilon ~alpha:s.alpha);
    };
    {
      name = "amr-star";
      description = "folklore 2-alpha star-forest baseline";
      star = true;
      reports_rounds = false;
      yields = Coloring_out;
      build = (fun s -> ignore s; Pipelines.amr ());
    };
    {
      name = "lsfd";
      description = "Theorem 2.3 list star-forest decomposition";
      star = true;
      reports_rounds = true;
      yields = Coloring_out;
      build = build_lsfd;
    };
    {
      name = "orientation";
      description = "Corollary 1.1 (1+eps)-alpha orientation";
      star = false;
      reports_rounds = true;
      yields = Orientation_out;
      build =
        (fun s ->
          Pipelines.orientation s.graph ~epsilon:s.epsilon ~alpha:s.alpha ());
    };
    {
      name = "pseudo";
      description = "Corollary 1.1 pseudo-forest decomposition";
      star = false;
      reports_rounds = true;
      yields = Pseudo_out;
      build =
        (fun s -> Pipelines.pseudo s.graph ~epsilon:s.epsilon ~alpha:s.alpha);
    };
  ]

let find name = List.find_opt (fun e -> String.equal e.name name) all
let names () = List.map (fun e -> e.name) all

let registry_name = "nw-registry/1"

(* FNV-1a 64-bit over "name=pipeline-digest;" for every entry, built on a
   fixed canonical spec so the stamp depends only on the code *)
let stamp () =
  let canonical =
    { graph = Nw_graphs.Generators.complete 2; epsilon = 0.5; alpha = 1 }
  in
  let fnv_prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let feed s =
    String.iter
      (fun c ->
        h :=
          Int64.mul
            (Int64.logxor !h (Int64.of_int (Char.code c)))
            fnv_prime)
      s
  in
  List.iter
    (fun e -> feed (e.name ^ "=" ^ Engine.digest (e.build canonical) ^ ";"))
    all;
  (registry_name, Printf.sprintf "%016Lx" !h)
