(** The single algorithm registry.

    One entry per user-facing algorithm, in the order the CLI lists them;
    [bin/forestd] and the bench harness both dispatch through {!find}
    instead of hand-rolled match statements, so adding an algorithm means
    adding one entry here. *)

type spec = {
  graph : Nw_graphs.Multigraph.t;
  epsilon : float;
  alpha : int;  (** arboricity bound (CLI resolves it exactly if omitted) *)
}

(** What the pipeline leaves in the store for the front end to report. *)
type yields =
  | Coloring_out  (** ["coloring"] *)
  | Orientation_out  (** ["orientation"] *)
  | Pseudo_out  (** ["assignment"] *)

type entry = {
  name : string;  (** CLI name, e.g. ["augment"] *)
  description : string;
  star : bool;  (** verify classes as star forests *)
  reports_rounds : bool;  (** false for the centralized baselines *)
  yields : yields;
  build : spec -> Engine.pipeline;
      (** deterministic; consumes no randomness *)
}

val all : entry list
val find : string -> entry option
val names : unit -> string list

(** [(registry name, hash)] — an FNV-1a digest of every entry's pipeline
    shape on a fixed canonical spec. Stamped into bench records
    ([env.pipeline]) so trajectory comparisons detect registry drift. *)
val stamp : unit -> string * string
