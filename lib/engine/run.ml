let run_pipeline ?(extras = []) g pipeline ~rng ~rounds =
  let ctx = Engine.ctx ~rng ~rounds in
  let init =
    List.fold_left
      (fun s (k, v) -> Store.put s k v)
      (Store.put Store.empty "graph" (Artifact.Graph g))
      extras
  in
  Engine.run ctx pipeline ~init

let forest_decomposition g ~epsilon ~alpha ?cut ?radii ?diameter ~rng ~rounds
    () =
  let pl = Pipelines.augment g ~epsilon ~alpha ?cut ?radii ?diameter () in
  let store = run_pipeline g pl ~rng ~rounds in
  (Store.coloring store "coloring", Store.fd_stats store "fd_stats")

let decompose_with_leftover g palette ~epsilon ~alpha ~cut ~radii ~rng ~rounds
    =
  let pl = Pipelines.partial g palette ~epsilon ~alpha ~cut ~radii in
  let store = run_pipeline g pl ~rng ~rounds in
  ( Store.coloring store "coloring",
    Store.mask store "removed",
    Store.fd_stats store "fd_stats" )

let list_forest_decomposition g palette ~epsilon ~alpha ?split ?radii ~rng
    ~rounds () =
  let pl = Pipelines.lfd g palette ~epsilon ~alpha ?split ?radii () in
  let store = run_pipeline g pl ~rng ~rounds in
  (Store.coloring store "coloring", Store.fd_stats store "fd_stats")

let lsfd_distributed g palette ~epsilon ~alpha_star ~rng ~rounds =
  let pl = Pipelines.lsfd g palette ~epsilon ~alpha_star in
  let store = run_pipeline g pl ~rng ~rounds in
  Store.coloring store "coloring"

let sfd g ~epsilon ~alpha ~orientation ~ids ~rng ~rounds =
  let pl = Pipelines.sfd ~epsilon ~alpha ~ids in
  let store =
    run_pipeline g pl ~rng ~rounds
      ~extras:[ ("orientation", Artifact.Orientation orientation) ]
  in
  (Store.coloring store "coloring", Store.sfd_stats store "sfd_stats")

let star_lsfd g palette ~epsilon ~orientation ~rng ~rounds =
  let pl = Pipelines.star_list palette ~epsilon in
  let store =
    run_pipeline g pl ~rng ~rounds
      ~extras:[ ("orientation", Artifact.Orientation orientation) ]
  in
  (Store.coloring store "coloring", Store.sfd_stats store "sfd_stats")

let orientation g ~epsilon ~alpha ?cut ?radii ~rng ~rounds () =
  let pl = Pipelines.orientation g ~epsilon ~alpha ?cut ?radii () in
  let store = run_pipeline g pl ~rng ~rounds in
  (Store.orientation store "orientation", Store.fd_stats store "fd_stats")

let pseudo g ~epsilon ~alpha ~rng ~rounds () =
  let pl = Pipelines.pseudo g ~epsilon ~alpha in
  let store = run_pipeline g pl ~rng ~rounds in
  Store.assignment store "assignment"
