(** Drop-in engine-backed replacements for the composite entry points.

    Same signatures and byte-identical fault-free behavior as the direct
    calls in [lib/core]; each builds the matching {!Pipelines} pipeline and
    executes it with {!Engine.run} (no checkpointing). Callers that need
    checkpoint/resume should build the pipeline themselves and call
    {!Engine.run} with a [~checkpoint] callback. *)

(** [Forest_algo.forest_decomposition] via the [augment] pipeline. *)
val forest_decomposition :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  ?cut:Nw_core.Cut.rule ->
  ?radii:int * int ->
  ?diameter:[ `Unbounded | `Log_over_eps | `Inv_eps ] ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  unit ->
  Nw_decomp.Coloring.t * Nw_core.Forest_algo.stats

(** [Forest_algo.decompose_with_leftover] via the [partial] pipeline. *)
val decompose_with_leftover :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  alpha:int ->
  cut:Nw_core.Cut.rule ->
  radii:int * int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t * bool array * Nw_core.Forest_algo.stats

(** [Forest_algo.list_forest_decomposition] via the [lfd] pipeline. *)
val list_forest_decomposition :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  alpha:int ->
  ?split:[ `Mpx | `Lll ] ->
  ?radii:int * int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  unit ->
  Nw_decomp.Coloring.t * Nw_core.Forest_algo.stats

(** [Lsfd.distributed] via the [lsfd] pipeline. *)
val lsfd_distributed :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  alpha_star:int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t

(** [Star_forest.sfd] via the [sfd] pipeline. *)
val sfd :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  orientation:Nw_graphs.Orientation.t ->
  ids:int array ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t * Nw_core.Star_forest.stats

(** [Star_forest.lsfd] via the [star-list] pipeline. *)
val star_lsfd :
  Nw_graphs.Multigraph.t ->
  Nw_decomp.Palette.t ->
  epsilon:float ->
  orientation:Nw_graphs.Orientation.t ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  Nw_decomp.Coloring.t * Nw_core.Star_forest.stats

(** [Orient.orientation] via the [orientation] pipeline. *)
val orientation :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  ?cut:Nw_core.Cut.rule ->
  ?radii:int * int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  unit ->
  Nw_graphs.Orientation.t * Nw_core.Forest_algo.stats

(** [Pseudo_forest.decompose] via the [pseudo] pipeline. *)
val pseudo :
  Nw_graphs.Multigraph.t ->
  epsilon:float ->
  alpha:int ->
  rng:Random.State.t ->
  rounds:Nw_localsim.Rounds.t ->
  unit ->
  int array * int
