type binding = { key : string; value : Artifact.t }
type t = binding list

let empty = []

let put store key value =
  { key; value }
  :: List.filter (fun b -> not (String.equal b.key key)) store

let find store key =
  match List.find_opt (fun b -> String.equal b.key key) store with
  | Some b -> Some b.value
  | None -> None

let mem store key = List.exists (fun b -> String.equal b.key key) store

let get store key =
  match find store key with
  | Some v -> v
  | None -> failwith ("Engine store: missing artifact \"" ^ key ^ "\"")

let keys store = List.map (fun b -> b.key) store

let kinds store = List.map (fun b -> (b.key, Artifact.kind_of b.value)) store

let snapshot store =
  List.map (fun b -> { b with value = Artifact.snapshot b.value }) store

let mismatch key expected got =
  failwith
    (Printf.sprintf "Engine store: artifact \"%s\" has kind %s, expected %s"
       key
       (Artifact.kind_name got)
       (Artifact.kind_name expected))

let graph store key =
  match get store key with
  | Artifact.Graph g -> g
  | a -> mismatch key `Graph (Artifact.kind_of a)

let coloring store key =
  match get store key with
  | Artifact.Coloring c -> c
  | a -> mismatch key `Coloring (Artifact.kind_of a)

let mask store key =
  match get store key with
  | Artifact.Mask m -> m
  | a -> mismatch key `Mask (Artifact.kind_of a)

let orientation store key =
  match get store key with
  | Artifact.Orientation o -> o
  | a -> mismatch key `Orientation (Artifact.kind_of a)

let partition store key =
  match get store key with
  | Artifact.Partition p -> p
  | a -> mismatch key `Partition (Artifact.kind_of a)

let clustering store key =
  match get store key with
  | Artifact.Clustering nd -> nd
  | a -> mismatch key `Clustering (Artifact.kind_of a)

let palette store key =
  match get store key with
  | Artifact.Palette p -> p
  | a -> mismatch key `Palette (Artifact.kind_of a)

let sides store key =
  match get store key with
  | Artifact.Sides s -> s
  | a -> mismatch key `Sides (Artifact.kind_of a)

let fd_stats store key =
  match get store key with
  | Artifact.Fd_stats s -> s
  | a -> mismatch key `Fd_stats (Artifact.kind_of a)

let sfd_stats store key =
  match get store key with
  | Artifact.Sfd_stats s -> s
  | a -> mismatch key `Sfd_stats (Artifact.kind_of a)

let assignment store key =
  match get store key with
  | Artifact.Assignment (a, k) -> (a, k)
  | a -> mismatch key `Assignment (Artifact.kind_of a)

let flag store key =
  match get store key with
  | Artifact.Flag b -> b
  | a -> mismatch key `Flag (Artifact.kind_of a)

let num store key =
  match get store key with
  | Artifact.Num n -> n
  | a -> mismatch key `Num (Artifact.kind_of a)
