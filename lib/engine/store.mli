(** Keyed artifact store threaded between pipeline passes.

    A persistent map from string keys to {!Artifact.t} values; each pass
    receives the current store and returns an extended one. [put] replaces
    any previous binding of the key, so "the coloring" can flow through a
    pipeline under one key while each pass refines it. *)

type t

val empty : t

(** [put store key v] binds [key] to [v], shadowing any previous binding. *)
val put : t -> string -> Artifact.t -> t

val find : t -> string -> Artifact.t option
val mem : t -> string -> bool

(** @raise Failure when the key is absent. *)
val get : t -> string -> Artifact.t

(** Keys in most-recently-bound-first order. *)
val keys : t -> string list

(** [(key, kind)] pairs, same order as {!keys}. *)
val kinds : t -> (string * Artifact.kind) list

(** Deep-copies the mutable artifacts (see {!Artifact.snapshot}) so the
    result stays frozen while the live run keeps mutating its own. *)
val snapshot : t -> t

(** Typed getters. Each raises [Failure] when the key is absent or bound
    to a different artifact kind. *)

val graph : t -> string -> Nw_graphs.Multigraph.t
val coloring : t -> string -> Nw_decomp.Coloring.t
val mask : t -> string -> bool array
val orientation : t -> string -> Nw_graphs.Orientation.t
val partition : t -> string -> Nw_core.H_partition.t
val clustering : t -> string -> Nw_core.Net_decomp.t
val palette : t -> string -> Nw_decomp.Palette.t
val sides : t -> string -> bool array array
val fd_stats : t -> string -> Nw_core.Forest_algo.stats
val sfd_stats : t -> string -> Nw_core.Star_forest.stats
val assignment : t -> string -> int array * int
val flag : t -> string -> bool
val num : t -> string -> int
