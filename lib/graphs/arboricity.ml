module G = Multigraph

let density_lower_bound g =
  let label, c = Traversal.components g in
  if c = 0 then 0
  else begin
    let nv = Array.make c 0 and ne = Array.make c 0 in
    Array.iter (fun l -> nv.(l) <- nv.(l) + 1) label;
    G.fold_edges (fun _ u _ () -> ne.(label.(u)) <- ne.(label.(u)) + 1) g ();
    let best = ref 0 in
    for i = 0 to c - 1 do
      if nv.(i) >= 2 then begin
        (* ceil(ne / (nv - 1)) *)
        let d = (ne.(i) + nv.(i) - 2) / (nv.(i) - 1) in
        if d > !best then best := d
      end
    done;
    !best
  end

let has_orientation g k =
  let n = G.n g and m = G.m g in
  if k < 0 then None
  else if m = 0 then Some (Orientation.make g [||])
  else begin
    (* nodes: 0 = source, 1..m = edges, m+1..m+n = vertices, m+n+1 = sink *)
    let source = 0 and sink = m + n + 1 in
    let edge_node e = 1 + e and vertex_node v = 1 + m + v in
    let net = Maxflow.create (m + n + 2) in
    let choice = Array.make m (-1) in
    for e = 0 to m - 1 do
      ignore (Maxflow.add_edge net source (edge_node e) 1);
      let u, v = G.endpoints g e in
      (* handle records the arc edge->u; if it carries flow, u pays for e,
         i.e. e is oriented out of u (toward v) *)
      choice.(e) <- Maxflow.add_edge net (edge_node e) (vertex_node u) 1;
      ignore (Maxflow.add_edge net (edge_node e) (vertex_node v) 1)
    done;
    for v = 0 to n - 1 do
      ignore (Maxflow.add_edge net (vertex_node v) sink k)
    done;
    let flow = Maxflow.max_flow net ~source ~sink in
    if flow < m then None
    else begin
      let head =
        Array.init m (fun e ->
            let u, v = G.endpoints g e in
            if Maxflow.flow_on net choice.(e) > 0 then v else u)
      in
      Some (Orientation.make g head)
    end
  end

let pseudo_arboricity g =
  if G.m g = 0 then (0, Orientation.make g [||])
  else begin
    let rec search lo hi best =
      (* invariant: orientation with max out-degree <= hi exists (= best) *)
      if lo >= hi then (hi, best)
      else begin
        let mid = (lo + hi) / 2 in
        match has_orientation g mid with
        | Some o -> search lo mid o
        | None -> search (mid + 1) hi best
      end
    in
    let d = G.max_degree g in
    match has_orientation g d with
    | None -> assert false (* orienting arbitrarily meets out-degree <= Δ *)
    | Some o -> search 1 d o
  end

(* Decision procedure for Goldberg's reduction: is there a subgraph with
   density strictly above p/q? Returns the witness vertex set when yes.
   Network: source -> edge (cap q), edge -> endpoints (cap inf),
   vertex -> sink (cap p); some S has q*m_S - p*|S| > 0 iff
   min-cut < q*m iff max-flow < q*m. *)
let denser_than g ~p ~q =
  let n = G.n g and m = G.m g in
  let source = 0 and sink = m + n + 1 in
  let edge_node e = 1 + e and vertex_node v = 1 + m + v in
  let net = Maxflow.create (m + n + 2) in
  for e = 0 to m - 1 do
    ignore (Maxflow.add_edge net source (edge_node e) q);
    let u, v = G.endpoints g e in
    ignore (Maxflow.add_edge net (edge_node e) (vertex_node u) Maxflow.infinite);
    ignore (Maxflow.add_edge net (edge_node e) (vertex_node v) Maxflow.infinite)
  done;
  for v = 0 to n - 1 do
    ignore (Maxflow.add_edge net (vertex_node v) sink p)
  done;
  let flow = Maxflow.max_flow net ~source ~sink in
  if flow >= q * m then None
  else begin
    let side = Maxflow.min_cut_side net ~source in
    let witness = ref [] in
    for v = n - 1 downto 0 do
      if side.(vertex_node v) then witness := v :: !witness
    done;
    Some !witness
  end

let densest_subgraph g =
  let n = G.n g and m = G.m g in
  if m = 0 then (0.0, [])
  else begin
    (* densities are rationals a/b with b <= n, so distinct values differ by
       more than 1/n^2; search the grid t/n^2 for t in [0, m*n^2] *)
    let q = n * n in
    let rec search lo hi best =
      (* invariant: density > lo/q is achievable (witness [best]);
         density > hi/q is not *)
      if hi - lo <= 1 then best
      else begin
        let mid = (lo + hi) / 2 in
        match denser_than g ~p:mid ~q with
        | Some witness -> search mid hi witness
        | None -> search lo mid best
      end
    in
    let initial =
      match denser_than g ~p:0 ~q with
      | Some w -> w
      | None -> assert false (* any edge gives positive density *)
    in
    let witness = search 0 ((m * q) + 1) initial in
    let members = Array.make n false in
    List.iter (fun v -> members.(v) <- true) witness;
    let m_s =
      G.fold_edges
        (fun _ u v acc -> if members.(u) && members.(v) then acc + 1 else acc)
        g 0
    in
    let n_s = List.length witness in
    (float_of_int m_s /. float_of_int (max 1 n_s), witness)
  end

let densest_brute_force g =
  let n = G.n g in
  if n > 22 then invalid_arg "Arboricity.densest_brute_force: graph too large";
  if G.m g = 0 then 0.0
  else begin
    let best = ref 0.0 in
    for mask = 1 to (1 lsl n) - 1 do
      let nv = ref 0 in
      for v = 0 to n - 1 do
        if mask land (1 lsl v) <> 0 then incr nv
      done;
      let ne =
        G.fold_edges
          (fun _ u v acc ->
            if mask land (1 lsl u) <> 0 && mask land (1 lsl v) <> 0 then
              acc + 1
            else acc)
          g 0
      in
      let d = float_of_int ne /. float_of_int !nv in
      if d > !best then best := d
    done;
    !best
  end

let brute_force g =
  let n = G.n g in
  if n > 22 then invalid_arg "Arboricity.brute_force: graph too large";
  if G.m g = 0 then 0
  else begin
    let best = ref 0 in
    let masks = 1 lsl n in
    for mask = 0 to masks - 1 do
      let nv = ref 0 in
      for v = 0 to n - 1 do
        if mask land (1 lsl v) <> 0 then incr nv
      done;
      if !nv >= 2 then begin
        let ne =
          G.fold_edges
            (fun _ u v acc ->
              if mask land (1 lsl u) <> 0 && mask land (1 lsl v) <> 0 then
                acc + 1
              else acc)
            g 0
        in
        let d = (ne + !nv - 2) / (!nv - 1) in
        if d > !best then best := d
      end
    done;
    !best
  end
