(** Arboricity and pseudo-arboricity measures.

    Nash-Williams: the arboricity [α(G)] equals
    [max over subgraphs H of ceil(|E(H)| / (|V(H)| - 1))].
    The pseudo-arboricity [α*(G)] is the least [k] admitting a
    [k]-orientation; always [α* <= α <= 2 α*], and [α <= α* + 1] on simple
    graphs.

    Exact arboricity via matroid partition lives in
    [Nw_baseline.Gabow_westermann] (it needs the forest-partition machinery);
    this module provides the flow-based pseudo-arboricity, density lower
    bounds, and an exponential brute force used to validate both. *)

(** Largest value of [ceil(m_C / (n_C - 1))] over connected components [C];
    a lower bound on arboricity. 0 on edgeless graphs. *)
val density_lower_bound : Multigraph.t -> int

(** [has_orientation g k] decides via max-flow whether [g] has an orientation
    with all out-degrees at most [k]; returns the witness when it exists. *)
val has_orientation : Multigraph.t -> int -> Orientation.t option

(** Exact pseudo-arboricity with a witness orientation, via binary search
    over {!has_orientation}. [(0, trivial)] on edgeless graphs. *)
val pseudo_arboricity : Multigraph.t -> int * Orientation.t

(** Exact arboricity by enumerating all vertex subsets — O(2^n * m); only for
    graphs with at most ~20 vertices (test oracle).
    @raise Invalid_argument when [n > 22]. *)
val brute_force : Multigraph.t -> int

(** [densest_subgraph g] computes the exact maximum density
    [max over H of |E(H)| / |V(H)|] (Goldberg's min-cut reduction, binary
    search over the O(n^2) candidate rationals) together with a witness
    vertex set attaining it. [(0., [])] on edgeless graphs. The
    pseudo-arboricity equals [ceil] of this value (checked by the tests),
    giving an independent certificate for {!pseudo_arboricity}. *)
val densest_subgraph : Multigraph.t -> float * int list

(** Brute-force [max |E(H)|/|V(H)|] (test oracle, [n <= 22]). *)
val densest_brute_force : Multigraph.t -> float
