(* Data-plane selection: which GRAPH backend newly created round kernels
   run on. The process default is set once at startup from --backend
   (bench/main, forestd) and read by Msg_net.create; [with_kind] scopes a
   choice for differential tests. Atomic so concurrent bench domains see
   a coherent value. *)

type kind = Boxed | Csr

let to_string = function Boxed -> "boxed" | Csr -> "csr"

let of_string s =
  match String.lowercase_ascii s with
  | "boxed" | "multigraph" -> Ok Boxed
  | "csr" -> Ok Csr
  | _ -> Error (Printf.sprintf "unknown backend %S (expected boxed|csr)" s)

let all = [ Boxed; Csr ]

let state = Atomic.make Boxed

let default () = Atomic.get state
let set_default k = Atomic.set state k

let with_kind k f =
  let saved = Atomic.get state in
  Atomic.set state k;
  Fun.protect ~finally:(fun () -> Atomic.set state saved) f

(* First-class conformance witnesses: coercing both backends to
   GRAPH_EXT here makes signature drift a compile error in lib/graphs
   itself. *)
let boxed : (module Graph_sig.GRAPH_EXT with type t = Multigraph.t) =
  (module Multigraph)

let csr : (module Graph_sig.GRAPH_EXT with type t = Csr.t) = (module Csr)
