(** Run-time data-plane selection.

    The process-wide default backend for newly created message-passing
    kernels ([Msg_net.create] reads it). Both planes produce byte-identical
    results; the choice is purely a performance knob, surfaced as
    [--backend boxed|csr] in bench and forestd and stamped into the [env]
    of nw-bench/2 records. *)

type kind =
  | Boxed  (** {!Multigraph} — boxed adjacency rows, the reference plane *)
  | Csr  (** {!Csr} — flat Bigarray planes, cache-linear *)

val to_string : kind -> string
val of_string : string -> (kind, string) result

(** Both kinds, in a fixed order (bench sweeps iterate this). *)
val all : kind list

(** The process default; [Boxed] until {!set_default} is called. *)
val default : unit -> kind

val set_default : kind -> unit

(** [with_kind k f] runs [f] with the default set to [k], restoring the
    previous default afterwards (also on exception). *)
val with_kind : kind -> (unit -> 'a) -> 'a

(** First-class GRAPH_EXT witnesses for the two backends — conformance is
    checked here at compile time, and generic consumers can instantiate
    over them. *)
val boxed : (module Graph_sig.GRAPH_EXT with type t = Multigraph.t)

val csr : (module Graph_sig.GRAPH_EXT with type t = Csr.t)
