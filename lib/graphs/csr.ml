(* Compressed-sparse-row data plane over flat Bigarray int vectors.

   Layout: [row_ptr] has n+1 entries; the incident edges of vertex v are
   [packed.{row_ptr.{v}} .. packed.{row_ptr.{v+1}-1}], each an immediate
   int carrying (neighbor lsl 31) lor edge_id. [src]/[dst] give edge
   endpoints by edge id, exactly as at construction.

   Determinism contract: every operation, iteration order included, is
   byte-identical to Multigraph on the same logical graph. Multigraph
   fills adjacency rows by a single ascending pass over edge ids; the
   counting-sort fill below reproduces that order exactly, so
   iter_incident/incident/ball agree pair for pair.

   Why Bigarray: rows are unboxed, cache-linear, outside the OCaml minor
   heap (no GC scanning of 10^7-edge planes), and shareable across
   domains without copying. Why packing: one load per incident pair
   instead of a pointer chase into a boxed tuple. 31+31 bits fit OCaml's
   63-bit immediates with room to spare at the ROADMAP scale (10^8 edges
   needs 27 bits). *)

type plane =
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  m : int;
  src : plane;
  dst : plane;
  row_ptr : plane; (* n+1 entries, row_ptr.{n} = 2m *)
  packed : plane; (* 2m entries: (neighbor lsl 31) lor edge_id *)
}

let limit = 1 lsl 31

let pack nbr eid = (nbr lsl 31) lor eid
let nbr_of p = p lsr 31
let eid_of p = p land (limit - 1)

let alloc len =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 1 len)

(* ------------------------------------------------------------------ *)
(* construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Shared finish step: endpoints already validated, ids 0..m-1. *)
let finish n ~m ~src_at ~dst_at =
  if n >= limit then invalid_arg "Csr: n exceeds 2^31";
  if m >= limit then invalid_arg "Csr: m exceeds 2^31";
  let src = alloc m and dst = alloc m in
  for e = 0 to m - 1 do
    src.{e} <- src_at e;
    dst.{e} <- dst_at e
  done;
  let row_ptr = alloc (n + 1) in
  for v = 0 to n do
    row_ptr.{v} <- 0
  done;
  for e = 0 to m - 1 do
    row_ptr.{src.{e} + 1} <- row_ptr.{src.{e} + 1} + 1;
    row_ptr.{dst.{e} + 1} <- row_ptr.{dst.{e} + 1} + 1
  done;
  for v = 1 to n do
    row_ptr.{v} <- row_ptr.{v} + row_ptr.{v - 1}
  done;
  let packed = alloc (2 * m) in
  (* single ascending pass over edge ids — the Multigraph fill order *)
  let fill = Array.make (max 1 n) 0 in
  for e = 0 to m - 1 do
    let u = src.{e} and v = dst.{e} in
    packed.{row_ptr.{u} + fill.(u)} <- pack v e;
    fill.(u) <- fill.(u) + 1;
    packed.{row_ptr.{v} + fill.(v)} <- pack u e;
    fill.(v) <- fill.(v) + 1
  done;
  { n; m; src; dst; row_ptr; packed }

type builder = { bn : int; bsrc : Vecbuf.t; bdst : Vecbuf.t }

let create_builder n =
  if n < 0 then invalid_arg "Csr.create_builder: negative size";
  { bn = n; bsrc = Vecbuf.create (); bdst = Vecbuf.create () }

let add_edge b u v =
  if u < 0 || u >= b.bn || v < 0 || v >= b.bn then
    invalid_arg "Csr.add_edge: endpoint out of range";
  if u = v then invalid_arg "Csr.add_edge: self-loop";
  let id = Vecbuf.length b.bsrc in
  Vecbuf.push b.bsrc u;
  Vecbuf.push b.bdst v;
  id

let build b =
  finish b.bn
    ~m:(Vecbuf.length b.bsrc)
    ~src_at:(Vecbuf.unsafe_get b.bsrc)
    ~dst_at:(Vecbuf.unsafe_get b.bdst)

let of_edges n edges =
  let b = create_builder n in
  List.iter (fun (u, v) -> ignore (add_edge b u v)) edges;
  build b

let of_multigraph g =
  finish (Multigraph.n g) ~m:(Multigraph.m g)
    ~src_at:(fun e -> fst (Multigraph.endpoints g e))
    ~dst_at:(fun e -> snd (Multigraph.endpoints g e))

let to_multigraph g =
  let b = Multigraph.create_builder g.n in
  for e = 0 to g.m - 1 do
    ignore (Multigraph.add_edge b g.src.{e} g.dst.{e})
  done;
  Multigraph.build b

(* ------------------------------------------------------------------ *)
(* queries — semantics and order identical to Multigraph               *)
(* ------------------------------------------------------------------ *)

let n g = g.n
let m g = g.m

let endpoints g e =
  if e < 0 || e >= g.m then invalid_arg "Csr.endpoints: edge out of range";
  (g.src.{e}, g.dst.{e})

let src g e =
  if e < 0 || e >= g.m then invalid_arg "Csr.src: edge out of range";
  g.src.{e}

let dst g e =
  if e < 0 || e >= g.m then invalid_arg "Csr.dst: edge out of range";
  g.dst.{e}

let other_endpoint g e v =
  if e < 0 || e >= g.m then
    invalid_arg "Csr.other_endpoint: edge out of range";
  if g.src.{e} = v then g.dst.{e}
  else if g.dst.{e} = v then g.src.{e}
  else invalid_arg "Csr.other_endpoint: vertex not on edge"

let degree g v = g.row_ptr.{v + 1} - g.row_ptr.{v}

let max_degree g =
  let d = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !d then d := degree g v
  done;
  !d

let iter_incident g v f =
  let lo = g.row_ptr.{v} and hi = g.row_ptr.{v + 1} in
  for i = lo to hi - 1 do
    let p = g.packed.{i} in
    f (nbr_of p) (eid_of p)
  done

let fold_incident g v ~init f =
  let lo = g.row_ptr.{v} and hi = g.row_ptr.{v + 1} in
  let acc = ref init in
  for i = lo to hi - 1 do
    let p = g.packed.{i} in
    acc := f !acc (nbr_of p) (eid_of p)
  done;
  !acc

let incident g v =
  let lo = g.row_ptr.{v} in
  Array.init (degree g v) (fun i ->
      let p = g.packed.{lo + i} in
      (nbr_of p, eid_of p))

let edges g = Array.init g.m (fun e -> (g.src.{e}, g.dst.{e}))

let fold_edges f g init =
  let acc = ref init in
  for e = 0 to g.m - 1 do
    acc := f e g.src.{e} g.dst.{e} !acc
  done;
  !acc

let is_simple g =
  let seen = Hashtbl.create (max 16 g.m) in
  let rec check e =
    if e >= g.m then true
    else begin
      let u = g.src.{e} and v = g.dst.{e} in
      let key = if u < v then (u, v) else (v, u) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        check (e + 1)
      end
    end
  in
  check 0

let subgraph_of_edges g keep =
  if Array.length keep <> g.m then
    invalid_arg "Csr.subgraph_of_edges: edge mask size mismatch";
  let ksrc = Vecbuf.create () and kdst = Vecbuf.create () in
  let emap = Vecbuf.create () in
  for e = 0 to g.m - 1 do
    if keep.(e) then begin
      Vecbuf.push ksrc g.src.{e};
      Vecbuf.push kdst g.dst.{e};
      Vecbuf.push emap e
    end
  done;
  let sub =
    finish g.n
      ~m:(Vecbuf.length ksrc)
      ~src_at:(Vecbuf.unsafe_get ksrc)
      ~dst_at:(Vecbuf.unsafe_get kdst)
  in
  (sub, Vecbuf.to_array emap)

(* BFS twins of the Multigraph versions: same queue discipline, same
   neighbor order (the CSR row replays the adjacency-row order), so the
   outputs — including list ordering — are identical. *)
let ball g v r =
  let dist = Array.make g.n (-1) in
  let q = Queue.create () in
  dist.(v) <- 0;
  Queue.add v q;
  let acc = ref [] in
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    let d = dist.(u) in
    acc := u :: !acc;
    if d < r then
      iter_incident g u (fun w _ ->
          if dist.(w) < 0 then begin
            dist.(w) <- d + 1;
            Queue.add w q
          end)
  done;
  !acc

let ball_of_set g vs r =
  let dist = Array.make g.n (-1) in
  let members = Array.make g.n false in
  let q = Queue.create () in
  List.iter
    (fun v ->
      if dist.(v) < 0 then begin
        dist.(v) <- 0;
        Queue.add v q
      end)
    vs;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    members.(u) <- true;
    if dist.(u) < r then
      iter_incident g u (fun w _ ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(u) + 1;
            Queue.add w q
          end)
  done;
  members

let pp ppf g =
  Format.fprintf ppf "@[<h>csr(n=%d, m=%d, max_deg=%d)@]" g.n g.m
    (max_degree g)
