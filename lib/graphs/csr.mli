(** Compressed-sparse-row graph backend over flat [Bigarray] int planes.

    The compact data plane of [docs/data-plane.md]: adjacency lives in two
    unboxed vectors — [row_ptr] (offsets) and a packed neighbor/edge
    vector with [(neighbor lsl 31) lor edge_id] in each slot — so round
    kernels stream cache lines instead of chasing boxed tuples, and the
    planes are invisible to the GC and shareable across domains.

    Implements {!Graph_sig.GRAPH} with outputs (iteration order included)
    byte-identical to {!Multigraph}; the differential suite in
    [test/test_csr.ml] enforces this. Limits: [n], [m] below [2^31].

    Select it at run time via {!Backend} ([--backend csr] in bench and
    forestd). *)

type t

(** {1 Construction} *)

type builder

(** Mirrors [Multigraph.create_builder] — {!Vecbuf} endpoint vectors. *)
val create_builder : int -> builder

(** [add_edge b u v] appends edge [uv] and returns its edge id.
    @raise Invalid_argument on a self-loop or out-of-range endpoint. *)
val add_edge : builder -> int -> int -> int

(** Freeze a builder into a graph. The builder may keep being used. *)
val build : builder -> t

(** [of_edges n edges] builds a graph from an explicit edge list; the edge
    id of the [i]-th pair is [i]. *)
val of_edges : int -> (int * int) list -> t

(** Convert from/to the boxed reference plane. Edge ids, endpoint order,
    and adjacency order are preserved exactly in both directions. *)
val of_multigraph : Multigraph.t -> t

val to_multigraph : t -> Multigraph.t

(** {1 The GRAPH query core} — see {!Graph_sig.GRAPH} for the contracts. *)

val n : t -> int
val m : t -> int
val endpoints : t -> int -> int * int
val src : t -> int -> int
val dst : t -> int -> int
val other_endpoint : t -> int -> int -> int
val degree : t -> int -> int
val max_degree : t -> int

(** Allocates (compat surface); hot paths use {!iter_incident}. *)
val incident : t -> int -> (int * int) array

val iter_incident : t -> int -> (int -> int -> unit) -> unit
val fold_incident : t -> int -> init:'a -> ('a -> int -> int -> 'a) -> 'a
val edges : t -> (int * int) array
val fold_edges : (int -> int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val is_simple : t -> bool
val ball : t -> int -> int -> int list
val ball_of_set : t -> int list -> int -> bool array
val pp : Format.formatter -> t -> unit

(** {1 Derived graphs} *)

(** [subgraph_of_edges g keep] keeps exactly the edges with
    [keep.(e) = true] (all vertices retained); returns the new graph and
    the map from new edge ids to old edge ids. Same semantics and edge
    renumbering as [Multigraph.subgraph_of_edges]. *)
val subgraph_of_edges : t -> bool array -> t * int array
