module G = Multigraph

let ordering g =
  let n = G.n g in
  let deg = Array.init n (G.degree g) in
  let removed = Array.make n false in
  (* bucket queue over current degrees *)
  let max_deg = Array.fold_left max 0 deg in
  let buckets = Array.make (max_deg + 1) [] in
  Array.iteri (fun v d -> buckets.(d) <- v :: buckets.(d)) deg;
  let order = Array.make n 0 in
  let degen = ref 0 in
  let cursor = ref 0 in
  for i = 0 to n - 1 do
    (* find the smallest non-empty bucket holding a live vertex at its
       current degree; stale entries are skipped. [cursor] is a lower bound
       on the minimum live degree, maintained on every decrement below. *)
    let v = ref (-1) in
    while !v < 0 do
      match buckets.(!cursor) with
      | [] -> incr cursor
      | u :: rest ->
          buckets.(!cursor) <- rest;
          if (not removed.(u)) && deg.(u) = !cursor then v := u
    done;
    let v = !v in
    removed.(v) <- true;
    order.(i) <- v;
    if deg.(v) > !degen then degen := deg.(v);
    Array.iter
      (fun (w, _) ->
        if not removed.(w) then begin
          deg.(w) <- deg.(w) - 1;
          buckets.(deg.(w)) <- w :: buckets.(deg.(w));
          if deg.(w) < !cursor then cursor := deg.(w)
        end)
      (G.incident g v)
  done;
  (!degen, order)

let degeneracy g = fst (ordering g)

let orientation g =
  let _, order = ordering g in
  let rank = Array.make (G.n g) 0 in
  Array.iteri (fun i v -> rank.(v) <- i) order;
  Orientation.of_total_order g rank
