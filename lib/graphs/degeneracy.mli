(** Degeneracy (k-core) ordering.

    The degeneracy [d] of a graph is the least value such that every subgraph
    has a vertex of degree at most [d]; it admits an acyclic [d]-orientation
    (orient each edge toward the later vertex in the elimination order). For
    multigraphs parallel edges all count toward the degree. *)

(** [ordering g] computes the degeneracy elimination order by repeatedly
    removing a minimum-degree vertex. Returns [(degeneracy, order)] where
    [order.(i)] is the [i]-th vertex removed. *)
val ordering : Multigraph.t -> int * int array

val degeneracy : Multigraph.t -> int

(** Acyclic orientation witnessing the degeneracy: each edge points from the
    earlier-removed endpoint to the later-removed one, so out-degree is at
    most the degeneracy. *)
val orientation : Multigraph.t -> Orientation.t
