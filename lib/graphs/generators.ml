module G = Multigraph

let path n =
  G.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  G.of_edges n (List.init n (fun i -> (i, (i + 1) mod n)))

let complete n =
  let b = G.create_builder n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      ignore (G.add_edge b u v)
    done
  done;
  G.build b

let complete_bipartite a b =
  let bl = G.create_builder (a + b) in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      ignore (G.add_edge bl u v)
    done
  done;
  G.build bl

let grid rows cols =
  let id r c = (r * cols) + c in
  let b = G.create_builder (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then ignore (G.add_edge b (id r c) (id r (c + 1)));
      if r + 1 < rows then ignore (G.add_edge b (id r c) (id (r + 1) c))
    done
  done;
  G.build b

let star n =
  G.of_edges (n + 1) (List.init n (fun i -> (0, i + 1)))

let line_multigraph len mult =
  if len < 2 then invalid_arg "Generators.line_multigraph: need len >= 2";
  let b = G.create_builder len in
  for i = 0 to len - 2 do
    for _ = 1 to mult do
      ignore (G.add_edge b i (i + 1))
    done
  done;
  G.build b

let binary_tree depth =
  let n = (1 lsl (depth + 1)) - 1 in
  let b = G.create_builder n in
  for v = 1 to n - 1 do
    ignore (G.add_edge b ((v - 1) / 2) v)
  done;
  G.build b

let caterpillar spine legs =
  if spine < 1 then invalid_arg "Generators.caterpillar: spine < 1";
  let n = spine + (spine * legs) in
  let b = G.create_builder n in
  for i = 0 to spine - 2 do
    ignore (G.add_edge b i (i + 1))
  done;
  for i = 0 to spine - 1 do
    for leg = 0 to legs - 1 do
      ignore (G.add_edge b i (spine + (i * legs) + leg))
    done
  done;
  G.build b

let hypercube d =
  if d < 1 then invalid_arg "Generators.hypercube: d < 1";
  let n = 1 lsl d in
  let b = G.create_builder n in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let w = v lxor (1 lsl bit) in
      if w > v then ignore (G.add_edge b v w)
    done
  done;
  G.build b

let theta_graph paths len =
  if paths < 1 || len < 1 then invalid_arg "Generators.theta_graph";
  let n = 2 + (paths * (len - 1)) in
  let b = G.create_builder n in
  let hub_a = 0 and hub_b = 1 in
  for p = 0 to paths - 1 do
    if len = 1 then ignore (G.add_edge b hub_a hub_b)
    else begin
      let base = 2 + (p * (len - 1)) in
      ignore (G.add_edge b hub_a base);
      for i = 0 to len - 3 do
        ignore (G.add_edge b (base + i) (base + i + 1))
      done;
      ignore (G.add_edge b (base + len - 2) hub_b)
    end
  done;
  G.build b

(* Uniform random tree via Prüfer sequence decoding, written into unboxed
   edge arrays [eu]/[ev] (length >= n-1) — no cons-cell churn when bench
   unions trees into 10^7-edge multigraphs. Slot order replays the
   historical list-based decoder exactly (slot 0 the final leaf pair,
   slot [n-2-i] the [i]-th decoded edge), so seeded graphs are unchanged. *)
let random_tree_into rng n eu ev =
  if n = 2 then begin
    eu.(0) <- 0;
    ev.(0) <- 1
  end
  else if n > 2 then begin
    let seq = Array.init (n - 2) (fun _ -> Random.State.int rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) seq;
    let module IntSet = Set.Make (Int) in
    let leaves = ref IntSet.empty in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then leaves := IntSet.add v !leaves
    done;
    Array.iteri
      (fun i v ->
        let leaf = IntSet.min_elt !leaves in
        leaves := IntSet.remove leaf !leaves;
        eu.(n - 2 - i) <- leaf;
        ev.(n - 2 - i) <- v;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then leaves := IntSet.add v !leaves)
      seq;
    eu.(0) <- IntSet.min_elt !leaves;
    ev.(0) <- IntSet.max_elt !leaves
  end

let random_tree rng n =
  let b = G.create_builder n in
  if n > 1 then begin
    let eu = Array.make (n - 1) 0 and ev = Array.make (n - 1) 0 in
    random_tree_into rng n eu ev;
    for i = 0 to n - 2 do
      ignore (G.add_edge b eu.(i) ev.(i))
    done
  end;
  G.build b

let forest_union rng n k =
  let b = G.create_builder n in
  if n > 1 then begin
    (* one scratch pair reused across all k trees *)
    let eu = Array.make (n - 1) 0 and ev = Array.make (n - 1) 0 in
    for _ = 1 to k do
      random_tree_into rng n eu ev;
      for i = 0 to n - 2 do
        ignore (G.add_edge b eu.(i) ev.(i))
      done
    done
  end;
  G.build b

exception Tree_stuck

let forest_union_simple rng n k =
  if k > n / 4 then invalid_arg "Generators.forest_union_simple: k too large";
  let seen = Hashtbl.create (4 * n * k) in
  let key u v = if u < v then (u, v) else (v, u) in
  let b = G.create_builder n in
  (* One random spanning tree avoiding already-used pairs: random vertex
     order, attach each vertex to a uniformly random earlier vertex with an
     unused pair. An unlucky order (an early vertex whose earlier partners
     are all used) raises and the tree is redrawn; density k <= n/4 keeps
     such retries rare. *)
  let try_tree () =
    let order = Array.init n (fun i -> i) in
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    let edges = ref [] in
    for i = 1 to n - 1 do
      let v = order.(i) in
      let local_used (u, w) =
        List.exists (fun (a, c) -> key a c = (u, w)) !edges
      in
      let used u = Hashtbl.mem seen (key u v) || local_used (key u v) in
      let rec attach attempts =
        let u = order.(Random.State.int rng i) in
        if used u then
          if attempts > 8 * n then
            let rec scan j =
              if j >= i then raise Tree_stuck
              else if not (used order.(j)) then order.(j)
              else scan (j + 1)
            in
            scan 0
          else attach (attempts + 1)
        else u
      in
      let u = attach 0 in
      edges := (key u v) :: !edges
    done;
    !edges
  in
  for _ = 1 to k do
    let rec draw budget =
      if budget = 0 then
        invalid_arg "Generators.forest_union_simple: saturated"
      else try try_tree () with Tree_stuck -> draw (budget - 1)
    in
    let edges = draw 100 in
    List.iter
      (fun (u, v) ->
        Hashtbl.add seen (u, v) ();
        ignore (G.add_edge b u v))
      edges
  done;
  G.build b

let random_k_tree rng n k =
  if n < k + 1 then invalid_arg "Generators.random_k_tree: n < k+1";
  let b = G.create_builder n in
  for u = 0 to k do
    for v = u + 1 to k do
      ignore (G.add_edge b u v)
    done
  done;
  (* growable array of attachable k-cliques *)
  let cliques = ref (Array.make 16 []) and count = ref 0 in
  let push c =
    if !count = Array.length !cliques then begin
      let fresh = Array.make (2 * !count) [] in
      Array.blit !cliques 0 fresh 0 !count;
      cliques := fresh
    end;
    !cliques.(!count) <- c;
    incr count
  in
  let seed = List.init (k + 1) (fun i -> i) in
  List.iteri
    (fun skip _ -> push (List.filteri (fun i _ -> i <> skip) seed))
    seed;
  for v = k + 1 to n - 1 do
    let c = !cliques.(Random.State.int rng !count) in
    List.iter (fun u -> ignore (G.add_edge b u v)) c;
    (* new attachable k-cliques: v with each (k-1)-subset of c *)
    List.iteri
      (fun skip _ -> push (v :: List.filteri (fun i _ -> i <> skip) c))
      c
  done;
  G.build b

let preferential_attachment rng n k =
  if n < k + 1 then invalid_arg "Generators.preferential_attachment: n <= k";
  let b = G.create_builder n in
  (* endpoint pool: each vertex appears once per incident edge, giving
     degree-proportional sampling *)
  let pool = Vecbuf.create () in
  let add_to_pool v = Vecbuf.push pool v in
  for v = 1 to k do
    ignore (G.add_edge b 0 v);
    add_to_pool 0;
    add_to_pool v
  done;
  for v = k + 1 to n - 1 do
    let chosen = Hashtbl.create k in
    let rec draw attempts =
      if Hashtbl.length chosen >= k || attempts > 50 * k then ()
      else begin
        let u = Vecbuf.get pool (Random.State.int rng (Vecbuf.length pool)) in
        if u <> v && not (Hashtbl.mem chosen u) then
          Hashtbl.replace chosen u ();
        draw (attempts + 1)
      end
    in
    draw 0;
    Hashtbl.iter
      (fun u () ->
        ignore (G.add_edge b u v);
        add_to_pool u;
        add_to_pool v)
      chosen
  done;
  G.build b

let erdos_renyi rng n p =
  let b = G.create_builder n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then ignore (G.add_edge b u v)
    done
  done;
  G.build b

let random_regular rng n d =
  let stubs = Array.make (n * d) 0 in
  for v = 0 to n - 1 do
    for i = 0 to d - 1 do
      stubs.((v * d) + i) <- v
    done
  done;
  let len = Array.length stubs in
  for i = len - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = stubs.(i) in
    stubs.(i) <- stubs.(j);
    stubs.(j) <- tmp
  done;
  let seen = Hashtbl.create (n * d) in
  let b = G.create_builder n in
  let i = ref 0 in
  while !i + 1 < len do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    let key = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      ignore (G.add_edge b u v)
    end;
    i := !i + 2
  done;
  G.build b

let planted_alpha rng n alpha extra =
  let base = forest_union_simple rng n alpha in
  (* α(base) = alpha since m = alpha * (n-1). Dropping up to (n-1)-1 edges
     of one tree and re-adding the same number elsewhere keeps m constant,
     but adding *extra* new edges would push density over alpha; instead we
     remove [extra] random edges first, then add [extra] random fresh simple
     edges, keeping m = alpha(n-1) so the density lower bound still forces
     α >= alpha, while the forest-union certificate keeps α <= alpha + 1;
     we then verify via pseudo-arboricity that α = alpha still holds and
     retry otherwise. For the benchmark families we accept α ∈
     {alpha, alpha+1} and report the certified density bound. *)
  if extra = 0 then base
  else begin
    let m = G.m base in
    let extra = min extra (m / 2) in
    let drop = Array.make m false in
    let dropped = ref 0 in
    while !dropped < extra do
      let e = Random.State.int rng m in
      if not drop.(e) then begin
        drop.(e) <- true;
        incr dropped
      end
    done;
    let seen = Hashtbl.create (2 * m) in
    let key u v = if u < v then (u, v) else (v, u) in
    Array.iteri
      (fun e (u, v) -> if not drop.(e) then Hashtbl.add seen (key u v) ())
      (G.edges base);
    let b = G.create_builder n in
    Array.iteri
      (fun e (u, v) -> if not drop.(e) then ignore (G.add_edge b u v))
      (G.edges base);
    let added = ref 0 in
    while !added < extra do
      let u = Random.State.int rng n and v = Random.State.int rng n in
      if u <> v && not (Hashtbl.mem seen (key u v)) then begin
        Hashtbl.add seen (key u v) ();
        ignore (G.add_edge b u v);
        incr added
      end
    done;
    G.build b
  end

let disjoint_union g1 g2 =
  let n1 = G.n g1 in
  let b = G.create_builder (n1 + G.n g2) in
  Array.iter (fun (u, v) -> ignore (G.add_edge b u v)) (G.edges g1);
  Array.iter
    (fun (u, v) -> ignore (G.add_edge b (u + n1) (v + n1)))
    (G.edges g2);
  G.build b

let list_palettes rng g ~colors ~size =
  if size > colors then invalid_arg "Generators.list_palettes: size > colors";
  Array.init (G.m g) (fun _ ->
      (* reservoir-free sampling of [size] distinct colors: partial
         Fisher-Yates over a color array would cost O(colors); use a set. *)
      let chosen = Hashtbl.create size in
      let rec draw acc remaining =
        if remaining = 0 then acc
        else begin
          let c = Random.State.int rng colors in
          if Hashtbl.mem chosen c then draw acc remaining
          else begin
            Hashtbl.add chosen c ();
            draw (c :: acc) (remaining - 1)
          end
        end
      in
      List.sort Int.compare (draw [] size))
