(** Graph families used by tests, examples, and the benchmark harness.

    Every generator documents what is known about the arboricity of its
    output; families with arboricity known *exactly by construction* are the
    backbone of the experiment harness. All randomness is taken from an
    explicit [Random.State.t] so every experiment is reproducible. *)

(** {1 Deterministic families} *)

(** Simple path on [n] vertices. α = 1 for [n >= 2]. *)
val path : int -> Multigraph.t

(** Cycle on [n >= 3] vertices. α = 2 (one tree cannot hold n edges). *)
val cycle : int -> Multigraph.t

(** Complete graph K_n. α = ⌈n/2⌉. *)
val complete : int -> Multigraph.t

(** Complete bipartite K_{a,b}. *)
val complete_bipartite : int -> int -> Multigraph.t

(** [grid rows cols]: 2-dimensional grid. α = 2 for nontrivial sizes. *)
val grid : int -> int -> Multigraph.t

(** Star with [n] leaves ([n+1] vertices). α = 1. *)
val star : int -> Multigraph.t

(** [line_multigraph len mult] is the lower-bound family of Proposition C.1:
    [len] vertices on a line with [mult] parallel edges between consecutive
    vertices. α = [mult] exactly; any (1+ε)·mult-FD needs diameter Ω(1/ε). *)
val line_multigraph : int -> int -> Multigraph.t

(** Complete binary tree with [depth] levels of edges. α = 1. *)
val binary_tree : int -> Multigraph.t

(** [caterpillar spine legs]: a path of [spine] vertices, each carrying
    [legs] pendant leaves. α = 1. *)
val caterpillar : int -> int -> Multigraph.t

(** [hypercube d]: the d-dimensional hypercube Q_d on [2^d] vertices.
    α = ⌈d·2^(d-1) / (2^d - 1)⌉ (density-tight since Q_d is edge-transitive
    and vertex-maximal density is attained by the whole graph). *)
val hypercube : int -> Multigraph.t

(** [theta_graph paths len]: two hub vertices joined by [paths] internally
    disjoint paths of [len] edges each. For [len >= 2] it is simple with
    α = 2 when [paths >= 2]. *)
val theta_graph : int -> int -> Multigraph.t

(** {1 Random families} *)

(** Uniformly random labelled tree on [n >= 1] vertices (Prüfer). α = 1. *)
val random_tree : Random.State.t -> int -> Multigraph.t

(** [forest_union rng n k]: union (as a multigraph) of [k] independent
    uniformly random spanning trees of [K_n]. m = k(n-1), so α = k
    {e exactly} (upper bound by construction, lower bound by density). *)
val forest_union : Random.State.t -> int -> int -> Multigraph.t

(** [forest_union_simple rng n k]: as {!forest_union} but the result is a
    simple graph: trees are sampled sequentially and resampled edges are
    locally re-drawn. Requires [k <= n/4]. α = k exactly. *)
val forest_union_simple : Random.State.t -> int -> int -> Multigraph.t

(** Erdős–Rényi G(n, p). *)
val erdos_renyi : Random.State.t -> int -> float -> Multigraph.t

(** [random_k_tree rng n k]: a random k-tree on [n >= k+1] vertices (start
    from K_{k+1}, repeatedly attach a vertex to a random existing k-clique).
    Degeneracy exactly [k]; arboricity [k] exactly for [n > k+1] (density:
    m = k(k+1)/2 + k(n-k-1) > (k-...)). Simple. *)
val random_k_tree : Random.State.t -> int -> int -> Multigraph.t

(** [preferential_attachment rng n k]: Barabási–Albert-style graph: each new
    vertex attaches [k] edges to existing vertices chosen proportionally to
    degree (duplicates redrawn, so the result is simple). α <= k by the
    attachment orientation; density makes it ≈ k. *)
val preferential_attachment : Random.State.t -> int -> int -> Multigraph.t

(** [random_regular rng n d]: configuration-model d-regular-ish simple graph
    (self-loops and duplicate pairings dropped, so some degrees may fall
    short). [n * d] should be even for best results. *)
val random_regular : Random.State.t -> int -> int -> Multigraph.t

(** [planted_alpha rng n alpha extra]: {!forest_union_simple} plus [extra]
    random simple edges that keep overall density below [alpha], so α stays
    exactly [alpha] on the whole graph but local structure is less tree-like. *)
val planted_alpha : Random.State.t -> int -> int -> int -> Multigraph.t

(** {1 Combinators} *)

(** Disjoint union (vertices of the second graph are shifted). *)
val disjoint_union : Multigraph.t -> Multigraph.t -> Multigraph.t

(** [list_palettes rng g ~colors ~size] draws, for each edge, a uniformly
    random palette of [size] distinct colors out of [0..colors-1];
    the standard way tests build list-coloring instances. *)
val list_palettes :
  Random.State.t -> Multigraph.t -> colors:int -> size:int -> int list array
