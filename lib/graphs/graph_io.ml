let parse_edge_list s =
  let lines = String.split_on_char '\n' s in
  let n = ref (-1) in
  let edges = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if line <> "" then
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "n"; count ] -> (
            match int_of_string_opt count with
            | Some c when c >= 0 && !n < 0 -> n := c
            | Some _ ->
                failwith
                  (Printf.sprintf "line %d: duplicate or negative n" lineno)
            | None ->
                failwith (Printf.sprintf "line %d: malformed n header" lineno))
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some u, Some v -> edges := (u, v) :: !edges
            | _ ->
                failwith
                  (Printf.sprintf "line %d: malformed edge %S" lineno line))
        | _ -> failwith (Printf.sprintf "line %d: malformed line %S" lineno line))
    lines;
  let edges = List.rev !edges in
  let max_vertex =
    List.fold_left (fun acc (u, v) -> max acc (max u v)) (-1) edges
  in
  let n = if !n >= 0 then !n else max_vertex + 1 in
  if max_vertex >= n then
    failwith
      (Printf.sprintf "vertex %d out of range (n = %d)" max_vertex n);
  Multigraph.of_edges n edges

let read_edge_list path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  try parse_edge_list s
  with Failure msg -> failwith (Printf.sprintf "%s: %s" path msg)

let to_edge_list g =
  let buf = Buffer.create (16 * Multigraph.m g) in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Multigraph.n g));
  Multigraph.fold_edges
    (fun _ u v () -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    g ();
  Buffer.contents buf

let write_edge_list path g =
  let oc = open_out path in
  output_string oc (to_edge_list g);
  close_out oc

(* a fixed 12-color palette that stays readable in graphviz *)
let dot_palette =
  [|
    "#e6194b"; "#3cb44b"; "#4363d8"; "#f58231"; "#911eb4"; "#46f0f0";
    "#f032e6"; "#bcf60c"; "#008080"; "#9a6324"; "#800000"; "#808000";
  |]

let to_dot g ~edge_color =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph g {\n  node [shape=circle, fontsize=10];\n";
  Multigraph.fold_edges
    (fun e u v () ->
      let attrs =
        match edge_color e with
        | None -> ""
        | Some c ->
            Printf.sprintf " [color=\"%s\", label=\"%d\", fontsize=8]"
              dot_palette.(c mod Array.length dot_palette)
              c
      in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" u v attrs))
    g ();
  Buffer.add_string buf "}\n";
  Buffer.contents buf
