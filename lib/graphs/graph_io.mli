(** Reading and writing graphs.

    The edge-list format is one edge per line, [u v], with optional [#]
    comments and a header line [n <vertices>]; vertices are 0-based. This is
    the interchange format of the [forestd] CLI. DOT output is for
    visualizing small decompositions. *)

(** [parse_edge_list s] parses the text of an edge-list file.
    @raise Failure with a line-numbered message on malformed input. *)
val parse_edge_list : string -> Multigraph.t

(** [read_edge_list path] reads and parses a file. *)
val read_edge_list : string -> Multigraph.t

(** [to_edge_list g] renders the graph back to the edge-list format. *)
val to_edge_list : Multigraph.t -> string

(** [write_edge_list path g]. *)
val write_edge_list : string -> Multigraph.t -> unit

(** [to_dot g ~edge_color] renders GraphViz DOT, coloring each edge with the
    palette entry chosen by [edge_color] (e.g. a forest-decomposition
    color); [None] renders black. *)
val to_dot : Multigraph.t -> edge_color:(int -> int option) -> string
