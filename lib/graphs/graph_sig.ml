(** The read-only graph interface shared by every data-plane backend.

    Extracted from [Multigraph]'s query core: everything a LOCAL-model
    kernel or decomposition primitive needs to *read* a graph, without
    committing to a representation. Two backends implement it:

    - {!Multigraph} — the boxed reference plane ([(neighbor, edge) array]
      adjacency rows); authoritative for semantics.
    - {!Csr} — the compact plane (flat [Bigarray] int arrays, neighbor and
      edge id packed into one immediate int); byte-identical outputs,
      cache-linear traversal.

    The contract is strict: for the same logical graph both backends must
    agree on every operation below {e including iteration order} —
    [incident]/[iter_incident]/[fold_incident] enumerate [(neighbor, edge)]
    pairs in ascending edge-id order, and [ball] returns vertices in
    reversed BFS-visit order. The qcheck differential suite
    ([test/test_csr.ml]) pins this down operation by operation.

    Construction and derived-graph surgery ([induced], [subgraph_of_edges],
    [power]) are not part of the signature: they stay backend-specific, and
    [Csr.of_multigraph]/[Csr.to_multigraph] bridge the planes. *)

module type GRAPH = sig
  type t

  val n : t -> int
  val m : t -> int

  (** Endpoints of an edge, as given at construction ([src], [dst]). *)
  val endpoints : t -> int -> int * int

  (** First endpoint of an edge, as given at construction. Equivalent to
      [fst (endpoints g e)] but never allocates — the coloring cache and
      augmenting core resolve DLL node ids to vertices through these. *)
  val src : t -> int -> int

  (** Second endpoint of an edge, as given at construction. *)
  val dst : t -> int -> int

  (** [other_endpoint g e v] is the endpoint of [e] that is not [v].
      @raise Invalid_argument if [v] is not an endpoint of [e]. *)
  val other_endpoint : t -> int -> int -> int

  val degree : t -> int -> int
  val max_degree : t -> int

  (** [(neighbor, edge_id)] pairs at [v], ascending edge id; parallel edges
      appear once per edge id. Compat surface — allocates on the CSR
      backend; hot paths should use {!iter_incident}. *)
  val incident : t -> int -> (int * int) array

  (** [iter_incident g v f] calls [f neighbor edge_id] for every incident
      edge of [v], in ascending edge-id order, without allocating. *)
  val iter_incident : t -> int -> (int -> int -> unit) -> unit

  (** [fold_incident g v ~init f] folds [f acc neighbor edge_id] in the
      same order as {!iter_incident}. *)
  val fold_incident : t -> int -> init:'a -> ('a -> int -> int -> 'a) -> 'a

  (** All edges as [(u, v)] indexed by edge id. Fresh array. *)
  val edges : t -> (int * int) array

  (** [fold_edges f g init] folds [f edge_id u v] over all edges. *)
  val fold_edges : (int -> int -> int -> 'a -> 'a) -> t -> 'a -> 'a

  (** [true] when no two edges share the same unordered endpoint pair. *)
  val is_simple : t -> bool

  (** [ball g v r]: vertices within distance [r] of [v], including [v],
      in reversed BFS-visit order (both backends agree exactly). *)
  val ball : t -> int -> int -> int list

  (** [ball_of_set g vs r]: membership array of vertices within distance
      [r] of the vertex set [vs]. *)
  val ball_of_set : t -> int list -> int -> bool array

  val pp : Format.formatter -> t -> unit
end

(** {!GRAPH} plus the one piece of derived-graph surgery the functorized
    core needs: per-color subgraph extraction for {!Cut}'s depth-mod rule.
    Both backends implement it with identical edge-order semantics (kept
    edges renumbered in ascending original edge-id order, vertex ids
    preserved), so functor bodies over [GRAPH_EXT] stay byte-identical
    across planes. General surgery ([induced], [power], builders) remains
    backend-specific. *)
module type GRAPH_EXT = sig
  include GRAPH

  (** [subgraph_of_edges g keep] is the subgraph on the same vertex set
      containing exactly the edges [e] with [keep.(e)], plus the map from
      new edge ids back to original ones (ascending). *)
  val subgraph_of_edges : t -> bool array -> t * int array
end
