type 'a t = {
  mutable keys : float array;
  mutable data : 'a array;
  mutable size : int;
  dummy : 'a;
}

let create dummy =
  { keys = Array.make 16 0.0; data = Array.make 16 dummy; size = 0; dummy }

let size h = h.size
let is_empty h = h.size = 0

let swap h i j =
  let k = h.keys.(i) and d = h.data.(i) in
  h.keys.(i) <- h.keys.(j);
  h.data.(i) <- h.data.(j);
  h.keys.(j) <- k;
  h.data.(j) <- d

let push h key datum =
  if h.size = Array.length h.keys then begin
    let keys = Array.make (2 * h.size) 0.0 in
    let data = Array.make (2 * h.size) h.dummy in
    Array.blit h.keys 0 keys 0 h.size;
    Array.blit h.data 0 data 0 h.size;
    h.keys <- keys;
    h.data <- data
  end;
  h.keys.(h.size) <- key;
  h.data.(h.size) <- datum;
  let i = ref h.size in
  h.size <- h.size + 1;
  while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
    swap h ((!i - 1) / 2) !i;
    i := (!i - 1) / 2
  done

let peek h = if h.size = 0 then None else Some (h.keys.(0), h.data.(0))

let pop h =
  if h.size = 0 then None
  else begin
    let key = h.keys.(0) and datum = h.data.(0) in
    h.size <- h.size - 1;
    h.keys.(0) <- h.keys.(h.size);
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
      if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
      if !smallest = !i then continue_ := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done;
    Some (key, datum)
  end
