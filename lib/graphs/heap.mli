(** Binary min-heap over float keys.

    Used by the MPX clustering (fractional exponential shifts on top of
    integer BFS distances) and available as a general substrate. *)

type 'a t

(** [create dummy] is an empty heap; [dummy] is a throwaway payload used to
    initialize backing storage (never returned). *)
val create : 'a -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit

(** Smallest key with its payload, or [None] when empty. *)
val pop : 'a t -> (float * 'a) option

(** Like {!pop} without removing. *)
val peek : 'a t -> (float * 'a) option
