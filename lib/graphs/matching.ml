type t = {
  left : int;
  right : int;
  adj : int list array; (* left node -> right neighbors *)
}

let create ~left ~right =
  if left < 0 || right < 0 then invalid_arg "Matching.create: negative side";
  { left; right; adj = Array.make left [] }

let add t l r =
  if l < 0 || l >= t.left || r < 0 || r >= t.right then
    invalid_arg "Matching.add: node out of range";
  t.adj.(l) <- r :: t.adj.(l)

let inf = max_int / 2

let maximum_matching t =
  let match_l = Array.make t.left (-1) in
  let match_r = Array.make t.right (-1) in
  let dist = Array.make t.left inf in
  let q = Queue.create () in
  (* BFS layers over free left nodes; true if an augmenting path exists. *)
  let bfs () =
    Queue.clear q;
    for l = 0 to t.left - 1 do
      if match_l.(l) < 0 then begin
        dist.(l) <- 0;
        Queue.add l q
      end
      else dist.(l) <- inf
    done;
    let found = ref false in
    while not (Queue.is_empty q) do
      let l = Queue.take q in
      List.iter
        (fun r ->
          let l' = match_r.(r) in
          if l' < 0 then found := true
          else if dist.(l') = inf then begin
            dist.(l') <- dist.(l) + 1;
            Queue.add l' q
          end)
        t.adj.(l)
    done;
    !found
  in
  let rec dfs l =
    let rec try_neighbors = function
      | [] ->
          dist.(l) <- inf;
          false
      | r :: rest ->
          let l' = match_r.(r) in
          let usable = l' < 0 || (dist.(l') = dist.(l) + 1 && dfs l') in
          if usable then begin
            match_l.(l) <- r;
            match_r.(r) <- l;
            true
          end
          else try_neighbors rest
    in
    try_neighbors t.adj.(l)
  in
  let size = ref 0 in
  while bfs () do
    for l = 0 to t.left - 1 do
      if match_l.(l) < 0 && dfs l then incr size
    done
  done;
  (!size, match_l, match_r)
