(** Hopcroft–Karp maximum bipartite matching.

    Used by the star-forest construction of Section 5: each vertex [v] owns a
    bipartite graph [H_v] between colors and out-neighbors, and colors its
    out-edges along a maximum matching of [H_v] (Proposition 5.1). *)

type t

(** [create ~left ~right] is an empty bipartite graph with left nodes
    [0..left-1] and right nodes [0..right-1]. *)
val create : left:int -> right:int -> t

(** [add t l r] adds an edge between left node [l] and right node [r]. *)
val add : t -> int -> int -> unit

(** [maximum_matching t] computes a maximum matching; returns
    [(size, match_of_left, match_of_right)] where unmatched nodes map
    to [-1]. *)
val maximum_matching : t -> int * int array * int array
