(* nwlint:disable PERF001 -- Dinic level/iter resets are once per augmenting phase of an offline solver; the phase itself is Theta(n + m) *)

type arc = { dst : int; mutable cap : int; rev : int }

type t = {
  n : int;
  mutable adj : arc array array; (* valid once frozen *)
  grown : arc list array; (* reversed insertion order, pre-freeze *)
  mutable frozen : bool;
  mutable rev_handles : (int * int) list; (* (node, index) newest first *)
  mutable handle_array : (int * int) array; (* built on demand *)
  mutable handle_count : int;
  level : int array;
  iter : int array;
}

let infinite = max_int / 4

let create n =
  {
    n;
    adj = [||];
    grown = Array.make n [];
    frozen = false;
    rev_handles = [];
    handle_array = [||];
    handle_count = 0;
    level = Array.make n (-1);
    iter = Array.make n 0;
  }

let add_edge t u v cap =
  if t.frozen then invalid_arg "Maxflow.add_edge: network already frozen";
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if u < 0 || u >= t.n || v < 0 || v >= t.n || u = v then
    invalid_arg "Maxflow.add_edge: bad endpoints";
  let iu = List.length t.grown.(u) in
  let iv = List.length t.grown.(v) in
  t.grown.(u) <- { dst = v; cap; rev = iv } :: t.grown.(u);
  t.grown.(v) <- { dst = u; cap = 0; rev = iu } :: t.grown.(v);
  let h = t.handle_count in
  t.rev_handles <- (u, iu) :: t.rev_handles;
  t.handle_count <- h + 1;
  h

let freeze t =
  if not t.frozen then begin
    t.adj <- Array.map (fun l -> Array.of_list (List.rev l)) t.grown;
    t.frozen <- true
  end

let build_levels t source =
  Array.fill t.level 0 t.n (-1);
  let q = Queue.create () in
  t.level.(source) <- 0;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    Array.iter
      (fun a ->
        if a.cap > 0 && t.level.(a.dst) < 0 then begin
          t.level.(a.dst) <- t.level.(u) + 1;
          Queue.add a.dst q
        end)
      t.adj.(u)
  done

let rec augment t u sink limit =
  if u = sink then limit
  else begin
    let arcs = t.adj.(u) in
    let result = ref 0 in
    while !result = 0 && t.iter.(u) < Array.length arcs do
      let a = arcs.(t.iter.(u)) in
      if a.cap > 0 && t.level.(a.dst) = t.level.(u) + 1 then begin
        let pushed = augment t a.dst sink (min limit a.cap) in
        if pushed > 0 then begin
          a.cap <- a.cap - pushed;
          let back = t.adj.(a.dst).(a.rev) in
          back.cap <- back.cap + pushed;
          result := pushed
        end
        else t.iter.(u) <- t.iter.(u) + 1
      end
      else t.iter.(u) <- t.iter.(u) + 1
    done;
    !result
  end

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  freeze t;
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    build_levels t source;
    if t.level.(sink) < 0 then continue_ := false
    else begin
      Array.fill t.iter 0 t.n 0;
      let pushed = ref (augment t source sink infinite) in
      while !pushed > 0 do
        total := !total + !pushed;
        pushed := augment t source sink infinite
      done
    end
  done;
  !total

let handle_position t h =
  if h < 0 || h >= t.handle_count then
    invalid_arg "Maxflow.flow_on: bad handle";
  if Array.length t.handle_array <> t.handle_count then begin
    let arr = Array.make t.handle_count (0, 0) in
    List.iteri
      (fun i p -> arr.(t.handle_count - 1 - i) <- p)
      t.rev_handles;
    t.handle_array <- arr
  end;
  t.handle_array.(h)

let flow_on t h =
  freeze t;
  let u, i = handle_position t h in
  let a = t.adj.(u).(i) in
  (* flow = original capacity - residual = reverse arc's residual capacity *)
  t.adj.(a.dst).(a.rev).cap

let min_cut_side t ~source =
  freeze t;
  build_levels t source;
  Array.map (fun l -> l >= 0) (Array.sub t.level 0 t.n)
