(** Dinic's maximum-flow algorithm on integer capacities.

    Substrate for the exact density computations: pseudo-arboricity (minimum
    maximum out-degree orientation) and the Nash-Williams maximum-density
    subgraph both reduce to max-flow / min-cut. *)

type t

(** Capacity value treated as unbounded. *)
val infinite : int

(** [create n] is an empty flow network on nodes [0 .. n-1]. *)
val create : int -> t

(** [add_edge t u v cap] adds a directed arc of capacity [cap >= 0] and
    returns a handle usable with {!flow_on}. A reverse arc of capacity 0 is
    added internally. *)
val add_edge : t -> int -> int -> int -> int

(** [max_flow t ~source ~sink] computes the maximum flow value. May be called
    once per network. *)
val max_flow : t -> source:int -> sink:int -> int

(** Flow routed on the arc returned by {!add_edge}, after {!max_flow}. *)
val flow_on : t -> int -> int

(** [min_cut_side t ~source] is the membership array of nodes reachable from
    [source] in the residual network, after {!max_flow}. *)
val min_cut_side : t -> source:int -> bool array
