(* nwlint:disable PERF002 -- this is the sanctioned boxed reference plane itself; the adjacency rows here are what Csr replaces, kept as the semantic baseline for the differential suite *)

type t = {
  n : int;
  src : int array;
  dst : int array;
  adj : (int * int) array array;
}

(* Endpoint pairs accumulate in shared growable int vectors (Vecbuf): a
   10^7-edge build allocates a handful of doubling arrays instead of 10^7
   cons cells plus a reversal pass. *)
type builder = { bn : int; bsrc : Vecbuf.t; bdst : Vecbuf.t }

let create_builder n =
  if n < 0 then invalid_arg "Multigraph.create_builder: negative size";
  { bn = n; bsrc = Vecbuf.create (); bdst = Vecbuf.create () }

let add_edge b u v =
  if u < 0 || u >= b.bn || v < 0 || v >= b.bn then
    invalid_arg "Multigraph.add_edge: endpoint out of range";
  if u = v then invalid_arg "Multigraph.add_edge: self-loop";
  let id = Vecbuf.length b.bsrc in
  Vecbuf.push b.bsrc u;
  Vecbuf.push b.bdst v;
  id

let build b =
  let m = Vecbuf.length b.bsrc in
  let src = Vecbuf.to_array b.bsrc and dst = Vecbuf.to_array b.bdst in
  let deg = Array.make b.bn 0 in
  for e = 0 to m - 1 do
    deg.(src.(e)) <- deg.(src.(e)) + 1;
    deg.(dst.(e)) <- deg.(dst.(e)) + 1
  done;
  let adj = Array.init b.bn (fun v -> Array.make deg.(v) (0, 0)) in
  let fill = Array.make b.bn 0 in
  for e = 0 to m - 1 do
    let u = src.(e) and v = dst.(e) in
    adj.(u).(fill.(u)) <- (v, e);
    fill.(u) <- fill.(u) + 1;
    adj.(v).(fill.(v)) <- (u, e);
    fill.(v) <- fill.(v) + 1
  done;
  { n = b.bn; src; dst; adj }

let of_edges n edges =
  let b = create_builder n in
  List.iter (fun (u, v) -> ignore (add_edge b u v)) edges;
  build b

let n g = g.n
let m g = Array.length g.src

let endpoints g e = (g.src.(e), g.dst.(e))
let src g e = g.src.(e)
let dst g e = g.dst.(e)

let other_endpoint g e v =
  if g.src.(e) = v then g.dst.(e)
  else if g.dst.(e) = v then g.src.(e)
  else invalid_arg "Multigraph.other_endpoint: vertex not on edge"

let incident g v = g.adj.(v)

let iter_incident g v f =
  let row = g.adj.(v) in
  for i = 0 to Array.length row - 1 do
    let w, e = row.(i) in
    f w e
  done

let fold_incident g v ~init f =
  let row = g.adj.(v) in
  let acc = ref init in
  for i = 0 to Array.length row - 1 do
    let w, e = row.(i) in
    acc := f !acc w e
  done;
  !acc

let degree g v = Array.length g.adj.(v)

let max_degree g =
  let d = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !d then d := degree g v
  done;
  !d

let is_simple g =
  let seen = Hashtbl.create (max 16 (m g)) in
  let rec check e =
    if e >= m g then true
    else begin
      let u = g.src.(e) and v = g.dst.(e) in
      let key = if u < v then (u, v) else (v, u) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        check (e + 1)
      end
    end
  in
  check 0

let edges g = Array.init (m g) (fun e -> (g.src.(e), g.dst.(e)))

let fold_edges f g init =
  let acc = ref init in
  for e = 0 to m g - 1 do
    acc := f e g.src.(e) g.dst.(e) !acc
  done;
  !acc

let induced g members =
  if Array.length members <> g.n then
    invalid_arg "Multigraph.induced: membership array size mismatch";
  let new_id = Array.make g.n (-1) in
  let count = ref 0 in
  for v = 0 to g.n - 1 do
    if members.(v) then begin
      new_id.(v) <- !count;
      incr count
    end
  done;
  let vmap = Array.make !count 0 in
  for v = 0 to g.n - 1 do
    if members.(v) then vmap.(new_id.(v)) <- v
  done;
  let b = create_builder !count in
  let rev_emap = ref [] in
  for e = 0 to m g - 1 do
    let u = g.src.(e) and v = g.dst.(e) in
    if members.(u) && members.(v) then begin
      ignore (add_edge b new_id.(u) new_id.(v));
      rev_emap := e :: !rev_emap
    end
  done;
  let emap = Array.of_list (List.rev !rev_emap) in
  (build b, vmap, emap)

let subgraph_of_edges g keep =
  if Array.length keep <> m g then
    invalid_arg "Multigraph.subgraph_of_edges: edge mask size mismatch";
  let b = create_builder g.n in
  let rev_emap = ref [] in
  for e = 0 to m g - 1 do
    if keep.(e) then begin
      ignore (add_edge b g.src.(e) g.dst.(e));
      rev_emap := e :: !rev_emap
    end
  done;
  (build b, Array.of_list (List.rev !rev_emap))

(* BFS from [v] up to depth [r]; calls [visit u d] on each reached vertex,
   including [v] at depth 0. [dist] must be an all(-1) scratch array; it is
   restored to all(-1) before returning. *)
let bfs_limited g v r dist visit =
  let q = Queue.create () in
  dist.(v) <- 0;
  Queue.add v q;
  let touched = ref [ v ] in
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    let d = dist.(u) in
    visit u d;
    if d < r then
      Array.iter
        (fun (w, _) ->
          if dist.(w) < 0 then begin
            dist.(w) <- d + 1;
            touched := w :: !touched;
            Queue.add w q
          end)
        g.adj.(u)
  done;
  List.iter (fun u -> dist.(u) <- -1) !touched

let ball g v r =
  let dist = Array.make g.n (-1) in
  let acc = ref [] in
  bfs_limited g v r dist (fun u _ -> acc := u :: !acc);
  !acc

let ball_of_set g vs r =
  let dist = Array.make g.n (-1) in
  let members = Array.make g.n false in
  let q = Queue.create () in
  List.iter
    (fun v ->
      if dist.(v) < 0 then begin
        dist.(v) <- 0;
        Queue.add v q
      end)
    vs;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    members.(u) <- true;
    if dist.(u) < r then
      Array.iter
        (fun (w, _) ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(u) + 1;
            Queue.add w q
          end)
        g.adj.(u)
  done;
  members

let power g r =
  if r < 1 then invalid_arg "Multigraph.power: radius must be >= 1";
  let b = create_builder g.n in
  let dist = Array.make g.n (-1) in
  for v = 0 to g.n - 1 do
    bfs_limited g v r dist (fun u _ -> if u > v then ignore (add_edge b v u))
  done;
  build b

let pp ppf g =
  Format.fprintf ppf "@[<h>multigraph(n=%d, m=%d, max_deg=%d)@]" g.n (m g)
    (max_degree g)
