(** Undirected multigraphs with edge identities.

    Vertices are integers [0 .. n-1]. Edges are integers [0 .. m-1]; parallel
    edges are distinct edge ids with the same endpoints. Self-loops are
    rejected (a self-loop can never belong to a forest, so the decompositions
    studied here are undefined on them).

    The structure is immutable after construction: build with {!of_edges} or
    via {!add_edge} on a {!builder}. *)

type t

(** {1 Construction} *)

type builder

(** [create_builder n] starts an empty multigraph on [n] vertices. *)
val create_builder : int -> builder

(** [add_edge b u v] appends edge [uv] and returns its edge id.
    @raise Invalid_argument on a self-loop or out-of-range endpoint. *)
val add_edge : builder -> int -> int -> int

(** Freeze a builder into a graph. The builder may keep being used. *)
val build : builder -> t

(** [of_edges n edges] builds a graph from an explicit edge list; the edge
    id of the [i]-th pair is [i]. *)
val of_edges : int -> (int * int) list -> t

(** {1 Basic accessors} *)

val n : t -> int
val m : t -> int

(** Endpoints of an edge, as given at construction ([src], [dst]). *)
val endpoints : t -> int -> int * int

(** First endpoint of an edge, as given at construction; non-allocating. *)
val src : t -> int -> int

(** Second endpoint of an edge, as given at construction; non-allocating. *)
val dst : t -> int -> int

(** [other_endpoint g e v] is the endpoint of [e] that is not [v].
    @raise Invalid_argument if [v] is not an endpoint of [e]. *)
val other_endpoint : t -> int -> int -> int

(** [incident g v] is the array of [(neighbor, edge_id)] pairs at [v];
    parallel edges appear once per edge id. Do not mutate. *)
val incident : t -> int -> (int * int) array

(** [iter_incident g v f] calls [f neighbor edge_id] for every incident
    edge of [v], in the {!incident} (ascending edge-id) order. *)
val iter_incident : t -> int -> (int -> int -> unit) -> unit

(** [fold_incident g v ~init f] folds [f acc neighbor edge_id] in the
    {!incident} order. *)
val fold_incident : t -> int -> init:'a -> ('a -> int -> int -> 'a) -> 'a

val degree : t -> int -> int
val max_degree : t -> int

(** [true] when no two edges share the same unordered endpoint pair. *)
val is_simple : t -> bool

(** All edges as [(u, v)] indexed by edge id. Fresh array. *)
val edges : t -> (int * int) array

val fold_edges : (int -> int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_edges f g init] folds [f edge_id u v] over all edges. *)

(** {1 Derived graphs} *)

(** [induced g vs] is the subgraph induced by the vertex set [vs] (given as a
    membership array of length [n g]), together with the vertex and edge
    mappings from the new graph back to [g]. *)
val induced : t -> bool array -> t * int array * int array

(** [subgraph_of_edges g keep] keeps exactly the edges with [keep.(e) = true]
    (all vertices retained); returns the new graph and the map from new edge
    ids to old edge ids. *)
val subgraph_of_edges : t -> bool array -> t * int array

(** [power g r] is the simple graph on the same vertices with an edge between
    any pair at distance in [1..r] in [g]. [power g 1] is the
    simplification of [g]. *)
val power : t -> int -> t

(** {1 Distances} *)

(** [ball g v r] is the list of vertices within distance [r] of [v],
    including [v]. *)
val ball : t -> int -> int -> int list

(** [ball_of_set g vs r] is the set (as a membership array) of vertices
    within distance [r] of the vertex set [vs]. *)
val ball_of_set : t -> int list -> int -> bool array

(** Pretty-printer: [n], [m], degree summary. *)
val pp : Format.formatter -> t -> unit
