module G = Multigraph

type t = { g : G.t; head : int array }

let make g head =
  if Array.length head <> G.m g then
    invalid_arg "Orientation.make: head array size mismatch";
  Array.iteri
    (fun e h ->
      let u, v = G.endpoints g e in
      if h <> u && h <> v then
        invalid_arg "Orientation.make: head is not an endpoint")
    head;
  { g; head = Array.copy head }

let graph t = t.g
let head t e = t.head.(e)
let tail t e = G.other_endpoint t.g e t.head.(e)

let out_degree t v =
  Array.fold_left
    (fun acc (_, e) -> if t.head.(e) <> v then acc + 1 else acc)
    0 (G.incident t.g v)

let max_out_degree t =
  let best = ref 0 in
  for v = 0 to G.n t.g - 1 do
    let d = out_degree t v in
    if d > !best then best := d
  done;
  !best

let out_edges t v =
  Array.fold_left
    (fun acc (_, e) -> if t.head.(e) <> v then e :: acc else acc)
    [] (G.incident t.g v)

let is_acyclic t =
  let n = G.n t.g in
  (* Kahn's algorithm on the directed graph *)
  let indeg = Array.make n 0 in
  Array.iter (fun h -> indeg.(h) <- indeg.(h) + 1) t.head;
  let q = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v q
  done;
  let seen = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    incr seen;
    List.iter
      (fun e ->
        let h = t.head.(e) in
        indeg.(h) <- indeg.(h) - 1;
        if indeg.(h) = 0 then Queue.add h q)
      (out_edges t v)
  done;
  !seen = n

let of_total_order g rank =
  if Array.length rank <> G.n g then
    invalid_arg "Orientation.of_total_order: rank array size mismatch";
  let head =
    Array.init (G.m g) (fun e ->
        let u, v = G.endpoints g e in
        let before_u = (rank.(u), u) and before_v = (rank.(v), v) in
        if before_u < before_v then v else u)
  in
  { g; head }

let reorient t e v =
  let u, w = G.endpoints t.g e in
  if v <> u && v <> w then invalid_arg "Orientation.reorient: bad head";
  let head = Array.copy t.head in
  head.(e) <- v;
  { t with head }
