(** Edge orientations of a multigraph.

    A [k]-orientation (every out-degree at most [k]) is exactly a
    decomposition into [k] pseudo-forests; acyclic [k]-orientations witness
    degeneracy at most [k]. *)

type t

(** [make g head] orients each edge [e] toward [head.(e)], which must be one
    of its endpoints. The array is copied. *)
val make : Multigraph.t -> int array -> t

val graph : t -> Multigraph.t

(** The vertex edge [e] points to. *)
val head : t -> int -> int

(** The vertex edge [e] points from. *)
val tail : t -> int -> int

val out_degree : t -> int -> int
val max_out_degree : t -> int

(** [out_edges t v] is the list of edge ids oriented out of [v]. *)
val out_edges : t -> int -> int list

(** [is_acyclic t] holds when the oriented graph has no directed cycle. *)
val is_acyclic : t -> bool

(** [of_total_order g rank] orients every edge from lower [rank] to higher
    [rank] (ties broken by vertex id); always acyclic. *)
val of_total_order : Multigraph.t -> int array -> t

(** [reorient t e v] is a copy of [t] with edge [e] pointed toward [v]. *)
val reorient : t -> int -> int -> t
