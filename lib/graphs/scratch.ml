(* Generation-stamped scratch arrays: O(1) reset instead of an O(n)
   Array.fill (or a rebuilt table) at the top of every query. An entry is
   live iff its stamp equals the current generation; [reset] just bumps
   the generation, so stale entries from earlier queries are never read
   and never need clearing.

   These are per-call/per-structure workspaces threaded explicitly by
   their owners — no instance lives at top level, so they are safe under
   domain-parallel callers as long as each instance stays on one domain
   (the same discipline as any mutable scratch). *)

module Ints = struct
  type t = {
    mutable data : int array;
    mutable stamp : int array;
    mutable gen : int;
  }

  let create n =
    let n = max 1 n in
    (* stamps start at 0 < gen: everything begins absent *)
    { data = Array.make n 0; stamp = Array.make n 0; gen = 1 }

  let size t = Array.length t.data

  let ensure t n =
    if n > Array.length t.data then begin
      let cap = max n (2 * Array.length t.data) in
      t.data <- Array.make cap 0;
      t.stamp <- Array.make cap 0;
      t.gen <- 1
    end

  let reset t = t.gen <- t.gen + 1
  let mem t i = t.stamp.(i) = t.gen
  let get t i ~default = if t.stamp.(i) = t.gen then t.data.(i) else default

  let set t i x =
    t.data.(i) <- x;
    t.stamp.(i) <- t.gen
end

module Marks = struct
  type t = { mutable stamp : int array; mutable gen : int }

  let create n = { stamp = Array.make (max 1 n) 0; gen = 1 }
  let size t = Array.length t.stamp

  let ensure t n =
    if n > Array.length t.stamp then begin
      let cap = max n (2 * Array.length t.stamp) in
      t.stamp <- Array.make cap 0;
      t.gen <- 1
    end

  let reset t = t.gen <- t.gen + 1
  let mem t i = t.stamp.(i) = t.gen
  let add t i = t.stamp.(i) <- t.gen
  let remove t i = t.stamp.(i) <- 0
end
