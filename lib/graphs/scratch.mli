(** Generation-stamped scratch arrays.

    The timestamped-workspace discipline for hot query paths: instead of
    [Array.fill scratch 0 n sentinel] (O(n)) or a rebuilt hash table at
    the top of every call, keep a [stamp] array beside the data and a
    running generation counter. [reset] bumps the generation in O(1);
    entries written under an older generation are simply never read.

    See [docs/data-plane.md] for where these are deployed; nwlint's
    PERF001 flags raw [Array.fill] resets in [lib/] and points here. *)

(** An [int -> int] partial map over [0 .. n-1] with O(1) clear. *)
module Ints : sig
  type t

  val create : int -> t

  (** Current capacity. *)
  val size : t -> int

  (** [ensure t n] grows capacity to at least [n] (contents cleared). *)
  val ensure : t -> int -> unit

  (** O(1): everything becomes absent. *)
  val reset : t -> unit

  val mem : t -> int -> bool
  val get : t -> int -> default:int -> int
  val set : t -> int -> int -> unit
end

(** A vertex/edge membership set over [0 .. n-1] with O(1) clear. *)
module Marks : sig
  type t

  val create : int -> t
  val size : t -> int
  val ensure : t -> int -> unit
  val reset : t -> unit
  val mem : t -> int -> bool
  val add : t -> int -> unit

  (** Remove a single element (the current generation forgets it). *)
  val remove : t -> int -> unit
end
