module G = Multigraph

let components g =
  let n = G.n g in
  let label = Array.make n (-1) in
  let next = ref 0 in
  let q = Queue.create () in
  for s = 0 to n - 1 do
    if label.(s) < 0 then begin
      let c = !next in
      incr next;
      label.(s) <- c;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.take q in
        Array.iter
          (fun (w, _) ->
            if label.(w) < 0 then begin
              label.(w) <- c;
              Queue.add w q
            end)
          (G.incident g u)
      done
    end
  done;
  (label, !next)

let is_forest g =
  let uf = Union_find.create (G.n g) in
  G.fold_edges (fun _ u v acc -> acc && Union_find.union uf u v) g true

let distances g v =
  let dist = Array.make (G.n g) (-1) in
  let q = Queue.create () in
  dist.(v) <- 0;
  Queue.add v q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    Array.iter
      (fun (w, _) ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(u) + 1;
          Queue.add w q
        end)
      (G.incident g u)
  done;
  dist

let diameter g =
  let best = ref 0 in
  for v = 0 to G.n g - 1 do
    let dist = distances g v in
    Array.iter (fun d -> if d > !best then best := d) dist
  done;
  !best

(* Farthest vertex (and its distance) from [v] within v's component. *)
let farthest g v =
  let dist = distances g v in
  let best_v = ref v and best_d = ref 0 in
  Array.iteri
    (fun u d ->
      if d > !best_d then begin
        best_d := d;
        best_v := u
      end)
    dist;
  (!best_v, !best_d)

let tree_diameter g =
  if not (is_forest g) then invalid_arg "Traversal.tree_diameter: not a forest";
  let label, c = components g in
  let rep = Array.make c (-1) in
  Array.iteri (fun v l -> if rep.(l) < 0 then rep.(l) <- v) label;
  let best = ref 0 in
  Array.iter
    (fun v ->
      let far, _ = farthest g v in
      let _, d = farthest g far in
      if d > !best then best := d)
    rep;
  !best

let spanning_forest g =
  let uf = Union_find.create (G.n g) in
  let keep = Array.make (G.m g) false in
  G.fold_edges
    (fun e u v () -> if Union_find.union uf u v then keep.(e) <- true)
    g ();
  keep

let bfs_tree g root =
  let n = G.n g in
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let depth = Array.make n (-1) in
  let q = Queue.create () in
  depth.(root) <- 0;
  Queue.add root q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    Array.iter
      (fun (w, e) ->
        if depth.(w) < 0 then begin
          depth.(w) <- depth.(u) + 1;
          parent.(w) <- u;
          parent_edge.(w) <- e;
          Queue.add w q
        end)
      (G.incident g u)
  done;
  (parent, parent_edge, depth)
