(** Graph traversal utilities: components, distances, forests, diameters. *)

(** [components g] assigns every vertex a component label in [0..c-1];
    returns [(labels, c)]. *)
val components : Multigraph.t -> int array * int

(** [is_forest g] holds when [g] is acyclic (parallel edges count as a
    2-cycle). *)
val is_forest : Multigraph.t -> bool

(** [distances g v] is the array of BFS distances from [v]; unreachable
    vertices get [-1]. *)
val distances : Multigraph.t -> int -> int array

(** [diameter g] is the largest eccentricity over all connected components
    (strong diameter, exact, via all-sources BFS). 0 on edgeless graphs. *)
val diameter : Multigraph.t -> int

(** [tree_diameter g] computes, for a forest, the maximum over trees of the
    path diameter using two BFS passes per component (O(n + m)).
    @raise Invalid_argument if [g] is not a forest. *)
val tree_diameter : Multigraph.t -> int

(** [spanning_forest g] is the edge-id set (membership array over edges) of
    an arbitrary spanning forest of [g]. *)
val spanning_forest : Multigraph.t -> bool array

(** [bfs_tree g root] returns [(parent_vertex, parent_edge, depth)] arrays of
    the BFS tree rooted at [root]; unreachable vertices get parents [-1] and
    depth [-1]; the root has parents [-1] and depth [0]. *)
val bfs_tree : Multigraph.t -> int -> int array * int array * int array
