(* nwlint:disable PERF001 -- [reset] is the documented O(n) reinitialise-everything API, called once per rebuild, not a per-query scratch reset *)

type t = {
  parent : int array;
  rank : int array;
  mutable classes : int;
}

let create n =
  if n < 0 then invalid_arg "Union_find.create: negative size";
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; classes = n }

let size t = Array.length t.parent

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    let rank_x = t.rank.(rx) and rank_y = t.rank.(ry) in
    if rank_x < rank_y then t.parent.(rx) <- ry
    else if rank_x > rank_y then t.parent.(ry) <- rx
    else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- rank_x + 1
    end;
    t.classes <- t.classes - 1;
    true
  end

let same t x y = find t x = find t y

let count t = t.classes

let reset t =
  Array.iteri (fun i _ -> t.parent.(i) <- i) t.parent;
  Array.fill t.rank 0 (Array.length t.rank) 0;
  t.classes <- Array.length t.parent

let copy t =
  { parent = Array.copy t.parent; rank = Array.copy t.rank; classes = t.classes }
