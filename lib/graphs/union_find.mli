(** Disjoint-set (union-find) with path compression and union by rank.

    Used throughout for cycle detection when building forests: a candidate
    edge [uv] closes a cycle in a forest exactly when [find t u = find t v]. *)

type t

(** [create n] is a union-find structure over elements [0 .. n-1], each in
    its own singleton class. *)
val create : int -> t

(** Number of elements the structure was created with. *)
val size : t -> int

(** Canonical representative of the class of [x]. *)
val find : t -> int -> int

(** [union t x y] merges the classes of [x] and [y]. Returns [true] if the
    classes were distinct (a merge happened), [false] if they were already
    the same class. *)
val union : t -> int -> int -> bool

(** [same t x y] is [find t x = find t y]. *)
val same : t -> int -> int -> bool

(** Number of disjoint classes currently present. *)
val count : t -> int

(** [reset t] returns every element to its own singleton class. *)
val reset : t -> unit

(** [copy t] is an independent copy sharing no mutable state. *)
val copy : t -> t
