(* Growable unboxed int vector: the shared builder buffer behind the
   Multigraph and Csr edge builders and the generator endpoint pools.
   Doubling int arrays instead of cons lists: a 10^7-push build touches a
   handful of contiguous arrays, never the minor heap per element. *)

type t = { mutable buf : int array; mutable len : int }

let create ?(capacity = 16) () =
  if capacity < 1 then invalid_arg "Vecbuf.create: capacity < 1";
  { buf = Array.make capacity 0; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.buf then begin
    let fresh = Array.make (2 * t.len) 0 in
    Array.blit t.buf 0 fresh 0 t.len;
    t.buf <- fresh
  end;
  t.buf.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vecbuf.get: index out of range";
  t.buf.(i)

let unsafe_get t i = t.buf.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vecbuf.set: index out of range";
  t.buf.(i) <- x

let to_array t = Array.sub t.buf 0 t.len
