(** Growable unboxed int vector (doubling backing array).

    One shared implementation of the PR 6 "growable int arrays" builder
    idiom: the {!Multigraph} and {!Csr} edge builders append endpoint
    pairs through it, and {!Generators} uses it for the
    preferential-attachment endpoint pool. Appending [k] elements costs
    O(k) amortized with O(log k) allocations, all of them large arrays
    outside the per-element minor-heap traffic of a cons list. *)

type t

(** [create ?capacity ()] is an empty vector ([capacity] >= 1, default
    16). *)
val create : ?capacity:int -> unit -> t

val length : t -> int

(** Append one element, doubling the backing array when full. *)
val push : t -> int -> unit

(** @raise Invalid_argument when the index is out of range. *)
val get : t -> int -> int

(** Unchecked read — for hot fill loops whose bounds are already
    established (e.g. the CSR counting-sort pass over [0..length-1]). *)
val unsafe_get : t -> int -> int

(** @raise Invalid_argument when the index is out of range. *)
val set : t -> int -> int -> unit

val to_array : t -> int array
