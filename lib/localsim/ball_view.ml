module G = Nw_graphs.Multigraph

type ball = {
  center : int;
  vertices : int list;
  edges : (int * int * int) list;
}

(* a record is one vertex's identity plus its incident edge list; records
   spread one hop per round *)
type record = { owner : int; incident : (int * int * int) list }

type state = (int, record) Hashtbl.t

(* explicit comparators (same order as the polymorphic compare they
   replace): canonical ball views must not depend on structural compare *)
let compare_edge (e1, a1, b1) (e2, a2, b2) =
  let c = Int.compare e1 e2 in
  if c <> 0 then c
  else
    let c = Int.compare a1 a2 in
    if c <> 0 then c else Int.compare b1 b2

let collect g ~radius ~rounds =
  let n = G.n g in
  let init v : state =
    let tbl = Hashtbl.create 16 in
    let incident =
      Array.to_list
        (Array.map
           (fun (w, e) ->
             let u', v' = G.endpoints g e in
             ignore w;
             (e, u', v'))
           (G.incident g v))
    in
    Hashtbl.replace tbl v { owner = v; incident };
    tbl
  in
  let net = Msg_net.create g ~rounds ~init in
  let send v (st : state) =
    ignore v;
    let facts = Hashtbl.fold (fun _ r acc -> r :: acc) st [] in
    Array.to_list (Array.map (fun (_, e) -> (e, facts)) (G.incident g v))
  in
  let recv v st msgs =
    ignore v;
    List.iter
      (fun (_, facts) ->
        List.iter
          (fun r ->
            if not (Hashtbl.mem st r.owner) then Hashtbl.replace st r.owner r)
          facts)
      msgs;
    st
  in
  for _ = 1 to radius do
    Msg_net.round net ~label:"ball-view/collect" ~send ~recv
  done;
  Array.init n (fun v ->
      let st = Msg_net.state net v in
      let vertices =
        Hashtbl.fold (fun owner _ acc -> owner :: acc) st []
        |> List.sort Int.compare
      in
      let known u = Hashtbl.mem st u in
      let edges = Hashtbl.create 64 in
      Hashtbl.iter
        (fun _ r ->
          List.iter
            (fun (e, a, b) ->
              if known a && known b then Hashtbl.replace edges e (a, b))
            r.incident)
        st;
      let edges =
        Hashtbl.fold (fun e (a, b) acc -> (e, a, b) :: acc) edges []
        |> List.sort compare_edge
      in
      { center = v; vertices; edges })

module Scratch = Nw_graphs.Scratch

(* central BFS oracle on generation-stamped scratch: [reference_all]
   resets in O(ball size) per center instead of allocating two O(n)
   arrays per query *)
let reference_into g ~radius v ~dist ~members =
  Scratch.Ints.reset dist;
  let q = Queue.create () in
  Scratch.Ints.set dist v 0;
  Queue.add v q;
  let acc = ref [] in
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    let d = Scratch.Ints.get dist u ~default:0 in
    acc := u :: !acc;
    if d < radius then
      G.iter_incident g u (fun w _ ->
          if not (Scratch.Ints.mem dist w) then begin
            Scratch.Ints.set dist w (d + 1);
            Queue.add w q
          end)
  done;
  let vertices = List.sort Int.compare !acc in
  Scratch.Marks.reset members;
  List.iter (fun u -> Scratch.Marks.add members u) vertices;
  let edges =
    G.fold_edges
      (fun e a b acc ->
        if Scratch.Marks.mem members a && Scratch.Marks.mem members b then
          (e, a, b) :: acc
        else acc)
      g []
    |> List.sort compare_edge
  in
  { center = v; vertices; edges }

let reference g ~radius v =
  let n = G.n g in
  reference_into g ~radius v ~dist:(Scratch.Ints.create n)
    ~members:(Scratch.Marks.create n)

let reference_all g ~radius =
  let n = G.n g in
  let dist = Scratch.Ints.create n and members = Scratch.Marks.create n in
  Array.init n (fun v -> reference_into g ~radius v ~dist ~members)
