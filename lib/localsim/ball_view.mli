(** Distributed neighborhood collection — the LOCAL model's fundamental
    primitive.

    In the LOCAL model, [r] communication rounds let every vertex learn the
    entire topology within distance [r] (full-information gathering). This
    module implements that gathering as an actual message-passing protocol
    on {!Msg_net}: each round every vertex forwards everything it knows, so
    after round [i] it knows its distance-[i] ball. It substantiates the
    fidelity argument of DESIGN.md: any of the library's centrally-simulated
    phases could be executed by nodes that first collect the ball this
    module delivers and then compute locally.

    Cost: exactly [r] rounds (charged to the ledger by the kernel), messages
    of unbounded size — as in LOCAL. *)

type ball = {
  center : int;
  vertices : int list; (** within distance [r], ascending *)
  edges : (int * int * int) list;
      (** [(edge_id, u, v)]: the subgraph induced by [vertices], ascending
          by edge id *)
}

(** [collect g ~radius ~rounds] runs the gathering protocol and returns
    every vertex's ball. Charges exactly [radius] rounds. *)
val collect :
  Nw_graphs.Multigraph.t ->
  radius:int ->
  rounds:Rounds.t ->
  ball array

(** [reference g ~radius v] computes the same ball centrally (BFS); the
    tests check [collect] against it vertex by vertex. *)
val reference : Nw_graphs.Multigraph.t -> radius:int -> int -> ball

(** [reference_all g ~radius] is [reference] for every vertex, sharing one
    generation-stamped scratch across the queries (O(ball) reset each,
    no per-query O(n) allocation). *)
val reference_all : Nw_graphs.Multigraph.t -> radius:int -> ball array
