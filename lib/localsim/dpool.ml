(* nwlint:disable EXN001 -- the fork-join captures worker exceptions as
   values so every domain is joined before the first failure re-raises;
   nothing is swallowed *)

(* Round-parallelism configuration and the tiny fork-join primitive the
   message-passing kernel shards rounds with.

   The domain count is ambient and domain-local (like the fault context
   and the Obs trace stack): [with_domains k] scopes it, and a net
   created inside picks it up at creation time. This keeps every
   algorithm signature unchanged while letting bench/forestd turn on
   parallel rounds with a flag.

   [run] is a plain spawn/join barrier per call. The kernel uses one
   barrier per round phase; for the round counts the LOCAL algorithms
   here execute (O(log n / eps), O(log* n)) the spawn cost is noise next
   to the per-round edge scan at bench scale. *)

let ambient : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 1)

let available () = !(Domain.DLS.get ambient)

let with_domains k f =
  if k < 1 then invalid_arg "Dpool.with_domains: need k >= 1";
  let cell = Domain.DLS.get ambient in
  let saved = !cell in
  cell := k;
  Fun.protect ~finally:(fun () -> cell := saved) f

(* contiguous vertex shards: shard d owns [fst .. snd - 1] *)
let split n k =
  Array.init k (fun d -> (d * n / k, (d + 1) * n / k))

(* Helper-domain allocation accounting. Gc.quick_stat on the spawning
   domain only sees its own minor/major words: whatever the helpers
   allocate during a parallel round would vanish from per-pass resource
   attribution. Each helper thunk deltas its own quick_stat and folds
   the words into these process-wide accumulators; the engine reads the
   before/after difference at pass boundaries. Monotonic counters, so
   concurrent readers only ever under-count an in-flight round. *)
let worker_minor = Atomic.make 0
let worker_major = Atomic.make 0
let worker_minor_words () = Atomic.get worker_minor
let worker_major_words () = Atomic.get worker_major

let accounted f d =
  let s0 = Gc.quick_stat () in
  Fun.protect
    ~finally:(fun () ->
      let s1 = Gc.quick_stat () in
      let add acc w = ignore (Atomic.fetch_and_add acc (int_of_float w)) in
      add worker_minor (s1.Gc.minor_words -. s0.Gc.minor_words);
      add worker_major (s1.Gc.major_words -. s0.Gc.major_words))
    (fun () -> f d)

let run ~domains f =
  if domains <= 1 then f 0
  else begin
    let helpers =
      List.init (domains - 1) (fun i ->
          Domain.spawn (fun () -> accounted f (i + 1)))
    in
    let here = try Ok (f 0) with e -> Error e in
    let failures =
      List.filter_map
        (fun d -> try Domain.join d; None with e -> Some e)
        helpers
    in
    match (here, failures) with
    | Ok (), [] -> ()
    | Error e, _ | Ok (), e :: _ -> raise e
  end
