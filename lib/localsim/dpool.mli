(** Round-parallelism configuration for the LOCAL simulator.

    [Msg_net] shards each round's send/recv phases across this many
    domains (with a deterministic merge, so results are byte-identical to
    the sequential path — see [docs/data-plane.md]). The count is ambient
    and domain-local: nets capture it at creation, exactly like the fault
    context. Default 1 (fully sequential). *)

(** The ambient domain count ([>= 1]). *)
val available : unit -> int

(** [with_domains k f] runs [f] with the ambient count set to [k],
    restoring the previous value afterwards (also on exception).
    @raise Invalid_argument if [k < 1]. *)
val with_domains : int -> (unit -> 'a) -> 'a

(** [split n k]: contiguous shards of [0 .. n-1] as [(lo, hi)] pairs,
    shard [d] owning [lo .. hi - 1]. *)
val split : int -> int -> (int * int) array

(** [run ~domains f] executes [f 0 .. f (domains - 1)] concurrently
    ([f 0] on the calling domain) and joins them all; re-raises the first
    failure after every domain has finished. [domains <= 1] is just
    [f 0]. *)
val run : domains:int -> (int -> unit) -> unit

(** {1 Helper-domain allocation accounting}

    [Gc.quick_stat] deltas on the calling domain miss whatever spawned
    helpers allocate. Every helper launched by {!run} folds its own
    minor/major allocated words into process-wide monotonic
    accumulators; per-pass resource attribution reads the before/after
    difference at pass boundaries. *)

val worker_minor_words : unit -> int
val worker_major_words : unit -> int
