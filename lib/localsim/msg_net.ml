(* ------------------------------------------------------------------ *)
(* fault-injection hook surface (policy lives in lib/chaos)            *)
(* ------------------------------------------------------------------ *)

type delivery = Deliver | Drop | Duplicate of int | Delay of int

type faults = {
  node_up : round:int -> int -> bool;
  state_reset : round:int -> int -> bool;
  deliver : round:int -> edge:int -> src:int -> dst:int -> delivery;
  reorder : round:int -> dst:int -> int -> int array option;
}

let no_faults =
  {
    node_up = (fun ~round:_ _ -> true);
    state_reset = (fun ~round:_ _ -> false);
    deliver = (fun ~round:_ ~edge:_ ~src:_ ~dst:_ -> Deliver);
    reorder = (fun ~round:_ ~dst:_ _ -> None);
  }

type fault_stats = {
  mutable drops : int;
  mutable dups : int;
  mutable delays : int;
  mutable crashes : int;
  mutable restarts : int;
  mutable reorders : int;
  mutable digest : int64;
}

let fresh_stats () =
  {
    drops = 0;
    dups = 0;
    delays = 0;
    crashes = 0;
    restarts = 0;
    reorders = 0;
    digest = 0L;
  }

(* SplitMix64 finalizer: the timeline digest folds every fault event
   through it, so two runs agree on the digest iff they agree on the
   full ordered event sequence *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let note st ~code ~round ~who =
  let ev = Int64.of_int ((code * 0x1000003) + (round * 8191) + who) in
  st.digest <- mix64 (Int64.logxor st.digest (mix64 ev))

(* The ambient fault context is domain-local (like the Obs trace stack):
   nets created while [with_faults] is active pick it up, so the genuine
   message-passing algorithms run under injected faults without their
   signatures changing. Empty by default: a net created outside
   [with_faults] takes the exact fault-free code path. *)
let ambient : (faults * fault_stats) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_faults f thunk =
  let cell = Domain.DLS.get ambient in
  let saved = !cell in
  let stats = fresh_stats () in
  cell := Some (f, stats);
  let x = Fun.protect ~finally:(fun () -> cell := saved) thunk in
  (x, stats)

(* ------------------------------------------------------------------ *)
(* the kernel, generic over the graph data plane                       *)
(* ------------------------------------------------------------------ *)

module Make (G : Nw_graphs.Graph_sig.GRAPH) = struct
  type ('state, 'msg) t = {
    g : G.t;
    rounds : Rounds.t;
    states : 'state array;
    init : int -> 'state;
    chaos : (faults * fault_stats) option;
    par : int; (* ambient Dpool domain count captured at creation *)
    delayed : (int, (int * int * 'msg) list) Hashtbl.t;
        (* arrival round -> (dst, edge, msg), reversed arrival order *)
    mutable round_num : int;
    mutable delivered : int;
  }

  let create g ~rounds ~init =
    {
      g;
      rounds;
      states = Array.init (G.n g) init;
      init;
      chaos = !(Domain.DLS.get ambient);
      par = Dpool.available ();
      delayed = Hashtbl.create 4;
      round_num = 0;
      delivered = 0;
    }

  let graph t = t.g
  let state t v = t.states.(v)
  let set_state t v s = t.states.(v) <- s
  let states t = Array.copy t.states
  let fault_stats t = Option.map snd t.chaos

  (* the fault-free path: byte-identical behavior to the kernel before
     the chaos subsystem existed (the golden differential depends on it) *)
  let plain_step t ~send ~recv =
    let n = G.n t.g in
    let inbox : (int * 'msg) list array = Array.make n [] in
    for v = 0 to n - 1 do
      List.iter
        (fun (e, msg) ->
          let w = G.other_endpoint t.g e v in
          (* other_endpoint raises if e is not incident to v *)
          inbox.(w) <- (e, msg) :: inbox.(w);
          t.delivered <- t.delivered + 1)
        (send v t.states.(v))
    done;
    for v = 0 to n - 1 do
      t.states.(v) <- recv v t.states.(v) inbox.(v)
    done

  (* Domain-parallel fault-free round: vertex shards, per-domain
     mailboxes, a deterministic merge. The sequential path builds
     [inbox.(w)] by consing while scanning sources v = 0..n-1, i.e. the
     final list is the reversed arrival order with arrival rank = source
     order. Each domain scans a contiguous source shard and conses into
     its own mailbox, so domain [d]'s buffer is the reversed arrival
     order *within* shard [d]; concatenating buffers in descending shard
     order rebuilds exactly the sequential list. Hence states, delivered
     counts, and everything downstream are byte-identical at any K. *)
  let plain_step_par t k ~send ~recv =
    let n = G.n t.g in
    let shards = Dpool.split n k in
    let mailboxes : (int * 'msg) list array array =
      Array.init k (fun _ -> Array.make n [])
    in
    let sent = Array.make k 0 in
    Dpool.run ~domains:k (fun d ->
        let lo, hi = shards.(d) in
        let mail = mailboxes.(d) in
        let c = ref 0 in
        for v = lo to hi - 1 do
          List.iter
            (fun (e, msg) ->
              let w = G.other_endpoint t.g e v in
              mail.(w) <- (e, msg) :: mail.(w);
              incr c)
            (send v t.states.(v))
        done;
        sent.(d) <- !c);
    (* merge in fixed shard order: deterministic by construction *)
    for d = 0 to k - 1 do
      t.delivered <- t.delivered + sent.(d)
    done;
    let inbox =
      Array.init n (fun w ->
          let acc = ref mailboxes.(0).(w) in
          for d = 1 to k - 1 do
            acc := mailboxes.(d).(w) @ !acc
          done;
          !acc)
    in
    Dpool.run ~domains:k (fun d ->
        let lo, hi = shards.(d) in
        for v = lo to hi - 1 do
          t.states.(v) <- recv v t.states.(v) inbox.(v)
        done)

  (* Counting round (messages carry no payload): the all-incident
     broadcast is a per-destination message count, so the kernel streams
     the adjacency plane directly — no per-message list or tuple cells.
     Message accounting matches plain_step exactly: one delivery per
     incident edge of each deciding vertex. *)
  let count_step t ~decide ~recv =
    let n = G.n t.g in
    let cnt = Array.make n 0 in
    let sent = ref 0 in
    for v = 0 to n - 1 do
      if decide v t.states.(v) then
        G.iter_incident t.g v (fun w _ ->
            cnt.(w) <- cnt.(w) + 1;
            incr sent)
    done;
    t.delivered <- t.delivered + !sent;
    for v = 0 to n - 1 do
      t.states.(v) <- recv v t.states.(v) cnt.(v)
    done

  let count_step_par t k ~decide ~recv =
    let n = G.n t.g in
    let shards = Dpool.split n k in
    let cnts = Array.init k (fun _ -> Array.make n 0) in
    let sent = Array.make k 0 in
    Dpool.run ~domains:k (fun d ->
        let lo, hi = shards.(d) in
        let cnt = cnts.(d) in
        let c = ref 0 in
        for v = lo to hi - 1 do
          if decide v t.states.(v) then
            G.iter_incident t.g v (fun w _ ->
                cnt.(w) <- cnt.(w) + 1;
                incr c)
        done;
        sent.(d) <- !c);
    for d = 0 to k - 1 do
      t.delivered <- t.delivered + sent.(d)
    done;
    (* column-sharded merge: integer sums, order-independent *)
    let cnt = cnts.(0) in
    Dpool.run ~domains:k (fun d ->
        let lo, hi = shards.(d) in
        for dd = 1 to k - 1 do
          let c = cnts.(dd) in
          for w = lo to hi - 1 do
            cnt.(w) <- cnt.(w) + c.(w)
          done
        done);
    Dpool.run ~domains:k (fun d ->
        let lo, hi = shards.(d) in
        for v = lo to hi - 1 do
          t.states.(v) <- recv v t.states.(v) cnt.(v)
        done)

  (* Exchange round (every vertex broadcasts one int on every incident
     edge): the inbox of [w] is then exactly one value per incident
     edge — the neighbor's broadcast — so the kernel gathers it by
     streaming [w]'s own adjacency against a precomputed value array
     instead of materializing per-message list cells. Runs identically
     on both planes (the order contract below makes it plane-invariant);
     message accounting matches the generic path: one delivery per
     incidence, 2m per round. [recv] sees the messages in the
     *receiver's incidence order* (ascending slot), which coincides on
     both planes by the CSR order contract. *)
  let exchange_step t ~value ~recv =
    let n = G.n t.g in
    let vals = Array.make n 0 in
    for v = 0 to n - 1 do
      vals.(v) <- value v t.states.(v)
    done;
    for v = 0 to n - 1 do
      t.states.(v) <-
        recv v t.states.(v) (fun f ->
            G.iter_incident t.g v (fun u e -> f e vals.(u)))
    done;
    t.delivered <- t.delivered + (2 * G.m t.g)

  let exchange_step_par t k ~value ~recv =
    let n = G.n t.g in
    let shards = Dpool.split n k in
    let vals = Array.make n 0 in
    Dpool.run ~domains:k (fun d ->
        let lo, hi = shards.(d) in
        for v = lo to hi - 1 do
          vals.(v) <- value v t.states.(v)
        done);
    (* gather is read-only on [vals] and writes only the shard's own
       states: deterministic at any K by construction *)
    Dpool.run ~domains:k (fun d ->
        let lo, hi = shards.(d) in
        for v = lo to hi - 1 do
          t.states.(v) <-
            recv v t.states.(v) (fun f ->
                G.iter_incident t.g v (fun u e -> f e vals.(u)))
        done);
    t.delivered <- t.delivered + (2 * G.m t.g)

  (* Edge-valued exchange: like [exchange_step], but the broadcast value
     may depend on the edge it crosses ([value v st e]) — the shape of
     the concurrent multi-forest Cole–Vishkin round, where a vertex's
     message on edge [e] is its color in [e]'s forest. The contract
     requires [value] to be pure over the round (it must not observe
     anything [recv] changes), so the gather evaluates it on the fly at
     each receiver instead of snapshotting 2m message slots first: one
     random access per delivery, no per-round edge-sized scratch. *)
  let exchange_edges_step t ~value ~recv =
    let n = G.n t.g in
    for v = 0 to n - 1 do
      t.states.(v) <-
        recv v t.states.(v) (fun f ->
            G.iter_incident t.g v (fun u e -> f e (value u t.states.(u) e)))
    done;
    t.delivered <- t.delivered + (2 * G.m t.g)

  let exchange_edges_step_par t k ~value ~recv =
    let n = G.n t.g in
    let shards = Dpool.split n k in
    (* purity of [value] over the round is what makes the shards
       independent: every domain reads the same pre-round view *)
    Dpool.run ~domains:k (fun d ->
        let lo, hi = shards.(d) in
        for v = lo to hi - 1 do
          t.states.(v) <-
            recv v t.states.(v) (fun f ->
                G.iter_incident t.g v (fun u e ->
                    f e (value u t.states.(u) e)))
        done);
    t.delivered <- t.delivered + (2 * G.m t.g)

  (* the faulty path: crashed nodes neither send, receive, nor update
     state; a restart resets the node to its initial state (state loss);
     per-message delivery decisions come from the installed fault policy.
     With a policy that never fires (all Deliver, everyone up, no
     reorder), inboxes are built in exactly the plain_step order, so the
     outcome is still byte-identical.

     Always sequential: the timeline digest is order-sensitive over the
     full event sequence, and keeping one canonical event order is what
     makes it a cross-backend, cross-domain-count invariant. *)
  let faulty_step t (f, st) ~send ~recv =
    let n = G.n t.g in
    let r = t.round_num in
    let up = Array.init n (fun v -> f.node_up ~round:r v) in
    for v = 0 to n - 1 do
      let up_before = r = 0 || f.node_up ~round:(r - 1) v in
      if up_before && not up.(v) then begin
        st.crashes <- st.crashes + 1;
        note st ~code:1 ~round:r ~who:v;
        Nw_obs.Obs.count "chaos.crashes"
      end;
      if up.(v) && f.state_reset ~round:r v then begin
        t.states.(v) <- t.init v;
        st.restarts <- st.restarts + 1;
        note st ~code:2 ~round:r ~who:v;
        Nw_obs.Obs.count "chaos.restarts"
      end
    done;
    let inbox : (int * 'msg) list array = Array.make n [] in
    let deliver_to w e msg =
      if up.(w) then begin
        inbox.(w) <- (e, msg) :: inbox.(w);
        t.delivered <- t.delivered + 1
      end
      else begin
        (* messages to a down node are lost *)
        st.drops <- st.drops + 1;
        note st ~code:3 ~round:r ~who:e;
        Nw_obs.Obs.count "chaos.drops"
      end
    in
    (* delayed messages scheduled for this round arrive first, in the
       order they were delayed *)
    (match Hashtbl.find_opt t.delayed r with
    | None -> ()
    | Some l ->
        Hashtbl.remove t.delayed r;
        List.iter (fun (w, e, msg) -> deliver_to w e msg) (List.rev l));
    for v = 0 to n - 1 do
      if up.(v) then
        List.iter
          (fun (e, msg) ->
            let w = G.other_endpoint t.g e v in
            match f.deliver ~round:r ~edge:e ~src:v ~dst:w with
            | Deliver -> deliver_to w e msg
            | Drop ->
                st.drops <- st.drops + 1;
                note st ~code:3 ~round:r ~who:e;
                Nw_obs.Obs.count "chaos.drops"
            | Duplicate k ->
                let k = max 0 k in
                for _ = 0 to k do
                  deliver_to w e msg
                done;
                if k > 0 then begin
                  st.dups <- st.dups + k;
                  note st ~code:4 ~round:r ~who:e;
                  Nw_obs.Obs.count ~by:k "chaos.dups"
                end
            | Delay d ->
                if d <= 0 then deliver_to w e msg
                else begin
                  let arrival = r + d in
                  let cur =
                    Option.value ~default:[]
                      (Hashtbl.find_opt t.delayed arrival)
                  in
                  Hashtbl.replace t.delayed arrival ((w, e, msg) :: cur);
                  st.delays <- st.delays + 1;
                  note st ~code:5 ~round:r ~who:e;
                  Nw_obs.Obs.count "chaos.delays"
                end)
          (send v t.states.(v))
    done;
    for v = 0 to n - 1 do
      if up.(v) then begin
        let msgs = inbox.(v) in
        let msgs =
          match f.reorder ~round:r ~dst:v (List.length msgs) with
          | None -> msgs
          | Some perm ->
              let arr = Array.of_list msgs in
              if Array.length perm <> Array.length arr then msgs
              else begin
                st.reorders <- st.reorders + 1;
                note st ~code:6 ~round:r ~who:v;
                Array.to_list (Array.map (fun i -> arr.(i)) perm)
              end
        in
        t.states.(v) <- recv v t.states.(v) msgs
      end
    done

  (* the all-incident broadcast of a deciding vertex, as explicit
     messages in the incident (ascending edge-id) order — the faulty
     path needs real per-message verdicts *)
  let synth_send t ~decide v st =
    if decide v st then
      List.rev
        (G.fold_incident t.g v ~init:[] (fun acc _ e -> (e, ()) :: acc))
    else []

  (* the kernel charges one round per call on behalf of whatever phase
     span is open in the caller (or the trace's unattributed bucket) *)
  let[@obs.in_span] round t ~label ~send ~recv =
    let before = t.delivered in
    (match t.chaos with
    | None ->
        if t.par > 1 then plain_step_par t t.par ~send ~recv
        else plain_step t ~send ~recv
    | Some c -> faulty_step t c ~send ~recv);
    t.round_num <- t.round_num + 1;
    Rounds.charge t.rounds ~label 1;
    Nw_obs.Obs.count "msg_net.rounds";
    if t.delivered > before then
      Nw_obs.Obs.count "msg_net.messages" ~by:(t.delivered - before)

  let[@obs.in_span] round_count t ~label ~decide ~recv =
    let before = t.delivered in
    (match t.chaos with
    | None ->
        if t.par > 1 then count_step_par t t.par ~decide ~recv
        else count_step t ~decide ~recv
    | Some c ->
        (* under faults every message needs its own verdict: fall back
           to the canonical sequential per-message path *)
        let send v st = synth_send t ~decide v st in
        let recv v st msgs = recv v st (List.length msgs) in
        faulty_step t c ~send ~recv);
    t.round_num <- t.round_num + 1;
    Rounds.charge t.rounds ~label 1;
    Nw_obs.Obs.count "msg_net.rounds";
    if t.delivered > before then
      Nw_obs.Obs.count "msg_net.messages" ~by:(t.delivered - before)

  let[@obs.in_span] round_exchange t ~label ~value ~recv =
    let before = t.delivered in
    (match t.chaos with
    | None ->
        if t.par > 1 then exchange_step_par t t.par ~value ~recv
        else exchange_step t ~value ~recv
    | Some c ->
        (* under faults every message needs its own verdict: fall back
           to the canonical sequential per-message path (recv then sees
           the inbox order, as the fault scheduler dictates) *)
        let send v st =
          let x = value v st in
          List.rev
            (G.fold_incident t.g v ~init:[] (fun acc _ e -> (e, x) :: acc))
        in
        let recv v st msgs =
          recv v st (fun f -> List.iter (fun (e, x) -> f e x) msgs)
        in
        faulty_step t c ~send ~recv);
    t.round_num <- t.round_num + 1;
    Rounds.charge t.rounds ~label 1;
    Nw_obs.Obs.count "msg_net.rounds";
    if t.delivered > before then
      Nw_obs.Obs.count "msg_net.messages" ~by:(t.delivered - before)

  let[@obs.in_span] round_exchange_edges t ~label ~value ~recv =
    let before = t.delivered in
    (match t.chaos with
    | None ->
        if t.par > 1 then exchange_edges_step_par t t.par ~value ~recv
        else exchange_edges_step t ~value ~recv
    | Some c ->
        let send v st =
          List.rev
            (G.fold_incident t.g v ~init:[] (fun acc _ e ->
                 (e, value v st e) :: acc))
        in
        let recv v st msgs =
          recv v st (fun f -> List.iter (fun (e, x) -> f e x) msgs)
        in
        faulty_step t c ~send ~recv);
    t.round_num <- t.round_num + 1;
    Rounds.charge t.rounds ~label 1;
    Nw_obs.Obs.count "msg_net.rounds";
    if t.delivered > before then
      Nw_obs.Obs.count "msg_net.messages" ~by:(t.delivered - before)

  let messages_delivered t = t.delivered
  let rounds_executed t = t.round_num

  let run_until t ~label ~send ~recv ~halted ~max_rounds =
    let n = G.n t.g in
    let all_halted () =
      let rec check v = v >= n || (halted v t.states.(v) && check (v + 1)) in
      check 0
    in
    let rec loop executed =
      if all_halted () then executed
      else if executed >= max_rounds then
        failwith "Msg_net.run_until: max_rounds exceeded"
      else begin
        round t ~label ~send ~recv;
        loop (executed + 1)
      end
    in
    loop 0
end

(* ------------------------------------------------------------------ *)
(* the Multigraph-facing API: dispatches to the plane selected by      *)
(* Backend.default at creation time                                    *)
(* ------------------------------------------------------------------ *)

module Boxed_kernel = Make (Nw_graphs.Multigraph)
module Csr_kernel = Make (Nw_graphs.Csr)

type ('state, 'msg) t =
  | Boxed of ('state, 'msg) Boxed_kernel.t
  | Csr of Nw_graphs.Multigraph.t * ('state, 'msg) Csr_kernel.t
      (* the original graph is kept for [graph]: callers hold Multigraph
         handles and artifact kinds stay backend-agnostic *)

let create g ~rounds ~init =
  match Nw_graphs.Backend.default () with
  | Nw_graphs.Backend.Boxed -> Boxed (Boxed_kernel.create g ~rounds ~init)
  | Nw_graphs.Backend.Csr ->
      Csr
        (g, Csr_kernel.create (Nw_graphs.Csr.of_multigraph g) ~rounds ~init)

let graph = function
  | Boxed b -> Boxed_kernel.graph b
  | Csr (g, _) -> g

let state = function
  | Boxed b -> Boxed_kernel.state b
  | Csr (_, c) -> Csr_kernel.state c

let set_state = function
  | Boxed b -> Boxed_kernel.set_state b
  | Csr (_, c) -> Csr_kernel.set_state c

let states = function
  | Boxed b -> Boxed_kernel.states b
  | Csr (_, c) -> Csr_kernel.states c

let fault_stats = function
  | Boxed b -> Boxed_kernel.fault_stats b
  | Csr (_, c) -> Csr_kernel.fault_stats c

let round t ~label ~send ~recv =
  match t with
  | Boxed b -> Boxed_kernel.round b ~label ~send ~recv
  | Csr (_, c) -> Csr_kernel.round c ~label ~send ~recv

let round_count t ~label ~decide ~recv =
  match t with
  | Boxed b ->
      (* reference plane: execute the exact generic per-message path the
         seed kernel ran, so the boxed backend stays the byte-for-byte
         (and allocation-for-allocation) baseline *)
      let g = Boxed_kernel.graph b in
      let send v st =
        if decide v st then
          List.rev
            (Nw_graphs.Multigraph.fold_incident g v ~init:[]
               (fun acc _ e -> (e, ()) :: acc))
        else []
      in
      let recv v st msgs = recv v st (List.length msgs) in
      Boxed_kernel.round b ~label ~send ~recv
  | Csr (_, c) -> Csr_kernel.round_count c ~label ~decide ~recv

let round_exchange t ~label ~value ~recv =
  match t with
  | Boxed b ->
      (* reference plane: the exact generic per-message path, as with
         round_count — the boxed backend stays the byte-for-byte (and
         allocation-for-allocation) baseline. recv then consumes the
         inbox in generic arrival order, not incidence order; the
         primitive's contract already requires order-insensitivity, and
         the cross-plane differentials pin the outcome. *)
      let g = Boxed_kernel.graph b in
      let send v st =
        let x = value v st in
        List.rev
          (Nw_graphs.Multigraph.fold_incident g v ~init:[] (fun acc _ e ->
               (e, x) :: acc))
      in
      let recv v st msgs =
        recv v st (fun f -> List.iter (fun (e, x) -> f e x) msgs)
      in
      Boxed_kernel.round b ~label ~send ~recv
  | Csr (_, c) -> Csr_kernel.round_exchange c ~label ~value ~recv

let round_exchange_edges t ~label ~value ~recv =
  match t with
  | Boxed b ->
      (* reference plane: generic per-message path, as above *)
      let g = Boxed_kernel.graph b in
      let send v st =
        List.rev
          (Nw_graphs.Multigraph.fold_incident g v ~init:[] (fun acc _ e ->
               (e, value v st e) :: acc))
      in
      let recv v st msgs =
        recv v st (fun f -> List.iter (fun (e, x) -> f e x) msgs)
      in
      Boxed_kernel.round b ~label ~send ~recv
  | Csr (_, c) -> Csr_kernel.round_exchange_edges c ~label ~value ~recv

let messages_delivered = function
  | Boxed b -> Boxed_kernel.messages_delivered b
  | Csr (_, c) -> Csr_kernel.messages_delivered c

let rounds_executed = function
  | Boxed b -> Boxed_kernel.rounds_executed b
  | Csr (_, c) -> Csr_kernel.rounds_executed c

let run_until t ~label ~send ~recv ~halted ~max_rounds =
  match t with
  | Boxed b -> Boxed_kernel.run_until b ~label ~send ~recv ~halted ~max_rounds
  | Csr (_, c) -> Csr_kernel.run_until c ~label ~send ~recv ~halted ~max_rounds
