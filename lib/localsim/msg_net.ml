module G = Nw_graphs.Multigraph

type ('state, 'msg) t = {
  g : G.t;
  rounds : Rounds.t;
  states : 'state array;
  mutable delivered : int;
}

let create g ~rounds ~init =
  { g; rounds; states = Array.init (G.n g) init; delivered = 0 }

let graph t = t.g
let state t v = t.states.(v)
let set_state t v s = t.states.(v) <- s
let states t = Array.copy t.states

(* the kernel charges one round per call on behalf of whatever phase
   span is open in the caller (or the trace's unattributed bucket) *)
let[@obs.in_span] round t ~label ~send ~recv =
  let n = G.n t.g in
  let before = t.delivered in
  let inbox : (int * 'msg) list array = Array.make n [] in
  for v = 0 to n - 1 do
    List.iter
      (fun (e, msg) ->
        let w = G.other_endpoint t.g e v in
        (* other_endpoint raises if e is not incident to v *)
        inbox.(w) <- (e, msg) :: inbox.(w);
        t.delivered <- t.delivered + 1)
      (send v t.states.(v))
  done;
  for v = 0 to n - 1 do
    t.states.(v) <- recv v t.states.(v) inbox.(v)
  done;
  Rounds.charge t.rounds ~label 1;
  Nw_obs.Obs.count "msg_net.rounds";
  if t.delivered > before then
    Nw_obs.Obs.count "msg_net.messages" ~by:(t.delivered - before)

let messages_delivered t = t.delivered

let run_until t ~label ~send ~recv ~halted ~max_rounds =
  let n = G.n t.g in
  let all_halted () =
    let rec check v = v >= n || (halted v t.states.(v) && check (v + 1)) in
    check 0
  in
  let rec loop executed =
    if all_halted () then executed
    else if executed >= max_rounds then
      failwith "Msg_net.run_until: max_rounds exceeded"
    else begin
      round t ~label ~send ~recv;
      loop (executed + 1)
    end
  in
  loop 0
