(** Synchronous message-passing kernel for the LOCAL model.

    A genuine round-by-round simulation: in each round every vertex, looking
    only at its own state, emits one message per incident edge (or none);
    messages cross their edge; every vertex then updates its state from the
    received messages. Message sizes are unbounded, as in LOCAL.

    The simpler algorithms (H-partition peeling, Cole–Vishkin coloring) are
    implemented directly on this kernel, demonstrating that they are honest
    distributed algorithms; the round counts it reports are exact.

    {2 Fault injection}

    The kernel exposes a {e mechanism-only} hook surface for deterministic
    fault injection: a {!faults} record of pure decision callbacks (node
    liveness, per-message delivery verdicts, inbox reordering) installed for
    the dynamic extent of {!with_faults}. Fault {e policy} — declarative
    seed-driven plans, the adversarial scheduler, outcome classification and
    recovery — lives in the [nw_chaos] library ([lib/chaos]), which compiles
    a [Chaos.Plan.t] down to a {!faults} record; see [docs/fault-model.md].
    A net created outside {!with_faults} (or with no fault ever firing)
    takes a code path byte-identical to the fault-free kernel. *)

(** Verdict for one message crossing its edge. [Duplicate k] delivers
    [1 + k] copies this round; [Delay d] with [d > 0] delivers the single
    copy [d] rounds later (to whatever the destination's state is then). *)
type delivery = Deliver | Drop | Duplicate of int | Delay of int

(** Pure fault-decision callbacks. Determinism of the fault timeline
    requires each to be a pure function of its arguments (the chaos
    compiler guarantees this by hashing [(round, edge, src, ...)] through
    a splittable seeded RNG).

    - [node_up ~round v]: is [v] alive in [round]? A down node sends
      nothing, receives nothing (messages to it are lost), and does not
      update state.
    - [state_reset ~round v]: does [v] restart with state loss at the
      start of [round]? The node is re-initialised from the net's [init].
    - [deliver ~round ~edge ~src ~dst]: verdict for one message.
    - [reorder ~round ~dst k]: an optional permutation of [0..k-1]
      applied to the [k]-message inbox of [dst] before [recv] sees it
      (the adversarial delivery-order scheduler). *)
type faults = {
  node_up : round:int -> int -> bool;
  state_reset : round:int -> int -> bool;
  deliver : round:int -> edge:int -> src:int -> dst:int -> delivery;
  reorder : round:int -> dst:int -> int -> int array option;
}

(** Everyone up, every message delivered once, no reordering. *)
val no_faults : faults

(** Event counts and a timeline digest, shared by every net created under
    one {!with_faults} extent. [digest] folds each fault event (kind,
    round, subject) in order through a SplitMix64 mix, so equal digests
    across two runs certify identical fault timelines. *)
type fault_stats = {
  mutable drops : int;  (** dropped, including messages to down nodes *)
  mutable dups : int;  (** extra copies delivered *)
  mutable delays : int;  (** messages postponed to a later round *)
  mutable crashes : int;  (** up -> down transitions *)
  mutable restarts : int;  (** state-loss resets *)
  mutable reorders : int;  (** inboxes permuted *)
  mutable digest : int64;  (** order-sensitive timeline fingerprint *)
}

(** [with_faults f thunk] installs [f] as the ambient (domain-local) fault
    context, runs [thunk], restores the previous context (also on
    exception), and returns the thunk's result with the stats accumulated
    by every net created inside. Nests; the inner context wins. *)
val with_faults : faults -> (unit -> 'a) -> 'a * fault_stats

(** {2 The generic kernel}

    The kernel itself is a functor over the {!Nw_graphs.Graph_sig.GRAPH}
    data plane: the same round semantics run on the boxed reference plane
    ([Multigraph]) or the compact CSR plane ([Csr]), byte-identically.
    Rounds additionally shard across [Dpool.available ()] domains (captured
    at creation) with a deterministic mailbox merge, so results are
    byte-identical to the sequential path at any domain count; under an
    ambient fault context the canonical sequential event order is always
    used, keeping the fault-timeline digest invariant. See
    [docs/data-plane.md]. *)

module Make (G : Nw_graphs.Graph_sig.GRAPH) : sig
  type ('state, 'msg) t

  val create :
    G.t -> rounds:Rounds.t -> init:(int -> 'state) -> ('state, 'msg) t

  val graph : ('state, 'msg) t -> G.t
  val state : ('state, 'msg) t -> int -> 'state
  val set_state : ('state, 'msg) t -> int -> 'state -> unit
  val states : ('state, 'msg) t -> 'state array
  val fault_stats : ('state, 'msg) t -> fault_stats option

  val round :
    ('state, 'msg) t ->
    label:string ->
    send:(int -> 'state -> (int * 'msg) list) ->
    recv:(int -> 'state -> (int * 'msg) list -> 'state) ->
    unit

  (** Specialised all-incident broadcast round, payload-free: vertices for
      which [decide] holds send [()] on every incident edge; [recv] sees the
      count of received messages. Semantically [round] with the synthesised
      send/recv, but executed directly on the adjacency plane (no
      per-message allocation). *)
  val round_count :
    ('state, unit) t ->
    label:string ->
    decide:(int -> 'state -> bool) ->
    recv:(int -> 'state -> int -> 'state) ->
    unit

  (** Specialised all-incident int broadcast (the Cole–Vishkin exchange
      shape): every vertex broadcasts [value v st] on every incident
      edge; [recv v st iter] consumes the inbox through [iter f], which
      calls [f edge msg] once per incident edge of [v] — in [v]'s own
      incidence order, identical on both planes by the CSR order
      contract — without materializing message lists. Accounting matches
      {!round}: 2m deliveries, one round charged. Under a fault context
      the canonical per-message path runs instead and [iter] follows the
      (fault-scheduled) inbox order, so [recv] must not depend on
      message order beyond edge identity. *)
  val round_exchange :
    ('state, int) t ->
    label:string ->
    value:(int -> 'state -> int) ->
    recv:(int -> 'state -> ((int -> int -> unit) -> unit) -> 'state) ->
    unit

  (** Like {!round_exchange} but the broadcast value may depend on the
      edge it crosses ([value v st e]) — the concurrent multi-forest
      Cole–Vishkin shape. Contract: [value] must be {e pure over the
      round} — it must not observe anything [recv] changes (state or
      shared mutable data), so the kernel is free to evaluate it before
      or during delivery. The streamed path exploits this by computing
      each message at its receiver with no per-round edge-sized
      scratch. *)
  val round_exchange_edges :
    ('state, int) t ->
    label:string ->
    value:(int -> 'state -> int -> int) ->
    recv:(int -> 'state -> ((int -> int -> unit) -> unit) -> 'state) ->
    unit

  val messages_delivered : ('state, 'msg) t -> int
  val rounds_executed : ('state, 'msg) t -> int

  val run_until :
    ('state, 'msg) t ->
    label:string ->
    send:(int -> 'state -> (int * 'msg) list) ->
    recv:(int -> 'state -> (int * 'msg) list -> 'state) ->
    halted:(int -> 'state -> bool) ->
    max_rounds:int ->
    int
end

(** {2 The Multigraph-facing API}

    What the algorithms use. [create] consults {!Nw_graphs.Backend.default}:
    on [Boxed] the net runs on the graph as given; on [Csr] the graph is
    converted once and the rounds run on the compact plane ([graph] still
    returns the original). Either way the observable behavior is
    byte-identical. *)

type ('state, 'msg) t

(** [create g ~rounds ~init] builds a network over [g]; vertex [v] starts in
    state [init v]. Rounds executed here are charged to [rounds]. If an
    ambient fault context is installed (see {!with_faults}), the net runs
    under it; otherwise it is exactly the fault-free kernel. *)
val create :
  Nw_graphs.Multigraph.t ->
  rounds:Rounds.t ->
  init:(int -> 'state) ->
  ('state, 'msg) t

val graph : ('state, 'msg) t -> Nw_graphs.Multigraph.t

val state : ('state, 'msg) t -> int -> 'state
val set_state : ('state, 'msg) t -> int -> 'state -> unit
val states : ('state, 'msg) t -> 'state array

(** The stats record of the ambient fault context this net was created
    under, or [None] for a fault-free net. *)
val fault_stats : ('state, 'msg) t -> fault_stats option

(** [round t ~label ~send ~recv] executes one synchronous round.
    [send v st] returns messages as [(edge_id, msg)] pairs; each is delivered
    to the opposite endpoint of [edge_id], which must be incident to [v].
    [recv v st msgs] sees [(edge_id, msg)] pairs and returns the new state.
    Charges one round to the ledger under [label]. *)
val round :
  ('state, 'msg) t ->
  label:string ->
  send:(int -> 'state -> (int * 'msg) list) ->
  recv:(int -> 'state -> (int * 'msg) list -> 'state) ->
  unit

(** Payload-free all-incident broadcast round; see {!Make.round_count}.
    On the boxed backend this executes the exact generic per-message path
    (the reference baseline); on CSR it streams the adjacency plane. *)
val round_count :
  ('state, unit) t ->
  label:string ->
  decide:(int -> 'state -> bool) ->
  recv:(int -> 'state -> int -> 'state) ->
  unit

(** All-incident int broadcast; see {!Make.round_exchange}. As with
    {!round_count}, the boxed backend executes the exact generic
    per-message path (the reference baseline, [recv] seeing generic
    arrival order); CSR streams the adjacency plane in incidence order.
    [recv] must therefore be order-insensitive beyond edge identity —
    which the primitive already requires for its fault fallback. *)
val round_exchange :
  ('state, int) t ->
  label:string ->
  value:(int -> 'state -> int) ->
  recv:(int -> 'state -> ((int -> int -> unit) -> unit) -> 'state) ->
  unit

(** Edge-valued exchange; see {!Make.round_exchange_edges} for the
    purity contract on [value]. Backend split as in {!round_exchange}:
    boxed runs the generic per-message reference path, CSR streams. *)
val round_exchange_edges :
  ('state, int) t ->
  label:string ->
  value:(int -> 'state -> int -> int) ->
  recv:(int -> 'state -> ((int -> int -> unit) -> unit) -> 'state) ->
  unit

(** Total messages delivered since creation. *)
val messages_delivered : ('state, 'msg) t -> int

(** Rounds executed on this net since creation (the fault clock: windows
    and crash schedules in fault plans are phrased in this counter). *)
val rounds_executed : ('state, 'msg) t -> int

(** [run_until t ~label ~send ~recv ~halted ~max_rounds] repeats {!round}
    until every vertex satisfies [halted] or [max_rounds] elapse; returns the
    number of rounds executed.
    @raise Failure if [max_rounds] is exceeded. *)
val run_until :
  ('state, 'msg) t ->
  label:string ->
  send:(int -> 'state -> (int * 'msg) list) ->
  recv:(int -> 'state -> (int * 'msg) list -> 'state) ->
  halted:(int -> 'state -> bool) ->
  max_rounds:int ->
  int
