(** Synchronous message-passing kernel for the LOCAL model.

    A genuine round-by-round simulation: in each round every vertex, looking
    only at its own state, emits one message per incident edge (or none);
    messages cross their edge; every vertex then updates its state from the
    received messages. Message sizes are unbounded, as in LOCAL.

    The simpler algorithms (H-partition peeling, Cole–Vishkin coloring) are
    implemented directly on this kernel, demonstrating that they are honest
    distributed algorithms; the round counts it reports are exact. *)

type ('state, 'msg) t

(** [create g ~rounds ~init] builds a network over [g]; vertex [v] starts in
    state [init v]. Rounds executed here are charged to [rounds]. *)
val create :
  Nw_graphs.Multigraph.t ->
  rounds:Rounds.t ->
  init:(int -> 'state) ->
  ('state, 'msg) t

val graph : ('state, 'msg) t -> Nw_graphs.Multigraph.t

val state : ('state, 'msg) t -> int -> 'state
val set_state : ('state, 'msg) t -> int -> 'state -> unit
val states : ('state, 'msg) t -> 'state array

(** [round t ~label ~send ~recv] executes one synchronous round.
    [send v st] returns messages as [(edge_id, msg)] pairs; each is delivered
    to the opposite endpoint of [edge_id], which must be incident to [v].
    [recv v st msgs] sees [(edge_id, msg)] pairs and returns the new state.
    Charges one round to the ledger under [label]. *)
val round :
  ('state, 'msg) t ->
  label:string ->
  send:(int -> 'state -> (int * 'msg) list) ->
  recv:(int -> 'state -> (int * 'msg) list -> 'state) ->
  unit

(** Total messages delivered since creation. *)
val messages_delivered : ('state, 'msg) t -> int

(** [run_until t ~label ~send ~recv ~halted ~max_rounds] repeats {!round}
    until every vertex satisfies [halted] or [max_rounds] elapse; returns the
    number of rounds executed.
    @raise Failure if [max_rounds] is exceeded. *)
val run_until :
  ('state, 'msg) t ->
  label:string ->
  send:(int -> 'state -> (int * 'msg) list) ->
  recv:(int -> 'state -> (int * 'msg) list -> 'state) ->
  halted:(int -> 'state -> bool) ->
  max_rounds:int ->
  int
