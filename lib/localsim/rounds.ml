module Obs = Nw_obs.Obs

type t = {
  tbl : (string, int) Hashtbl.t;
  mutable order : string list; (* reversed first-charge order *)
  mutable total : int;
}

let create () = { tbl = Hashtbl.create 16; order = []; total = 0 }

(* process-wide sum over every ledger ever charged (atomic: bench domains
   share it); kept for cross-domain sanity checks *)
let grand = Atomic.make 0

let grand_total () = Atomic.get grand

(* per-domain sum over every ledger charged on this domain: an experiment
   confined to one domain sees exactly its own charges in the
   before/after delta, even while other domains charge concurrently *)
let domain_acc : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let domain_total () = !(Domain.DLS.get domain_acc)

let charge t ~label r =
  if r < 0 then invalid_arg "Rounds.charge: negative rounds";
  if not (Hashtbl.mem t.tbl label) then t.order <- label :: t.order;
  Hashtbl.replace t.tbl label (r + Option.value ~default:0 (Hashtbl.find_opt t.tbl label));
  t.total <- t.total + r;
  ignore (Atomic.fetch_and_add grand r);
  let acc = Domain.DLS.get domain_acc in
  acc := !acc + r;
  (* attribute the charge to the active tracing span, if any *)
  Obs.record_rounds ~label r

let total t = t.total

let ledger t =
  List.rev_map (fun l -> (l, Hashtbl.find t.tbl l)) t.order

let merge_into ~into t =
  List.iter (fun (label, r) -> charge into ~label r) (ledger t)

let charge_max t ts =
  let best = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun sub ->
      List.iter
        (fun (label, r) ->
          match Hashtbl.find_opt best label with
          | None ->
              order := label :: !order;
              Hashtbl.replace best label r
          | Some r0 -> if r > r0 then Hashtbl.replace best label r)
        (ledger sub))
    ts;
  List.iter
    (fun label -> charge t ~label (Hashtbl.find best label))
    (List.rev !order)

let pp ppf t =
  Format.fprintf ppf "@[<v>total rounds: %d" t.total;
  List.iter (fun (l, r) -> Format.fprintf ppf "@,  %-32s %d" l r) (ledger t);
  Format.fprintf ppf "@]"
