(** Round accounting for the LOCAL model.

    The algorithms in this library are executed by a central simulator, but
    every step corresponds to a phase of a LOCAL-model algorithm, and each
    phase {e charges} this ledger the number of synchronous rounds the
    LOCAL algorithm would spend (e.g. collecting a radius-[r] ball charges
    [r]; processing a cluster of weak diameter [d] charges [O(d)]).
    The benchmark harness reports these charged rounds; they are the
    empirical counterpart of the round complexities in the paper. *)

type t

val create : unit -> t

(** [charge t ~label r] adds [r >= 0] rounds attributed to [label].
    Every charge also feeds the per-domain counter ({!domain_total}) and,
    when tracing is enabled, the active [Nw_obs.Obs] span. *)
val charge : t -> label:string -> int -> unit

(** Total rounds charged so far. *)
val total : t -> int

(** Process-wide total across {e all} ledgers since program start
    (atomic, so bench domains can share it). Before/after snapshots of
    this counter are {e racy} under concurrent domains — concurrently
    running experiments steal each other's charges; use {!domain_total}
    for per-experiment attribution instead. *)
val grand_total : unit -> int

(** Total across all ledgers charged {e on the calling domain} since it
    started. An experiment that runs entirely on one domain is exactly
    the delta of this counter around it, regardless of what other
    domains charge concurrently — the race-free replacement for
    {!grand_total} snapshots in the bench harness. *)
val domain_total : unit -> int

(** Per-label breakdown in first-charge order. *)
val ledger : t -> (string * int) list

(** [merge_into ~into t] adds all of [t]'s charges into [into]
    (sequential composition of two algorithm stages). *)
val merge_into : into:t -> t -> unit

(** [charge_max t ts] adds, per label, the maximum charge across [ts]:
    parallel composition (stages running concurrently on disjoint parts,
    e.g. all clusters of one network-decomposition class). *)
val charge_max : t -> t list -> unit

val pp : Format.formatter -> t -> unit
