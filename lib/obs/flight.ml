(* Bounded flight recorder: a per-domain ring buffer of the most recent
   instrumentation events (span open/close, counter deltas, round
   charges, free-form marks), dumped as a self-contained JSON
   post-mortem when something dies mid-pipeline.

   The recorder sits *under* Obs: [Obs.span]/[Obs.count]/
   [Obs.record_rounds] forward into the [on_*] hooks below from inside
   their enabled paths, so recording requires [Obs.set_enabled true]
   and costs nothing when either switch is off (one atomic load).
   [Engine.run], the chaos [Harness], and [forestd] call [mark] at
   interesting boundaries (checkpoints, pass failures, epoch verdicts)
   and [trigger] when a run must be explained after the fact.

   State layout mirrors Obs: the ring itself is domain-local (appends
   are lock-free), while a mutex guards the registry of live rings and
   the latest-mark table. A dump snapshots rings owned by other
   domains without stopping them; every mutated field is a single word,
   so a concurrent append can at worst leave one stale slot in the
   snapshot — acceptable for a post-mortem, and the dumping domain
   (the one that failed) is always exact. Dpool spawns short-lived
   helper domains, so the registry is bounded: beyond [max_rings] the
   oldest ring is dropped and the dump says so. *)

let now () = Monotonic_clock.now ()

type event =
  | Span_open of { t_ns : int64; name : string }
  | Span_close of { t_ns : int64; name : string; dur_ns : int64; rounds : int }
  | Counter of { t_ns : int64; name : string; delta : int }
  | Charge of { t_ns : int64; label : string; rounds : int }
  | Mark of { t_ns : int64; name : string; fields : (string * string) list }

let event_t_ns = function
  | Span_open { t_ns; _ }
  | Span_close { t_ns; _ }
  | Counter { t_ns; _ }
  | Charge { t_ns; _ }
  | Mark { t_ns; _ } ->
      t_ns

(* ------------------------------------------------------------------ *)
(* switches and configuration                                          *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let default_capacity = 512
let capacity = Atomic.make default_capacity

let configure ?capacity:(c = default_capacity) () =
  if c < 1 then invalid_arg "Flight.configure: capacity must be >= 1";
  Atomic.set capacity c

(* ------------------------------------------------------------------ *)
(* per-domain rings and the global registry                            *)

type ring = {
  ring_tid : int;
  events : event option array; (* fixed capacity, circular *)
  mutable written : int; (* total appends; head slot = written mod cap *)
  ring_gen : int; (* registry generation at creation, see [reset] *)
}

let max_rings = 32
let mu = Mutex.create ()
let rings : ring list ref = ref [] (* newest first, length <= max_rings *)
let rings_dropped = ref 0 (* rings evicted from the registry *)
let last_marks : (string, int64 * (string * string) list) Hashtbl.t =
  Hashtbl.create 8

let generation = Atomic.make 0

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let slot : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let rec take n = function
  | [] -> []
  | _ :: _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let my_ring () =
  let s = Domain.DLS.get slot in
  let gen = Atomic.get generation in
  match !s with
  | Some r when r.ring_gen = gen -> r
  | _ ->
      let r =
        {
          ring_tid = (Domain.self () :> int);
          events = Array.make (Atomic.get capacity) None;
          written = 0;
          ring_gen = gen;
        }
      in
      s := Some r;
      locked (fun () ->
          rings := r :: !rings;
          let extra = List.length !rings - max_rings in
          if extra > 0 then begin
            rings_dropped := !rings_dropped + extra;
            rings := take max_rings !rings
          end);
      r

let append ev =
  let r = my_ring () in
  let cap = Array.length r.events in
  r.events.(r.written mod cap) <- Some ev;
  r.written <- r.written + 1

(* ------------------------------------------------------------------ *)
(* recording entry points                                              *)

let on_span_open ~t_ns name =
  if Atomic.get enabled_flag then append (Span_open { t_ns; name })

let on_span_close ~t_ns ~dur_ns ~rounds name =
  if Atomic.get enabled_flag then
    append (Span_close { t_ns; name; dur_ns; rounds })

let on_counter ~name ~delta =
  if Atomic.get enabled_flag then
    append (Counter { t_ns = now (); name; delta })

let on_charge ~label ~rounds =
  if rounds > 0 && Atomic.get enabled_flag then
    append (Charge { t_ns = now (); label; rounds })

let mark name fields =
  if Atomic.get enabled_flag then begin
    let t_ns = now () in
    append (Mark { t_ns; name; fields });
    locked (fun () -> Hashtbl.replace last_marks name (t_ns, fields))
  end

let last_mark name =
  locked (fun () ->
      Option.map (fun (_, fields) -> fields) (Hashtbl.find_opt last_marks name))

(* ------------------------------------------------------------------ *)
(* dump rendering (schema nw-flight/1)                                 *)

let ring_events r =
  let cap = Array.length r.events in
  let w = r.written in
  let len = if w < cap then w else cap in
  let start = if w < cap then 0 else w mod cap in
  List.init len (fun i -> r.events.((start + i) mod cap))
  |> List.filter_map Fun.id

let events_dropped r =
  let cap = Array.length r.events in
  if r.written > cap then r.written - cap else 0

type snapshot = {
  snap_rings : (int * int * event list) list; (* tid, dropped, events *)
  snap_marks : (string * (int64 * (string * string) list)) list;
  snap_rings_dropped : int;
}

let snapshot () =
  locked (fun () ->
      {
        snap_rings =
          List.rev_map
            (fun r -> (r.ring_tid, events_dropped r, ring_events r))
            !rings;
        snap_marks =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) last_marks []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b);
        snap_rings_dropped = !rings_dropped;
      })

let dump_seq = Atomic.make 0

(* relative microseconds keep timestamps small enough for exact float
   JSON round-trips (raw monotonic ns exceed 2^53) *)
let us ~epoch t_ns = Int64.to_float (Int64.sub t_ns epoch) /. 1e3

let render ?(env = []) ~reason b =
  let snap = snapshot () in
  let seq = 1 + Atomic.fetch_and_add dump_seq 1 in
  let epoch =
    List.fold_left
      (fun acc (_, _, evs) ->
        List.fold_left
          (fun acc ev ->
            let t = event_t_ns ev in
            if Int64.compare t acc < 0 then t else acc)
          acc evs)
      (List.fold_left
         (fun acc (_, (t, _)) -> if Int64.compare t acc < 0 then t else acc)
         Int64.max_int snap.snap_marks)
      snap.snap_rings
  in
  let epoch = if epoch = Int64.max_int then 0L else epoch in
  let str = Json_lite.Emit.string in
  let kv_first = ref true in
  let sep () =
    if not !kv_first then Buffer.add_char b ',';
    kv_first := false
  in
  let fields_obj fields =
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        str b k;
        Buffer.add_char b ':';
        str b v)
      fields;
    Buffer.add_char b '}'
  in
  let event_json ev =
    (match ev with
    | Span_open { t_ns; name } ->
        Buffer.add_string b "{\"ev\":\"open\",\"t_us\":";
        Buffer.add_string b (Printf.sprintf "%.3f" (us ~epoch t_ns));
        Buffer.add_string b ",\"name\":";
        str b name
    | Span_close { t_ns; name; dur_ns; rounds } ->
        Buffer.add_string b "{\"ev\":\"close\",\"t_us\":";
        Buffer.add_string b (Printf.sprintf "%.3f" (us ~epoch t_ns));
        Buffer.add_string b ",\"name\":";
        str b name;
        Buffer.add_string b
          (Printf.sprintf ",\"dur_us\":%.3f,\"rounds\":%d"
             (Int64.to_float dur_ns /. 1e3)
             rounds)
    | Counter { t_ns; name; delta } ->
        Buffer.add_string b "{\"ev\":\"count\",\"t_us\":";
        Buffer.add_string b (Printf.sprintf "%.3f" (us ~epoch t_ns));
        Buffer.add_string b ",\"name\":";
        str b name;
        Buffer.add_string b (Printf.sprintf ",\"delta\":%d" delta)
    | Charge { t_ns; label; rounds } ->
        Buffer.add_string b "{\"ev\":\"charge\",\"t_us\":";
        Buffer.add_string b (Printf.sprintf "%.3f" (us ~epoch t_ns));
        Buffer.add_string b ",\"label\":";
        str b label;
        Buffer.add_string b (Printf.sprintf ",\"rounds\":%d" rounds)
    | Mark { t_ns; name; fields } ->
        Buffer.add_string b "{\"ev\":\"mark\",\"t_us\":";
        Buffer.add_string b (Printf.sprintf "%.3f" (us ~epoch t_ns));
        Buffer.add_string b ",\"name\":";
        str b name;
        Buffer.add_string b ",\"fields\":";
        fields_obj fields);
    Buffer.add_char b '}'
  in
  Buffer.add_string b "{\"schema\":\"nw-flight/1\",\"reason\":";
  str b reason;
  Buffer.add_string b (Printf.sprintf ",\"seq\":%d,\"clock\":\"monotonic\"" seq);
  Buffer.add_string b ",\"env\":{";
  kv_first := true;
  List.iter
    (fun (k, v) ->
      sep ();
      str b k;
      Buffer.add_char b ':';
      str b v)
    env;
  Buffer.add_string b "},\"last\":{";
  kv_first := true;
  List.iter
    (fun (name, (t_ns, fields)) ->
      sep ();
      str b name;
      Buffer.add_string b
        (Printf.sprintf ":{\"t_us\":%.3f,\"fields\":" (us ~epoch t_ns));
      fields_obj fields;
      Buffer.add_char b '}')
    snap.snap_marks;
  Buffer.add_string b
    (Printf.sprintf "},\"rings_dropped\":%d,\"domains\":["
       snap.snap_rings_dropped);
  List.iteri
    (fun i (tid, dropped, evs) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"tid\":%d,\"dropped\":%d,\"events\":[" tid dropped);
      List.iteri
        (fun j ev ->
          if j > 0 then Buffer.add_char b ',';
          event_json ev)
        evs;
      Buffer.add_string b "]}")
    snap.snap_rings;
  Buffer.add_string b "]}\n"

(* ------------------------------------------------------------------ *)
(* auto-dump sink                                                      *)

type sink = { sink_path : string; sink_env : (string * string) list }

let sink : sink option Atomic.t = Atomic.make None

let set_sink ?(env = []) path =
  Atomic.set sink (Some { sink_path = path; sink_env = env })

let clear_sink () = Atomic.set sink None
let sink_path () = Option.map (fun s -> s.sink_path) (Atomic.get sink)
let dumps = Atomic.make 0
let dumps_written () = Atomic.get dumps

let trigger ~reason () =
  match Atomic.get sink with
  | None -> ()
  | Some s -> (
      let b = Buffer.create 8192 in
      render ~env:s.sink_env ~reason b;
      (* the post-mortem path must never mask the failure being
         explained; an unwritable sink loses the dump, nothing else *)
      try
        let oc = open_out s.sink_path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> Buffer.output_buffer oc b);
        Atomic.incr dumps
      with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* test support                                                        *)

let reset () =
  locked (fun () ->
      rings := [];
      rings_dropped := 0;
      Hashtbl.reset last_marks);
  (* existing domain-local rings carry a stale generation and are
     re-created (and re-registered) on their next append *)
  Atomic.incr generation;
  Atomic.set dump_seq 0;
  Atomic.set dumps 0
