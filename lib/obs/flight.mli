(** Bounded flight recorder: per-domain ring buffers of the most recent
    instrumentation events, dumped as a self-contained JSON post-mortem
    ([nw-flight/1]) when a pipeline pass fails, a chaos epoch is
    detectably invalid, or a crash is being explained after the fact.

    The recorder piggybacks on the Obs instrumentation stream:
    [Obs.span], [Obs.count], and [Obs.record_rounds] forward into the
    hook functions below from inside their enabled paths. Recording
    therefore requires {e both} [Obs.set_enabled true] and
    {!set_enabled}[ true]; with either switch off every entry point is
    one atomic load and no allocation. Ring appends are domain-local
    and lock-free; only the registry of live rings and the latest-mark
    table take a mutex. See [docs/observability.md] for the dump
    format. *)

(** {1 Switches} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** [configure ~capacity ()] sets the per-domain ring capacity (events
    retained per domain) for rings created afterwards. Default 512.
    @raise Invalid_argument if [capacity < 1]. *)
val configure : ?capacity:int -> unit -> unit

(** {1 Marks}

    Free-form progress beacons ([engine.checkpoint],
    [engine.pass_failed], [chaos.epoch], ...). The latest mark per name
    is additionally lifted into the dump's top-level ["last"] object so
    a post-mortem names the failing pass and last checkpoint without
    scanning the rings. *)

(** [mark name fields] records a mark event with string key/value
    [fields]. No-op when disabled. *)
val mark : string -> (string * string) list -> unit

(** Latest fields recorded for [name], if any. *)
val last_mark : string -> (string * string) list option

(** {1 Dumping} *)

(** [set_sink ~env path] arms the auto-dump: the next {!trigger} writes
    the post-mortem JSON to [path] (overwriting), stamping [env] into
    the dump. *)
val set_sink : ?env:(string * string) list -> string -> unit

val clear_sink : unit -> unit
val sink_path : unit -> string option

(** [trigger ~reason ()] writes a post-mortem to the configured sink;
    no-op when no sink is armed. A [Sys_error] writing the file is
    swallowed: the post-mortem path never masks the failure it
    explains. *)
val trigger : reason:string -> unit -> unit

(** Dumps successfully written through {!trigger} since start/reset. *)
val dumps_written : unit -> int

(** [render ~env ~reason b] appends the [nw-flight/1] JSON document to
    [b] (used by {!trigger}; exposed for tests and custom sinks). *)
val render : ?env:(string * string) list -> reason:string -> Buffer.t -> unit

(** {1 Recording hooks}

    Called by [Obs] from inside its enabled paths; instrumented code
    does not call these directly. *)

val on_span_open : t_ns:int64 -> string -> unit
val on_span_close : t_ns:int64 -> dur_ns:int64 -> rounds:int -> string -> unit
val on_counter : name:string -> delta:int -> unit
val on_charge : label:string -> rounds:int -> unit

(** {1 Test support} *)

(** Drop all rings, marks, and dump counters (the enabled switch and
    sink are untouched). Existing domains lazily re-register on their
    next event. *)
val reset : unit -> unit
