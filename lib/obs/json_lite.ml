type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail "expected '%c' at offset %d, found '%c'" c st.pos c'
  | None -> fail "expected '%c' at offset %d, found end of input" c st.pos

let literal st word v =
  let l = String.length word in
  if
    st.pos + l <= String.length st.src
    && String.sub st.src st.pos l = word
  then begin
    st.pos <- st.pos + l;
    v
  end
  else fail "invalid literal at offset %d" st.pos

let parse_string_body st =
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string at offset %d" st.pos
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char b '"'; advance st
        | Some '\\' -> Buffer.add_char b '\\'; advance st
        | Some '/' -> Buffer.add_char b '/'; advance st
        | Some 'b' -> Buffer.add_char b '\b'; advance st
        | Some 'f' -> Buffer.add_char b '\012'; advance st
        | Some 'n' -> Buffer.add_char b '\n'; advance st
        | Some 'r' -> Buffer.add_char b '\r'; advance st
        | Some 't' -> Buffer.add_char b '\t'; advance st
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then
              fail "truncated \\u escape at offset %d" st.pos;
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape at offset %d" st.pos
            in
            st.pos <- st.pos + 4;
            (* UTF-8 encode the BMP code point; surrogates pass through
               as replacement-free bytes, which is fine for validation *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> fail "bad escape at offset %d" st.pos);
        go ()
    | Some c when Char.code c < 0x20 ->
        fail "unescaped control character at offset %d" st.pos
    | Some c ->
        Buffer.add_char b c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let consume_while pred =
    let rec go () =
      match peek st with
      | Some c when pred c ->
          advance st;
          go ()
      | _ -> ()
    in
    go ()
  in
  if peek st = Some '-' then advance st;
  consume_while (fun c -> c >= '0' && c <= '9');
  if peek st = Some '.' then begin
    advance st;
    consume_while (fun c -> c >= '0' && c <= '9')
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Number f
  | None -> fail "bad number %S at offset %d" s start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input at offset %d" st.pos
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          expect st '"';
          let k = parse_string_body st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" st.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" st.pos
        in
        List (items [])
      end
  | Some '"' ->
      advance st;
      String (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail "unexpected character '%c' at offset %d" c st.pos

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then
    fail "trailing garbage at offset %d" st.pos;
  v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_string = function String s -> Some s | _ -> None
let to_float = function Number f -> Some f | _ -> None

let to_int = function
  | Number f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

(* ------------------------------------------------------------------ *)
(* emission                                                            *)

(* shared JSON string emission so every writer in the tree (Obs
   exporters, the flight recorder, forestd diagnostics) escapes
   identically — and identically to what [parse] above accepts *)
module Emit = struct
  let escape b s =
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | ch when Char.code ch < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
        | ch -> Buffer.add_char b ch)
      s

  let string b s =
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'

  let string_value s =
    let b = Buffer.create (String.length s + 8) in
    string b s;
    Buffer.contents b
end
