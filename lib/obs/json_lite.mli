(** Minimal JSON reader for validating the observability artifacts
    (Chrome traces, JSONL event streams, [BENCH_*.json] records) without
    an external dependency. Accepts strict RFC 8259 JSON; numbers are
    floats; object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** @raise Parse_error on malformed input or trailing garbage. *)
val parse : string -> t

val member : string -> t -> t option

(** Typed accessors; [None] on shape mismatch. *)
val to_string : t -> string option

val to_float : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option
