(** Minimal JSON reader for validating the observability artifacts
    (Chrome traces, JSONL event streams, [BENCH_*.json] records) without
    an external dependency. Accepts strict RFC 8259 JSON; numbers are
    floats; object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** @raise Parse_error on malformed input or trailing garbage. *)
val parse : string -> t

val member : string -> t -> t option

(** Typed accessors; [None] on shape mismatch. *)
val to_string : t -> string option

val to_float : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option

(** {1 Emission}

    The one JSON string-escaper shared by every writer in the tree (the
    Obs exporters, the flight recorder, CLI diagnostics), guaranteed to
    round-trip through {!parse}. OCaml's [%S] is {e not} JSON (it emits
    decimal [\001]-style escapes); use these instead. *)
module Emit : sig
  (** Append the escaped string body (no surrounding quotes). *)
  val escape : Buffer.t -> string -> unit

  (** Append the string as a quoted JSON string literal. *)
  val string : Buffer.t -> string -> unit

  (** [string_value s] is the quoted JSON literal as a string. *)
  val string_value : string -> string
end
