(* Minimal Unix-domain-socket metrics endpoint.

   [start ~path provider] binds a listening socket at [path] and serves
   every connection a one-shot HTTP/1.0 response whose body is
   [provider ()] — in practice a Prometheus rendering of the live Obs
   registry. The accept loop runs on its own domain. [stop] raises a
   stop flag, shuts the listener down, and dials one wake-up connection
   (a domain blocked in accept(2) does NOT wake when another domain
   merely closes the fd), then joins the domain and unlinks the socket
   file.

   The provider runs on the server domain: callers hand it either an
   immutable snapshot published through an [Atomic] (forestd does this
   at pass boundaries) or a function over their own domain-safe state.
   Scrape with e.g. [curl --unix-socket /tmp/nw.sock http://localhost/]. *)

type t = {
  srv_fd : Unix.file_descr;
  srv_path : string;
  srv_domain : unit Domain.t;
  srv_stop : bool Atomic.t;
}

let unlink_existing path =
  try Unix.unlink path with Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* reclaim a stale socket file (a previous server that died before its
   [stop] could unlink) so a restart never sees EADDRINUSE — but refuse
   to delete anything that is not a socket: that is someone else's file
   and silently unlinking it would be data loss. Exported so every
   Unix-socket listener in the tree (the service daemon included) shares
   one reclaim policy instead of growing its own unlink. *)
let reclaim_socket_path ~whom path =
  match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> unlink_existing path
  | _ ->
      invalid_arg
        (Printf.sprintf "%s: %s exists and is not a socket" whom path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | 0 -> ()
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()
  in
  go 0

let serve_client provider client =
  let finish () = try Unix.close client with Unix.Unix_error _ -> () in
  Fun.protect ~finally:finish (fun () ->
      (* drain one request read so well-behaved HTTP clients see their
         request accepted before the response lands; EOF (0) is fine *)
      let buf = Bytes.create 1024 in
      (match Unix.read client buf 0 (Bytes.length buf) with
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      let body = provider () in
      let resp =
        Printf.sprintf
          "HTTP/1.0 200 OK\r\n\
           Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
           Content-Length: %d\r\n\
           Connection: close\r\n\
           \r\n\
           %s"
          (String.length body) body
      in
      try write_all client resp
      with Unix.Unix_error _ -> ())

let start ~path provider =
  reclaim_socket_path ~whom:"Metrics_server.start" path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  let stop_flag = Atomic.make false in
  let rec loop () =
    if not (Atomic.get stop_flag) then
      match Unix.accept fd with
      | client, _ ->
          if Atomic.get stop_flag then
            (try Unix.close client with Unix.Unix_error _ -> ())
          else serve_client provider client;
          loop ()
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          (* listener shut down; exit *)
          ()
  in
  let srv_domain = Domain.spawn loop in
  { srv_fd = fd; srv_path = path; srv_domain; srv_stop = stop_flag }

let stop t =
  Atomic.set t.srv_stop true;
  (* wake a blocked accept: shutdown the listener, then dial it once *)
  (try Unix.shutdown t.srv_fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  (match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | c ->
      (try Unix.connect c (Unix.ADDR_UNIX t.srv_path)
       with Unix.Unix_error _ -> ());
      (try Unix.close c with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ());
  Domain.join t.srv_domain;
  (try Unix.close t.srv_fd with Unix.Unix_error _ -> ());
  unlink_existing t.srv_path
