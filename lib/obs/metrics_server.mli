(** One-shot HTTP metrics endpoint over a Unix domain socket.

    [start ~path provider] binds [path] (reclaiming a stale socket
    file left by a crashed predecessor, so restarts never fail with
    EADDRINUSE; anything else already at [path] raises
    [Invalid_argument] rather than being unlinked) and serves each
    connection an HTTP/1.0 response whose body
    is [provider ()] — typically {!Prometheus.to_string} of a
    published snapshot. The accept loop runs on a dedicated domain;
    the provider executes there, so hand it immutable snapshots (e.g.
    via an [Atomic]) rather than domain-local state.

    Scrape with [curl --unix-socket PATH http://localhost/]. *)

type t

(** [reclaim_socket_path ~whom path] unlinks a stale socket file left at
    [path] by a listener that died before unlinking it, so a rebind never
    fails with EADDRINUSE. A missing file is fine; anything at [path]
    that is not a socket raises [Invalid_argument] ("[whom]: ... exists
    and is not a socket") instead of being deleted — that is someone
    else's file. Shared by {!start} and the service daemon's listener. *)
val reclaim_socket_path : whom:string -> string -> unit

val start : path:string -> (unit -> string) -> t

(** Close the listener, join the server domain, unlink the socket
    file. Idempotent teardown of a server that already failed is
    safe. *)
val stop : t -> unit
