type value = Bool of bool | Int of int | Float of float | Str of string

let now () = Monotonic_clock.now ()

(* the sanctioned monotonic timestamp source outside lib/obs (nwlint
   DET001 allowlists it; raw Monotonic_clock reads in lib/ are flagged) *)
let now_ns = now

(* ------------------------------------------------------------------ *)
(* global switch                                                       *)
(* ------------------------------------------------------------------ *)

(* a single atomic load guards every entry point; the disabled path
   allocates nothing (spans tail-call their thunk) *)
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* ------------------------------------------------------------------ *)
(* spans and domain-local context                                      *)
(* ------------------------------------------------------------------ *)

type span = {
  name : string;
  start_ns : int64;
  tid : int;
  mutable dur_ns : int64;
  mutable attrs : (string * value) list; (* reversed insertion order *)
  mutable children : span list; (* reversed completion order *)
  mutable self_rounds : int;
  mutable rounds_by_label : (string * int) list; (* reversed first-charge *)
}

type hist_acc = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array; (* power-of-two buckets, see bucket_of *)
}

(* Everything a domain records between the start and end of a [collect].
   One context is live per domain at a time; [collect] swaps in a fresh
   one, so parallel bench domains never share mutable state. *)
type ctx = {
  ctx_tid : int;
  mutable stack : span list; (* innermost first *)
  mutable roots : span list; (* completed roots, reversed *)
  mutable orphan_rounds : (string * int) list; (* charged outside spans *)
  ctx_counters : (string, int ref) Hashtbl.t;
  ctx_hists : (string, hist_acc) Hashtbl.t;
}

type trace = ctx

let fresh_ctx () =
  {
    ctx_tid = (Domain.self () :> int);
    stack = [];
    roots = [];
    orphan_rounds = [];
    ctx_counters = Hashtbl.create 16;
    ctx_hists = Hashtbl.create 16;
  }

let key : ctx Domain.DLS.key = Domain.DLS.new_key fresh_ctx
let ctx () = Domain.DLS.get key

let assoc_add alist label r =
  let rec bump = function
    | [] -> None
    | (l, v) :: rest when l = label -> Some ((l, v + r) :: rest)
    | kv :: rest -> Option.map (fun t -> kv :: t) (bump rest)
  in
  match bump alist with Some l -> l | None -> (label, r) :: alist

let close_span c sp =
  sp.dur_ns <- Int64.sub (now ()) sp.start_ns;
  if Flight.enabled () then
    Flight.on_span_close
      ~t_ns:(Int64.add sp.start_ns sp.dur_ns)
      ~dur_ns:sp.dur_ns ~rounds:sp.self_rounds sp.name;
  (* defensive resync: exceptions flow through Fun.protect in LIFO
     order, so sp is the head unless recording was toggled mid-span *)
  (match c.stack with
  | s :: rest when s == sp -> c.stack <- rest
  | _ -> c.stack <- (match List.memq sp c.stack with
      | true ->
          let rec drop = function
            | s :: rest when s == sp -> rest
            | _ :: rest -> drop rest
            | [] -> []
          in
          drop c.stack
      | false -> c.stack));
  match c.stack with
  | parent :: _ -> parent.children <- sp :: parent.children
  | [] -> c.roots <- sp :: c.roots

let span ?attrs name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let c = ctx () in
    let sp =
      {
        name;
        start_ns = now ();
        tid = c.ctx_tid;
        dur_ns = 0L;
        attrs = (match attrs with None -> [] | Some l -> List.rev l);
        children = [];
        self_rounds = 0;
        rounds_by_label = [];
      }
    in
    c.stack <- sp :: c.stack;
    if Flight.enabled () then Flight.on_span_open ~t_ns:sp.start_ns name;
    Fun.protect ~finally:(fun () -> close_span c sp) f
  end

let set_attr k v =
  if Atomic.get enabled_flag then
    match (ctx ()).stack with
    | sp :: _ -> sp.attrs <- (k, v) :: sp.attrs
    | [] -> ()

let record_rounds ~label r =
  if r > 0 && Atomic.get enabled_flag then begin
    if Flight.enabled () then Flight.on_charge ~label ~rounds:r;
    let c = ctx () in
    match c.stack with
    | sp :: _ ->
        sp.self_rounds <- sp.self_rounds + r;
        sp.rounds_by_label <- assoc_add sp.rounds_by_label label r
    | [] -> c.orphan_rounds <- assoc_add c.orphan_rounds label r
  end

let count ?(by = 1) name =
  if Atomic.get enabled_flag then begin
    if Flight.enabled () then Flight.on_counter ~name ~delta:by;
    let c = ctx () in
    match Hashtbl.find_opt c.ctx_counters name with
    | Some r -> r := !r + by
    | None -> Hashtbl.add c.ctx_counters name (ref by)
  end

(* power-of-two histogram bucket: index 0 holds v <= 0, index i >= 1
   holds 2^(i-65) < v <= 2^(i-64) clamped to the array *)
let nbuckets = 128

let bucket_of v =
  if v <= 0.0 then 0
  else
    let _, e = Float.frexp v in
    (* v in (2^(e-1), 2^e] up to boundary fuzz *)
    max 1 (min (nbuckets - 1) (e + 64))

let bucket_upper i = Float.ldexp 1.0 (i - 64)

let observe name v =
  if Atomic.get enabled_flag then begin
    let c = ctx () in
    let h =
      match Hashtbl.find_opt c.ctx_hists name with
      | Some h -> h
      | None ->
          let h =
            {
              h_count = 0;
              h_sum = 0.0;
              h_min = infinity;
              h_max = neg_infinity;
              h_buckets = Array.make nbuckets 0;
            }
          in
          Hashtbl.add c.ctx_hists name h;
          h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_of v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1
  end

let collect f =
  let c = ctx () in
  let fresh = fresh_ctx () in
  Domain.DLS.set key fresh;
  let restore () = Domain.DLS.set key c in
  let x = Fun.protect ~finally:restore f in
  (x, fresh)

let is_empty t =
  t.roots = [] && t.orphan_rounds = []
  && Hashtbl.length t.ctx_counters = 0
  && Hashtbl.length t.ctx_hists = 0

(* ------------------------------------------------------------------ *)
(* summaries                                                           *)
(* ------------------------------------------------------------------ *)

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
}

type phase = {
  name : string;
  calls : int;
  total_ns : int64;
  self_ns : int64;
  rounds : int;
  rounds_by_label : (string * int) list;
}

let children_ns sp =
  List.fold_left (fun acc ch -> Int64.add acc ch.dur_ns) 0L sp.children

let self_ns sp =
  let s = Int64.sub sp.dur_ns (children_ns sp) in
  if Int64.compare s 0L < 0 then 0L else s

(* depth-first pre-order over completed spans (children were collected
   in reverse) *)
let iter_spans t f =
  let rec walk depth sp =
    f depth sp;
    List.iter (walk (depth + 1)) (List.rev sp.children)
  in
  List.iter (walk 0) (List.rev t.roots)

let phases t =
  let order = ref [] in
  let tbl : (string, phase) Hashtbl.t = Hashtbl.create 16 in
  iter_spans t (fun _ sp ->
      let cur =
        match Hashtbl.find_opt tbl sp.name with
        | Some p -> p
        | None ->
            order := sp.name :: !order;
            {
              name = sp.name;
              calls = 0;
              total_ns = 0L;
              self_ns = 0L;
              rounds = 0;
              rounds_by_label = [];
            }
      in
      Hashtbl.replace tbl sp.name
        {
          cur with
          calls = cur.calls + 1;
          total_ns = Int64.add cur.total_ns sp.dur_ns;
          self_ns = Int64.add cur.self_ns (self_ns sp);
          rounds = cur.rounds + sp.self_rounds;
          rounds_by_label =
            List.fold_left
              (fun acc (l, r) -> assoc_add acc l r)
              cur.rounds_by_label
              (List.rev sp.rounds_by_label);
        });
  List.rev_map
    (fun name ->
      let p = Hashtbl.find tbl name in
      { p with rounds_by_label = List.rev p.rounds_by_label })
    !order

let unattributed_rounds t =
  List.fold_left (fun acc (_, r) -> acc + r) 0 t.orphan_rounds

let total_rounds t =
  let acc = ref (unattributed_rounds t) in
  iter_spans t (fun _ sp -> acc := !acc + sp.self_rounds);
  !acc

let root_wall_ns t =
  List.fold_left (fun acc sp -> Int64.add acc sp.dur_ns) 0L t.roots

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.ctx_counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms t =
  Hashtbl.fold
    (fun name h acc ->
      let buckets = ref [] in
      for i = nbuckets - 1 downto 0 do
        if h.h_buckets.(i) > 0 then
          buckets := (bucket_upper i, h.h_buckets.(i)) :: !buckets
      done;
      ( name,
        {
          count = h.h_count;
          sum = h.h_sum;
          min = h.h_min;
          max = h.h_max;
          buckets = !buckets;
        } )
      :: acc)
    t.ctx_hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* nearest-rank percentile over the power-of-two buckets: the answer is
   the upper bound of the bucket holding the rank-th observation,
   clamped into [min, max] (so constant and single-sample distributions
   come back exact). Worst-case relative error is the bucket width: a
   factor of 2. *)
let percentile (h : histogram) q =
  if h.count <= 0 then None
  else begin
    let q = Float.max 0.0 (Float.min 100.0 q) in
    let rank =
      Stdlib.max 1
        (int_of_float (Float.ceil (q /. 100.0 *. float_of_int h.count)))
    in
    let rec go cum = function
      | [] -> h.max
      | (ub, c) :: rest ->
          let cum = cum + c in
          if cum >= rank then Float.min h.max (Float.max h.min ub)
          else go cum rest
    in
    Some (go 0 h.buckets)
  end

(* a read-only copy of this domain's in-flight trace: completed root
   spans are immutable once closed, so sharing them is safe; counters
   and histogram accumulators are still live and get copied. Open spans
   are not included. The metrics exposition path renders this between
   passes without waiting for [collect]. *)
let live_snapshot () =
  let c = ctx () in
  let snap = fresh_ctx () in
  snap.roots <- c.roots;
  snap.orphan_rounds <- c.orphan_rounds;
  Hashtbl.iter
    (fun k r -> Hashtbl.replace snap.ctx_counters k (ref !r))
    c.ctx_counters;
  Hashtbl.iter
    (fun k h ->
      Hashtbl.replace snap.ctx_hists k
        { h with h_buckets = Array.copy h.h_buckets })
    c.ctx_hists;
  snap

let ms ns = Int64.to_float ns /. 1e6

let pp_value ppf = function
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.pp_print_string ppf s

(* latest binding of a key wins; restore insertion order *)
let dedup_attrs attrs =
  let seen = Hashtbl.create 8 in
  let kept =
    List.filter
      (fun (k, _) ->
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      attrs
  in
  List.rev kept

(* siblings sharing a name beyond this many render as one aggregate line
   (hot loops produce thousands of identical spans; the trace exporters
   keep every one, the text tree stays readable) *)
let pp_group_threshold = 4

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>";
  let pp_span depth (sp : span) =
    Format.fprintf ppf "%s%-*s %8.3f ms" (String.make (2 * depth) ' ')
      (max 1 (32 - (2 * depth)))
      sp.name (ms sp.dur_ns);
    if sp.self_rounds > 0 then
      Format.fprintf ppf "  rounds=%d" sp.self_rounds;
    List.iter
      (fun (k, v) -> Format.fprintf ppf "  %s=%a" k pp_value v)
      (dedup_attrs sp.attrs);
    Format.fprintf ppf "@,"
  in
  let rec pp_forest depth spans =
    (* group siblings by name, preserving first-seen order *)
    let order = ref [] in
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (sp : span) ->
        match Hashtbl.find_opt tbl sp.name with
        | Some l -> l := sp :: !l
        | None ->
            order := sp.name :: !order;
            Hashtbl.add tbl sp.name (ref [ sp ]))
      spans;
    List.iter
      (fun name ->
        let group = List.rev !(Hashtbl.find tbl name) in
        if List.length group <= pp_group_threshold then
          List.iter
            (fun sp ->
              pp_span depth sp;
              pp_forest (depth + 1) (List.rev sp.children))
            group
        else begin
          let calls = List.length group in
          let total =
            List.fold_left (fun a sp -> Int64.add a sp.dur_ns) 0L group
          in
          let rounds =
            List.fold_left (fun a sp -> a + sp.self_rounds) 0 group
          in
          let kids =
            List.fold_left (fun a sp -> a + List.length sp.children) 0 group
          in
          Format.fprintf ppf "%s%-*s %8.3f ms  x%d"
            (String.make (2 * depth) ' ')
            (max 1 (32 - (2 * depth)))
            name (ms total) calls;
          if rounds > 0 then Format.fprintf ppf "  rounds=%d" rounds;
          if kids > 0 then Format.fprintf ppf "  (%d child spans)" kids;
          Format.fprintf ppf "@,"
        end)
      (List.rev !order)
  in
  Format.fprintf ppf "span tree (wall %.3f ms, %d rounds):@,"
    (ms (root_wall_ns t)) (total_rounds t);
  pp_forest 0 (List.rev t.roots);
  if t.orphan_rounds <> [] then begin
    Format.fprintf ppf "unattributed rounds:@,";
    List.iter
      (fun (l, r) -> Format.fprintf ppf "  %-32s %d@," l r)
      (List.rev t.orphan_rounds)
  end;
  (match counters t with
  | [] -> ()
  | cs ->
      Format.fprintf ppf "counters:@,";
      List.iter
        (fun (name, v) -> Format.fprintf ppf "  %-32s %d@," name v)
        cs);
  (match histograms t with
  | [] -> ()
  | hs ->
      Format.fprintf ppf "histograms:@,";
      List.iter
        (fun (name, h) ->
          Format.fprintf ppf
            "  %-32s count=%d sum=%g min=%g max=%g mean=%.2f@," name h.count
            h.sum h.min h.max
            (h.sum /. float_of_int (Stdlib.max 1 h.count)))
        hs);
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* exporters                                                           *)
(* ------------------------------------------------------------------ *)

module Export = struct
  (* one escaper for every JSON writer in the tree, shared with the
     flight recorder and CLI diagnostics *)
  let add_str = Json_lite.Emit.string

  let add_value b = function
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Int x -> Buffer.add_string b (string_of_int x)
    | Float x ->
        if Float.is_finite x then Buffer.add_string b (Printf.sprintf "%.17g" x)
        else add_str b (string_of_float x)
    | Str s -> add_str b s

  (* span args: attributes, then self-rounds and its per-label split *)
  let add_args b (sp : span) =
    Buffer.add_char b '{';
    let first = ref true in
    let field k v =
      if not !first then Buffer.add_char b ',';
      first := false;
      add_str b k;
      Buffer.add_char b ':';
      add_value b v
    in
    List.iter (fun (k, v) -> field k v) (dedup_attrs sp.attrs);
    if sp.self_rounds > 0 then begin
      field "rounds_self" (Int sp.self_rounds);
      List.iter
        (fun (l, r) -> field ("rounds/" ^ l) (Int r))
        (List.rev sp.rounds_by_label)
    end;
    Buffer.add_char b '}'

  let epoch_ns traces =
    List.fold_left
      (fun acc t ->
        List.fold_left
          (fun acc sp ->
            if Int64.compare sp.start_ns acc < 0 then sp.start_ns else acc)
          acc t.roots)
      Int64.max_int traces

  let us ~epoch ns = Int64.to_float (Int64.sub ns epoch) /. 1e3

  let chrome b traces =
    let epoch = epoch_ns traces in
    Buffer.add_string b "{\"traceEvents\":[";
    let first = ref true in
    let emit_event t depth (sp : span) =
      ignore t;
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b "{\"name\":";
      add_str b sp.name;
      Buffer.add_string b ",\"cat\":\"span\",\"ph\":\"X\",\"ts\":";
      Buffer.add_string b (Printf.sprintf "%.3f" (us ~epoch sp.start_ns));
      Buffer.add_string b ",\"dur\":";
      Buffer.add_string b
        (Printf.sprintf "%.3f" (Int64.to_float sp.dur_ns /. 1e3));
      Buffer.add_string b
        (Printf.sprintf ",\"pid\":1,\"tid\":%d,\"args\":" sp.tid);
      add_args b sp;
      Buffer.add_char b '}';
      ignore depth
    in
    List.iter (fun t -> iter_spans t (emit_event t)) traces;
    Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}\n"

  let jsonl b traces =
    let epoch = epoch_ns traces in
    List.iter
      (fun t ->
        iter_spans t (fun depth (sp : span) ->
            Buffer.add_string b "{\"type\":\"span\",\"name\":";
            add_str b sp.name;
            Buffer.add_string b
              (Printf.sprintf
                 ",\"tid\":%d,\"depth\":%d,\"ts_us\":%.3f,\"dur_us\":%.3f"
                 sp.tid depth (us ~epoch sp.start_ns)
                 (Int64.to_float sp.dur_ns /. 1e3));
            if sp.self_rounds > 0 then begin
              Buffer.add_string b
                (Printf.sprintf ",\"rounds_self\":%d,\"rounds\":{"
                   sp.self_rounds);
              let first = ref true in
              List.iter
                (fun (l, r) ->
                  if not !first then Buffer.add_char b ',';
                  first := false;
                  add_str b l;
                  Buffer.add_string b (Printf.sprintf ":%d" r))
                (List.rev sp.rounds_by_label);
              Buffer.add_char b '}'
            end;
            (match dedup_attrs sp.attrs with
            | [] -> ()
            | attrs ->
                Buffer.add_string b ",\"attrs\":{";
                let first = ref true in
                List.iter
                  (fun (k, v) ->
                    if not !first then Buffer.add_char b ',';
                    first := false;
                    add_str b k;
                    Buffer.add_char b ':';
                    add_value b v)
                  attrs;
                Buffer.add_char b '}');
            Buffer.add_string b "}\n");
        List.iter
          (fun (name, v) ->
            Buffer.add_string b "{\"type\":\"counter\",\"name\":";
            add_str b name;
            Buffer.add_string b (Printf.sprintf ",\"value\":%d}\n" v))
          (counters t);
        List.iter
          (fun (name, h) ->
            Buffer.add_string b "{\"type\":\"histogram\",\"name\":";
            add_str b name;
            Buffer.add_string b
              (Printf.sprintf
                 ",\"count\":%d,\"sum\":%.17g,\"min\":%.17g,\"max\":%.17g,\"buckets\":["
                 h.count h.sum h.min h.max);
            let first = ref true in
            List.iter
              (fun (ub, c) ->
                if not !first then Buffer.add_char b ',';
                first := false;
                Buffer.add_string b (Printf.sprintf "[%.17g,%d]" ub c))
              h.buckets;
            Buffer.add_string b "]}\n")
          (histograms t);
        List.iter
          (fun (l, r) ->
            Buffer.add_string b
              "{\"type\":\"unattributed_rounds\",\"label\":";
            add_str b l;
            Buffer.add_string b (Printf.sprintf ",\"rounds\":%d}\n" r))
          (List.rev t.orphan_rounds))
      traces

  let chrome_to_channel oc traces =
    let b = Buffer.create 65536 in
    chrome b traces;
    Buffer.output_buffer oc b

  let jsonl_to_channel oc traces =
    let b = Buffer.create 65536 in
    jsonl b traces;
    Buffer.output_buffer oc b
end
