(** Structured tracing and metrics for the decomposition pipeline.

    Every stage of the Nash-Williams pipeline (H-partition, network
    decomposition, augmenting search, CUT rules, recoloring, star
    conversion, ...) wraps its work in a {!span}. Spans nest, carry a
    monotonic-clock duration, free-form attributes ([colors_used],
    [path_len], [cluster_diam], ...), and accumulate the LOCAL rounds
    charged while they are the innermost active span (the [Rounds]
    ledger calls {!record_rounds} on every charge). Counters and
    histograms capture unordered quantities: augmenting-search steps,
    connectivity-cache hits and rebuilds, messages crossing the
    [Msg_net] kernel.

    The subsystem is disabled by default and then costs one atomic load
    per call and allocates nothing: instrumented hot paths stay hot.
    When enabled, all state is {e domain-local} (per [Domain.DLS]), so
    the bench harness fanning experiments across [--domains K] never
    mixes two experiments' spans or rounds.

    Three exporters: Chrome [trace_event] JSON (open in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}), a JSONL
    event stream, and a text summary tree. See [docs/observability.md]. *)

(** Attribute values attached to spans. *)
type value = Bool of bool | Int of int | Float of float | Str of string

(** Monotonic clock read, in nanoseconds from an arbitrary origin. The
    sanctioned timestamp source outside lib/obs: nwlint DET001 flags
    raw [Monotonic_clock] reads in lib/ but allowlists this. *)
val now_ns : unit -> int64

(** {1 Global switch} *)

val enabled : unit -> bool

(** [set_enabled true] turns recording on process-wide. With recording
    off every entry point below is a no-op (spans still run their
    thunk). *)
val set_enabled : bool -> unit

(** {1 Recording} *)

(** [span name f] runs [f ()] inside a span called [name], nested under
    the current domain's innermost open span. Timing uses the monotonic
    clock; an exception escaping [f] still closes the span. [?attrs]
    seeds the span's attributes. Disabled: exactly [f ()]. *)
val span : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span (latest binding of a
    key wins at export). No-op when disabled or outside any span. *)
val set_attr : string -> value -> unit

(** [record_rounds ~label r] attributes [r] LOCAL rounds to the
    innermost open span (or to the trace's unattributed bucket outside
    any span). Called by [Nw_localsim.Rounds.charge]; instrumented code
    rarely needs it directly. *)
val record_rounds : label:string -> int -> unit

(** [count name ~by] bumps the named trace-level counter. *)
val count : ?by:int -> string -> unit

(** [observe name v] adds [v] to the named trace-level histogram
    (power-of-two buckets; count/sum/min/max are exact). *)
val observe : string -> float -> unit

(** {1 Collection}

    A {!trace} is everything one domain recorded between the start and
    end of a {!collect}: the forest of closed spans plus counters,
    histograms, and unattributed rounds. *)

type trace

(** [collect f] runs [f] against a fresh domain-local trace and returns
    it alongside [f]'s result. Collections nest; the outer trace does
    not see the inner one's events. With recording disabled the trace
    comes back empty. *)
val collect : (unit -> 'a) -> 'a * trace

val is_empty : trace -> bool

(** {1 Summaries} *)

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;  (** (upper bound, count), non-empty only *)
}

(** Aggregate of all spans sharing a name, in first-seen pre-order.
    [self_ns] excludes child spans; [rounds] are self-rounds, so summing
    either column over all phases (plus {!unattributed_rounds}) gives
    the trace totals with no double counting. *)
type phase = {
  name : string;
  calls : int;
  total_ns : int64;  (** inclusive; overlaps along nesting chains *)
  self_ns : int64;
  rounds : int;
  rounds_by_label : (string * int) list;
}

val phases : trace -> phase list

(** Rounds recorded outside any span. *)
val unattributed_rounds : trace -> int

(** Self-rounds summed over every span plus {!unattributed_rounds}:
    equals the ledger total charged during the collection. *)
val total_rounds : trace -> int

(** Wall time covered by root spans (children are inside their roots). *)
val root_wall_ns : trace -> int64

val counters : trace -> (string * int) list
val histograms : trace -> (string * histogram) list

(** [percentile h q] is the nearest-rank q-th percentile (q in
    [0, 100], clamped) from the power-of-two buckets: the upper bound
    of the bucket holding the rank-th observation, clamped into
    [[h.min, h.max]]. Exact for constant and single-sample
    distributions; otherwise within a factor of 2 (the bucket width).
    [None] on an empty histogram. *)
val percentile : histogram -> float -> float option

(** Read-only copy of the current domain's in-flight trace: completed
    root spans (open spans excluded), counters, histograms, and
    unattributed rounds as of now. Safe to render while recording
    continues — the metrics exposition path calls this between
    pipeline passes. *)
val live_snapshot : unit -> trace

(** Render the span tree (durations, per-span rounds, attributes),
    then counters and histograms. *)
val pp_summary : Format.formatter -> trace -> unit

(** {1 Exporters} *)

module Export : sig
  (** Chrome [trace_event] JSON ([{"traceEvents": [...]}], complete
      "X" events, microsecond timestamps, one [tid] lane per domain).
      Span attributes, self-rounds, and per-label rounds appear under
      each event's ["args"]. *)
  val chrome : Buffer.t -> trace list -> unit

  val chrome_to_channel : out_channel -> trace list -> unit

  (** One JSON object per line: [span], [counter], and [histogram]
      events. *)
  val jsonl : Buffer.t -> trace list -> unit

  val jsonl_to_channel : out_channel -> trace list -> unit
end
