(* Prometheus text-exposition rendering of Obs traces.

   Renders counters, histograms, and per-phase aggregates in the
   text/plain version=0.0.4 format scrapeable by Prometheus (or read by
   a human over `forestd stats` / --serve-metrics). Works on the public
   Obs surface only, so it renders both finished [collect] traces and
   [Obs.live_snapshot] copies taken mid-run.

   Dotted Obs names ("chaos.drops", "cache.rebuilds") map onto the
   Prometheus grammar by sanitizing to [a-zA-Z0-9_] under an "nw_"
   prefix; the original name is kept as a {name="..."} label on the
   shared phase/counter families so nothing is lost to collisions. *)

let sanitize name =
  let b = Buffer.create (String.length name + 4) in
  String.iter
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b ch
      | _ -> Buffer.add_char b '_')
    name;
  let s = Buffer.contents b in
  if s = "" then "_" else s

(* label values: Prometheus escapes backslash, double-quote, newline *)
let escape_label v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | ch -> Buffer.add_char b ch)
    v;
  Buffer.contents b

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* merge per-trace assoc lists, summing values with [add] *)
let merge_by_name add lists =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (name, v) ->
         match Hashtbl.find_opt tbl name with
         | Some cur -> Hashtbl.replace tbl name (add cur v)
         | None ->
             order := name :: !order;
             Hashtbl.add tbl name v))
    lists;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order

let merge_hist (a : Obs.histogram) (b : Obs.histogram) : Obs.histogram =
  let buckets =
    merge_by_name ( + )
      [
        List.map (fun (ub, c) -> (ub, c)) a.buckets;
        List.map (fun (ub, c) -> (ub, c)) b.buckets;
      ]
    |> List.sort (fun (x, _) (y, _) -> Float.compare x y)
  in
  {
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    min = Float.min a.min b.min;
    max = Float.max a.max b.max;
    buckets;
  }

let render b traces =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
  (* counters ----------------------------------------------------- *)
  let counters = merge_by_name ( + ) (List.map Obs.counters traces) in
  if counters <> [] then begin
    line "# TYPE nw_counter_total counter\n";
    List.iter
      (fun (name, v) ->
        line "nw_counter_total{name=\"%s\"} %d\n" (escape_label name) v)
      counters
  end;
  (* histograms --------------------------------------------------- *)
  let hists =
    merge_by_name merge_hist (List.map Obs.histograms traces)
  in
  List.iter
    (fun (name, (h : Obs.histogram)) ->
      let base = "nw_" ^ sanitize name in
      line "# TYPE %s histogram\n" base;
      let cum = ref 0 in
      List.iter
        (fun (ub, c) ->
          cum := !cum + c;
          line "%s_bucket{le=\"%s\"} %d\n" base (fmt_float ub) !cum)
        h.buckets;
      line "%s_bucket{le=\"+Inf\"} %d\n" base h.count;
      line "%s_sum %s\n" base (fmt_float h.sum);
      line "%s_count %d\n" base h.count)
    hists;
  (* phases ------------------------------------------------------- *)
  let phases =
    merge_by_name
      (fun (a : Obs.phase) (p : Obs.phase) ->
        {
          a with
          calls = a.calls + p.calls;
          total_ns = Int64.add a.total_ns p.total_ns;
          self_ns = Int64.add a.self_ns p.self_ns;
          rounds = a.rounds + p.rounds;
        })
      (List.map
         (fun t ->
           List.map (fun (p : Obs.phase) -> (p.name, p)) (Obs.phases t))
         traces)
  in
  if phases <> [] then begin
    line "# TYPE nw_phase_calls_total counter\n";
    line "# TYPE nw_phase_seconds_total counter\n";
    line "# TYPE nw_phase_self_seconds_total counter\n";
    line "# TYPE nw_phase_rounds_total counter\n";
    List.iter
      (fun (name, (p : Obs.phase)) ->
        let l = escape_label name in
        line "nw_phase_calls_total{phase=\"%s\"} %d\n" l p.calls;
        line "nw_phase_seconds_total{phase=\"%s\"} %s\n" l
          (fmt_float (Int64.to_float p.total_ns /. 1e9));
        line "nw_phase_self_seconds_total{phase=\"%s\"} %s\n" l
          (fmt_float (Int64.to_float p.self_ns /. 1e9));
        line "nw_phase_rounds_total{phase=\"%s\"} %d\n" l p.rounds)
      phases
  end;
  (* totals ------------------------------------------------------- *)
  let rounds = List.fold_left (fun a t -> a + Obs.total_rounds t) 0 traces in
  let unattr =
    List.fold_left (fun a t -> a + Obs.unattributed_rounds t) 0 traces
  in
  line "# TYPE nw_rounds_total counter\n";
  line "nw_rounds_total %d\n" rounds;
  line "# TYPE nw_rounds_unattributed_total counter\n";
  line "nw_rounds_unattributed_total %d\n" unattr

let to_string traces =
  let b = Buffer.create 4096 in
  render b traces;
  Buffer.contents b
