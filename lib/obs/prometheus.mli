(** Prometheus text-exposition (text/plain; version=0.0.4) rendering of
    Obs traces: counters as an [nw_counter_total{name="..."}] family,
    histograms as cumulative [_bucket{le="..."}]/[_sum]/[_count]
    series under sanitized [nw_*] names, per-phase aggregates as
    [nw_phase_{calls,seconds,self_seconds,rounds}_total{phase="..."}],
    and the trace round totals. Multiple traces (one per domain) are
    merged by name. Works on {!Obs.live_snapshot} copies, so a running
    daemon can be scraped between pipeline passes. *)

val render : Buffer.t -> Obs.trace list -> unit
val to_string : Obs.trace list -> string

(** Metric-name sanitization ([a-zA-Z0-9_] only) and label-value
    escaping, exposed for tests. *)
val sanitize : string -> string

val escape_label : string -> string
