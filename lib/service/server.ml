module Obs = Nw_obs.Obs
module Prometheus = Nw_obs.Prometheus
module Metrics_server = Nw_obs.Metrics_server
module Plan = Nw_chaos.Plan
module Registry = Nw_engine.Registry
module Dpool = Nw_localsim.Dpool
module J = Nw_obs.Json_lite
module Jmit = Nw_obs.Json_lite.Emit

type config = {
  socket_path : string;
  domains : int;
  metrics_socket : string option;
}

exception Server_error of string

type state = {
  sessions : (string, Session.t) Hashtbl.t;
  mutable st_requests : int;
  mutable st_errors : int;
}

let create_state () =
  { sessions = Hashtbl.create 16; st_requests = 0; st_errors = 0 }

let requests st = st.st_requests
let errors st = st.st_errors
let survivable = function Out_of_memory | Stack_overflow -> false | _ -> true

(* ------------------------------------------------------------------ *)
(* dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let op_label = function
  | Wire.Hello _ -> "hello"
  | Wire.Load_graph _ -> "load-graph"
  | Wire.Decompose _ -> "decompose"
  | Wire.Orient _ -> "orient"
  | Wire.Insert_edge _ -> "insert-edge"
  | Wire.Delete_edge _ -> "delete-edge"
  | Wire.Arm_chaos _ -> "arm-chaos"
  | Wire.Stats _ -> "stats"
  | Wire.Shutdown -> "shutdown"

let session_of = function
  | Wire.Hello _ | Wire.Shutdown -> None
  | Wire.Load_graph { session; _ }
  | Wire.Decompose { session; _ }
  | Wire.Orient { session; _ }
  | Wire.Insert_edge { session; _ }
  | Wire.Delete_edge { session; _ }
  | Wire.Arm_chaos { session; _ } ->
      Some session
  | Wire.Stats { session } -> session

(* best-effort id recovery for error responses to payloads that failed
   full parsing: a client that at least sent an integer id deserves to
   correlate the rejection *)
let recover_id payload =
  match J.parse payload with
  | exception J.Parse_error _ -> None
  | v -> Option.bind (J.member "id" v) J.to_int

let err st ~id code detail =
  st.st_errors <- st.st_errors + 1;
  Obs.count "service.errors";
  Wire.response_error ~id ~code ~detail

let with_session st ~id session k =
  match Hashtbl.find_opt st.sessions session with
  | Some s -> k s
  | None ->
      err st ~id:(Some id) "unknown-session"
        (Printf.sprintf "no session named %S (load-graph first)" session)

let algorithms_json () =
  let b = Buffer.create 128 in
  Buffer.add_char b '[';
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_char b ',';
      Jmit.string b name)
    (Registry.names ());
  Buffer.add_char b ']';
  Buffer.contents b

let chaos_json (cs : Session.chaos_summary) =
  Printf.sprintf
    "{\"valid\":%d,\"detected\":%d,\"corrupt\":%d,\"recoveries\":%d}"
    cs.Session.cs_valid cs.cs_detected cs.cs_corrupt cs.cs_recoveries

let session_json s =
  Wire.(
    obj_fields
      [
        str "session" (Session.name s);
        int "n" (Session.vertex_count s);
        int "live_edges" (Session.live_edges s);
        int "total_slots" (Session.total_slots s);
        int "epoch" (Session.epoch s);
        int "incremental_updates" (Session.incremental_updates s);
        int "fallbacks" (Session.fallbacks s);
        (match Session.last_algorithm s with
        | Some a -> str "algorithm" a
        | None -> null "algorithm");
        bool "chaos_armed" (Session.chaos_armed s);
      ])

let decomposed_fields s ~algorithm (d : Session.decomposed) =
  let base =
    [
      Wire.str "session" (Session.name s);
      Wire.int "epoch" d.Session.d_epoch;
      Wire.str "algorithm" algorithm;
      Wire.str "mode" "full";
      Wire.int "alpha" d.Session.d_alpha;
    ]
  in
  let out =
    match d.Session.d_output with
    | Session.Colored { slot_colors; colors_used } ->
        [
          Wire.int "colors_used" colors_used;
          Wire.raw "colors" (Wire.int_array slot_colors);
        ]
    | Session.Oriented { heads; max_out_degree } ->
        [
          Wire.int "max_out_degree" max_out_degree;
          Wire.raw "heads" (Wire.int_array heads);
        ]
    | Session.Pseudo { slot_colors; k } ->
        [
          Wire.int "pseudo_forests" k;
          Wire.raw "colors" (Wire.int_array slot_colors);
        ]
  in
  let verified =
    match d.Session.d_verified with
    | Ok () -> [ Wire.bool "verified" true ]
    | Error msg ->
        [ Wire.bool "verified" false; Wire.str "verify_error" msg ]
  in
  let chaos =
    match d.Session.d_chaos with
    | None -> []
    | Some cs -> [ Wire.raw "chaos" (chaos_json cs) ]
  in
  base @ out @ verified @ chaos

let churn_fields s (c : Session.churn) =
  [
    Wire.str "session" (Session.name s);
    Wire.int "edge" c.Session.ch_edge;
    (match c.Session.ch_color with
    | Some color -> Wire.int "color" color
    | None -> Wire.null "color");
    Wire.str "mode" (Session.mode_label c.Session.ch_mode);
    Wire.int "epoch" c.Session.ch_epoch;
    Wire.int "live_edges" (Session.live_edges s);
  ]

let run_batch st ~id ~op ~session ~algorithm ~epsilon ~seed ~alpha =
  with_session st ~id session @@ fun s ->
  match Registry.find algorithm with
  | None ->
      err st ~id:(Some id) "unknown-algorithm"
        (Printf.sprintf "no algorithm named %S (see hello.algorithms)"
           algorithm)
  | Some entry -> (
      let orientation_entry =
        match entry.Registry.yields with
        | Registry.Orientation_out -> true
        | Registry.Coloring_out | Registry.Pseudo_out -> false
      in
      let mismatch =
        match op with
        | `Orient -> not orientation_entry
        | `Decompose -> orientation_entry
      in
      if mismatch then
        err st ~id:(Some id) "wrong-op"
          (Printf.sprintf
             "%S yields %s output; use the %s op"
             algorithm
             (if orientation_entry then "an orientation" else "a decomposition")
             (if orientation_entry then "orient" else "decompose"))
      else
        match Session.decompose s ~entry ~epsilon ~seed ~alpha with
        | Ok d -> Wire.response_ok ~id (decomposed_fields s ~algorithm d)
        | Error detail -> err st ~id:(Some id) "decompose-failed" detail)

let dispatch st ~id request =
  match request with
  | Wire.Hello { client_proto } ->
      if String.equal client_proto Wire.proto then begin
        let registry, registry_hash = Registry.stamp () in
        Wire.response_ok ~id
          [
            Wire.str "proto" Wire.proto;
            Wire.str "server" "forestd";
            Wire.str "registry" registry;
            Wire.str "registry_hash" registry_hash;
            Wire.raw "algorithms" (algorithms_json ());
          ]
      end
      else
        err st ~id:(Some id) "proto-mismatch"
          (Printf.sprintf "server speaks %s, client sent %s" Wire.proto
             client_proto)
  | Wire.Load_graph { session; n; edges } -> (
      let bad =
        if n < 0 then Some "negative vertex count"
        else
          List.fold_left
            (fun acc (u, v) ->
              match acc with
              | Some _ -> acc
              | None -> (
                  match Session.valid_edge ~n u v with
                  | Ok () -> None
                  | Error e ->
                      Some (Printf.sprintf "edge (%d, %d): %s" u v e)))
            None edges
      in
      match bad with
      | Some detail -> err st ~id:(Some id) "bad-graph" detail
      | None ->
          let s = Session.create ~name:session ~n ~edges in
          Hashtbl.replace st.sessions session s;
          Wire.response_ok ~id
            [
              Wire.str "session" session;
              Wire.int "n" n;
              Wire.int "edges" (List.length edges);
              Wire.int "epoch" (Session.epoch s);
            ])
  | Wire.Decompose { session; algorithm; epsilon; seed; alpha } ->
      run_batch st ~id ~op:`Decompose ~session ~algorithm ~epsilon ~seed
        ~alpha
  | Wire.Orient { session; algorithm; epsilon; seed; alpha } ->
      run_batch st ~id ~op:`Orient ~session ~algorithm ~epsilon ~seed ~alpha
  | Wire.Insert_edge { session; u; v } -> (
      with_session st ~id session @@ fun s ->
      match Session.insert_edge s ~u ~v with
      | Ok c -> Wire.response_ok ~id (churn_fields s c)
      | Error detail -> err st ~id:(Some id) "bad-edge" detail)
  | Wire.Delete_edge { session; edge } -> (
      with_session st ~id session @@ fun s ->
      match Session.delete_edge s ~edge with
      | Ok c -> Wire.response_ok ~id (churn_fields s c)
      | Error detail -> err st ~id:(Some id) "bad-edge" detail)
  | Wire.Arm_chaos { session; plan; chaos_seed } -> (
      with_session st ~id session @@ fun s ->
      match Plan.of_string plan with
      | Error detail -> err st ~id:(Some id) "bad-plan" detail
      | Ok p ->
          Session.arm_chaos s ~plan:p ~chaos_seed;
          Wire.response_ok ~id
            [
              Wire.str "session" session;
              Wire.str "plan" (Plan.to_string p);
              Wire.str "plan_digest" (Plan.digest p);
              Wire.int "chaos_seed" chaos_seed;
              Wire.int "epoch" (Session.epoch s);
            ])
  | Wire.Stats { session = Some session } ->
      with_session st ~id session @@ fun s ->
      Wire.response_ok ~id [ Wire.raw "session_stats" (session_json s) ]
  | Wire.Stats { session = None } ->
      let b = Buffer.create 256 in
      Buffer.add_char b '[';
      let first = ref true in
      Hashtbl.iter
        (fun _ s ->
          if not !first then Buffer.add_char b ',';
          first := false;
          Buffer.add_string b (session_json s))
        st.sessions;
      Buffer.add_char b ']';
      Wire.response_ok ~id
        [
          Wire.int "requests" st.st_requests;
          Wire.int "errors" st.st_errors;
          Wire.int "session_count" (Hashtbl.length st.sessions);
          Wire.raw "sessions" (Buffer.contents b);
        ]
  | Wire.Shutdown ->
      Wire.response_ok ~id [ Wire.bool "stopping" true ]

let handle st payload =
  st.st_requests <- st.st_requests + 1;
  Obs.count "service.requests";
  match Wire.parse_request payload with
  | Error detail ->
      ( err st ~id:(recover_id payload) "bad-request" detail,
        `Continue )
  | Ok { Wire.id; request } ->
      let label = op_label request in
      let attrs =
        (("request_id", Obs.Int id) :: []
        |> fun l ->
        match session_of request with
        | Some s -> ("session", Obs.Str s) :: l
        | None -> l)
      in
      let t0 = Obs.now_ns () in
      let resp =
        Obs.span ~attrs ("serve:" ^ label) @@ fun () ->
        match dispatch st ~id request with
        | resp -> resp
        | exception exn when survivable exn ->
            err st ~id:(Some id) "internal-error" (Printexc.to_string exn)
      in
      let dt_ms =
        Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1_000_000.
      in
      Obs.observe ("service.latency_ms." ^ label) dt_ms;
      let continue =
        match request with Wire.Shutdown -> `Shutdown | _ -> `Continue
      in
      (resp, continue)

(* ------------------------------------------------------------------ *)
(* the daemon                                                          *)
(* ------------------------------------------------------------------ *)

let serve_connection st client ~publish ~stop =
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  let close_conn () =
    (* closing the out channel flushes and closes the shared fd *)
    try close_out oc with Sys_error _ -> ()
  in
  let rec loop () =
    match Wire.read_frame ic with
    | None -> ()
    | Some payload ->
        let resp, k = handle st payload in
        Wire.write_frame oc resp;
        publish ();
        (match k with
        | `Continue -> loop ()
        | `Shutdown -> stop := true)
    | exception Wire.Protocol_error detail ->
        (* the stream is out of sync: answer what we can, drop only
           this connection — the daemon survives *)
        st.st_errors <- st.st_errors + 1;
        Obs.count "service.errors";
        (try
           Wire.write_frame oc
             (Wire.response_error ~id:None ~code:"protocol-error" ~detail)
         with Sys_error _ -> ())
  in
  Fun.protect ~finally:close_conn (fun () ->
      try loop () with Sys_error _ -> ())

let serve config =
  if config.domains < 1 then
    raise (Server_error "domains must be at least 1");
  (* shared reclaim policy with the metrics endpoint: stale socket files
     are swept, anything else at the path is refused (Invalid_argument) *)
  Metrics_server.reclaim_socket_path ~whom:"forestd serve"
    config.socket_path;
  (* a dropped client mid-write must be a Sys_error on the channel, not
     a process-killing SIGPIPE *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  let fd =
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | fd -> fd
    | exception Unix.Unix_error (e, _, _) ->
        raise (Server_error ("socket: " ^ Unix.error_message e))
  in
  (match Unix.bind fd (Unix.ADDR_UNIX config.socket_path) with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise
        (Server_error
           (Printf.sprintf "bind %s: %s" config.socket_path
              (Unix.error_message e))));
  (match Unix.listen fd 16 with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (Server_error ("listen: " ^ Unix.error_message e)));
  (* the request spans/histograms always run; the exposition endpoint is
     opt-in. Obs-on changes no served bytes (the PR2 guarantee). *)
  Obs.set_enabled true;
  let published = Atomic.make "" in
  let msrv =
    Option.map
      (fun path ->
        Metrics_server.start ~path (fun () -> Atomic.get published))
      config.metrics_socket
  in
  let publish () =
    if Option.is_some msrv then
      Atomic.set published (Prometheus.to_string [ Obs.live_snapshot () ])
  in
  let finish () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
    Option.iter Metrics_server.stop msrv
  in
  Fun.protect ~finally:finish @@ fun () ->
  (* one persistent worker pool for every batch request *)
  Dpool.with_domains config.domains @@ fun () ->
  fst
  @@ Obs.collect
  @@ fun () ->
  let st = create_state () in
  let stop = ref false in
  while not !stop do
    match Unix.accept fd with
    | client, _ -> serve_connection st client ~publish ~stop
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        ()
    | exception Unix.Unix_error (e, _, _) ->
        raise (Server_error ("accept: " ^ Unix.error_message e))
  done
