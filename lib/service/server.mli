(** The decomposition daemon: accept loop, request dispatch, metrics.

    [serve config] binds a Unix stream socket (reclaiming a stale socket
    file through {!Nw_obs.Metrics_server.reclaim_socket_path}, so a
    non-socket path is refused with [Invalid_argument], never unlinked),
    then answers nw-wire/1 frames one connection at a time on the
    calling domain. Batch work inside a request still runs on the
    persistent [Dpool] worker pool ([config.domains]), so the daemon is
    sequential at the request level — every session mutation is trivially
    race-free — while individual decompositions parallelize exactly like
    the one-shot CLI.

    Per request: an [Obs] span [serve:<op>] tagged with the request id
    (and session), a [service.latency_ms.<op>] histogram observation and
    a [service.requests] counter bump. With [metrics_socket] set, a
    {!Nw_obs.Metrics_server} endpoint serves the Prometheus rendering of
    the live snapshot, republished after every request.

    A framing error ([Wire.Protocol_error]) poisons only its connection:
    the daemon answers [id:null]/[protocol-error] and closes that
    socket. A request-level failure (unknown session/algorithm, invalid
    edge, a survivable exception out of a pipeline) becomes an
    [ok:false] response on the live connection. Only resource-exhaustion
    panics and listener-level failures ({!Server_error}) escape. *)

type config = {
  socket_path : string;
  domains : int;  (** worker pool size, >= 1 *)
  metrics_socket : string option;  (** [--serve-metrics] endpoint *)
}

(** Listener-level failure (bind/listen/accept); fatal for the daemon.
    The carried string is the diagnostic detail. *)
exception Server_error of string

(** Run the daemon until a [shutdown] frame arrives. Raises
    [Invalid_argument] when [socket_path] exists and is not a socket,
    {!Server_error} on listener failures. *)
val serve : config -> unit

(** {1 Testable core}

    The framing-free dispatch surface: one request payload in, one
    response payload out. [serve] is this plus sockets; the protocol
    tests drive [handle] directly so malformed-frame and session-logic
    coverage needs no daemon process. *)

type state

val create_state : unit -> state

(** Requests dispatched so far (well-formed or not). *)
val requests : state -> int

(** Responses answered with [ok:false] so far. *)
val errors : state -> int

(** [handle state payload] dispatches one request payload and returns
    the response payload plus whether the daemon should keep serving.
    Never raises on hostile input — parse failures and survivable
    dispatch exceptions become error responses. *)
val handle : state -> string -> string * [ `Continue | `Shutdown ]
