module G = Nw_graphs.Multigraph
module Orientation = Nw_graphs.Orientation
module Rounds = Nw_localsim.Rounds
module Coloring = Nw_decomp.Coloring
module Verify = Nw_decomp.Verify
module Obs = Nw_obs.Obs
module Plan = Nw_chaos.Plan
module Harness = Nw_chaos.Harness
module Registry = Nw_engine.Registry
module Engine = Nw_engine.Engine
module EStore = Nw_engine.Store
module Artifact = Nw_engine.Artifact

(* the batch parameters behind the live coloring, remembered so the
   churn fallback can re-run the same decomposition on the mutated
   graph. [b_alpha] keeps the caller's option: when it was omitted the
   fallback re-resolves the exact arboricity of the *new* graph rather
   than reusing a bound the mutations may have invalidated. *)
type batch = {
  b_entry : Registry.entry;
  b_epsilon : float;
  b_seed : int;
  b_alpha : int option;
}

type t = {
  s_name : string;
  s_n : int;
  mutable s_epoch : int;
  s_builder : G.builder;  (* slot table; append-only *)
  mutable s_graph : G.t;  (* over all slots, dead ones included *)
  mutable s_live : bool array;  (* slot -> not tombstoned *)
  mutable s_slots : int;
  mutable s_live_count : int;
  mutable s_col : Coloring.t option;  (* live incremental coloring *)
  mutable s_palette : int;  (* color budget of [s_col] *)
  mutable s_batch : batch option;
  mutable s_chaos : (Plan.t * int) option;
  mutable s_incremental : int;
  mutable s_fallbacks : int;
}

let name t = t.s_name
let epoch t = t.s_epoch
let vertex_count t = t.s_n
let live_edges t = t.s_live_count
let total_slots t = t.s_slots
let incremental_updates t = t.s_incremental
let fallbacks t = t.s_fallbacks

let last_algorithm t =
  Option.map (fun b -> b.b_entry.Registry.name) t.s_batch

let valid_edge ~n u v =
  if u < 0 || u >= n || v < 0 || v >= n then
    Error (Printf.sprintf "endpoint out of range (n = %d)" n)
  else if Int.equal u v then Error "self-loops are not allowed"
  else Ok ()

let create ~name ~n ~edges =
  if n < 0 then invalid_arg "Session.create: negative vertex count";
  let builder = G.create_builder n in
  List.iter
    (fun (u, v) ->
      match valid_edge ~n u v with
      | Ok () -> ignore (G.add_edge builder u v)
      | Error e -> invalid_arg ("Session.create: " ^ e))
    edges;
  let graph = G.build builder in
  let slots = G.m graph in
  let live = Array.make (max 16 slots) false in
  for s = 0 to slots - 1 do
    live.(s) <- true
  done;
  {
    s_name = name;
    s_n = n;
    s_epoch = 1;
    s_builder = builder;
    s_graph = graph;
    s_live = live;
    s_slots = slots;
    s_live_count = slots;
    s_col = None;
    s_palette = 0;
    s_batch = None;
    s_chaos = None;
    s_incremental = 0;
    s_fallbacks = 0;
  }

let arm_chaos t ~plan ~chaos_seed = t.s_chaos <- Some (plan, chaos_seed)
let chaos_armed t = Option.is_some t.s_chaos

(* recoverable daemon-side failures; resource-exhaustion panics are not
   something a retry or an error frame can answer honestly *)
let survivable = function Out_of_memory | Stack_overflow -> false | _ -> true

let ensure_live_capacity t k =
  let cap = Array.length t.s_live in
  if k > cap then begin
    let fresh = Array.make (max k (2 * cap)) false in
    Array.blit t.s_live 0 fresh 0 cap;
    t.s_live <- fresh
  end

(* compact the live slots into a standalone graph; [slotmap] sends each
   compact edge id back to its slot *)
let live_graph t =
  let b = G.create_builder t.s_n in
  let slotmap = Array.make (max 1 t.s_live_count) (-1) in
  let j = ref 0 in
  for s = 0 to t.s_slots - 1 do
    if t.s_live.(s) then begin
      let u, v = G.endpoints t.s_graph s in
      ignore (G.add_edge b u v);
      slotmap.(!j) <- s;
      incr j
    end
  done;
  (G.build b, slotmap)

(* ------------------------------------------------------------------ *)
(* batch work                                                          *)
(* ------------------------------------------------------------------ *)

type output =
  | Colored of { slot_colors : int array; colors_used : int }
  | Oriented of { heads : int array; max_out_degree : int }
  | Pseudo of { slot_colors : int array; k : int }

type chaos_summary = {
  cs_valid : int;
  cs_detected : int;
  cs_corrupt : int;
  cs_recoveries : int;
}

type decomposed = {
  d_output : output;
  d_epoch : int;
  d_alpha : int;
  d_verified : (unit, string) result;
  d_chaos : chaos_summary option;
}

(* same checkers the engine smoke gate applies per yields kind *)
let verify_output ~entry ~gl ~epsilon ~alpha store =
  match entry.Registry.yields with
  | Registry.Coloring_out ->
      let c = EStore.coloring store "coloring" in
      if entry.Registry.star then Verify.star_forest_decomposition c
      else Verify.forest_decomposition c
  | Registry.Orientation_out ->
      let o = EStore.orientation store "orientation" in
      let bound =
        int_of_float (ceil ((1. +. epsilon) *. float_of_int alpha))
      in
      Verify.orientation_out_degree o bound
  | Registry.Pseudo_out ->
      let a, k = EStore.assignment store "assignment" in
      Verify.pseudo_forest_assignment gl a ~k

let extract_output ~entry ~slots ~slotmap store =
  match entry.Registry.yields with
  | Registry.Coloring_out ->
      let c = EStore.coloring store "coloring" in
      let slot_colors = Array.make slots (-1) in
      Array.iteri
        (fun e s ->
          match Coloring.color c e with
          | Some col -> slot_colors.(s) <- col
          | None -> ())
        slotmap;
      Colored { slot_colors; colors_used = Verify.colors_used c }
  | Registry.Orientation_out ->
      let o = EStore.orientation store "orientation" in
      let heads = Array.make slots (-1) in
      Array.iteri (fun e s -> heads.(s) <- Orientation.head o e) slotmap;
      Oriented { heads; max_out_degree = Orientation.max_out_degree o }
  | Registry.Pseudo_out ->
      let a, _k = EStore.assignment store "assignment" in
      let slot_colors = Array.make slots (-1) in
      Array.iteri (fun e s -> slot_colors.(s) <- a.(e)) slotmap;
      Pseudo { slot_colors; k = _k }

(* install a verified forest decomposition as the live incremental
   coloring over the slot graph. The palette is exactly the colors the
   batch run used: churn must stay inside the advertised budget, and
   when it cannot, the session *falls back* instead of silently widening
   the decomposition. *)
let install t output verified =
  match (output, verified) with
  | Colored { slot_colors; colors_used }, Ok () ->
      let palette = max 1 colors_used in
      let col = Coloring.create t.s_graph ~colors:palette in
      Array.iteri
        (fun s c -> if c >= 0 && t.s_live.(s) then Coloring.set col s c)
        slot_colors;
      t.s_col <- Some col;
      t.s_palette <- palette
  | _ ->
      t.s_col <- None;
      t.s_palette <- 0

let decompose t ~entry ~epsilon ~seed ~alpha =
  if Int.equal t.s_live_count 0 then Error "session has no live edges"
  else begin
    let gl, slotmap = live_graph t in
    let alpha_v =
      match alpha with
      | Some a -> a
      | None -> fst (Nw_baseline.Gabow_westermann.arboricity gl)
    in
    let pipeline =
      entry.Registry.build { Registry.graph = gl; epsilon; alpha = alpha_v }
    in
    (* the exact one-shot sequence of [forestd decompose]: a fresh seeded
       RNG, a fresh rounds ledger, the graph under "graph" — so the
       served output is byte-identical to the CLI on the same graph *)
    let run_attempt ~resume ~save =
      let rng = Random.State.make [| seed |] in
      let rounds = Rounds.create () in
      let ctx = Engine.ctx ~rng ~rounds in
      let init = EStore.put EStore.empty "graph" (Artifact.Graph gl) in
      Engine.run ?resume ~checkpoint:save ctx pipeline ~init
    in
    let verify = verify_output ~entry ~gl ~epsilon ~alpha:alpha_v in
    let finish store chaos_summary =
      let output = extract_output ~entry ~slots:t.s_slots ~slotmap store in
      let verified = verify store in
      t.s_epoch <- t.s_epoch + 1;
      t.s_batch <-
        Some { b_entry = entry; b_epsilon = epsilon; b_seed = seed;
               b_alpha = alpha };
      install t output verified;
      Ok
        {
          d_output = output;
          d_epoch = t.s_epoch;
          d_alpha = alpha_v;
          d_verified = verified;
          d_chaos = chaos_summary;
        }
    in
    match t.s_chaos with
    | Some (plan, chaos_seed) ->
        (* the PR4 harness runs the attempt(s): fault compilation, the
           retry policy, resumable engine checkpoints, and the
           valid/detected/corrupt classification the response carries *)
        let last_store = ref None in
        let report =
          Harness.run_epochs_resumable ~plan ~seed:chaos_seed ~epochs:1
            ~verify
            ~run:(fun ~resume ~save ->
              let store = run_attempt ~resume ~save in
              last_store := Some store;
              store)
            ()
        in
        let summary =
          {
            cs_valid = report.Harness.valid;
            cs_detected = report.Harness.detected;
            cs_corrupt = report.Harness.corrupt;
            cs_recoveries = report.Harness.recoveries;
          }
        in
        (match !last_store with
        | Some store -> finish store (Some summary)
        | None ->
            Error
              (Printf.sprintf
                 "chaos: decomposition killed before any pass completed \
                  (valid=%d detected=%d corrupt=%d)"
                 summary.cs_valid summary.cs_detected summary.cs_corrupt))
    | None -> (
        (* fault-free path, still checkpointed: a survivable failure
           resumes once from the newest pass boundary before giving up *)
        let saved = ref None in
        let save ck = saved := Some ck in
        match run_attempt ~resume:None ~save with
        | store -> finish store None
        | exception exn when survivable exn -> (
            match run_attempt ~resume:!saved ~save with
            | store -> finish store None
            | exception exn' when survivable exn' ->
                Error
                  (Printf.sprintf "decomposition failed: %s (resumed \
                                   retry: %s)"
                     (Printexc.to_string exn) (Printexc.to_string exn'))))
  end

(* ------------------------------------------------------------------ *)
(* edge churn                                                          *)
(* ------------------------------------------------------------------ *)

type mode = Incremental | Fallback

let mode_label = function
  | Incremental -> "incremental"
  | Fallback -> "fallback"

type churn = {
  ch_edge : int;
  ch_color : int option;
  ch_mode : mode;
  ch_epoch : int;
}

(* the validity re-check behind every incremental answer: inside the
   maintained cache, the touched component must still satisfy the forest
   invariant (edges = vertices - 1) *)
let forest_ok col v c =
  let ec = Coloring.component_edge_count col v c in
  let sz = Coloring.component_size col v c in
  Int.equal ec (sz - 1)

(* full re-decomposition with the remembered batch parameters — the
   cache declined (no admissible color, or the re-check failed) *)
let fallback_rebuild t ~slot ~released =
  t.s_fallbacks <- t.s_fallbacks + 1;
  Obs.count "service.fallbacks";
  match t.s_batch with
  | None -> Error "no batch parameters to fall back to"
  | Some b -> (
      match
        decompose t ~entry:b.b_entry ~epsilon:b.b_epsilon ~seed:b.b_seed
          ~alpha:b.b_alpha
      with
      | Error e ->
          t.s_col <- None;
          Error ("fallback re-decomposition failed: " ^ e)
      | Ok _ ->
          let color =
            match (released, t.s_col) with
            | Some c, _ -> Some c
            | None, Some col -> Coloring.color col slot
            | None, None -> None
          in
          Ok
            {
              ch_edge = slot;
              ch_color = color;
              ch_mode = Fallback;
              ch_epoch = t.s_epoch;
            })

let incremental_ok t ~slot ~color =
  t.s_incremental <- t.s_incremental + 1;
  Obs.count "service.incremental_updates";
  Ok { ch_edge = slot; ch_color = color; ch_mode = Incremental;
       ch_epoch = t.s_epoch }

let insert_edge t ~u ~v =
  match valid_edge ~n:t.s_n u v with
  | Error e -> Error e
  | Ok () -> (
      let slot = G.add_edge t.s_builder u v in
      ensure_live_capacity t (slot + 1);
      t.s_live.(slot) <- true;
      t.s_slots <- slot + 1;
      t.s_live_count <- t.s_live_count + 1;
      t.s_graph <- G.build t.s_builder;
      t.s_epoch <- t.s_epoch + 1;
      match t.s_col with
      | None ->
          (* no live decomposition: the append is structural only *)
          incremental_ok t ~slot ~color:None
      | Some col -> (
          (* carry the whole cache onto the grown graph, then probe the
             palette: color c admits the edge iff u and v are not
             already connected in forest c — O(palette · α(n)) against
             the union-find, no BFS, no pipeline *)
          let col = Coloring.extend col t.s_graph in
          t.s_col <- Some col;
          let rec probe c =
            if c >= t.s_palette then None
            else if not (Coloring.connected col c u v) then Some c
            else probe (c + 1)
          in
          match probe 0 with
          | Some c ->
              Coloring.set col slot c;
              if forest_ok col u c then incremental_ok t ~slot ~color:(Some c)
              else begin
                (* cache inconsistency: unwind this edge and rebuild *)
                Coloring.unset col slot;
                fallback_rebuild t ~slot ~released:None
              end
          | None -> fallback_rebuild t ~slot ~released:None))

let delete_edge t ~edge =
  if edge < 0 || edge >= t.s_slots then
    Error (Printf.sprintf "unknown edge %d" edge)
  else if not t.s_live.(edge) then
    Error (Printf.sprintf "edge %d already deleted" edge)
  else begin
    t.s_live.(edge) <- false;
    t.s_live_count <- t.s_live_count - 1;
    t.s_epoch <- t.s_epoch + 1;
    match t.s_col with
    | None -> incremental_ok t ~slot:edge ~color:None
    | Some col -> (
        match Coloring.color col edge with
        | None -> incremental_ok t ~slot:edge ~color:None
        | Some c ->
            let u, _ = G.endpoints t.s_graph edge in
            Coloring.unset col edge;
            (* deletion only shrinks forests, but the re-check still
               guards the lazily rebuilt cache before the next probe
               trusts it *)
            if forest_ok col u c then incremental_ok t ~slot:edge ~color:(Some c)
            else fallback_rebuild t ~slot:edge ~released:(Some c))
  end
