(** Named dynamic-graph sessions behind the daemon.

    A session owns a growing edge-slot table over a fixed vertex set:
    insertions append a slot, deletions tombstone one (slot ids — the
    wire protocol's edge ids — are never reused), and every mutation or
    re-decomposition bumps the session {e epoch}, so a client can order
    responses and detect staleness.

    Batch requests ([decompose]/[orient]) compact the live slots into a
    fresh graph and run the named {!Nw_engine.Registry} entry through
    the engine exactly as one-shot [forestd decompose] does — same RNG
    construction, same alpha resolution, same pipeline — so a served
    response is byte-identical to the one-shot path on the same graph.

    After a forest decomposition, edge churn is answered
    {e incrementally}: the live {!Nw_decomp.Coloring} is
    {!Nw_decomp.Coloring.extend}ed onto the grown graph and the new edge
    probes the existing palette with {!Nw_decomp.Coloring.connected}
    (O(α(n)) amortized per color, against the PR1 per-color union-find).
    A successful probe is validity re-checked against the forest
    invariant (component edge count = component size − 1 in the cache);
    if no color admits the edge or the re-check fails, the session falls
    back to a full re-decomposition with the remembered batch
    parameters — the fallback saves engine checkpoints as it goes and
    resumes from the last pass boundary if an attempt dies. Chaos plans
    armed on the session run batch work under
    {!Nw_chaos.Harness.run_epochs_resumable}, so every served response
    carries the harness's valid/detected/corrupt classification. *)

type t

(** [create ~name ~n ~edges] is a fresh session at epoch 1.
    @raise Invalid_argument on an endpoint out of range or a self-loop
    (callers validate first; see {!valid_edge}). *)
val create : name:string -> n:int -> edges:(int * int) list -> t

val name : t -> string
val epoch : t -> int
val vertex_count : t -> int

(** Live (non-tombstoned) edge slots. *)
val live_edges : t -> int

(** All slots ever allocated, dead ones included. *)
val total_slots : t -> int

val incremental_updates : t -> int
val fallbacks : t -> int

(** Wire name of the algorithm behind the live coloring, if any. *)
val last_algorithm : t -> string option

(** [valid_edge ~n u v] checks endpoint range and non-self-loop. *)
val valid_edge : n:int -> int -> int -> (unit, string) result

val arm_chaos : t -> plan:Nw_chaos.Plan.t -> chaos_seed:int -> unit
val chaos_armed : t -> bool

(** {1 Batch work} *)

type output =
  | Colored of { slot_colors : int array; colors_used : int }
      (** per-slot colors, [-1] for dead or uncolored slots *)
  | Oriented of { heads : int array; max_out_degree : int }
      (** per-slot head vertex, [-1] for dead slots *)
  | Pseudo of { slot_colors : int array; k : int }

type chaos_summary = {
  cs_valid : int;
  cs_detected : int;
  cs_corrupt : int;
  cs_recoveries : int;
}

type decomposed = {
  d_output : output;
  d_epoch : int;
  d_alpha : int;  (** the bound actually used (resolved when omitted) *)
  d_verified : (unit, string) result;
  d_chaos : chaos_summary option;  (** present iff a plan is armed *)
}

(** Run a registry entry over the compacted live graph. [alpha:None]
    resolves the exact arboricity like the CLI does. A [Colored] result
    becomes the session's live incremental coloring (palette = colors
    used); [Oriented]/[Pseudo] results clear it. [Error] covers an
    empty-session decompose and a chaos-killed run (the detail carries
    the harness classification). *)
val decompose :
  t ->
  entry:Nw_engine.Registry.entry ->
  epsilon:float ->
  seed:int ->
  alpha:int option ->
  (decomposed, string) result

(** {1 Edge churn} *)

type mode = Incremental | Fallback

val mode_label : mode -> string

type churn = {
  ch_edge : int;  (** the slot touched *)
  ch_color : int option;
      (** color assigned (insert) or released (delete), when a live
          coloring exists *)
  ch_mode : mode;
  ch_epoch : int;
}

(** Append an edge slot. With a live coloring, extends it and probes the
    palette; falls back to a full re-decomposition when the cache
    declines. Without one, the append is structural only. *)
val insert_edge : t -> u:int -> v:int -> (churn, string) result

(** Tombstone a slot. With a live coloring this is a pure cache
    operation (unset + lazy invalidation) followed by the forest
    invariant re-check; it never needs the fallback. *)
val delete_edge : t -> edge:int -> (churn, string) result
