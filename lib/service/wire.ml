module J = Nw_obs.Json_lite
module Jmit = Nw_obs.Json_lite.Emit

let proto = "nw-wire/1"

(* generous for graphs (a 10^6-edge load-graph frame is ~15 MB) while
   still refusing to allocate unboundedly on a garbage length prefix *)
let max_frame_bytes = 64 * 1024 * 1024

exception Protocol_error of string

let protocol_error fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let encode payload =
  let n = String.length payload in
  let b = Buffer.create (n + 12) in
  Buffer.add_string b (string_of_int n);
  Buffer.add_char b '\n';
  Buffer.add_string b payload;
  Buffer.add_char b '\n';
  Buffer.contents b

let read_frame ic =
  match input_line ic with
  | exception End_of_file -> None
  | line -> (
      let len =
        match int_of_string_opt (String.trim line) with
        | Some l when l >= 0 && l <= max_frame_bytes -> l
        | Some l -> protocol_error "frame length %d out of range" l
        | None ->
            protocol_error "malformed frame length %S"
              (if String.length line > 32 then String.sub line 0 32 else line)
      in
      let payload =
        match really_input_string ic len with
        | s -> s
        | exception End_of_file -> protocol_error "truncated frame payload"
      in
      match input_char ic with
      | '\n' -> Some payload
      | _ -> protocol_error "frame payload not newline-terminated"
      | exception End_of_file -> protocol_error "truncated frame terminator")

let write_frame oc payload =
  output_string oc (encode payload);
  flush oc

(* ------------------------------------------------------------------ *)
(* requests                                                            *)
(* ------------------------------------------------------------------ *)

type request =
  | Hello of { client_proto : string }
  | Load_graph of { session : string; n : int; edges : (int * int) list }
  | Decompose of {
      session : string;
      algorithm : string;
      epsilon : float;
      seed : int;
      alpha : int option;
    }
  | Orient of {
      session : string;
      algorithm : string;
      epsilon : float;
      seed : int;
      alpha : int option;
    }
  | Insert_edge of { session : string; u : int; v : int }
  | Delete_edge of { session : string; edge : int }
  | Arm_chaos of { session : string; plan : string; chaos_seed : int }
  | Stats of { session : string option }
  | Shutdown

type frame = { id : int; request : request }

let ( let* ) = Result.bind

let field name obj =
  match J.member name obj with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name obj =
  let* v = field name obj in
  match J.to_string v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S must be a string" name)

let int_field name obj =
  let* v = field name obj in
  match J.to_int v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S must be an integer" name)

let opt_int_field name obj =
  match J.member name obj with
  | None | Some J.Null -> Ok None
  | Some v -> (
      match J.to_int v with
      | Some i -> Ok (Some i)
      | None -> Error (Printf.sprintf "field %S must be an integer" name))

let opt_str_field name obj =
  match J.member name obj with
  | None | Some J.Null -> Ok None
  | Some v -> (
      match J.to_string v with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "field %S must be a string" name))

let default_int name ~default obj =
  let* v = opt_int_field name obj in
  Ok (Option.value v ~default)

let default_float name ~default obj =
  match J.member name obj with
  | None | Some J.Null -> Ok default
  | Some v -> (
      match J.to_float v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S must be a number" name))

let edges_field name obj =
  let* v = field name obj in
  match J.to_list v with
  | None -> Error (Printf.sprintf "field %S must be a list" name)
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | J.List [ a; b ] :: rest -> (
            match (J.to_int a, J.to_int b) with
            | Some u, Some v -> go ((u, v) :: acc) rest
            | _ -> Error "edges must be [u, v] integer pairs")
        | _ -> Error "edges must be [u, v] integer pairs"
      in
      go [] items

let decompose_fields obj =
  let* session = str_field "session" obj in
  let* algorithm = str_field "algorithm" obj in
  let* epsilon = default_float "epsilon" ~default:0.5 obj in
  let* seed = default_int "seed" ~default:2021 obj in
  let* alpha = opt_int_field "alpha" obj in
  Ok (session, algorithm, epsilon, seed, alpha)

let parse_request payload =
  let* obj =
    match J.parse payload with
    | v -> Ok v
    | exception J.Parse_error msg -> Error ("malformed JSON: " ^ msg)
  in
  let* id = int_field "id" obj in
  let* op = str_field "op" obj in
  let* request =
    match op with
    | "hello" ->
        let* client_proto = str_field "proto" obj in
        Ok (Hello { client_proto })
    | "load-graph" ->
        let* session = str_field "session" obj in
        let* n = int_field "n" obj in
        let* edges = edges_field "edges" obj in
        Ok (Load_graph { session; n; edges })
    | "decompose" ->
        let* session, algorithm, epsilon, seed, alpha =
          decompose_fields obj
        in
        Ok (Decompose { session; algorithm; epsilon; seed; alpha })
    | "orient" ->
        let* session, algorithm, epsilon, seed, alpha =
          decompose_fields obj
        in
        Ok (Orient { session; algorithm; epsilon; seed; alpha })
    | "insert-edge" ->
        let* session = str_field "session" obj in
        let* u = int_field "u" obj in
        let* v = int_field "v" obj in
        Ok (Insert_edge { session; u; v })
    | "delete-edge" ->
        let* session = str_field "session" obj in
        let* edge = int_field "edge" obj in
        Ok (Delete_edge { session; edge })
    | "arm-chaos" ->
        let* session = str_field "session" obj in
        let* plan = str_field "plan" obj in
        let* chaos_seed = default_int "chaos-seed" ~default:0 obj in
        Ok (Arm_chaos { session; plan; chaos_seed })
    | "stats" ->
        let* session = opt_str_field "session" obj in
        Ok (Stats { session })
    | "shutdown" -> Ok Shutdown
    | other -> Error (Printf.sprintf "unknown op %S" other)
  in
  Ok { id; request }

(* ------------------------------------------------------------------ *)
(* responses                                                           *)
(* ------------------------------------------------------------------ *)

type field_value =
  | Fstr of string
  | Fint of int
  | Ffloat of float
  | Fbool of bool
  | Fnull
  | Fraw of string

type field = string * field_value

let str k v = (k, Fstr v)
let int k v = (k, Fint v)
let float k v = (k, Ffloat v)
let bool k v = (k, Fbool v)
let null k = (k, Fnull)
let raw k v = (k, Fraw v)

(* %.17g is the shortest-lossless-enough float form used verbatim on
   both ends of the golden tests; ints go through the int printer so
   latencies and counters never pick up an exponent *)
let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let add_field b (k, v) =
  Jmit.string b k;
  Buffer.add_char b ':';
  match v with
  | Fstr s -> Jmit.string b s
  | Fint i -> Buffer.add_string b (string_of_int i)
  | Ffloat f -> Buffer.add_string b (float_literal f)
  | Fbool x -> Buffer.add_string b (if x then "true" else "false")
  | Fnull -> Buffer.add_string b "null"
  | Fraw s -> Buffer.add_string b s

let obj fields =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      add_field b f)
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let int_array a =
  let b = Buffer.create (4 * Array.length a + 2) in
  Buffer.add_char b '[';
  Array.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      if x < 0 then Buffer.add_string b "null"
      else Buffer.add_string b (string_of_int x))
    a;
  Buffer.add_char b ']';
  Buffer.contents b

let obj_fields = obj
let response_ok ~id fields = obj (int "id" id :: bool "ok" true :: fields)

let response_error ~id ~code ~detail =
  let idf = match id with Some i -> int "id" i | None -> null "id" in
  obj [ idf; bool "ok" false; str "error" code; str "detail" detail ]
