(** nw-wire/1: the daemon's framing and message vocabulary.

    Frames are length-prefixed JSON lines over a Unix stream socket:

    {v <payload-byte-count as decimal ASCII>\n<payload>\n v}

    The payload is one RFC 8259 JSON object parsed with
    {!Nw_obs.Json_lite} (so hostile strings round-trip through the same
    escaper as every other JSON artifact in the tree). Requests carry an
    integer [id] echoed verbatim in the response; responses are
    [{"id":..,"ok":true,..}] or [{"id":..,"ok":false,"error":..,
    "detail":..}]. A malformed frame is a per-connection error
    ({!Protocol_error}); the daemon answers with [id:null] where the id
    could not be recovered and drops only that connection, never the
    process. See [docs/service.md] for the full wire contract. *)

(** Protocol version announced by [hello]. *)
val proto : string

(** Hard ceiling on a single frame's payload size (bytes); a length
    prefix beyond it is a {!Protocol_error}, not an allocation. *)
val max_frame_bytes : int

(** Framing violation: unparsable length prefix, oversized or truncated
    payload, missing frame terminator. Raised by {!read_frame}; the
    connection is no longer in sync and must be closed. *)
exception Protocol_error of string

(** [encode payload] is the framed bytes for one payload. *)
val encode : string -> string

(** Read one frame; [None] on clean EOF at a frame boundary.
    @raise Protocol_error when the stream desynchronizes. *)
val read_frame : in_channel -> string option

(** [write_frame oc payload] writes one framed payload and flushes. *)
val write_frame : out_channel -> string -> unit

(** {1 Requests} *)

type request =
  | Hello of { client_proto : string }
  | Load_graph of { session : string; n : int; edges : (int * int) list }
      (** create/replace a named session holding an [n]-vertex graph *)
  | Decompose of {
      session : string;
      algorithm : string;
      epsilon : float;
      seed : int;
      alpha : int option;
    }
  | Orient of {
      session : string;
      algorithm : string;
      epsilon : float;
      seed : int;
      alpha : int option;
    }
  | Insert_edge of { session : string; u : int; v : int }
  | Delete_edge of { session : string; edge : int }
  | Arm_chaos of { session : string; plan : string; chaos_seed : int }
  | Stats of { session : string option }
  | Shutdown

type frame = { id : int; request : request }

(** Parse one request payload. [Error detail] covers JSON syntax errors,
    a missing/non-integer [id], an unknown [op] and missing or
    ill-typed fields; the detail string is safe to echo back. *)
val parse_request : string -> (frame, string) result

(** {1 Responses}

    Responses are built with an ordered field list so the encoding is a
    pure function of the fields — the golden tests pin served bytes
    against locally re-encoded expectations. *)

type field

val str : string -> string -> field
val int : string -> int -> field
val float : string -> float -> field
val bool : string -> bool -> field
val null : string -> field

(** [raw k json] splices pre-rendered JSON (arrays, nested objects). *)
val raw : string -> string -> field

(** [int_array a] renders [a] as a JSON array literal, [-1] as [null]
    (the uncolored/dead-slot convention of the decompose response). *)
val int_array : int array -> string

(** Render a bare JSON object from ordered fields (for nesting via
    {!raw}). *)
val obj_fields : field list -> string

val response_ok : id:int -> field list -> string
val response_error : id:int option -> code:string -> detail:string -> string
