(* CONTRACT001 fixture: a pass whose body disagrees with its declared
   reads/writes contract. Expected findings: undeclared read of
   "hidden", undeclared write of "coloring", dead write entry "mask". *)

let bad_pass =
  {
    name = "fixture.bad";
    reads = [ ("graph", `Graph) ];
    writes = [ ("mask", `Mask) ];
    run =
      (fun _ctx store ->
        let _g = Nw_engine.Store.graph store "graph" in
        let _hidden = Nw_engine.Store.num store "hidden" in
        Nw_engine.Store.put store "coloring" 0);
  }
