(* EFF001 fixture: IO, wall clock, and unseeded randomness reachable
   from a pass body. The contract itself is consistent (reads graph,
   writes num) so only EFF001 fires here. *)

let log_result c = print_endline (string_of_int c)
let now () = Unix.gettimeofday ()
let pick n = Random.int n

let noisy_pass =
  {
    name = "fixture.noisy";
    reads = [ ("graph", `Graph) ];
    writes = [ ("num", `Num) ];
    run =
      (fun _ctx store ->
        let g = Nw_engine.Store.graph store "graph" in
        let c = size g in
        log_result c;
        let _t = now () in
        let _r = pick 3 in
        Nw_engine.Store.put store "num" c);
  }

and size _g = 7
