(* RACE001 fixture: shard callbacks mutating shared global state.

   [shard_sum] reaches a global-ref write three calls deep under
   Dpool.run; [round_once] writes a global from a sharded ~recv
   callback. Both must be flagged: at --domains K>1 the write order
   depends on the scheduler, so outputs stop being byte-identical. *)

let total = ref 0
let bump n = total := !total + n
let work xs = List.iter (fun x -> bump x) xs

let shard_sum parts =
  Nw_localsim.Dpool.run ~domains:4 (fun i -> work (List.nth parts i))

module Net = Nw_localsim.Msg_net.Make (Nw_graphs.Multigraph)

let seen = ref []

let round_once net state =
  Net.round net state
    ~send:(fun v st -> [ (v, st) ])
    ~recv:(fun v st msgs ->
      seen := v :: !seen;
      ignore msgs;
      st)
    ~decide:(fun _v st -> st)
