(* RACE002 fixture: DLS discipline violations.

   (a) [make_key] creates a Domain.DLS key inside a function — a fresh
   key per call defeats the one-key-per-process discipline and leaks
   slots. (b) [merge_results] reads DLS from the deterministic merge
   phase, so its result depends on which domain runs the merge. *)

let make_key () = Domain.DLS.new_key (fun () -> 0)

let key = Domain.DLS.new_key (fun () -> 0)

let merge_results acc = acc + Domain.DLS.get key
