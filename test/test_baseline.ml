(* Tests for the centralized baselines: Gabow-Westermann exact decomposition
   (with density-witness certificates), the AMR 2-alpha star split, greedy
   forest coloring, and the Barenboim-Elkin (2+eps)-alpha baseline. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Arb = Nw_graphs.Arboricity
module Rounds = Nw_localsim.Rounds
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Verify = Nw_decomp.Verify
module GW = Nw_baseline.Gabow_westermann
module Amr = Nw_baseline.Amr_star
module Greedy = Nw_baseline.Greedy_forest
module BE = Nw_baseline.Barenboim_elkin

let rng seed = Random.State.make [| seed; 31337 |]

(* ------------------------------------------------------------------ *)
(* Gabow-Westermann                                                    *)
(* ------------------------------------------------------------------ *)

let test_gw_known_arboricities () =
  let cases =
    [
      ("K4", Gen.complete 4, 2);
      ("K5", Gen.complete 5, 3);
      ("K6", Gen.complete 6, 3);
      ("K7", Gen.complete 7, 4);
      ("K33", Gen.complete_bipartite 3 3, 2);
      ("cycle", Gen.cycle 9, 2);
      ("path", Gen.path 9, 1);
      ("grid", Gen.grid 5 5, 2);
      ("line multigraph", Gen.line_multigraph 7 4, 4);
      ("petersen-ish 3-regular", Gen.random_regular (rng 1) 10 3, 2);
    ]
  in
  List.iter
    (fun (name, g, expected) ->
      let k, coloring = GW.arboricity g in
      Alcotest.(check int) name expected k;
      Verify.exn (Verify.forest_decomposition coloring);
      Alcotest.(check bool) (name ^ " uses k") true
        (Verify.colors_used coloring <= k))
    cases

let prop_gw_matches_brute_force =
  QCheck.Test.make ~name:"gw arboricity = brute force" ~count:60
    (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 4 + Random.State.int st 8 in
      let g = Gen.erdos_renyi st n 0.5 in
      G.m g = 0 || fst (GW.arboricity g) = Arb.brute_force g)

let test_gw_witness () =
  (* K5 cannot be covered by 2 forests; the witness must certify it *)
  let g = Gen.complete 5 in
  match GW.forest_partition g 2 with
  | Ok _ -> Alcotest.fail "K5 into 2 forests is impossible"
  | Error witness ->
      Alcotest.(check bool) "witness certifies density > 2" true
        (GW.check_witness g 2 witness)

let prop_gw_witness_on_stall =
  QCheck.Test.make ~name:"every stall yields a valid density witness"
    ~count:60 (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 4 + Random.State.int st 7 in
      let g = Gen.erdos_renyi st n 0.6 in
      if G.m g = 0 then true
      else begin
        let alpha = Arb.brute_force g in
        if alpha < 2 then true
        else
          match GW.forest_partition g (alpha - 1) with
          | Ok _ -> false (* below arboricity must fail *)
          | Error witness -> GW.check_witness g (alpha - 1) witness
      end)

let test_gw_list_seymour () =
  (* Seymour: alpha-sized palettes always admit a list decomposition *)
  let st = rng 2 in
  for seed = 0 to 14 do
    let g = Gen.erdos_renyi (rng (10 + seed)) 10 0.55 in
    if G.m g > 0 then begin
      let alpha = Arb.brute_force g in
      let colors = (2 * alpha) + 3 in
      let lists = Gen.list_palettes st g ~colors ~size:alpha in
      let palette = Palette.of_lists ~colors lists in
      match GW.list_forest_partition g palette with
      | Ok coloring ->
          Verify.exn (Verify.forest_decomposition coloring);
          Verify.exn (Verify.respects_palette coloring palette)
      | Error _ -> Alcotest.fail "Seymour-sized palettes must succeed"
    end
  done

(* ------------------------------------------------------------------ *)
(* AMR star split                                                      *)
(* ------------------------------------------------------------------ *)

let test_amr_star () =
  let cases =
    [ Gen.complete 7; Gen.grid 6 6; Gen.forest_union (rng 3) 40 3 ]
  in
  List.iter
    (fun g ->
      let sfd, alpha = Amr.decompose g in
      Verify.exn (Verify.star_forest_decomposition sfd);
      Alcotest.(check bool) "2 alpha colors" true
        (Verify.colors_used sfd <= 2 * alpha))
    cases


let test_star_arboricity_brute () =
  let module A = Nw_baseline.Amr_star in
  (* stars need 1 class; any path of >= 3 edges needs 2; a triangle splits
     as {ab, ac} + {bc} so 2; parallel edges must separate *)
  Alcotest.(check int) "star" 1 (A.star_arboricity_brute (Gen.star 4));
  Alcotest.(check int) "P5" 2 (A.star_arboricity_brute (Gen.path 5));
  Alcotest.(check int) "triangle" 2 (A.star_arboricity_brute (Gen.cycle 3));
  Alcotest.(check int) "C6" 2 (A.star_arboricity_brute (Gen.cycle 6));
  Alcotest.(check int) "parallel pair" 2
    (A.star_arboricity_brute (G.of_edges 2 [ (0, 1); (0, 1) ]))

let prop_star_arboricity_bounds =
  QCheck.Test.make ~name:"alpha <= alpha_star <= 2 alpha (Cor 1.2), exactly"
    ~count:40 (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 4 + Random.State.int st 4 in
      let g = Gen.erdos_renyi st n 0.4 in
      if G.m g = 0 || G.m g > 14 then true
      else begin
        let alpha = Arb.brute_force g in
        let astar = Nw_baseline.Amr_star.star_arboricity_brute g in
        alpha <= astar && astar <= 2 * alpha
      end)

let prop_amr_upper_bounds_brute =
  QCheck.Test.make ~name:"parity split never beats the exact star arboricity"
    ~count:30 (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 4 + Random.State.int st 4 in
      let g = Gen.erdos_renyi st n 0.35 in
      if G.m g = 0 || G.m g > 14 then true
      else begin
        let sfd, _ = Nw_baseline.Amr_star.decompose g in
        let used = Verify.colors_used sfd in
        used >= Nw_baseline.Amr_star.star_arboricity_brute g
      end)

(* ------------------------------------------------------------------ *)
(* Greedy                                                              *)
(* ------------------------------------------------------------------ *)

let test_greedy_valid () =
  let g = Gen.complete 8 in
  let coloring = Greedy.greedy g in
  Verify.exn (Verify.forest_decomposition coloring)

let test_greedy_eager_budget () =
  let g = Gen.complete 6 in
  (* alpha = 3; with only 2 colors some edges stay uncolored *)
  let coloring, uncolored = Greedy.eager g 2 in
  Alcotest.(check bool) "some uncolored" true (uncolored > 0);
  Verify.exn (Verify.partial_forest_decomposition coloring);
  Verify.exn (Verify.uses_at_most coloring 2)

let prop_greedy_never_beats_exact =
  QCheck.Test.make ~name:"greedy uses at least alpha colors" ~count:60
    (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let g = Gen.erdos_renyi st 10 0.5 in
      if G.m g = 0 then true
      else begin
        let alpha = Arb.brute_force g in
        Verify.colors_used (Greedy.greedy g) >= alpha
      end)

(* ------------------------------------------------------------------ *)
(* Barenboim-Elkin                                                     *)
(* ------------------------------------------------------------------ *)

let test_be_bound () =
  let st = rng 4 in
  let g = Gen.forest_union st 80 4 in
  let alpha_star, _ = Arb.pseudo_arboricity g in
  let rounds = Rounds.create () in
  let coloring = BE.decompose g ~epsilon:0.5 ~alpha_star ~rng:st ~rounds in
  Verify.exn (Verify.forest_decomposition coloring);
  let bound = int_of_float (floor (2.5 *. float_of_int alpha_star)) in
  Alcotest.(check bool) "within (2+eps) alpha*" true
    (Verify.colors_used coloring <= bound);
  Alcotest.(check bool) "rounds logarithmic" true (Rounds.total rounds <= 60)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "nw_baseline"
    [
      ( "gabow_westermann",
        [
          Alcotest.test_case "known" `Quick test_gw_known_arboricities;
          Alcotest.test_case "witness" `Quick test_gw_witness;
          Alcotest.test_case "seymour lists" `Quick test_gw_list_seymour;
        ] );
      qsuite "gw_props" [ prop_gw_matches_brute_force; prop_gw_witness_on_stall ];
      ( "amr_star",
        [
          Alcotest.test_case "2 alpha stars" `Quick test_amr_star;
          Alcotest.test_case "brute star arboricity" `Quick
            test_star_arboricity_brute;
        ] );
      qsuite "star_arboricity_props"
        [ prop_star_arboricity_bounds; prop_amr_upper_bounds_brute ];
      ( "greedy",
        [
          Alcotest.test_case "valid" `Quick test_greedy_valid;
          Alcotest.test_case "eager budget" `Quick test_greedy_eager_budget;
        ] );
      qsuite "greedy_props" [ prop_greedy_never_beats_exact ];
      ( "barenboim_elkin",
        [ Alcotest.test_case "bound" `Quick test_be_bound ] );
    ]
