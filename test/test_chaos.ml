(* Tests for the fault-injection subsystem (lib/chaos + the Msg_net hook
   surface): the stateless splittable Rng, the plan DSL, compilation to
   fault callbacks, the exact kernel semantics of each fault kind, the
   golden differential, outcome classification, recovery, deterministic
   replay, and the reorder-obliviousness property of H-partition. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module H = Nw_core.H_partition
module Rounds = Nw_localsim.Rounds
module Net = Nw_localsim.Msg_net
module Rng = Nw_chaos.Rng
module Plan = Nw_chaos.Plan
module Inject = Nw_chaos.Inject
module Harness = Nw_chaos.Harness

(* --- Rng ----------------------------------------------------------- *)

let test_rng_pure () =
  let t = Rng.create ~seed:42 in
  Alcotest.(check (float 0.0))
    "same (stream, coords) -> same draw"
    (Rng.float t [ 3; 7; 9 ])
    (Rng.float t [ 3; 7; 9 ]);
  Alcotest.(check bool)
    "different coords -> different draw" true
    (Rng.float t [ 3; 7; 9 ] <> Rng.float t [ 3; 7; 10 ]);
  Alcotest.(check bool)
    "split children diverge" true
    (Rng.float (Rng.split t 0) [ 1 ] <> Rng.float (Rng.split t 1) [ 1 ]);
  Alcotest.(check bool)
    "string-keyed children diverge" true
    (Rng.float (Rng.split_key t "a") [ 1 ]
    <> Rng.float (Rng.split_key t "b") [ 1 ])

let test_rng_ranges () =
  let t = Rng.create ~seed:7 in
  for i = 0 to 999 do
    let f = Rng.float t [ i ] in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of [0,1): %f" f;
    let k = Rng.int t [ i ] ~bound:13 in
    if k < 0 || k >= 13 then Alcotest.failf "int out of [0,13): %d" k;
    if Rng.bool t [ i ] ~p:0.0 then Alcotest.fail "p=0 drew true";
    if not (Rng.bool t [ i ] ~p:1.0) then Alcotest.fail "p=1 drew false"
  done;
  Alcotest.check_raises "bound <= 0 rejected"
    (Invalid_argument "Chaos.Rng.int: bound <= 0") (fun () ->
      ignore (Rng.int t [ 0 ] ~bound:0))

let test_rng_perm () =
  let t = Rng.create ~seed:11 in
  let p = Rng.perm t [ 4 ] 10 in
  Alcotest.(check (list int))
    "perm is a permutation of 0..9"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.sort compare (Array.to_list p));
  Alcotest.(check (array int))
    "perm replays" p (Rng.perm t [ 4 ] 10)

(* --- Plan DSL ------------------------------------------------------ *)

let all_clauses = "drop=0.1@2-9,dup=0.05x2,delay=0.1:3,crash=4@6,restart=4@6+2,flap=2:3/2,reorder"

let test_plan_roundtrip () =
  match Plan.of_string all_clauses with
  | Error msg -> Alcotest.failf "did not parse: %s" msg
  | Ok p -> (
      Alcotest.(check int) "7 clauses" 7 (List.length (Plan.clauses p));
      match Plan.of_string (Plan.to_string p) with
      | Error msg -> Alcotest.failf "canonical form did not re-parse: %s" msg
      | Ok p' ->
          Alcotest.(check bool) "round-trip equal" true (Plan.equal p p'))

let test_plan_digest () =
  let p = Result.get_ok (Plan.of_string all_clauses) in
  let q = Result.get_ok (Plan.of_string "drop=0.2") in
  Alcotest.(check int) "digest is 16 hex chars" 16 (String.length (Plan.digest p));
  Alcotest.(check string) "digest stable" (Plan.digest p) (Plan.digest p);
  Alcotest.(check bool)
    "digests separate distinct plans" true
    (Plan.digest p <> Plan.digest q);
  Alcotest.(check string)
    "summary is the canonical form" (Plan.to_string p) (Plan.summary p)

let test_plan_errors () =
  List.iter
    (fun s ->
      match Plan.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed plan %S" s
      | Error _ -> ())
    [
      "drop=1.5";
      "drop=-0.1";
      "bogus=1";
      "crash=x@2";
      "dup=0.1x0";
      "delay=0.1:0";
      "reorder=1";
      "drop=0.1@9-2";
      "flap=1:0/2";
      "drop";
    ]

let test_plan_empty () =
  let p = Result.get_ok (Plan.of_string "") in
  Alcotest.(check bool) "empty string is the empty plan" true (Plan.is_empty p);
  Alcotest.(check bool)
    "empty plan compiles to no hooks" true
    (Inject.compile p ~seed:1 () = None);
  Alcotest.(check bool)
    "non-empty plan compiles to hooks" true
    (Inject.compile (Result.get_ok (Plan.of_string "drop=0.5")) ~seed:1 ()
    <> None)

let test_plan_window () =
  Alcotest.(check bool) "forever contains 0" true (Plan.in_window 0 Plan.forever);
  let w = { Plan.from_ = 2; upto = Some 4 } in
  List.iter
    (fun (r, expect) ->
      Alcotest.(check bool) (Printf.sprintf "round %d" r) expect
        (Plan.in_window r w))
    [ (1, false); (2, true); (4, true); (5, false) ]

(* --- kernel fault semantics (hand-built fault records) ------------- *)

(* gossip round on a path 0-1-2: every vertex sends its id over each
   incident edge; receivers append heard ids *)
let gossip_send g v _ =
  Array.to_list (Array.map (fun (_, e) -> (e, v)) (G.incident g v))

let gossip_recv _ heard msgs = heard @ List.map snd msgs

let run_gossip ~faults ~rounds_to_run =
  Net.with_faults faults (fun () ->
      let g = Gen.path 3 in
      let rounds = Rounds.create () in
      let net = Net.create g ~rounds ~init:(fun _ -> []) in
      for _ = 1 to rounds_to_run do
        Net.round net ~label:"gossip" ~send:(gossip_send g) ~recv:gossip_recv
      done;
      (Net.states net, Net.messages_delivered net))

let test_fault_drop_all () =
  let faults =
    { Net.no_faults with deliver = (fun ~round:_ ~edge:_ ~src:_ ~dst:_ -> Net.Drop) }
  in
  let (states, delivered), stats = run_gossip ~faults ~rounds_to_run:1 in
  Array.iter
    (fun heard -> Alcotest.(check (list int)) "nobody hears" [] heard)
    states;
  Alcotest.(check int) "nothing delivered" 0 delivered;
  Alcotest.(check int) "4 drops (2 per edge)" 4 stats.Net.drops

let test_fault_duplicate () =
  let faults =
    { Net.no_faults with
      deliver = (fun ~round:_ ~edge:_ ~src:_ ~dst:_ -> Net.Duplicate 1) }
  in
  let (states, delivered), stats = run_gossip ~faults ~rounds_to_run:1 in
  Alcotest.(check (list int))
    "middle vertex hears both neighbors twice" [ 0; 0; 2; 2 ]
    (List.sort compare states.(1));
  Alcotest.(check int) "8 delivered (4 messages x 2)" 8 delivered;
  Alcotest.(check int) "4 extra copies" 4 stats.Net.dups

let test_fault_delay () =
  (* everything sent in round 0 is postponed to round 1; nothing is sent
     afterwards, so whatever arrives in round 1 is the delayed batch *)
  let faults =
    { Net.no_faults with
      deliver =
        (fun ~round ~edge:_ ~src:_ ~dst:_ ->
          if round = 0 then Net.Delay 1 else Net.Deliver) }
  in
  let ((), stats) =
    Net.with_faults faults (fun () ->
        let g = Gen.path 3 in
        let rounds = Rounds.create () in
        (* state: (clock, heard) — only clock 0 sends *)
        let net = Net.create g ~rounds ~init:(fun _ -> (0, [])) in
        let send v (clock, _) = if clock = 0 then gossip_send g v () else [] in
        let recv _ (clock, heard) msgs =
          (clock + 1, heard @ List.map snd msgs)
        in
        Net.round net ~label:"delay" ~send ~recv;
        Alcotest.(check (list int))
          "round 0: middle vertex hears nothing yet" []
          (snd (Net.state net 1));
        Net.round net ~label:"delay" ~send ~recv;
        Alcotest.(check (list int))
          "round 1: delayed batch arrives" [ 0; 2 ]
          (List.sort compare (snd (Net.state net 1)));
        Alcotest.(check int) "4 delivered in the end" 4
          (Net.messages_delivered net))
  in
  Alcotest.(check int) "4 postponements" 4 stats.Net.delays

let test_fault_crash () =
  let faults =
    { Net.no_faults with node_up = (fun ~round:_ v -> v <> 0) }
  in
  let (states, _), stats = run_gossip ~faults ~rounds_to_run:1 in
  Alcotest.(check (list int)) "down node receives nothing" [] states.(0);
  Alcotest.(check (list int))
    "middle vertex hears only the live neighbor" [ 2 ]
    states.(1);
  Alcotest.(check int) "one up->down transition" 1 stats.Net.crashes;
  Alcotest.(check int)
    "message to the down node is lost" 1 stats.Net.drops

let test_fault_restart () =
  (* node 1 loses its state at the start of round 1: round 0's gossip is
     forgotten, round 1's is heard again — no accumulation *)
  let faults =
    { Net.no_faults with
      state_reset = (fun ~round v -> round = 1 && v = 1) }
  in
  let (states, _), stats = run_gossip ~faults ~rounds_to_run:2 in
  Alcotest.(check (list int))
    "restarted node kept only round 1 gossip" [ 0; 2 ]
    (List.sort compare states.(1));
  Alcotest.(check (list int))
    "unaffected node accumulated both rounds" [ 1; 1 ]
    (List.sort compare states.(0));
  Alcotest.(check int) "one restart" 1 stats.Net.restarts

let test_fault_reorder () =
  let plain_order =
    let (states, _), _ = run_gossip ~faults:Net.no_faults ~rounds_to_run:1 in
    states.(1)
  in
  let reverse =
    { Net.no_faults with
      reorder =
        (fun ~round:_ ~dst:_ k ->
          if k <= 1 then None
          else Some (Array.init k (fun i -> k - 1 - i))) }
  in
  let (states, _), stats = run_gossip ~faults:reverse ~rounds_to_run:1 in
  Alcotest.(check (list int))
    "inbox presented in reversed order" (List.rev plain_order)
    states.(1);
  Alcotest.(check bool) "reorders counted" true (stats.Net.reorders >= 1)

(* --- golden differential ------------------------------------------- *)

let h_graph = Gen.forest_union (Random.State.make [| 0xd1ff |]) 40 3

let run_h () =
  let rounds = Rounds.create () in
  let hp = H.compute h_graph ~epsilon:0.5 ~alpha_star:3 ~rounds in
  (Array.to_list hp.H.layer, Rounds.total rounds)

let test_golden_differential () =
  let (l1, r1), (l2, r2) = Harness.differential ~seed:3 ~run:run_h in
  Alcotest.(check (list int)) "layers identical under empty plan" l1 l2;
  Alcotest.(check int) "rounds identical under empty plan" r1 r2

(* stronger: a *non-empty* plan whose clauses can never fire installs the
   hooks yet still reproduces the plain run byte for byte *)
let test_inert_plan_identical () =
  let plain = run_h () in
  let plan = Result.get_ok (Plan.of_string "drop=0.0") in
  let faults = Option.get (Inject.compile plan ~seed:5 ()) in
  let under, stats = Net.with_faults faults run_h in
  Alcotest.(check (list int)) "layers" (fst plain) (fst under);
  Alcotest.(check int) "rounds" (snd plain) (snd under);
  Alcotest.(check int) "no drops" 0 stats.Net.drops;
  Alcotest.(check int64) "empty timeline digest" 0L stats.Net.digest

(* --- classification and recovery ----------------------------------- *)

let verify_h (layers, _) =
  if List.exists (fun l -> l < 0) layers then Error "unassigned vertex"
  else Ok ()

let test_detectably_invalid () =
  let plan = Result.get_ok (Plan.of_string "drop=1.0") in
  let r =
    Harness.run_epochs ~plan ~seed:1 ~epochs:1 ~policy:Harness.no_retry
      ~verify:verify_h ~run:run_h ()
  in
  Alcotest.(check int) "total drop stalls the peeling" 1 r.Harness.detected;
  Alcotest.(check int) "no valid epochs" 0 r.Harness.valid

let test_silently_corrupt () =
  match Harness.classify ~verify:(fun _ -> Error "bad") ~run:(fun () -> 42) with
  | Harness.Silently_corrupt "bad", Some 42 -> ()
  | outcome, _ ->
      Alcotest.failf "expected Silently_corrupt, got %s"
        (Harness.outcome_to_string outcome)

let test_recovery () =
  (* attempt 0 runs under total message loss and fails; with decay 0 the
     retry runs fault-free, so every epoch recovers on attempt 1 *)
  let plan = Result.get_ok (Plan.of_string "drop=1.0") in
  let r =
    Harness.run_epochs ~plan ~seed:2 ~epochs:2
      ~policy:{ Harness.max_retries = 1; decay = 0.0 } ~verify:verify_h
      ~run:run_h ()
  in
  Alcotest.(check int) "both epochs end valid" 2 r.Harness.valid;
  Alcotest.(check int) "both recoveries counted" 2 r.Harness.recoveries;
  List.iter
    (fun (ep : Harness.epoch) ->
      Alcotest.(check int) "two attempts" 2 (List.length ep.Harness.attempts);
      Alcotest.(check bool) "recovered" true ep.Harness.recovered)
    r.Harness.epochs

let test_replay () =
  let plan = Result.get_ok (Plan.of_string "drop=0.3,delay=0.2:2,reorder") in
  let fingerprint () =
    let r =
      Harness.run_epochs ~plan ~seed:5 ~epochs:2
        ~policy:Harness.default_policy ~verify:verify_h ~run:run_h ()
    in
    List.concat_map
      (fun (ep : Harness.epoch) ->
        List.map
          (fun (a : Harness.attempt) ->
            ( Harness.outcome_label a.Harness.outcome,
              Int64.to_string a.Harness.counts.Harness.digest ))
          ep.Harness.attempts)
      r.Harness.epochs
  in
  Alcotest.(check (list (pair string string)))
    "identical outcomes and fault timelines on replay" (fingerprint ())
    (fingerprint ())

(* --- property: reorder-obliviousness ------------------------------- *)

(* any adversarial permutation of intra-round delivery order leaves the
   H-partition output and the charged rounds unchanged: the peeling
   decision at each vertex depends only on the multiset of messages *)
let prop_reorder_oblivious =
  QCheck.Test.make ~count:30 ~name:"H-partition is reorder-oblivious"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let plan = Plan.of_clauses [ Plan.Reorder { w = Plan.forever } ] in
      let faults = Option.get (Inject.compile plan ~seed ()) in
      let baseline = run_h () in
      let under, _ = Net.with_faults faults run_h in
      baseline = under)

let () =
  Alcotest.run "chaos"
    [
      ( "rng",
        [
          Alcotest.test_case "pure draws" `Quick test_rng_pure;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "perm" `Quick test_rng_perm;
        ] );
      ( "plan",
        [
          Alcotest.test_case "round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "digest" `Quick test_plan_digest;
          Alcotest.test_case "parse errors" `Quick test_plan_errors;
          Alcotest.test_case "empty plan" `Quick test_plan_empty;
          Alcotest.test_case "windows" `Quick test_plan_window;
        ] );
      ( "kernel-faults",
        [
          Alcotest.test_case "drop" `Quick test_fault_drop_all;
          Alcotest.test_case "duplicate" `Quick test_fault_duplicate;
          Alcotest.test_case "delay" `Quick test_fault_delay;
          Alcotest.test_case "crash" `Quick test_fault_crash;
          Alcotest.test_case "restart" `Quick test_fault_restart;
          Alcotest.test_case "reorder" `Quick test_fault_reorder;
        ] );
      ( "differential",
        [
          Alcotest.test_case "golden (empty plan)" `Quick
            test_golden_differential;
          Alcotest.test_case "inert plan byte-identical" `Quick
            test_inert_plan_identical;
        ] );
      ( "harness",
        [
          Alcotest.test_case "detectably invalid" `Quick
            test_detectably_invalid;
          Alcotest.test_case "silently corrupt" `Quick test_silently_corrupt;
          Alcotest.test_case "recovery" `Quick test_recovery;
          Alcotest.test_case "deterministic replay" `Quick test_replay;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_reorder_oblivious ] );
    ]
