(* Differential tests of the incremental per-color connectivity cache
   against the BFS oracle it replaced: random interleavings of
   set / unset / recolor must leave the cached [would_close_cycle] (and
   [path]'s disconnection short-cut) agreeing with
   [oracle_would_close_cycle] on every query, plus units for the lazy
   rebuild after [unset] and for [copy] preserving cache coherence. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Coloring = Nw_decomp.Coloring
module Verify = Nw_decomp.Verify

let rng seed = Random.State.make [| seed; 0xcafe |]

(* compare cached vs oracle on every (edge, color) pair of [c] *)
let check_all_queries ctx c =
  let g = Coloring.graph c in
  for e = 0 to G.m g - 1 do
    for col = 0 to Coloring.colors c - 1 do
      let cached = Coloring.would_close_cycle c e col in
      let oracle = Coloring.oracle_would_close_cycle c e col in
      if cached <> oracle then
        Alcotest.failf "%s: e=%d c=%d cached=%b oracle=%b" ctx e col cached
          oracle;
      (* path must be consistent with connectivity: None iff disconnected
         (when e is not itself colored col, where path is [Some [e]]) *)
      let p = Coloring.path c e col in
      let expect_some = oracle || Coloring.color c e = Some col in
      if (p <> None) <> expect_some then
        Alcotest.failf "%s: e=%d c=%d path=%s oracle=%b" ctx e col
          (match p with None -> "None" | Some _ -> "Some _")
          expect_some;
      (* when a path is extracted (and e is not its own singleton), it
         must be exactly the tree path: distinct edges of color [col]
         whose incidence degrees are 1 at the endpoints of e and 2 at
         interior vertices — in a forest that pins down the unique path *)
      match p with
      | Some edges when Coloring.color c e <> Some col ->
          let u, v = G.endpoints g e in
          let deg = Hashtbl.create 16 in
          let bump x =
            Hashtbl.replace deg x (1 + Option.value ~default:0 (Hashtbl.find_opt deg x))
          in
          let seen = Hashtbl.create 16 in
          List.iter
            (fun pe ->
              if Hashtbl.mem seen pe then
                Alcotest.failf "%s: e=%d c=%d duplicate path edge %d" ctx e
                  col pe;
              Hashtbl.replace seen pe ();
              if Coloring.color c pe <> Some col then
                Alcotest.failf "%s: e=%d c=%d path edge %d not color %d" ctx
                  e col pe col;
              let x, y = G.endpoints g pe in
              bump x;
              bump y)
            edges;
          Hashtbl.iter
            (fun x d ->
              let want = if x = u || x = v then 1 else 2 in
              if d <> want then
                Alcotest.failf
                  "%s: e=%d c=%d path vertex %d has degree %d, want %d" ctx
                  e col x d want)
            deg
      | _ -> ()
    done
  done

(* random mutation: set to a random legal color, unset, or recolor *)
let random_op st c =
  let g = Coloring.graph c in
  let e = Random.State.int st (G.m g) in
  let k = Coloring.colors c in
  match Random.State.int st 3 with
  | 0 -> Coloring.unset c e
  | _ ->
      let col = Random.State.int st k in
      if not (Coloring.would_close_cycle c e col) then Coloring.set c e col

let prop_differential =
  QCheck.Test.make ~name:"cached connectivity == BFS oracle under churn"
    ~count:40 (QCheck.int_bound 1_000_000)
    (fun seed ->
      let st = rng seed in
      let n = 5 + Random.State.int st 10 in
      let g = Gen.erdos_renyi st n 0.45 in
      QCheck.assume (G.m g > 0);
      let colors = 1 + Random.State.int st 3 in
      let c = Coloring.create g ~colors in
      for step = 1 to 60 do
        random_op st c;
        (* query a random sample every step, everything every 20 steps *)
        if step mod 20 = 0 then check_all_queries "churn" c
        else begin
          let e = Random.State.int st (G.m g) in
          let col = Random.State.int st colors in
          let cached = Coloring.would_close_cycle c e col in
          let oracle = Coloring.oracle_would_close_cycle c e col in
          if cached <> oracle then
            Alcotest.failf "sample: e=%d c=%d cached=%b oracle=%b" e col
              cached oracle
        end;
        if Verify.partial_forest_decomposition c <> Ok () then
          Alcotest.fail "forest invariant broken"
      done;
      true)

let prop_component_counts =
  QCheck.Test.make
    ~name:"component size/edge-count match component_edges under churn"
    ~count:25 (QCheck.int_bound 1_000_000)
    (fun seed ->
      let st = rng seed in
      let n = 5 + Random.State.int st 8 in
      let g = Gen.erdos_renyi st n 0.5 in
      QCheck.assume (G.m g > 0);
      let colors = 1 + Random.State.int st 2 in
      let c = Coloring.create g ~colors in
      for _ = 1 to 40 do
        random_op st c
      done;
      for v = 0 to G.n g - 1 do
        for col = 0 to colors - 1 do
          let edges = List.length (Coloring.component_edges c v col) in
          let size = Coloring.component_size c v col in
          let ecount = Coloring.component_edge_count c v col in
          if ecount <> edges then
            Alcotest.failf "v=%d c=%d edge count %d, BFS found %d" v col
              ecount edges;
          (* each color class is a forest: |V| = |E| + 1 per tree *)
          if size <> edges + 1 then
            Alcotest.failf "v=%d c=%d size %d vs edges %d" v col size edges
        done
      done;
      true)

(* unit: a disconnection created by unset is visible on the very next
   query — the generation counter must force the lazy rebuild *)
let test_lazy_rebuild_after_unset () =
  let g = Gen.path 4 in
  (* path edges 0-1-2; color them all 0 *)
  let c = Coloring.create g ~colors:2 in
  Coloring.set c 0 0;
  Coloring.set c 1 0;
  Coloring.set c 2 0;
  Alcotest.(check bool) "endpoints of 1 connected without it" true
    (Coloring.would_close_cycle c 1 1 = false);
  (* edge 1 already colored 0: recoloring it 0 is a no-op; recoloring a
     parallel query color... the interesting query: would re-adding edge 1
     to color 0 close a cycle after unsetting it? *)
  Coloring.unset c 1;
  Alcotest.(check bool) "after unset, no cycle" false
    (Coloring.would_close_cycle c 1 0);
  Alcotest.(check bool) "oracle agrees" false
    (Coloring.oracle_would_close_cycle c 1 0);
  Coloring.set c 1 0;
  (* now drop an endpoint edge and check the separation is observed *)
  Coloring.unset c 0;
  Alcotest.(check int) "component size shrank" 3
    (Coloring.component_size c 1 0);
  Alcotest.(check int) "edge count shrank" 2
    (Coloring.component_edge_count c 1 0);
  Alcotest.(check int) "detached vertex isolated" 1
    (Coloring.component_size c 0 0)

(* unit: a cycle-closing set must be rejected with a clean cache even
   right after deletions dirtied a *different* color *)
let test_rejects_cycle_after_cross_color_churn () =
  let g = Gen.cycle 4 in
  let c = Coloring.create g ~colors:2 in
  Coloring.set c 0 0;
  Coloring.set c 1 0;
  Coloring.set c 2 0;
  Coloring.set c 3 1;
  Coloring.unset c 3;
  (* color 1 is now dirty; color 0 must still reject the cycle *)
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Coloring.set: would close a cycle") (fun () ->
      Coloring.set c 3 0);
  Alcotest.(check bool) "color 1 rebuilt lazily" false
    (Coloring.would_close_cycle c 3 1)

(* unit: copy preserves cache coherence — the copy answers like its own
   oracle and is unaffected by later mutation of the original *)
let test_copy_preserves_cache_coherence () =
  let st = rng 42 in
  let g = Gen.forest_union st 30 3 in
  let c = Coloring.create g ~colors:4 in
  for _ = 1 to 120 do
    random_op st c
  done;
  let d = Coloring.copy c in
  check_all_queries "fresh copy" d;
  (* mutate the original; the copy must not notice *)
  let before = Coloring.to_array d in
  for _ = 1 to 60 do
    random_op st c
  done;
  Alcotest.(check bool) "copy unchanged" true (Coloring.to_array d = before);
  check_all_queries "copy after original churn" d;
  check_all_queries "churned original" c

(* -------------------------------------------------------------------- *)
(* dynamic-graph differential: extend/connected across planes            *)
(* -------------------------------------------------------------------- *)

(* The session layer's churn pattern (docs/service.md): an insertion
   extends the live coloring onto a supergraph and probes the palette
   with [connected]; a deletion tombstones a slot (unset — slot ids are
   never reused). Replay one op script on both planes of the functorized
   core and check every probe, every chosen insertion color, and the
   final snapshot against a from-scratch DFS oracle and against each
   other. *)

module Backend = Nw_graphs.Backend

type dyn_op =
  | Insert of int * int
  | Delete of int  (** tombstone slot [i] *)
  | Probe of int * int * int  (** color, u, v *)

let gen_script st n k steps =
  let slots = ref 0 in
  let ops = ref [] in
  for _ = 1 to steps do
    let r = Random.State.int st 10 in
    if r < 4 || !slots = 0 then begin
      let u = Random.State.int st n in
      let v = (u + 1 + Random.State.int st (n - 1)) mod n in
      ops := Insert (u, v) :: !ops;
      incr slots
    end
    else if r < 6 then ops := Delete (Random.State.int st !slots) :: !ops
    else
      ops :=
        Probe
          ( Random.State.int st k,
            Random.State.int st n,
            Random.State.int st n )
        :: !ops
  done;
  List.rev !ops

(* replay on one plane; every Insert rebuilds the supergraph and goes
   through [extend], mirroring Session.insert_edge *)
let replay kind n k script =
  Backend.with_kind kind @@ fun () ->
  let edges = ref [] (* reversed *) in
  let c = ref (Coloring.create (G.of_edges n []) ~colors:k) in
  let probes = ref [] and chosen = ref [] in
  List.iter
    (fun op ->
      match op with
      | Insert (u, v) ->
          edges := (u, v) :: !edges;
          let g' = G.of_edges n (List.rev !edges) in
          c := Coloring.extend !c g';
          let e = G.m g' - 1 in
          let col = ref (-1) in
          (try
             for cand = 0 to k - 1 do
               if not (Coloring.connected !c cand u v) then begin
                 col := cand;
                 raise Exit
               end
             done
           with Exit -> ());
          if !col >= 0 then Coloring.set !c e !col;
          chosen := !col :: !chosen
      | Delete i -> if Coloring.color !c i <> None then Coloring.unset !c i
      | Probe (col, u, v) ->
          probes := Coloring.connected !c col u v :: !probes)
    script;
  (List.rev !probes, List.rev !chosen, Coloring.to_array !c)

(* the DFS oracle replays the same script over a plain slot table *)
let replay_oracle n k script =
  let slots = ref [] (* (u, v, color option) reversed *) in
  let connected col u v =
    if u = v then true
    else begin
      let adj = Array.make n [] in
      List.iter
        (fun (x, y, c) ->
          if c = Some col then begin
            adj.(x) <- y :: adj.(x);
            adj.(y) <- x :: adj.(y)
          end)
        !slots;
      let seen = Array.make n false in
      let rec dfs x =
        if not seen.(x) then begin
          seen.(x) <- true;
          List.iter dfs adj.(x)
        end
      in
      dfs u;
      seen.(v)
    end
  in
  let probes = ref [] and chosen = ref [] in
  List.iter
    (fun op ->
      match op with
      | Insert (u, v) ->
          let col = ref (-1) in
          (try
             for cand = 0 to k - 1 do
               if !col < 0 && not (connected cand u v) then begin
                 col := cand;
                 raise Exit
               end
             done
           with Exit -> ());
          slots := (u, v, if !col >= 0 then Some !col else None) :: !slots;
          chosen := !col :: !chosen
      | Delete i ->
          slots :=
            List.mapi
              (fun j (u, v, c) ->
                if List.length !slots - 1 - j = i then (u, v, None)
                else (u, v, c))
              !slots
      | Probe (col, u, v) -> probes := connected col u v :: !probes)
    script;
  let snapshot =
    Array.of_list (List.rev_map (fun (_, _, c) -> c) !slots)
  in
  (List.rev !probes, List.rev !chosen, snapshot)

let prop_extend_connected_differential =
  QCheck.Test.make
    ~name:"extend/connected: boxed == csr == DFS oracle under tombstoned churn"
    ~count:30 (QCheck.int_bound 1_000_000)
    (fun seed ->
      let st = rng seed in
      let n = 5 + Random.State.int st 8 in
      let k = 1 + Random.State.int st 3 in
      let script = gen_script st n k 50 in
      let bp, bc, bs = replay Backend.Boxed n k script in
      let cp, cc, cs = replay Backend.Csr n k script in
      let op, oc, os = replay_oracle n k script in
      if bp <> cp then Alcotest.fail "probe answers differ boxed vs csr";
      if bp <> op then Alcotest.fail "probe answers differ boxed vs oracle";
      if bc <> cc then
        Alcotest.fail "insertion colors differ boxed vs csr";
      if bc <> oc then
        Alcotest.fail "insertion colors differ boxed vs oracle";
      if bs <> cs then Alcotest.fail "final snapshot differs boxed vs csr";
      if bs <> os then
        Alcotest.fail "final snapshot differs boxed vs oracle";
      true)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "nw_connectivity"
    [
      ( "units",
        [
          Alcotest.test_case "lazy rebuild after unset" `Quick
            test_lazy_rebuild_after_unset;
          Alcotest.test_case "cross-color churn" `Quick
            test_rejects_cycle_after_cross_color_churn;
          Alcotest.test_case "copy coherence" `Quick
            test_copy_preserves_cache_coherence;
        ] );
      qsuite "differential"
        [ prop_differential; prop_component_counts ];
      qsuite "dynamic"
        [ prop_extend_connected_differential ];
    ]
