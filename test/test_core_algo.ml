(* End-to-end tests for the paper's main machinery: augmenting sequences
   (Section 3), diameter reduction (Prop 2.4), CUT + Algorithm 2 (Section 4),
   vertex-color splitting (Thm 4.9), LFD (Thm 4.10), star forests
   (Section 5), LSFD (Thm 2.3), and orientations (Cor 1.1). *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module O = Nw_graphs.Orientation
module Arb = Nw_graphs.Arboricity
module Rounds = Nw_localsim.Rounds
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Verify = Nw_decomp.Verify
module Aug = Nw_core.Augmenting
module DR = Nw_core.Diameter_reduction
module Cut = Nw_core.Cut
module FA = Nw_core.Forest_algo
module CS = Nw_core.Color_split
module SF = Nw_core.Star_forest
module Lsfd = Nw_core.Lsfd
module Orient = Nw_core.Orient

let rng seed = Random.State.make [| seed; 99 |]
let ids n = Array.init n (fun v -> v)

(* ------------------------------------------------------------------ *)
(* Augmenting sequences (Section 3)                                    *)
(* ------------------------------------------------------------------ *)

(* random partial coloring: greedily color a random subset of edges *)
let random_partial st g colors =
  let c = Coloring.create g ~colors in
  G.fold_edges
    (fun e _ _ () ->
      if Random.State.float st 1.0 < 0.7 then begin
        let col = Random.State.int st colors in
        if not (Coloring.would_close_cycle c e col) then Coloring.set c e col
      end)
    g ();
  c

let test_augment_k5 () =
  (* K5 has arboricity 3: every uncolored edge must be augmentable with
     3 colors *)
  let g = Gen.complete 5 in
  let palette = Palette.full g 3 in
  let coloring = Coloring.create g ~colors:3 in
  Array.iter
    (fun e ->
      match Aug.augment_edge coloring palette ~edge:e () with
      | Some _ -> ()
      | None -> Alcotest.fail "augmentation stalled below arboricity")
    (Coloring.uncolored coloring);
  Verify.exn (Verify.forest_decomposition coloring)

let test_augment_respects_radius () =
  (* restrict the search to a region not containing the start edge: must be
     rejected *)
  let g = Gen.path 5 in
  let palette = Palette.full g 1 in
  let coloring = Coloring.create g ~colors:1 in
  let within = Array.make 5 false in
  within.(3) <- true;
  within.(4) <- true;
  Alcotest.check_raises "outside region"
    (Invalid_argument "Augmenting.search: start edge outside the search region")
    (fun () -> ignore (Aug.search coloring palette ~start:0 ~within ()))

let test_augment_stall_on_tight_palette () =
  (* two parallel edges with 1 color: the second cannot be colored *)
  let g = G.of_edges 2 [ (0, 1); (0, 1) ] in
  let palette = Palette.full g 1 in
  let coloring = Coloring.create g ~colors:1 in
  (match Aug.augment_edge coloring palette ~edge:0 () with
  | Some _ -> ()
  | None -> Alcotest.fail "first edge must color");
  match Aug.search coloring palette ~start:1 () with
  | Aug.Stalled _ -> ()
  | Aug.Found _ -> Alcotest.fail "must stall: alpha = 2 > palette size"

let test_growth_factor () =
  (* Proposition 3.3: with palettes of size (1+eps)*alpha the explored set
     grows geometrically; on K7 (alpha 4) with 5 colors every iteration
     must grow by at least (1+1/4) *)
  let g = Gen.complete 7 in
  let palette = Palette.full g 5 in
  let coloring = Coloring.create g ~colors:5 in
  let max_growth_violation = ref 0.0 in
  List.iter
    (fun e ->
      match Aug.search coloring palette ~start:e () with
      | Aug.Found (seq, stats) ->
          List.iteri
            (fun i (sz_i, sz) ->
              ignore sz_i;
              (* growth entries are (iteration, |E_i|) *)
              if i > 0 then begin
                let _, prev = List.nth stats.Aug.growth (i - 1) in
                let ratio = float_of_int sz /. float_of_int prev in
                if ratio < 1.25 then
                  max_growth_violation := max !max_growth_violation 1.0
              end)
            stats.Aug.growth;
          let seq = Aug.short_circuit coloring seq in
          Aug.apply coloring seq
      | Aug.Stalled _ -> Alcotest.fail "stall with (1+eps) palettes")
    (Array.to_list (Coloring.uncolored coloring));
  Verify.exn (Verify.forest_decomposition coloring);
  Alcotest.(check (float 0.0)) "no growth violations" 0.0
    !max_growth_violation

let prop_augmentation_preserves_invariant =
  QCheck.Test.make ~name:"lemma 3.1: augmentation keeps classes forests"
    ~count:80 (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 6 + Random.State.int st 10 in
      let g = Gen.erdos_renyi st n 0.4 in
      if G.m g = 0 then true
      else begin
        let alpha = Arb.brute_force g in
        let colors = alpha + 1 in
        let coloring = random_partial st g colors in
        let palette = Palette.full g colors in
        let ok = ref true in
        List.iter
          (fun e ->
            if !ok then
              match Aug.augment_edge coloring palette ~edge:e () with
              | Some _ ->
                  if Verify.partial_forest_decomposition coloring <> Ok ()
                  then ok := false
              | None -> ())
          (Array.to_list (Coloring.uncolored coloring));
        !ok
      end)

let prop_sequences_satisfy_conditions =
  QCheck.Test.make ~name:"short-circuited sequences satisfy (A1)-(A5)"
    ~count:60 (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 6 + Random.State.int st 8 in
      let g = Gen.erdos_renyi st n 0.5 in
      if G.m g = 0 then true
      else begin
        let alpha = Arb.brute_force g in
        let colors = alpha + 1 in
        let coloring = random_partial st g colors in
        let palette = Palette.full g colors in
        match Array.to_list (Coloring.uncolored coloring) with
        | [] -> true
        | e :: _ -> (
            match Aug.search coloring palette ~start:e () with
            | Aug.Stalled _ -> true
            | Aug.Found (seq, _) ->
                let seq = Aug.short_circuit coloring seq in
                let arr = Array.of_list seq in
                let l = Array.length arr in
                let ok = ref true in
                (* (A1) *)
                if Coloring.color coloring (fst arr.(0)) <> None then
                  ok := false;
                (* (A5) *)
                Array.iter
                  (fun (e, c) ->
                    if not (Palette.mem palette e c) then ok := false)
                  arr;
                (* (A2) *)
                for i = 1 to l - 1 do
                  let ei_prev, ci_prev = arr.(i - 1) in
                  match Coloring.path coloring ei_prev ci_prev with
                  | None -> ok := false
                  | Some p -> if not (List.mem (fst arr.(i)) p) then ok := false
                done;
                (* (A3) *)
                for i = 0 to l - 1 do
                  for j = 0 to i - 2 do
                    let ej, cj = arr.(j) in
                    match Coloring.path coloring ej cj with
                    | None -> ()
                    | Some p -> if List.mem (fst arr.(i)) p then ok := false
                  done
                done;
                (* (A4) *)
                let el, cl = arr.(l - 1) in
                if Coloring.path coloring el cl <> None then ok := false;
                !ok)
      end)

(* ------------------------------------------------------------------ *)
(* Diameter reduction (Prop 2.4 / Cor 2.5)                             *)
(* ------------------------------------------------------------------ *)

let exact_decomposition g k =
  match Nw_baseline.Gabow_westermann.forest_partition g k with
  | Ok c -> c
  | Error _ -> Alcotest.fail "exact decomposition failed"

let test_diameter_reduction_log () =
  let st = rng 42 in
  let g = Gen.forest_union st 120 4 in
  let coloring = exact_decomposition g 4 in
  let rounds = Rounds.create () in
  let epsilon = 0.5 in
  let reduced, extra =
    DR.reduce coloring ~target:`Log_over_eps ~epsilon ~alpha:4
      ~ids:(ids (G.n g)) ~rng:st ~rounds
  in
  Verify.exn (Verify.forest_decomposition reduced);
  let logn = log (float_of_int (G.n g)) in
  let bound = 2 + (2 * int_of_float (ceil (20.0 *. (logn +. 1.0) /. epsilon))) in
  Alcotest.(check bool) "diameter bounded" true
    (Verify.max_forest_diameter reduced <= bound);
  Alcotest.(check bool) "few extra colors" true (extra <= 12)

let test_diameter_reduction_inv_eps () =
  let st = rng 43 in
  let g = Gen.forest_union st 150 5 in
  let coloring = exact_decomposition g 5 in
  let rounds = Rounds.create () in
  let epsilon = 0.5 in
  let reduced, _extra =
    DR.reduce coloring ~target:`Inv_eps ~epsilon ~alpha:5 ~ids:(ids (G.n g))
      ~rng:st ~rounds
  in
  Verify.exn (Verify.forest_decomposition reduced);
  let z = int_of_float (ceil (40.0 /. epsilon)) in
  Alcotest.(check bool) "diameter O(1/eps)" true
    (Verify.max_forest_diameter reduced <= 2 * z)

let test_chop_depths_bound () =
  let st = rng 44 in
  let g = Gen.path 300 in
  let coloring = exact_decomposition g 1 in
  let rounds = Rounds.create () in
  let deleted = DR.chop_depths coloring ~epsilon:1.0 ~rng:st ~rounds in
  Alcotest.(check bool) "some deletions" true (deleted <> []);
  Verify.exn (Verify.partial_forest_decomposition coloring);
  (* remaining color-0 components have diameter < 2z = 80 *)
  let sub, _ = Coloring.subgraph coloring 0 in
  Alcotest.(check bool) "chopped" true
    (Nw_graphs.Traversal.tree_diameter sub <= 80)

(* ------------------------------------------------------------------ *)
(* CUT (Theorem 4.2)                                                   *)
(* ------------------------------------------------------------------ *)

let test_cut_depth_mod_good () =
  (* a long path, colored one color; core = middle vertex; the cut must
     disconnect the core from the far ends *)
  let st = rng 45 in
  let n = 200 in
  let g = Gen.path n in
  let coloring = exact_decomposition g 1 in
  let rounds = Rounds.create () in
  let radius = 20 in
  let cut =
    Cut.create g Cut.Depth_mod ~epsilon:0.5 ~alpha:1 ~radius ~num_classes:8
      ~rng:st ~rounds
  in
  let mid = n / 2 in
  let core = G.ball_of_set g [ mid ] 3 in
  let region = G.ball_of_set g [ mid ] (3 + radius) in
  let removed = Array.make (G.m g) false in
  Cut.execute cut coloring ~core ~region ~removed;
  Alcotest.(check bool) "good" true (Cut.is_good coloring ~core ~region);
  (* eligible edges only: nothing inside the core was removed *)
  G.fold_edges
    (fun e u v () ->
      if core.(u) && core.(v) then
        Alcotest.(check bool) "core edge kept" false removed.(e))
    g ()

let test_cut_sampled_leftover_bounded () =
  let st = rng 46 in
  let g = Gen.forest_union st 150 3 in
  let coloring = exact_decomposition g 3 in
  let rounds = Rounds.create () in
  let epsilon = 1.0 in
  let cut =
    Cut.create g (Cut.Sampled 0.5) ~epsilon ~alpha:3 ~radius:30
      ~num_classes:8 ~rng:st ~rounds
  in
  let removed = Array.make (G.m g) false in
  let core = G.ball_of_set g [ 0 ] 2 in
  let region = G.ball_of_set g [ 0 ] 32 in
  for _ = 1 to 8 do
    Cut.execute cut coloring ~core ~region ~removed
  done;
  (* the counters cap each vertex at ceil(eps*alpha) deletions of its own
     out-edges: leftover pseudo-arboricity <= 3 + cap *)
  let sub, _ = G.subgraph_of_edges g removed in
  let pa, _ = Arb.pseudo_arboricity sub in
  Alcotest.(check bool) "leftover sparse" true (pa <= 3)

(* ------------------------------------------------------------------ *)
(* Algorithm 2 end-to-end (Theorems 4.5 / 4.6)                         *)
(* ------------------------------------------------------------------ *)

let check_fd_complete name coloring bound =
  Verify.exn (Verify.forest_decomposition coloring);
  let used = Verify.colors_used coloring in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %d colors <= %d" name used bound)
    true (used <= bound)

let test_forest_decomposition_families () =
  let cases =
    [
      ("forest_union", Gen.forest_union (rng 50) 80 4, 4);
      ("grid", Gen.grid 10 10, 2);
      ("K8", Gen.complete 8, 4);
      ("line multigraph", Gen.line_multigraph 40 3, 3);
    ]
  in
  List.iter
    (fun (name, g, alpha) ->
      let st = rng (Hashtbl.hash name) in
      let rounds = Rounds.create () in
      let coloring, stats =
        FA.forest_decomposition g ~epsilon:1.0 ~alpha ~rng:st ~rounds ()
      in
      ignore stats;
      (* (1+eps)*alpha with eps=1: at most 2*alpha colors *)
      check_fd_complete name coloring (2 * alpha))
    cases

let test_forest_decomposition_diameter () =
  let st = rng 51 in
  let g = Gen.forest_union st 100 4 in
  let rounds = Rounds.create () in
  let coloring, _ =
    FA.forest_decomposition g ~epsilon:1.0 ~alpha:4 ~diameter:`Inv_eps
      ~rng:st ~rounds ()
  in
  Verify.exn (Verify.forest_decomposition coloring);
  Alcotest.(check bool) "diameter bounded" true
    (Verify.max_forest_diameter coloring <= 800)

let test_decompose_with_leftover_stats () =
  let st = rng 52 in
  let g = Gen.forest_union st 80 3 in
  let palette = Palette.full g 4 in
  let rounds = Rounds.create () in
  let radii =
    FA.default_radii ~n:(G.n g) ~epsilon:0.4 ~alpha:3
      ~max_degree:(G.max_degree g) ~cut:Cut.Depth_mod
  in
  let coloring, removed, stats =
    FA.decompose_with_leftover g palette ~epsilon:0.4 ~alpha:3
      ~cut:Cut.Depth_mod ~radii ~rng:st ~rounds
  in
  Verify.exn (Verify.partial_forest_decomposition coloring);
  (* every edge is either colored or removed *)
  G.fold_edges
    (fun e _ _ () ->
      Alcotest.(check bool) "covered" true
        (removed.(e) || Coloring.color coloring e <> None))
    g ();
  Alcotest.(check int) "leftover matches mask"
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 removed)
    stats.FA.leftover_edges;
  Alcotest.(check bool) "rounds charged" true (Rounds.total rounds > 0)

let test_sampled_cut_small_alpha () =
  (* Theorem 4.6 regime alpha = O(1): grid with Sampled cut *)
  let st = rng 53 in
  let g = Gen.grid 9 9 in
  let rounds = Rounds.create () in
  let coloring, _ =
    FA.forest_decomposition g ~epsilon:1.0 ~alpha:2 ~cut:(Cut.Sampled 0.5)
      ~radii:(12, 8) ~rng:st ~rounds ()
  in
  check_fd_complete "grid sampled" coloring 4

(* ------------------------------------------------------------------ *)
(* Color splitting + LFD (Theorems 4.9 / 4.10)                         *)
(* ------------------------------------------------------------------ *)

let test_color_split_mpx () =
  let st = rng 54 in
  let g = Gen.forest_union st 60 4 in
  let colors = 8 in
  let palette = Palette.full g colors in
  let rounds = Rounds.create () in
  let split = CS.mpx_split g ~colors ~epsilon:1.0 ~rng:st ~rounds in
  let q0, q1 = CS.induced_palettes g split palette in
  (* disjointness per vertex: a color cannot appear in both induced
     palettes of the same edge *)
  G.fold_edges
    (fun e _ _ () ->
      List.iter
        (fun c ->
          Alcotest.(check bool) "disjoint" false
            (List.mem c (Palette.get q1 e)))
        (Palette.get q0 e))
    g ();
  let k0, k1 = CS.sizes g split palette in
  Alcotest.(check bool) "sides populated" true (k0 >= 0 && k1 >= 0)

let test_list_forest_decomposition () =
  (* Theorem 4.9/4.10 live in the eps*alpha >> log n regime: the side-1
     palettes only stay non-empty w.h.p. when palettes are large, so this
     test uses a dense multigraph with alpha = 50 *)
  let st = rng 55 in
  let g = Gen.forest_union st 110 50 in
  let colors = 150 in
  let palette = Palette.full g colors in
  let rounds = Rounds.create () in
  let coloring, _stats =
    FA.list_forest_decomposition g palette ~epsilon:1.0 ~alpha:50 ~rng:st
      ~rounds ()
  in
  Verify.exn (Verify.forest_decomposition coloring);
  Verify.exn (Verify.respects_palette coloring palette)

(* ------------------------------------------------------------------ *)
(* LSFD (Theorems 2.2 / 2.3)                                           *)
(* ------------------------------------------------------------------ *)

let test_greedy_degeneracy_lsfd () =
  let st = rng 56 in
  for seed = 0 to 8 do
    let g = Gen.erdos_renyi (rng (60 + seed)) 20 0.3 in
    let d = Nw_graphs.Degeneracy.degeneracy g in
    if G.m g > 0 then begin
      let colors = (4 * d) + 2 in
      let lists = Gen.list_palettes st g ~colors ~size:(2 * d) in
      let palette = Palette.of_lists ~colors lists in
      let coloring = Lsfd.greedy_degeneracy g palette in
      Verify.exn (Verify.star_forest_decomposition coloring);
      Verify.exn (Verify.respects_palette coloring palette)
    end
  done

let test_distributed_lsfd () =
  let st = rng 57 in
  let g = Gen.forest_union st 70 4 in
  let alpha_star, _ = Arb.pseudo_arboricity g in
  let epsilon = 0.5 in
  let size =
    int_of_float (floor ((4.0 +. epsilon) *. float_of_int alpha_star)) - 1
  in
  let colors = (2 * size) + 4 in
  let lists = Gen.list_palettes st g ~colors ~size in
  let palette = Palette.of_lists ~colors lists in
  let rounds = Rounds.create () in
  let coloring =
    Lsfd.distributed g palette ~epsilon ~alpha_star ~rng:st ~rounds
  in
  Verify.exn (Verify.star_forest_decomposition coloring);
  Verify.exn (Verify.respects_palette coloring palette)

(* ------------------------------------------------------------------ *)
(* Star forests (Section 5)                                            *)
(* ------------------------------------------------------------------ *)

let test_sfd_simple_graph () =
  let st = rng 58 in
  let g = Gen.forest_union_simple st 80 5 in
  let alpha = 5 in
  let epsilon = 0.6 in
  let rounds = Rounds.create () in
  (* use the exact arboricity orientation as the t-orientation input *)
  let _, fd = Nw_baseline.Gabow_westermann.arboricity g in
  let orientation = Orient.of_forest_decomposition fd ~rounds in
  let coloring, stats =
    SF.sfd g ~epsilon ~alpha ~orientation ~ids:(ids (G.n g)) ~rng:st ~rounds
  in
  Verify.exn (Verify.star_forest_decomposition coloring);
  Alcotest.(check bool) "deficiency accounted" true
    (stats.SF.max_deficiency >= 0)

let test_sfd_rejects_multigraph () =
  let g = G.of_edges 2 [ (0, 1); (0, 1) ] in
  let rounds = Rounds.create () in
  let o = O.make g [| 1; 1 |] in
  Alcotest.(check bool) "rejects" true
    (try
       ignore
         (SF.sfd g ~epsilon:0.5 ~alpha:2 ~orientation:o ~ids:(ids 2)
            ~rng:(rng 0) ~rounds);
       false
     with Invalid_argument _ -> true)

let test_lsfd_section5 () =
  let st = rng 59 in
  let g = Gen.forest_union_simple st 60 4 in
  let rounds = Rounds.create () in
  let _, fd = Nw_baseline.Gabow_westermann.arboricity g in
  let orientation = Orient.of_forest_decomposition fd ~rounds in
  (* generous palettes make perfect matchings achievable at small scale;
     epsilon = 0.5 maximizes the per-color usability (1-eps)*eps *)
  let colors = 24 in
  let lists = Gen.list_palettes st g ~colors ~size:20 in
  let palette = Palette.of_lists ~colors lists in
  let coloring, stats =
    SF.lsfd g palette ~epsilon:0.5 ~orientation ~rng:st ~rounds
  in
  Verify.exn (Verify.star_forest_decomposition coloring);
  Verify.exn (Verify.respects_palette coloring palette);
  Alcotest.(check int) "no leftover" 0 stats.SF.leftover_edges

(* ------------------------------------------------------------------ *)
(* Orientation (Corollary 1.1)                                         *)
(* ------------------------------------------------------------------ *)

let test_orientation_of_fd () =
  let st = rng 60 in
  let g = Gen.forest_union st 60 4 in
  let _, fd = Nw_baseline.Gabow_westermann.arboricity g in
  let rounds = Rounds.create () in
  let o = Orient.of_forest_decomposition fd ~rounds in
  Alcotest.(check bool) "out-degree <= colors" true
    (O.max_out_degree o <= Coloring.colors fd)

let test_orientation_end_to_end () =
  let st = rng 61 in
  let g = Gen.forest_union st 70 3 in
  let rounds = Rounds.create () in
  let o, _stats =
    Orient.orientation g ~epsilon:1.0 ~alpha:3 ~rng:st ~rounds ()
  in
  (* (1+eps)alpha with slack for the leftover recoloring *)
  Alcotest.(check bool) "out-degree bound" true (O.max_out_degree o <= 6)


let test_auto_cut_dispatch () =
  (* alpha >= ln n or ln Delta: depth-mod *)
  Alcotest.(check bool) "large alpha -> depth-mod" true
    (FA.auto_cut ~n:100 ~alpha:10 ~max_degree:30 ~epsilon:0.5 = Cut.Depth_mod);
  (* alpha < ln Delta but eps*alpha >= ln Delta -> Sampled 0.5 *)
  (match FA.auto_cut ~n:5000 ~alpha:3 ~max_degree:100 ~epsilon:2.0 with
  | Cut.Sampled eta -> Alcotest.(check (float 0.001)) "eta" 0.5 eta
  | _ -> Alcotest.fail "expected Sampled 0.5");
  (* tiny eps*alpha -> the optimized Thm 4.2(3) eta *)
  match FA.auto_cut ~n:5000 ~alpha:2 ~max_degree:1000 ~epsilon:0.25 with
  | Cut.Sampled eta ->
      Alcotest.(check bool) "eta in (0, 0.5]" true (eta > 0.0 && eta <= 0.5)
  | _ -> Alcotest.fail "expected optimized Sampled"

let test_auto_cut_end_to_end () =
  let st = rng 62 in
  let g = Gen.forest_union st 80 5 in
  let cut =
    FA.auto_cut ~n:(G.n g) ~alpha:5 ~max_degree:(G.max_degree g) ~epsilon:1.0
  in
  let rounds = Rounds.create () in
  let coloring, _ =
    FA.forest_decomposition g ~epsilon:1.0 ~alpha:5 ~cut ~rng:st ~rounds ()
  in
  check_fd_complete "auto cut" coloring 10


let test_diam_reduce_cut_fd () =
  let st = rng 63 in
  let g = Gen.forest_union st 70 6 in
  let rounds = Rounds.create () in
  let coloring, _ =
    FA.forest_decomposition g ~epsilon:1.0 ~alpha:6 ~cut:Cut.Diam_reduce
      ~rng:st ~rounds ()
  in
  check_fd_complete "diam-reduce cut" coloring 12

let prop_fd_random_instances =
  QCheck.Test.make ~name:"forest_decomposition valid on random multigraphs"
    ~count:12 (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let alpha = 2 + Random.State.int st 4 in
      let n = 30 + Random.State.int st 40 in
      let g = Gen.forest_union st n alpha in
      let rounds = Rounds.create () in
      let coloring, _ =
        FA.forest_decomposition g ~epsilon:1.0 ~alpha ~rng:st ~rounds ()
      in
      Verify.forest_decomposition coloring = Ok ()
      && Verify.colors_used coloring <= 2 * alpha)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "nw_core_algo"
    [
      ( "augmenting",
        [
          Alcotest.test_case "K5 exact" `Quick test_augment_k5;
          Alcotest.test_case "radius guard" `Quick test_augment_respects_radius;
          Alcotest.test_case "stall" `Quick test_augment_stall_on_tight_palette;
          Alcotest.test_case "growth factor" `Quick test_growth_factor;
        ] );
      qsuite "augmenting_props"
        [ prop_augmentation_preserves_invariant; prop_sequences_satisfy_conditions ];
      ( "diameter_reduction",
        [
          Alcotest.test_case "log/eps" `Quick test_diameter_reduction_log;
          Alcotest.test_case "1/eps" `Quick test_diameter_reduction_inv_eps;
          Alcotest.test_case "chop depths" `Quick test_chop_depths_bound;
        ] );
      ( "cut",
        [
          Alcotest.test_case "depth-mod good" `Quick test_cut_depth_mod_good;
          Alcotest.test_case "sampled leftover" `Quick
            test_cut_sampled_leftover_bounded;
        ] );
      ( "forest_algo",
        [
          Alcotest.test_case "families" `Slow test_forest_decomposition_families;
          Alcotest.test_case "diameter" `Quick test_forest_decomposition_diameter;
          Alcotest.test_case "leftover stats" `Quick
            test_decompose_with_leftover_stats;
          Alcotest.test_case "sampled small alpha" `Quick
            test_sampled_cut_small_alpha;
          Alcotest.test_case "auto cut dispatch" `Quick test_auto_cut_dispatch;
          Alcotest.test_case "auto cut end-to-end" `Quick
            test_auto_cut_end_to_end;
          Alcotest.test_case "diam-reduce cut" `Quick test_diam_reduce_cut_fd;
        ] );
      qsuite "forest_algo_props" [ prop_fd_random_instances ];
      ( "color_split",
        [
          Alcotest.test_case "mpx split" `Quick test_color_split_mpx;
          Alcotest.test_case "lfd end-to-end" `Slow
            test_list_forest_decomposition;
        ] );
      ( "lsfd",
        [
          Alcotest.test_case "greedy degeneracy" `Quick
            test_greedy_degeneracy_lsfd;
          Alcotest.test_case "distributed" `Quick test_distributed_lsfd;
        ] );
      ( "star_forest",
        [
          Alcotest.test_case "sfd" `Quick test_sfd_simple_graph;
          Alcotest.test_case "rejects multigraph" `Quick
            test_sfd_rejects_multigraph;
          Alcotest.test_case "lsfd" `Quick test_lsfd_section5;
        ] );
      ( "orient",
        [
          Alcotest.test_case "of fd" `Quick test_orientation_of_fd;
          Alcotest.test_case "end to end" `Quick test_orientation_end_to_end;
        ] );
    ]
