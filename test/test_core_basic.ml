(* Tests for the basic core machinery: Cole–Vishkin, H-partition
   (Theorem 2.1), network decomposition, MPX, and the LLL solver. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module O = Nw_graphs.Orientation
module T = Nw_graphs.Traversal
module Rounds = Nw_localsim.Rounds
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Verify = Nw_decomp.Verify
module CV = Nw_core.Cole_vishkin
module H = Nw_core.H_partition
module ND = Nw_core.Net_decomp
module Lll = Nw_core.Lll

let rng seed = Random.State.make [| seed; 1234 |]
let ids n = Array.init n (fun v -> v)

(* ------------------------------------------------------------------ *)
(* Cole-Vishkin                                                        *)
(* ------------------------------------------------------------------ *)

let check_proper_coloring g colors =
  G.fold_edges
    (fun _ u v ok -> ok && colors.(u) <> colors.(v))
    g true

let parent_edges_of_rooted_path g =
  (* path rooted at vertex 0: parent of v is v-1 via edge v-1 *)
  Array.init (G.n g) (fun v -> if v = 0 then -1 else v - 1)

let test_cv_path () =
  let g = Gen.path 40 in
  let rounds = Rounds.create () in
  let colors =
    CV.three_color g
      ~parent_edge:(parent_edges_of_rooted_path g)
      ~ids:(ids 40) ~rounds
  in
  Alcotest.(check bool) "proper" true (check_proper_coloring g colors);
  Array.iter
    (fun c -> Alcotest.(check bool) "in {0,1,2}" true (c >= 0 && c <= 2))
    colors;
  (* O(log* n) rounds: generous absolute bound for n = 40 *)
  Alcotest.(check bool) "rounds small" true (Rounds.total rounds <= 30)

let test_cv_random_trees () =
  for seed = 0 to 14 do
    let n = 5 + (seed * 13) in
    let g = Gen.random_tree (rng seed) n in
    let parent, parent_edge, _ = T.bfs_tree g 0 in
    ignore parent;
    let rounds = Rounds.create () in
    let colors = CV.three_color g ~parent_edge ~ids:(ids n) ~rounds in
    Alcotest.(check bool)
      (Printf.sprintf "proper on tree %d" seed)
      true
      (check_proper_coloring g colors)
  done

let test_cv_forest_with_isolated () =
  (* two disjoint paths plus isolated vertices *)
  let g = G.of_edges 7 [ (0, 1); (1, 2); (4, 5) ] in
  let parent_edge = [| -1; 0; 1; -1; -1; 2; -1 |] in
  let rounds = Rounds.create () in
  let colors = CV.three_color g ~parent_edge ~ids:(ids 7) ~rounds in
  Alcotest.(check bool) "proper" true (check_proper_coloring g colors)

let test_cv_big_ids () =
  let g = Gen.path 10 in
  let big_ids = Array.init 10 (fun v -> (v * 7919) + 1000000) in
  let rounds = Rounds.create () in
  let colors =
    CV.three_color g
      ~parent_edge:(parent_edges_of_rooted_path g)
      ~ids:big_ids ~rounds
  in
  Alcotest.(check bool) "proper" true (check_proper_coloring g colors)

(* ------------------------------------------------------------------ *)
(* H-partition (Theorem 2.1)                                           *)
(* ------------------------------------------------------------------ *)

let test_h_partition_bounds () =
  let st = rng 3 in
  let g = Gen.forest_union st 60 4 in
  (* alpha = 4; pseudo-arboricity <= 4 *)
  let rounds = Rounds.create () in
  let hp = H.compute g ~epsilon:0.5 ~alpha_star:4 ~rounds in
  let t = hp.H.threshold in
  Alcotest.(check int) "threshold" 10 t;
  (* every vertex has at most t neighbors in its own or higher layers *)
  for v = 0 to G.n g - 1 do
    let later =
      Array.fold_left
        (fun acc (w, _) ->
          if hp.H.layer.(w) >= hp.H.layer.(v) then acc + 1 else acc)
        0 (G.incident g v)
    in
    Alcotest.(check bool) "layer degree bound" true (later <= t)
  done;
  Alcotest.(check bool) "all assigned" true
    (Array.for_all (fun l -> l >= 0 && l < hp.H.num_layers) hp.H.layer)

let test_h_partition_orientation () =
  let st = rng 4 in
  let g = Gen.forest_union st 50 3 in
  let rounds = Rounds.create () in
  let hp = H.compute g ~epsilon:0.5 ~alpha_star:3 ~rounds in
  let o = H.orientation g hp ~ids:(ids (G.n g)) in
  Alcotest.(check bool) "acyclic" true (O.is_acyclic o);
  Alcotest.(check bool) "out-degree bound" true
    (O.max_out_degree o <= hp.H.threshold)

let test_h_partition_stall_detected () =
  (* claim alpha_star = 0 for a clique: threshold 0, nothing peels *)
  let g = Gen.complete 6 in
  let rounds = Rounds.create () in
  Alcotest.(check bool) "stall raises" true
    (try
       ignore (H.compute g ~epsilon:0.5 ~alpha_star:0 ~rounds);
       false
     with Failure _ -> true)

let test_forests_of_orientation () =
  let st = rng 5 in
  let g = Gen.forest_union st 40 3 in
  let rounds = Rounds.create () in
  let hp = H.compute g ~epsilon:0.5 ~alpha_star:3 ~rounds in
  let o = H.orientation g hp ~ids:(ids (G.n g)) in
  let coloring, parent_edges = H.forests_of_orientation g o in
  Verify.exn (Verify.forest_decomposition coloring);
  Alcotest.(check bool) "at most t forests" true
    (Coloring.colors coloring <= hp.H.threshold);
  (* parent edges are consistent: edge j-colored and child endpoint *)
  Array.iteri
    (fun j per_vertex ->
      Array.iteri
        (fun v e ->
          if e >= 0 then begin
            Alcotest.(check (option int)) "parent edge color" (Some j)
              (Coloring.color coloring e);
            ignore (G.other_endpoint g e v)
          end)
        per_vertex)
    parent_edges

let test_star_forest_thm21 () =
  let st = rng 6 in
  let g = Gen.forest_union st 50 3 in
  let rounds = Rounds.create () in
  let hp = H.compute g ~epsilon:0.5 ~alpha_star:3 ~rounds in
  let o = H.orientation g hp ~ids:(ids (G.n g)) in
  let sfd = H.star_forest_decomposition g o ~ids:(ids (G.n g)) ~rounds in
  Verify.exn (Verify.star_forest_decomposition sfd);
  Alcotest.(check bool) "3t colors" true
    (Coloring.colors sfd <= 3 * hp.H.threshold)

let test_list_forest_thm21 () =
  let st = rng 7 in
  let g = Gen.forest_union st 40 3 in
  let rounds = Rounds.create () in
  let hp = H.compute g ~epsilon:0.5 ~alpha_star:3 ~rounds in
  let o = H.orientation g hp ~ids:(ids (G.n g)) in
  let t = hp.H.threshold in
  let palette_lists =
    Gen.list_palettes st g ~colors:(2 * t) ~size:t
  in
  let palette = Palette.of_lists ~colors:(2 * t) palette_lists in
  let lfd = H.list_forest_decomposition g o palette ~rounds in
  Verify.exn (Verify.forest_decomposition lfd);
  Verify.exn (Verify.respects_palette lfd palette)

(* peeling round complexity grows ~ log n / eps: sanity-check monotonicity *)
let test_h_partition_round_scaling () =
  let run n =
    let g = Gen.forest_union (rng 8) n 3 in
    let rounds = Rounds.create () in
    ignore (H.compute g ~epsilon:0.5 ~alpha_star:3 ~rounds);
    Rounds.total rounds
  in
  let r_small = run 20 and r_big = run 400 in
  Alcotest.(check bool) "more rounds on bigger graph" true (r_big >= r_small);
  Alcotest.(check bool) "but still logarithmic-ish" true (r_big <= 80)


(* LOCAL fidelity: a vertex's H-partition layer is a function of its
   radius-L ball (L = number of peeling rounds). Each vertex recomputes its
   own layer from the ball delivered by the distributed gathering protocol,
   and must agree with the global computation. *)
let test_h_partition_local_fidelity () =
  let st = rng 900 in
  let g = Gen.erdos_renyi st 40 0.1 in
  let alpha_star = max 1 (fst (Nw_graphs.Arboricity.pseudo_arboricity g)) in
  let rounds = Rounds.create () in
  let hp = H.compute g ~epsilon:0.5 ~alpha_star ~rounds in
  let radius = hp.H.num_layers in
  let balls = Nw_localsim.Ball_view.collect g ~radius ~rounds in
  for v = 0 to G.n g - 1 do
    let ball = balls.(v) in
    (* rebuild the ball as a standalone graph *)
    let index = Hashtbl.create 16 in
    List.iteri (fun i u -> Hashtbl.add index u i) ball.Nw_localsim.Ball_view.vertices;
    let b = G.create_builder (List.length ball.Nw_localsim.Ball_view.vertices) in
    List.iter
      (fun (_, a, c) ->
        ignore (G.add_edge b (Hashtbl.find index a) (Hashtbl.find index c)))
      ball.Nw_localsim.Ball_view.edges;
    let local_g = G.build b in
    let local_rounds = Rounds.create () in
    let local_hp =
      H.compute local_g ~epsilon:0.5 ~alpha_star ~rounds:local_rounds
    in
    let local_layer = local_hp.H.layer.(Hashtbl.find index v) in
    (* the local view has FEWER edges at its boundary, so vertices can only
       peel earlier there; but within distance (radius - layer) the views
       agree, so v's own layer matches when layer < radius *)
    if hp.H.layer.(v) < radius then
      Alcotest.(check int)
        (Printf.sprintf "layer of %d from its own ball" v)
        hp.H.layer.(v) local_layer
  done


let test_distributed_pipeline () =
  let st = rng 901 in
  let g = Gen.forest_union st 120 4 in
  let alpha_star, _ = Nw_graphs.Arboricity.pseudo_arboricity g in
  let rounds = Rounds.create () in
  let sfd =
    Nw_core.Distributed.star_forest_decomposition g ~epsilon:0.5 ~alpha_star
      ~rounds
  in
  Verify.exn (Verify.star_forest_decomposition sfd);
  let t = int_of_float (floor (2.5 *. float_of_int alpha_star)) in
  Alcotest.(check bool) "3t colors" true (Verify.colors_used sfd <= 3 * t);
  (* every labeled charge is an executed-kernel or local-rule round *)
  List.iter
    (fun (label, _) ->
      Alcotest.(check bool) ("label " ^ label) true
        (List.mem label
           [
             "h-partition/peel"; "distributed/layer-exchange";
             "cole-vishkin/bit-reduction"; "cole-vishkin/shift-down";
             "cole-vishkin/recolor";
           ]))
    (Rounds.ledger rounds)

(* ------------------------------------------------------------------ *)
(* Network decomposition                                               *)
(* ------------------------------------------------------------------ *)

let test_nd_valid_on_random () =
  for seed = 0 to 5 do
    let st = rng (100 + seed) in
    let g = Gen.erdos_renyi st 60 0.08 in
    let rounds = Rounds.create () in
    let nd = ND.compute g ~rng:st ~rounds ~distance:1 in
    (match ND.check_valid g ~distance:1 nd with
    | Ok () -> ()
    | Error m -> Alcotest.fail m);
    Alcotest.(check bool) "few classes" true (nd.ND.num_classes <= 40)
  done

let test_nd_distance_parameter () =
  let st = rng 200 in
  let g = Gen.grid 8 8 in
  let rounds = Rounds.create () in
  let nd = ND.compute g ~rng:st ~rounds ~distance:2 in
  match ND.check_valid g ~distance:2 nd with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_nd_weak_diameter () =
  let st = rng 300 in
  let g = Gen.grid 10 10 in
  let rounds = Rounds.create () in
  let nd = ND.compute g ~rng:st ~rounds ~distance:1 in
  let d = ND.max_cluster_weak_diameter g nd in
  (* radius cap is 2 + ceil(log2 n): diameter <= 2 * cap hops *)
  Alcotest.(check bool) "bounded weak diameter" true (d <= 4 * (2 + 7))

let test_mpx_partition () =
  let st = rng 400 in
  let g = Gen.grid 12 12 in
  let rounds = Rounds.create () in
  let labels = ND.mpx g ~rng:st ~beta:0.3 ~rounds in
  (* every vertex labeled; clusters connected *)
  Array.iter (fun l -> Alcotest.(check bool) "labeled" true (l >= 0)) labels;
  let cut =
    G.fold_edges
      (fun _ u v acc -> if labels.(u) <> labels.(v) then acc + 1 else acc)
      g 0
  in
  (* expected cut fraction <= beta; allow 3x slack *)
  Alcotest.(check bool) "cut edges sparse" true
    (float_of_int cut <= 0.9 *. float_of_int (G.m g));
  (* connectivity of each cluster *)
  let module UF = Nw_graphs.Union_find in
  let uf = UF.create (G.n g) in
  G.fold_edges
    (fun _ u v () -> if labels.(u) = labels.(v) then ignore (UF.union uf u v))
    g ();
  let reps = Hashtbl.create 16 in
  Array.iteri
    (fun v l ->
      match Hashtbl.find_opt reps l with
      | None -> Hashtbl.add reps l (UF.find uf v)
      | Some r ->
          Alcotest.(check int) "cluster connected" r (UF.find uf v))
    labels

let test_mpx_cut_probability () =
  (* average over trials: cut fraction should be near beta, well below 2beta *)
  let beta = 0.15 in
  let trials = 20 in
  let total_cut = ref 0 and total_edges = ref 0 in
  for seed = 0 to trials - 1 do
    let st = rng (500 + seed) in
    let g = Gen.grid 9 9 in
    let rounds = Rounds.create () in
    let labels = ND.mpx g ~rng:st ~beta ~rounds in
    total_edges := !total_edges + G.m g;
    total_cut :=
      !total_cut
      + G.fold_edges
          (fun _ u v acc -> if labels.(u) <> labels.(v) then acc + 1 else acc)
          g 0
  done;
  let fraction = float_of_int !total_cut /. float_of_int !total_edges in
  Alcotest.(check bool)
    (Printf.sprintf "cut fraction %.3f <= 2 beta" fraction)
    true
    (fraction <= 2.0 *. beta)

(* ------------------------------------------------------------------ *)
(* LLL                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lll_solves_proper_coloring () =
  (* frugal test: 3-color a cycle by resampling; events = monochromatic
     edges. p = 1/3, d = 2: well within the polynomial criterion. *)
  let g = Gen.cycle 30 in
  let st = rng 600 in
  let rounds = Rounds.create () in
  let events =
    Array.init (G.m g) (fun e ->
        let u, v = G.endpoints g e in
        {
          Lll.vars = [ u; v ];
          violated = (fun read -> read u = read v);
        })
  in
  let colors =
    Lll.solve ~num_vars:(G.n g)
      ~sample:(fun s _ -> Random.State.int s 3)
      ~events ~rng:st ~rounds ~max_iters:4000 ()
  in
  G.fold_edges
    (fun _ u v () ->
      Alcotest.(check bool) "proper" true (colors.(u) <> colors.(v)))
    g ()

let test_lll_nonstrict_returns () =
  (* unsatisfiable instance: 1-coloring a triangle; with ~strict:false the
     solver must return rather than raise *)
  let g = Gen.cycle 3 in
  let st = rng 700 in
  let rounds = Rounds.create () in
  let events =
    Array.init (G.m g) (fun e ->
        let u, v = G.endpoints g e in
        { Lll.vars = [ u; v ]; violated = (fun read -> read u = read v) })
  in
  let _ =
    Lll.solve ~strict:false ~num_vars:3
      ~sample:(fun _ _ -> 0)
      ~events ~rng:st ~rounds ~max_iters:5 ()
  in
  Alcotest.(check bool) "returned" true true;
  Alcotest.check_raises "strict raises"
    (Failure "Lll.solve: resampling did not converge") (fun () ->
      ignore
        (Lll.solve ~num_vars:3
           ~sample:(fun _ _ -> 0)
           ~events ~rng:st ~rounds ~max_iters:5 ()))

let () =
  Alcotest.run "nw_core_basic"
    [
      ( "cole_vishkin",
        [
          Alcotest.test_case "path" `Quick test_cv_path;
          Alcotest.test_case "random trees" `Quick test_cv_random_trees;
          Alcotest.test_case "forest + isolated" `Quick
            test_cv_forest_with_isolated;
          Alcotest.test_case "big ids" `Quick test_cv_big_ids;
        ] );
      ( "h_partition",
        [
          Alcotest.test_case "bounds" `Quick test_h_partition_bounds;
          Alcotest.test_case "orientation" `Quick test_h_partition_orientation;
          Alcotest.test_case "stall detection" `Quick
            test_h_partition_stall_detected;
          Alcotest.test_case "forests" `Quick test_forests_of_orientation;
          Alcotest.test_case "star forests" `Quick test_star_forest_thm21;
          Alcotest.test_case "list forests" `Quick test_list_forest_thm21;
          Alcotest.test_case "round scaling" `Quick
            test_h_partition_round_scaling;
          Alcotest.test_case "local fidelity" `Quick
            test_h_partition_local_fidelity;
          Alcotest.test_case "fully distributed pipeline" `Quick
            test_distributed_pipeline;
        ] );
      ( "net_decomp",
        [
          Alcotest.test_case "valid random" `Quick test_nd_valid_on_random;
          Alcotest.test_case "distance 2" `Quick test_nd_distance_parameter;
          Alcotest.test_case "weak diameter" `Quick test_nd_weak_diameter;
          Alcotest.test_case "mpx partition" `Quick test_mpx_partition;
          Alcotest.test_case "mpx cut probability" `Quick
            test_mpx_cut_probability;
        ] );
      ( "lll",
        [
          Alcotest.test_case "cycle coloring" `Quick
            test_lll_solves_proper_coloring;
          Alcotest.test_case "non-strict" `Quick test_lll_nonstrict_returns;
        ] );
    ]
