(* Differential suite for the CSR data plane (docs/data-plane.md).

   Part 1 — qcheck: on random multigraphs (parallel edges included),
   every Graph_sig.GRAPH operation on Csr must be byte-identical to
   Multigraph — iteration order included, since the determinism contract
   of the whole repo is phrased over adjacency order.

   Part 2 — golden end-to-end: one engine-registry pipeline produces
   byte-identical colorings and round ledgers on both backends and at
   domains 1 vs 4; the message kernel under a fault plan produces the
   identical state vector and fault-timeline digest across all four
   (backend, domains) configurations. *)

module G = Nw_graphs.Multigraph
module Csr = Nw_graphs.Csr
module Gen = Nw_graphs.Generators
module Backend = Nw_graphs.Backend
module Dpool = Nw_localsim.Dpool
module Net = Nw_localsim.Msg_net
module Rounds = Nw_localsim.Rounds
module Coloring = Nw_decomp.Coloring
module Registry = Nw_engine.Registry
module Engine = Nw_engine.Engine
module EStore = Nw_engine.Store
module Artifact = Nw_engine.Artifact

let rng seed = Random.State.make [| seed; 0xc5a |]

(* random multigraph as an explicit edge list: duplicates (parallel
   edges) are likely at these densities, which is the point *)
let random_edges st n m =
  List.init m (fun _ ->
      let u = Random.State.int st n in
      let v = Random.State.int st (n - 1) in
      let v = if v >= u then v + 1 else v in
      (u, v))

let incident_list g v =
  List.rev (G.fold_incident g v ~init:[] (fun acc w e -> (w, e) :: acc))

let incident_list_csr c v =
  List.rev (Csr.fold_incident c v ~init:[] (fun acc w e -> (w, e) :: acc))

(* every GRAPH op, compared for one (multigraph, csr) pair; raises on the
   first mismatch so qcheck reports the seed *)
let check_pair g c =
  let fail fmt = Printf.ksprintf failwith fmt in
  if G.n g <> Csr.n c then fail "n: %d vs %d" (G.n g) (Csr.n c);
  if G.m g <> Csr.m c then fail "m: %d vs %d" (G.m g) (Csr.m c);
  for e = 0 to G.m g - 1 do
    if G.endpoints g e <> Csr.endpoints c e then fail "endpoints %d" e;
    let u, v = G.endpoints g e in
    if G.other_endpoint g e u <> Csr.other_endpoint c e u then
      fail "other_endpoint %d/%d" e u;
    if G.other_endpoint g e v <> Csr.other_endpoint c e v then
      fail "other_endpoint %d/%d" e v
  done;
  if G.max_degree g <> Csr.max_degree c then fail "max_degree";
  for v = 0 to G.n g - 1 do
    if G.degree g v <> Csr.degree c v then fail "degree %d" v;
    if G.incident g v <> Csr.incident c v then fail "incident %d" v;
    if incident_list g v <> incident_list_csr c v then
      fail "fold_incident order %d" v;
    let iter_order grab =
      let acc = ref [] in
      grab (fun w e -> acc := (w, e) :: !acc);
      List.rev !acc
    in
    if
      iter_order (fun f -> G.iter_incident g v f)
      <> iter_order (fun f -> Csr.iter_incident c v f)
    then fail "iter_incident order %d" v
  done;
  if G.edges g <> Csr.edges c then fail "edges";
  let folded fold = List.rev (fold (fun e u v acc -> (e, u, v) :: acc)) in
  if
    folded (fun f -> G.fold_edges f g [])
    <> folded (fun f -> Csr.fold_edges f c [])
  then fail "fold_edges order";
  if G.is_simple g <> Csr.is_simple c then fail "is_simple";
  let n = G.n g in
  for v = 0 to min (n - 1) 7 do
    for r = 0 to 3 do
      if G.ball g v r <> Csr.ball c v r then fail "ball %d r=%d" v r
    done
  done;
  let set = List.filteri (fun i _ -> i mod 3 = 0) (List.init n Fun.id) in
  for r = 0 to 3 do
    if G.ball_of_set g set r <> Csr.ball_of_set c set r then
      fail "ball_of_set r=%d" r
  done

let prop_of_edges =
  QCheck.Test.make ~name:"Csr.of_edges == Multigraph.of_edges on every op"
    ~count:200 (QCheck.int_bound 1_000_000)
    (fun seed ->
      let st = rng seed in
      let n = 2 + Random.State.int st 30 in
      let m = Random.State.int st 80 in
      let edges = random_edges st n m in
      check_pair (G.of_edges n edges) (Csr.of_edges n edges);
      true)

let prop_builder =
  QCheck.Test.make ~name:"interleaved builders assign identical edge ids"
    ~count:100 (QCheck.int_bound 1_000_000)
    (fun seed ->
      let st = rng seed in
      let n = 2 + Random.State.int st 20 in
      let gb = G.create_builder n and cb = Csr.create_builder n in
      for _ = 1 to Random.State.int st 60 do
        let u = Random.State.int st n in
        let v = Random.State.int st (n - 1) in
        let v = if v >= u then v + 1 else v in
        let id = G.add_edge gb u v and id' = Csr.add_edge cb u v in
        if id <> id' then failwith "edge id mismatch"
      done;
      check_pair (G.build gb) (Csr.build cb);
      true)

let prop_roundtrip =
  QCheck.Test.make ~name:"of_multigraph / to_multigraph round-trips exactly"
    ~count:100 (QCheck.int_bound 1_000_000)
    (fun seed ->
      let st = rng seed in
      let n = 2 + Random.State.int st 40 in
      let g = Gen.erdos_renyi st n 0.15 in
      let c = Csr.of_multigraph g in
      check_pair g c;
      let g' = Csr.to_multigraph c in
      G.n g = G.n g' && G.edges g = G.edges g'
      && List.for_all
           (fun v -> incident_list g v = incident_list g' v)
           (List.init n Fun.id))

let prop_generated_families =
  QCheck.Test.make ~name:"conversion differential over generator families"
    ~count:40 (QCheck.int_bound 1_000_000)
    (fun seed ->
      let st = rng seed in
      let n = 10 + Random.State.int st 40 in
      let g =
        match Random.State.int st 3 with
        | 0 -> Gen.forest_union st n 3
        | 1 -> Gen.line_multigraph (max 2 (n / 4)) 5
        | _ -> Gen.erdos_renyi st n 0.2
      in
      check_pair g (Csr.of_multigraph g);
      true)

(* ------------------------------------------------------------------ *)
(* golden end-to-end: one registry pipeline, both planes, K in {1,4}   *)
(* ------------------------------------------------------------------ *)

(* colorings compared edge-by-edge through accessors (the repo's DET002
   discipline: no polymorphic compare on graph-like values) *)
let coloring_fingerprint g c =
  List.init (G.m g) (fun e -> Coloring.color c e)

let run_pipeline g ~backend ~domains =
  Backend.with_kind backend @@ fun () ->
  Dpool.with_domains domains @@ fun () ->
  let entry =
    match Registry.find "lsfd" with Some e -> e | None -> assert false
  in
  let rounds = Rounds.create () in
  let rng = Random.State.make [| 7; 0x601d |] in
  let pipeline =
    entry.Registry.build { Registry.graph = g; epsilon = 0.5; alpha = 3 }
  in
  let ctx = Engine.ctx ~rng ~rounds in
  let init = EStore.put EStore.empty "graph" (Artifact.Graph g) in
  let store = Engine.run ctx pipeline ~init in
  let coloring = EStore.coloring store "coloring" in
  (coloring_fingerprint g coloring, Rounds.ledger rounds)

let golden_pipeline () =
  let g = Gen.forest_union (rng 91) 120 3 in
  let reference = run_pipeline g ~backend:Backend.Boxed ~domains:1 in
  List.iter
    (fun (backend, domains) ->
      let got = run_pipeline g ~backend ~domains in
      Alcotest.(check (pair (list (option int)) (list (pair string int))))
        (Printf.sprintf "lsfd pipeline identical on %s/%d"
           (Backend.to_string backend) domains)
        reference got)
    [ (Backend.Boxed, 4); (Backend.Csr, 1); (Backend.Csr, 2); (Backend.Csr, 4) ]

(* the message kernel under a fault plan: states, delivered-message
   count, and the order-sensitive timeline digest must be invariant
   across backend and domain count (the faulty path is canonical) *)
let run_faulty_flood ~backend ~domains =
  Backend.with_kind backend @@ fun () ->
  Dpool.with_domains domains @@ fun () ->
  let g = Gen.forest_union (rng 17) 60 3 in
  let plan =
    match Nw_chaos.Plan.of_string "drop=0.2,dup=0.1,delay=0.1:2,reorder" with
    | Ok p -> p
    | Error msg -> failwith msg
  in
  let faults =
    match Nw_chaos.Inject.compile plan ~seed:5 () with
    | Some f -> f
    | None -> assert false
  in
  let (states, delivered), stats =
    Net.with_faults faults @@ fun () ->
    let rounds = Rounds.create () in
    let net = Net.create g ~rounds ~init:(fun v -> v) in
    for _ = 1 to 6 do
      Net.round net ~label:"flood"
        ~send:(fun v st -> G.fold_incident g v ~init:[] (fun acc _ e -> (e, st) :: acc) |> List.rev)
        ~recv:(fun _ st msgs ->
          List.fold_left (fun acc (_, m) -> max acc m) st msgs)
    done;
    (Array.to_list (Net.states net), Net.messages_delivered net)
  in
  (states, delivered, stats.Net.digest)

let golden_chaos () =
  let s0, d0, digest0 = run_faulty_flood ~backend:Backend.Boxed ~domains:1 in
  List.iter
    (fun (backend, domains) ->
      let s, d, digest = run_faulty_flood ~backend ~domains in
      let tag =
        Printf.sprintf "%s/%d" (Backend.to_string backend) domains
      in
      Alcotest.(check (list int)) (tag ^ " states") s0 s;
      Alcotest.(check int) (tag ^ " delivered") d0 d;
      Alcotest.(check int64) (tag ^ " digest") digest0 digest)
    [ (Backend.Boxed, 4); (Backend.Csr, 1); (Backend.Csr, 4) ]

(* the counting round (H-partition peel) across all configurations, with
   per-label ledgers compared too *)
let golden_round_count () =
  let g = Gen.forest_union (rng 33) 300 4 in
  let peel ~backend ~domains =
    Backend.with_kind backend @@ fun () ->
    Dpool.with_domains domains @@ fun () ->
    let rounds = Rounds.create () in
    let hp =
      Nw_core.H_partition.compute g ~epsilon:0.5 ~alpha_star:4 ~rounds
    in
    (Array.to_list hp.Nw_core.H_partition.layer, Rounds.ledger rounds)
  in
  let reference = peel ~backend:Backend.Boxed ~domains:1 in
  List.iter
    (fun (backend, domains) ->
      Alcotest.(check (pair (list int) (list (pair string int))))
        (Printf.sprintf "h-partition identical on %s/%d"
           (Backend.to_string backend) domains)
        reference
        (peel ~backend ~domains))
    [ (Backend.Boxed, 2); (Backend.Csr, 1); (Backend.Csr, 2); (Backend.Csr, 4) ]

(* ------------------------------------------------------------------ *)
(* adversarial-scheduling merge determinism                            *)
(* ------------------------------------------------------------------ *)

(* The Dpool/Msg_net merge discipline claims byte-identical results at
   any domain count *regardless of which shard finishes first*. Attack
   that claim directly: every send/recv callback busy-waits for a
   pseudo-random number of iterations keyed by (seed, vertex, round),
   so shard completion order varies wildly between domain counts (and
   between property instances), while states, delivered-message
   counts, the per-label ledger, and the per-domain work counter must
   all stay exactly equal to the sequential run. *)
let adversarial_spin seed v round =
  let h = (seed * 0x9e3779b9) lxor (v * 0x85ebca6b) lxor (round * 0xc2b2ae35) in
  let iters = (h land 0x3fff) + ((h lsr 14) land 0xfff) in
  let acc = ref 0 in
  for i = 1 to iters do
    acc := !acc + (Sys.opaque_identity i)
  done;
  ignore (Sys.opaque_identity !acc)

let run_adversarial_protocol ~seed ~domains =
  Dpool.with_domains domains @@ fun () ->
  let n = 5 + (seed mod 36) in
  let g = Gen.forest_union (rng seed) n (2 + (seed mod 3)) in
  let rounds = Rounds.create () in
  let base = Rounds.domain_total () in
  let net = Net.create g ~rounds ~init:(fun v -> (v * 31) land 0xffff) in
  let round_no = ref 0 in
  for _ = 1 to 4 do
    incr round_no;
    let r = !round_no in
    Net.round net ~label:"adversarial"
      ~send:(fun v st ->
        adversarial_spin seed v r;
        G.fold_incident g v ~init:[]
          (fun acc _ e -> (e, (st + v) land 0xffff) :: acc)
        |> List.rev)
      ~recv:(fun v st msgs ->
        adversarial_spin (seed + 1) v r;
        (* order-sensitive fold: any delivery-order wobble shows up *)
        List.fold_left
          (fun acc (_, m) -> ((acc * 131) + m) land 0xfffffff)
          ((st * 7) + v) msgs)
  done;
  ( Array.to_list (Net.states net),
    Net.messages_delivered net,
    Rounds.ledger rounds,
    Rounds.domain_total () - base )

let prop_adversarial_merge =
  QCheck.Test.make
    ~name:"Msg_net merge is schedule-independent (K=1/2/4, spin-perturbed)"
    ~count:10 (QCheck.int_bound 1_000_000)
    (fun seed ->
      let reference = run_adversarial_protocol ~seed ~domains:1 in
      List.for_all
        (fun domains -> run_adversarial_protocol ~seed ~domains = reference)
        [ 2; 4 ])

(* same adversary, full engine: an lsfd pipeline run under perturbed
   scheduling must reproduce the K=1 coloring and ledger exactly *)
let adversarial_pipeline () =
  let g = Gen.forest_union (rng 57) 120 3 in
  let reference = run_pipeline g ~backend:Backend.Csr ~domains:1 in
  List.iter
    (fun domains ->
      Alcotest.(check (pair (list (option int)) (list (pair string int))))
        (Printf.sprintf "lsfd pipeline identical at K=%d" domains)
        reference
        (run_pipeline g ~backend:Backend.Csr ~domains))
    [ 2; 4 ]

let () =
  let qsuite name tests =
    (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)
  in
  Alcotest.run "csr"
    [
      qsuite "differential"
        [ prop_of_edges; prop_builder; prop_roundtrip; prop_generated_families ];
      ( "golden",
        [
          Alcotest.test_case "lsfd pipeline across backends/domains" `Quick
            golden_pipeline;
          Alcotest.test_case "fault digest invariant" `Quick golden_chaos;
          Alcotest.test_case "round_count across backends/domains" `Quick
            golden_round_count;
        ] );
      qsuite "adversarial" [ prop_adversarial_merge ];
      ( "adversarial-pipeline",
        [
          Alcotest.test_case "lsfd under perturbed scheduling" `Quick
            adversarial_pipeline;
        ] );
    ]
