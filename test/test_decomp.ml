(* Tests for palettes, the partial-coloring structure, and the verifier —
   including failure injection (the verifier must reject broken inputs). *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module O = Nw_graphs.Orientation
module Palette = Nw_decomp.Palette
module Coloring = Nw_decomp.Coloring
module Verify = Nw_decomp.Verify

let rng seed = Random.State.make [| seed; 77 |]

(* ------------------------------------------------------------------ *)
(* Palette                                                             *)
(* ------------------------------------------------------------------ *)

let test_palette_full () =
  let g = Gen.path 4 in
  let p = Palette.full g 3 in
  Alcotest.(check int) "space" 3 (Palette.color_space p);
  Alcotest.(check int) "min size" 3 (Palette.min_size p);
  Alcotest.(check (list int)) "get" [ 0; 1; 2 ] (Palette.get p 0);
  Alcotest.(check bool) "mem" true (Palette.mem p 1 2);
  Alcotest.(check bool) "not mem" false (Palette.mem p 1 3)

let test_palette_of_lists_validation () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Palette.of_lists: palette not sorted strict")
    (fun () -> ignore (Palette.of_lists ~colors:4 [| [ 2; 1 ] |]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Palette.of_lists: color out of range") (fun () ->
      ignore (Palette.of_lists ~colors:2 [| [ 0; 5 ] |]))

let test_palette_filter () =
  let g = Gen.path 3 in
  let p = Palette.filter (Palette.full g 4) (fun _ c -> c mod 2 = 0) in
  Alcotest.(check (list int)) "even only" [ 0; 2 ] (Palette.get p 0)

(* ------------------------------------------------------------------ *)
(* Coloring                                                            *)
(* ------------------------------------------------------------------ *)

let test_coloring_set_unset () =
  let g = Gen.cycle 4 in
  let c = Coloring.create g ~colors:2 in
  Alcotest.(check int) "empty" 0 (Coloring.colored_count c);
  Coloring.set c 0 0;
  Coloring.set c 1 0;
  Coloring.set c 2 0;
  Alcotest.(check int) "three colored" 3 (Coloring.colored_count c);
  Alcotest.(check bool) "closing edge blocked" true
    (Coloring.would_close_cycle c 3 0);
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Coloring.set: would close a cycle") (fun () ->
      Coloring.set c 3 0);
  Coloring.set c 3 1;
  Alcotest.(check (array int)) "all colored" [||] (Coloring.uncolored c);
  Coloring.unset c 3;
  Alcotest.(check (array int)) "edge 3 uncolored" [| 3 |] (Coloring.uncolored c)

let test_coloring_recolor_frees_old_class () =
  let g = Gen.cycle 3 in
  let c = Coloring.create g ~colors:2 in
  Coloring.set c 0 0;
  Coloring.set c 1 0;
  (* recoloring edge 1 must free color 0 for edge 2 *)
  Coloring.set c 1 1;
  Coloring.set c 2 0;
  Alcotest.(check (option int)) "edge 1 moved" (Some 1) (Coloring.color c 1);
  Alcotest.(check (option int)) "edge 2 placed" (Some 0) (Coloring.color c 2)

let test_coloring_path_queries () =
  (* path 0-1-2-3 colored 0; query C(e,0) for the cycle-closing edge 0-3 *)
  let g = G.of_edges 4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  let c = Coloring.create g ~colors:2 in
  Coloring.set c 0 0;
  Coloring.set c 1 0;
  Coloring.set c 2 0;
  (match Coloring.path c 3 0 with
  | Some edges ->
      Alcotest.(check (list int)) "path edges" [ 0; 1; 2 ]
        (List.sort compare edges)
  | None -> Alcotest.fail "expected a path");
  Alcotest.(check (option (list int))) "no path in empty color" None
    (Coloring.path c 3 1);
  (* an edge already colored c is its own path *)
  Alcotest.(check (option (list int))) "self path" (Some [ 1 ])
    (Coloring.path c 1 0)

let test_coloring_component_edges () =
  let g = Gen.path 5 in
  let c = Coloring.create g ~colors:2 in
  Coloring.set c 0 0;
  Coloring.set c 1 0;
  Coloring.set c 3 0;
  Alcotest.(check (list int)) "component of 0" [ 0; 1 ]
    (List.sort compare (Coloring.component_edges c 0 0));
  Alcotest.(check (list int)) "component of 4" [ 3 ]
    (List.sort compare (Coloring.component_edges c 4 0));
  Alcotest.(check (list int)) "isolated in color 1" []
    (Coloring.component_edges c 0 1)

let test_coloring_roundtrip () =
  let g = Gen.complete 5 in
  let c = Coloring.create g ~colors:3 in
  Coloring.set c 0 1;
  Coloring.set c 3 2;
  let c2 = Coloring.of_array g ~colors:3 (Coloring.to_array c) in
  Alcotest.(check (option int)) "copy color 0" (Some 1) (Coloring.color c2 0);
  Alcotest.(check (option int)) "copy color 3" (Some 2) (Coloring.color c2 3);
  Alcotest.(check int) "count" 2 (Coloring.colored_count c2)

let test_coloring_subgraph () =
  let g = Gen.path 4 in
  let c = Coloring.create g ~colors:2 in
  Coloring.set c 0 0;
  Coloring.set c 2 0;
  Coloring.set c 1 1;
  let sub, emap = Coloring.subgraph c 0 in
  Alcotest.(check int) "two edges" 2 (G.m sub);
  Alcotest.(check (array int)) "edge map" [| 0; 2 |] emap

(* property: random set/unset churn keeps classes forests and count right *)
let prop_coloring_churn =
  QCheck.Test.make ~name:"random churn maintains forest invariant" ~count:100
    (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let g = Gen.erdos_renyi st 12 0.4 in
      let colors = 4 in
      let c = Coloring.create g ~colors in
      let reference = Array.make (G.m g) (-1) in
      for _ = 1 to 200 do
        if G.m g > 0 then begin
          let e = Random.State.int st (G.m g) in
          if Random.State.bool st then begin
            let col = Random.State.int st colors in
            if not (Coloring.would_close_cycle c e col) then begin
              Coloring.set c e col;
              reference.(e) <- col
            end
          end
          else begin
            Coloring.unset c e;
            reference.(e) <- -1
          end
        end
      done;
      let matches = ref true in
      Array.iteri
        (fun e r ->
          let got = Coloring.color c e in
          let want = if r < 0 then None else Some r in
          if got <> want then matches := false)
        reference;
      !matches && Nw_decomp.Verify.partial_forest_decomposition c = Ok ())

(* ------------------------------------------------------------------ *)
(* Verifier (incl. failure injection)                                  *)
(* ------------------------------------------------------------------ *)

let star_coloring_of g =
  (* color all edges of a star with one color: a legitimate star forest *)
  let c = Coloring.create g ~colors:1 in
  G.fold_edges (fun e _ _ () -> Coloring.set c e 0) g ();
  c

let test_verify_accepts_valid () =
  let g = Gen.star 4 in
  let c = star_coloring_of g in
  Alcotest.(check bool) "fd ok" true (Verify.forest_decomposition c = Ok ());
  Alcotest.(check bool) "sfd ok" true
    (Verify.star_forest_decomposition c = Ok ());
  Alcotest.(check int) "diameter 2" 2 (Verify.max_forest_diameter c);
  Alcotest.(check int) "one color" 1 (Verify.colors_used c)

let test_verify_rejects_uncolored () =
  let g = Gen.path 3 in
  let c = Coloring.create g ~colors:1 in
  Coloring.set c 0 0;
  (match Verify.forest_decomposition c with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must reject partial coloring");
  Alcotest.(check bool) "partial ok" true
    (Verify.partial_forest_decomposition c = Ok ())

let test_verify_rejects_path3_star () =
  (* a path of 3 edges in one color is a forest but not a star forest *)
  let g = Gen.path 4 in
  let c = Coloring.create g ~colors:1 in
  G.fold_edges (fun e _ _ () -> Coloring.set c e 0) g ();
  Alcotest.(check bool) "fd ok" true (Verify.forest_decomposition c = Ok ());
  match Verify.star_forest_decomposition c with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must reject non-star forest"

let test_verify_palette_violation () =
  let g = Gen.path 3 in
  let c = Coloring.create g ~colors:3 in
  Coloring.set c 0 2;
  let palette = Palette.of_lists ~colors:3 [| [ 0; 1 ]; [ 0; 1 ] |] in
  match Verify.respects_palette c palette with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must reject out-of-palette color"

let test_verify_uses_at_most () =
  let g = Gen.path 3 in
  let c = Coloring.create g ~colors:5 in
  Coloring.set c 0 4;
  Alcotest.(check bool) "within 5" true (Verify.uses_at_most c 5 = Ok ());
  match Verify.uses_at_most c 3 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must reject color 4 >= 3"

let test_verify_orientation () =
  let g = Gen.cycle 4 in
  let o = O.of_total_order g [| 0; 1; 2; 3 |] in
  Alcotest.(check bool) "acyclic" true (Verify.acyclic_orientation o = Ok ());
  Alcotest.(check bool) "outdeg 2" true
    (Verify.orientation_out_degree o 2 = Ok ());
  (match Verify.orientation_out_degree o 1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "vertex 0 has out-degree 2");
  (* make a directed triangle *)
  let g3 = Gen.cycle 3 in
  let heads = Array.init 3 (fun e -> snd (G.endpoints g3 e)) in
  (* cycle edges (0,1),(1,2),(2,0): heads 1,2,0 -> directed cycle *)
  let o3 = O.make g3 heads in
  match Verify.acyclic_orientation o3 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "directed cycle must be rejected"

let test_verify_all_combines () =
  Alcotest.(check bool) "first error wins" true
    (Verify.all [ Ok (); Error "boom"; Error "later" ] = Error "boom");
  Alcotest.(check bool) "all ok" true (Verify.all [ Ok (); Ok () ] = Ok ())


(* ------------------------------------------------------------------ *)
(* Coloring I/O                                                        *)
(* ------------------------------------------------------------------ *)

let test_coloring_io_roundtrip () =
  let g = Gen.complete 5 in
  let c = Coloring.create g ~colors:3 in
  Coloring.set c 0 2;
  Coloring.set c 4 1;
  Coloring.set c 7 0;
  let c' = Nw_decomp.Coloring_io.of_string g (Nw_decomp.Coloring_io.to_string c) in
  Alcotest.(check int) "colors" 3 (Coloring.colors c');
  G.fold_edges
    (fun e _ _ () ->
      Alcotest.(check (option int))
        (Printf.sprintf "edge %d" e)
        (Coloring.color c e) (Coloring.color c' e))
    g ()

let test_coloring_io_rejects_bad () =
  let g = Gen.path 3 in
  let fails s =
    match Nw_decomp.Coloring_io.of_string g s with
    | exception Failure _ -> true
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "no header" true (fails "0 0\n");
  Alcotest.(check bool) "bad edge id" true (fails "colors 2\n9 0\n");
  Alcotest.(check bool) "bad color" true (fails "colors 2\n0 5\n");
  (* a monochromatic cycle must be rejected by the forest invariant *)
  let cyc = Gen.cycle 3 in
  Alcotest.(check bool) "cycle rejected" true
    (match
       Nw_decomp.Coloring_io.of_string cyc "colors 1\n0 0\n1 0\n2 0\n"
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "nw_decomp"
    [
      ( "palette",
        [
          Alcotest.test_case "full" `Quick test_palette_full;
          Alcotest.test_case "validation" `Quick
            test_palette_of_lists_validation;
          Alcotest.test_case "filter" `Quick test_palette_filter;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "set/unset" `Quick test_coloring_set_unset;
          Alcotest.test_case "recolor" `Quick
            test_coloring_recolor_frees_old_class;
          Alcotest.test_case "paths" `Quick test_coloring_path_queries;
          Alcotest.test_case "components" `Quick test_coloring_component_edges;
          Alcotest.test_case "roundtrip" `Quick test_coloring_roundtrip;
          Alcotest.test_case "subgraph" `Quick test_coloring_subgraph;
        ] );
      qsuite "coloring_props" [ prop_coloring_churn ];
      ( "coloring_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_coloring_io_roundtrip;
          Alcotest.test_case "rejects bad" `Quick test_coloring_io_rejects_bad;
        ] );
      ( "verify",
        [
          Alcotest.test_case "accepts valid" `Quick test_verify_accepts_valid;
          Alcotest.test_case "rejects uncolored" `Quick
            test_verify_rejects_uncolored;
          Alcotest.test_case "rejects long star" `Quick
            test_verify_rejects_path3_star;
          Alcotest.test_case "palette violation" `Quick
            test_verify_palette_violation;
          Alcotest.test_case "uses_at_most" `Quick test_verify_uses_at_most;
          Alcotest.test_case "orientation" `Quick test_verify_orientation;
          Alcotest.test_case "all" `Quick test_verify_all_combines;
        ] );
    ]
