(* Degenerate-input robustness: empty graphs, single vertices, edgeless
   graphs, disconnected graphs, and minimal parameters through every
   public entry point. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Arb = Nw_graphs.Arboricity
module Rounds = Nw_localsim.Rounds
module Coloring = Nw_decomp.Coloring
module Palette = Nw_decomp.Palette
module Verify = Nw_decomp.Verify

let rng () = Random.State.make [| 7; 7 |]
let empty = G.of_edges 0 []
let isolated = G.of_edges 5 []
let single_edge = G.of_edges 2 [ (0, 1) ]

let disconnected =
  Gen.disjoint_union (Gen.cycle 4) (Gen.disjoint_union (Gen.path 3) (Gen.complete 4))

let test_graph_basics () =
  Alcotest.(check int) "empty n" 0 (G.n empty);
  Alcotest.(check int) "empty max degree" 0 (G.max_degree empty);
  Alcotest.(check bool) "empty simple" true (G.is_simple empty);
  Alcotest.(check int) "isolated diameter" 0
    (Nw_graphs.Traversal.diameter isolated);
  Alcotest.(check bool) "isolated forest" true
    (Nw_graphs.Traversal.is_forest isolated)

let test_arboricity_degenerate () =
  Alcotest.(check int) "empty density" 0 (Arb.density_lower_bound empty);
  Alcotest.(check int) "isolated density" 0 (Arb.density_lower_bound isolated);
  let k, _ = Arb.pseudo_arboricity isolated in
  Alcotest.(check int) "isolated pseudo-arboricity" 0 k;
  Alcotest.(check int) "empty brute" 0 (Arb.brute_force empty);
  Alcotest.(check int) "single edge brute" 1 (Arb.brute_force single_edge)

let test_gw_degenerate () =
  let a, c = Nw_baseline.Gabow_westermann.arboricity isolated in
  Alcotest.(check int) "isolated arboricity" 0 a;
  Alcotest.(check bool) "empty coloring valid" true
    (Verify.forest_decomposition c = Ok ());
  let a1, c1 = Nw_baseline.Gabow_westermann.arboricity single_edge in
  Alcotest.(check int) "single edge" 1 a1;
  Verify.exn (Verify.forest_decomposition c1)

let test_gw_disconnected () =
  let a, c = Nw_baseline.Gabow_westermann.arboricity disconnected in
  Alcotest.(check int) "disconnected arboricity = max component" 2 a;
  Verify.exn (Verify.forest_decomposition c)

let test_h_partition_degenerate () =
  let rounds = Rounds.create () in
  let hp =
    Nw_core.H_partition.compute isolated ~epsilon:0.5 ~alpha_star:1 ~rounds
  in
  Alcotest.(check int) "isolated: one layer" 1 hp.Nw_core.H_partition.num_layers;
  let hp0 =
    Nw_core.H_partition.compute empty ~epsilon:0.5 ~alpha_star:1 ~rounds
  in
  Alcotest.(check int) "empty: zero layers" 0 hp0.Nw_core.H_partition.num_layers

let test_forest_algo_degenerate () =
  let rounds = Rounds.create () in
  let coloring, stats =
    Nw_core.Forest_algo.forest_decomposition isolated ~epsilon:0.5 ~alpha:1
      ~rng:(rng ()) ~rounds ()
  in
  Alcotest.(check int) "no leftover" 0 stats.Nw_core.Forest_algo.leftover_edges;
  Verify.exn (Verify.forest_decomposition coloring);
  let c1, _ =
    Nw_core.Forest_algo.forest_decomposition single_edge ~epsilon:0.5
      ~alpha:1 ~rng:(rng ()) ~rounds ()
  in
  Verify.exn (Verify.forest_decomposition c1);
  Alcotest.(check int) "one color suffices" 1 (Verify.colors_used c1)

let test_forest_algo_disconnected () =
  let rounds = Rounds.create () in
  let coloring, _ =
    Nw_core.Forest_algo.forest_decomposition disconnected ~epsilon:1.0
      ~alpha:2 ~rng:(rng ()) ~rounds ()
  in
  Verify.exn (Verify.forest_decomposition coloring);
  Alcotest.(check bool) "within 2*alpha" true (Verify.colors_used coloring <= 4)

let test_net_decomp_degenerate () =
  let rounds = Rounds.create () in
  let nd = Nw_core.Net_decomp.compute isolated ~rng:(rng ()) ~rounds ~distance:1 in
  (match Nw_core.Net_decomp.check_valid isolated ~distance:1 nd with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let nd2 =
    Nw_core.Net_decomp.compute disconnected ~rng:(rng ()) ~rounds ~distance:2
  in
  match Nw_core.Net_decomp.check_valid disconnected ~distance:2 nd2 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_diameter_reduction_degenerate () =
  let rounds = Rounds.create () in
  let c = Coloring.create isolated ~colors:1 in
  let reduced, extra =
    Nw_core.Diameter_reduction.reduce c ~target:`Inv_eps ~epsilon:1.0
      ~alpha:1
      ~ids:(Array.init 5 (fun v -> v))
      ~rng:(rng ()) ~rounds
  in
  Alcotest.(check int) "no extra colors" 0 extra;
  Alcotest.(check int) "still empty" 0 (Coloring.colored_count reduced)

let test_star_forest_degenerate () =
  let rounds = Rounds.create () in
  let o = Nw_graphs.Orientation.make single_edge [| 1 |] in
  let sfd, stats =
    Nw_core.Star_forest.sfd single_edge ~epsilon:0.5 ~alpha:1 ~orientation:o
      ~ids:[| 0; 1 |] ~rng:(rng ()) ~rounds
  in
  Verify.exn (Verify.star_forest_decomposition sfd);
  Alcotest.(check int) "all colored" 1 (Coloring.colored_count sfd);
  ignore stats

let test_coloring_zero_colors () =
  let c = Coloring.create single_edge ~colors:0 in
  Alcotest.(check (array int)) "edge uncolored" [| 0 |] (Coloring.uncolored c);
  Alcotest.(check bool) "partial ok" true
    (Verify.partial_forest_decomposition c = Ok ());
  Alcotest.(check int) "colors used" 0 (Verify.colors_used c)

let test_augment_empty_palette () =
  let palette = Palette.of_lists ~colors:1 [| [] |] in
  let coloring = Coloring.create single_edge ~colors:1 in
  match Nw_core.Augmenting.search coloring palette ~start:0 () with
  | Nw_core.Augmenting.Stalled _ -> ()
  | _ -> Alcotest.fail "empty palette must stall"

let test_orientation_empty () =
  let rounds = Rounds.create () in
  let c = Coloring.create isolated ~colors:2 in
  let o = Nw_core.Orient.of_forest_decomposition c ~rounds in
  Alcotest.(check int) "no out-edges" 0
    (Nw_graphs.Orientation.max_out_degree o)

let test_lsfd_edgeless () =
  let rounds = Rounds.create () in
  let palette = Palette.full isolated 4 in
  let c =
    Nw_core.Lsfd.distributed isolated palette ~epsilon:0.5 ~alpha_star:1
      ~rng:(rng ()) ~rounds
  in
  Alcotest.(check int) "nothing colored" 0 (Coloring.colored_count c)

let () =
  Alcotest.run "nw_edge_cases"
    [
      ( "degenerate inputs",
        [
          Alcotest.test_case "graph basics" `Quick test_graph_basics;
          Alcotest.test_case "arboricity" `Quick test_arboricity_degenerate;
          Alcotest.test_case "gabow-westermann" `Quick test_gw_degenerate;
          Alcotest.test_case "gw disconnected" `Quick test_gw_disconnected;
          Alcotest.test_case "h-partition" `Quick test_h_partition_degenerate;
          Alcotest.test_case "forest_algo" `Quick test_forest_algo_degenerate;
          Alcotest.test_case "forest_algo disconnected" `Quick
            test_forest_algo_disconnected;
          Alcotest.test_case "net_decomp" `Quick test_net_decomp_degenerate;
          Alcotest.test_case "diameter reduction" `Quick
            test_diameter_reduction_degenerate;
          Alcotest.test_case "star forest" `Quick test_star_forest_degenerate;
          Alcotest.test_case "zero colors" `Quick test_coloring_zero_colors;
          Alcotest.test_case "empty palette" `Quick test_augment_empty_palette;
          Alcotest.test_case "orientation empty" `Quick test_orientation_empty;
          Alcotest.test_case "lsfd edgeless" `Quick test_lsfd_edgeless;
        ] );
    ]
