(* Golden equivalence suite for the pass-pipeline engine (lib/engine).

   The engine's contract is byte-identity with the hand-written
   composites it replaced: for every algorithm family, the same seed must
   give the same coloring, the same per-label round ledger, the same Obs
   counters, and the same position in the caller's RNG stream. The Obs
   *span tree* is allowed to reshape (passes get their own "pass:*"
   spans); everything else is pinned here. Plus: checkpoint/resume
   determinism, and a chaos crash-restart that demonstrably resumes from
   the last pass-boundary checkpoint (fewer re-charged rounds than a
   from-scratch run) while still passing Verify. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Palette = Nw_decomp.Palette
module Coloring = Nw_decomp.Coloring
module Verify = Nw_decomp.Verify
module Rounds = Nw_localsim.Rounds
module Obs = Nw_obs.Obs
module FA = Nw_core.Forest_algo
module SF = Nw_core.Star_forest
module Engine = Nw_engine.Engine
module Store = Nw_engine.Store
module Artifact = Nw_engine.Artifact
module Pipelines = Nw_engine.Pipelines
module Registry = Nw_engine.Registry
module Run = Nw_engine.Run
module Plan = Nw_chaos.Plan
module Harness = Nw_chaos.Harness

let rng seed = Random.State.make [| seed |]

let gm () = Gen.forest_union (rng 31) 90 3
let gs () = Gen.forest_union_simple (rng 32) 90 3

(* run a thunk with Obs recording on, collecting its trace; recording is
   restored afterwards so the other suites stay unaffected *)
let with_obs f =
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) (fun () ->
      Obs.collect f)

let sorted l = List.sort compare l

(* the golden check: [direct] and [engine] are the same algorithm with
   the same seed; everything observable except the span tree must
   coincide *)
let check_equiv name ~direct ~engine ~coloring_of =
  let run f =
    let st = rng 97 in
    let rounds = Rounds.create () in
    let out, trace = with_obs (fun () -> f ~rng:st ~rounds) in
    (* one extra draw pins the caller's stream position *)
    let probe = Random.State.int st 1_000_000 in
    (out, rounds, trace, probe)
  in
  let out_d, rounds_d, trace_d, probe_d = run direct in
  let out_e, rounds_e, trace_e, probe_e = run engine in
  Alcotest.(check (array (option int)))
    (name ^ ": coloring byte-identical")
    (Coloring.to_array (coloring_of out_d))
    (Coloring.to_array (coloring_of out_e));
  Alcotest.(check (list (pair string int)))
    (name ^ ": round ledger identical")
    (sorted (Rounds.ledger rounds_d))
    (sorted (Rounds.ledger rounds_e));
  Alcotest.(check int)
    (name ^ ": trace rounds identical")
    (Obs.total_rounds trace_d) (Obs.total_rounds trace_e);
  Alcotest.(check (list (pair string int)))
    (name ^ ": Obs counters identical")
    (sorted (Obs.counters trace_d))
    (sorted (Obs.counters trace_e));
  Alcotest.(check int)
    (name ^ ": caller rng stream identical")
    probe_d probe_e

let test_equiv_augment () =
  let g = gm () in
  check_equiv "augment"
    ~direct:(fun ~rng ~rounds ->
      FA.forest_decomposition g ~epsilon:0.5 ~alpha:3 ~rng ~rounds ())
    ~engine:(fun ~rng ~rounds ->
      Run.forest_decomposition g ~epsilon:0.5 ~alpha:3 ~rng ~rounds ())
    ~coloring_of:fst

let test_equiv_partial () =
  let g = gm () in
  let palette = Palette.full g 5 in
  let call f ~rng ~rounds =
    f g palette ~epsilon:0.5 ~alpha:3 ~cut:Nw_core.Cut.Depth_mod
      ~radii:(6, 3) ~rng ~rounds
  in
  check_equiv "partial"
    ~direct:(call FA.decompose_with_leftover)
    ~engine:(call Run.decompose_with_leftover)
    ~coloring_of:(fun (c, _, _) -> c)

let test_equiv_lfd () =
  let g = gm () in
  let palette = Palette.full g 8 in
  check_equiv "lfd"
    ~direct:(fun ~rng ~rounds ->
      FA.list_forest_decomposition g palette ~epsilon:1.0 ~alpha:3 ~rng
        ~rounds ())
    ~engine:(fun ~rng ~rounds ->
      Run.list_forest_decomposition g palette ~epsilon:1.0 ~alpha:3 ~rng
        ~rounds ())
    ~coloring_of:fst

let test_equiv_lsfd () =
  let g = gs () in
  let alpha_star, _ = Nw_graphs.Arboricity.pseudo_arboricity g in
  let k = int_of_float (floor ((4. +. 0.5) *. float_of_int alpha_star)) - 1 in
  let palette = Palette.full g k in
  check_equiv "lsfd"
    ~direct:(fun ~rng ~rounds ->
      Nw_core.Lsfd.distributed g palette ~epsilon:0.5 ~alpha_star ~rng
        ~rounds)
    ~engine:(fun ~rng ~rounds ->
      Run.lsfd_distributed g palette ~epsilon:0.5 ~alpha_star ~rng ~rounds)
    ~coloring_of:Fun.id

let sfd_fixture () =
  let g = gs () in
  let alpha, fd = Nw_baseline.Gabow_westermann.arboricity g in
  let rounds = Rounds.create () in
  let orientation = Nw_core.Orient.of_forest_decomposition fd ~rounds in
  let ids = Array.init (G.n g) (fun v -> v) in
  (g, alpha, orientation, ids)

let test_equiv_sfd () =
  let g, alpha, orientation, ids = sfd_fixture () in
  check_equiv "sfd"
    ~direct:(fun ~rng ~rounds ->
      SF.sfd g ~epsilon:0.25 ~alpha ~orientation ~ids ~rng ~rounds)
    ~engine:(fun ~rng ~rounds ->
      Run.sfd g ~epsilon:0.25 ~alpha ~orientation ~ids ~rng ~rounds)
    ~coloring_of:fst

let test_equiv_star_lsfd () =
  (* Lemma 5.3 needs alpha >> log Delta and generous palettes; mirror the
     exp_sfd fixture (alpha 16, palettes of size 48 out of 56) *)
  let g = Gen.forest_union_simple (rng 33) 100 16 in
  let _, fd = Nw_baseline.Gabow_westermann.arboricity g in
  let orientation =
    Nw_core.Orient.of_forest_decomposition fd ~rounds:(Rounds.create ())
  in
  let colors = 56 in
  let lists = Gen.list_palettes (rng 55) g ~colors ~size:48 in
  let palette = Palette.of_lists ~colors lists in
  check_equiv "star-lsfd"
    ~direct:(fun ~rng ~rounds ->
      SF.lsfd g palette ~epsilon:0.5 ~orientation ~rng ~rounds)
    ~engine:(fun ~rng ~rounds ->
      Run.star_lsfd g palette ~epsilon:0.5 ~orientation ~rng ~rounds)
    ~coloring_of:fst

(* orientation/pseudo yield no coloring; compare the yields directly
   plus ledger/counters/stream via a dummy coloring *)
let test_equiv_orientation () =
  let g = gm () in
  let run f =
    let st = rng 97 in
    let rounds = Rounds.create () in
    let (o, stats), trace =
      with_obs (fun () -> f g ~epsilon:0.5 ~alpha:3 ~rng:st ~rounds ())
    in
    ( Array.init (G.n g) (Nw_graphs.Orientation.out_degree o),
      stats,
      sorted (Rounds.ledger rounds),
      sorted (Obs.counters trace),
      Random.State.int st 1_000_000 )
  in
  let d =
    run (fun g ~epsilon ~alpha ~rng ~rounds () ->
        Nw_core.Orient.orientation g ~epsilon ~alpha ~rng ~rounds ())
  in
  let e =
    run (fun g ~epsilon ~alpha ~rng ~rounds () ->
        Run.orientation g ~epsilon ~alpha ~rng ~rounds ())
  in
  Alcotest.(check bool) "orientation: identical observables" true (d = e)

let test_equiv_pseudo () =
  let g = gm () in
  let run f =
    let st = rng 97 in
    let rounds = Rounds.create () in
    let out, trace =
      with_obs (fun () -> f g ~epsilon:0.5 ~alpha:3 ~rng:st ~rounds ())
    in
    ( out,
      sorted (Rounds.ledger rounds),
      sorted (Obs.counters trace),
      Random.State.int st 1_000_000 )
  in
  let d = run Nw_core.Pseudo_forest.decompose in
  let e = run Run.pseudo in
  Alcotest.(check bool) "pseudo: identical observables" true (d = e)

(* --- checkpoint/resume --------------------------------------------- *)

let augment_pipeline g =
  match Registry.find "augment" with
  | Some e -> e.Registry.build { Registry.graph = g; epsilon = 0.5; alpha = 3 }
  | None -> Alcotest.fail "augment not registered"

let test_resume_determinism () =
  let g = gm () in
  let pipeline = augment_pipeline g in
  let init = Store.put Store.empty "graph" (Artifact.Graph g) in
  let checkpoints = ref [] in
  let full_rounds = Rounds.create () in
  let ctx = Engine.ctx ~rng:(rng 7) ~rounds:full_rounds in
  let full =
    Engine.run ~checkpoint:(fun ck -> checkpoints := ck :: !checkpoints) ctx
      pipeline ~init
  in
  Alcotest.(check int)
    "one checkpoint per pass"
    (List.length pipeline.Engine.passes)
    (List.length !checkpoints);
  (* resuming from *every* checkpoint reproduces the final coloring and
     recharges only the remaining passes' rounds *)
  List.iter
    (fun ck ->
      let rounds = Rounds.create () in
      let ctx' = Engine.ctx ~rng:(rng 12345) ~rounds in
      let resumed = Engine.run ~resume:ck ctx' pipeline ~init:Store.empty in
      Alcotest.(check (array (option int)))
        (Printf.sprintf "resume@%d: coloring identical" ck.Engine.ck_completed)
        (Coloring.to_array (Store.coloring full "coloring"))
        (Coloring.to_array (Store.coloring resumed "coloring"));
      if ck.Engine.ck_completed = List.length pipeline.Engine.passes then
        Alcotest.(check int)
          "resume@end: nothing recharged" 0 (Rounds.total rounds)
      else
        Alcotest.(check bool)
          (Printf.sprintf "resume@%d: no more rounds than full run"
             ck.Engine.ck_completed)
          true
          (Rounds.total rounds <= Rounds.total full_rounds))
    !checkpoints

let test_resume_wrong_pipeline () =
  let g = gm () in
  let pipeline = augment_pipeline g in
  let init = Store.put Store.empty "graph" (Artifact.Graph g) in
  let checkpoints = ref [] in
  let ctx = Engine.ctx ~rng:(rng 7) ~rounds:(Rounds.create ()) in
  ignore
    (Engine.run
       ~checkpoint:(fun ck -> checkpoints := ck :: !checkpoints)
       ctx pipeline ~init);
  let ck = List.hd !checkpoints in
  let other = Pipelines.pseudo g ~epsilon:0.5 ~alpha:3 in
  let ctx' = Engine.ctx ~rng:(rng 7) ~rounds:(Rounds.create ()) in
  match Engine.run ~resume:ck ctx' other ~init:Store.empty with
  | _ -> Alcotest.fail "checkpoint from another pipeline accepted"
  | exception Engine.Engine_error _ -> ()

(* --- chaos crash-restart via checkpoints --------------------------- *)

(* The star pipeline's only message-kernel passes sit in its final pass
   (sfd.append: H-partition peel + Cole-Vishkin), so a total message
   drop lets passes 0-3 complete — saving checkpoints — and stalls the
   last one. With decay 0 the retry is fault-free: it must resume from
   the pass-4 boundary, recharge strictly fewer rounds than a
   from-scratch run, and still produce the from-scratch coloring. *)
let test_chaos_resume () =
  let g = gs () in
  let alpha, _ = Nw_baseline.Gabow_westermann.arboricity g in
  let entry =
    match Registry.find "star" with
    | Some e -> e
    | None -> Alcotest.fail "star not registered"
  in
  let pipeline =
    entry.Registry.build { Registry.graph = g; epsilon = 0.5; alpha }
  in
  let init = Store.put Store.empty "graph" (Artifact.Graph g) in
  (* from-scratch fault-free baseline *)
  let baseline_rounds = Rounds.create () in
  let (_ : Store.t) =
    Engine.run
      (Engine.ctx ~rng:(rng 3) ~rounds:baseline_rounds)
      pipeline ~init
  in
  let attempt_rounds = ref [] in
  let run ~resume ~save =
    let rounds = Rounds.create () in
    let ctx = Engine.ctx ~rng:(rng 3) ~rounds in
    Fun.protect
      ~finally:(fun () ->
        attempt_rounds := Rounds.total rounds :: !attempt_rounds)
      (fun () -> Engine.run ?resume ~checkpoint:save ctx pipeline ~init)
  in
  let verify store =
    Verify.star_forest_decomposition (Store.coloring store "coloring")
  in
  let plan = Result.get_ok (Plan.of_string "drop=1.0") in
  let report =
    Harness.run_epochs_resumable ~plan ~seed:2 ~epochs:1
      ~policy:{ Harness.max_retries = 1; decay = 0.0 }
      ~verify ~run ()
  in
  Alcotest.(check int) "epoch ends valid" 1 report.Harness.valid;
  Alcotest.(check int) "recovery counted" 1 report.Harness.recoveries;
  (match report.Harness.epochs with
  | [ ep ] ->
      Alcotest.(check int) "two attempts" 2 (List.length ep.Harness.attempts);
      (match ep.Harness.attempts with
      | [ a0; a1 ] ->
          Alcotest.(check string)
            "attempt 0 crashes detectably" "detected"
            (Harness.outcome_label a0.Harness.outcome);
          Alcotest.(check string)
            "attempt 1 valid" "valid"
            (Harness.outcome_label a1.Harness.outcome)
      | _ -> Alcotest.fail "expected exactly two attempts")
  | _ -> Alcotest.fail "expected exactly one epoch");
  match !attempt_rounds with
  | [ resumed; _crashed ] ->
      Alcotest.(check bool)
        (Printf.sprintf
           "resumed attempt recharges fewer rounds (%d < full %d)" resumed
           (Rounds.total baseline_rounds))
        true
        (resumed < Rounds.total baseline_rounds);
      Alcotest.(check bool) "resumed attempt recharges something" true
        (resumed > 0)
  | _ -> Alcotest.fail "expected two recorded attempts"

(* the resumed coloring equals the from-scratch one: re-run the scenario
   keeping the final store *)
let test_chaos_resume_coloring () =
  let g = gs () in
  let alpha, _ = Nw_baseline.Gabow_westermann.arboricity g in
  let entry = Option.get (Registry.find "star") in
  let pipeline =
    entry.Registry.build { Registry.graph = g; epsilon = 0.5; alpha }
  in
  let init = Store.put Store.empty "graph" (Artifact.Graph g) in
  let baseline =
    Engine.run
      (Engine.ctx ~rng:(rng 3) ~rounds:(Rounds.create ()))
      pipeline ~init
  in
  let last = ref None in
  let run ~resume ~save =
    let ctx = Engine.ctx ~rng:(rng 3) ~rounds:(Rounds.create ()) in
    let store = Engine.run ?resume ~checkpoint:save ctx pipeline ~init in
    last := Some store;
    store
  in
  let verify store =
    Verify.star_forest_decomposition (Store.coloring store "coloring")
  in
  let plan = Result.get_ok (Plan.of_string "drop=1.0") in
  ignore
    (Harness.run_epochs_resumable ~plan ~seed:2 ~epochs:1
       ~policy:{ Harness.max_retries = 1; decay = 0.0 }
       ~verify ~run ());
  match !last with
  | None -> Alcotest.fail "no attempt completed"
  | Some store ->
      Alcotest.(check (array (option int)))
        "resumed coloring equals from-scratch coloring"
        (Coloring.to_array (Store.coloring baseline "coloring"))
        (Coloring.to_array (Store.coloring store "coloring"))

let () =
  Alcotest.run "engine"
    [
      ( "golden equivalence",
        [
          Alcotest.test_case "augment" `Quick test_equiv_augment;
          Alcotest.test_case "partial" `Quick test_equiv_partial;
          Alcotest.test_case "lfd" `Quick test_equiv_lfd;
          Alcotest.test_case "lsfd" `Quick test_equiv_lsfd;
          Alcotest.test_case "sfd" `Quick test_equiv_sfd;
          Alcotest.test_case "star-lsfd" `Quick test_equiv_star_lsfd;
          Alcotest.test_case "orientation" `Quick test_equiv_orientation;
          Alcotest.test_case "pseudo" `Quick test_equiv_pseudo;
        ] );
      ( "checkpoint/resume",
        [
          Alcotest.test_case "determinism" `Quick test_resume_determinism;
          Alcotest.test_case "wrong pipeline rejected" `Quick
            test_resume_wrong_pipeline;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "crash-restart resumes" `Quick test_chaos_resume;
          Alcotest.test_case "resumed coloring identical" `Quick
            test_chaos_resume_coloring;
        ] );
    ]
