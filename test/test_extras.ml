(* Tests for graph I/O, pseudo-forest decompositions, and the recoloring
   helpers. *)

module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators
module Io = Nw_graphs.Graph_io
module Verify = Nw_decomp.Verify
module Coloring = Nw_decomp.Coloring
module Rounds = Nw_localsim.Rounds

let rng seed = Random.State.make [| seed; 555 |]

(* ------------------------------------------------------------------ *)
(* Graph I/O                                                           *)
(* ------------------------------------------------------------------ *)

let test_io_roundtrip () =
  let g = Gen.forest_union (rng 1) 30 3 in
  let g' = Io.parse_edge_list (Io.to_edge_list g) in
  Alcotest.(check int) "n" (G.n g) (G.n g');
  Alcotest.(check int) "m" (G.m g) (G.m g');
  Alcotest.(check bool) "edges equal" true (G.edges g = G.edges g')

let test_io_parses_comments_and_header () =
  let g = Io.parse_edge_list "# a comment\nn 5\n0 1\n1 2 # trailing\n\n3 4\n" in
  Alcotest.(check int) "n from header" 5 (G.n g);
  Alcotest.(check int) "m" 3 (G.m g)

let test_io_infers_n () =
  let g = Io.parse_edge_list "0 1\n1 7\n" in
  Alcotest.(check int) "n inferred" 8 (G.n g)

let test_io_rejects_malformed () =
  let fails s =
    match Io.parse_edge_list s with
    | exception Failure _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "garbage" true (fails "0 x\n");
  Alcotest.(check bool) "three fields" true (fails "0 1 2\n");
  Alcotest.(check bool) "out of range" true (fails "n 2\n0 5\n");
  Alcotest.(check bool) "duplicate header" true (fails "n 2\nn 3\n")

let test_io_dot () =
  let g = Gen.path 3 in
  let c = Coloring.create g ~colors:2 in
  Coloring.set c 0 0;
  Coloring.set c 1 1;
  let dot = Io.to_dot g ~edge_color:(fun e -> Coloring.color c e) in
  Alcotest.(check bool) "mentions edge" true
    (String.length dot > 0
    && String.index_opt dot '{' <> None
    && String.index_opt dot '}' <> None)

(* ------------------------------------------------------------------ *)
(* Pseudo-forests                                                      *)
(* ------------------------------------------------------------------ *)

let test_pseudo_forest_verifier () =
  (* a cycle in one class is a pseudo-forest (one cycle per component) *)
  let g = Gen.cycle 5 in
  let assignment = Array.make 5 0 in
  Alcotest.(check bool) "cycle ok" true
    (Verify.pseudo_forest_assignment g assignment ~k:1 = Ok ());
  (* theta graph: two vertices joined by 3 parallel edges = 2 cycles in one
     component: not a pseudo-forest *)
  let theta = G.of_edges 2 [ (0, 1); (0, 1); (0, 1) ] in
  match Verify.pseudo_forest_assignment theta (Array.make 3 0) ~k:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "theta graph is not a pseudo-forest"

let test_pseudo_forest_of_orientation () =
  let g = Gen.complete 7 in
  let _, o = Nw_graphs.Arboricity.pseudo_arboricity g in
  let assignment, k = Nw_core.Pseudo_forest.of_orientation o in
  Alcotest.(check bool) "k = max out-degree" true
    (k = Nw_graphs.Orientation.max_out_degree o);
  match Verify.pseudo_forest_assignment g assignment ~k with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_pseudo_forest_end_to_end () =
  let st = rng 2 in
  let g = Gen.forest_union st 60 4 in
  let rounds = Rounds.create () in
  let assignment, k =
    Nw_core.Pseudo_forest.decompose g ~epsilon:1.0 ~alpha:4 ~rng:st ~rounds ()
  in
  ignore assignment;
  (* (1+eps)*alpha plus leftover slack *)
  Alcotest.(check bool) "k bounded" true (k <= 8)

(* ------------------------------------------------------------------ *)
(* Recolor helpers                                                     *)
(* ------------------------------------------------------------------ *)

let test_recolor_append_forests () =
  let st = rng 3 in
  let g = Gen.forest_union st 50 3 in
  (* color half the edges exactly, leave the rest as 'removed' *)
  let base = Coloring.create g ~colors:3 in
  let removed = Array.make (G.m g) false in
  G.fold_edges
    (fun e _ _ () ->
      if e mod 2 = 0 then begin
        let rec try_color c =
          if c < 3 then
            if Coloring.would_close_cycle base e c then try_color (c + 1)
            else Coloring.set base e c
          else removed.(e) <- true
        in
        try_color 0
      end
      else removed.(e) <- true)
    g ();
  let rounds = Rounds.create () in
  let out, fresh = Nw_core.Recolor.append_forests base removed ~rounds in
  Alcotest.(check bool) "fresh colors added" true (fresh > 0);
  Verify.exn (Verify.forest_decomposition out);
  (* base colors preserved *)
  G.fold_edges
    (fun e _ _ () ->
      match Coloring.color base e with
      | Some c ->
          Alcotest.(check (option int)) "preserved" (Some c)
            (Coloring.color out e)
      | None -> ())
    g ()

let test_recolor_append_stars () =
  let st = rng 4 in
  let g = Gen.forest_union st 50 3 in
  let base = Coloring.create g ~colors:1 in
  let removed = Array.make (G.m g) true in
  let rounds = Rounds.create () in
  let ids = Array.init (G.n g) (fun v -> v) in
  let out, fresh = Nw_core.Recolor.append_stars base removed ~ids ~rounds in
  Alcotest.(check bool) "fresh colors" true (fresh > 0);
  Verify.exn (Verify.star_forest_decomposition out)

let test_recolor_noop () =
  let g = Gen.path 4 in
  let base = Coloring.create g ~colors:1 in
  G.fold_edges (fun e _ _ () -> Coloring.set base e 0) g ();
  let removed = Array.make (G.m g) false in
  let rounds = Rounds.create () in
  let out, fresh = Nw_core.Recolor.append_forests base removed ~rounds in
  Alcotest.(check int) "no fresh colors" 0 fresh;
  Alcotest.(check int) "same object semantics" (Coloring.colors base)
    (Coloring.colors out)


(* ------------------------------------------------------------------ *)
(* API corners                                                         *)
(* ------------------------------------------------------------------ *)

let test_augment_apply_guards () =
  let g = Gen.path 3 in
  let c = Coloring.create g ~colors:2 in
  Alcotest.check_raises "empty sequence"
    (Invalid_argument "Augmenting.apply: empty sequence") (fun () ->
      Nw_core.Augmenting.apply c []);
  Coloring.set c 0 0;
  Alcotest.check_raises "colored head"
    (Invalid_argument "Augmenting.apply: head edge is colored") (fun () ->
      Nw_core.Augmenting.apply c [ (0, 1) ])

let test_coloring_of_array_rejects_cycle () =
  let g = Gen.cycle 3 in
  Alcotest.(check bool) "cycle rejected" true
    (match Coloring.of_array g ~colors:1 [| Some 0; Some 0; Some 0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_orientation_reorient () =
  let module O = Nw_graphs.Orientation in
  let g = Gen.path 3 in
  let o = O.make g [| 1; 2 |] in
  Alcotest.(check int) "out-degree of middle" 1 (O.out_degree o 1);
  let o' = O.reorient o 1 1 in
  Alcotest.(check int) "edge flipped" 1 (O.head o' 1);
  Alcotest.(check int) "original untouched" 2 (O.head o 1);
  Alcotest.check_raises "bad head"
    (Invalid_argument "Orientation.reorient: bad head") (fun () ->
      ignore (O.reorient o 1 0))

let test_rounds_pp () =
  let r = Rounds.create () in
  Rounds.charge r ~label:"phase-a" 3;
  let printed = Format.asprintf "%a" Rounds.pp r in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec scan i =
      i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "mentions total" true
    (contains "total rounds: 3" printed && contains "phase-a" printed)

let test_theta_parallel () =
  (* len = 1 collapses every path to a hub-hub parallel edge *)
  let g = Gen.theta_graph 3 1 in
  Alcotest.(check int) "n" 2 (G.n g);
  Alcotest.(check int) "m" 3 (G.m g);
  Alcotest.(check bool) "not simple" false (G.is_simple g);
  Alcotest.(check int) "arboricity 3" 3 (Nw_graphs.Arboricity.brute_force g)

let test_cut_accessors () =
  let g = Gen.forest_union (rng 9) 40 3 in
  let rounds = Rounds.create () in
  let sampled =
    Nw_core.Cut.create g (Nw_core.Cut.Sampled 0.5) ~epsilon:1.0 ~alpha:3
      ~radius:20 ~num_classes:4 ~rng:(rng 10) ~rounds
  in
  Alcotest.(check bool) "p present" true
    (Nw_core.Cut.sampling_probability sampled <> None);
  Alcotest.(check (option int)) "cap = ceil(eps*alpha)" (Some 3)
    (Nw_core.Cut.overload_cap sampled);
  Alcotest.(check bool) "counters start at 0" true
    (match Nw_core.Cut.load_counters sampled with
    | Some c -> Array.for_all (fun x -> x = 0) c
    | None -> false);
  let depth_mod =
    Nw_core.Cut.create g Nw_core.Cut.Depth_mod ~epsilon:1.0 ~alpha:3
      ~radius:20 ~num_classes:4 ~rng:(rng 11) ~rounds
  in
  Alcotest.(check (option int)) "no counters for depth-mod" None
    (Nw_core.Cut.overload_cap depth_mod)

let test_file_io_roundtrip () =
  let g = Gen.forest_union (rng 12) 20 2 in
  let path = Filename.temp_file "nw_test" ".txt" in
  Io.write_edge_list path g;
  let g' = Io.read_edge_list path in
  Sys.remove path;
  Alcotest.(check bool) "same edges" true (G.edges g = G.edges g')

let () =
  Alcotest.run "nw_extras"
    [
      ( "graph_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "comments/header" `Quick
            test_io_parses_comments_and_header;
          Alcotest.test_case "infers n" `Quick test_io_infers_n;
          Alcotest.test_case "malformed" `Quick test_io_rejects_malformed;
          Alcotest.test_case "dot" `Quick test_io_dot;
        ] );
      ( "pseudo_forest",
        [
          Alcotest.test_case "verifier" `Quick test_pseudo_forest_verifier;
          Alcotest.test_case "of orientation" `Quick
            test_pseudo_forest_of_orientation;
          Alcotest.test_case "end to end" `Quick test_pseudo_forest_end_to_end;
        ] );
      ( "api_corners",
        [
          Alcotest.test_case "augment guards" `Quick test_augment_apply_guards;
          Alcotest.test_case "of_array cycle" `Quick
            test_coloring_of_array_rejects_cycle;
          Alcotest.test_case "reorient" `Quick test_orientation_reorient;
          Alcotest.test_case "rounds pp" `Quick test_rounds_pp;
          Alcotest.test_case "theta parallel" `Quick test_theta_parallel;
          Alcotest.test_case "cut accessors" `Quick test_cut_accessors;
          Alcotest.test_case "file io" `Quick test_file_io_roundtrip;
        ] );
      ( "recolor",
        [
          Alcotest.test_case "append forests" `Quick
            test_recolor_append_forests;
          Alcotest.test_case "append stars" `Quick test_recolor_append_stars;
          Alcotest.test_case "noop" `Quick test_recolor_noop;
        ] );
    ]
