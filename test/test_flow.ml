(* nwlint-flow tests: each interprocedural rule fires on its fixture
   under test/fixtures/flow; the shipped lib/ tree is flow-clean; the
   contract verifier covers every registry pipeline; a deliberately
   injected shared-ref write inside a real Dpool shard lambda is
   caught (the "would @lint-deep fail?" drill); suppressions, the
   summary cache, and the baseline ratchet round-trip. *)

module D = Nwlint_core.Diagnostic
module Engine = Nwlint_core.Engine
module E = Nwlint_flow.Effects
module Flow = Nwlint_flow.Flow

let find_root () =
  let rec up dir depth =
    if depth > 6 then None
    else if
      Sys.file_exists (Filename.concat dir "lib")
      && Sys.is_directory (Filename.concat dir "lib")
      && Sys.file_exists (Filename.concat dir "dune-project")
    then Some dir
    else up (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  up (Sys.getcwd ()) 0

let repo_root () =
  match find_root () with
  | Some r -> r
  | None -> Alcotest.fail "could not locate the repo root from the test cwd"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lib_sources () =
  let lib = Filename.concat (repo_root ()) "lib" in
  Engine.collect_files [ lib ]
  |> List.filter (fun p -> Filename.check_suffix p ".ml")
  |> List.map (fun p -> (p, read_file p))

let fixtures_dir () =
  (* the dune (source_tree fixtures) dep places them next to the cwd *)
  if Sys.file_exists "fixtures/flow" then "fixtures/flow"
  else Filename.concat (repo_root ()) "test/fixtures/flow"

let fixture_findings () =
  let dir = fixtures_dir () in
  let sources =
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
    |> List.map (fun f ->
           let p = Filename.concat dir f in
           (p, read_file p))
  in
  Alcotest.(check bool) "fixtures present" true (List.length sources >= 4);
  (Flow.analyze_sources sources).Flow.findings

let with_rule rule ds = List.filter (fun d -> d.D.rule = rule) ds

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  nl = 0 || at 0

let assert_finding ds rule fragment =
  Alcotest.(check bool)
    (Printf.sprintf "%s finding mentioning %S" rule fragment)
    true
    (List.exists
       (fun d -> d.D.rule = rule && contains ~needle:fragment d.D.message)
       ds)

(* --- fixtures: every rule fires ----------------------------------- *)

let race001_fixture () =
  let ds = fixture_findings () in
  assert_finding ds "RACE001" "Race001.total";
  assert_finding ds "RACE001" "Race001.seen";
  assert_finding ds "RACE001" "Dpool.run callback";
  assert_finding ds "RACE001" "~recv callback"

let race002_fixture () =
  let ds = fixture_findings () in
  assert_finding ds "RACE002" "Race002.make_key";
  assert_finding ds "RACE002" "Race002.merge_results";
  (* the top-level key itself is sanctioned *)
  Alcotest.(check int) "exactly two RACE002 findings" 2
    (List.length (with_rule "RACE002" ds))

let contract001_fixture () =
  let ds = fixture_findings () in
  assert_finding ds "CONTRACT001" "reads artifact \"hidden\"";
  assert_finding ds "CONTRACT001" "writes artifact \"coloring\"";
  assert_finding ds "CONTRACT001" "declares write of \"mask\""

let eff001_fixture () =
  let ds = fixture_findings () in
  Alcotest.(check bool)
    "EFF001 fires on the noisy pass" true
    (List.exists
       (fun d -> d.D.rule = "EFF001" && contains ~needle:"fixture.noisy" d.D.message)
       ds)

(* --- the shipped lib/ tree is flow-clean -------------------------- *)

let lib_result = lazy (Flow.analyze_sources (lib_sources ()))

let lib_clean () =
  let r = Lazy.force lib_result in
  Alcotest.(check (list string))
    "nwlint --flow is clean on the repo's own lib/" []
    (List.map D.to_text r.Flow.findings)

let registry_names =
  [
    "exact"; "greedy"; "be"; "augment"; "star"; "amr-star"; "lsfd";
    "orientation"; "pseudo";
  ]

let contract_coverage () =
  let r = Lazy.force lib_result in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "pipeline %S contract-verified" name)
        true
        (List.mem name r.Flow.pipelines))
    registry_names;
  Alcotest.(check bool) "all pass bodies analyzed" true (r.Flow.pass_count >= 20)

(* --- injected race: a shared-ref write inside a real Dpool shard --- *)

let replace ~first ~needle ~by s =
  let nl = String.length needle in
  let rec at i =
    if i + nl > String.length s then None
    else if String.sub s i nl = needle then Some i
    else at (i + 1)
  in
  match at 0 with
  | None -> Alcotest.fail (Printf.sprintf "anchor %S not found" needle)
  | Some i ->
      ignore first;
      String.sub s 0 i ^ by ^ String.sub s (i + nl) (String.length s - i - nl)

let injected_race () =
  let sources = lib_sources () in
  let mutated =
    List.map
      (fun (path, content) ->
        if Filename.basename path <> "msg_net.ml" then (path, content)
        else
          let content =
            replace ~first:true ~needle:"  let plain_step_par"
              ~by:"  let leaked_total = ref 0\n\n  let plain_step_par" content
          in
          let content =
            replace ~first:true ~needle:"let c = ref 0 in"
              ~by:"let c = ref 0 in\n        incr leaked_total;" content
          in
          (path, content))
      sources
  in
  let r = Flow.analyze_sources mutated in
  Alcotest.(check bool)
    "injected shard write to a shared ref is caught" true
    (List.exists
       (fun d ->
         d.D.rule = "RACE001" && contains ~needle:"leaked_total" d.D.message)
       r.Flow.findings)

(* --- EFF001 pure roots -------------------------------------------- *)

let pure_root_eff001 () =
  let config =
    { E.default_config with E.pure_roots = [ "Helper." ] }
  in
  let r =
    Flow.analyze_sources ~config
      [
        ( "helper.ml",
          "let shout x = print_endline x\nlet check x = shout x" );
      ]
  in
  Alcotest.(check bool)
    "IO under a declared-pure root is flagged" true
    (List.exists
       (fun d -> d.D.rule = "EFF001" && contains ~needle:"Helper.check" d.D.message)
       r.Flow.findings)

(* --- suppressions -------------------------------------------------- *)

let race_src =
  "(* nwlint:disable RACE001 -- fixture: demonstrating suppression *)\n\
   let total = ref 0\n\
   let shard xs = Nw_localsim.Dpool.run ~domains:2 (fun _ -> total := List.length xs)\n"

let flow_suppression () =
  let r = Flow.analyze_sources [ ("supp.ml", race_src) ] in
  Alcotest.(check (list string))
    "file-scoped disable silences the flow finding" []
    (List.map D.to_text r.Flow.findings)

let no_supp002_for_flow_rules () =
  (* the per-file engine cannot see flow findings, so it must not flag
     a flow-rule suppression as unused *)
  let ds = Engine.lint_string ~path:"lib/core/fixture.ml" race_src in
  Alcotest.(check (list string))
    "no SUPP002 for a flow-rule directive" []
    (List.map D.to_text (List.filter (fun d -> d.D.rule = "SUPP002") ds))

(* --- summary cache round-trip -------------------------------------- *)

let cache_roundtrip () =
  let r = Lazy.force lib_result in
  let json = Flow.result_to_json "digest0" r in
  match Flow.result_of_json ~digest:"digest0" json with
  | None -> Alcotest.fail "cache round-trip failed to parse"
  | Some r2 ->
      Alcotest.(check int) "findings survive" (List.length r.Flow.findings)
        (List.length r2.Flow.findings);
      Alcotest.(check int) "functions survive" r.Flow.function_count
        r2.Flow.function_count;
      Alcotest.(check (list string)) "pipelines survive" r.Flow.pipelines
        r2.Flow.pipelines;
      Alcotest.(check bool) "digest mismatch invalidates" true
        (Flow.result_of_json ~digest:"other" json = None)

(* --- baseline ratchet ---------------------------------------------- *)

let baseline_ratchet () =
  let mk rule =
    D.make ~file:"f.ml" ~line:1 ~col:0 ~rule ~severity:D.Error ~message:"m" ()
  in
  let path = Filename.temp_file "nwlint" ".baseline.json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Flow.write_baseline path ~diags:[ mk "RACE001" ] ~suppressions:2;
      match Flow.load_baseline path with
      | Error msg -> Alcotest.fail msg
      | Ok b ->
          let reg, imp =
            Flow.compare_baseline b ~diags:[ mk "RACE001" ] ~suppressions:2
          in
          Alcotest.(check (list string)) "steady state is quiet" [] reg;
          Alcotest.(check (list string)) "no improvements either" [] imp;
          let reg, _ =
            Flow.compare_baseline b
              ~diags:[ mk "RACE001"; mk "RACE001" ]
              ~suppressions:2
          in
          Alcotest.(check bool) "finding growth regresses" true (reg <> []);
          let reg, _ =
            Flow.compare_baseline b ~diags:[ mk "RACE001" ] ~suppressions:3
          in
          Alcotest.(check bool) "suppression growth regresses" true (reg <> []);
          let reg, imp =
            Flow.compare_baseline b ~diags:[] ~suppressions:1
          in
          Alcotest.(check (list string)) "improvement is not a failure" [] reg;
          Alcotest.(check bool) "improvement is reported" true (imp <> []))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "nwlint-flow"
    [
      ( "fixtures",
        [
          tc "RACE001 fires" race001_fixture;
          tc "RACE002 fires" race002_fixture;
          tc "CONTRACT001 fires" contract001_fixture;
          tc "EFF001 fires" eff001_fixture;
        ] );
      ( "lib",
        [
          tc "repo lib/ is flow-clean" lib_clean;
          tc "registry contract coverage" contract_coverage;
          tc "injected shard race is caught" injected_race;
        ] );
      ( "config",
        [
          tc "pure-root EFF001" pure_root_eff001;
          tc "flow suppression filters" flow_suppression;
          tc "no SUPP002 for flow rules" no_supp002_for_flow_rules;
        ] );
      ( "persistence",
        [
          tc "cache round-trip" cache_roundtrip;
          tc "baseline ratchet" baseline_ratchet;
        ] );
    ]
