(* Unit and property tests for the nw_graphs substrate. *)

module G = Nw_graphs.Multigraph
module UF = Nw_graphs.Union_find
module T = Nw_graphs.Traversal
module Gen = Nw_graphs.Generators
module Arb = Nw_graphs.Arboricity
module Deg = Nw_graphs.Degeneracy
module O = Nw_graphs.Orientation

let rng seed = Random.State.make [| seed; 0x5eed |]

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)
(* ------------------------------------------------------------------ *)

let test_uf_basic () =
  let uf = UF.create 5 in
  Alcotest.(check int) "initial classes" 5 (UF.count uf);
  Alcotest.(check bool) "union 0 1" true (UF.union uf 0 1);
  Alcotest.(check bool) "union 0 1 again" false (UF.union uf 0 1);
  Alcotest.(check bool) "same 0 1" true (UF.same uf 0 1);
  Alcotest.(check bool) "not same 0 2" false (UF.same uf 0 2);
  Alcotest.(check int) "classes after one union" 4 (UF.count uf);
  UF.reset uf;
  Alcotest.(check int) "classes after reset" 5 (UF.count uf)

let test_uf_copy_independent () =
  let uf = UF.create 4 in
  ignore (UF.union uf 0 1);
  let uf2 = UF.copy uf in
  ignore (UF.union uf2 2 3);
  Alcotest.(check bool) "copy has merge" true (UF.same uf2 2 3);
  Alcotest.(check bool) "original unaffected" false (UF.same uf 2 3)

(* Naive reference implementation: label propagation over pairs. *)
let uf_matches_naive pairs n =
  let uf = UF.create n in
  let label = Array.init n (fun i -> i) in
  List.iter
    (fun (x, y) ->
      ignore (UF.union uf x y);
      let lx = label.(x) and ly = label.(y) in
      if lx <> ly then
        Array.iteri (fun i l -> if l = ly then label.(i) <- lx) label)
    pairs;
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if UF.same uf i j <> (label.(i) = label.(j)) then ok := false
    done
  done;
  !ok

let prop_uf_vs_naive =
  QCheck.Test.make ~name:"union-find agrees with naive labels" ~count:200
    QCheck.(list (pair (int_bound 9) (int_bound 9)))
    (fun pairs -> uf_matches_naive pairs 10)

(* ------------------------------------------------------------------ *)
(* Multigraph                                                          *)
(* ------------------------------------------------------------------ *)

let test_graph_basic () =
  let g = G.of_edges 4 [ (0, 1); (1, 2); (1, 2); (2, 3) ] in
  Alcotest.(check int) "n" 4 (G.n g);
  Alcotest.(check int) "m" 4 (G.m g);
  Alcotest.(check int) "deg 1" 3 (G.degree g 1);
  Alcotest.(check int) "max degree" 3 (G.max_degree g);
  Alcotest.(check bool) "not simple" false (G.is_simple g);
  Alcotest.(check (pair int int)) "endpoints" (1, 2) (G.endpoints g 1);
  Alcotest.(check int) "other endpoint" 2 (G.other_endpoint g 1 1)

let test_graph_rejects_self_loop () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Multigraph.add_edge: self-loop") (fun () ->
      ignore (G.of_edges 3 [ (1, 1) ]))

let test_graph_power () =
  let g = Gen.path 5 in
  let g2 = G.power g 2 in
  (* path 0-1-2-3-4; distance <= 2 pairs: 01 02 12 13 23 24 34 *)
  Alcotest.(check int) "power edges" 7 (G.m g2);
  Alcotest.(check bool) "power simple" true (G.is_simple g2)

let test_graph_ball () =
  let g = Gen.path 7 in
  let b = List.sort compare (G.ball g 3 2) in
  Alcotest.(check (list int)) "ball of middle" [ 1; 2; 3; 4; 5 ] b;
  let members = G.ball_of_set g [ 0; 6 ] 1 in
  Alcotest.(check bool) "0-ball member" true members.(0);
  Alcotest.(check bool) "distance 1" true members.(1);
  Alcotest.(check bool) "distance 2 excluded" false members.(2)

let test_graph_induced () =
  let g = G.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let members = [| true; true; true; false; false |] in
  let sub, vmap, emap = G.induced g members in
  Alcotest.(check int) "induced n" 3 (G.n sub);
  Alcotest.(check int) "induced m" 2 (G.m sub);
  Alcotest.(check (array int)) "vmap" [| 0; 1; 2 |] vmap;
  Alcotest.(check (array int)) "emap" [| 0; 1 |] emap

let test_subgraph_of_edges () =
  let g = G.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let sub, emap = G.subgraph_of_edges g [| true; false; true |] in
  Alcotest.(check int) "kept edges" 2 (G.m sub);
  Alcotest.(check (array int)) "emap" [| 0; 2 |] emap;
  Alcotest.(check int) "n preserved" 4 (G.n sub)

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let test_components () =
  let g = Gen.disjoint_union (Gen.path 3) (Gen.cycle 4) in
  let _, c = T.components g in
  Alcotest.(check int) "two components" 2 c

let test_is_forest () =
  Alcotest.(check bool) "path is forest" true (T.is_forest (Gen.path 6));
  Alcotest.(check bool) "cycle not" false (T.is_forest (Gen.cycle 5));
  Alcotest.(check bool) "parallel pair not" false
    (T.is_forest (G.of_edges 2 [ (0, 1); (0, 1) ]))

let test_diameter () =
  Alcotest.(check int) "path diameter" 5 (T.diameter (Gen.path 6));
  Alcotest.(check int) "cycle diameter" 3 (T.diameter (Gen.cycle 6));
  Alcotest.(check int) "tree diameter" 5 (T.tree_diameter (Gen.path 6));
  Alcotest.(check int) "star diameter" 2 (T.tree_diameter (Gen.star 5))

let test_bfs_tree () =
  let g = Gen.path 4 in
  let parent, parent_edge, depth = T.bfs_tree g 0 in
  Alcotest.(check (array int)) "parents" [| -1; 0; 1; 2 |] parent;
  Alcotest.(check (array int)) "parent edges" [| -1; 0; 1; 2 |] parent_edge;
  Alcotest.(check (array int)) "depth" [| 0; 1; 2; 3 |] depth

let prop_spanning_forest =
  QCheck.Test.make ~name:"spanning forest spans and is acyclic" ~count:100
    QCheck.(pair small_nat (int_bound 1000))
    (fun (size, seed) ->
      let n = 2 + (size mod 30) in
      let g = Gen.erdos_renyi (rng seed) n 0.3 in
      let keep = T.spanning_forest g in
      let sub, _ = G.subgraph_of_edges g keep in
      let _, c_sub = T.components sub in
      let _, c_full = T.components g in
      T.is_forest sub && c_sub = c_full)

(* ------------------------------------------------------------------ *)
(* Max-flow                                                            *)
(* ------------------------------------------------------------------ *)

let test_maxflow_simple () =
  let module F = Nw_graphs.Maxflow in
  let net = F.create 4 in
  let a = F.add_edge net 0 1 3 in
  let _ = F.add_edge net 0 2 2 in
  let _ = F.add_edge net 1 2 5 in
  let b = F.add_edge net 1 3 2 in
  let _ = F.add_edge net 2 3 3 in
  Alcotest.(check int) "flow value" 5 (F.max_flow net ~source:0 ~sink:3);
  Alcotest.(check int) "edge 0->1 saturated" 3 (F.flow_on net a);
  Alcotest.(check int) "edge 1->3 saturated" 2 (F.flow_on net b);
  let side = F.min_cut_side net ~source:0 in
  Alcotest.(check bool) "source side" true side.(0);
  Alcotest.(check bool) "sink side" false side.(3)

let test_maxflow_disconnected () =
  let module F = Nw_graphs.Maxflow in
  let net = F.create 3 in
  let _ = F.add_edge net 0 1 7 in
  Alcotest.(check int) "no path" 0 (F.max_flow net ~source:0 ~sink:2)

(* brute force max-flow on tiny graphs via repeated DFS augmentation over
   an explicit capacity matrix *)
let brute_maxflow n edges s t =
  let cap = Array.make_matrix n n 0 in
  List.iter (fun (u, v, c) -> cap.(u).(v) <- cap.(u).(v) + c) edges;
  let find_path () =
    let visited = Array.make n false in
    let rec dfs u path =
      if u = t then Some (List.rev path)
      else begin
        visited.(u) <- true;
        let rec try_next v =
          if v >= n then None
          else if (not visited.(v)) && cap.(u).(v) > 0 then
            match dfs v ((u, v) :: path) with
            | Some p -> Some p
            | None -> try_next (v + 1)
          else try_next (v + 1)
        in
        try_next 0
      end
    in
    dfs s []
  in
  let total = ref 0 in
  let rec loop () =
    match find_path () with
    | None -> ()
    | Some path ->
        let bottleneck =
          List.fold_left (fun acc (u, v) -> min acc cap.(u).(v)) max_int path
        in
        List.iter
          (fun (u, v) ->
            cap.(u).(v) <- cap.(u).(v) - bottleneck;
            cap.(v).(u) <- cap.(v).(u) + bottleneck)
          path;
        total := !total + bottleneck;
        loop ()
  in
  loop ();
  !total

let prop_maxflow_vs_brute =
  QCheck.Test.make ~name:"dinic agrees with brute-force flow" ~count:200
    QCheck.(pair (int_bound 10000) (int_bound 5))
    (fun (seed, extra) ->
      let st = rng seed in
      let n = 4 + extra in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && Random.State.float st 1.0 < 0.4 then
            edges := (u, v, 1 + Random.State.int st 5) :: !edges
        done
      done;
      let module F = Nw_graphs.Maxflow in
      let net = F.create n in
      List.iter (fun (u, v, c) -> ignore (F.add_edge net u v c)) !edges;
      F.max_flow net ~source:0 ~sink:(n - 1)
      = brute_maxflow n !edges 0 (n - 1))

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)
(* ------------------------------------------------------------------ *)

let test_matching_perfect () =
  let module M = Nw_graphs.Matching in
  let m = M.create ~left:3 ~right:3 in
  M.add m 0 0;
  M.add m 0 1;
  M.add m 1 1;
  M.add m 1 2;
  M.add m 2 2;
  let size, ml, mr = M.maximum_matching m in
  Alcotest.(check int) "perfect" 3 size;
  Array.iteri (fun l r -> Alcotest.(check int) "consistent" l mr.(r)) ml

(* brute force maximum matching size by trying all subsets of edges *)
let brute_matching_size left right edges =
  let best = ref 0 in
  let k = List.length edges in
  let arr = Array.of_list edges in
  for mask = 0 to (1 lsl k) - 1 do
    let used_l = Array.make left false and used_r = Array.make right false in
    let ok = ref true and size = ref 0 in
    for i = 0 to k - 1 do
      if mask land (1 lsl i) <> 0 then begin
        let l, r = arr.(i) in
        if used_l.(l) || used_r.(r) then ok := false
        else begin
          used_l.(l) <- true;
          used_r.(r) <- true;
          incr size
        end
      end
    done;
    if !ok && !size > !best then best := !size
  done;
  !best

let prop_matching_vs_brute =
  QCheck.Test.make ~name:"hopcroft-karp agrees with brute force" ~count:200
    (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let left = 1 + Random.State.int st 4 in
      let right = 1 + Random.State.int st 4 in
      let edges = ref [] in
      for l = 0 to left - 1 do
        for r = 0 to right - 1 do
          if Random.State.float st 1.0 < 0.5 then edges := (l, r) :: !edges
        done
      done;
      (* cap edge count to keep the brute force fast *)
      let edges = List.filteri (fun i _ -> i < 12) !edges in
      let module M = Nw_graphs.Matching in
      let m = M.create ~left ~right in
      List.iter (fun (l, r) -> M.add m l r) edges;
      let size, ml, mr = M.maximum_matching m in
      let consistent = ref true in
      Array.iteri
        (fun l r -> if r >= 0 && mr.(r) <> l then consistent := false)
        ml;
      !consistent && size = brute_matching_size left right edges)

(* ------------------------------------------------------------------ *)
(* Degeneracy                                                          *)
(* ------------------------------------------------------------------ *)

let test_degeneracy_known () =
  Alcotest.(check int) "path" 1 (Deg.degeneracy (Gen.path 6));
  Alcotest.(check int) "cycle" 2 (Deg.degeneracy (Gen.cycle 6));
  Alcotest.(check int) "K5" 4 (Deg.degeneracy (Gen.complete 5));
  Alcotest.(check int) "parallel pair" 2
    (Deg.degeneracy (G.of_edges 2 [ (0, 1); (0, 1) ]))

let prop_degeneracy_orientation =
  QCheck.Test.make
    ~name:"degeneracy orientation is acyclic with bounded out-degree"
    ~count:100 (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 3 + Random.State.int st 25 in
      let g = Gen.erdos_renyi st n 0.3 in
      let d = Deg.degeneracy g in
      let o = Deg.orientation g in
      O.is_acyclic o && O.max_out_degree o <= d)

(* ------------------------------------------------------------------ *)
(* Arboricity / orientations                                           *)
(* ------------------------------------------------------------------ *)

let test_pseudo_arboricity_known () =
  let check name g expected =
    let k, o = Arb.pseudo_arboricity g in
    Alcotest.(check int) name expected k;
    Alcotest.(check bool) (name ^ " witness outdeg") true
      (O.max_out_degree o <= k)
  in
  check "tree" (Gen.path 8) 1;
  check "cycle" (Gen.cycle 7) 1;
  check "K4" (Gen.complete 4) 2;
  check "K5" (Gen.complete 5) 2;
  check "double edge" (G.of_edges 2 [ (0, 1); (0, 1) ]) 1;
  check "triple edge" (G.of_edges 2 [ (0, 1); (0, 1); (0, 1) ]) 2

let test_density_lower_bound () =
  Alcotest.(check int) "K5 density" 3 (Arb.density_lower_bound (Gen.complete 5));
  Alcotest.(check int) "path" 1 (Arb.density_lower_bound (Gen.path 5));
  Alcotest.(check int) "line multigraph" 4
    (Arb.density_lower_bound (Gen.line_multigraph 10 4))

let test_brute_force_arboricity () =
  Alcotest.(check int) "K4" 2 (Arb.brute_force (Gen.complete 4));
  Alcotest.(check int) "K5" 3 (Arb.brute_force (Gen.complete 5));
  Alcotest.(check int) "cycle" 2 (Arb.brute_force (Gen.cycle 8));
  Alcotest.(check int) "path" 1 (Arb.brute_force (Gen.path 8))

let prop_pseudo_vs_brute_bounds =
  QCheck.Test.make ~name:"alpha* <= alpha <= 2 alpha* on random graphs"
    ~count:60 (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 3 + Random.State.int st 9 in
      let g = Gen.erdos_renyi st n 0.5 in
      if G.m g = 0 then true
      else begin
        let alpha = Arb.brute_force g in
        let alpha_star, _ = Arb.pseudo_arboricity g in
        alpha_star <= alpha && alpha <= 2 * alpha_star
      end)


let test_densest_known () =
  let d, w = Arb.densest_subgraph (Gen.complete 5) in
  Alcotest.(check (float 1e-9)) "K5 density" 2.0 d;
  Alcotest.(check int) "K5 witness is everything" 5 (List.length w);
  let d2, _ = Arb.densest_subgraph (Gen.path 6) in
  Alcotest.(check (float 1e-9)) "path density" (5. /. 6.) d2;
  let d3, _ = Arb.densest_subgraph (G.of_edges 2 [ (0, 1); (0, 1); (0, 1) ]) in
  Alcotest.(check (float 1e-9)) "triple edge" 1.5 d3

let prop_densest_vs_brute =
  QCheck.Test.make ~name:"goldberg densest = brute force" ~count:40
    (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 3 + Random.State.int st 8 in
      let g = Gen.erdos_renyi st n 0.5 in
      let d, _ = Arb.densest_subgraph g in
      Float.abs (d -. Arb.densest_brute_force g) < 1e-9)

let prop_densest_certifies_pseudo =
  QCheck.Test.make ~name:"ceil(max density) = pseudo-arboricity" ~count:40
    (QCheck.int_bound 100000)
    (fun seed ->
      let st = rng seed in
      let n = 3 + Random.State.int st 10 in
      let g = Gen.erdos_renyi st n 0.5 in
      if G.m g = 0 then true
      else begin
        let d, _ = Arb.densest_subgraph g in
        let alpha_star, _ = Arb.pseudo_arboricity g in
        int_of_float (ceil (d -. 1e-12)) = alpha_star
      end)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_generators_shapes () =
  Alcotest.(check int) "complete edges" 10 (G.m (Gen.complete 5));
  Alcotest.(check int) "bipartite edges" 6 (G.m (Gen.complete_bipartite 2 3));
  Alcotest.(check int) "grid edges" 12 (G.m (Gen.grid 3 3));
  Alcotest.(check int) "binary tree n" 7 (G.n (Gen.binary_tree 2));
  Alcotest.(check bool) "binary tree is tree" true
    (T.is_forest (Gen.binary_tree 3))

let test_random_tree_is_tree () =
  for seed = 0 to 20 do
    let g = Gen.random_tree (rng seed) (5 + seed) in
    Alcotest.(check bool) "is forest" true (T.is_forest g);
    let _, c = T.components g in
    Alcotest.(check int) "connected" 1 c
  done

let test_forest_union_arboricity () =
  let g = Gen.forest_union (rng 7) 30 4 in
  Alcotest.(check int) "m = k(n-1)" (4 * 29) (G.m g);
  Alcotest.(check int) "density bound k" 4 (Arb.density_lower_bound g)

let test_forest_union_simple () =
  let g = Gen.forest_union_simple (rng 11) 40 5 in
  Alcotest.(check bool) "simple" true (G.is_simple g);
  Alcotest.(check int) "m = k(n-1)" (5 * 39) (G.m g);
  Alcotest.(check int) "density bound" 5 (Arb.density_lower_bound g)

let test_line_multigraph_bounds () =
  let g = Gen.line_multigraph 6 3 in
  Alcotest.(check int) "m" 15 (G.m g);
  Alcotest.(check int) "brute arboricity" 3 (Arb.brute_force g)

let test_list_palettes () =
  let g = Gen.complete 5 in
  let q = Gen.list_palettes (rng 3) g ~colors:10 ~size:4 in
  Array.iter
    (fun palette ->
      Alcotest.(check int) "size" 4 (List.length palette);
      Alcotest.(check bool) "sorted distinct" true
        (let rec ok = function
           | a :: (b :: _ as rest) -> a < b && ok rest
           | _ -> true
         in
         ok palette);
      List.iter
        (fun c -> Alcotest.(check bool) "range" true (c >= 0 && c < 10))
        palette)
    q


let test_new_families () =
  (* caterpillar: a tree *)
  let cat = Gen.caterpillar 5 3 in
  Alcotest.(check int) "caterpillar n" 20 (G.n cat);
  Alcotest.(check bool) "caterpillar tree" true (T.is_forest cat);
  (* hypercube Q3: 8 vertices, 12 edges, alpha = ceil(12/7) = 2 *)
  let q3 = Gen.hypercube 3 in
  Alcotest.(check int) "Q3 n" 8 (G.n q3);
  Alcotest.(check int) "Q3 m" 12 (G.m q3);
  Alcotest.(check int) "Q3 arboricity" 2 (Arb.brute_force q3);
  (* theta graph: 3 paths of length 3 between two hubs: alpha = 2 *)
  let th = Gen.theta_graph 3 3 in
  Alcotest.(check bool) "theta simple" true (G.is_simple th);
  Alcotest.(check int) "theta arboricity" 2 (Arb.brute_force th)

let test_k_tree () =
  for k = 1 to 3 do
    let g = Gen.random_k_tree (rng (40 + k)) 16 k in
    Alcotest.(check bool) "simple" true (G.is_simple g);
    Alcotest.(check int) "edges" ((k * (k + 1) / 2) + (k * (16 - k - 1))) (G.m g);
    Alcotest.(check int) "degeneracy = k" k (Deg.degeneracy g);
    Alcotest.(check int) "arboricity = k" k (Arb.brute_force g)
  done

let test_preferential_attachment () =
  let g = Gen.preferential_attachment (rng 41) 80 3 in
  Alcotest.(check bool) "simple" true (G.is_simple g);
  Alcotest.(check bool) "connected-ish density" true (G.m g >= 70);
  (* the attachment order is an acyclic k-orientation witness *)
  Alcotest.(check bool) "degeneracy <= k" true (Deg.degeneracy g <= 3)


(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let module H = Nw_graphs.Heap in
  let h = H.create "" in
  Alcotest.(check bool) "empty" true (H.is_empty h);
  H.push h 3.0 "c";
  H.push h 1.0 "a";
  H.push h 2.0 "b";
  Alcotest.(check int) "size" 3 (H.size h);
  Alcotest.(check (option (pair (float 0.) string))) "peek" (Some (1.0, "a"))
    (H.peek h);
  Alcotest.(check (option (pair (float 0.) string))) "pop a" (Some (1.0, "a"))
    (H.pop h);
  Alcotest.(check (option (pair (float 0.) string))) "pop b" (Some (2.0, "b"))
    (H.pop h);
  Alcotest.(check (option (pair (float 0.) string))) "pop c" (Some (3.0, "c"))
    (H.pop h);
  Alcotest.(check bool) "drained" true (H.pop h = None)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:100
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun keys ->
      let module H = Nw_graphs.Heap in
      let h = H.create 0 in
      List.iteri (fun i k -> H.push h k i) keys;
      let rec drain acc =
        match H.pop h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "nw_graphs"
    [
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_uf_basic;
          Alcotest.test_case "copy" `Quick test_uf_copy_independent;
        ] );
      qsuite "union_find_props" [ prop_uf_vs_naive ];
      ( "multigraph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "self loop" `Quick test_graph_rejects_self_loop;
          Alcotest.test_case "power" `Quick test_graph_power;
          Alcotest.test_case "ball" `Quick test_graph_ball;
          Alcotest.test_case "induced" `Quick test_graph_induced;
          Alcotest.test_case "subgraph" `Quick test_subgraph_of_edges;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "is_forest" `Quick test_is_forest;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "bfs_tree" `Quick test_bfs_tree;
        ] );
      qsuite "traversal_props" [ prop_spanning_forest ];
      ( "maxflow",
        [
          Alcotest.test_case "simple" `Quick test_maxflow_simple;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
        ] );
      qsuite "maxflow_props" [ prop_maxflow_vs_brute ];
      ("matching", [ Alcotest.test_case "perfect" `Quick test_matching_perfect ]);
      qsuite "matching_props" [ prop_matching_vs_brute ];
      ( "degeneracy",
        [ Alcotest.test_case "known values" `Quick test_degeneracy_known ] );
      qsuite "degeneracy_props" [ prop_degeneracy_orientation ];
      ( "arboricity",
        [
          Alcotest.test_case "pseudo known" `Quick test_pseudo_arboricity_known;
          Alcotest.test_case "density bound" `Quick test_density_lower_bound;
          Alcotest.test_case "brute force" `Quick test_brute_force_arboricity;
        ] );
      qsuite "arboricity_props"
        [
          prop_pseudo_vs_brute_bounds; prop_densest_vs_brute;
          prop_densest_certifies_pseudo;
        ];
      ( "densest",
        [ Alcotest.test_case "known values" `Quick test_densest_known ] );
      ("heap", [ Alcotest.test_case "basic" `Quick test_heap_basic ]);
      qsuite "heap_props" [ prop_heap_sorts ];
      ( "generators",
        [
          Alcotest.test_case "shapes" `Quick test_generators_shapes;
          Alcotest.test_case "random tree" `Quick test_random_tree_is_tree;
          Alcotest.test_case "forest union" `Quick test_forest_union_arboricity;
          Alcotest.test_case "forest union simple" `Quick
            test_forest_union_simple;
          Alcotest.test_case "line multigraph" `Quick
            test_line_multigraph_bounds;
          Alcotest.test_case "list palettes" `Quick test_list_palettes;
          Alcotest.test_case "new families" `Quick test_new_families;
          Alcotest.test_case "k-tree" `Quick test_k_tree;
          Alcotest.test_case "preferential attachment" `Quick
            test_preferential_attachment;
        ] );
    ]
