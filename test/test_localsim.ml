(* Tests for the LOCAL-model simulator: round ledger and message kernel. *)

module Rounds = Nw_localsim.Rounds
module Net = Nw_localsim.Msg_net
module G = Nw_graphs.Multigraph
module Gen = Nw_graphs.Generators

let test_rounds_basic () =
  let r = Rounds.create () in
  Alcotest.(check int) "empty" 0 (Rounds.total r);
  Rounds.charge r ~label:"a" 3;
  Rounds.charge r ~label:"b" 2;
  Rounds.charge r ~label:"a" 1;
  Alcotest.(check int) "total" 6 (Rounds.total r);
  Alcotest.(check (list (pair string int)))
    "ledger order and sums"
    [ ("a", 4); ("b", 2) ]
    (Rounds.ledger r)

let test_rounds_negative_rejected () =
  let r = Rounds.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Rounds.charge: negative rounds")
    (fun () -> Rounds.charge r ~label:"x" (-1))

let test_rounds_merge () =
  let a = Rounds.create () and b = Rounds.create () in
  Rounds.charge a ~label:"x" 5;
  Rounds.charge b ~label:"x" 3;
  Rounds.charge b ~label:"y" 2;
  Rounds.merge_into ~into:a b;
  Alcotest.(check int) "merged total" 10 (Rounds.total a);
  Alcotest.(check (list (pair string int)))
    "merged ledger"
    [ ("x", 8); ("y", 2) ]
    (Rounds.ledger a)

let test_rounds_charge_max () =
  let main = Rounds.create () in
  let mk charges =
    let r = Rounds.create () in
    List.iter (fun (l, c) -> Rounds.charge r ~label:l c) charges;
    r
  in
  Rounds.charge_max main
    [ mk [ ("p", 4); ("q", 1) ]; mk [ ("p", 2); ("q", 7) ] ];
  Alcotest.(check int) "max per label" 11 (Rounds.total main)

(* labels keep their first-seen order across the parallel sub-ledgers,
   and the per-label maxima land under the right labels *)
let test_rounds_charge_max_label_order () =
  let main = Rounds.create () in
  let mk charges =
    let r = Rounds.create () in
    List.iter (fun (l, c) -> Rounds.charge r ~label:l c) charges;
    r
  in
  Rounds.charge_max main
    [ mk [ ("b", 2); ("a", 5) ]; mk [ ("a", 9); ("c", 1) ] ];
  Alcotest.(check (list (pair string int)))
    "first-seen order, max per label"
    [ ("b", 2); ("a", 9); ("c", 1) ]
    (Rounds.ledger main)

(* domain_total is a per-domain accumulator: a charge on a spawned
   domain must show up in that domain's total only. This is the basis
   of the bench harness's per-experiment round attribution under
   --domains K (exp_common.domain_rounds_baseline/since). *)
let test_rounds_domain_total () =
  let before = Rounds.domain_total () in
  let r = Rounds.create () in
  Rounds.charge r ~label:"here" 3;
  let worker =
    Domain.spawn (fun () ->
        let t0 = Rounds.domain_total () in
        let r' = Rounds.create () in
        Rounds.charge r' ~label:"there" 11;
        Rounds.charge r' ~label:"there" 4;
        Rounds.domain_total () - t0)
  in
  let worker_delta = Domain.join worker in
  Alcotest.(check int) "spawned domain counts only its own charges" 15
    worker_delta;
  Alcotest.(check int) "this domain is unaffected by the worker" 3
    (Rounds.domain_total () - before)

(* Round attribution across the column-sharded counting path:
   Rounds.charge fires on the calling domain after the Dpool fan-out
   joins, never inside a helper, so the caller's domain_total delta
   captures every charged round at any K — and the kernel's
   deterministic merge keeps states and message counts byte-identical
   across K = 1/2/4. This pins the attribution contract the bench
   harness relies on under --domains. *)
let test_rounds_domain_total_counting_par () =
  let module Dpool = Nw_localsim.Dpool in
  let run_at k =
    Dpool.with_domains k (fun () ->
        let g = Gen.path 33 in
        let rounds = Rounds.create () in
        let before = Rounds.domain_total () in
        let net = Net.create g ~rounds ~init:(fun v -> v) in
        for _ = 1 to 3 do
          Net.round_count net ~label:"count"
            ~decide:(fun _ st -> st mod 2 = 0)
            ~recv:(fun _ st cnt -> st + cnt)
        done;
        let states = List.init (G.n g) (Net.state net) in
        ( Rounds.domain_total () - before,
          Rounds.total rounds,
          Net.messages_delivered net,
          states ))
  in
  let d1, t1, m1, s1 = run_at 1 in
  Alcotest.(check int) "charges land on the calling domain" t1 d1;
  List.iter
    (fun k ->
      let dk, tk, mk, sk = run_at k in
      Alcotest.(check int)
        (Printf.sprintf "domain_total attribution at K=%d" k)
        d1 dk;
      Alcotest.(check int) (Printf.sprintf "ledger total at K=%d" k) t1 tk;
      Alcotest.(check int) (Printf.sprintf "messages at K=%d" k) m1 mk;
      Alcotest.(check bool)
        (Printf.sprintf "states byte-identical at K=%d" k)
        true (s1 = sk))
    [ 2; 4 ]

(* one round of neighbor color exchange on a path *)
let test_msg_net_exchange () =
  let g = Gen.path 4 in
  let rounds = Rounds.create () in
  let net = Net.create g ~rounds ~init:(fun v -> (v, [])) in
  Net.round net ~label:"exchange"
    ~send:(fun v (my, _) ->
      ignore my;
      Array.to_list (Array.map (fun (_, e) -> (e, v)) (G.incident g v)))
    ~recv:(fun _ (my, _) msgs -> (my, List.map snd msgs));
  let _, nbrs1 = Net.state net 1 in
  Alcotest.(check (list int)) "middle vertex hears both" [ 0; 2 ]
    (List.sort compare nbrs1);
  Alcotest.(check int) "one round charged" 1 (Rounds.total rounds);
  Alcotest.(check int) "messages: 2 per edge" 6 (Net.messages_delivered net)

(* distributed BFS distance from vertex 0 via run_until *)
let test_msg_net_run_until () =
  let g = Gen.path 6 in
  let rounds = Rounds.create () in
  let net =
    Net.create g ~rounds ~init:(fun v -> if v = 0 then 0 else -1)
  in
  let executed =
    Net.run_until net ~label:"bfs"
      ~send:(fun v d ->
        if d >= 0 then
          Array.to_list (Array.map (fun (_, e) -> (e, d)) (G.incident g v))
        else [])
      ~recv:(fun _ d msgs ->
        List.fold_left
          (fun acc (_, d') -> if acc < 0 || d' + 1 < acc then d' + 1 else acc)
          d msgs)
      ~halted:(fun _ d -> d >= 0)
      ~max_rounds:10
  in
  Alcotest.(check int) "rounds = eccentricity" 5 executed;
  for v = 0 to 5 do
    Alcotest.(check int) (Printf.sprintf "distance %d" v) v (Net.state net v)
  done

let test_msg_net_max_rounds () =
  let g = Gen.path 3 in
  let rounds = Rounds.create () in
  let net = Net.create g ~rounds ~init:(fun _ -> ()) in
  Alcotest.check_raises "exceeds budget"
    (Failure "Msg_net.run_until: max_rounds exceeded") (fun () ->
      ignore
        (Net.run_until net ~label:"spin"
           ~send:(fun _ _ -> [])
           ~recv:(fun _ st _ -> st)
           ~halted:(fun _ _ -> false)
           ~max_rounds:3))

let test_msg_net_bad_edge_rejected () =
  let g = Gen.path 3 in
  let rounds = Rounds.create () in
  let net = Net.create g ~rounds ~init:(fun v -> v) in
  (* vertex 0 tries to send on edge 1 (between vertices 1 and 2) *)
  Alcotest.check_raises "non-incident edge"
    (Invalid_argument "Multigraph.other_endpoint: vertex not on edge")
    (fun () ->
      Net.round net ~label:"bad"
        ~send:(fun v st -> if v = 0 then [ (1, st) ] else [])
        ~recv:(fun _ st _ -> st))


(* ------------------------------------------------------------------ *)
(* Ball view                                                           *)
(* ------------------------------------------------------------------ *)

module BV = Nw_localsim.Ball_view

let ball_equal (a : BV.ball) (b : BV.ball) =
  a.BV.center = b.BV.center && a.BV.vertices = b.BV.vertices
  && a.BV.edges = b.BV.edges

let test_ball_view_path () =
  let g = Gen.path 7 in
  let rounds = Rounds.create () in
  let balls = BV.collect g ~radius:2 ~rounds in
  Alcotest.(check int) "charged exactly r rounds" 2 (Rounds.total rounds);
  for v = 0 to 6 do
    Alcotest.(check bool)
      (Printf.sprintf "ball of %d matches BFS" v)
      true
      (ball_equal balls.(v) (BV.reference g ~radius:2 v))
  done

let test_ball_view_radius_zero () =
  let g = Gen.cycle 5 in
  let rounds = Rounds.create () in
  let balls = BV.collect g ~radius:0 ~rounds in
  Alcotest.(check (list int)) "knows only itself" [ 3 ]
    balls.(3).BV.vertices

let prop_ball_view_matches_bfs =
  QCheck.Test.make ~name:"distributed ball = central BFS ball" ~count:30
    (QCheck.int_bound 100000)
    (fun seed ->
      let st = Random.State.make [| seed; 3 |] in
      let n = 5 + Random.State.int st 25 in
      let g = Gen.erdos_renyi st n 0.15 in
      let radius = 1 + Random.State.int st 3 in
      let rounds = Rounds.create () in
      let balls = BV.collect g ~radius ~rounds in
      let ok = ref true in
      for v = 0 to n - 1 do
        if not (ball_equal balls.(v) (BV.reference g ~radius v)) then
          ok := false
      done;
      !ok)

let () =
  Alcotest.run "nw_localsim"
    [
      ( "rounds",
        [
          Alcotest.test_case "basic" `Quick test_rounds_basic;
          Alcotest.test_case "negative" `Quick test_rounds_negative_rejected;
          Alcotest.test_case "merge" `Quick test_rounds_merge;
          Alcotest.test_case "charge_max" `Quick test_rounds_charge_max;
          Alcotest.test_case "charge_max label order" `Quick
            test_rounds_charge_max_label_order;
          Alcotest.test_case "per-domain total" `Quick
            test_rounds_domain_total;
          Alcotest.test_case "counting path at K=1/2/4" `Quick
            test_rounds_domain_total_counting_par;
        ] );
      ( "ball_view",
        [
          Alcotest.test_case "path radius 2" `Quick test_ball_view_path;
          Alcotest.test_case "radius 0" `Quick test_ball_view_radius_zero;
          QCheck_alcotest.to_alcotest prop_ball_view_matches_bfs;
        ] );
      ( "msg_net",
        [
          Alcotest.test_case "exchange" `Quick test_msg_net_exchange;
          Alcotest.test_case "run_until bfs" `Quick test_msg_net_run_until;
          Alcotest.test_case "max rounds" `Quick test_msg_net_max_rounds;
          Alcotest.test_case "bad edge" `Quick test_msg_net_bad_edge_rejected;
        ] );
    ]
