(* nwlint engine tests: every rule gets a positive fixture (fires), a
   negative fixture (stays silent), and a suppression fixture; plus
   suppression hygiene (SUPP001/002/003) and a self-check that the
   engine is clean on the repo's own lib/ tree — the in-process twin of
   `dune build @lint`. *)

module D = Nwlint_core.Diagnostic
module C = Nwlint_core.Config
module Engine = Nwlint_core.Engine

let lint ?(path = "lib/core/fixture.ml") src = Engine.lint_string ~path src

let rules ds = List.map (fun d -> d.D.rule) ds

let check_fires rule ?path src () =
  let ds = lint ?path src in
  Alcotest.(check bool)
    (Printf.sprintf "%s fires on %S" rule src)
    true
    (List.mem rule (rules ds))

let check_silent rule ?path src () =
  let ds = lint ?path src in
  Alcotest.(check (list string))
    (Printf.sprintf "no %s on %S" rule src)
    []
    (List.filter (String.equal rule) (rules ds))

let check_clean ?path src () =
  let ds = lint ?path src in
  Alcotest.(check (list string)) (Printf.sprintf "clean: %S" src) [] (rules ds)

(* --- DET001 ------------------------------------------------------- *)

let det1 =
  [
    ("positive: Random.self_init", check_fires "DET001" "let x = Random.self_init ()");
    ("positive: global Random.int", check_fires "DET001" "let x = Random.int 5");
    ( "positive: Unix.gettimeofday",
      check_fires "DET001" "let t = Unix.gettimeofday ()" );
    ("positive: Sys.time", check_fires "DET001" "let t = Sys.time ()");
    ( "positive: Random.State.make_self_init",
      check_fires "DET001" "let s = Random.State.make_self_init ()" );
    ( "negative: seeded Random.State",
      check_clean "let x rng = Random.State.int rng 5" );
    ( "negative: wall clock outside lib/",
      check_clean ~path:"bench/fixture.ml" "let t = Unix.gettimeofday ()" );
    ( "negative: lib/obs allowlisted",
      check_clean ~path:"lib/obs/fixture.ml" "let t = Sys.time ()" );
    ( "suppressed",
      check_silent "DET001"
        "(* nwlint:disable DET001 -- fixture justification *)\n\
         let x = Random.int 5" );
    (* the sanctioned randomness source: paths through a module named Rng
       must resolve to Nw_chaos.Rng (seed-threaded, splittable) *)
    ( "positive: ad-hoc local Rng module",
      check_fires "DET001"
        "module Rng = struct let next s = (s * 25214903917 + 11)\n\
        \  land 0xffffffff end\n\
         let draw s = Rng.next s" );
    ( "positive: qualified ad-hoc Rng",
      check_fires "DET001" "let draw s = My_util.Rng.next s" );
    ( "negative: Rng aliased to Nw_chaos.Rng",
      check_clean
        "module Rng = Nw_chaos.Rng\n\
         let draw t = Rng.bits t [ 1; 2 ]" );
    ( "negative: fully qualified Nw_chaos.Rng",
      check_clean "let draw t = Nw_chaos.Rng.float t [ 0 ]" );
    ( "negative: lib/chaos hosts the source itself",
      check_clean ~path:"lib/chaos/fixture.ml" "let draw s = Rng.mix s" );
    ( "negative: Rng use outside lib/",
      check_clean ~path:"bench/fixture.ml" "let draw s = My_util.Rng.next s" );
    (* raw monotonic-clock reads: only lib/obs touches the clock module
       directly; everyone else goes through Nw_obs.Obs.now_ns *)
    ( "positive: raw Monotonic_clock read",
      check_fires "DET001" "let t = Monotonic_clock.now ()" );
    ( "positive: clock module behind an alias",
      check_fires "DET001"
        "module Clock = Monotonic_clock\nlet t = Clock.now ()" );
    ( "positive: Mtime_clock read",
      check_fires "DET001" "let t = Mtime_clock.elapsed ()" );
    ( "negative: lib/obs hosts the clock wrapper",
      check_clean ~path:"lib/obs/fixture.ml" "let t = Monotonic_clock.now ()"
    );
    ( "negative: monotonic clock outside lib/",
      check_clean ~path:"bench/fixture.ml" "let t = Monotonic_clock.now ()" );
    ( "negative: the sanctioned Obs.now_ns route",
      check_clean "module Obs = Nw_obs.Obs\nlet t = Obs.now_ns ()" );
    ( "suppressed: clock read",
      check_silent "DET001"
        "(* nwlint:disable DET001 -- fixture justification *)\n\
         let t = Monotonic_clock.now ()" );
  ]

(* --allow-clock extends det1_clock_allow exactly like --allow-rng
   extends det1_rng_allow *)
let clock_allow_extension () =
  let config =
    {
      C.default with
      C.det1_clock_allow = "Monotonic_clock" :: C.default.C.det1_clock_allow;
    }
  in
  let ds =
    Engine.lint_string ~config ~path:"lib/core/fixture.ml"
      "let t = Monotonic_clock.now ()"
  in
  Alcotest.(check (list string))
    "--allow-clock sanctions the source" [] (rules ds)

(* --- OBS001 ------------------------------------------------------- *)

let obs1 =
  [
    ("positive: Gc.stat in lib/", check_fires "OBS001" "let s = Gc.stat ()");
    ( "positive: Gc.stat behind an alias",
      check_fires "OBS001" "module M = Gc\nlet s = M.stat ()" );
    ( "positive: Stdlib-qualified Gc.stat",
      check_fires "OBS001" "let s = Stdlib.Gc.stat ()" );
    ( "negative: Gc.quick_stat is the sanctioned read",
      check_clean "let s = Gc.quick_stat ()" );
    ( "negative: Gc.stat outside lib/",
      check_clean ~path:"bench/fixture.ml" "let s = Gc.stat ()" );
    ( "suppressed",
      check_silent "OBS001"
        "(* nwlint:disable OBS001 -- fixture justification *)\n\
         let s = Gc.stat ()" );
  ]

(* --- DET002 ------------------------------------------------------- *)

let det2 =
  [
    ( "positive: List.sort compare",
      check_fires "DET002" "let f l = List.sort compare l" );
    ("positive: Hashtbl.hash", check_fires "DET002" "let h g = Hashtbl.hash g");
    ( "positive: = on graph value via alias",
      check_fires "DET002"
        "module G = Nw_graphs.Multigraph\nlet eq a b = G.of_edges 1 a = b" );
    ( "positive: = on denylisted value name",
      check_fires "DET002" "let f adj adj' = adj = adj'" );
    ( "negative: scalar accessor compares are fine",
      check_clean
        "module G = Nw_graphs.Multigraph\nlet empty g = G.n g = 0 && G.m g = 0"
    );
    ( "negative: Coloring.color option compare",
      check_clean
        "module Coloring = Nw_decomp.Coloring\n\
         let same c e k = Coloring.color c e = Some k" );
    ( "negative: Int.compare",
      check_clean "let f l = List.sort Int.compare l" );
    ( "negative: locally defined compare",
      check_silent "DET002"
        "let compare a b = Int.compare a b\nlet f l = List.sort compare l" );
    ( "negative: bare compare outside lib/",
      check_clean ~path:"bench/fixture.ml" "let f l = List.sort compare l" );
    ( "suppressed",
      check_silent "DET002"
        "(* nwlint:disable DET002 -- fixture justification *)\n\
         let f l = List.sort compare l" );
  ]

(* --- LEDGER001 ---------------------------------------------------- *)

let ledger =
  [
    ( "positive: charge outside any span",
      check_fires "LEDGER001"
        "let f rounds = Nw_localsim.Rounds.charge rounds ~label:\"x\" 1" );
    ( "positive: charge_max outside any span",
      check_fires "LEDGER001"
        "module Rounds = Nw_localsim.Rounds\n\
         let f rounds subs = Rounds.charge_max rounds subs" );
    ( "negative: charge under Obs.span @@",
      check_clean
        "module Obs = Nw_obs.Obs\n\
         module Rounds = Nw_localsim.Rounds\n\
         let f rounds =\n\
        \  Obs.span \"phase\" @@ fun () ->\n\
        \  Rounds.charge rounds ~label:\"x\" 1" );
    ( "negative: charge under direct Obs.span application",
      check_clean
        "module Rounds = Nw_localsim.Rounds\n\
         let f rounds =\n\
        \  Nw_obs.Obs.span \"phase\" (fun () -> Rounds.charge rounds \
         ~label:\"x\" 1)" );
    ( "negative: [@obs.in_span] function",
      check_clean
        "module Rounds = Nw_localsim.Rounds\n\
         let[@obs.in_span] f rounds = Rounds.charge rounds ~label:\"x\" 1" );
    ( "suppressed",
      check_silent "LEDGER001"
        "(* nwlint:disable LEDGER001 -- fixture justification *)\n\
         let f rounds = Nw_localsim.Rounds.charge rounds ~label:\"x\" 1" );
  ]

(* --- IO001 -------------------------------------------------------- *)

let io =
  [
    ("positive: print_endline", check_fires "IO001" "let f () = print_endline \"hi\"");
    ( "positive: Format.std_formatter",
      check_fires "IO001" "let f pp = pp Format.std_formatter" );
    ( "positive: Printf.printf",
      check_fires "IO001" "let f n = Printf.printf \"%d\" n" );
    ( "negative: Format.fprintf on a caller formatter",
      check_clean "let f ppf = Format.fprintf ppf \"ok\"" );
    ( "negative: printing outside lib/",
      check_clean ~path:"bin/fixture.ml" "let f () = print_endline \"hi\"" );
    ( "suppressed",
      check_silent "IO001"
        "(* nwlint:disable IO001 -- fixture justification *)\n\
         let f () = print_endline \"hi\"" );
  ]

(* --- EXN001 ------------------------------------------------------- *)

let exn =
  [
    ( "positive: swallow inside span is an error",
      fun () ->
        let ds =
          lint
            "module Obs = Nw_obs.Obs\n\
             let f g =\n\
            \  Obs.span \"phase\" @@ fun () ->\n\
            \  try g () with _ -> 0"
        in
        let hits = List.filter (fun d -> d.D.rule = "EXN001") ds in
        Alcotest.(check int) "one finding" 1 (List.length hits);
        Alcotest.(check string)
          "error severity" "error"
          (D.severity_to_string (List.hd hits).D.severity) );
    ( "positive: swallow outside span is a warning",
      fun () ->
        let ds = lint "let f g = try g () with _ -> 0" in
        let hits = List.filter (fun d -> d.D.rule = "EXN001") ds in
        Alcotest.(check int) "one finding" 1 (List.length hits);
        Alcotest.(check string)
          "warning severity" "warning"
          (D.severity_to_string (List.hd hits).D.severity) );
    ( "negative: re-raise after cleanup",
      check_silent "EXN001"
        "let f g cleanup = try g () with e -> cleanup (); raise e" );
    ( "negative: specific exception",
      check_silent "EXN001" "let f g = try g () with Not_found -> 0" );
    ( "suppressed",
      check_silent "EXN001"
        "(* nwlint:disable EXN001 -- fixture justification *)\n\
         let f g = try g () with _ -> 0" );
  ]

(* --- PURE001 ------------------------------------------------------ *)

let pure =
  [
    ( "positive: top-level ref in lib/core",
      check_fires "PURE001" "let counter = ref 0" );
    ( "positive: top-level Hashtbl in lib/decomp",
      check_fires "PURE001" ~path:"lib/decomp/fixture.ml"
        "let cache = Hashtbl.create 16" );
    ( "negative: allocation inside a function",
      check_clean "let f () = ref 0" );
    ( "negative: sanctioned scratch module",
      check_silent "PURE001"
        "module Scratch = struct\n  let buf = ref 0\nend" );
    ( "negative: outside lib/core and lib/decomp",
      check_clean ~path:"lib/localsim/fixture.ml" "let counter = ref 0" );
    ( "suppressed",
      check_silent "PURE001"
        "(* nwlint:disable PURE001 -- fixture justification *)\n\
         let counter = ref 0" );
  ]

(* --- ENG001 ------------------------------------------------------- *)

let eng =
  [
    ( "positive: direct composite in bench",
      check_fires "ENG001" ~path:"bench/fixture.ml"
        "let run g rng rounds =\n\
        \  Nw_core.Forest_algo.forest_decomposition g ~epsilon:0.5 ~alpha:3\n\
        \    ~rng ~rounds ()" );
    ( "positive: composite through an alias",
      check_fires "ENG001" ~path:"bin/fixture.ml"
        "module FA = Nw_core.Forest_algo\n\
         let run g rng rounds = FA.partial_color g" );
    ( "positive: Star_forest phase function in lib/localsim",
      check_fires "ENG001" ~path:"lib/localsim/fixture.ml"
        "let f g = Nw_core.Star_forest.sfd_realize g" );
    ( "positive: Lsfd.distributed in bench",
      check_fires "ENG001" ~path:"bench/fixture.ml"
        "let f g p = Nw_core.Lsfd.distributed g p" );
    ( "negative: the engine wrapper is the sanctioned path",
      check_silent "ENG001" ~path:"bench/fixture.ml"
        "let run g rng rounds =\n\
        \  Nw_engine.Run.forest_decomposition g ~epsilon:0.5 ~alpha:3\n\
        \    ~rng ~rounds ()" );
    ( "negative: leaf primitives stay callable",
      check_silent "ENG001" ~path:"bench/fixture.ml"
        "let f fd rounds = Nw_core.Orient.of_forest_decomposition fd ~rounds" );
    ( "negative: composites may call each other inside lib/core",
      check_silent "ENG001" ~path:"lib/core/fixture.ml"
        "let f g = Forest_algo.partial_color g" );
    ( "negative: lib/engine is the sanctioned caller",
      check_silent "ENG001" ~path:"lib/engine/fixture.ml"
        "let f g = Nw_core.Forest_algo.partial_color g" );
    ( "suppressed",
      check_silent "ENG001" ~path:"bench/fixture.ml"
        "(* nwlint:disable ENG001 -- fixture justification *)\n\
         let f g = Nw_core.Forest_algo.partial_color g" );
  ]

(* --- SVC001 ------------------------------------------------------- *)

let svc =
  [
    ( "positive: direct Store access in a request handler",
      check_fires "SVC001" ~path:"lib/service/server.ml"
        "let peek st = Nw_engine.Store.find st \"coloring\"" );
    ( "positive: Store through a module alias",
      check_fires "SVC001" ~path:"lib/service/server.ml"
        "module Store = Nw_engine.Store\n\
         let peek st = Store.find st \"coloring\"" );
    ( "positive: any non-session file under lib/service",
      check_fires "SVC001" ~path:"lib/service/wire.ml"
        "let clobber st v = Nw_engine.Store.set st \"graph\" v" );
    ( "negative: session.ml is the sanctioned owner",
      check_silent "SVC001" ~path:"lib/service/session.ml"
        "let peek st = Nw_engine.Store.find st \"coloring\"" );
    ( "negative: Store use outside lib/service",
      check_silent "SVC001" ~path:"lib/engine/fixture.ml"
        "let peek st = Nw_engine.Store.find st \"coloring\"" );
    ( "negative: handlers go through the Session API",
      check_silent "SVC001" ~path:"lib/service/server.ml"
        "let run s entry = Session.decompose s ~entry" );
    ( "suppressed",
      check_silent "SVC001" ~path:"lib/service/server.ml"
        "(* nwlint:disable SVC001 -- fixture justification *)\n\
         let peek st = Nw_engine.Store.find st \"coloring\"" );
  ]

(* --- PERF001 / PERF002 -------------------------------------------- *)

let perf =
  [
    ( "PERF001 positive: Array.fill scratch reset in lib/",
      check_fires "PERF001" ~path:"lib/core/fixture.ml"
        "let f dist = Array.fill dist 0 (Array.length dist) (-1)" );
    ( "PERF001 positive: qualified through Stdlib",
      check_fires "PERF001" ~path:"lib/localsim/fixture.ml"
        "let f a = Stdlib.Array.fill a 0 4 0" );
    ( "PERF001 negative: outside lib/",
      check_silent "PERF001" ~path:"bench/fixture.ml"
        "let f a = Array.fill a 0 4 0" );
    ( "PERF001 negative: generation-stamped reset",
      check_silent "PERF001" ~path:"lib/core/fixture.ml"
        "let f s = Nw_graphs.Scratch.Ints.reset s" );
    ( "PERF001 suppressed",
      check_silent "PERF001" ~path:"lib/core/fixture.ml"
        "(* nwlint:disable PERF001 -- fixture justification *)\n\
         let f a = Array.fill a 0 4 0" );
    ( "PERF002 positive: boxed-tuple adjacency plane in lib/",
      check_fires "PERF002" ~path:"lib/core/fixture.ml"
        "type t = { adj : (int * int) array array }" );
    ( "PERF002 positive: bare type alias",
      check_fires "PERF002" ~path:"lib/decomp/fixture.ml"
        "type rows = (int * int) array array" );
    ( "PERF002 negative: flat int rows",
      check_silent "PERF002" ~path:"lib/core/fixture.ml"
        "type t = { rows : int array array }" );
    ( "PERF002 negative: single-level tuple array",
      check_silent "PERF002" ~path:"lib/core/fixture.ml"
        "type t = { pairs : (int * int) array }" );
    ( "PERF002 positive: list-row adjacency plane in lib/decomp",
      check_fires "PERF002" ~path:"lib/decomp/fixture.ml"
        "type t = { adj : (int * int) list array }" );
    ( "PERF002 positive: array rows inside a list",
      check_fires "PERF002" ~path:"lib/decomp/fixture.ml"
        "type rows = (int * int) array list" );
    ( "PERF002 positive: wider int tuple in list rows",
      check_fires "PERF002" ~path:"lib/decomp/fixture.ml"
        "type t = (int * int * int) list array" );
    ( "PERF002 negative: plain edge list",
      check_silent "PERF002" ~path:"lib/decomp/fixture.ml"
        "type t = { edges : (int * int) list }" );
    ( "PERF002 negative: non-int tuple rows",
      check_silent "PERF002" ~path:"lib/decomp/fixture.ml"
        "type t = (int * float) list array" );
    ( "PERF002 negative: outside lib/",
      check_silent "PERF002" ~path:"tools/fixture.ml"
        "type t = (int * int) array array" );
    ( "PERF002 suppressed",
      check_silent "PERF002" ~path:"lib/core/fixture.ml"
        "(* nwlint:disable PERF002 -- fixture justification *)\n\
         type t = (int * int) array array" );
  ]

(* --- suppression hygiene and parse errors ------------------------- *)

let hygiene =
  [
    ( "SUPP001: suppression without justification",
      check_fires "SUPP001"
        "(* nwlint:disable DET001 *)\nlet x = Random.int 5" );
    ( "SUPP002: unused suppression",
      check_fires "SUPP002"
        "(* nwlint:disable DET001 -- justified but nothing fires *)\n\
         let x = 1" );
    ( "SUPP003: unknown rule id",
      check_fires "SUPP003"
        "(* nwlint:disable NOPE999 -- justified *)\nlet x = 1" );
    ( "used suppression leaves no residue",
      check_clean
        "(* nwlint:disable DET001 -- fixture justification *)\n\
         let x = Random.int 5" );
    ( "directive inside a string literal is ignored",
      check_fires "DET001"
        "let s = \"(* nwlint:disable DET001 -- not a comment *)\"\n\
         let x = Random.int 5" );
    ("PARSE001 on unparsable source", check_fires "PARSE001" "let let let");
    ( "mli files are linted",
      check_clean ~path:"lib/core/fixture.mli" "val f : int -> int" );
  ]

(* --- self-check: the engine is clean on the repo's own lib/ ------- *)

let find_lib_root () =
  let rec up dir depth =
    if depth > 6 then None
    else if
      Sys.file_exists (Filename.concat dir "lib")
      && Sys.is_directory (Filename.concat dir "lib")
      && Sys.file_exists (Filename.concat dir "dune-project")
    then Some (Filename.concat dir "lib")
    else up (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  up (Sys.getcwd ()) 0

let self_check () =
  match find_lib_root () with
  | None -> Alcotest.fail "could not locate the repo's lib/ from the test cwd"
  | Some lib ->
      let files = Engine.collect_files [ lib ] in
      Alcotest.(check bool) "found lib sources" true (List.length files > 50);
      let ds = List.concat_map Engine.lint_file files in
      Alcotest.(check (list string))
        "nwlint is clean on the repo's own lib/" []
        (List.map D.to_text ds)

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "nwlint"
    [
      ( "det001",
        List.map tc det1
        @ [ Alcotest.test_case "allow-clock extension" `Quick
              clock_allow_extension ] );
      ("det002", List.map tc det2);
      ("obs001", List.map tc obs1);
      ("ledger001", List.map tc ledger);
      ("io001", List.map tc io);
      ("exn001", List.map tc exn);
      ("pure001", List.map tc pure);
      ("eng001", List.map tc eng);
      ("svc001", List.map tc svc);
      ("perf", List.map tc perf);
      ("hygiene", List.map tc hygiene);
      ("self-check", [ Alcotest.test_case "repo lib/ is clean" `Quick self_check ]);
    ]
